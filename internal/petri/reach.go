package petri

import (
	"fmt"
	"sort"
)

// Bounded-reachability utilities. The full reachability graph of a net
// with source transitions is infinite; these helpers explore a finite
// fragment for validation, testing and diagnostics.

// ReachResult is the outcome of a bounded exploration.
type ReachResult struct {
	// Markings holds every distinct marking visited, keyed by Marking.Key.
	Markings map[string]Marking
	// Edges holds, for each visited marking key, the (transition, next
	// marking key) pairs explored.
	Edges map[string][]ReachEdge
	// Truncated is true when the exploration hit a limit before
	// exhausting the state space.
	Truncated bool
}

// ReachEdge is one edge of the explored reachability graph.
type ReachEdge struct {
	Trans int
	To    string
}

// ExploreOptions bounds a reachability exploration.
type ExploreOptions struct {
	// MaxMarkings limits the number of distinct markings (default 10000).
	MaxMarkings int
	// MaxTokensPerPlace prunes markings where any place exceeds this
	// count (0 = no pruning). Keeps nets with sources finite.
	MaxTokensPerPlace int
	// FireSources includes source transitions in the exploration when
	// true; otherwise only internal behaviour is explored.
	FireSources bool
}

// Explore performs a breadth-first bounded exploration from the initial
// marking.
func (n *Net) Explore(opt ExploreOptions) *ReachResult {
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 10000
	}
	res := &ReachResult{
		Markings: map[string]Marking{},
		Edges:    map[string][]ReachEdge{},
	}
	m0 := n.InitialMarking()
	queue := []Marking{m0}
	res.Markings[m0.Key()] = m0
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		key := m.Key()
		for _, t := range n.Transitions {
			if !opt.FireSources && t.IsSource() {
				continue
			}
			if !m.Enabled(t) {
				continue
			}
			next := m.Fire(t)
			if opt.MaxTokensPerPlace > 0 {
				over := false
				for _, v := range next {
					if v > opt.MaxTokensPerPlace {
						over = true
						break
					}
				}
				if over {
					res.Truncated = true
					continue
				}
			}
			nk := next.Key()
			res.Edges[key] = append(res.Edges[key], ReachEdge{Trans: t.ID, To: nk})
			if _, seen := res.Markings[nk]; !seen {
				if len(res.Markings) >= opt.MaxMarkings {
					res.Truncated = true
					continue
				}
				res.Markings[nk] = next
				queue = append(queue, next)
			}
		}
	}
	return res
}

// DeadlockMarkings returns the keys of visited markings with no explored
// outgoing edge (source firings excluded unless FireSources was set),
// sorted for determinism.
func (r *ReachResult) DeadlockMarkings() []string {
	var out []string
	for k := range r.Markings {
		if len(r.Edges[k]) == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CoEnabled reports whether the two transitions are simultaneously
// enabled in any marking visited by the exploration. This is the exact
// (but bounded) version of the structural uniqueness test.
func (n *Net) CoEnabled(r *ReachResult, a, b int) (bool, error) {
	if a < 0 || a >= len(n.Transitions) || b < 0 || b >= len(n.Transitions) {
		return false, fmt.Errorf("petri: transition index out of range (%d, %d)", a, b)
	}
	ta, tb := n.Transitions[a], n.Transitions[b]
	for _, m := range r.Markings {
		if m.Enabled(ta) && m.Enabled(tb) {
			return true, nil
		}
	}
	return false, nil
}
