package server

import (
	"regexp"
	"strings"
	"testing"
)

// sampleLine matches a Prometheus text-format sample: a metric name,
// an optional single-label set, and a value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

// TestMetricsTextFormat parses a rendered registry line by line: every
// non-comment line must be a well-formed sample, every family must
// carry HELP and TYPE comments before its samples, and the core series
// the smoke test and dashboards rely on must all be present even on a
// fresh server with no traffic.
func TestMetricsTextFormat(t *testing.T) {
	m := newMetrics()
	// Touch every instrument kind so labelled families render samples.
	m.incOutcome(outcomeOK)
	m.incOutcome(outcomeRejected)
	m.setLabeledGauge(m.distWorkerMem, "0", 12345)
	m.observe(m.latency, 0.0042)
	m.observe(m.latency, 2.5)

	var sb strings.Builder
	m.render(&sb)
	body := sb.String()

	typed := map[string]string{} // family -> TYPE
	helped := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Errorf("HELP without text: %q", line)
			}
			helped[parts[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown TYPE %q in %q", parts[3], line)
			}
			typed[parts[2]] = parts[3]
		default:
			if !sampleLine.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			name := line[:strings.IndexAny(line, "{ ")]
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if typ, ok := typed[family]; !ok {
				t.Errorf("sample %q precedes its TYPE comment", line)
			} else if typ != "histogram" && name != family {
				t.Errorf("suffixed sample %q under non-histogram family %q", name, family)
			}
			if !helped[family] {
				t.Errorf("sample %q has no HELP comment", line)
			}
		}
	}

	for _, want := range []string{
		`qss_requests_total{outcome="ok"} 1`,
		`qss_requests_total{outcome="rejected"} 1`,
		"qss_cache_hits_total 0",
		"qss_cache_misses_total 0",
		"qss_cache_entries 0",
		"qss_queue_depth 0",
		"qss_inflight 0",
		"qss_ready 0",
		"qss_states_explored_total 0",
		"qss_store_hot_bytes 0",
		"qss_store_frozen_bytes 0",
		"qss_panics_total 0",
		"qss_dist_workers 0",
		"qss_dist_worker_restarts_total 0",
		"qss_dist_pool_degraded 0",
		`qss_dist_worker_mem_bytes{worker="0"} 12345`,
		"qss_synthesis_seconds_count 2",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("rendered metrics missing %q", want)
		}
	}
}

// TestHistogramCumulative pins the bucket semantics: each bucket counts
// all observations at or below its bound, buckets are monotone
// non-decreasing, and +Inf equals the total count.
func TestHistogramCumulative(t *testing.T) {
	m := newMetrics()
	h := m.latency // bounds 1e-5 .. 10
	for _, v := range []float64{1e-6, 5e-4, 0.02, 0.02, 3, 42} {
		m.observe(h, v)
	}
	wantCounts := []uint64{1, 1, 2, 2, 4, 4, 5} // per bound 1e-5,1e-4,1e-3,1e-2,1e-1,1,10
	for i, want := range wantCounts {
		if h.counts[i] != want {
			t.Errorf("bucket le=%g: got %d, want %d", h.bounds[i], h.counts[i], want)
		}
	}
	for i := 1; i < len(h.counts); i++ {
		if h.counts[i] < h.counts[i-1] {
			t.Errorf("buckets not cumulative at %d: %v", i, h.counts)
		}
	}
	if h.total != 6 {
		t.Errorf("total = %d, want 6", h.total)
	}
	var sb strings.Builder
	h.render(&sb)
	if !strings.Contains(sb.String(), `qss_synthesis_seconds_bucket{le="+Inf"} 6`) {
		t.Errorf("+Inf bucket != count:\n%s", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		42:      "42",
		1e-05:   "1e-05",
		0.001:   "0.001",
		2.5:     "2.5",
		1234567: "1234567",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
