//go:build unix

package petri

import (
	"os"
	"syscall"
)

// mmapSegment maps [0, size) of the segment file read-only. A zero
// size returns a nil mapping (nothing to read yet).
func mmapSegment(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapSegment(b []byte) {
	if len(b) != 0 {
		syscall.Munmap(b)
	}
}
