/* Task task_go: quasi-statically scheduled for source go. */
#include "falsepath_fixed.data.h"

int a_p0;
int a_p2;
int b_p0;
int b_p2;
int BUF_C0;
int BUF_D0;
int a_g;
int a_i;
int b_v;
int b_sum;
int b_done;

void task_go_init(void)
{
  a_p0 = 1;
  a_p2 = 0;
  b_p0 = 1;
  b_p2 = 0;
  BUF_C0 = 0;
  BUF_D0 = 0;
}

void task_go_ISR(void)
{
  go:
  go();
  READ_DATA(go, &a_g, 1);
  a_i = 0;
  a_p0 = a_p0 - 1;
  goto a_t1a_t4;
  a_t2:
  BUF_C0 = (a_g + a_i);
  b_v = BUF_C0;
  b_sum = (b_sum + b_v);
  a_i++;
  a_p2 = a_p2 - 1;
  b_p2 = b_p2 - 1;
  goto a_t1a_t4;
  a_t5:
  BUF_D0 = 0;
  b_v = BUF_D0;
  b_done = 1;
  a_p0 = a_p0 + 1;
  b_p2 = b_p2 - 1;
  goto b_t6;
  b_t0:
  b_sum = 0;
  b_done = 0;
  b_p0 = b_p0 - 1;
  goto b_t1b_t7;
  b_t1b_t7:
  if (!b_done) {
    b_p2 = b_p2 + 1;
    if (a_p0 == 1 && a_p2 == 0 && b_p0 == 0 && b_p2 == 1) {
      return;
    }
    else if (a_p0 == 0 && a_p2 == 1 && b_p0 == 0 && b_p2 == 1) {
      goto a_t2;
    }
    else {
      goto a_t5;
    }
  } else {
    WRITE_DATA(res, b_sum, 1);
    /* deliver res to the environment */
    b_p0 = b_p0 + 1;
    if (a_p0 == 1 && a_p2 == 0 && b_p0 == 1 && b_p2 == 0) {
      return;
    }
    else {
      goto b_t0;
    }
  }
  b_t6:
  goto b_t1b_t7;
  a_t1a_t4:
  if ((a_i < 10)) {
    a_p2 = a_p2 + 1;
    if (a_p0 == 0 && a_p2 == 1 && b_p0 == 0 && b_p2 == 1) {
      goto a_t2;
    }
    else if (a_p0 == 0 && a_p2 == 1 && b_p0 == 1 && b_p2 == 0) {
      goto b_t0;
    }
    else {
      goto b_t6;
    }
  } else {
    if (a_p0 == 0 && a_p2 == 0 && b_p0 == 0 && b_p2 == 1) {
      goto a_t5;
    }
    else if (a_p0 == 0 && a_p2 == 0 && b_p0 == 1 && b_p2 == 0) {
      goto b_t0;
    }
    else {
      goto b_t6;
    }
  }
}
