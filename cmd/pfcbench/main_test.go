package main

import "testing"

// TestPFCBenchFlagValidation: contradictory or out-of-range flag
// combinations are rejected with a descriptive error instead of being
// silently clamped.
func TestPFCBenchFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		f       benchFlags
		wantErr bool
	}{
		{name: "defaults", f: benchFlags{frames: 10, anyOutput: true}},
		{name: "explore-workers", f: benchFlags{frames: 10, exploreWorkers: 8, anyOutput: true}},
		{name: "dist", f: benchFlags{frames: 10, distWorkers: 2, anyOutput: true}},
		{name: "dist-endpoint", f: benchFlags{frames: 1, distWorkers: 1, distEndpoint: "tcp:127.0.0.1:9000", anyOutput: true}},
		{name: "dist-full-replicas", f: benchFlags{frames: 10, distWorkers: 2, distFullReplicas: true, anyOutput: true}},
		{name: "no-output", f: benchFlags{frames: 10}, wantErr: true},
		{name: "zero-frames", f: benchFlags{frames: 0, anyOutput: true}, wantErr: true},
		{name: "negative-explore", f: benchFlags{frames: 10, exploreWorkers: -1, anyOutput: true}, wantErr: true},
		{name: "negative-dist", f: benchFlags{frames: 10, distWorkers: -3, anyOutput: true}, wantErr: true},
		{name: "endpoint-without-workers", f: benchFlags{frames: 10, distEndpoint: "unix:/tmp/q.sock", anyOutput: true}, wantErr: true},
		{name: "both-strategies", f: benchFlags{frames: 10, distWorkers: 2, exploreWorkers: 4, anyOutput: true}, wantErr: true},
		{name: "full-replicas-without-dist", f: benchFlags{frames: 10, distFullReplicas: true, anyOutput: true}, wantErr: true},

		// -pnml mode: no evaluation output needed, exploration flags
		// compose, evaluation flags are rejected when explicitly set.
		{name: "pnml", f: benchFlags{frames: 10, pnml: multiFlag{"net.pnml"}}},
		{name: "pnml-two-files", f: benchFlags{frames: 10, pnml: multiFlag{"a.pnml", "b.pnml"}}},
		{name: "pnml-with-dist", f: benchFlags{frames: 10, distWorkers: 2, pnml: multiFlag{"net.pnml"}}},
		{name: "pnml-with-explore-workers", f: benchFlags{frames: 10, exploreWorkers: 4, pnml: multiFlag{"net.pnml"}}},
		{name: "pnml-with-caps", f: benchFlags{frames: 10, pnml: multiFlag{"net.pnml"}, pnmlMaxMarkings: 1000, pnmlMaxTokens: 4,
			explicit: map[string]bool{"pnml": true, "pnml-max-markings": true, "pnml-max-tokens": true}}},
		{name: "pnml-vs-fig20", f: benchFlags{frames: 10, anyOutput: true, pnml: multiFlag{"net.pnml"},
			explicit: map[string]bool{"pnml": true, "fig20": true}}, wantErr: true},
		{name: "pnml-vs-all", f: benchFlags{frames: 10, anyOutput: true, pnml: multiFlag{"net.pnml"},
			explicit: map[string]bool{"pnml": true, "all": true}}, wantErr: true},
		{name: "pnml-vs-frames", f: benchFlags{frames: 50, pnml: multiFlag{"net.pnml"},
			explicit: map[string]bool{"pnml": true, "frames": true}}, wantErr: true},
		{name: "pnml-caps-without-pnml", f: benchFlags{frames: 10, anyOutput: true, pnmlMaxMarkings: 1000,
			explicit: map[string]bool{"pnml-max-markings": true}}, wantErr: true},
		{name: "pnml-negative-markings", f: benchFlags{frames: 10, pnml: multiFlag{"net.pnml"}, pnmlMaxMarkings: -1}, wantErr: true},
		{name: "pnml-negative-tokens", f: benchFlags{frames: 10, pnml: multiFlag{"net.pnml"}, pnmlMaxTokens: -2}, wantErr: true},
		{name: "pnml-both-strategies", f: benchFlags{frames: 10, pnml: multiFlag{"net.pnml"}, distWorkers: 2, exploreWorkers: 4}, wantErr: true},
	}
	for _, c := range cases {
		err := c.f.validate()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validate() err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
