package petri

import "fmt"

// Bounded-reachability utilities. The full reachability graph of a net
// with source transitions is infinite; these helpers explore a finite
// fragment for validation, testing and diagnostics.

// ReachResult is the outcome of a bounded exploration. Markings are
// hash-consed: Store assigns each distinct visited marking a dense
// MarkID, and Edges is indexed by it.
type ReachResult struct {
	// Store interns every distinct marking visited; MarkID 0 is the
	// initial marking.
	Store *MarkingStore
	// Edges holds, for each visited marking, the (transition, successor)
	// pairs explored. len(Edges) == Store.Len().
	Edges [][]ReachEdge
	// Clipped marks sources of dropped edges: Clipped[id] is true when
	// some enabled firing at id was not recorded because the successor
	// exceeded MaxTokensPerPlace or the MaxMarkings budget. Such states
	// are incompletely explored, not dead.
	Clipped []bool
	// Truncated is true when the exploration hit a limit before
	// exhausting the state space (equivalently, when any state is
	// Clipped).
	Truncated bool
}

// ReachEdge is one edge of the explored reachability graph.
type ReachEdge struct {
	Trans int
	To    MarkID
}

// Len returns the number of distinct markings retained.
func (r *ReachResult) Len() int { return r.Store.Len() }

// MarkingAt returns the marking behind id (a read-only view).
func (r *ReachResult) MarkingAt(id MarkID) Marking { return r.Store.At(id) }

// ExploreOptions bounds a reachability exploration.
type ExploreOptions struct {
	// MaxMarkings limits the number of distinct markings (default 10000).
	MaxMarkings int
	// MaxTokensPerPlace prunes markings where any place exceeds this
	// count (0 = no pruning). Keeps nets with sources finite.
	MaxTokensPerPlace int
	// FireSources includes source transitions in the exploration when
	// true; otherwise only internal behaviour is explored.
	FireSources bool
}

// Explore performs a breadth-first bounded exploration from the initial
// marking. The inner loop reuses one scratch vector and interns through
// the store, so firing a transition allocates only when it discovers a
// new marking.
func (n *Net) Explore(opt ExploreOptions) *ReachResult {
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 10000
	}
	res := &ReachResult{Store: NewMarkingStore(len(n.Places))}
	m0 := n.InitialMarking()
	res.Store.Intern(m0)
	res.Edges = append(res.Edges, nil)
	res.Clipped = append(res.Clipped, false)
	var scratch Marking
	for qi := MarkID(0); int(qi) < res.Store.Len(); qi++ {
		m := res.Store.At(qi)
		for _, t := range n.Transitions {
			if !opt.FireSources && t.IsSource() {
				continue
			}
			if !m.Enabled(t) {
				continue
			}
			scratch = m.FireInto(scratch, t)
			if opt.MaxTokensPerPlace > 0 {
				over := false
				for _, v := range scratch {
					if v > opt.MaxTokensPerPlace {
						over = true
						break
					}
				}
				if over {
					res.Truncated = true
					res.Clipped[qi] = true
					continue
				}
			}
			id, ok := res.Store.Lookup(scratch)
			if !ok {
				if res.Store.Len() >= opt.MaxMarkings {
					res.Truncated = true
					res.Clipped[qi] = true
					continue
				}
				id, _ = res.Store.Intern(scratch)
				res.Edges = append(res.Edges, nil)
				res.Clipped = append(res.Clipped, false)
			}
			res.Edges[qi] = append(res.Edges[qi], ReachEdge{Trans: t.ID, To: id})
		}
	}
	return res
}

// DeadlockMarkings returns the IDs of visited markings with no explored
// outgoing edge (source firings excluded unless FireSources was set),
// in ascending MarkID order. States whose exploration was clipped by a
// limit are skipped — an unrecorded successor is not a deadlock.
func (r *ReachResult) DeadlockMarkings() []MarkID {
	var out []MarkID
	for id, edges := range r.Edges {
		if len(edges) == 0 && !r.Clipped[id] {
			out = append(out, MarkID(id))
		}
	}
	return out
}

// CoEnabled reports whether the two transitions are simultaneously
// enabled in any marking visited by the exploration. This is the exact
// (but bounded) version of the structural uniqueness test.
func (n *Net) CoEnabled(r *ReachResult, a, b int) (bool, error) {
	if a < 0 || a >= len(n.Transitions) || b < 0 || b >= len(n.Transitions) {
		return false, fmt.Errorf("petri: transition index out of range (%d, %d)", a, b)
	}
	ta, tb := n.Transitions[a], n.Transitions[b]
	for _, m := range r.Store.All() {
		if m.Enabled(ta) && m.Enabled(tb) {
			return true, nil
		}
	}
	return false, nil
}
