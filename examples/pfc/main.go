// PFC: the industrial video application of Section 8.2 (Figure 18).
// Synthesizes the four concurrent processes (controller, producer,
// filter, consumer) into one task with unit-size channel buffers,
// verifies functional equivalence against the 4-process round-robin
// implementation, and prints a miniature performance comparison.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	res, err := apps.SynthesizePFC()
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthesis failed:", err)
		os.Exit(1)
	}
	s := res.Schedules[0]
	fmt.Printf("synthesized single task from %d processes\n", len(res.Procs))
	fmt.Printf("schedule: %d nodes (%d await), %d code segments\n",
		len(s.Nodes), len(s.AwaitNodes()), len(res.Tasks[0].Segments))
	fmt.Println("channel bounds (all unit size, as in the paper):")
	for _, ch := range res.Sys.Channels {
		fmt.Printf("  %-6s %d\n", ch.Spec.Name, res.Bounds[ch.Place.ID])
	}

	// Functional equivalence on a short run.
	const frames = 4
	b := sim.NewBaseline(res.Sys, sim.PFC, 10)
	for f := 0; f < frames; f++ {
		b.Input("init").Push(int64(f))
		b.Input("cin").Push(int64(f%8 + 1))
	}
	baseCycles, err := b.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline failed:", err)
		os.Exit(1)
	}
	te, err := sim.NewTaskExec(res.Sys, res.Tasks[0], sim.PFC)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for f := 0; f < frames; f++ {
		te.Input("cin").Push(int64(f%8 + 1))
		if err := te.Trigger(int64(f)); err != nil {
			fmt.Fprintln(os.Stderr, "trigger failed:", err)
			os.Exit(1)
		}
	}
	got, want := te.Output("display").Vals, b.Output("display").Vals
	same := len(got) == len(want)
	for i := 0; same && i < len(got); i++ {
		same = got[i] == want[i]
	}
	fmt.Printf("\n%d frames, %d pixels: outputs identical = %v\n", frames, len(got), same)
	fmt.Printf("4 processes (buffers=10): %8d cycles\n", baseCycles)
	fmt.Printf("single task (buffers=1):  %8d cycles (%.1fx faster)\n",
		te.Machine.Cycles, float64(baseCycles)/float64(te.Machine.Cycles))

	// Code size per Table 2's methodology.
	sm := sim.SizePFC
	total, _ := sm.BaselineSize(res.Sys, true)
	task := sm.TaskSize(res.Tasks[0], res.Sys)
	fmt.Printf("code size: task %d bytes vs 4 processes %d bytes (%.1fx smaller)\n",
		task, total, float64(total)/float64(task))
	fmt.Println("\nrun 'go run ./cmd/pfcbench -all' for the full Figure 20 / Table 1 / Table 2 sweep")
}
