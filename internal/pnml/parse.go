package pnml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/petri"
)

// ParseError is a PNML rejection with the 1-based line and column of
// the offending construct. Every error path in this package that can be
// tied to a document position produces one, so a malformed or
// out-of-subset file is diagnosable without opening it in an XML tool.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("pnml: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// maxPageDepth bounds <page> nesting so a hostile document cannot drive
// the recursive-descent walker into stack exhaustion.
const maxPageDepth = 64

// Parse reads a PNML document holding exactly one place/transition net
// and adapts it to a petri.Net: places and transitions are numbered in
// document order (pages flattened depth-first), names fall back to the
// XML id when the <name> label is absent, and duplicate arcs between
// the same (place, transition) pair accumulate their weights like
// petri.Net.AddArc. Features outside the supported subset — inhibitor,
// reset or read arc types, colored/high-level annotations, reference
// nodes — are rejected with a *ParseError carrying the position; they
// are never silently dropped.
func Parse(r io.Reader) (*petri.Net, error) {
	p := &parser{dec: xml.NewDecoder(r), ids: map[string]nodeRef{}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.build()
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(b []byte) (*petri.Net, error) {
	return Parse(strings.NewReader(string(b)))
}

// nodeKind classifies a declared XML id.
type nodeKind int

const (
	kindPlace nodeKind = iota
	kindTrans
	kindArc
)

func (k nodeKind) String() string {
	switch k {
	case kindPlace:
		return "place"
	case kindTrans:
		return "transition"
	case kindArc:
		return "arc"
	}
	return "node"
}

// nodeRef resolves an id to its slot in the parsed model.
type nodeRef struct {
	kind  nodeKind
	index int
}

// parsedPlace, parsedTrans and parsedArc are the document model the
// builder assembles into a petri.Net once every id is known (arcs may
// reference nodes declared later or on other pages).
type parsedPlace struct {
	id, name string
	initial  int
}

type parsedTrans struct {
	id, name string
}

type parsedArc struct {
	source, target string
	weight         int
	line, col      int
}

type parser struct {
	dec     *xml.Decoder
	netName string
	netSeen bool
	places  []parsedPlace
	trans   []parsedTrans
	arcs    []parsedArc
	ids     map[string]nodeRef
}

// errf builds a ParseError at the decoder's current position.
func (p *parser) errf(format string, args ...any) *ParseError {
	line, col := p.dec.InputPos()
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// token wraps Decoder.Token, converting XML-level failures (truncated
// documents, mismatched tags, bad entities) into position-bearing
// ParseErrors.
func (p *parser) token() (xml.Token, error) {
	tok, err := p.dec.Token()
	if err == nil {
		return tok, nil
	}
	if err == io.EOF {
		return nil, io.EOF
	}
	if se, ok := err.(*xml.SyntaxError); ok {
		return nil, &ParseError{Line: se.Line, Msg: se.Msg}
	}
	if err == io.ErrUnexpectedEOF {
		return nil, p.errf("unexpected end of document")
	}
	return nil, p.errf("%v", err)
}

// run walks the document: exactly one <pnml> root holding exactly one
// <net>.
func (p *parser) run() error {
	root, err := p.nextStart()
	if err == io.EOF {
		return p.errf("empty document: no <pnml> root element")
	}
	if err != nil {
		return err
	}
	if root.Name.Local != "pnml" {
		return p.errf("root element is <%s>, want <pnml>", root.Name.Local)
	}
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <pnml>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "net" {
				return p.errf("unsupported <%s> under <pnml>: only <net> is modeled", t.Name.Local)
			}
			if p.netSeen {
				return p.errf("multiple <net> elements: the P/T subset loads exactly one net per document")
			}
			p.netSeen = true
			if err := p.parseNet(t); err != nil {
				return err
			}
		case xml.EndElement:
			// </pnml>: drain trailing whitespace until EOF.
			if !p.netSeen {
				return p.errf("document holds no <net> element")
			}
			return p.drainEpilogue()
		}
	}
}

// drainEpilogue consumes tokens after </pnml>, rejecting anything but
// whitespace and comments.
func (p *parser) drainEpilogue() error {
	for {
		tok, err := p.token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return p.errf("unexpected <%s> after </pnml>", se.Name.Local)
		}
	}
}

// nextStart skips character data, comments and processing instructions
// until the next start element.
func (p *parser) nextStart() (xml.StartElement, error) {
	for {
		tok, err := p.token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se, nil
		}
	}
}

// attr returns the value of the named attribute, ignoring namespaces.
func attr(se xml.StartElement, name string) (string, bool) {
	for _, a := range se.Attr {
		if a.Name.Local == name {
			return a.Value, true
		}
	}
	return "", false
}

// parseNet handles <net>: the type URI must be the P/T grammar (or
// absent — several tools omit it), and the children are pages, nodes
// and arcs.
func (p *parser) parseNet(se xml.StartElement) error {
	if typ, ok := attr(se, "type"); ok && typ != "" {
		lt := strings.ToLower(typ)
		switch {
		case strings.Contains(lt, "ptnet"):
			// The supported subset.
		case strings.Contains(lt, "symmetricnet"), strings.Contains(lt, "highlevel"), strings.Contains(lt, "hlpng"), strings.Contains(lt, "pt-hlpng"):
			return p.errf("net type %q is a colored/high-level net: only the P/T subset is modeled", typ)
		default:
			return p.errf("unsupported net type %q (want the ptnet grammar)", typ)
		}
	}
	return p.parsePageBody("net", 0, true)
}

// parsePageBody parses the shared body of <net> and <page>: nodes,
// arcs, nested pages, and decorative labels. topLevel selects whether a
// <name> label names the net.
func (p *parser) parsePageBody(parent string, depth int, topLevel bool) error {
	if depth > maxPageDepth {
		return p.errf("<page> nesting deeper than %d levels", maxPageDepth)
	}
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <%s>", parent)
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "page":
				if err := p.parsePageBody("page", depth+1, false); err != nil {
					return err
				}
			case "place":
				if err := p.parsePlace(t); err != nil {
					return err
				}
			case "transition":
				if err := p.parseTransition(t); err != nil {
					return err
				}
			case "arc":
				if err := p.parseArc(t); err != nil {
					return err
				}
			case "name":
				text, err := p.parseLabelText(t.Name.Local)
				if err != nil {
					return err
				}
				if topLevel {
					p.netName = text
				}
			case "graphics", "toolspecific":
				if err := p.skip(); err != nil {
					return err
				}
			case "referencePlace", "referenceTransition":
				return p.errf("<%s> is not modeled: flatten reference nodes before import", t.Name.Local)
			case "declaration":
				return p.errf("<declaration> is a colored-net construct: only the P/T subset is modeled")
			default:
				return p.errf("unsupported <%s> under <%s>", t.Name.Local, parent)
			}
		case xml.EndElement:
			return nil
		}
	}
}

// declare registers an XML id, rejecting duplicates.
func (p *parser) declare(id string, ref nodeRef) error {
	if prev, ok := p.ids[id]; ok {
		return p.errf("duplicate id %q: already declared as a %s", id, prev.kind)
	}
	p.ids[id] = ref
	return nil
}

// parsePlace handles <place>: an id, an optional name label and an
// optional non-negative integer <initialMarking>.
func (p *parser) parsePlace(se xml.StartElement) error {
	id, ok := attr(se, "id")
	if !ok || id == "" {
		return p.errf("<place> requires an id attribute")
	}
	if err := p.declare(id, nodeRef{kindPlace, len(p.places)}); err != nil {
		return err
	}
	pl := parsedPlace{id: id, name: id}
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <place>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "name":
				text, err := p.parseLabelText("name")
				if err != nil {
					return err
				}
				if text != "" {
					pl.name = text
				}
			case "initialMarking":
				text, err := p.parseLabelText("initialMarking")
				if err != nil {
					return err
				}
				n, err2 := strconv.Atoi(strings.TrimSpace(text))
				if err2 != nil {
					return p.errf("place %q: initial marking %q is not an integer", id, strings.TrimSpace(text))
				}
				if n < 0 {
					return p.errf("place %q: negative initial marking %d", id, n)
				}
				pl.initial = n
			case "graphics", "toolspecific":
				if err := p.skip(); err != nil {
					return err
				}
			case "hlinitialMarking", "type":
				return p.errf("place %q: <%s> is a colored-net construct: only integer <initialMarking> is modeled", id, t.Name.Local)
			case "capacity":
				return p.errf("place %q: <capacity> is not modeled: express caps with the explorer's token budget instead", id)
			default:
				return p.errf("place %q: unsupported <%s>", id, t.Name.Local)
			}
		case xml.EndElement:
			p.places = append(p.places, pl)
			return nil
		}
	}
}

// parseTransition handles <transition>: an id and an optional name.
func (p *parser) parseTransition(se xml.StartElement) error {
	id, ok := attr(se, "id")
	if !ok || id == "" {
		return p.errf("<transition> requires an id attribute")
	}
	if err := p.declare(id, nodeRef{kindTrans, len(p.trans)}); err != nil {
		return err
	}
	tr := parsedTrans{id: id, name: id}
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <transition>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "name":
				text, err := p.parseLabelText("name")
				if err != nil {
					return err
				}
				if text != "" {
					tr.name = text
				}
			case "graphics", "toolspecific":
				if err := p.skip(); err != nil {
					return err
				}
			case "condition":
				return p.errf("transition %q: <condition> guards are a colored-net construct", id)
			default:
				return p.errf("transition %q: unsupported <%s>", id, t.Name.Local)
			}
		case xml.EndElement:
			p.trans = append(p.trans, tr)
			return nil
		}
	}
}

// parseArc handles <arc>: source/target ids, an optional positive
// integer <inscription> weight (default 1), and an optional <type>
// label that must be "normal" — inhibitor, reset and read arcs change
// the enabling rule and are rejected.
func (p *parser) parseArc(se xml.StartElement) error {
	id, ok := attr(se, "id")
	if !ok || id == "" {
		return p.errf("<arc> requires an id attribute")
	}
	if err := p.declare(id, nodeRef{kindArc, len(p.arcs)}); err != nil {
		return err
	}
	src, ok := attr(se, "source")
	if !ok || src == "" {
		return p.errf("arc %q: missing source attribute", id)
	}
	dst, ok := attr(se, "target")
	if !ok || dst == "" {
		return p.errf("arc %q: missing target attribute", id)
	}
	line, col := p.dec.InputPos()
	a := parsedArc{source: src, target: dst, weight: 1, line: line, col: col}
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <arc>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "inscription":
				text, err := p.parseLabelText("inscription")
				if err != nil {
					return err
				}
				w, err2 := strconv.Atoi(strings.TrimSpace(text))
				if err2 != nil {
					return p.errf("arc %q: inscription %q is not an integer weight", id, strings.TrimSpace(text))
				}
				if w < 1 {
					return p.errf("arc %q: non-positive weight %d (ordinary arcs need weight >= 1)", id, w)
				}
				a.weight = w
			case "type":
				val, _ := attr(t, "value")
				if err := p.skip(); err != nil {
					return err
				}
				if lv := strings.ToLower(strings.TrimSpace(val)); lv != "" && lv != "normal" {
					return p.errf("arc %q: arc type %q is not modeled (only normal arcs; inhibitor/reset/read change the firing rule)", id, val)
				}
			case "graphics", "toolspecific":
				if err := p.skip(); err != nil {
					return err
				}
			case "hlinscription":
				return p.errf("arc %q: <hlinscription> is a colored-net construct", id)
			default:
				return p.errf("arc %q: unsupported <%s>", id, t.Name.Local)
			}
		case xml.EndElement:
			p.arcs = append(p.arcs, a)
			return nil
		}
	}
}

// parseLabelText consumes a standard PNML annotation element and
// returns its textual value: the concatenated character data of its
// <text> children when present, otherwise the element's own character
// data. Graphics and tool extensions inside the label are skipped.
func (p *parser) parseLabelText(label string) (string, error) {
	var textVal, rawVal strings.Builder
	sawText := false
	for {
		tok, err := p.token()
		if err == io.EOF {
			return "", p.errf("unexpected end of document inside <%s>", label)
		}
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "text":
				sawText = true
				if err := p.collectText(&textVal); err != nil {
					return "", err
				}
			case "graphics", "toolspecific":
				if err := p.skip(); err != nil {
					return "", err
				}
			default:
				return "", p.errf("unsupported <%s> inside <%s>", t.Name.Local, label)
			}
		case xml.CharData:
			rawVal.Write(t)
		case xml.EndElement:
			if sawText {
				return textVal.String(), nil
			}
			return strings.TrimSpace(rawVal.String()), nil
		}
	}
}

// collectText accumulates the character data of a <text> element.
func (p *parser) collectText(sb *strings.Builder) error {
	for {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document inside <text>")
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return p.errf("unexpected <%s> inside <text>", t.Name.Local)
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return nil
		}
	}
}

// skip consumes the current element and everything inside it.
func (p *parser) skip() error {
	depth := 1
	for depth > 0 {
		tok, err := p.token()
		if err == io.EOF {
			return p.errf("unexpected end of document")
		}
		if err != nil {
			return err
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		}
	}
	return nil
}

// build assembles the parsed model into a petri.Net: nodes in document
// order, arcs resolved by id with place/transition orientation checked,
// weights accumulated for repeated pairs.
func (p *parser) build() (*petri.Net, error) {
	name := p.netName
	if name == "" {
		name = "pnml"
	}
	n := petri.New(name)
	for _, pl := range p.places {
		n.AddPlace(pl.name, petri.PlaceInternal, pl.initial)
	}
	for _, tr := range p.trans {
		n.AddTransition(tr.name, petri.TransNormal)
	}
	for _, a := range p.arcs {
		src, ok := p.ids[a.source]
		if !ok {
			return nil, &ParseError{Line: a.line, Col: a.col, Msg: fmt.Sprintf("arc references undeclared source %q", a.source)}
		}
		dst, ok := p.ids[a.target]
		if !ok {
			return nil, &ParseError{Line: a.line, Col: a.col, Msg: fmt.Sprintf("arc references undeclared target %q", a.target)}
		}
		switch {
		case src.kind == kindPlace && dst.kind == kindTrans:
			n.AddArc(n.Places[src.index], n.Transitions[dst.index], a.weight)
		case src.kind == kindTrans && dst.kind == kindPlace:
			n.AddArcTP(n.Transitions[src.index], n.Places[dst.index], a.weight)
		default:
			return nil, &ParseError{Line: a.line, Col: a.col, Msg: fmt.Sprintf("arc connects a %s to a %s: arcs must alternate places and transitions", src.kind, dst.kind)}
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("pnml: imported net invalid: %w", err)
	}
	return n, nil
}
