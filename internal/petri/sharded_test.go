package petri

import (
	"sync"
	"testing"
)

// TestShardedStoreRoundTrip: intern, re-intern and lookup across many
// shards; refs stay stable and At returns the exact vectors.
func TestShardedStoreRoundTrip(t *testing.T) {
	const places = 6
	s := NewShardedStore(places, 8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	var ms []Marking
	refs := map[string]ShardRef{}
	for i := 0; i < 500; i++ {
		m := Marking{i, i % 3, i % 7, i / 5, i % 2, i % 11}
		ref, isNew := s.Intern(m)
		if prev, ok := refs[m.Key()]; ok {
			if isNew || ref != prev {
				t.Fatalf("re-intern %v: (%v, %v), want (%v, false)", m, ref, isNew, prev)
			}
			continue
		}
		if !isNew {
			t.Fatalf("fresh marking %v not reported new", m)
		}
		refs[m.Key()] = ref
		ms = append(ms, m.Clone())
	}
	if s.Len() != len(refs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(refs))
	}
	for _, m := range ms {
		ref, ok := s.Lookup(m)
		if !ok || ref != refs[m.Key()] {
			t.Fatalf("lookup %v = (%v, %v), want (%v, true)", m, ref, ok, refs[m.Key()])
		}
		if !s.At(ref).Equal(m) {
			t.Fatalf("At(%v) = %v, want %v", ref, s.At(ref), m)
		}
	}
	if _, ok := s.Lookup(Marking{99, 99, 99, 99, 99, 99}); ok {
		t.Fatal("lookup of never-interned marking succeeded")
	}
}

// TestShardedStoreForcedCollisions mirrors the plain store's
// probe-collision test at both levels: 2 shards force markings to share
// shards, and 2-slot per-shard tables force linear probing and growth
// inside every shard.
func TestShardedStoreForcedCollisions(t *testing.T) {
	const places = 3
	s := newShardedStoreCap(places, 2, 2)
	var ms []Marking
	var refs []ShardRef
	for i := 0; i < 128; i++ {
		m := Marking{i, i % 5, i / 3}
		ref, isNew := s.Intern(m)
		if !isNew {
			t.Fatalf("intern %v not new", m)
		}
		ms = append(ms, m)
		refs = append(refs, ref)
	}
	perShard := map[uint32]int{}
	for i, m := range ms {
		if ref, isNew := s.Intern(m); isNew || ref != refs[i] {
			t.Fatalf("re-intern %v = (%v, %v), want (%v, false)", m, ref, isNew, refs[i])
		}
		if ref, ok := s.Lookup(m); !ok || ref != refs[i] {
			t.Fatalf("lookup %v = (%v, %v), want (%v, true)", m, ref, ok, refs[i])
		}
		if !s.At(refs[i]).Equal(m) {
			t.Fatalf("At(%v) = %v, want %v", refs[i], s.At(refs[i]), m)
		}
		perShard[refs[i].Shard]++
	}
	// With 128 markings over 2 shards both must have been exercised.
	if len(perShard) != 2 {
		t.Fatalf("expected both shards populated, got %v", perShard)
	}
	if s.Len() != len(ms) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ms))
	}
}

// TestShardedStoreConcurrentIntern: many goroutines interning
// overlapping marking sets must agree on one ref per distinct marking
// and never lose one. Run under -race (the Makefile does).
func TestShardedStoreConcurrentIntern(t *testing.T) {
	const places = 4
	const distinct = 300
	mk := func(i int) Marking { return Marking{i, i % 7, i % 13, i / 4} }
	s := NewShardedStore(places, 16)
	var wg sync.WaitGroup
	refs := make([][]ShardRef, 8)
	// Strides coprime to distinct, so each goroutine covers the whole
	// set in a different order and interleavings collide on markings.
	strides := []int{7, 11, 13, 17, 19, 23, 29, 31}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		refs[w] = make([]ShardRef, distinct)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < distinct; r++ {
				i := (r*strides[w] + w) % distinct
				ref, _ := s.Intern(mk(i))
				refs[w][i] = ref
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != distinct {
		t.Fatalf("Len = %d, want %d", s.Len(), distinct)
	}
	for i := 0; i < distinct; i++ {
		want, ok := s.Lookup(mk(i))
		if !ok {
			t.Fatalf("marking %d lost", i)
		}
		if !s.At(want).Equal(mk(i)) {
			t.Fatalf("At mismatch for %d", i)
		}
		for w := 0; w < 8; w++ {
			if refs[w][i] != want {
				t.Fatalf("goroutine %d saw ref %v for marking %d, lookup says %v", w, refs[w][i], i, want)
			}
		}
	}
}
