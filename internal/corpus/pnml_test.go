package corpus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/pnml"
)

// TestCorpusExportReach: the PNML interchange preserves exactly what
// exploration reads. For a sample of generated apps, the linked system
// net exports to PNML, the export round-trips as a fixed point, and
// the reimported net explores to the same reachability fingerprint as
// the original — so a net shipped through the interchange format
// analyzes identically to one built in-process.
func TestCorpusExportReach(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPipelines = 2
	cfg.MaxStages = 2
	cfg.MaxOps = 2
	cfg.MaxWidth = 2
	apps := GenerateCorpus(77, 8, cfg)
	// Imported nets fire structural sources unconditionally, so cap the
	// exploration: corpus nets are unbounded under FireSources.
	opt := pnml.AnalyzeOptions{MaxMarkings: 5000, MaxTokensPerPlace: 3}
	for _, app := range apps {
		net, err := core.SystemNet(app.FlowC, app.Spec)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		b1, err := pnml.ExportBytes(net)
		if err != nil {
			t.Fatalf("%s: export: %v", app.Name, err)
		}
		net2, err := pnml.ParseBytes(b1)
		if err != nil {
			t.Fatalf("%s: reimport: %v", app.Name, err)
		}
		b2, err := pnml.ExportBytes(net2)
		if err != nil {
			t.Fatalf("%s: re-export: %v", app.Name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: export -> import -> export is not a fixed point", app.Name)
		}
		a1, err := pnml.Analyze(net, opt)
		if err != nil {
			t.Fatalf("%s: analyze original: %v", app.Name, err)
		}
		a2, err := pnml.Analyze(net2, opt)
		if err != nil {
			t.Fatalf("%s: analyze reimport: %v", app.Name, err)
		}
		if a1.Fingerprint != a2.Fingerprint {
			t.Errorf("%s: reimported net explores differently: %s vs %s",
				app.Name, a2.Fingerprint, a1.Fingerprint)
		}
	}
}
