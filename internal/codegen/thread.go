package codegen

import (
	"sort"

	"repro/internal/sched"
)

// Thread is one reaction of the task (Section 6.1): starting from an
// await node, the statements executed until the next await node — here
// summarized as the directed graph of code segments the reaction can
// traverse, matching the per-thread graphs of Figure 15.
type Thread struct {
	// Start is the await node this thread serves.
	Start *sched.Node
	// Segments lists the indices of the code segments the thread can
	// execute, ascending; the entry segment (cs1) is always included.
	Segments []int
	// Edges lists observed segment-to-segment transfers (goto targets),
	// as [from, to] pairs in deterministic order.
	Edges [][2]int
}

// Threads extracts the thread structure of the task: one thread per
// await node of the schedule. The union of all threads covers every
// code segment (each reaction starts in cs1, the segment holding the
// source ECS).
func (t *Task) Threads() []Thread {
	s := t.Schedule
	segIdxOf := map[int]int{} // ECS index -> containing segment index
	for _, seg := range t.Segments {
		var walk func(n *SegNode)
		walk = func(n *SegNode) {
			segIdxOf[n.ECS.Index] = seg.Index
			for _, e := range n.Edges {
				if e.Child != nil {
					walk(e.Child)
				}
			}
		}
		walk(seg.Root)
	}
	var out []Thread
	for _, start := range s.AwaitNodes() {
		th := Thread{Start: start}
		segs := map[int]bool{}
		edges := map[[2]int]bool{}
		seen := map[int]bool{}
		// Traverse from the await node's successor until await nodes,
		// recording segment transfers.
		var visit func(n *sched.Node, curSeg int)
		visit = func(n *sched.Node, curSeg int) {
			if seen[n.ID] {
				return
			}
			seen[n.ID] = true
			e := t.ECSIdx[n.Edges[0].Trans]
			seg := segIdxOf[e]
			segs[seg] = true
			if seg != curSeg && curSeg >= 0 {
				edges[[2]int{curSeg, seg}] = true
			}
			if s.IsAwait(n) && n != start {
				return
			}
			for _, ed := range n.Edges {
				next := ed.To
				if s.IsAwait(next) {
					// Record entry into the next thread's cs1 without
					// traversing it.
					continue
				}
				visit(next, seg)
			}
		}
		// The await node itself belongs to cs1 (the source ECS).
		segs[segIdxOf[t.ECSIdx[s.Source]]] = true
		visit(start.Edges[0].To, segIdxOf[t.ECSIdx[s.Source]])
		for k := range segs {
			th.Segments = append(th.Segments, k)
		}
		sort.Ints(th.Segments)
		for k := range edges {
			th.Edges = append(th.Edges, k)
		}
		sort.Slice(th.Edges, func(i, j int) bool {
			if th.Edges[i][0] != th.Edges[j][0] {
				return th.Edges[i][0] < th.Edges[j][0]
			}
			return th.Edges[i][1] < th.Edges[j][1]
		})
		out = append(out, th)
	}
	return out
}
