// Package sched implements quasi-static schedule computation — the
// primary contribution of the paper. For every uncontrollable source
// transition it searches the (pruned) reachability tree of the system
// Petri net for a single-source schedule: a finite cyclic graph that
// survives every resolution of data-dependent choices and always returns
// to the initial marking, firing environment sources only at await nodes.
//
// The engines find enabled ECSs through petri.EnabledTracker (per-state
// bitsets maintained incrementally across firings) rather than by
// scanning the partition, and the default graph engine's exploration
// is the frontier half of the two-level parallelism model: with
// Options.ExploreWorkers >= 2 it fans each BFS level out over
// petri.RunFrontier while keeping state numbering — and therefore the
// schedule and generated code — byte-identical to the serial search.
// The source half (one search per uncontrollable input) is pooled by
// package core, which also wires the two levels into one core budget.
package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/petri"
)

// Node is one schedule node: a marking together with the equal conflict
// set scheduled at it. The out-edges carry exactly the transitions of the
// ECS.
type Node struct {
	ID      int
	Marking petri.Marking
	ECS     *petri.ECS
	Edges   []Edge
}

// Edge is one schedule edge.
type Edge struct {
	Trans int
	To    *Node
}

// Schedule is a single-source schedule for one uncontrollable source
// transition (Definition in Section 4.1: five properties).
type Schedule struct {
	Net    *petri.Net
	Source int // the uncontrollable source transition
	Root   *Node
	Nodes  []*Node // all nodes, root first

	// Stats describes the search that produced the schedule.
	Stats SearchStats
}

// SearchStats reports search effort.
type SearchStats struct {
	NodesCreated int // tree nodes created by EP/EP_ECS, or graph states
	NodesKept    int // schedule nodes after post-processing
	MaxDepth     int // deepest tree node
	Pruned       int // nodes cut by the termination condition
	// DistinctMarkings counts the markings interned by the search's
	// hash-consing store. For the graph engine it equals NodesCreated;
	// for the tree engines the gap NodesCreated-DistinctMarkings measures
	// how much interleaving re-exploration the graph engine avoids.
	DistinctMarkings int
	// StoreHotBytes/StoreFrozenBytes split the search store's exact live
	// footprint (petri.MarkingStore.Mem) between resident memory and the
	// frozen on-disk delta segment. FrozenBytes is 0 unless
	// Options.FreezeLevels was active; both are pure functions of the
	// interned marking sequence, so they compare across machines.
	StoreHotBytes    int64
	StoreFrozenBytes int64
	UsedTInv         bool // whether the T-invariant heuristic was active
}

// IsAwait reports whether the node awaits an environment trigger, i.e.
// its scheduled ECS is the singleton of an uncontrollable source.
func (s *Schedule) IsAwait(n *Node) bool {
	return n.ECS != nil && n.ECS.IsUncontrollable(s.Net)
}

// AwaitNodes returns all await nodes, root first.
func (s *Schedule) AwaitNodes() []*Node {
	var out []*Node
	for _, n := range s.Nodes {
		if s.IsAwait(n) {
			out = append(out, n)
		}
	}
	return out
}

// InvolvedTransitions returns the set of transition IDs appearing on
// schedule edges, ascending.
func (s *Schedule) InvolvedTransitions() []int {
	seen := map[int]bool{}
	for _, n := range s.Nodes {
		for _, e := range n.Edges {
			seen[e.Trans] = true
		}
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// InvolvedPlaces returns the IDs of places involved in the schedule: the
// predecessors of involved transitions (the paper's definition), plus
// places whose token count changes across schedule nodes.
func (s *Schedule) InvolvedPlaces() []int {
	seen := map[int]bool{}
	for _, t := range s.InvolvedTransitions() {
		for _, a := range s.Net.Transitions[t].In {
			seen[a.Place] = true
		}
		for _, a := range s.Net.Transitions[t].Out {
			seen[a.Place] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// PlaceBounds returns, for every place, the maximum token count over all
// schedule node markings. For places corresponding to channels this is
// the statically guaranteed buffer size (Section 4.3).
func (s *Schedule) PlaceBounds() []int {
	bounds := make([]int, len(s.Net.Places))
	for _, n := range s.Nodes {
		for p, v := range n.Marking {
			if v > bounds[p] {
				bounds[p] = v
			}
		}
	}
	return bounds
}

// Validate checks the five defining properties of a schedule:
//
//  1. the root carries the initial marking and has out-degree one;
//  2. the root's edge fires the schedule's source transition;
//  3. each node's out-edges carry exactly one enabled ECS;
//  4. each edge's target marking results from firing its transition;
//  5. every node lies on a directed cycle through the root.
func (s *Schedule) Validate() error {
	if s.Root == nil {
		return fmt.Errorf("sched: schedule has no root")
	}
	if !s.Root.Marking.Equal(s.Net.InitialMarking()) {
		return fmt.Errorf("sched: root marking %v differs from initial marking", s.Root.Marking)
	}
	if len(s.Root.Edges) != 1 {
		return fmt.Errorf("sched: root out-degree %d, want 1", len(s.Root.Edges))
	}
	if s.Root.Edges[0].Trans != s.Source {
		return fmt.Errorf("sched: root edge fires %s, want source %s",
			s.Net.Transitions[s.Root.Edges[0].Trans].Name, s.Net.Transitions[s.Source].Name)
	}
	part := s.Net.ECSPartition()
	idx := petri.ECSIndex(part, len(s.Net.Transitions))
	for _, n := range s.Nodes {
		if len(n.Edges) == 0 {
			return fmt.Errorf("sched: node %d has no out-edges", n.ID)
		}
		// All edges in one ECS, covering it entirely.
		e0 := idx[n.Edges[0].Trans]
		seen := map[int]bool{}
		for _, e := range n.Edges {
			if idx[e.Trans] != e0 {
				return fmt.Errorf("sched: node %d mixes ECSs", n.ID)
			}
			if seen[e.Trans] {
				return fmt.Errorf("sched: node %d duplicates transition %d", n.ID, e.Trans)
			}
			seen[e.Trans] = true
			t := s.Net.Transitions[e.Trans]
			if !n.Marking.Enabled(t) {
				return fmt.Errorf("sched: node %d: transition %s not enabled", n.ID, t.Name)
			}
			want := n.Marking.Fire(t)
			if !want.Equal(e.To.Marking) {
				return fmt.Errorf("sched: edge %d -%s-> %d: marking mismatch", n.ID, t.Name, e.To.ID)
			}
		}
		if len(seen) != len(part[e0].Trans) {
			return fmt.Errorf("sched: node %d covers only %d of %d ECS transitions",
				n.ID, len(seen), len(part[e0].Trans))
		}
	}
	// Property 5: every node reaches the root and is reachable from it.
	fromRoot := map[int]bool{}
	var dfs func(n *Node)
	dfs = func(n *Node) {
		if fromRoot[n.ID] {
			return
		}
		fromRoot[n.ID] = true
		for _, e := range n.Edges {
			dfs(e.To)
		}
	}
	dfs(s.Root)
	// Reverse reachability to root.
	rev := map[int][]*Node{}
	for _, n := range s.Nodes {
		for _, e := range n.Edges {
			rev[e.To.ID] = append(rev[e.To.ID], n)
		}
	}
	toRoot := map[int]bool{}
	stack := []*Node{s.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if toRoot[n.ID] {
			continue
		}
		toRoot[n.ID] = true
		for _, p := range rev[n.ID] {
			stack = append(stack, p)
		}
	}
	for _, n := range s.Nodes {
		if !fromRoot[n.ID] {
			return fmt.Errorf("sched: node %d unreachable from root", n.ID)
		}
		if !toRoot[n.ID] {
			return fmt.Errorf("sched: node %d cannot return to root (property 5)", n.ID)
		}
	}
	return nil
}

// Format renders the schedule as readable text, one node per line.
func (s *Schedule) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "schedule for %s (%d nodes)\n", s.Net.Transitions[s.Source].Name, len(s.Nodes))
	for _, n := range s.Nodes {
		tag := ""
		if n == s.Root {
			tag = " (root)"
		} else if s.IsAwait(n) {
			tag = " (await)"
		}
		fmt.Fprintf(bw, "  n%d [%s]%s:", n.ID, n.Marking.Format(s.Net), tag)
		for _, e := range n.Edges {
			fmt.Fprintf(bw, " -%s-> n%d", s.Net.Transitions[e.Trans].Name, e.To.ID)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Dot renders the schedule in Graphviz DOT format.
func (s *Schedule) Dot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph schedule_%s {\n", s.Net.Transitions[s.Source].Name)
	for _, n := range s.Nodes {
		shape := "ellipse"
		if s.IsAwait(n) {
			shape = "doublecircle"
		}
		fmt.Fprintf(bw, "  n%d [shape=%s label=\"%s\"];\n", n.ID, shape, n.Marking.Format(s.Net))
	}
	for _, n := range s.Nodes {
		for _, e := range n.Edges {
			fmt.Fprintf(bw, "  n%d -> n%d [label=\"%s\"];\n", n.ID, e.To.ID, s.Net.Transitions[e.Trans].Name)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
