package pnml

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/petri"
)

// parseFixture loads one vendored suite net.
func parseFixture(t *testing.T, name string) *petri.Net {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "suite", name))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ParseBytes(b)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return n
}

// TestParseFixtureShapes: the vendored nets import with the exact
// place/transition counts their structures define, in document order,
// with names taken from the <name> labels.
func TestParseFixtureShapes(t *testing.T) {
	cases := []struct {
		file          string
		places, trans int
		name          string
	}{
		{"philosophers-4.pnml", 16, 12, "philosophers-4"},
		{"kanban-2.pnml", 16, 16, "kanban-2"},
		{"token-ring-5.pnml", 20, 20, "token-ring-5"},
		{"swimming-pool.pnml", 8, 6, "swimming-pool"},
		{"producer-consumer-32.pnml", 6, 4, "producer-consumer-32"},
		{"choice-chain-24.pnml", 25, 49, "choice-chain-24"},
		{"unbounded-counter.pnml", 2, 3, "unbounded-counter"},
		{"multirate-burst.pnml", 3, 5, "multirate-burst"},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			n := parseFixture(t, c.file)
			if n.Name != c.name {
				t.Errorf("net name %q, want %q", n.Name, c.name)
			}
			if len(n.Places) != c.places || len(n.Transitions) != c.trans {
				t.Errorf("shape %dP/%dT, want %dP/%dT",
					len(n.Places), len(n.Transitions), c.places, c.trans)
			}
			if err := n.Validate(); err != nil {
				t.Errorf("imported net invalid: %v", err)
			}
		})
	}
}

// TestParseNestedPageOrder: places declared inside a nested <page> keep
// document order — the swimming-pool resources page comes first.
func TestParseNestedPageOrder(t *testing.T) {
	n := parseFixture(t, "swimming-pool.pnml")
	want := []string{"out", "cabins", "bags", "entered"}
	for i, w := range want {
		if n.Places[i].Name != w {
			t.Fatalf("place %d = %q, want %q (document order lost)", i, n.Places[i].Name, w)
		}
	}
	if n.Places[0].Initial != 6 || n.Places[1].Initial != 2 || n.Places[2].Initial != 3 {
		t.Fatalf("resource markings = %d/%d/%d, want 6/2/3",
			n.Places[0].Initial, n.Places[1].Initial, n.Places[2].Initial)
	}
}

// TestAnalyzePhilosophers: the 4-seat dining philosophers net is finite
// and contains the classic all-hold-left deadlock.
func TestAnalyzePhilosophers(t *testing.T) {
	a, err := Analyze(parseFixture(t, "philosophers-4.pnml"), AnalyzeOptions{MaxMarkings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reach.Truncated {
		t.Fatal("philosophers-4 should explore to completion")
	}
	if a.Deadlocks == 0 {
		t.Error("philosophers-4 must expose the circular-wait deadlock")
	}
	for p, b := range a.Bounds {
		if b > 1 {
			t.Errorf("place %s bound %d, want <= 1 (the net is safe)", a.Net.Places[p].Name, b)
		}
	}
}

// TestAnalyzeProducerConsumer: the 3-to-2 multirate net conserves
// credit+buffer, so the buffer's guaranteed bound is the credit supply.
func TestAnalyzeProducerConsumer(t *testing.T) {
	a, err := Analyze(parseFixture(t, "producer-consumer-32.pnml"), AnalyzeOptions{MaxMarkings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reach.Truncated {
		t.Fatal("producer-consumer should explore to completion")
	}
	buf := a.Net.PlaceByName("buffer")
	if buf == nil {
		t.Fatal("no buffer place")
	}
	if got := a.Bounds[buf.ID]; got != 6 {
		t.Errorf("buffer bound %d, want 6 (credit conservation)", got)
	}
}

// TestAnalyzeUnboundedTruncates: the sourced counter has no finite
// state space; the token cap must cut it off with Truncated set — the
// unboundedness witness.
func TestAnalyzeUnboundedTruncates(t *testing.T) {
	a, err := Analyze(parseFixture(t, "unbounded-counter.pnml"), AnalyzeOptions{MaxMarkings: 100000, MaxTokensPerPlace: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reach.Truncated {
		t.Fatal("unbounded-counter under a token cap must report truncation")
	}
	c := a.Net.PlaceByName("c")
	if c == nil {
		t.Fatal("no place c")
	}
	if got := a.Bounds[c.ID]; got != 6 {
		t.Errorf("capped bound %d, want the cap 6", got)
	}
}

// TestAnalyzeMultirateBounds: weighted-arc conservation on the 7/5/12
// burst net — the pool never exceeds its initial 35 tokens.
func TestAnalyzeMultirateBounds(t *testing.T) {
	a, err := Analyze(parseFixture(t, "multirate-burst.pnml"), AnalyzeOptions{MaxMarkings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reach.Truncated {
		t.Fatal("multirate-burst should explore to completion")
	}
	pool := a.Net.PlaceByName("pool")
	if got := a.Bounds[pool.ID]; got != 35 {
		t.Errorf("pool bound %d, want 35", got)
	}
}

// TestParseLenient: constructs several tools emit — bare character
// data in labels, namespace prefixes, processing instructions, entity
// escapes in names — import cleanly.
func TestParseLenient(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<!-- emitted by a hypothetical tool -->
<ns:pnml xmlns:ns="http://www.pnml.org/version-2009/grammar/pnml">
 <ns:net id="n" type="http://www.pnml.org/version-2009/grammar/ptnet">
  <ns:place id="p1"><ns:initialMarking> 2 </ns:initialMarking></ns:place>
  <ns:place id="p2"><ns:name><ns:text>a &lt;named&gt; place</ns:text></ns:name></ns:place>
  <ns:transition id="t1"/>
  <ns:arc id="a1" source="p1" target="t1"><ns:inscription>2</ns:inscription></ns:arc>
  <ns:arc id="a2" source="t1" target="p2"/>
 </ns:net>
</ns:pnml>`
	n, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "pnml" {
		t.Errorf("unnamed net = %q, want fallback \"pnml\"", n.Name)
	}
	if n.Places[0].Name != "p1" || n.Places[0].Initial != 2 {
		t.Errorf("p1 = %q init %d, want id fallback and marking 2", n.Places[0].Name, n.Places[0].Initial)
	}
	if n.Places[1].Name != "a <named> place" {
		t.Errorf("p2 name %q: entity decoding lost", n.Places[1].Name)
	}
	if w := n.Transitions[0].Weight(0); w != 2 {
		t.Errorf("arc weight %d, want 2", w)
	}
}

// TestParseAccumulatesDuplicateArcs: two PNML arcs over the same
// (place, transition) pair accumulate weight, matching petri.AddArc.
func TestParseAccumulatesDuplicateArcs(t *testing.T) {
	const doc = `<pnml><net id="n" type="ptnet">
 <place id="p"><initialMarking><text>4</text></initialMarking></place>
 <transition id="t"/>
 <arc id="a1" source="p" target="t"/>
 <arc id="a2" source="p" target="t"><inscription><text>2</text></inscription></arc>
</net></pnml>`
	n, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w := n.Transitions[0].Weight(0); w != 3 {
		t.Errorf("accumulated weight %d, want 3", w)
	}
}
