package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"

	"repro/internal/petri"
)

// Worker side: a replica of the exploration state plus the serve loop.
//
// In the default trimmed mode a worker holds marking vectors, hashes
// and enabled bitsets ONLY for the hash shards it owns: the coordinator
// sends it just the VecDelta records whose child lands in those shards,
// attaching the parent's token vector when the parent belongs to
// another worker (the worker can no longer re-fire from a full local
// replica). Per-worker memory therefore scales with owned states,
// ~1/N of the state space — the property that takes explorations past
// one machine's RAM. In the full-replica fallback every worker rebuilds
// the whole store from the broadcast Delta batches, trading memory
// parity with the coordinator for coordinator-side work: a full replica
// classifies every successor locally, while a trimmed one reports
// successors of foreign shards as new and leaves resolution to the
// coordinator's merge.
//
// Either way the worker expands exactly the frontier states whose shard
// it owns and classifies each successor as veto / known / new; ordering
// decisions stay with the coordinator, so results are byte-identical
// across modes and worker counts.

// WorkerOptions configures a worker's serve loop.
type WorkerOptions struct {
	// FullReplicas advertises (via hello) that this worker refuses
	// trimmed sessions; the coordinator downgrades the pool to
	// full-replica mode. For memory-rich workers that prefer local
	// successor classification over coordinator-side resolution.
	FullReplicas bool
	// DialAttempts caps the initial-dial retries of Serve (cmd/qssd
	// -dial-attempts): 0 retries until the dial budget expires, n > 0
	// gives up after n attempts even with budget left.
	DialAttempts int
	// FreezeLevels makes the replica evict committed levels of its
	// local store into an on-disk delta segment (petri.MarkingStore
	// freeze tier): once the coordinator commits a level, states below
	// it can never again be record parents or expansion sources, so
	// only their hashes and segment offsets stay resident. Shrinks the
	// per-worker footprint on top of what trimming already saves.
	// Protocol-3+ sessions only; results are byte-identical either way.
	FreezeLevels bool
}

// replica is one session's worker-side state.
type replica struct {
	net     *petri.Net
	part    []*petri.ECS
	tracker *petri.EnabledTracker
	stride  int
	spec    petri.ExpandSpec
	store   *petri.MarkingStore
	bits    []uint64
	scratch petri.Marking

	// Trimmed-mode state: gids maps the store's dense local ids to the
	// coordinator's global MarkIDs (strictly ascending, so the inverse
	// is a binary search), vcache holds boundary-parent vectors in
	// lockstep with the coordinator, and nextStart/levels validate that
	// expand messages arrive in frontier order.
	trim      bool
	gids      []petri.MarkID
	vcache    *vecCache
	rootCount int
	nextStart int
	levels    int

	// fwin buffers per-local-state provenance for the store's frozen
	// tier (WorkerOptions.FreezeLevels); nil when freezing is off.
	fwin *petri.FreezeWindow

	index, workers, shards int
}

// appendProv records the provenance of the local state just interned;
// every intern site must call it exactly once, in intern order.
func (r *replica) appendProv(p petri.FreezeProv) {
	if r.fwin != nil {
		r.fwin.Append(p)
	}
}

func newReplica(m *initMsg, freeze bool) (*replica, error) {
	r := &replica{
		net:     m.net,
		spec:    m.spec,
		trim:    m.trim,
		index:   m.index,
		workers: m.workers,
		shards:  m.shards,
		store:   petri.NewMarkingStore(len(m.net.Places)),
	}
	r.part = r.net.ECSPartition()
	r.tracker = petri.NewEnabledTracker(r.net, r.part)
	r.stride = r.tracker.Stride()
	if len(m.spec.Mask) != r.stride {
		return nil, fmt.Errorf("dist: spec mask has %d words, partition needs %d — net round-trip mismatch", len(m.spec.Mask), r.stride)
	}
	if len(m.spec.Caps) != len(r.net.Places) {
		return nil, fmt.Errorf("dist: spec caps cover %d places, net has %d", len(m.spec.Caps), len(r.net.Places))
	}
	if r.trim {
		r.vcache = newVecCache()
	}
	if freeze {
		if err := r.store.EnableFreeze(petri.FreezeConfig{Deltas: r.net.TokenDeltas()}); err == nil {
			r.fwin = &petri.FreezeWindow{}
		}
	}
	r.rootCount = len(m.roots)
	for i, root := range m.roots {
		if len(root) != len(r.net.Places) {
			return nil, fmt.Errorf("dist: root %d has %d places, net has %d", i, len(root), len(r.net.Places))
		}
		h := petri.HashMarking(root)
		if r.trim && !r.ownsHash(h) {
			continue
		}
		id, isNew := r.store.InternHashed(root, h)
		if !isNew {
			return nil, fmt.Errorf("dist: duplicate root %d", i)
		}
		if !r.trim && int(id) != i {
			return nil, fmt.Errorf("dist: root %d interned as %d", i, id)
		}
		r.appendProv(petri.FreezeProv{Parent: petri.NoMark}) // roots: verbatim
		if r.trim {
			r.gids = append(r.gids, petri.MarkID(i))
		}
		base := len(r.bits)
		r.bits = append(r.bits, make([]uint64, r.stride)...)
		r.tracker.Init(r.bits[base:base+r.stride], root)
	}
	return r, nil
}

// ownsHash reports whether this worker's shard range contains the
// marking hash.
func (r *replica) ownsHash(h uint64) bool {
	sh := petri.ShardOfHash(h, r.shards)
	return petri.ShardOwner(sh, r.shards, r.workers) == r.index
}

// owns reports whether this worker's shard range contains state id
// (a local store id).
func (r *replica) owns(id petri.MarkID) bool {
	return r.ownsHash(r.store.HashAt(id))
}

// gid maps a local store id to the coordinator's global MarkID — the
// identity in full-replica mode.
func (r *replica) gid(local petri.MarkID) petri.MarkID {
	if !r.trim {
		return local
	}
	return r.gids[local]
}

// localOf inverts gid: binary search over the ascending gids table in
// trimmed mode, a bounds check otherwise.
func (r *replica) localOf(g petri.MarkID) (petri.MarkID, bool) {
	if !r.trim {
		if int(g) >= r.store.Len() {
			return petri.NoMark, false
		}
		return g, true
	}
	i := sort.Search(len(r.gids), func(i int) bool { return r.gids[i] >= g })
	if i < len(r.gids) && r.gids[i] == g {
		return petri.MarkID(i), true
	}
	return petri.NoMark, false
}

// applyDelta re-fires one (parent, trans) discovery of a full-replica
// session, growing the store and the enabled-set arena exactly as the
// coordinator's merge did.
func (r *replica) applyDelta(d petri.Delta) error {
	if int(d.Parent) >= r.store.Len() {
		return fmt.Errorf("dist: delta parent %d beyond store (%d states)", d.Parent, r.store.Len())
	}
	if int(d.Trans) < 0 || int(d.Trans) >= len(r.net.Transitions) {
		return fmt.Errorf("dist: delta transition %d out of range", d.Trans)
	}
	t := r.net.Transitions[d.Trans]
	m := r.store.At(d.Parent)
	if !m.Enabled(t) {
		return fmt.Errorf("dist: delta fires disabled transition %s at state %d", t.Name, d.Parent)
	}
	r.scratch = m.FireInto(r.scratch, t)
	id, isNew := r.store.Intern(r.scratch)
	if !isNew {
		return fmt.Errorf("dist: delta (%d, %s) re-discovers state %d", d.Parent, t.Name, id)
	}
	r.appendProv(petri.FreezeProv{Parent: d.Parent, Trans: d.Trans}) // full replica: local id == global
	base := len(r.bits)
	r.bits = append(r.bits, make([]uint64, r.stride)...)
	r.tracker.Update(r.bits[base:base+r.stride],
		r.bits[int(d.Parent)*r.stride:(int(d.Parent)+1)*r.stride], int(d.Trans), r.store.At(id))
	return nil
}

// applyRec interns one owned child of a trimmed session. The parent
// vector comes from the owned store, from the record itself, or from
// the boundary-parent cache (whose state mirrors the coordinator's; a
// miss is a protocol failure, not a recoverable condition). A child
// derived from a shipped or cached vector gets its enabled set from
// tracker.Init — the incremental Update needs the parent's bitset,
// which only owned parents have. Init and Update agree bit-for-bit.
func (r *replica) applyRec(rec petri.VecDelta) error {
	if int(rec.Trans) < 0 || int(rec.Trans) >= len(r.net.Transitions) {
		return fmt.Errorf("dist: record transition %d out of range", rec.Trans)
	}
	t := r.net.Transitions[rec.Trans]
	var pv petri.Marking
	parentLocal := petri.NoMark
	if local, ok := r.localOf(rec.Parent); ok {
		if rec.ParentVec != nil {
			return fmt.Errorf("dist: record ships a vector for owned parent %d", rec.Parent)
		}
		parentLocal = local
		pv = r.store.At(local)
	} else if rec.ParentVec != nil {
		if len(rec.ParentVec) != len(r.net.Places) {
			return fmt.Errorf("dist: record parent %d vector has %d places, net has %d", rec.Parent, len(rec.ParentVec), len(r.net.Places))
		}
		pv = rec.ParentVec
		r.vcache.insert(rec.Parent, rec.ParentVec)
	} else {
		var ok bool
		pv, ok = r.vcache.get(rec.Parent)
		if !ok {
			return fmt.Errorf("dist: record parent %d neither owned, shipped nor cached — coordinator/worker cache drift", rec.Parent)
		}
	}
	if !pv.Enabled(t) {
		return fmt.Errorf("dist: record fires disabled transition %s at parent %d", t.Name, rec.Parent)
	}
	r.scratch = pv.FireInto(r.scratch, t)
	h := petri.HashMarking(r.scratch)
	if !r.ownsHash(h) {
		return fmt.Errorf("dist: record child %d routes outside this worker's shards", rec.Child)
	}
	id, isNew := r.store.InternHashed(r.scratch, h)
	if !isNew {
		return fmt.Errorf("dist: record (%d, %s) re-discovers state %d", rec.Parent, t.Name, r.gid(id))
	}
	if n := len(r.gids); n > 0 && r.gids[n-1] >= rec.Child {
		return fmt.Errorf("dist: record child %d not ascending (last %d)", rec.Child, r.gids[n-1])
	}
	// Provenance is in LOCAL ids: a non-owned parent (shipped or cached
	// vector) has none, so the child freezes verbatim.
	r.appendProv(petri.FreezeProv{Parent: parentLocal, Trans: rec.Trans})
	r.gids = append(r.gids, rec.Child)
	base := len(r.bits)
	r.bits = append(r.bits, make([]uint64, r.stride)...)
	if parentLocal != petri.NoMark {
		r.tracker.Update(r.bits[base:base+r.stride],
			r.bits[int(parentLocal)*r.stride:(int(parentLocal)+1)*r.stride], int(rec.Trans), r.store.At(id))
	} else {
		r.tracker.Init(r.bits[base:base+r.stride], r.store.At(id))
	}
	return nil
}

// applyRestore rebuilds a fresh replica from a protocol-4 bulk load
// (see restoreMsg): every shipped state is interned in ascending global
// id order with its enabled set recomputed from scratch (tracker.Init
// and the incremental Update agree bit-for-bit). A trimmed replica
// receives only owned states at or past the resume point — the states
// it may still have to expand or route records through; everything
// older was fully merged before the failure and can only come back as
// a candNew the coordinator resolves by hash. A full replica receives
// the dense store prefix.
func (r *replica) applyRestore(m *restoreMsg) error {
	if r.store.Len() != 0 || len(r.gids) != 0 {
		return fmt.Errorf("dist: restore into a non-empty replica (%d states)", r.store.Len())
	}
	if len(m.bounds) < 2 || m.bounds[0] != m.resumeFrom {
		return fmt.Errorf("dist: restore bounds %v do not start at resume point %d", m.bounds, m.resumeFrom)
	}
	for i := 1; i < len(m.bounds); i++ {
		if m.bounds[i] < m.bounds[i-1] {
			return fmt.Errorf("dist: restore bounds %v not ascending", m.bounds)
		}
	}
	for i, vec := range m.vecs {
		g := m.gids[i]
		if len(vec) != len(r.net.Places) {
			return fmt.Errorf("dist: restore state %d has %d places, net has %d", g, len(vec), len(r.net.Places))
		}
		h := petri.HashMarking(vec)
		if r.trim {
			if !r.ownsHash(h) {
				return fmt.Errorf("dist: restore state %d routes outside this worker's shards", g)
			}
			if int(g) < m.resumeFrom {
				return fmt.Errorf("dist: restore state %d below resume point %d", g, m.resumeFrom)
			}
			if n := len(r.gids); n > 0 && r.gids[n-1] >= g {
				return fmt.Errorf("dist: restore state %d not ascending (last %d)", g, r.gids[n-1])
			}
		} else if int(g) != i {
			return fmt.Errorf("dist: restore state %d at position %d — a full replica needs the dense prefix", g, i)
		}
		id, isNew := r.store.InternHashed(vec, h)
		if !isNew {
			return fmt.Errorf("dist: restore re-interns state %d as local %d", g, id)
		}
		r.appendProv(petri.FreezeProv{Parent: petri.NoMark}) // restored: verbatim
		if r.trim {
			r.gids = append(r.gids, g)
		}
		base := len(r.bits)
		r.bits = append(r.bits, make([]uint64, r.stride)...)
		r.tracker.Init(r.bits[base:base+r.stride], r.store.At(id))
	}
	return nil
}

// expandLevel applies the level's batch and expands the owned frontier
// states, appending the result payload to dst.
func (r *replica) expandLevel(dst []byte, msg *expandMsg) ([]byte, error) {
	if r.trim {
		return r.expandLevelTrim(dst, msg)
	}
	// The deltas must create exactly the frontier [start, end) on top of
	// the current replica — except on the first level, whose frontier is
	// the roots that arrived with init (no deltas).
	firstLevel := len(msg.deltas) == 0 && msg.start == 0 && msg.end == r.store.Len()
	if !firstLevel && (msg.start != r.store.Len() || len(msg.deltas) != msg.end-msg.start) {
		return nil, fmt.Errorf("dist: expand range [%d,%d) with %d deltas does not extend store of %d states",
			msg.start, msg.end, len(msg.deltas), r.store.Len())
	}
	for _, d := range msg.deltas {
		if err := r.applyDelta(d); err != nil {
			return nil, err
		}
	}
	if msg.end != r.store.Len() {
		return nil, fmt.Errorf("dist: frontier end %d, store has %d states after deltas", msg.end, r.store.Len())
	}
	// Count owned states first: the payload leads with the count.
	owned := 0
	for id := msg.start; id < msg.end; id++ {
		if r.owns(petri.MarkID(id)) {
			owned++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(owned))
	for id := msg.start; id < msg.end; id++ {
		if !r.owns(petri.MarkID(id)) {
			continue
		}
		dst = r.expandState(dst, petri.MarkID(id))
	}
	return dst, nil
}

// expandLevelTrim is expandLevel for a trimmed session: the batch holds
// only this worker's owned children, so the new frontier slice is
// exactly the locals the records intern.
func (r *replica) expandLevelTrim(dst []byte, msg *expandMsg) ([]byte, error) {
	if r.levels == 0 {
		if msg.start != 0 || msg.end != r.rootCount || len(msg.recs) != 0 {
			return nil, fmt.Errorf("dist: first expand [%d,%d) with %d records does not match %d roots",
				msg.start, msg.end, len(msg.recs), r.rootCount)
		}
	} else if msg.start != r.nextStart || msg.end < msg.start {
		return nil, fmt.Errorf("dist: expand range [%d,%d) does not extend frontier at %d", msg.start, msg.end, r.nextStart)
	}
	levelLo := r.store.Len()
	if r.levels == 0 {
		levelLo = 0 // the roots interned at init are the first frontier
	}
	for _, rec := range msg.recs {
		if int(rec.Child) < msg.start || int(rec.Child) >= msg.end {
			return nil, fmt.Errorf("dist: record child %d outside frontier [%d,%d)", rec.Child, msg.start, msg.end)
		}
		if err := r.applyRec(rec); err != nil {
			return nil, err
		}
	}
	r.nextStart = msg.end
	r.levels++
	owned := r.store.Len() - levelLo
	dst = binary.AppendUvarint(dst, uint64(owned))
	for local := levelLo; local < r.store.Len(); local++ {
		dst = r.expandState(dst, petri.MarkID(local))
	}
	return dst, nil
}

// expandState emits one owned state's candidate stream: the fireable
// enabled ECSs in partition order, members in ascending transition
// order — the serial loop's emit order, which the coordinator's merge
// depends on. id is a LOCAL store id; the stream names global ids.
func (r *replica) expandState(dst []byte, id petri.MarkID) []byte {
	m := r.store.At(id)
	bits := r.bits[int(id)*r.stride : (int(id)+1)*r.stride]
	// First pass counts candidates (the stream is length-prefixed);
	// enabled-set iteration is two bit scans, firing happens once.
	cands := 0
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		cands += len(r.part[ei].Trans)
	})
	dst = binary.AppendUvarint(dst, uint64(r.gid(id)))
	dst = binary.AppendUvarint(dst, uint64(cands))
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		for _, tid := range r.part[ei].Trans {
			r.scratch = m.FireInto(r.scratch, r.net.Transitions[tid])
			switch gid, _, ok := r.classify(); {
			case !ok:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candVeto)
			case gid != petri.NoMark:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candKnown)
				dst = binary.AppendUvarint(dst, uint64(gid))
			default:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candNew)
			}
		}
	})
	return dst
}

// expandStateV3 is expandState under the protocol-3 classification pin:
// a successor resolving to a global id at or beyond pin — the expanded
// state's own level start — is emitted candNew (with its 64-bit hash,
// one extra varint) instead of candKnown. Pipelined workers expand a
// state whenever its record arrives, so the replica may or may not
// already hold same-level or next-level successors at that moment; the
// pin makes the emitted bytes a pure function of the state, not of how
// far the record stream happened to have progressed, preserving the
// byte-identical determinism contract. The coordinator resolves every
// candNew by the shipped hash without re-firing.
func (r *replica) expandStateV3(dst []byte, id, pin petri.MarkID) []byte {
	m := r.store.At(id)
	bits := r.bits[int(id)*r.stride : (int(id)+1)*r.stride]
	cands := 0
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		cands += len(r.part[ei].Trans)
	})
	dst = binary.AppendUvarint(dst, uint64(r.gid(id)))
	dst = binary.AppendUvarint(dst, uint64(cands))
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		for _, tid := range r.part[ei].Trans {
			r.scratch = m.FireInto(r.scratch, r.net.Transitions[tid])
			switch gid, h, ok := r.classify(); {
			case !ok:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candVeto)
			case gid != petri.NoMark && gid < pin:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candKnown)
				dst = binary.AppendUvarint(dst, uint64(gid))
			default:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candNew)
				dst = binary.AppendUvarint(dst, h)
			}
		}
	})
	return dst
}

// classify resolves the scratch successor: ok=false for a cap veto,
// otherwise the replica-known global MarkID (or NoMark for a successor
// this worker cannot resolve — a first sighting, or in trimmed mode any
// successor routing to another worker's shards) plus the successor's
// hash, which protocol 3 ships with candNew candidates so the
// coordinator's merge resolves them against the authoritative store
// without re-firing.
func (r *replica) classify() (petri.MarkID, uint64, bool) {
	if r.spec.Veto(r.scratch) {
		return petri.NoMark, 0, false
	}
	h := petri.HashMarking(r.scratch)
	if r.trim && !r.ownsHash(h) {
		return petri.NoMark, h, true
	}
	if local, ok := r.store.LookupHashed(r.scratch, h); ok {
		return r.gid(local), h, true
	}
	return petri.NoMark, h, true
}

// freezeCommitted evicts local states that are both already expanded
// (below cursor) and below the just-committed level start — future
// records can only name parents inside the committed level, and
// expansion never revisits a state, so nothing hot-path reads their
// vectors again (dedup probes and candKnown resolution thaw on
// demand). No-op unless WorkerOptions.FreezeLevels armed the store; a
// segment write failure permanently reverts the session to all-hot.
func (r *replica) freezeCommitted(start int, cursor petri.MarkID) {
	if r.fwin == nil {
		return
	}
	floor := start // full replica: local id == global id
	if r.trim {
		floor = sort.Search(len(r.gids), func(i int) bool { return int(r.gids[i]) >= start })
	}
	if int(cursor) < floor {
		floor = int(cursor)
	}
	if err := r.store.FreezeThrough(floor, r.fwin.Prov); err != nil {
		r.fwin = nil
		return
	}
	r.fwin.Drop(r.store.FrozenLen())
}

// memStats summarizes the replica's memory for the end-of-session
// stats reply. Store accounting derives from the single
// petri.MarkingStore.Mem helper — plus the gids translation table
// (4 bytes per owned state in trimmed mode) — so this figure, the
// dist-memory CI gate and the server's worker-memory gauge can never
// silently diverge.
func (r *replica) memStats() WorkerMem {
	sm := r.store.Mem()
	m := WorkerMem{
		States:      r.store.Len(),
		StoreBytes:  sm.HotBytes + int64(len(r.gids))*4,
		BitsBytes:   int64(len(r.bits)) * 8,
		FrozenBytes: sm.FrozenBytes,
	}
	if r.vcache != nil {
		m.CacheBytes = int64(r.vcache.bytes())
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapBytes = int64(ms.HeapAlloc)
	return m
}

// transportError marks a connection-level failure (a recv or send on
// the coordinator link failed). A worker cannot recover from one — the
// session framing is lost — so the serve loop exits the process;
// everything else is session-scoped and survivable.
type transportError struct{ err error }

func (e *transportError) Error() string { return "dist: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

func transportErr(err error) error {
	if err == nil {
		return nil
	}
	return &transportError{err: err}
}

// ServeConn runs the worker side of a coordinator connection: hello,
// then exploration sessions until the coordinator closes the
// connection. It is the body of both spawned workers (MaybeWorker) and
// the standalone cmd/qssd binary.
//
// Failures are two-tier. A transport failure (the link itself broke)
// ends the serve loop: the process has nothing left to serve. A
// session-scoped failure — a malformed init, a batch that does not
// extend the replica, a coordinator bug — reports one msgError, then
// drains the remainder of the doomed session quietly and keeps serving:
// an externally started cmd/qssd worker stays available for the next
// session instead of dying on the first bad one.
func ServeConn(nc net.Conn, logw *logWriter, opt WorkerOptions) error {
	return serveConnVer(nc, logw, opt, protoVersion)
}

// serveConnVer is ServeConn with an explicit hello version; tests use
// it to stand up a protocol-2 worker against a newer coordinator and
// exercise the downgrade path.
func serveConnVer(nc net.Conn, logw *logWriter, opt WorkerOptions, ver int) error {
	c := newConn(nc)
	var flags uint64
	if opt.FullReplicas {
		flags |= helloFullReplicas
	}
	if err := c.sendHello(ver, flags, os.Getpid()); err != nil {
		return err
	}
	// draining: a session failed and its msgError went out; skip frames
	// until the next init. The drain is quiet — one report per failure —
	// because nothing guarantees the coordinator is still reading after
	// it learns of the error, and a msgError per stray frame could block
	// the worker on an unbuffered link forever.
	draining := false
	for {
		typ, payload, err := c.recv()
		if err == io.EOF {
			logw.printf("coordinator closed connection; exiting")
			return nil
		}
		if err != nil {
			return err
		}
		if typ != msgInit {
			if !draining {
				draining = true
				workerFail(c, logw, fmt.Errorf("dist: expected init, got message type %d", typ))
			}
			continue
		}
		draining = false
		init, err := decodeInit(payload, ver)
		if err == nil && init.trim && opt.FullReplicas {
			err = fmt.Errorf("dist: trimmed session offered to a full-replicas-only worker")
		}
		if err == nil {
			if init.proto >= 3 {
				err = serveSessionV3(c, init, logw, opt)
			} else {
				err = serveSession(c, init, logw)
			}
		}
		if err != nil {
			var te *transportError
			if errors.As(err, &te) {
				return err
			}
			draining = true
			workerFail(c, logw, err)
		}
	}
}

// serveSession runs one protocol-2 exploration: apply each level's
// batch, expand the owned slice of the frontier, reply, until done.
func serveSession(c *conn, init *initMsg, logw *logWriter) error {
	r, err := newReplica(init, false) // freezing needs the v3 level commits
	if err != nil {
		return err
	}
	mode := "full-replica"
	if r.trim {
		mode = "trimmed"
	}
	shardLo, shardHi := petri.OwnedShardRange(r.index, r.shards, r.workers)
	logw.printf("session start: net %s (%d places, %d transitions), worker %d/%d owning shards [%d,%d) of %d (%s), %d roots (%d owned)",
		r.net.Name, len(r.net.Places), len(r.net.Transitions), r.index, r.workers,
		shardLo, shardHi, r.shards, mode, r.rootCount, r.store.Len())
	levels := 0
	var deltas []petri.Delta
	var recs []petri.VecDelta
	var out []byte
	for {
		typ, payload, err := c.recv()
		if err != nil {
			return transportErr(err)
		}
		switch typ {
		case msgDone:
			mem := r.memStats()
			logw.printf("session end: %d levels, %d states held, %dB store, %dB bits, %dB cache",
				levels, mem.States, mem.StoreBytes, mem.BitsBytes, mem.CacheBytes)
			return transportErr(c.send(msgStats, appendStats(nil, mem)))
		case msgExpand:
			var msg *expandMsg
			msg, deltas, recs, err = decodeExpand(payload, r.trim, deltas, recs)
			if err != nil {
				return err
			}
			out, err = r.expandLevel(out[:0], msg)
			if err != nil {
				return err
			}
			if err := c.send(msgResult, out); err != nil {
				return transportErr(err)
			}
			levels++
		case msgError:
			return fmt.Errorf("dist: coordinator error: %s", payload)
		default:
			return fmt.Errorf("dist: unexpected message type %d in session", typ)
		}
	}
}

// serveSessionV3 runs one pipelined exploration. The coordinator
// streams store records (msgRecords) as its merge produces them and
// commits each finished level's id range (msgLevel); the worker expands
// every owned state as soon as it is interned, pinning classification
// at the state's level start (see expandStateV3), and streams the
// candidate bytes back as flow-controlled chunks. Expansion parks when
// the credit window is exhausted and resumes on msgAck; a partial chunk
// is flushed whenever the worker has expanded everything it holds, so
// the coordinator's merge never waits on buffered bytes.
func serveSessionV3(c *conn, init *initMsg, logw *logWriter, opt WorkerOptions) error {
	r, err := newReplica(init, opt.FreezeLevels)
	if err != nil {
		return err
	}
	if init.proto >= 4 {
		// Liveness deadlines live for the session only: a coordinator
		// that goes silent mid-session is dead (it would at least ping),
		// but a qssd worker idling between sessions must keep waiting.
		c.readTimeout = workerIdleTimeout
		c.writeTimeout = sendTimeout
		defer c.clearRead()
		defer c.clearWrite()
	}
	mode := "full-replica"
	if r.trim {
		mode = "trimmed"
	}
	shardLo, shardHi := petri.OwnedShardRange(r.index, r.shards, r.workers)
	logw.printf("session start (proto 3): net %s (%d places, %d transitions), worker %d/%d owning shards [%d,%d) of %d (%s), %d roots (%d owned)",
		r.net.Name, len(r.net.Places), len(r.net.Transitions), r.index, r.workers,
		shardLo, shardHi, r.shards, mode, r.rootCount, r.store.Len())

	// bounds holds the committed level starts plus, at bounds[len-1],
	// the start of the level records are currently building. Records
	// only ever target that one uncommitted level, so the pin of any
	// expandable state — the largest bound at or below its global id —
	// is already final when the state arrives, whatever the stream
	// timing: that is what keeps the emitted bytes deterministic.
	bounds := []int{0, r.rootCount}
	pinIdx := 0
	cursor := petri.MarkID(0) // next local store id to expand
	unacked := 0              // chunks in flight, bounded by chunkWindow
	chunks := 0
	virgin := true // no session traffic yet; a restore must come first

	var buf []byte
	var deltas []petri.Delta
	var recs []petri.VecDelta

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := c.send(msgChunk, buf); err != nil {
			return transportErr(err)
		}
		chunks++
		unacked++
		buf = buf[:0]
		return nil
	}
	pump := func() error {
		for int(cursor) < r.store.Len() {
			if unacked >= chunkWindow {
				return nil // parked; the next ack resumes expansion
			}
			if !r.trim && !r.owns(cursor) {
				cursor++
				continue
			}
			g := int(r.gid(cursor))
			for pinIdx+1 < len(bounds) && g >= bounds[pinIdx+1] {
				pinIdx++
			}
			buf = r.expandStateV3(buf, cursor, petri.MarkID(bounds[pinIdx]))
			cursor++
			if len(buf) >= chunkTarget {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if unacked < chunkWindow {
			return flush() // caught up: the merge may be blocked on these bytes
		}
		return nil
	}
	if err := pump(); err != nil { // the roots are expandable immediately
		return err
	}

	for {
		typ, payload, err := c.recv()
		if err != nil {
			return transportErr(err)
		}
		switch typ {
		case msgDone:
			// Parked or buffered candidates are discarded: done mid-level
			// means the merge aborted (a hook rejected the budget).
			mem := r.memStats()
			logw.printf("session end: %d levels, %d states held (%d frozen), %d chunks, %dB store, %dB frozen, %dB bits, %dB cache",
				len(bounds)-1, mem.States, r.store.FrozenLen(), chunks, mem.StoreBytes, mem.FrozenBytes, mem.BitsBytes, mem.CacheBytes)
			return transportErr(c.send(msgStats, appendStats(nil, mem)))
		case msgPing:
			if err := c.send(msgPong, nil); err != nil {
				return transportErr(err)
			}
		case msgRestore:
			if init.proto < 4 {
				return fmt.Errorf("dist: restore on a protocol-%d session", init.proto)
			}
			if !virgin {
				return fmt.Errorf("dist: restore after session traffic")
			}
			virgin = false
			m, err := decodeRestore(payload)
			if err != nil {
				return err
			}
			if err := r.applyRestore(m); err != nil {
				return err
			}
			bounds = append(bounds[:0], m.bounds...)
			pinIdx = 0
			cursor = 0
			if !r.trim {
				// The dense prefix below the resume point was fully merged
				// and expanded before the failure; only re-expand from the
				// replayed level on.
				cursor = petri.MarkID(m.resumeFrom)
			}
			logw.printf("restored %d states (resume at %d, %d bounds)", r.store.Len(), m.resumeFrom, len(m.bounds))
			if err := pump(); err != nil {
				return err
			}
		case msgRecords:
			virgin = false
			lo := bounds[len(bounds)-1]
			if r.trim {
				recs, _, err = petri.DecodeVecDeltas(recs[:0], payload)
				if err != nil {
					return err
				}
				for _, rec := range recs {
					if int(rec.Child) < lo {
						return fmt.Errorf("dist: record child %d below uncommitted level start %d", rec.Child, lo)
					}
					if err := r.applyRec(rec); err != nil {
						return err
					}
				}
			} else {
				deltas, _, err = petri.DecodeDeltas(deltas[:0], payload)
				if err != nil {
					return err
				}
				for _, d := range deltas {
					if r.store.Len() < lo {
						return fmt.Errorf("dist: delta arrives with store at %d, below uncommitted level start %d", r.store.Len(), lo)
					}
					if err := r.applyDelta(d); err != nil {
						return err
					}
				}
			}
			if err := pump(); err != nil {
				return err
			}
		case msgLevel:
			virgin = false
			start, end, err := decodeLevel(payload)
			if err != nil {
				return err
			}
			if start != bounds[len(bounds)-1] || end < start {
				return fmt.Errorf("dist: level commit [%d,%d) does not extend bounds at %d", start, end, bounds[len(bounds)-1])
			}
			if r.trim {
				if n := len(r.gids); n > 0 && int(r.gids[n-1]) >= end {
					return fmt.Errorf("dist: level commit [%d,%d) but record child %d already interned", start, end, r.gids[n-1])
				}
			} else if r.store.Len() != end {
				return fmt.Errorf("dist: level commit [%d,%d) but replica holds %d states", start, end, r.store.Len())
			}
			bounds = append(bounds, end)
			r.freezeCommitted(start, cursor)
			if err := pump(); err != nil {
				return err
			}
		case msgAck:
			n, _, err := decodeUvarint(payload)
			if err != nil {
				return fmt.Errorf("dist: ack: %w", err)
			}
			if int(n) > unacked {
				return fmt.Errorf("dist: ack for %d chunks with %d in flight", n, unacked)
			}
			unacked -= int(n)
			if err := pump(); err != nil {
				return err
			}
		case msgError:
			return fmt.Errorf("dist: coordinator error: %s", payload)
		default:
			return fmt.Errorf("dist: unexpected message type %d in session", typ)
		}
	}
}

// workerFail logs a session-scoped error and reports it to the
// coordinator. Exactly one msgError goes out per failure — the
// coordinator is guaranteed to still be reading at the moment a session
// first fails, but not afterwards — and the send is best-effort.
func workerFail(c *conn, logw *logWriter, err error) {
	logw.printf("session failed: %v", err)
	_ = c.send(msgError, []byte(err.Error()))
}
