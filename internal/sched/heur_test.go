package sched

import (
	"testing"

	"repro/internal/petri"
)

func TestTInvariantOrderHasBase(t *testing.T) {
	n := fig8Net(t)
	o := NewTInvariantOrder(n, 0, NewIrrelevance(n))
	if !o.HasBase {
		t.Error("fig8 has invariants containing a; HasBase should be true")
	}
	// A net without any invariant through the source.
	n2 := petri.New("nobase")
	p := n2.AddPlace("p", petri.PlaceChannel, 0)
	a := n2.AddTransition("a", petri.TransSourceUnc)
	n2.AddArcTP(a, p, 1)
	o2 := NewTInvariantOrder(n2, 0, NewIrrelevance(n2))
	if o2.HasBase {
		t.Error("pure producer has no T-invariant; HasBase should be false")
	}
}

func TestTInvariantOrderPrefersReturnPath(t *testing.T) {
	// At the marking p2 of fig8, ECS {d} (on the a,b,d invariant) should
	// be ordered before the source ECS {a}.
	n := fig8Net(t)
	term := NewIrrelevance(n)
	o := NewTInvariantOrder(n, 0, term)
	part := n.ECSPartition()
	m := petri.Marking{0, 1, 0} // p2 marked
	var enabled []*petri.ECS
	for _, e := range part {
		if e.Enabled(n, m) {
			enabled = append(enabled, e)
		}
	}
	got := o.Sort(&OrderContext{
		Net:     n,
		Marking: m,
		Fired:   make([]int, len(n.Transitions)),
		Source:  0,
	}, enabled)
	if len(got) < 2 {
		t.Fatalf("enabled ECSs = %d, want at least {d} and {a}", len(got))
	}
	first := n.Transitions[got[0].Trans[0]]
	if first.Name != "d" {
		t.Errorf("first ECS fires %s, want d (single non-source on the invariant)", first.Name)
	}
	last := n.Transitions[got[len(got)-1].Trans[0]]
	if !last.IsSource() {
		t.Errorf("sources should sort last, got %s", last.Name)
	}
}

func TestNaiveOrderIsIdentity(t *testing.T) {
	n := fig8Net(t)
	part := n.ECSPartition()
	got := NaiveOrder{}.Sort(nil, part)
	for i := range part {
		if got[i] != part[i] {
			t.Fatal("naive order must not reorder")
		}
	}
}

func TestSelectPriorityOrderPassThrough(t *testing.T) {
	// Without select places, the wrapper must preserve the inner order.
	n := fig8Net(t)
	part := n.ECSPartition()
	w := &SelectPriorityOrder{Inner: NaiveOrder{}, Net: n}
	got := w.Sort(&OrderContext{Net: n}, part)
	for i := range part {
		if got[i] != part[i] {
			t.Fatal("wrapper reordered non-select ECSs")
		}
	}
}
