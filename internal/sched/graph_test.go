package sched

import (
	"testing"

	"repro/internal/petri"
)

func TestGraphEngineMatchesTreeOnFig8(t *testing.T) {
	n := fig8Net(t)
	graph, err := FindSchedule(n, 0, &Options{Engine: EngineGraph})
	if err != nil {
		t.Fatalf("graph engine: %v", err)
	}
	tree, err := FindSchedule(n, 0, &Options{Engine: EngineTreeExhaustive})
	if err != nil {
		t.Fatalf("tree engine: %v", err)
	}
	if len(graph.Nodes) != len(tree.Nodes) {
		t.Errorf("graph schedule %d nodes, tree %d nodes", len(graph.Nodes), len(tree.Nodes))
	}
	// Same marking multiset.
	count := func(s *Schedule) map[string]int {
		out := map[string]int{}
		for _, nd := range s.Nodes {
			out[nd.Marking.Key()]++
		}
		return out
	}
	g, tr := count(graph), count(tree)
	for k, v := range g {
		if tr[k] != v {
			t.Errorf("marking %q: graph %d, tree %d", k, v, tr[k])
		}
	}
}

func TestGraphEngineAllPaperNets(t *testing.T) {
	// Every hand net of the paper figures must produce a valid schedule
	// (or correctly fail) under the graph engine; the per-figure
	// assertions live in paperfigs_test.go, this checks cross-engine
	// agreement on schedulability.
	type tc struct {
		name  string
		net   *petri.Net
		wants bool
	}
	cases := []tc{
		{"fig4a", fig4aNet(t), true},
		{"fig4b-unc", fig4bNet(petri.TransSourceUnc), false},
		{"fig4b-ctl", fig4bNet(petri.TransSourceCtl), true},
		{"fig5", fig5Net(t), true},
		{"fig6", fig6Net(t), true},
		{"divider-k3", dividerNet(3), true},
	}
	for _, c := range cases {
		for _, eng := range []Engine{EngineGraph, EngineTreeGreedy, EngineTreeExhaustive} {
			_, err := FindSchedule(c.net, 0, &Options{Engine: eng, NoFallback: true, MaxNodes: 100000})
			got := err == nil
			if got != c.wants {
				t.Errorf("%s engine %d: schedulable = %v, want %v (%v)", c.name, eng, got, c.wants, err)
			}
		}
	}
}

func TestGraphEngineBudget(t *testing.T) {
	n := fig6Net(t)
	_, err := FindSchedule(n, 0, &Options{MaxNodes: 2})
	if err == nil {
		t.Fatal("tiny budget should fail")
	}
}

func TestUserBoundsTermination(t *testing.T) {
	// fig4a needs two tokens in p1; a user bound of 1 forbids it.
	n := fig4aNet(t)
	n.Places[0].Bound = 1
	_, err := FindSchedule(n, 0, &Options{Term: UserBounds(n)})
	if err == nil {
		t.Fatal("user bound 1 should make fig4a unschedulable")
	}
	n.Places[0].Bound = 2
	s, err := FindSchedule(n, 0, &Options{Term: UserBounds(n)})
	if err != nil {
		t.Fatalf("user bound 2 should admit the schedule: %v", err)
	}
	if got := s.PlaceBounds()[0]; got != 2 {
		t.Errorf("bound used = %d, want 2", got)
	}
}

func TestAnyTerminationCaps(t *testing.T) {
	n := fig4aNet(t)
	term := Any{NewIrrelevance(n), UniformBounds(n, 1)}
	caps := term.Caps(n)
	if caps[0] != 1 {
		t.Errorf("Any caps should take the minimum, got %v", caps)
	}
	if _, err := FindSchedule(n, 0, &Options{Term: term}); err == nil {
		t.Error("combined termination should inherit the tighter bound")
	}
	if !term.Prune(petri.Marking{2}, []petri.Marking{{0}}) {
		t.Error("Any.Prune should trigger on the bounds member")
	}
	if term.Name() == "" {
		t.Error("Any.Name empty")
	}
}

func TestDepthLimitTermination(t *testing.T) {
	n := fig8Net(t)
	term := &DepthLimit{Max: 2}
	if !term.Prune(petri.Marking{0, 0, 0}, []petri.Marking{{0, 0, 0}, {1, 0, 0}}) {
		t.Error("depth 2 should prune with 2 ancestors")
	}
	// Too shallow for the e-cycle (needs depth ~5): tree search fails.
	_, err := FindSchedule(n, 0, &Options{
		Engine: EngineTreeExhaustive,
		Term:   Any{NewIrrelevance(n), term},
	})
	if err == nil {
		t.Error("depth limit 2 should defeat the fig8 search")
	}
}

func TestDiagnose(t *testing.T) {
	// Unschedulable net: diagnosis must show the root leaving X.
	n := fig4bNet(petri.TransSourceUnc)
	d := Diagnose(n, 0, nil)
	if d.Solved || d.RootInX {
		t.Errorf("fig4b diagnosis: solved=%v rootInX=%v, want false/false", d.Solved, d.RootInX)
	}
	if d.States == 0 {
		t.Error("diagnosis should report explored states")
	}
	// Schedulable net: solved.
	d = Diagnose(fig5Net(t), 0, nil)
	if !d.Solved {
		t.Error("fig5 should diagnose as solvable")
	}
}

func TestScheduleAwaitResume(t *testing.T) {
	// fig6's SSS(a) has two await nodes; a run of a,a must resume at the
	// intermediate await and return to the root await.
	n := fig6Net(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := BuildRun([]*Schedule{s}, []int{0, 0}, nil)
	if err != nil {
		t.Fatalf("BuildRun: %v", err)
	}
	m := n.InitialMarking()
	for _, tid := range run.Seq {
		if !m.Enabled(n.Transitions[tid]) {
			t.Fatalf("run not fireable at %s", n.Transitions[tid].Name)
		}
		m = m.Fire(n.Transitions[tid])
	}
	if !m.Equal(n.InitialMarking()) {
		t.Errorf("two triggers should return fig6 to the initial marking, got %v", m)
	}
}

func TestMutuallyIndependentDiagnostics(t *testing.T) {
	n := fig6Net(t)
	set, err := FindAll(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, why := MutuallyIndependent(set[0], set[1])
	if ok || why == "" {
		t.Errorf("fig6 schedules should report an interference diagnostic, got ok=%v %q", ok, why)
	}
	if bounds := CombinedPlaceBounds(set); len(bounds) != len(n.Places) {
		t.Errorf("CombinedPlaceBounds length %d", len(bounds))
	}
	if CombinedPlaceBounds(nil) != nil {
		t.Error("empty set should give nil bounds")
	}
}

// TestGraphEngineAllocAmortized pins the zero-alloc property of the
// graph engine's inner loop: allocations must not scale with the number
// of fired transitions. A k=8 divider visits hundreds of states and
// fires thousands of transitions; the engine may allocate for its
// arenas and per-state metadata (amortized growth), but the per-fired-
// transition hot pair (FireInto + store probe) contributes nothing —
// the total must stay far below the fired-transition count.
func TestGraphEngineAllocAmortized(t *testing.T) {
	n := dividerNet(24)
	n.Warm()
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("warmup search: %v", err)
	}
	states := s.Stats.NodesCreated
	if states < 10000 {
		t.Fatalf("divider-24 visited only %d states; test net too small to be meaningful", states)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := FindSchedule(n, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Every state fires at least one transition; per-fired-transition
	// allocation would show up as allocs >= states (~30000 here). What
	// remains scales with the *emitted schedule* (~625 kept nodes plus
	// validation) and amortized arena growth — an order of magnitude
	// below the state count.
	if allocs > float64(states)/4 {
		t.Fatalf("search allocated %.0f objects for %d states — inner loop is allocating per transition", allocs, states)
	}
}
