package petri

import (
	"fmt"
	mathbits "math/bits"
)

// Bounded-reachability utilities. The full reachability graph of a net
// with source transitions is infinite; these helpers explore a finite
// fragment for validation, testing and diagnostics.

// ReachResult is the outcome of a bounded exploration. Markings are
// hash-consed: Store assigns each distinct visited marking a dense
// MarkID, and Edges is indexed by it. The numbering, edges and flags
// are byte-identical for every ExploreOptions.Workers value (including
// the serial path) and for the tracked vs full-scan enablement paths.
type ReachResult struct {
	// Store interns every distinct marking visited; MarkID 0 is the
	// initial marking.
	Store *MarkingStore
	// Edges holds, for each visited marking, the (transition, successor)
	// pairs explored. len(Edges) == Store.Len().
	Edges [][]ReachEdge
	// Clipped marks sources of dropped edges: Clipped[id] is true when
	// some enabled firing at id was not recorded because the successor
	// exceeded MaxTokensPerPlace or the MaxMarkings budget. Such states
	// are incompletely explored, not dead.
	Clipped []bool
	// Truncated is true when the exploration hit a limit before
	// exhausting the state space (equivalently, when any state is
	// Clipped).
	Truncated bool
}

// ReachEdge is one edge of the explored reachability graph.
type ReachEdge struct {
	Trans int
	To    MarkID
}

// Len returns the number of distinct markings retained.
func (r *ReachResult) Len() int { return r.Store.Len() }

// MarkingAt returns the marking behind id (a read-only view).
func (r *ReachResult) MarkingAt(id MarkID) Marking { return r.Store.At(id) }

// ExploreOptions bounds a reachability exploration.
type ExploreOptions struct {
	// MaxMarkings limits the number of distinct markings (default 10000).
	MaxMarkings int
	// MaxTokensPerPlace prunes markings where any place exceeds this
	// count (0 = no pruning). Keeps nets with sources finite.
	MaxTokensPerPlace int
	// FireSources includes source transitions in the exploration when
	// true; otherwise only internal behaviour is explored.
	FireSources bool
	// Workers >= 2 explores each BFS level in parallel (see RunFrontier);
	// 0 or 1 keeps the exploration on the calling goroutine. State
	// numbering and edges are identical for every value.
	Workers int
	// DisableTracker falls back to testing every transition's enabling
	// condition at every state instead of maintaining enabled sets
	// incrementally with an EnabledTracker. Ablation/benchmark knob;
	// results are identical either way.
	DisableTracker bool
	// DistFallback makes ExploreDist rerun the exploration in-process
	// when the distributed runner fails (worker death with recovery
	// exhausted). The result is byte-identical to the distributed one,
	// so a failed pool degrades to local exploration instead of a lost
	// request. Off by default: callers that want to observe the
	// infrastructure failure (tests, pool health probes) see the error.
	DistFallback bool
	// FreezeLevels evicts the token vectors of closed BFS levels from
	// the hot arena into an on-disk delta segment (see MarkingStore
	// freeze.go), trading reconstruction cost on later reads for a hot
	// footprint that no longer grows with the vectors of the explored
	// space. The result is byte-identical either way — freezing happens
	// strictly after dense MarkID assignment. Ignored by the
	// DisableTracker ablation path; if the segment cannot be created or
	// written the exploration silently continues all-hot.
	FreezeLevels bool
}

// Explore performs a breadth-first bounded exploration from the initial
// marking. Enabled transitions are found by an incremental
// EnabledTracker (firing a transition only re-evaluates the ECSs whose
// presets it disturbs), successors are hash-consed through the result
// store, and the inner loop reuses one scratch vector, so firing a
// transition allocates only when it discovers a new marking. With
// Options.Workers >= 2 each BFS level fans out over a level-synchronous
// frontier with deterministic, serial-identical state numbering.
func (n *Net) Explore(opt ExploreOptions) *ReachResult {
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 10000
	}
	if opt.DisableTracker {
		return n.exploreFullScan(opt)
	}
	e := newReachExplorer(n, opt)
	if opt.Workers > 1 {
		e.exploreParallel()
	} else {
		e.exploreSerial()
	}
	return e.res
}

// ExploreDist is Explore with the frontier expansion delegated to the
// given runner — typically a pool of worker processes owning hash
// ranges of the marking space (internal/dist). The runner feeds the
// same sequential merge the in-process paths use, so the ReachResult —
// numbering, edges, flags — is byte-identical to Explore's for every
// worker-process count. The error reports an infrastructure failure
// (worker death, protocol corruption), never an exploration outcome —
// unless Options.DistFallback is set, in which case the exploration
// reruns in-process (Workers-governed) and the error is swallowed: the
// determinism contract guarantees the local result matches what the
// pool would have produced.
func (n *Net) ExploreDist(r FrontierRunner, opt ExploreOptions) (*ReachResult, error) {
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 10000
	}
	e := newReachExplorer(n, opt)
	if _, err := r.RunFrontier(n, e.res.Store, e.expandSpec(), e.mergeHooks()); err != nil {
		if !opt.DistFallback {
			return nil, err
		}
		// The failed session's hooks may have partially mutated the
		// explorer; rebuild from scratch and run the whole exploration
		// locally.
		e = newReachExplorer(n, opt)
		if opt.Workers > 1 {
			e.exploreParallel()
		} else {
			e.exploreSerial()
		}
	}
	return e.res, nil
}

// newReachExplorer builds the shared state of one exploration: result
// store seeded with the initial marking, incremental tracker, and the
// fireable-ECS mask (source ECSs excluded unless FireSources).
func newReachExplorer(n *Net, opt ExploreOptions) *reachExplorer {
	part := n.ECSPartition()
	tr := NewEnabledTracker(n, part)
	e := &reachExplorer{net: n, opt: opt, part: part, tracker: tr, stride: tr.Stride()}
	e.res = &ReachResult{Store: NewMarkingStore(len(n.Places))}
	m0 := n.InitialMarking()
	e.res.Store.Intern(m0)
	e.res.Edges = append(e.res.Edges, nil)
	e.res.Clipped = append(e.res.Clipped, false)
	e.bits = make([]uint64, e.stride)
	tr.Init(e.bits, m0)
	e.fireMask = make([]uint64, e.stride)
	for _, E := range part {
		if !opt.FireSources && E.IsSourceECS(n) {
			continue
		}
		e.fireMask[E.Index>>6] |= 1 << (uint(E.Index) & 63)
	}
	if opt.FreezeLevels {
		if err := e.res.Store.EnableFreeze(FreezeConfig{Deltas: n.TokenDeltas()}); err == nil {
			e.fwin = &FreezeWindow{}
			e.fwin.Append(FreezeProv{Parent: NoMark}) // root: verbatim
		}
	}
	return e
}

// reachExplorer carries the shared state of one Explore call.
type reachExplorer struct {
	net     *Net
	opt     ExploreOptions
	part    []*ECS
	tracker *EnabledTracker
	stride  int
	res     *ReachResult
	// bits is the per-state enabled-ECS arena: state id's set occupies
	// bits[id*stride : (id+1)*stride].
	bits     []uint64
	fireMask []uint64
	// fwin buffers per-state provenance for FreezeThrough when
	// Options.FreezeLevels is active; nil otherwise.
	fwin *FreezeWindow
}

// freezeTo evicts states below end into the store's frozen tier and
// drops their buffered provenance. A write failure permanently reverts
// the exploration to all-hot (already-frozen levels stay readable).
func (e *reachExplorer) freezeTo(end int) {
	if e.fwin == nil {
		return
	}
	if err := e.res.Store.FreezeThrough(end, e.fwin.Prov); err != nil {
		e.fwin = nil
		return
	}
	e.fwin.Drop(end)
}

// overCap reports whether the marking exceeds the per-place token cap.
func (e *reachExplorer) overCap(m Marking) bool {
	if e.opt.MaxTokensPerPlace <= 0 {
		return false
	}
	for _, v := range m {
		if v > e.opt.MaxTokensPerPlace {
			return true
		}
	}
	return false
}

// admitState grows the per-state side tables for a freshly interned id
// and computes its enabled set from the parent's.
func (e *reachExplorer) admitState(parent MarkID, trans int, m Marking) {
	if e.fwin != nil {
		e.fwin.Append(FreezeProv{Parent: parent, Trans: int32(trans)})
	}
	e.res.Edges = append(e.res.Edges, nil)
	e.res.Clipped = append(e.res.Clipped, false)
	base := len(e.bits)
	for i := 0; i < e.stride; i++ {
		e.bits = append(e.bits, 0)
	}
	e.tracker.Update(e.bits[base:base+e.stride], e.bits[int(parent)*e.stride:(int(parent)+1)*e.stride], trans, m)
}

// forEachFireable iterates the fireable ECSs of a state's enabled set
// in partition order — the serial and parallel paths share it so their
// edge order is identical by construction.
func (e *reachExplorer) forEachFireable(set []uint64, fn func(E *ECS)) {
	for w := 0; w < e.stride; w++ {
		x := set[w] & e.fireMask[w]
		for x != 0 {
			b := mathbits.TrailingZeros64(x)
			x &= x - 1
			fn(e.part[w*64+b])
		}
	}
}

func (e *reachExplorer) exploreSerial() {
	var scratch Marking
	parentBits := make([]uint64, e.stride)
	levelEnd := e.res.Store.Len()
	for qi := MarkID(0); int(qi) < e.res.Store.Len(); qi++ {
		// The serial queue crosses a BFS level boundary exactly when qi
		// reaches the store length observed at the previous boundary:
		// every state below it is now fully expanded, i.e. closed.
		if int(qi) == levelEnd {
			e.freezeTo(levelEnd)
			levelEnd = e.res.Store.Len()
		}
		m := e.res.Store.At(qi)
		// admitState below appends to (and may move) e.bits; iterate a
		// stable copy of this state's words.
		copy(parentBits, e.bits[int(qi)*e.stride:(int(qi)+1)*e.stride])
		e.forEachFireable(parentBits, func(E *ECS) {
			for _, tid := range E.Trans {
				scratch = m.FireInto(scratch, e.net.Transitions[tid])
				if e.overCap(scratch) {
					e.res.Truncated = true
					e.res.Clipped[qi] = true
					continue
				}
				id, ok := e.res.Store.Lookup(scratch)
				if !ok {
					if e.res.Store.Len() >= e.opt.MaxMarkings {
						e.res.Truncated = true
						e.res.Clipped[qi] = true
						continue
					}
					id, _ = e.res.Store.Intern(scratch)
					e.admitState(qi, tid, scratch)
				}
				e.res.Edges[qi] = append(e.res.Edges[qi], ReachEdge{Trans: tid, To: id})
			}
		})
	}
	e.freezeTo(e.res.Store.Len())
}

func (e *reachExplorer) exploreParallel() {
	scratch := make([]Marking, e.opt.Workers)
	RunFrontier(e.res.Store, e.opt.Workers, FrontierHooks{
		Expand: func(worker int, id MarkID, m Marking, emit func(int32, Marking)) {
			e.forEachFireable(e.bits[int(id)*e.stride:(int(id)+1)*e.stride], func(E *ECS) {
				for _, tid := range E.Trans {
					scratch[worker] = m.FireInto(scratch[worker], e.net.Transitions[tid])
					if e.overCap(scratch[worker]) {
						emit(int32(tid), nil)
						continue
					}
					emit(int32(tid), scratch[worker])
				}
			})
		},
		MergeHooks: e.mergeHooks(),
	})
}

// expandSpec captures this exploration's expansion rule for a worker
// process: the fireable mask plus the uniform token cap as a per-place
// caps vector. A worker expanding under the spec emits exactly the
// sequence the serial loop fires.
func (e *reachExplorer) expandSpec() ExpandSpec {
	caps := make([]int, len(e.net.Places))
	for i := range caps {
		if e.opt.MaxTokensPerPlace > 0 {
			caps[i] = e.opt.MaxTokensPerPlace
		} else {
			caps[i] = -1
		}
	}
	return ExpandSpec{Mask: e.fireMask, Caps: caps}
}

// mergeHooks returns the sequential phase-C hooks shared by the
// in-process parallel path and the distributed runner — one definition,
// so the two cannot drift apart.
func (e *reachExplorer) mergeHooks() MergeHooks {
	return MergeHooks{
		Admit: func() bool { return e.res.Store.Len() < e.opt.MaxMarkings },
		Edge: func(parent MarkID, trans int32, child MarkID, isNew bool) {
			if isNew {
				e.admitState(parent, int(trans), e.res.Store.At(child))
			}
			e.res.Edges[parent] = append(e.res.Edges[parent], ReachEdge{Trans: int(trans), To: child})
		},
		Reject: func(parent MarkID, trans int32, budget bool) bool {
			e.res.Truncated = true
			e.res.Clipped[parent] = true
			return true
		},
		LevelClosed: e.levelClosed(),
	}
}

// levelClosed returns the level-commit freeze hook, or nil when
// freezing is off (so runners skip the call entirely). Note the
// in-process RunFrontier path additionally keeps every vector hot in
// its ShardedStore dedup structure for the run's duration, so its
// savings are partial; the serial and distributed paths get the full
// effect.
func (e *reachExplorer) levelClosed() func(int) {
	if e.fwin == nil {
		return nil
	}
	return e.freezeTo
}

// exploreFullScan is the pre-tracker loop: every transition's enabling
// condition is tested at every state. Kept as the ablation baseline for
// the incremental tracker (ExploreOptions.DisableTracker).
func (n *Net) exploreFullScan(opt ExploreOptions) *ReachResult {
	res := &ReachResult{Store: NewMarkingStore(len(n.Places))}
	m0 := n.InitialMarking()
	res.Store.Intern(m0)
	res.Edges = append(res.Edges, nil)
	res.Clipped = append(res.Clipped, false)
	// Full-scan edge order follows the ECS partition like the tracked
	// paths, so all three produce byte-identical results.
	part := n.ECSPartition()
	var fireable []*ECS
	for _, E := range part {
		if !opt.FireSources && E.IsSourceECS(n) {
			continue
		}
		fireable = append(fireable, E)
	}
	var scratch Marking
	for qi := MarkID(0); int(qi) < res.Store.Len(); qi++ {
		m := res.Store.At(qi)
		for _, E := range fireable {
			if !E.Enabled(n, m) {
				continue
			}
			for _, tid := range E.Trans {
				scratch = m.FireInto(scratch, n.Transitions[tid])
				if opt.MaxTokensPerPlace > 0 {
					over := false
					for _, v := range scratch {
						if v > opt.MaxTokensPerPlace {
							over = true
							break
						}
					}
					if over {
						res.Truncated = true
						res.Clipped[qi] = true
						continue
					}
				}
				id, ok := res.Store.Lookup(scratch)
				if !ok {
					if res.Store.Len() >= opt.MaxMarkings {
						res.Truncated = true
						res.Clipped[qi] = true
						continue
					}
					id, _ = res.Store.Intern(scratch)
					res.Edges = append(res.Edges, nil)
					res.Clipped = append(res.Clipped, false)
				}
				res.Edges[qi] = append(res.Edges[qi], ReachEdge{Trans: tid, To: id})
			}
		}
	}
	return res
}

// DeadlockMarkings returns the IDs of visited markings with no explored
// outgoing edge (source firings excluded unless FireSources was set),
// in ascending MarkID order. States whose exploration was clipped by a
// limit are skipped — an unrecorded successor is not a deadlock.
func (r *ReachResult) DeadlockMarkings() []MarkID {
	var out []MarkID
	for id, edges := range r.Edges {
		if len(edges) == 0 && !r.Clipped[id] {
			out = append(out, MarkID(id))
		}
	}
	return out
}

// CoEnabled reports whether the two transitions are simultaneously
// enabled in any marking visited by the exploration. This is the exact
// (but bounded) version of the structural uniqueness test.
func (n *Net) CoEnabled(r *ReachResult, a, b int) (bool, error) {
	if a < 0 || a >= len(n.Transitions) || b < 0 || b >= len(n.Transitions) {
		return false, fmt.Errorf("petri: transition index out of range (%d, %d)", a, b)
	}
	ta, tb := n.Transitions[a], n.Transitions[b]
	for _, m := range r.Store.All() {
		if m.Enabled(ta) && m.Enabled(tb) {
			return true, nil
		}
	}
	return false, nil
}
