package flowc

import (
	"fmt"
)

// Parser is a recursive-descent parser for FlowC.
type Parser struct {
	toks []Token
	pos  int
}

// ParseFile parses a FlowC source file containing one or more PROCESS
// declarations.
func ParseFile(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := &File{}
	for p.cur().Kind != TokEOF {
		proc, err := p.parseProcess()
		if err != nil {
			return nil, err
		}
		f.Processes = append(f.Processes, proc)
	}
	if len(f.Processes) == 0 {
		return nil, fmt.Errorf("no PROCESS declarations found")
	}
	return f, nil
}

// ParseProcess parses a source containing exactly one process.
func ParseProcess(src string) (*Process, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(f.Processes) != 1 {
		return nil, fmt.Errorf("expected exactly one process, found %d", len(f.Processes))
	}
	return f.Processes[0], nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%v: expected %v, found %v %q", t.Pos, k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProcess() (*Process, error) {
	start, err := p.expect(TokProcess)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	proc := &Process{Name: name.Text, Pos: start.Pos}
	for !p.peekKind(TokRParen) {
		var dir PortDir
		switch p.cur().Kind {
		case TokIn:
			dir = PortIn
		case TokOut:
			dir = PortOut
		default:
			return nil, fmt.Errorf("%v: expected In or Out in port list, found %q", p.cur().Pos, p.cur().Text)
		}
		p.next()
		if _, err := p.expect(TokDPort); err != nil {
			return nil, err
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		proc.Ports = append(proc.Ports, PortDecl{Name: pn.Text, Dir: dir, Pos: pn.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	proc.Body = body
	return proc, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for !p.peekKind(TokRBrace) {
		if p.peekKind(TokEOF) {
			return nil, fmt.Errorf("%v: unterminated block", lb.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokSemi:
		p.next()
		return nil, nil
	case TokLBrace:
		return p.parseBlock()
	case TokIntType:
		return p.parseDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokSwitch:
		return p.parseSelect()
	case TokRead:
		return p.parseRead()
	case TokWrite:
		return p.parseWrite()
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: t.Pos}, nil
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	start, _ := p.expect(TokIntType)
	ds := &DeclStmt{Pos: start.Pos}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		vd := VarDecl{Name: name.Text, Pos: name.Pos}
		if p.accept(TokLBracket) {
			sz, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			if sz.Val <= 0 {
				return nil, fmt.Errorf("%v: array size must be positive", sz.Pos)
			}
			vd.ArraySize = int(sz.Val)
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		if p.accept(TokAssign) {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Vars = append(ds.Vars, vd)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	start, _ := p.expect(TokIf)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Pos: start.Pos}
	if p.accept(TokElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	start, _ := p.expect(TokWhile)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Pos: start.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	start, _ := p.expect(TokFor)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	node := &For{Pos: start.Pos}
	if !p.peekKind(TokSemi) {
		if p.peekKind(TokIntType) {
			init, err := p.parseDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			node.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			node.Init = &ExprStmt{X: x, Pos: x.ExprPos()}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.peekKind(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.peekKind(TokRParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

func (p *Parser) parseRead() (Stmt, error) {
	start, _ := p.expect(TokRead)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	port, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	// Destination: &scalar or array identifier.
	p.accept(TokAmp)
	dest, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	n, err := p.expect(TokInt)
	if err != nil {
		return nil, err
	}
	if n.Val <= 0 {
		return nil, fmt.Errorf("%v: nitems must be a positive constant", n.Pos)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Read{Port: port.Text, Dest: dest, NItems: int(n.Val), Pos: start.Pos}, nil
}

func (p *Parser) parseWrite() (Stmt, error) {
	start, _ := p.expect(TokWrite)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	port, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	src, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	n, err := p.expect(TokInt)
	if err != nil {
		return nil, err
	}
	if n.Val <= 0 {
		return nil, fmt.Errorf("%v: nitems must be a positive constant", n.Pos)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Write{Port: port.Text, Src: src, NItems: int(n.Val), Pos: start.Pos}, nil
}

// parseSelect parses `switch (SELECT(p0, n0, p1, n1, ...)) { case 0: ... }`.
func (p *Parser) parseSelect() (Stmt, error) {
	start, _ := p.expect(TokSwitch)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSelect); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	sel := &Select{Pos: start.Pos}
	for {
		port, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, fmt.Errorf("%v: SELECT item count must be positive", n.Pos)
		}
		sel.Arms = append(sel.Arms, SelectArm{Port: port.Text, NItems: int(n.Val), Pos: port.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	for !p.peekKind(TokRBrace) {
		if _, err := p.expect(TokCase); err != nil {
			return nil, err
		}
		idx, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		k := int(idx.Val)
		if k < 0 || k >= len(sel.Arms) {
			return nil, fmt.Errorf("%v: case %d out of range for SELECT with %d alternatives", idx.Pos, k, len(sel.Arms))
		}
		if seen[k] {
			return nil, fmt.Errorf("%v: duplicate case %d", idx.Pos, k)
		}
		seen[k] = true
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		var body []Stmt
		for !p.peekKind(TokCase) && !p.peekKind(TokRBrace) && !p.peekKind(TokBreak) {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				body = append(body, s)
			}
		}
		if p.accept(TokBreak) {
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
		sel.Arms[k].Body = body
	}
	p.next() // consume }
	return sel, nil
}

// Expression grammar (precedence climbing):
//
//	expr     := assign
//	assign   := or (('=' | '+=' | '-=') assign)?
//	or       := and ('||' and)*
//	and      := cmp ('&&' cmp)*
//	cmp      := add (('=='|'!='|'<'|'<='|'>'|'>=') add)*
//	add      := mul (('+'|'-') mul)*
//	mul      := unary (('*'|'/'|'%') unary)*
//	unary    := ('!'|'-'|'++'|'--') unary | postfix
//	postfix  := primary ('[' expr ']' | '++' | '--')*
//	primary  := IDENT | INT | '(' expr ')'
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokAssign, TokPlusEq, TokMinusEq:
		op := p.next()
		if !isLValue(lhs) {
			return nil, fmt.Errorf("%v: left side of %q is not assignable", op.Pos, op.Text)
		}
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{Op: op.Kind, LHS: lhs, RHS: rhs, Pos: op.Pos}, nil
	}
	return lhs, nil
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *Index:
		return true
	}
	return false
}

func (p *Parser) parseBinaryLevel(ops []TokKind, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		match := false
		for _, op := range ops {
			if p.peekKind(op) {
				match = true
				break
			}
		}
		if !match {
			return l, nil
		}
		op := p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.Kind, L: l, R: r, Pos: op.Pos}
	}
}

func (p *Parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokOrOr}, p.parseAnd)
}

func (p *Parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokAndAnd}, p.parseCmp)
}

func (p *Parser) parseCmp() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokEq, TokNeq, TokLt, TokLe, TokGt, TokGe}, p.parseAdd)
}

func (p *Parser) parseAdd() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokPlus, TokMinus}, p.parseMul)
}

func (p *Parser) parseMul() (Expr, error) {
	return p.parseBinaryLevel([]TokKind{TokStar, TokSlash, TokPercent}, p.parseUnary)
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokNot, TokMinus:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op.Kind, X: x, Pos: op.Pos}, nil
	case TokInc, TokDec:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if !isLValue(x) {
			return nil, fmt.Errorf("%v: operand of %q is not assignable", op.Pos, op.Text)
		}
		return &IncDec{Op: op.Kind, X: x, Post: false, Pos: op.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &Index{Arr: x, Idx: idx, Pos: lb.Pos}
		case TokInc, TokDec:
			op := p.next()
			if !isLValue(x) {
				return nil, fmt.Errorf("%v: operand of %q is not assignable", op.Pos, op.Text)
			}
			x = &IncDec{Op: op.Kind, X: x, Post: true, Pos: op.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.next()
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokInt:
		p.next()
		return &IntLit{Val: t.Val, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("%v: unexpected token %v %q in expression", t.Pos, t.Kind, t.Text)
}
