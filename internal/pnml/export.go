package pnml

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/petri"
)

// Export renders the net as canonical PNML (P/T grammar). The output is
// deterministic: ids are index-derived (p0..., t0..., a0...), arcs are
// emitted per transition — preset then postset, each sorted by place —
// and names are escaped verbatim. The FlowC-specific annotations a
// petri.Net may carry (place kinds and bounds, process ownership,
// transition kinds and code payloads) have no P/T representation and
// are dropped; what is kept — structure, weights, initial marking — is
// exactly what the exploration engines read, so an exported net
// explores identically to its source (see TestCorpusExportReach).
//
// Export followed by Parse followed by Export is a byte-for-byte fixed
// point, pinned by the round-trip tests and the fuzz harness.
func Export(w io.Writer, n *petri.Net) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `<?xml version="1.0" encoding="UTF-8"?>`)
	fmt.Fprintln(bw, `<pnml xmlns="http://www.pnml.org/version-2009/grammar/pnml">`)
	fmt.Fprintln(bw, `  <net id="net0" type="http://www.pnml.org/version-2009/grammar/ptnet">`)
	// Empty names normalize exactly like Parse's fallbacks ("pnml" for
	// the net, the node id for places and transitions), which is what
	// keeps export -> import -> export a fixed point for every input.
	netName := n.Name
	if netName == "" {
		netName = "pnml"
	}
	fmt.Fprintf(bw, "    <name><text>%s</text></name>\n", escape(netName))
	fmt.Fprintln(bw, `    <page id="page0">`)
	for i, p := range n.Places {
		fmt.Fprintf(bw, `      <place id="p%d">`, i)
		fmt.Fprintf(bw, "<name><text>%s</text></name>", escape(nonEmpty(p.Name, fmt.Sprintf("p%d", i))))
		if p.Initial != 0 {
			fmt.Fprintf(bw, "<initialMarking><text>%d</text></initialMarking>", p.Initial)
		}
		fmt.Fprintln(bw, "</place>")
	}
	for i, t := range n.Transitions {
		fmt.Fprintf(bw, `      <transition id="t%d">`, i)
		fmt.Fprintf(bw, "<name><text>%s</text></name>", escape(nonEmpty(t.Name, fmt.Sprintf("t%d", i))))
		fmt.Fprintln(bw, "</transition>")
	}
	arcID := 0
	emit := func(src, dst string, weight int) {
		fmt.Fprintf(bw, `      <arc id="a%d" source="%s" target="%s">`, arcID, src, dst)
		if weight != 1 {
			fmt.Fprintf(bw, "<inscription><text>%d</text></inscription>", weight)
		}
		fmt.Fprintln(bw, "</arc>")
		arcID++
	}
	for ti, t := range n.Transitions {
		in := append([]petri.Arc(nil), t.In...)
		sort.Slice(in, func(i, j int) bool { return in[i].Place < in[j].Place })
		for _, a := range in {
			emit(fmt.Sprintf("p%d", a.Place), fmt.Sprintf("t%d", ti), a.Weight)
		}
		out := append([]petri.Arc(nil), t.Out...)
		sort.Slice(out, func(i, j int) bool { return out[i].Place < out[j].Place })
		for _, a := range out {
			emit(fmt.Sprintf("t%d", ti), fmt.Sprintf("p%d", a.Place), a.Weight)
		}
	}
	fmt.Fprintln(bw, `    </page>`)
	fmt.Fprintln(bw, `  </net>`)
	fmt.Fprintln(bw, `</pnml>`)
	return bw.Flush()
}

// ExportBytes is Export into a byte slice.
func ExportBytes(n *petri.Net) ([]byte, error) {
	var sb strings.Builder
	if err := Export(&sb, n); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// nonEmpty returns s, or fallback when s is empty.
func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// escape renders s as XML character data.
func escape(s string) string {
	var sb strings.Builder
	// EscapeText only fails on a failing writer; strings.Builder never
	// fails.
	_ = xml.EscapeText(&sb, []byte(s))
	return sb.String()
}
