package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/petri"
)

// Pool is a coordinator's set of connected worker processes. It
// implements petri.FrontierRunner: each RunFrontier call is one
// exploration session sharded across the pool. A Pool serializes
// sessions internally, so it may be shared by sequential (or
// mutex-ordered) callers; Close tears the workers down.
type Pool struct {
	mu       sync.Mutex
	workers  []*conn
	wantFull []bool      // per worker: demanded full replicas in hello
	vers     []int       // per worker: protocol version from hello
	cmds     []*exec.Cmd // spawned locally; empty for Listen pools
	dir      string      // socket tempdir of a SpawnLocal pool
	full     bool        // coordinator-side full-replica fallback
	broken   error       // first infrastructure failure; poisons the pool
	closed   bool
	logw     *logWriter
	stats    SessionStats
}

// SessionStats describes the last completed exploration session —
// the protocol cost and per-worker replica memory the benchmarks and
// the CI memory gate report.
type SessionStats struct {
	Levels    int
	States    int
	Proto     int   // wire protocol the session spoke (2 for a mixed pool)
	Trimmed   bool  // replica mode the session actually ran in
	BytesSent int64 // coordinator -> workers (init, records, commits, acks)
	BytesRecv int64 // workers -> coordinator (candidate streams)
	// CandNew counts candNew candidates across the session's merge. At
	// protocol 3 each contributes one extra varint (the successor hash)
	// to BytesRecv and the coordinator resolves it by hash probe;
	// CoordFires counts the transitions the coordinator actually
	// re-fired — at protocol 3 only the genuinely new states it has to
	// materialize (plus the rare hash-alias fallback), at protocol 2
	// every candNew. Chunks counts protocol-3 candidate chunks received.
	CandNew    int64
	CoordFires int64
	Chunks     int64
	// Workers holds each worker's end-of-session replica accounting,
	// in worker-index order.
	Workers []WorkerMem
}

// spawnHandshakeTimeout bounds how long SpawnLocal waits for each
// spawned worker to connect and greet. Its main job is failing fast
// when the re-executed binary does not call MaybeWorker.
const spawnHandshakeTimeout = 30 * time.Second

// listenHandshakeTimeout is the per-worker accept deadline for
// externally started workers (cmd/qssd): humans start those by hand,
// possibly compiling first, so the window is generous.
const listenHandshakeTimeout = 5 * time.Minute

// SpawnLocal starts n worker processes by re-executing the current
// binary (which must call MaybeWorker early; see its doc) connected
// over a unix socket in a private temp directory, and returns the
// ready pool. The workers inherit the parent's environment, so
// QSS_DIST_LOGDIR propagates.
func SpawnLocal(n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: SpawnLocal needs >= 1 worker, got %d", n)
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: resolve executable: %w", err)
	}
	dir, err := os.MkdirTemp("", "qssdist-")
	if err != nil {
		return nil, err
	}
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	defer ln.Close()
	p := &Pool{dir: dir, logw: newLogWriter("coord")}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			EnvWorker+"=1",
			EnvEndpoint+"=unix:"+sock,
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		p.cmds = append(p.cmds, cmd)
	}
	if err := p.accept(ln, n, spawnHandshakeTimeout); err != nil {
		p.Close()
		return nil, err
	}
	p.logw.printf("spawned %d local workers over %s", n, sock)
	return p, nil
}

// Listen awaits n externally started workers (cmd/qssd -connect) at the
// endpoint ("unix:/path", "tcp:host:port", or a bare unix path) and
// returns the ready pool. The workers' lifecycle belongs to whoever
// started them; Close only drops the connections.
func Listen(endpoint string, n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Listen needs >= 1 worker, got %d", n)
	}
	network, addr, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	p := &Pool{logw: newLogWriter("coord")}
	if err := p.accept(ln, n, listenHandshakeTimeout); err != nil {
		p.Close()
		return nil, err
	}
	p.logw.printf("accepted %d workers at %s", n, endpoint)
	return p, nil
}

// accept gathers n hello-ing workers from the listener. The deadline
// applies per worker (reset before each Accept), so a slowly assembled
// external pool is not cut off by the earlier arrivals' wait.
func (p *Pool) accept(ln net.Listener, n int, timeout time.Duration) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	d, hasDeadline := ln.(deadliner)
	for len(p.workers) < n {
		if hasDeadline {
			if err := d.SetDeadline(time.Now().Add(timeout)); err != nil {
				return fmt.Errorf("dist: arm accept deadline: %w", err)
			}
		}
		nc, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: waiting for worker %d/%d: %w", len(p.workers)+1, n, err)
		}
		c := newConn(nc)
		if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			nc.Close()
			return fmt.Errorf("dist: arm handshake deadline: %w", err)
		}
		payload, err := c.expect(msgHello)
		var ver int
		var flags uint64
		if err == nil {
			ver, flags, err = checkHello(payload)
		}
		if err == nil {
			err = nc.SetDeadline(time.Time{})
		}
		if err != nil {
			nc.Close()
			return fmt.Errorf("dist: worker handshake: %w", err)
		}
		p.workers = append(p.workers, c)
		p.wantFull = append(p.wantFull, flags&helloFullReplicas != 0)
		p.vers = append(p.vers, ver)
	}
	return nil
}

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// SetFullReplicas switches the pool's later sessions to the
// full-replica fallback: every worker rebuilds the whole store from
// broadcast delta batches (memory parity with the coordinator) instead
// of holding only its owned shards. Results are byte-identical either
// way; full replicas trade worker memory for local successor
// classification. A worker that demanded full replicas in its hello
// (cmd/qssd -full-replicas) forces the fallback regardless.
func (p *Pool) SetFullReplicas(full bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.full = full
}

// trimmed reports the replica mode the next session will use. Callers
// hold p.mu.
func (p *Pool) trimmed() bool {
	if p.full {
		return false
	}
	for _, wf := range p.wantFull {
		if wf {
			return false
		}
	}
	return true
}

// Err reports the infrastructure failure that poisoned the pool, or
// nil while the pool is healthy. A session error is fatal to the pool
// (every later RunFrontier fails fast with the same cause), so
// long-lived owners amortizing one pool across many sessions — the
// resident server — probe Err after a failed synthesis to decide
// between retiring the pool and blaming the request.
func (p *Pool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// LastSessionStats returns the protocol accounting of the most recently
// completed RunFrontier session.
func (p *Pool) LastSessionStats() SessionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// closeTimeout bounds the teardown of locally spawned workers — one
// shared deadline for the whole pool, not per worker. A var so the
// lifecycle tests can shrink it.
var closeTimeout = 5 * time.Second

// Close ends every worker connection (workers exit on EOF), reaps
// locally spawned processes and removes the socket directory.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.workers {
		c.close()
	}
	firstErr := p.reapSpawned()
	if p.dir != "" {
		os.RemoveAll(p.dir)
	}
	return firstErr
}

// reapSpawned waits on every spawned worker concurrently under one
// shared deadline, so a hung pool tears down in closeTimeout total
// rather than closeTimeout per worker. Workers still running at the
// deadline are killed and then reaped; the kill itself is reported but
// a killed worker's Wait error is not (the kill was deliberate).
func (p *Pool) reapSpawned() error {
	if len(p.cmds) == 0 {
		return nil
	}
	type reap struct {
		i   int
		err error
	}
	done := make(chan reap, len(p.cmds))
	for i, cmd := range p.cmds {
		go func(i int, cmd *exec.Cmd) { done <- reap{i, cmd.Wait()} }(i, cmd)
	}
	var firstErr error
	reaped := make([]bool, len(p.cmds))
	killed := make([]bool, len(p.cmds))
	deadline := time.After(closeTimeout)
	for n := 0; n < len(p.cmds); {
		select {
		case r := <-done:
			n++
			reaped[r.i] = true
			if r.err != nil && !killed[r.i] && firstErr == nil {
				firstErr = fmt.Errorf("dist: worker %d exited: %w", p.cmds[r.i].Process.Pid, r.err)
			}
		case <-deadline:
			deadline = nil // fire once; the kills below unblock the reaps
			hung := 0
			for i, cmd := range p.cmds {
				if !reaped[i] {
					killed[i] = true
					hung++
					cmd.Process.Kill()
				}
			}
			if hung > 0 && firstErr == nil {
				firstErr = fmt.Errorf("dist: %d workers hung at close; killed", hung)
			}
		}
	}
	return firstErr
}

// RunFrontier implements petri.FrontierRunner: one exploration session
// over the pool. The coordinator broadcasts the net, spec and roots,
// then streams each level's record batch to the owning workers while
// merging their candidate streams as the bytes arrive — the sequential
// first-discovery merge walks frontier states in MarkID order and each
// state's candidates in the serial emit order, so the hooks observe
// exactly the serial loop's sequence and the numbering is
// byte-identical for every worker count. Returns false when a Reject
// hook aborted; a non-nil error is an infrastructure failure and
// poisons the pool.
func (p *Pool) RunFrontier(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (completed bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errors.New("dist: pool is closed")
	}
	if p.broken != nil {
		return false, fmt.Errorf("dist: pool failed earlier: %w", p.broken)
	}
	if p.sessionProto() >= 3 {
		completed, err = p.runSessionV3(n, store, spec, hooks)
	} else {
		completed, err = p.runSessionV2(n, store, spec, hooks)
	}
	if err != nil {
		p.broken = err
		p.logw.printf("session failed: %v", err)
	}
	return completed, err
}

// sessionProto picks the wire protocol for the next session: the
// minimum hello version across the pool, so one old worker downgrades
// every session to the barrier protocol it speaks. Callers hold p.mu.
func (p *Pool) sessionProto() int {
	v := protoVersion
	for _, wv := range p.vers {
		if wv < v {
			v = wv
		}
	}
	return v
}

// runSessionV2 is the protocol-2 session: per level, ship the record
// batch, gather every worker's complete candidate stream, merge. Kept
// for pools containing a version-2 worker.
func (p *Pool) runSessionV2(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (bool, error) {
	W := len(p.workers)
	S := petri.NumFrontierShards(W)
	trim := p.trimmed()
	roots := make([]petri.Marking, store.Len())
	for i := range roots {
		roots[i] = store.At(petri.MarkID(i))
	}
	start0 := startBytes(p.workers)
	for i, c := range p.workers {
		init := &initMsg{proto: 2, index: i, workers: W, shards: S, trim: trim, net: n, spec: spec, roots: roots}
		if err := c.send(msgInit, appendInit(nil, init, p.vers[i])); err != nil {
			return false, fmt.Errorf("dist: init worker %d: %w", i, err)
		}
	}
	p.stats = SessionStats{Trimmed: trim, Proto: 2}
	// owner maps an interned state to the worker owning its shard — the
	// shared pure-function partitioning every side agrees on.
	owner := func(id petri.MarkID) int {
		return petri.ShardOwner(petri.ShardOfHash(store.HashAt(id), S), S, W)
	}
	var (
		deltas  []petri.Delta      // full-replica mode: broadcast batch
		pending [][]petri.VecDelta // trimmed mode: per-worker batches
		vcaches []*vecCache        // trimmed mode: per-worker cache models
		scratch petri.Marking
		payload = make([]byte, 0, 1<<12)
		streams = make([]resultStream, W)
	)
	if trim {
		pending = make([][]petri.VecDelta, W)
		vcaches = make([]*vecCache, W)
		for i := range vcaches {
			vcaches[i] = newVecCache()
		}
	}
	finish := func(completed bool) (bool, error) {
		for i, c := range p.workers {
			if err := c.send(msgDone, nil); err != nil {
				return false, fmt.Errorf("dist: finish worker %d: %w", i, err)
			}
		}
		p.stats.Workers = make([]WorkerMem, W)
		for i, c := range p.workers {
			buf, err := c.expect(msgStats)
			if err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
			if p.stats.Workers[i], err = decodeStats(buf); err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
		}
		p.stats.States = store.Len()
		p.stats.BytesSent, p.stats.BytesRecv = sentRecvSince(p.workers, start0)
		p.logw.printf("session %s: %d levels, %d states, %dB sent, %dB received (trimmed=%v, completed=%v)",
			n.Name, p.stats.Levels, p.stats.States, p.stats.BytesSent, p.stats.BytesRecv, trim, completed)
		return completed, nil
	}
	for levelStart := 0; ; {
		levelEnd := store.Len()
		if levelStart == levelEnd {
			return finish(true)
		}
		if trim {
			// Per-worker batches: each worker receives only the records
			// whose child it owns. Vector attachment mirrors the
			// worker's cache in lockstep (see vcache.go): owned parents
			// never ship, boundary parents ship on cache miss.
			for i, c := range p.workers {
				recs := pending[i]
				for k := range recs {
					if owner(recs[k].Parent) == i {
						continue
					}
					if !vcaches[i].hit(recs[k].Parent) {
						recs[k].ParentVec = store.At(recs[k].Parent)
					}
				}
				payload = appendExpandTrim(payload[:0], levelStart, levelEnd, recs)
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
				pending[i] = recs[:0]
			}
		} else {
			payload = appendExpand(payload[:0], levelStart, levelEnd, deltas)
			for i, c := range p.workers {
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
			}
		}
		// Gather every stream before merging: the merge interleaves them
		// by state ownership. Reads are sequential — the workers compute
		// concurrently regardless, since the broadcast already happened.
		for i, c := range p.workers {
			buf, err := c.expect(msgResult)
			if err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
			if err := streams[i].reset(buf); err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
		}
		// Sequential first-discovery merge, exactly phase C of
		// petri.RunFrontier.
		deltas = deltas[:0]
		for id := levelStart; id < levelEnd; id++ {
			ow := owner(petri.MarkID(id))
			cands, err := streams[ow].nextState(id)
			if err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
			}
			if hooks.BeginState != nil {
				hooks.BeginState(petri.MarkID(id))
			}
			for k := 0; k < cands; k++ {
				tag, trans, known, err := streams[ow].nextCand()
				if err != nil {
					return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
				}
				if trans < 0 || trans >= len(n.Transitions) {
					return false, fmt.Errorf("dist: worker %d: candidate transition %d out of range", ow, trans)
				}
				switch tag {
				case candVeto:
					if !hooks.Reject(petri.MarkID(id), int32(trans), false) {
						return finish(false)
					}
				case candKnown:
					if int(known) >= levelEnd {
						return false, fmt.Errorf("dist: worker %d: known state %d beyond frontier %d", ow, known, levelEnd)
					}
					hooks.Edge(petri.MarkID(id), int32(trans), known, false)
				case candNew:
					p.stats.CandNew++
					p.stats.CoordFires++
					t := n.Transitions[trans]
					m := store.At(petri.MarkID(id))
					if !m.Enabled(t) {
						return false, fmt.Errorf("dist: worker %d: candidate fires disabled %s at state %d", ow, t.Name, id)
					}
					scratch = m.FireInto(scratch, t)
					if spec.Veto(scratch) {
						return false, fmt.Errorf("dist: worker %d: new candidate of state %d via %s exceeds the place caps — worker/coordinator spec mismatch", ow, id, t.Name)
					}
					h := petri.HashMarking(scratch)
					if g, ok := store.LookupHashed(scratch, h); ok {
						hooks.Edge(petri.MarkID(id), int32(trans), g, false)
						continue
					}
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(petri.MarkID(id), int32(trans), true) {
							return finish(false)
						}
						continue
					}
					g, _ := store.InternHashed(scratch, h)
					if trim {
						cw := petri.ShardOwner(petri.ShardOfHash(h, S), S, W)
						pending[cw] = append(pending[cw], petri.VecDelta{
							Child: g, Parent: petri.MarkID(id), Trans: int32(trans),
						})
					} else {
						deltas = append(deltas, petri.Delta{Parent: petri.MarkID(id), Trans: int32(trans)})
					}
					hooks.Edge(petri.MarkID(id), int32(trans), g, true)
				default:
					return false, fmt.Errorf("dist: worker %d: unknown candidate tag %d", ow, tag)
				}
			}
		}
		for i := range streams {
			if err := streams[i].done(); err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", i, err)
			}
		}
		p.stats.Levels++
		levelStart = levelEnd
	}
}

// runSessionV3 is the pipelined session. Per-connection reader
// goroutines queue frames on bounded channels, so the merge consumes
// worker W's candidate chunks the moment they arrive instead of
// barriering on every worker's complete level. New-state records stream
// to their owners mid-merge in recordFlush batches — workers expand
// their slice of level L+1 while the coordinator is still merging the
// tail of L — and each level's id range is committed (msgLevel) right
// before its merge begins, which is what lets workers pin
// classification at the level start (see expandStateV3) and keeps the
// wire bytes deterministic. candNew candidates carry the successor's
// hash: the coordinator classifies by hash probe and fires only the
// genuinely new states it must materialize.
//
// Deadlock freedom: a worker holds at most chunkWindow unacked chunks
// and keeps reading while parked; each reader channel has room for the
// full window plus a terminal frame, so the reader never blocks, worker
// writes always drain, and therefore coordinator writes (records,
// commits, acks) always drain too.
func (p *Pool) runSessionV3(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (bool, error) {
	W := len(p.workers)
	S := petri.NumFrontierShards(W)
	trim := p.trimmed()
	roots := make([]petri.Marking, store.Len())
	for i := range roots {
		roots[i] = store.At(petri.MarkID(i))
	}
	start0 := startBytes(p.workers)
	for i, c := range p.workers {
		init := &initMsg{proto: 3, index: i, workers: W, shards: S, trim: trim, net: n, spec: spec, roots: roots}
		if err := c.send(msgInit, appendInit(nil, init, p.vers[i])); err != nil {
			return false, fmt.Errorf("dist: init worker %d: %w", i, err)
		}
	}
	p.stats = SessionStats{Trimmed: trim, Proto: 3}
	owner := func(id petri.MarkID) int {
		return petri.ShardOwner(petri.ShardOfHash(store.HashAt(id), S), S, W)
	}
	links := make([]*workerLink, W)
	for i, c := range p.workers {
		links[i] = startLink(c)
	}
	streams := make([]chunkStream, W)
	for i := range streams {
		streams[i].link = links[i]
	}
	// fail poisons the session: close every connection so workers and
	// readers unwind, then drain the reader channels so no goroutine
	// outlives the session.
	fail := func(err error) (bool, error) {
		for _, c := range p.workers {
			c.close()
		}
		for _, l := range links {
			for range l.ch {
			}
		}
		return false, err
	}
	var (
		deltas  []petri.Delta      // full-replica mode: broadcast batches
		pending [][]petri.VecDelta // trimmed mode: per-worker batches
		vcaches []*vecCache        // trimmed mode: per-worker cache models
		scratch petri.Marking
		payload = make([]byte, 0, 1<<12)
	)
	if trim {
		pending = make([][]petri.VecDelta, W)
		vcaches = make([]*vecCache, W)
		for i := range vcaches {
			vcaches[i] = newVecCache()
		}
	}
	// flushRecs ships worker i's pending records. Boundary-parent vector
	// attachment happens here, at flush time in record order — the same
	// sequence the worker applies them in, keeping the two cache models
	// in lockstep (see vcache.go).
	flushRecs := func(i int) error {
		recs := pending[i]
		if len(recs) == 0 {
			return nil
		}
		for k := range recs {
			if owner(recs[k].Parent) == i {
				continue
			}
			if !vcaches[i].hit(recs[k].Parent) {
				recs[k].ParentVec = store.At(recs[k].Parent)
			}
		}
		payload = petri.AppendVecDeltas(payload[:0], recs)
		if err := p.workers[i].send(msgRecords, payload); err != nil {
			return fmt.Errorf("dist: records to worker %d: %w", i, err)
		}
		pending[i] = recs[:0]
		return nil
	}
	flushDeltas := func() error {
		if len(deltas) == 0 {
			return nil
		}
		payload = petri.AppendDeltas(payload[:0], deltas)
		for i, c := range p.workers {
			if err := c.send(msgRecords, payload); err != nil {
				return fmt.Errorf("dist: records to worker %d: %w", i, err)
			}
		}
		deltas = deltas[:0]
		return nil
	}
	finish := func(completed bool) (bool, error) {
		for i, c := range p.workers {
			if err := c.send(msgDone, nil); err != nil {
				return fail(fmt.Errorf("dist: finish worker %d: %w", i, err))
			}
		}
		p.stats.Workers = make([]WorkerMem, W)
		for i := range streams {
			if completed && (len(streams[i].buf) != 0 || streams[i].cands != 0) {
				return fail(fmt.Errorf("dist: worker %d stream not fully consumed (%d bytes, %d candidates left)", i, len(streams[i].buf), streams[i].cands))
			}
			p.stats.Chunks += int64(streams[i].chunks)
			// Drain to the stats frame; chunks past the merge's stopping
			// point are legitimate only on an aborted session.
			for {
				f, ok := <-links[i].ch
				if !ok {
					return fail(fmt.Errorf("dist: worker %d reader exited before stats", i))
				}
				if f.err != nil {
					return fail(fmt.Errorf("dist: stats from worker %d: %w", i, f.err))
				}
				if f.typ == msgChunk {
					if completed {
						return fail(fmt.Errorf("dist: worker %d streamed a chunk past the last level", i))
					}
					continue
				}
				if f.typ == msgError {
					return fail(fmt.Errorf("dist: worker %d error: %s", i, f.payload))
				}
				if f.typ != msgStats {
					return fail(fmt.Errorf("dist: worker %d: unexpected message type %d before stats", i, f.typ))
				}
				var err error
				if p.stats.Workers[i], err = decodeStats(f.payload); err != nil {
					return fail(fmt.Errorf("dist: stats from worker %d: %w", i, err))
				}
				break
			}
		}
		p.stats.States = store.Len()
		p.stats.BytesSent, p.stats.BytesRecv = sentRecvSince(p.workers, start0)
		p.logw.printf("session %s: %d levels, %d states, %d candNew (%d fires, %d chunks), %dB sent, %dB received (proto 3, trimmed=%v, completed=%v)",
			n.Name, p.stats.Levels, p.stats.States, p.stats.CandNew, p.stats.CoordFires, p.stats.Chunks, p.stats.BytesSent, p.stats.BytesRecv, trim, completed)
		return completed, nil
	}
	for levelStart := 0; ; {
		levelEnd := store.Len()
		if levelStart == levelEnd {
			return finish(true)
		}
		if levelStart > 0 {
			// The records of [levelStart, levelEnd) have been streaming
			// since the previous merge discovered them; flush the tails
			// and commit the range so workers can pin and expand the
			// whole level.
			if trim {
				for i := range p.workers {
					if err := flushRecs(i); err != nil {
						return fail(err)
					}
				}
			} else {
				if err := flushDeltas(); err != nil {
					return fail(err)
				}
			}
			payload = appendLevel(payload[:0], levelStart, levelEnd)
			for i, c := range p.workers {
				if err := c.send(msgLevel, payload); err != nil {
					return fail(fmt.Errorf("dist: level commit to worker %d: %w", i, err))
				}
			}
		}
		// Sequential first-discovery merge, exactly phase C of
		// petri.RunFrontier — consuming each owner's chunk stream as the
		// bytes arrive.
		for id := levelStart; id < levelEnd; id++ {
			ow := owner(petri.MarkID(id))
			cands, err := streams[ow].nextState(id)
			if err != nil {
				return fail(fmt.Errorf("dist: worker %d stream: %w", ow, err))
			}
			if hooks.BeginState != nil {
				hooks.BeginState(petri.MarkID(id))
			}
			for k := 0; k < cands; k++ {
				tag, trans, known, h, err := streams[ow].nextCand()
				if err != nil {
					return fail(fmt.Errorf("dist: worker %d stream: %w", ow, err))
				}
				if trans < 0 || trans >= len(n.Transitions) {
					return fail(fmt.Errorf("dist: worker %d: candidate transition %d out of range", ow, trans))
				}
				switch tag {
				case candVeto:
					if !hooks.Reject(petri.MarkID(id), int32(trans), false) {
						return finish(false)
					}
				case candKnown:
					// The worker pinned classification at the level start:
					// anything at or beyond it travels as candNew.
					if int(known) >= levelStart {
						return fail(fmt.Errorf("dist: worker %d: known state %d at or beyond level start %d", ow, known, levelStart))
					}
					hooks.Edge(petri.MarkID(id), int32(trans), known, false)
				case candNew:
					p.stats.CandNew++
					var g petri.MarkID
					var found, fired bool
					if !store.HashAliased() {
						g, found = store.LookupHash(h)
					} else {
						// Two interned markings share a hash: the bare
						// probe is ambiguous, fall back to firing for the
						// vector-exact lookup.
						t := n.Transitions[trans]
						if m := store.At(petri.MarkID(id)); m.Enabled(t) {
							scratch = m.FireInto(scratch, t)
						} else {
							return fail(fmt.Errorf("dist: worker %d: candidate fires disabled %s at state %d", ow, t.Name, id))
						}
						p.stats.CoordFires++
						fired = true
						g, found = store.LookupHashed(scratch, h)
					}
					if found {
						hooks.Edge(petri.MarkID(id), int32(trans), g, false)
						continue
					}
					// Genuinely new: fire once to materialize the vector.
					if !fired {
						t := n.Transitions[trans]
						m := store.At(petri.MarkID(id))
						if !m.Enabled(t) {
							return fail(fmt.Errorf("dist: worker %d: candidate fires disabled %s at state %d", ow, t.Name, id))
						}
						scratch = m.FireInto(scratch, t)
						p.stats.CoordFires++
					}
					if spec.Veto(scratch) {
						return fail(fmt.Errorf("dist: worker %d: new candidate of state %d exceeds the place caps — worker/coordinator spec mismatch", ow, id))
					}
					if hv := petri.HashMarking(scratch); hv != h {
						return fail(fmt.Errorf("dist: worker %d: candidate hash %#x, coordinator computes %#x — replica drift", ow, h, hv))
					}
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(petri.MarkID(id), int32(trans), true) {
							return finish(false)
						}
						continue
					}
					g, _ = store.InternHashed(scratch, h)
					if trim {
						cw := petri.ShardOwner(petri.ShardOfHash(h, S), S, W)
						pending[cw] = append(pending[cw], petri.VecDelta{
							Child: g, Parent: petri.MarkID(id), Trans: int32(trans),
						})
						if len(pending[cw]) >= recordFlush {
							if err := flushRecs(cw); err != nil {
								return fail(err)
							}
						}
					} else {
						deltas = append(deltas, petri.Delta{Parent: petri.MarkID(id), Trans: int32(trans)})
						if len(deltas) >= recordFlush {
							if err := flushDeltas(); err != nil {
								return fail(err)
							}
						}
					}
					hooks.Edge(petri.MarkID(id), int32(trans), g, true)
				default:
					return fail(fmt.Errorf("dist: worker %d: unknown candidate tag %d", ow, tag))
				}
			}
		}
		p.stats.Levels++
		levelStart = levelEnd
	}
}

// frame is one message forwarded by a per-connection reader goroutine.
type frame struct {
	typ     byte
	payload []byte
	err     error
}

// workerLink is a connection with its reader goroutine's frame channel.
// The channel holds a full credit window plus a terminal frame — the
// most a conforming worker ever has in flight — so the reader never
// blocks on a slow merge and worker-side sends always drain.
type workerLink struct {
	c  *conn
	ch chan frame
}

// startLink spawns the reader for one session on c. The reader exits —
// closing the channel — after forwarding a terminal frame: the
// session's stats reply, a worker error, or a transport failure.
func startLink(c *conn) *workerLink {
	l := &workerLink{c: c, ch: make(chan frame, chunkWindow+2)}
	go func() {
		defer close(l.ch)
		for {
			typ, payload, err := c.recvAlloc()
			if err != nil {
				l.ch <- frame{err: err}
				return
			}
			l.ch <- frame{typ: typ, payload: payload}
			if typ == msgStats || typ == msgError {
				return
			}
		}
	}()
	return l
}

// chunkStream is the merge-side cursor over one worker's protocol-3
// candidate stream. Chunks are cut at state-group boundaries, so a
// refill happens only between states; each chunk pulled off the reader
// channel is acknowledged immediately, returning the credit that lets
// the worker keep expanding ahead of the merge.
type chunkStream struct {
	link   *workerLink
	buf    []byte
	cands  int // candidates left within the current state group
	chunks int
}

func (s *chunkStream) refill() error {
	f, ok := <-s.link.ch
	if !ok {
		return fmt.Errorf("stream ended mid-session")
	}
	if f.err != nil {
		return f.err
	}
	switch f.typ {
	case msgChunk:
		s.buf = f.payload
		s.chunks++
		var ack [1]byte
		ack[0] = 1
		return s.link.c.send(msgAck, ack[:])
	case msgError:
		return fmt.Errorf("worker error: %s", f.payload)
	default:
		return fmt.Errorf("unexpected message type %d mid-session", f.typ)
	}
}

// nextState positions the stream at the given owned state and returns
// its candidate count, blocking on the worker's next chunk if the
// stream is dry.
func (s *chunkStream) nextState(want int) (int, error) {
	if s.cands != 0 {
		return 0, fmt.Errorf("previous state has %d unread candidates", s.cands)
	}
	for len(s.buf) == 0 {
		if err := s.refill(); err != nil {
			return 0, err
		}
	}
	id, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, fmt.Errorf("state id: %w", err)
	}
	if int(id) != want {
		return 0, fmt.Errorf("stream has state %d, merge expects %d", id, want)
	}
	n, rest, err := decodeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("candidate count: %w", err)
	}
	s.buf, s.cands = rest, int(n)
	return int(n), nil
}

// nextCand decodes one candidate; candNew candidates carry the
// successor's 64-bit hash at protocol 3.
func (s *chunkStream) nextCand() (tag int, trans int, known petri.MarkID, h uint64, err error) {
	if s.cands == 0 {
		return 0, 0, 0, 0, fmt.Errorf("no candidates left in state")
	}
	v, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("candidate: %w", err)
	}
	tag, trans = int(v&3), int(v>>2)
	switch tag {
	case candKnown:
		var g uint64
		g, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("known id: %w", err)
		}
		known = petri.MarkID(g)
	case candNew:
		h, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("candidate hash: %w", err)
		}
	}
	s.buf, s.cands = rest, s.cands-1
	return tag, trans, known, h, nil
}

func startBytes(ws []*conn) (totals [2]int64) {
	for _, c := range ws {
		totals[0] += c.sent
		totals[1] += c.received
	}
	return totals
}

func sentRecvSince(ws []*conn, start [2]int64) (sent, recv int64) {
	now := startBytes(ws)
	return now[0] - start[0], now[1] - start[1]
}

// resultStream is a cursor over one worker's per-level candidate
// payload.
type resultStream struct {
	buf       []byte
	remaining int // owned states left
	cands     int // candidates left within the current state
}

func (s *resultStream) reset(buf []byte) error {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return fmt.Errorf("state count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, int(n), 0
	return nil
}

// nextState positions the stream at the given owned state and returns
// its candidate count.
func (s *resultStream) nextState(want int) (int, error) {
	if s.cands != 0 {
		return 0, fmt.Errorf("previous state has %d unread candidates", s.cands)
	}
	if s.remaining == 0 {
		return 0, fmt.Errorf("stream exhausted before state %d", want)
	}
	id, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, fmt.Errorf("state id: %w", err)
	}
	if int(id) != want {
		return 0, fmt.Errorf("stream has state %d, merge expects %d", id, want)
	}
	n, rest, err := decodeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("candidate count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, s.remaining-1, int(n)
	return int(n), nil
}

func (s *resultStream) nextCand() (tag int, trans int, known petri.MarkID, err error) {
	if s.cands == 0 {
		return 0, 0, 0, fmt.Errorf("no candidates left in state")
	}
	v, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("candidate: %w", err)
	}
	tag, trans = int(v&3), int(v>>2)
	if tag == candKnown {
		var g uint64
		g, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("known id: %w", err)
		}
		known = petri.MarkID(g)
	}
	s.buf, s.cands = rest, s.cands-1
	return tag, trans, known, nil
}

// done verifies the level's stream was fully consumed.
func (s *resultStream) done() error {
	if s.remaining != 0 || s.cands != 0 || len(s.buf) != 0 {
		return fmt.Errorf("stream not fully consumed (%d states, %d candidates, %d bytes left)", s.remaining, s.cands, len(s.buf))
	}
	return nil
}
