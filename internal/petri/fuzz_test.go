package petri

import "testing"

// netFromBytes decodes an arbitrary byte string into a small valid net:
// up to 5 places with initial tokens, up to 6 transitions of varying
// kinds, and arcs with weights 1..3 drawn from the remaining bytes.
// Every byte string decodes to something, so the fuzzer explores net
// shapes freely without needing a structured corpus.
func netFromBytes(data []byte) *Net {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := New("fuzz")
	nPlaces := int(next()%5) + 1
	for i := 0; i < nPlaces; i++ {
		kind := PlaceInternal
		if next()%3 == 0 {
			kind = PlaceChannel
		}
		n.AddPlace("", kind, int(next()%3))
	}
	nTrans := int(next()%6) + 1
	for i := 0; i < nTrans; i++ {
		kind := TransNormal
		switch next() % 8 {
		case 0:
			kind = TransSourceUnc
		case 1:
			kind = TransSourceCtl
		case 2:
			kind = TransSink
		}
		t := n.AddTransition("", kind)
		nIn := int(next() % 3)
		nOut := int(next() % 3)
		// Sources have no input places by definition; keep the decoder
		// from building nets Validate would reject.
		if t.IsSource() {
			nIn = 0
		}
		for a := 0; a < nIn; a++ {
			p := n.Places[int(next())%nPlaces]
			n.AddArc(p, t, int(next()%3)+1)
		}
		for a := 0; a < nOut; a++ {
			p := n.Places[int(next())%nPlaces]
			n.AddArcTP(t, p, int(next()%3)+1)
		}
	}
	return n
}

// FuzzExplore checks the bounded-reachability contract on arbitrary
// small nets: exploration never panics, never retains more markings
// than MaxMarkings, never retains a non-initial marking violating
// MaxTokensPerPlace, and — when it did not truncate — records edges
// only between retained markings.
func FuzzExplore(f *testing.F) {
	f.Add([]byte{}, uint8(10), uint8(2), true)
	f.Add([]byte{3, 0, 1, 1, 2, 4, 0, 1, 1, 0, 2, 1, 1, 2, 1, 0, 1}, uint8(50), uint8(3), true)
	f.Add([]byte{1, 0, 2, 2, 1, 0, 0, 1, 0, 1}, uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, data []byte, maxMarkings, maxTokens uint8, fireSources bool) {
		n := netFromBytes(data)
		if err := n.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid net: %v", err)
		}
		opt := ExploreOptions{
			// Small caps keep each exec fast; 0 exercises the defaults.
			MaxMarkings:       int(maxMarkings % 128),
			MaxTokensPerPlace: int(maxTokens % 8),
			FireSources:       fireSources,
		}
		res := n.Explore(opt)
		limit := opt.MaxMarkings
		if limit == 0 {
			limit = 10000
		}
		if res.Len() > limit {
			t.Fatalf("retained %d markings, cap %d", res.Len(), limit)
		}
		m0 := n.InitialMarking()
		if id, ok := res.Store.Lookup(m0); !ok || id != MarkID(0) {
			t.Fatalf("initial marking not interned as MarkID 0 (id=%v ok=%v)", id, ok)
		}
		seen := map[string]bool{}
		for id, m := range res.Store.All() {
			key := m.Key()
			if seen[key] {
				t.Fatalf("marking %q interned twice (hash-consing broken)", key)
			}
			seen[key] = true
			if got, ok := res.Store.Lookup(m); !ok || got != id {
				t.Fatalf("round-trip of interned marking %q failed: got %v ok %v", key, got, ok)
			}
			if opt.MaxTokensPerPlace > 0 && !m.Equal(m0) {
				for p, v := range m {
					if v > opt.MaxTokensPerPlace {
						t.Fatalf("retained marking exceeds token cap at place %d: %d > %d", p, v, opt.MaxTokensPerPlace)
					}
				}
			}
		}
		if len(res.Edges) != res.Len() {
			t.Fatalf("edge table has %d rows for %d markings", len(res.Edges), res.Len())
		}
		for from, edges := range res.Edges {
			for _, e := range edges {
				if int(e.To) >= res.Len() {
					t.Fatalf("edge %d -> %d targets an unretained marking", from, e.To)
				}
				next := res.MarkingAt(MarkID(from)).Fire(n.Transitions[e.Trans])
				if !next.Equal(res.MarkingAt(e.To)) {
					t.Fatalf("edge %d -%d-> %d is not a firing", from, e.Trans, e.To)
				}
			}
		}
		// The parallel frontier must reproduce the serial result
		// byte-for-byte: same numbering, edges and clip flags.
		popt := opt
		popt.Workers = 3
		pres := n.Explore(popt)
		if pres.Len() != res.Len() || pres.Truncated != res.Truncated {
			t.Fatalf("parallel explore: %d markings truncated=%v, serial %d/%v",
				pres.Len(), pres.Truncated, res.Len(), res.Truncated)
		}
		for id, m := range res.Store.All() {
			if !pres.MarkingAt(id).Equal(m) {
				t.Fatalf("parallel explore numbered marking %d differently", id)
			}
			if len(pres.Edges[id]) != len(res.Edges[id]) || pres.Clipped[id] != res.Clipped[id] {
				t.Fatalf("parallel explore edges/clip differ at marking %d", id)
			}
			for j, e := range res.Edges[id] {
				if pres.Edges[id][j] != e {
					t.Fatalf("parallel explore edge %d/%d differs", id, j)
				}
			}
		}
	})
}
