package sched

import (
	"fmt"

	"repro/internal/petri"
)

// Termination is a pluggable condition θ that prunes the schedule search
// (Section 4.4): when Prune returns true for a freshly created tree node,
// the search does not continue below it. The search space RT_θ is the
// maximal subtree of the reachability tree on which θ never holds.
type Termination interface {
	// Prune receives the new node's marking and the markings of its
	// proper ancestors, root first. The slice aliases an engine-owned
	// stack: implementations must not retain it across calls. All
	// built-in conditions treat it as an unordered set (plus its
	// length), which is what lets the engines maintain it push/pop
	// instead of rebuilding it per node.
	Prune(m petri.Marking, ancestors []petri.Marking) bool
	// Name identifies the condition in diagnostics.
	Name() string
}

// Irrelevance is the paper's irrelevant-marking criterion (Def. 4.5):
// prune a marking that covers some ancestor while every strictly grown
// place is saturated at or beyond its structural degree (Def. 4.4).
type Irrelevance struct {
	degrees []int
}

// NewIrrelevance builds the criterion for the given net, precomputing
// place degrees.
func NewIrrelevance(n *petri.Net) *Irrelevance {
	return &Irrelevance{degrees: n.Degrees()}
}

// Prune implements Termination.
func (ir *Irrelevance) Prune(m petri.Marking, ancestors []petri.Marking) bool {
	return petri.Irrelevant(m, ancestors, ir.degrees)
}

// Name implements Termination.
func (ir *Irrelevance) Name() string { return "irrelevance" }

// Degrees exposes the precomputed place degrees (for diagnostics).
func (ir *Irrelevance) Degrees() []int { return ir.degrees }

// PlaceBounds prunes any marking exceeding a per-place bound, the
// termination condition of Strehl et al. the paper compares against.
// A zero bound means unbounded.
type PlaceBounds struct {
	Bounds []int
}

// UniformBounds builds a PlaceBounds with the same bound for all places.
func UniformBounds(n *petri.Net, bound int) *PlaceBounds {
	b := make([]int, len(n.Places))
	for i := range b {
		b[i] = bound
	}
	return &PlaceBounds{Bounds: b}
}

// UserBounds builds a PlaceBounds from the Bound attributes recorded on
// the net's places (0 = unbounded).
func UserBounds(n *petri.Net) *PlaceBounds {
	b := make([]int, len(n.Places))
	for i, p := range n.Places {
		b[i] = p.Bound
	}
	return &PlaceBounds{Bounds: b}
}

// Prune implements Termination.
func (pb *PlaceBounds) Prune(m petri.Marking, _ []petri.Marking) bool {
	for i, v := range m {
		if pb.Bounds[i] > 0 && v > pb.Bounds[i] {
			return true
		}
	}
	return false
}

// Name implements Termination.
func (pb *PlaceBounds) Name() string { return "place-bounds" }

// DepthLimit prunes below a maximum tree depth — a safety net for
// pathological nets, not one of the paper's criteria.
type DepthLimit struct {
	Max   int
	depth int // updated by the engine before each Prune call
}

// Prune implements Termination (the engine tracks depth via ancestors).
func (d *DepthLimit) Prune(_ petri.Marking, ancestors []petri.Marking) bool {
	return len(ancestors) >= d.Max
}

// Name implements Termination.
func (d *DepthLimit) Name() string { return fmt.Sprintf("depth<=%d", d.Max) }

// Any combines conditions disjunctively: prune when any member prunes.
type Any []Termination

// Prune implements Termination.
func (a Any) Prune(m petri.Marking, ancestors []petri.Marking) bool {
	for _, t := range a {
		if t.Prune(m, ancestors) {
			return true
		}
	}
	return false
}

// Name implements Termination.
func (a Any) Name() string {
	s := "any("
	for i, t := range a {
		if i > 0 {
			s += ","
		}
		s += t.Name()
	}
	return s + ")"
}
