package dist

// Coordinator-side failover: the protocol-4 session survives worker
// death. The design leans entirely on the determinism contract — the
// coordinator's store is authoritative and MarkID assignment never
// leaves its sequential merge — so a session can be re-attempted from
// the last committed level with any worker count and any shard layout
// and still produce byte-identical results:
//
//   - detection: every receive the merge blocks on runs through
//     awaitFrame, which pings the awaited worker each
//     heartbeatInterval and declares it dead when no frame at all
//     (chunk, pong, stats, error) arrives within heartbeatTimeout.
//     Sends carry write deadlines (conn.armWrite), so a peer that
//     stopped reading fails the send instead of wedging the session.
//   - recovery: runSessionV3 wraps per-attempt state (v3attempt) in a
//     restart loop. On a death it quiesces the survivors back to their
//     serve loops, respawns a replacement process (SpawnLocal pools;
//     bounded jittered-backoff retries) or drops the dead worker and
//     re-shards across the survivors, then re-inits everyone with
//     empty roots and rebuilds each replica with one msgRestore bulk
//     load streamed from the authoritative store. The merge replays
//     the interrupted level, discarding the candidates whose hooks
//     already ran (v3resume counts them), and continues.
//   - exhaustion: after maxSessionRestarts failed recoveries the
//     session errors with SessionStats.Degraded set; the pool is
//     poisoned as before and callers fall back to in-process
//     exploration (petri.ExploreOptions.DistFallback).

import (
	"errors"
	"fmt"
	"math/rand"
	"os/exec"
	"time"

	"repro/internal/petri"
)

var (
	// maxSessionRestarts bounds the recovery rounds one RunFrontier
	// session may consume before giving up. A var so tests can shrink
	// or zero it.
	maxSessionRestarts = 3
	// respawnAttempts and respawnBackoff shape the retry loop for
	// re-executing a replacement worker: attempt k sleeps
	// respawnBackoff*2^(k-1) plus up to the same again of jitter.
	respawnAttempts = 3
	respawnBackoff  = 100 * time.Millisecond
)

// workerDeath attributes a session failure to one worker. alive means
// the worker reported the failure itself over an intact transport (it
// is draining toward its serve loop and remains usable); otherwise the
// link is unusable and the worker is gone.
type workerDeath struct {
	idx   int
	alive bool
	err   error
}

func (d *workerDeath) Error() string {
	return fmt.Sprintf("dist: worker %d failed: %v", d.idx, d.err)
}

func (d *workerDeath) Unwrap() error { return d.err }

// aliveError marks a failure the worker reported itself (msgError):
// the session is lost but the transport and the worker's serve loop
// are intact.
type aliveError struct{ msg string }

func (e *aliveError) Error() string { return "worker error: " + e.msg }

var errReaderExited = errors.New("reader exited mid-session")

// v3resume is the recovery checkpoint threaded through a session's
// attempts: which level the merge was in and how much of it is already
// processed, so a replay can discard exactly the candidates whose
// hooks ran before the failure.
type v3resume struct {
	active     bool // a level has begun; restores are needed on re-init
	aborted    bool // a Reject hook ended the session; only the finish remains
	levelStart int  // the level being merged: [levelStart, levelEnd)
	levelEnd   int
	merged     int  // last id whose BeginState ran (levelStart-1 if none)
	cands      int  // candidates of state merged already processed
	levelDone  bool // the level completed and was counted before the failure
}

// runSessionV3 runs the pipelined session with failover: attempts run
// until one succeeds, recovery fails, or the restart budget is spent.
func (p *Pool) runSessionV3(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (bool, error) {
	proto := p.sessionProto()
	p.stats = SessionStats{Proto: proto}
	var rs v3resume
	for {
		a := &v3attempt{p: p, proto: proto}
		completed, err := a.run(n, store, spec, hooks, &rs)
		if err == nil {
			return completed, nil
		}
		var wd *workerDeath
		if !errors.As(err, &wd) || proto < 4 {
			a.abort()
			return false, err
		}
		if p.stats.Restarts >= maxSessionRestarts {
			a.abort()
			p.stats.Degraded = true
			return false, fmt.Errorf("dist: recovery exhausted after %d restarts: %w", p.stats.Restarts, err)
		}
		p.logw.printf("worker %d died mid-session (%v); recovering (restart %d/%d)",
			wd.idx, wd.err, p.stats.Restarts+1, maxSessionRestarts)
		if rerr := p.recoverSession(a, wd); rerr != nil {
			a.abort()
			p.stats.Degraded = true
			return false, fmt.Errorf("dist: recovery failed: %v (after %w)", rerr, err)
		}
		p.stats.Restarts++
		p.restartsTotal++
	}
}

// recoverSession repairs the pool after a worker death: quiesce the
// survivors back to their serve loops, then for each dead worker
// either respawn a replacement (SpawnLocal pools) or drop it so the
// next attempt re-shards across the survivors. Callers hold p.mu.
func (p *Pool) recoverSession(a *v3attempt, wd *workerDeath) error {
	dead := make([]bool, len(p.workers))
	if wd.alive {
		// The worker reported the failure itself: its transport and
		// serve loop are intact (it drains until the next init), so it
		// stays. Its reader has exited; flush the link.
		a.drain(wd.idx)
	} else {
		dead[wd.idx] = true
	}
	for i := range p.workers {
		if dead[i] || i == wd.idx {
			continue
		}
		if err := a.quiesce(i); err != nil {
			p.logw.printf("worker %d failed to quiesce: %v", i, err)
			dead[i] = true
		}
	}
	var gone []int
	for i := range p.workers {
		if !dead[i] {
			continue
		}
		p.workers[i].close()
		a.drain(i)
		p.retireProc(i)
		if p.ln != nil && p.self != "" {
			if err := p.respawnWorker(i); err != nil {
				p.logw.printf("respawn worker %d: %v", i, err)
				gone = append(gone, i)
			}
		} else {
			gone = append(gone, i)
		}
	}
	if len(gone) == 0 {
		return nil
	}
	if len(gone) == len(p.workers) {
		return errors.New("no workers survive")
	}
	// The dropped workers' shards move to the survivors implicitly:
	// the next attempt re-inits with a fresh shard count for the
	// smaller pool, and restores rebuild every replica under the new
	// layout. Only the accounting happens here.
	for _, i := range gone {
		lo, hi := petri.OwnedShardRange(i, a.S, a.W)
		p.stats.Redistributed += hi - lo
		p.redistributedTotal += int64(hi - lo)
	}
	p.removeWorkers(gone)
	p.logw.printf("dropped %d dead workers; %d survivors take over their shards", len(gone), len(p.workers))
	return nil
}

// respawnWorker re-executes a replacement process for worker slot i
// with jittered exponential backoff. Callers hold p.mu.
func (p *Pool) respawnWorker(i int) error {
	var lastErr error
	backoff := respawnBackoff
	for attempt := 0; attempt < respawnAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
			backoff *= 2
		}
		cmd, err := p.spawnProc()
		if err != nil {
			lastErr = err
			continue
		}
		c, ver, flags, _, err := acceptOne(p.ln, spawnHandshakeTimeout)
		if err != nil {
			lastErr = err
			p.markDead(cmd)
			cmd.Process.Kill()
			continue
		}
		p.workers[i] = c
		p.vers[i] = ver
		p.wantFull[i] = flags&helloFullReplicas != 0
		p.procs[i] = cmd
		p.logw.printf("respawned worker %d (pid %d)", i, cmd.Process.Pid)
		return nil
	}
	return fmt.Errorf("dist: respawn after %d attempts: %w", respawnAttempts, lastErr)
}

// markDead exempts a deliberately killed process from reap-time error
// reporting.
func (p *Pool) markDead(cmd *exec.Cmd) {
	if p.deadCmds == nil {
		p.deadCmds = make(map[*exec.Cmd]bool)
	}
	p.deadCmds[cmd] = true
}

// retireProc kills and forgets the process behind worker slot i, if
// the pool owns one.
func (p *Pool) retireProc(i int) {
	if p.procs == nil || i >= len(p.procs) || p.procs[i] == nil {
		return
	}
	p.markDead(p.procs[i])
	p.procs[i].Process.Kill()
	p.procs[i] = nil
}

// removeWorkers drops the given worker slots, keeping the parallel
// bookkeeping slices aligned.
func (p *Pool) removeWorkers(gone []int) {
	rm := make(map[int]bool, len(gone))
	for _, i := range gone {
		rm[i] = true
	}
	var ws []*conn
	var wf []bool
	var vs []int
	var procs []*exec.Cmd
	for i := range p.workers {
		if rm[i] {
			continue
		}
		ws = append(ws, p.workers[i])
		wf = append(wf, p.wantFull[i])
		vs = append(vs, p.vers[i])
		if p.procs != nil {
			procs = append(procs, p.procs[i])
		}
	}
	p.workers, p.wantFull, p.vers = ws, wf, vs
	if p.procs != nil {
		p.procs = procs
	}
}

// RecoveryStats returns the pool's cumulative failover counters across
// all sessions: worker restarts and shards redistributed off dead
// workers.
func (p *Pool) RecoveryStats() (restarts, redistributed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restartsTotal, p.redistributedTotal
}

// SetLevelHook installs fn to run at the start of every level's merge
// (including a recovered level's replay), with the count of completed
// levels as its argument. It is the fault-injection point of the chaos
// tests; hooks run on the session goroutine and may call KillWorker.
func (p *Pool) SetLevelHook(fn func(level int)) {
	p.hookMu.Lock()
	defer p.hookMu.Unlock()
	p.levelHook = fn
}

func (p *Pool) fireLevelHook(level int) {
	p.hookMu.Lock()
	fn := p.levelHook
	p.hookMu.Unlock()
	if fn != nil {
		fn(level)
	}
}

// KillWorker kills the OS process behind worker slot i — fault
// injection for the chaos tests, meaningful only for SpawnLocal pools.
// Safe to call from a level hook (the session goroutine); it must NOT
// be called concurrently with pool methods that take p.mu.
func (p *Pool) KillWorker(i int) error {
	if p.procs == nil || i < 0 || i >= len(p.procs) || p.procs[i] == nil {
		return fmt.Errorf("dist: no process behind worker %d", i)
	}
	p.markDead(p.procs[i])
	return p.procs[i].Process.Kill()
}

// v3attempt is one try at a protocol-3/4 session: the per-attempt
// reader links, streams and shard layout. A failed attempt's links are
// drained by recovery; a new attempt starts fresh.
type v3attempt struct {
	p       *Pool
	proto   int
	W, S    int
	trim    bool
	links   []*workerLink
	streams []chunkStream
}

// deathOf wraps a worker failure for the restart loop, detecting the
// worker-reported (alive) flavor.
func (a *v3attempt) deathOf(i int, err error) error {
	var ae *aliveError
	return &workerDeath{idx: i, alive: errors.As(err, &ae), err: err}
}

func (a *v3attempt) die(i int, err error) (bool, error) {
	return false, a.deathOf(i, err)
}

// drain flushes worker i's reader channel to closure. The reader must
// be on its way out (terminal frame forwarded or connection closed).
func (a *v3attempt) drain(i int) {
	if a.links == nil || a.links[i] == nil {
		return
	}
	for range a.links[i].ch {
	}
}

// abort poisons the attempt: close every connection so workers and
// readers unwind, then drain the reader channels so no goroutine
// outlives the session.
func (a *v3attempt) abort() {
	for _, c := range a.p.workers {
		c.close()
	}
	for i := range a.links {
		a.drain(i)
	}
}

// quiesce ends worker i's session cleanly after another worker died:
// send done, consume frames to the terminal stats (or worker error —
// either way the worker ends at its serve loop awaiting the next
// init). In-flight chunks are discarded unacked; the session is over.
func (a *v3attempt) quiesce(i int) error {
	if err := a.p.workers[i].send(msgDone, nil); err != nil {
		return err
	}
	deadline := time.NewTimer(heartbeatTimeout)
	defer deadline.Stop()
	for {
		select {
		case f, ok := <-a.links[i].ch:
			if !ok {
				return errReaderExited
			}
			if f.err != nil {
				return f.err
			}
			switch f.typ {
			case msgStats, msgError:
				a.drain(i)
				return nil
			case msgChunk, msgPong:
			default:
				return fmt.Errorf("unexpected message type %d", f.typ)
			}
		case <-deadline.C:
			return fmt.Errorf("no stats within %v", heartbeatTimeout)
		}
	}
}

// awaitFrame blocks for worker i's next frame. At protocol 4 it pings
// the awaited worker every heartbeatInterval — any frame in reply,
// pong included, proves liveness — and gives up after heartbeatTimeout
// with no frame at all, bounding how long a silently dead worker can
// stall the merge.
func (a *v3attempt) awaitFrame(i int) (frame, error) {
	l := a.links[i]
	if a.proto < 4 {
		f, ok := <-l.ch
		if !ok {
			return frame{}, errReaderExited
		}
		if f.err != nil {
			return frame{}, f.err
		}
		return f, nil
	}
	deadline := time.NewTimer(heartbeatTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(heartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case f, ok := <-l.ch:
			if !ok {
				return frame{}, errReaderExited
			}
			if f.err != nil {
				return frame{}, f.err
			}
			if f.typ == msgPong {
				// Liveness proven; keep waiting for the real frame.
				if !deadline.Stop() {
					select {
					case <-deadline.C:
					default:
					}
				}
				deadline.Reset(heartbeatTimeout)
				continue
			}
			return f, nil
		case <-tick.C:
			if err := l.c.send(msgPing, nil); err != nil {
				return frame{}, fmt.Errorf("ping: %w", err)
			}
		case <-deadline.C:
			return frame{}, fmt.Errorf("no frame within %v (heartbeat timeout)", heartbeatTimeout)
		}
	}
}

// sendRestores rebuilds every worker's replica from the authoritative
// store after a recovery re-init: the committed level being replayed
// plus the uncommitted tail. A trimmed worker receives its owned
// states at or past the resume point; a full-replica worker the whole
// store.
func (a *v3attempt) sendRestores(store *petri.MarkingStore, rs *v3resume) error {
	bounds := []int{rs.levelStart, rs.levelEnd}
	var payload []byte
	for i := range a.p.workers {
		if a.trim {
			var gids []petri.MarkID
			for id := rs.levelStart; id < store.Len(); id++ {
				if a.owner(store, petri.MarkID(id)) == i {
					gids = append(gids, petri.MarkID(id))
				}
			}
			payload = appendRestoreHeader(payload[:0], rs.levelStart, bounds, len(gids))
			for _, g := range gids {
				payload = appendRestoreState(payload, g, store.At(g))
			}
		} else {
			payload = appendRestoreHeader(payload[:0], rs.levelStart, bounds, store.Len())
			for id := 0; id < store.Len(); id++ {
				payload = appendRestoreState(payload, petri.MarkID(id), store.At(petri.MarkID(id)))
			}
		}
		if err := a.p.workers[i].send(msgRestore, payload); err != nil {
			return a.deathOf(i, fmt.Errorf("restore: %w", err))
		}
	}
	return nil
}

func (a *v3attempt) owner(store *petri.MarkingStore, id petri.MarkID) int {
	return petri.ShardOwner(petri.ShardOfHash(store.HashAt(id), a.S), a.S, a.W)
}

// run is one session attempt: init (plus restores when resuming), the
// pipelined merge, and the stats epilogue. See the package comment in
// pool.go for the merge's shape; this is phase C of petri.RunFrontier
// consuming each owner's chunk stream as the bytes arrive. All
// failures return as *workerDeath for the restart loop.
func (a *v3attempt) run(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks, rs *v3resume) (bool, error) {
	p := a.p
	W := len(p.workers)
	S := petri.NumFrontierShards(W)
	trim := p.trimmed()
	a.W, a.S, a.trim = W, S, trim
	p.stats.Trimmed = trim
	start0 := startBytes(p.workers)
	defer func() {
		sent, recvd := sentRecvSince(p.workers, start0)
		p.stats.BytesSent += sent
		p.stats.BytesRecv += recvd
	}()
	if a.proto >= 4 {
		for _, c := range p.workers {
			c.writeTimeout = sendTimeout
		}
	}
	// Links start before the inits so that even an init failure leaves
	// an attempt whose channels recovery can drain.
	a.links = make([]*workerLink, W)
	for i, c := range p.workers {
		a.links[i] = startLink(c)
	}
	a.streams = make([]chunkStream, W)
	for i := range a.streams {
		a.streams[i].link = a.links[i]
		a.streams[i].await = func() (frame, error) { return a.awaitFrame(i) }
	}
	// A resumed attempt re-inits with empty roots: the replicas are
	// rebuilt by restore streams instead.
	var roots []petri.Marking
	if !rs.active {
		roots = make([]petri.Marking, store.Len())
		for i := range roots {
			roots[i] = store.At(petri.MarkID(i))
		}
	}
	for i, c := range p.workers {
		init := &initMsg{proto: a.proto, index: i, workers: W, shards: S, trim: trim, net: n, spec: spec, roots: roots}
		if err := c.send(msgInit, appendInit(nil, init, p.vers[i])); err != nil {
			return a.die(i, fmt.Errorf("init: %w", err))
		}
	}
	if rs.aborted {
		// A Reject hook already ended the exploration; only the
		// epilogue was interrupted. No restores: the workers have
		// nothing to expand.
		return a.finish(n, store, false)
	}
	if rs.active {
		if err := a.sendRestores(store, rs); err != nil {
			return false, err
		}
	}
	var (
		deltas  []petri.Delta      // full-replica mode: broadcast batches
		pending [][]petri.VecDelta // trimmed mode: per-worker batches
		vcaches []*vecCache        // trimmed mode: per-worker cache models
		scratch petri.Marking
		payload = make([]byte, 0, 1<<12)
	)
	if trim {
		pending = make([][]petri.VecDelta, W)
		vcaches = make([]*vecCache, W)
		for i := range vcaches {
			vcaches[i] = newVecCache()
		}
	}
	// flushRecs ships worker i's pending records. Boundary-parent vector
	// attachment happens here, at flush time in record order — the same
	// sequence the worker applies them in, keeping the two cache models
	// in lockstep (see vcache.go).
	flushRecs := func(i int) error {
		recs := pending[i]
		if len(recs) == 0 {
			return nil
		}
		for k := range recs {
			if a.owner(store, recs[k].Parent) == i {
				continue
			}
			if !vcaches[i].hit(recs[k].Parent) {
				recs[k].ParentVec = store.At(recs[k].Parent)
			}
		}
		payload = petri.AppendVecDeltas(payload[:0], recs)
		if err := p.workers[i].send(msgRecords, payload); err != nil {
			return a.deathOf(i, fmt.Errorf("records: %w", err))
		}
		pending[i] = recs[:0]
		return nil
	}
	flushDeltas := func() error {
		if len(deltas) == 0 {
			return nil
		}
		payload = petri.AppendDeltas(payload[:0], deltas)
		for i, c := range p.workers {
			if err := c.send(msgRecords, payload); err != nil {
				return a.deathOf(i, fmt.Errorf("records: %w", err))
			}
		}
		deltas = deltas[:0]
		return nil
	}
	resuming := rs.active
	levelStart := 0
	if resuming {
		levelStart = rs.levelStart
	}
	for {
		levelEnd := store.Len()
		first := resuming
		resuming = false
		if first {
			// Replaying the interrupted level: its end was committed to
			// the workers before the failure, and the store may already
			// hold an uncommitted tail beyond it.
			levelEnd = rs.levelEnd
		} else {
			// Checkpoint before the commit sends: a death anywhere past
			// this point resumes at this level.
			rs.active = true
			rs.levelStart, rs.levelEnd = levelStart, levelEnd
			rs.merged, rs.cands = levelStart-1, 0
			rs.levelDone = false
		}
		if levelStart == levelEnd {
			// Exploration complete: every state is closed. Freeze the
			// tail for parity with the in-process paths (no-op unless
			// the store has a frozen tier).
			if hooks.LevelClosed != nil {
				hooks.LevelClosed(levelEnd)
			}
			return a.finish(n, store, true)
		}
		if levelStart > 0 && !first {
			// The records of [levelStart, levelEnd) have been streaming
			// since the previous merge discovered them; flush the tails
			// and commit the range so workers can pin and expand the
			// whole level.
			if trim {
				for i := range p.workers {
					if err := flushRecs(i); err != nil {
						return false, err
					}
				}
			} else {
				if err := flushDeltas(); err != nil {
					return false, err
				}
			}
			payload = appendLevel(payload[:0], levelStart, levelEnd)
			for i, c := range p.workers {
				if err := c.send(msgLevel, payload); err != nil {
					return a.die(i, fmt.Errorf("level commit: %w", err))
				}
			}
			// States below levelStart are closed: their expansion
			// produced this level and the record flushes above were the
			// last reads of their hot vectors (boundary-parent
			// attachment). Freeze them now; the merge below touches only
			// [levelStart, levelEnd) plus thaw-tolerant lookups. A
			// replayed level skips this — the pre-failure attempt
			// already froze it (FreezeThrough is idempotent anyway).
			if hooks.LevelClosed != nil {
				hooks.LevelClosed(levelStart)
			}
		}
		p.fireLevelHook(p.stats.Levels)
		// Sequential first-discovery merge, exactly phase C of
		// petri.RunFrontier — consuming each owner's chunk stream as the
		// bytes arrive. On a replay, candidates up to the checkpoint are
		// consumed and discarded: their hooks ran before the failure and
		// every side effect (stats, records, interned states) survives
		// in the coordinator.
		for id := levelStart; id < levelEnd; id++ {
			ow := a.owner(store, petri.MarkID(id))
			st := &a.streams[ow]
			discard := first && id < rs.merged
			skip := 0
			if first && id == rs.merged {
				skip = rs.cands
			}
			if !discard && !(first && id == rs.merged) {
				if hooks.BeginState != nil {
					hooks.BeginState(petri.MarkID(id))
				}
				rs.merged, rs.cands = id, 0
			}
			cands, err := st.nextState(id)
			if err != nil {
				return a.die(ow, fmt.Errorf("stream: %w", err))
			}
			for k := 0; k < cands; k++ {
				tag, trans, known, h, err := st.nextCand()
				if err != nil {
					return a.die(ow, fmt.Errorf("stream: %w", err))
				}
				if discard || k < skip {
					continue
				}
				if trans < 0 || trans >= len(n.Transitions) {
					return a.die(ow, fmt.Errorf("candidate transition %d out of range", trans))
				}
				switch tag {
				case candVeto:
					if !hooks.Reject(petri.MarkID(id), int32(trans), false) {
						rs.aborted = true
						return a.finish(n, store, false)
					}
				case candKnown:
					// The worker pinned classification at the level start:
					// anything at or beyond it travels as candNew.
					if int(known) >= levelStart {
						return a.die(ow, fmt.Errorf("known state %d at or beyond level start %d", known, levelStart))
					}
					hooks.Edge(petri.MarkID(id), int32(trans), known, false)
				case candNew:
					p.stats.CandNew++
					var g petri.MarkID
					var found, fired bool
					if !store.HashAliased() {
						g, found = store.LookupHash(h)
					} else {
						// Two interned markings share a hash: the bare
						// probe is ambiguous, fall back to firing for the
						// vector-exact lookup.
						t := n.Transitions[trans]
						if m := store.At(petri.MarkID(id)); m.Enabled(t) {
							scratch = m.FireInto(scratch, t)
						} else {
							return a.die(ow, fmt.Errorf("candidate fires disabled %s at state %d", t.Name, id))
						}
						p.stats.CoordFires++
						fired = true
						g, found = store.LookupHashed(scratch, h)
					}
					if found {
						hooks.Edge(petri.MarkID(id), int32(trans), g, false)
						rs.cands++
						continue
					}
					// Genuinely new: fire once to materialize the vector.
					if !fired {
						t := n.Transitions[trans]
						m := store.At(petri.MarkID(id))
						if !m.Enabled(t) {
							return a.die(ow, fmt.Errorf("candidate fires disabled %s at state %d", t.Name, id))
						}
						scratch = m.FireInto(scratch, t)
						p.stats.CoordFires++
					}
					if spec.Veto(scratch) {
						return a.die(ow, fmt.Errorf("new candidate of state %d exceeds the place caps — worker/coordinator spec mismatch", id))
					}
					if hv := petri.HashMarking(scratch); hv != h {
						return a.die(ow, fmt.Errorf("candidate hash %#x, coordinator computes %#x — replica drift", h, hv))
					}
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(petri.MarkID(id), int32(trans), true) {
							rs.aborted = true
							return a.finish(n, store, false)
						}
						rs.cands++
						continue
					}
					g, _ = store.InternHashed(scratch, h)
					// The record is buffered now but flushed only after the
					// candidate completes (Edge + checkpoint): the flush is
					// the one fallible step here, and a death between the
					// intern and the checkpoint would make the replay
					// misclassify this discovery as a revisit.
					flushW := -1
					if trim {
						cw := petri.ShardOwner(petri.ShardOfHash(h, S), S, W)
						pending[cw] = append(pending[cw], petri.VecDelta{
							Child: g, Parent: petri.MarkID(id), Trans: int32(trans),
						})
						if len(pending[cw]) >= recordFlush {
							flushW = cw
						}
					} else {
						deltas = append(deltas, petri.Delta{Parent: petri.MarkID(id), Trans: int32(trans)})
					}
					hooks.Edge(petri.MarkID(id), int32(trans), g, true)
					rs.cands++
					if flushW >= 0 {
						if err := flushRecs(flushW); err != nil {
							return false, err
						}
					} else if !trim && len(deltas) >= recordFlush {
						if err := flushDeltas(); err != nil {
							return false, err
						}
					}
					continue
				default:
					return a.die(ow, fmt.Errorf("unknown candidate tag %d", tag))
				}
				rs.cands++
			}
		}
		if !(first && rs.levelDone) {
			p.stats.Levels++
		}
		rs.levelDone = true
		levelStart = levelEnd
	}
}

// finish runs the stats epilogue. On a completed exploration the
// result is already final, so a worker failing here is retired (its
// memory zeroed, its connection closed for the next session's recovery
// to repair) rather than failing the session; on an aborted one a
// failure is a regular death.
func (a *v3attempt) finish(n *petri.Net, store *petri.MarkingStore, completed bool) (bool, error) {
	p := a.p
	p.stats.Workers = make([]WorkerMem, a.W)
	retired := make([]bool, a.W)
	retire := func(i int, err error) {
		p.logw.printf("worker %d failed after completion (%v); retiring connection", i, err)
		p.workers[i].close()
		a.drain(i)
		p.stats.Workers[i] = WorkerMem{}
		retired[i] = true
	}
	for i, c := range p.workers {
		if err := c.send(msgDone, nil); err != nil {
			if !completed {
				return a.die(i, fmt.Errorf("finish: %w", err))
			}
			retire(i, err)
		}
	}
	for i := range a.streams {
		if retired[i] {
			continue
		}
		if completed && (len(a.streams[i].buf) != 0 || a.streams[i].cands != 0) {
			return a.die(i, fmt.Errorf("stream not fully consumed (%d bytes, %d candidates left)", len(a.streams[i].buf), a.streams[i].cands))
		}
		p.stats.Chunks += int64(a.streams[i].chunks)
	}
	// Drain each link to the stats frame; chunks past the merge's
	// stopping point are legitimate only on an aborted session.
	for i := range p.workers {
		if retired[i] {
			continue
		}
	drain:
		for {
			f, err := a.awaitFrame(i)
			if err != nil {
				if !completed {
					return a.die(i, fmt.Errorf("stats: %w", err))
				}
				retire(i, err)
				break
			}
			switch f.typ {
			case msgChunk:
				if completed {
					retire(i, errors.New("streamed a chunk past the last level"))
					break drain
				}
			case msgError:
				if !completed {
					return a.die(i, &aliveError{msg: string(f.payload)})
				}
				// The worker failed its own teardown but stays usable:
				// it drains until the next init.
				p.logw.printf("worker %d errored after completion: %s", i, f.payload)
				break drain
			case msgStats:
				mem, derr := decodeStats(f.payload)
				if derr != nil {
					if !completed {
						return a.die(i, fmt.Errorf("stats: %w", derr))
					}
					retire(i, derr)
					break drain
				}
				p.stats.Workers[i] = mem
				break drain
			default:
				if !completed {
					return a.die(i, fmt.Errorf("unexpected message type %d before stats", f.typ))
				}
				retire(i, fmt.Errorf("unexpected message type %d before stats", f.typ))
				break drain
			}
		}
	}
	p.stats.States = store.Len()
	p.logw.printf("session %s: %d levels, %d states, %d candNew (%d fires, %d chunks), %d restarts (proto %d, trimmed=%v, completed=%v)",
		n.Name, p.stats.Levels, p.stats.States, p.stats.CandNew, p.stats.CoordFires, p.stats.Chunks, p.stats.Restarts, a.proto, a.trim, completed)
	return completed, nil
}
