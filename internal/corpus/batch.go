package corpus

import (
	"context"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
)

// BatchOptions configures a corpus batch run.
type BatchOptions struct {
	// Workers bounds the number of apps synthesized concurrently.
	// 0 uses GOMAXPROCS, 1 is the serial baseline.
	Workers int
	// Core is applied to every synthesis (nil = defaults). Note that
	// per-app schedule searches have their own pool (core
	// Options.Workers); for app-level scaling measurements set
	// Core.Workers to 1.
	Core *core.Options
}

// AppResult is the outcome of synthesizing one corpus app.
type AppResult struct {
	App     *App
	Res     *core.Result
	Err     error
	Elapsed time.Duration
}

// BatchResult aggregates a corpus run. Results is ordered like the
// input apps regardless of completion order.
type BatchResult struct {
	Results   []AppResult
	Elapsed   time.Duration
	Failed    int
	Schedules int
	Tasks     int
	// NodesCreated sums the search effort over all schedules.
	NodesCreated int
}

// Throughput returns synthesized apps per second of wall-clock time.
func (b *BatchResult) Throughput() float64 {
	if b.Elapsed <= 0 {
		return 0
	}
	return float64(len(b.Results)-b.Failed) / b.Elapsed.Seconds()
}

// RunBatch synthesizes every app on a bounded worker pool. Per-app
// failures are recorded, not fatal: a corpus sweep reports all
// outcomes. Cancelling ctx stops the dispatch of pending apps (their
// results carry the context error).
func RunBatch(ctx context.Context, apps []*App, opt BatchOptions) *BatchResult {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	br := &BatchResult{Results: make([]AppResult, len(apps))}
	start := time.Now()
	dispatched := pool.Run(ctx, len(apps), workers, func(i int, _ context.CancelFunc) {
		app := apps[i]
		t0 := time.Now()
		res, err := core.SynthesizeContext(ctx, app.FlowC, app.Spec, opt.Core)
		br.Results[i] = AppResult{App: app, Res: res, Err: err, Elapsed: time.Since(t0)}
	})
	// Dispatch stops early only on cancellation; mark what never ran.
	for j := dispatched; j < len(apps); j++ {
		br.Results[j] = AppResult{App: apps[j], Err: ctx.Err()}
	}
	br.Elapsed = time.Since(start)
	for i := range br.Results {
		r := &br.Results[i]
		if r.Err != nil {
			br.Failed++
			continue
		}
		if r.Res != nil {
			br.Schedules += len(r.Res.Schedules)
			br.Tasks += len(r.Res.Tasks)
			for _, s := range r.Res.Schedules {
				br.NodesCreated += s.Stats.NodesCreated
			}
		}
	}
	return br
}
