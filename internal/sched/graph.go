package sched

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"repro/internal/compile"
	"repro/internal/petri"
)

// Marking-graph engine.
//
// The paper's EP/EP_ECS procedure explores the reachability *tree*;
// equal markings reached along different interleavings are re-explored,
// which is exponential for multi-process systems. This engine searches
// the reachability *graph* instead: schedules are positional objects
// ("which ECS do I fire at this marking"), and a tree schedule whose
// markings lie inside the explored space always induces a positional
// one, so nothing is lost (see DESIGN.md for the argument; the paper
// itself leaves the exactness of its pruning open).
//
// The engine:
//  1. enumerates the markings reachable under per-place caps derived
//     from the termination condition (the irrelevance criterion caps a
//     place at degree + max input weight — the most a single firing can
//     overshoot a saturated place; user place bounds cap directly);
//  2. computes the largest set X of markings such that every marking in
//     X has at least one allowed ECS whose successors all stay in X and
//     every marking in X can still reach the initial marking inside X
//     (an alternating closure/reachability fixpoint);
//  3. picks per marking the best surviving ECS (prefer internal
//     transitions over awaits, honor SELECT priorities, then walk down
//     the distance-to-root ranking) and emits the induced sub-graph as
//     the schedule.
//
// Step 1 finds each state's enabled ECSs incrementally (a bitset
// derived from the parent state's via petri.EnabledTracker, not a
// partition scan) and, under Options.ExploreWorkers >= 2, fans each
// BFS level out over the petri.RunFrontier pipeline; the frontier's
// deterministic merge writes the engine arenas in exactly the serial
// order, so schedules are byte-identical for every worker count.

// CapProvider is implemented by termination conditions that can bound
// the token count of each place for the graph engine.
type CapProvider interface {
	Caps(n *petri.Net) []int
}

// Caps implements CapProvider: the graph engine bounds every place at
// its structural degree (Def. 4.4) — "the best one can extract from the
// PN structure about place bounds" in the paper's words. Accumulating
// tokens beyond the degree cannot enable new behaviour at the place
// itself, and bounding there keeps the marking graph small; nets whose
// schedules genuinely need deeper buffers can supply explicit
// PlaceBounds.
func (ir *Irrelevance) Caps(n *petri.Net) []int {
	caps := make([]int, len(n.Places))
	for i, p := range n.Places {
		caps[i] = ir.degrees[i]
		if caps[i] < p.Initial {
			caps[i] = p.Initial
		}
	}
	return caps
}

// Caps implements CapProvider: explicit bounds cap directly; unbounded
// places fall back to the irrelevance cap.
func (pb *PlaceBounds) Caps(n *petri.Net) []int {
	fallback := NewIrrelevance(n).Caps(n)
	caps := make([]int, len(n.Places))
	for i := range caps {
		if pb.Bounds[i] > 0 {
			caps[i] = pb.Bounds[i]
		} else {
			caps[i] = fallback[i]
		}
	}
	return caps
}

// Caps implements CapProvider: the elementwise minimum over members
// that provide caps.
func (a Any) Caps(n *petri.Net) []int {
	var out []int
	for _, t := range a {
		cp, ok := t.(CapProvider)
		if !ok {
			continue
		}
		c := cp.Caps(n)
		if out == nil {
			out = c
			continue
		}
		for i := range out {
			if c[i] < out[i] {
				out[i] = c[i]
			}
		}
	}
	return out
}

// gstate is the per-marking search state. Its index in graphEngine.states
// IS its petri.MarkID in the engine's store: the store assigns dense IDs
// in interning order, so no separate key map is needed. The allowed
// enabled ECSs of the state and their successor lists live in the
// engine's flat arenas (ecsArena/succArena), addressed by [ecsStart,
// ecsEnd) — per-state slice headers would be one allocation per
// (state, ECS) pair, which at hundreds of thousands of states is most
// of the search's allocation bill.
type gstate struct {
	ecsStart, ecsEnd int32

	occ  int32 // channel/port token occupancy, precomputed at intern
	rank int32 // lfp stage of the reachability pass; -1 = unreached
	inX  bool
}

type graphEngine struct {
	net    *petri.Net
	source int
	opt    Options
	part   []*petri.ECS
	caps   []int

	store   *petri.MarkingStore
	states  []gstate
	scratch petri.Marking // firing buffer reused across the whole search
	over    bool
	// fwin buffers per-state provenance for the store's frozen tier
	// when Options.FreezeLevels is active; nil otherwise.
	fwin *petri.FreezeWindow

	// Incremental enablement (petri.EnabledTracker): bits is a flat
	// arena of per-state enabled-ECS bitsets (stride words per state),
	// each computed from its parent's set when the state is interned,
	// so expanding a state iterates its enabled ECSs directly instead
	// of re-testing the whole partition. allowedMask filters the sets
	// down to the ECSs this schedule may fire (uncontrollable sources
	// other than the schedule's own are excluded in single-source
	// mode); occDelta is the per-transition channel/port occupancy
	// delta, making the per-state occ field an O(1) increment.
	tracker     *petri.EnabledTracker
	stride      int
	allowedMask []uint64
	bits        []uint64
	pScratch    []uint64 // stable copy of the expanding state's bitset
	occDelta    []int32

	// Flat adjacency. Entry k of ecsArena is one (state, allowed enabled
	// ECS) pair; its successor states occupy
	// succArena[succOff[k] : succOff[k]+len(ecsArena[k].Trans)], with -1
	// marking a successor beyond the caps (making the ECS unusable).
	ecsArena  []*petri.ECS
	succOff   []int32
	succArena []int32

	// Reverse adjacency in CSR form, built once after explore: edge e
	// lands on target revTo-order with source revSrc[e] via arena entry
	// revECS[e]. computeRanks filters by the current X set instead of
	// rebuilding the adjacency every fixpoint round.
	revOff []int32
	revSrc []int32
	revECS []int32
	// usable[k] caches, per fixpoint round, whether arena entry k keeps
	// every successor inside X.
	usable []bool
	dist   []int64
	heap   rankHeap
}

// stateECS returns the allowed enabled ECS entries of s as indexes into
// the engine arenas.
func (ge *graphEngine) ecsCount(s *gstate) int { return int(s.ecsEnd - s.ecsStart) }

// succOf returns the successor list of the i-th ECS of s (entries are
// state indexes, -1 = beyond caps).
func (ge *graphEngine) succOf(s *gstate, i int) []int32 {
	k := int(s.ecsStart) + i
	off := ge.succOff[k]
	return ge.succArena[off : off+int32(len(ge.ecsArena[k].Trans))]
}

// ecsAt returns the i-th allowed enabled ECS of s.
func (ge *graphEngine) ecsAt(s *gstate, i int) *petri.ECS {
	return ge.ecsArena[int(s.ecsStart)+i]
}

func newGraphEngine(n *petri.Net, source int, opt Options) *graphEngine {
	ge := &graphEngine{
		net:    n,
		source: source,
		opt:    opt,
		part:   n.ECSPartition(),
		store:  petri.NewMarkingStore(len(n.Places)),
	}
	if cp, ok := opt.Term.(CapProvider); ok {
		ge.caps = cp.Caps(n)
	} else {
		ge.caps = NewIrrelevance(n).Caps(n)
	}
	ge.tracker = petri.NewEnabledTracker(n, ge.part)
	ge.stride = ge.tracker.Stride()
	ge.allowedMask = make([]uint64, ge.stride)
	for _, E := range ge.part {
		if ge.allowed(E) {
			ge.allowedMask[E.Index>>6] |= 1 << (uint(E.Index) & 63)
		}
	}
	ge.pScratch = make([]uint64, ge.stride)
	ge.occDelta = make([]int32, len(n.Transitions))
	for _, t := range n.Transitions {
		d := 0
		for _, a := range t.Out {
			switch n.Places[a.Place].Kind {
			case petri.PlaceChannel, petri.PlacePort:
				d += a.Weight
			}
		}
		for _, a := range t.In {
			switch n.Places[a.Place].Kind {
			case petri.PlaceChannel, petri.PlacePort:
				d -= a.Weight
			}
		}
		ge.occDelta[t.ID] = int32(d)
	}
	if opt.FreezeLevels {
		if err := ge.store.EnableFreeze(petri.FreezeConfig{Deltas: n.TokenDeltas()}); err == nil {
			ge.fwin = &petri.FreezeWindow{}
		}
	}
	return ge
}

// freezeTo evicts states below end into the store's frozen tier and
// drops their buffered provenance; a write failure permanently reverts
// the search to all-hot (already-frozen levels stay readable).
func (ge *graphEngine) freezeTo(end int) {
	if ge.fwin == nil {
		return
	}
	if err := ge.store.FreezeThrough(end, ge.fwin.Prov); err != nil {
		ge.fwin = nil
		return
	}
	ge.fwin.Drop(end)
}

func findScheduleGraph(n *petri.Net, source int, opt Options) (*Schedule, error) {
	ge := newGraphEngine(n, source, opt)
	st := n.Transitions[source]
	m0 := n.InitialMarking()
	rootID := ge.internRoot(m0)
	switch {
	case opt.Dist != nil:
		if err := ge.exploreDist(opt.Dist); err != nil {
			if !opt.DistFallback {
				return nil, fmt.Errorf("sched: source %s: distributed exploration: %w", st.Name, err)
			}
			// The failed session may have partially populated the
			// engine; rebuild it and rerun the search in-process. The
			// result is byte-identical to the distributed one.
			ge = newGraphEngine(n, source, opt)
			rootID = ge.internRoot(m0)
			if opt.ExploreWorkers > 1 {
				ge.exploreParallel(opt.ExploreWorkers)
			} else {
				ge.explore()
			}
		}
	case opt.ExploreWorkers > 1:
		ge.exploreParallel(opt.ExploreWorkers)
	default:
		ge.explore()
	}
	if ge.over {
		return nil, fmt.Errorf("sched: source %s: %w (graph engine, %d states)", st.Name, ErrBudget, len(ge.states))
	}
	if !ge.solve(rootID) {
		return nil, fmt.Errorf("sched: source %s under %s: %w (graph engine, %d states)",
			st.Name, ge.opt.Term.Name(), ErrNoSchedule, len(ge.states))
	}
	s := ge.build(rootID)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: internal error: graph engine produced invalid schedule: %v", err)
	}
	return s, nil
}

// internRoot hash-conses the initial marking, seeding its enabled set
// with a full partition scan — the only full scan of the search.
func (ge *graphEngine) internRoot(m petri.Marking) int {
	id, _ := ge.store.Intern(m)
	if ge.fwin != nil {
		ge.fwin.Append(petri.FreezeProv{Parent: petri.NoMark}) // root: verbatim
	}
	ge.states = append(ge.states, gstate{rank: -1, occ: int32(ge.occupancy(m))})
	base := len(ge.bits)
	for i := 0; i < ge.stride; i++ {
		ge.bits = append(ge.bits, 0)
	}
	ge.tracker.Init(ge.bits[base:base+ge.stride], m)
	return int(id)
}

// intern hash-conses m, fired from state parent via transition trans.
// An already-seen marking costs one hash and one probe, no allocation;
// a new one is copied once into the store's arena and gains a parallel
// gstate slot plus an incrementally-derived enabled set.
func (ge *graphEngine) intern(m petri.Marking, parent, trans int) int {
	id, isNew := ge.store.Intern(m)
	if !isNew {
		return int(id)
	}
	if int(id) >= ge.opt.MaxNodes {
		ge.over = true
		return -1
	}
	ge.admitState(parent, trans, m)
	return int(id)
}

// admitState appends the gstate and enabled set of a freshly interned
// marking m reached from parent by firing trans. Occupancy and the
// enabled set are both deltas off the parent: O(1) plus the few ECSs
// the firing touched, instead of a full marking/partition scan.
func (ge *graphEngine) admitState(parent, trans int, m petri.Marking) {
	if ge.fwin != nil {
		ge.fwin.Append(petri.FreezeProv{Parent: petri.MarkID(parent), Trans: int32(trans)})
	}
	ge.states = append(ge.states, gstate{rank: -1, occ: ge.states[parent].occ + ge.occDelta[trans]})
	base := len(ge.bits)
	for i := 0; i < ge.stride; i++ {
		ge.bits = append(ge.bits, 0)
	}
	ge.tracker.Update(ge.bits[base:base+ge.stride], ge.bits[parent*ge.stride:(parent+1)*ge.stride], trans, m)
}

// marking returns the (read-only) token vector of state id.
func (ge *graphEngine) marking(id int) petri.Marking {
	return ge.store.At(petri.MarkID(id))
}

// allowed reports whether the ECS may appear in this schedule.
func (ge *graphEngine) allowed(E *petri.ECS) bool {
	if !ge.opt.MultiSource && E.IsUncontrollable(ge.net) && E.Trans[0] != ge.source {
		return false
	}
	return true
}

func (ge *graphEngine) withinCaps(m petri.Marking) bool {
	for i, v := range m {
		if v > ge.caps[i] {
			return false
		}
	}
	return true
}

// forEachAllowedEnabled iterates the allowed enabled ECSs of the given
// bitset in partition order — shared by the serial loop and both
// phases of the parallel frontier so their arena layouts are identical
// by construction.
func (ge *graphEngine) forEachAllowedEnabled(set []uint64, fn func(E *petri.ECS)) {
	for w := 0; w < ge.stride; w++ {
		x := set[w] & ge.allowedMask[w]
		for x != 0 {
			b := mathbits.TrailingZeros64(x)
			x &= x - 1
			fn(ge.part[w*64+b])
		}
	}
}

// explore runs the bounded forward BFS. Firing a transition reuses the
// engine's scratch buffer and interns through the store, the enabled
// ECSs of each state come from its incrementally-maintained bitset
// (no full partition scan), and the adjacency goes into flat arenas,
// so the per-fired-transition cost is hash + probe with no allocation
// (arena growth amortizes).
func (ge *graphEngine) explore() {
	levelEnd := len(ge.states)
	for qi := 0; qi < len(ge.states) && !ge.over; qi++ {
		// The serial queue crosses a BFS level boundary exactly when qi
		// reaches the state count observed at the previous boundary:
		// every state below it is fully expanded, i.e. closed.
		if qi == levelEnd {
			ge.freezeTo(levelEnd)
			levelEnd = len(ge.states)
		}
		// ge.states and ge.bits may be appended to (and moved) by intern
		// below, so iterate a stable copy of this state's bitset and
		// take the element pointer only when writing; the marking view
		// stays valid across store growth. The bit iteration is inlined
		// (not via forEachAllowedEnabled) to keep this loop free of
		// per-state closure allocations.
		m := ge.marking(qi)
		copy(ge.pScratch, ge.bits[qi*ge.stride:(qi+1)*ge.stride])
		start := len(ge.ecsArena)
		for w := 0; w < ge.stride; w++ {
			x := ge.pScratch[w] & ge.allowedMask[w]
			for x != 0 {
				b := mathbits.TrailingZeros64(x)
				x &= x - 1
				E := ge.part[w*64+b]
				off := len(ge.succArena)
				for _, tid := range E.Trans {
					ge.scratch = m.FireInto(ge.scratch, ge.net.Transitions[tid])
					if !ge.withinCaps(ge.scratch) {
						ge.succArena = append(ge.succArena, -1)
						continue
					}
					id := ge.intern(ge.scratch, qi, tid)
					if ge.over {
						return
					}
					ge.succArena = append(ge.succArena, int32(id))
				}
				ge.ecsArena = append(ge.ecsArena, E)
				ge.succOff = append(ge.succOff, int32(off))
			}
		}
		s := &ge.states[qi]
		s.ecsStart, s.ecsEnd = int32(start), int32(len(ge.ecsArena))
	}
	ge.freezeTo(ge.store.Len())
}

// mergeHooks builds the sequential phase-C hooks writing the engine
// arenas in exactly the serial order — shared by the in-process
// parallel frontier and the distributed runner so the two cannot
// drift. The returned finish must be called once after the frontier
// run to close the last state's ECS range.
func (ge *graphEngine) mergeHooks() (hooks petri.MergeHooks, finish func()) {
	cur := -1
	var pend []int32 // allowed enabled ECS indexes of cur, in order
	pi, mi := 0, 0   // pending-ECS and member cursors
	finish = func() {
		if cur >= 0 {
			ge.states[cur].ecsEnd = int32(len(ge.ecsArena))
		}
	}
	// advance records one successor slot of cur, opening the next ECS
	// group lazily. The emit order of the expansion walks the same
	// bitset, so the cursors stay aligned by construction.
	advance := func(child int32) {
		E := ge.part[pend[pi]]
		if mi == 0 {
			ge.ecsArena = append(ge.ecsArena, E)
			ge.succOff = append(ge.succOff, int32(len(ge.succArena)))
		}
		ge.succArena = append(ge.succArena, child)
		if mi++; mi == len(E.Trans) {
			pi++
			mi = 0
		}
	}
	hooks = petri.MergeHooks{
		BeginState: func(id petri.MarkID) {
			finish()
			cur = int(id)
			ge.states[cur].ecsStart = int32(len(ge.ecsArena))
			pend = pend[:0]
			ge.forEachAllowedEnabled(ge.bits[cur*ge.stride:(cur+1)*ge.stride], func(E *petri.ECS) {
				pend = append(pend, int32(E.Index))
			})
			pi, mi = 0, 0
		},
		Admit: func() bool { return ge.store.Len() < ge.opt.MaxNodes },
		Edge: func(parent petri.MarkID, trans int32, child petri.MarkID, isNew bool) {
			if isNew {
				ge.admitState(int(parent), int(trans), ge.store.At(child))
			}
			advance(int32(child))
		},
		Reject: func(parent petri.MarkID, trans int32, budget bool) bool {
			if budget {
				ge.over = true
				return false
			}
			advance(-1)
			return true
		},
	}
	if ge.fwin != nil {
		hooks.LevelClosed = ge.freezeTo
	}
	return hooks, finish
}

// exploreParallel is explore() over petri.RunFrontier: each BFS level's
// firing, hashing and deduplication fan out across workers while the
// phase-C merge writes the arenas in exactly the serial order, so the
// resulting engine state — and with it the schedule and generated code
// — is byte-identical to the serial path for every worker count.
func (ge *graphEngine) exploreParallel(workers int) {
	scratch := make([]petri.Marking, workers)
	hooks, finish := ge.mergeHooks()
	petri.RunFrontier(ge.store, workers, petri.FrontierHooks{
		Expand: func(worker int, id petri.MarkID, m petri.Marking, emit func(int32, petri.Marking)) {
			ge.forEachAllowedEnabled(ge.bits[int(id)*ge.stride:(int(id)+1)*ge.stride], func(E *petri.ECS) {
				for _, tid := range E.Trans {
					scratch[worker] = m.FireInto(scratch[worker], ge.net.Transitions[tid])
					if !ge.withinCaps(scratch[worker]) {
						emit(int32(tid), nil)
						continue
					}
					emit(int32(tid), scratch[worker])
				}
			})
		},
		MergeHooks: hooks,
	})
	finish()
}

// exploreDist is explore() with the expansion shipped to worker
// processes: the runner receives the net, the allowed-ECS mask and the
// place caps — a complete description of this engine's expansion rule —
// and drives the same merge hooks in serial discovery order, so
// schedules and generated code are byte-identical to the serial and
// in-process parallel paths for every process count. Infrastructure
// failures surface as an error; exploration outcomes (budget
// exhaustion) land in ge.over exactly as in the other paths.
func (ge *graphEngine) exploreDist(r petri.FrontierRunner) error {
	hooks, finish := ge.mergeHooks()
	spec := petri.ExpandSpec{Mask: ge.allowedMask, Caps: ge.caps}
	if _, err := r.RunFrontier(ge.net, ge.store, spec, hooks); err != nil {
		return err
	}
	finish()
	return nil
}

// buildReverse assembles the CSR reverse adjacency over every explored
// in-cap edge, once; the fixpoint rounds filter it by the shrinking X
// set instead of rebuilding it.
func (ge *graphEngine) buildReverse() {
	counts := make([]int32, len(ge.states)+1)
	for _, t := range ge.succArena {
		if t >= 0 {
			counts[t+1]++
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	ge.revOff = counts
	total := counts[len(counts)-1]
	ge.revSrc = make([]int32, total)
	ge.revECS = make([]int32, total)
	fill := make([]int32, len(ge.states))
	for si := range ge.states {
		s := &ge.states[si]
		for i := 0; i < ge.ecsCount(s); i++ {
			k := s.ecsStart + int32(i)
			for _, t := range ge.succOf(s, i) {
				if t < 0 {
					continue
				}
				e := ge.revOff[t] + fill[t]
				fill[t]++
				ge.revSrc[e] = int32(si)
				ge.revECS[e] = k
			}
		}
	}
	ge.usable = make([]bool, len(ge.ecsArena))
	ge.dist = make([]int64, len(ge.states))
}

// ecsUsable reports whether ECS i of state s keeps all successors inside
// the current X set.
func (ge *graphEngine) ecsUsable(s *gstate, i int) bool {
	for _, t := range ge.succOf(s, i) {
		if t < 0 || !ge.states[t].inX {
			return false
		}
	}
	return true
}

// solve runs the alternating fixpoint; it returns true when the initial
// marking admits a schedule (the root's source successor stays in X).
func (ge *graphEngine) solve(rootID int) bool {
	ge.buildReverse()
	for i := range ge.states {
		ge.states[i].inX = true
	}
	for {
		changed := false
		// Closure: a state needs at least one usable ECS; removals
		// cascade across outer rounds.
		for i := range ge.states {
			s := &ge.states[i]
			if !s.inX {
				continue
			}
			ok := false
			for j := 0; j < ge.ecsCount(s); j++ {
				if ge.ecsUsable(s, j) {
					ok = true
					break
				}
			}
			if !ok {
				s.inX = false
				changed = true
			}
		}
		if !ge.states[rootID].inX {
			return false
		}
		ge.computeRanks(rootID)
		for i := range ge.states {
			s := &ge.states[i]
			if s.inX && s.rank < 0 {
				s.inX = false
				changed = true
			}
		}
		if !ge.states[rootID].inX {
			return false
		}
		if !changed {
			break
		}
	}
	// The root must be able to fire the source and stay in X.
	root := &ge.states[rootID]
	for i := 0; i < ge.ecsCount(root); i++ {
		E := ge.ecsAt(root, i)
		if len(E.Trans) == 1 && E.Trans[0] == ge.source && ge.ecsUsable(root, i) {
			return true
		}
	}
	return false
}

// occupancyWeight is the rank penalty per buffered token: paths through
// low-occupancy markings are strongly preferred, which is what makes the
// synthesized channel bounds minimal (unit buffers for the PFC app).
const occupancyWeight = 64

// computeRanks runs a reverse Dijkstra from the root within X: rank(s) =
// min over usable ECSs and successors t of w(s) + rank(t), with
// w(s) = 1 + occupancyWeight * occupancy(s). A state with a finite rank
// can reach the root inside X; following any rank-decreasing choice
// yields property 5 of the schedule definition.
func (ge *graphEngine) computeRanks(rootID int) {
	// Refresh the per-arena-entry usability cache for this round, then
	// run the reverse Dijkstra over the prebuilt CSR adjacency. All
	// buffers are engine-owned and reused, so fixpoint rounds after the
	// first allocate nothing.
	for i := range ge.states {
		ge.states[i].rank = -1
	}
	for k := range ge.usable {
		ge.usable[k] = false
	}
	for i := range ge.states {
		s := &ge.states[i]
		if !s.inX {
			continue
		}
		for j := 0; j < ge.ecsCount(s); j++ {
			ge.usable[int(s.ecsStart)+j] = ge.ecsUsable(s, j)
		}
	}
	dist := ge.dist
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[rootID] = 0
	h := &ge.heap
	h.items = h.items[:0]
	h.push(rankItem{id: int32(rootID), d: 0})
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.id] {
			continue
		}
		for e := ge.revOff[it.id]; e < ge.revOff[it.id+1]; e++ {
			if !ge.usable[ge.revECS[e]] {
				continue
			}
			sid := ge.revSrc[e]
			if !ge.states[sid].inX {
				continue
			}
			// Weight = 1 + occupancyWeight * occupancy, with occupancy
			// precomputed per state at intern time.
			cand := it.d + 1 + occupancyWeight*int64(ge.states[sid].occ)
			if cand < dist[sid] {
				dist[sid] = cand
				h.push(rankItem{id: sid, d: cand})
			}
		}
	}
	for i := range ge.states {
		s := &ge.states[i]
		if s.inX && dist[i] < 1<<30 {
			s.rank = int32(dist[i])
		}
	}
}

type rankItem struct {
	id int32
	d  int64
}

// rankHeap is a minimal binary min-heap on d.
type rankHeap struct {
	items []rankItem
}

func (h *rankHeap) Len() int { return len(h.items) }

func (h *rankHeap) push(it rankItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *rankHeap) pop() rankItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// selArmIndex returns the SELECT arm priority of a singleton ECS, or a
// large value for non-arms.
func (ge *graphEngine) selArmIndex(E *petri.ECS) int {
	if len(E.Trans) != 1 {
		return 1 << 20
	}
	t := ge.net.Transitions[E.Trans[0]]
	for _, a := range t.In {
		p := ge.net.Places[a.Place]
		if ci, ok := p.Cond.(*compile.ChoiceInfo); ok && ci.Kind == compile.ChoiceSelect {
			if len(t.Label) > 3 && t.Label[:3] == "sel" {
				idx := 0
				for _, c := range t.Label[3:] {
					if c < '0' || c > '9' {
						return 1 << 20
					}
					idx = idx*10 + int(c-'0')
				}
				return idx
			}
		}
	}
	return 1 << 20
}

// occupancy returns the total channel/port token count of a marking —
// the buffer memory the marking pins down.
func (ge *graphEngine) occupancy(m petri.Marking) int {
	total := 0
	for i, v := range m {
		switch ge.net.Places[i].Kind {
		case petri.PlaceChannel, petri.PlacePort:
			total += v
		}
	}
	return total
}

// choose picks σ(s): a usable ECS that makes progress toward the root
// (some successor with smaller rank — this alone guarantees property 5),
// preferring internal activity over awaits, honoring SELECT arm
// priorities, and keeping channel occupancy low so synthesized buffers
// stay minimal (the paper's PFC result: all channels of unit size).
func (ge *graphEngine) choose(s *gstate) int {
	type cand struct {
		i   int
		key [5]int
	}
	var cands []cand
	for i := 0; i < ge.ecsCount(s); i++ {
		E := ge.ecsAt(s, i)
		if !ge.ecsUsable(s, i) {
			continue
		}
		minSucc := int32(1 << 30)
		for _, t := range ge.succOf(s, i) {
			if r := ge.states[t].rank; r >= 0 && r < minSucc {
				minSucc = r
			}
		}
		if minSucc >= s.rank {
			continue // no progress toward the root via this ECS
		}
		var key [5]int
		if E.IsSourceECS(ge.net) {
			key[0] = 1
		}
		key[1] = ge.selArmIndex(E)
		key[2] = int(minSucc)
		key[3] = E.Index
		cands = append(cands, cand{i: i, key: key})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		for k := 0; k < len(cands[a].key); k++ {
			if cands[a].key[k] != cands[b].key[k] {
				return cands[a].key[k] < cands[b].key[k]
			}
		}
		return false
	})
	return cands[0].i
}

// build emits the schedule induced by σ from the root.
func (ge *graphEngine) build(rootID int) *Schedule {
	s := &Schedule{Net: ge.net, Source: ge.source}
	mem := ge.store.Mem()
	s.Stats = SearchStats{
		NodesCreated:     len(ge.states),
		DistinctMarkings: ge.store.Len(),
		StoreHotBytes:    mem.HotBytes,
		StoreFrozenBytes: mem.FrozenBytes,
	}
	nodeOf := map[int]*Node{}
	var mk func(id int) *Node
	mk = func(id int) *Node {
		if n, ok := nodeOf[id]; ok {
			return n
		}
		st := &ge.states[id]
		// Schedule nodes outlive the engine: clone out of the store arena.
		n := &Node{ID: len(s.Nodes), Marking: ge.marking(id).Clone()}
		nodeOf[id] = n
		s.Nodes = append(s.Nodes, n)
		var ecsIdx int
		if id == rootID {
			// The root fires the source.
			ecsIdx = -1
			for i := 0; i < ge.ecsCount(st); i++ {
				if E := ge.ecsAt(st, i); len(E.Trans) == 1 && E.Trans[0] == ge.source {
					ecsIdx = i
					break
				}
			}
		} else {
			ecsIdx = ge.choose(st)
		}
		if ecsIdx < 0 {
			return n // defensive; solve() guarantees a choice
		}
		E := ge.ecsAt(st, ecsIdx)
		n.ECS = E
		succ := ge.succOf(st, ecsIdx)
		for j, tid := range E.Trans {
			n.Edges = append(n.Edges, Edge{Trans: tid, To: mk(int(succ[j]))})
		}
		return n
	}
	s.Root = mk(rootID)
	s.Stats.NodesKept = len(s.Nodes)
	return s
}

// GraphDiagnosis reports why the graph engine rejected a net — which
// markings deadlock (no allowed ECS enabled) or are cap-dead (every
// enabled ECS has a successor beyond the place caps), and which states
// survived the fixpoint. It is a debugging aid for specification
// authors chasing false paths (Section 7.2).
type GraphDiagnosis struct {
	States    int
	Deadlocks []petri.Marking // no allowed ECS enabled at all
	CapDead   []petri.Marking // every ECS escapes the caps
	RootInX   bool
	Solved    bool
	// FirstRemoved lists sample markings removed by the fixpoint's
	// first closure round excluding the plain dead ones — the frontier
	// of the poisoning cascade.
	FirstRemoved []petri.Marking
}

// Diagnose runs the graph engine's exploration and fixpoint and reports
// the failure structure. The sample lists are truncated to 16 entries.
func Diagnose(n *petri.Net, source int, opt *Options) *GraphDiagnosis {
	eff := opt.withDefaults(n, source)
	ge := newGraphEngine(n, source, eff)
	rootID := ge.internRoot(n.InitialMarking())
	ge.explore()
	d := &GraphDiagnosis{States: len(ge.states)}
	const maxSample = 16
	plainDead := map[int]bool{}
	for id := range ge.states {
		s := &ge.states[id]
		if ge.ecsCount(s) == 0 {
			plainDead[id] = true
			if len(d.Deadlocks) < maxSample {
				d.Deadlocks = append(d.Deadlocks, ge.marking(id).Clone())
			}
			continue
		}
		usable := false
		for i := 0; i < ge.ecsCount(s); i++ {
			ok := true
			for _, t := range ge.succOf(s, i) {
				if t < 0 {
					ok = false
					break
				}
			}
			if ok {
				usable = true
				break
			}
		}
		if !usable {
			plainDead[id] = true
			if len(d.CapDead) < maxSample {
				d.CapDead = append(d.CapDead, ge.marking(id).Clone())
			}
		}
	}
	d.Solved = ge.solve(rootID)
	d.RootInX = ge.states[rootID].inX
	for id := range ge.states {
		if !ge.states[id].inX && !plainDead[id] && len(d.FirstRemoved) < maxSample {
			d.FirstRemoved = append(d.FirstRemoved, ge.marking(id).Clone())
		}
	}
	return d
}
