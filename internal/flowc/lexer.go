package flowc

import (
	"fmt"
	"strconv"
	"unicode"
)

// Lexer tokenizes FlowC source. It supports //-style and /* */ comments.
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over the given source text.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() rune {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%v: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for l.off < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.off])
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case unicode.IsDigit(r):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.off])
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%v: bad integer literal %q: %v", pos, text, err)
		}
		return Token{Kind: TokInt, Text: text, Val: v, Pos: pos}, nil
	case r == '"':
		l.advance()
		start := l.off
		for l.off < len(l.src) && l.peek() != '"' {
			l.advance()
		}
		if l.off >= len(l.src) {
			return Token{}, fmt.Errorf("%v: unterminated string literal", pos)
		}
		text := string(l.src[start:l.off])
		l.advance()
		return Token{Kind: TokString, Text: text, Pos: pos}, nil
	}
	two := func(k TokKind, s string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: s, Pos: pos}, nil
	}
	one := func(k TokKind, s string) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: s, Pos: pos}, nil
	}
	switch r {
	case '(':
		return one(TokLParen, "(")
	case ')':
		return one(TokRParen, ")")
	case '{':
		return one(TokLBrace, "{")
	case '}':
		return one(TokRBrace, "}")
	case '[':
		return one(TokLBracket, "[")
	case ']':
		return one(TokRBracket, "]")
	case ',':
		return one(TokComma, ",")
	case ';':
		return one(TokSemi, ";")
	case ':':
		return one(TokColon, ":")
	case '+':
		if l.peek2() == '+' {
			return two(TokInc, "++")
		}
		if l.peek2() == '=' {
			return two(TokPlusEq, "+=")
		}
		return one(TokPlus, "+")
	case '-':
		if l.peek2() == '-' {
			return two(TokDec, "--")
		}
		if l.peek2() == '=' {
			return two(TokMinusEq, "-=")
		}
		return one(TokMinus, "-")
	case '*':
		return one(TokStar, "*")
	case '/':
		return one(TokSlash, "/")
	case '%':
		return one(TokPercent, "%")
	case '=':
		if l.peek2() == '=' {
			return two(TokEq, "==")
		}
		return one(TokAssign, "=")
	case '!':
		if l.peek2() == '=' {
			return two(TokNeq, "!=")
		}
		return one(TokNot, "!")
	case '<':
		if l.peek2() == '=' {
			return two(TokLe, "<=")
		}
		return one(TokLt, "<")
	case '>':
		if l.peek2() == '=' {
			return two(TokGe, ">=")
		}
		return one(TokGt, ">")
	case '&':
		if l.peek2() == '&' {
			return two(TokAndAnd, "&&")
		}
		return one(TokAmp, "&")
	case '|':
		if l.peek2() == '|' {
			return two(TokOrOr, "||")
		}
	}
	return Token{}, fmt.Errorf("%v: unexpected character %q", pos, string(r))
}

// LexAll tokenizes the whole source, including the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
