// Package core is the end-to-end facade of the synthesis flow: FlowC
// sources + netlist → compiled Petri nets → linked system net →
// quasi-static schedules (one per uncontrollable input) → software tasks
// with generated C code and statically guaranteed channel bounds.
package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/codegen"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/flowc"
	"repro/internal/link"
	"repro/internal/petri"
	"repro/internal/pool"
	"repro/internal/sched"
)

// Options configures the pipeline.
type Options struct {
	// Sched configures the schedule search (termination condition,
	// heuristics); nil uses the paper's defaults (irrelevance criterion
	// + T-invariant ordering).
	Sched *sched.Options
	// SkipIndependence disables the independence verification of the
	// schedule set (Prop. 4.3 makes it redundant for FlowC-derived
	// UCPNs, but SELECT voids the guarantee, so the default is to check).
	SkipIndependence bool
	// Workers bounds the number of concurrent per-source schedule
	// searches. 0 uses GOMAXPROCS, 1 forces the serial path. Every
	// search is deterministic and independent of the others, so the
	// result is byte-identical regardless of Workers. A custom
	// Sched.Term or Sched.Order is shared across searches and must be
	// safe for concurrent use when Workers > 1; the defaults are built
	// fresh per search and always are.
	Workers int
	// ExploreWorkers bounds the goroutines each schedule search may use
	// for its own state-space exploration — the frontier level of the
	// two-level parallelism model (sources x frontier). 0 derives a
	// value from GOMAXPROCS and the source-level pool so the two levels
	// share one core budget (a single-source system gets all cores at
	// the frontier; many sources leave the frontier serial); 1 forces
	// serial exploration. Results are byte-identical for every value.
	// An explicit Sched.ExploreWorkers takes precedence.
	ExploreWorkers int
	// DistWorkers > 0 shards each schedule search's frontier
	// exploration across that many worker OS processes (internal/dist)
	// instead of in-process goroutines. By default the processes are
	// spawned locally by re-executing the current binary, which must
	// call dist.MaybeWorker first thing in main; set DistEndpoint to
	// await externally started cmd/qssd workers instead. The pool lives
	// for one Synthesize call; callers amortizing a pool across many
	// calls pass a pre-connected one via Dist. Schedules and generated
	// code are byte-identical to the serial path for every process
	// count; the source-level pool is forced serial while a dist pool
	// is active (the pool is a sequential resource). Contradicts
	// ExploreWorkers > 1 — callers choose one exploration strategy.
	DistWorkers int
	// DistEndpoint, with DistWorkers > 0, listens at this endpoint
	// ("unix:/path", "tcp:host:port", or a bare unix-socket path) and
	// waits for DistWorkers externally started workers rather than
	// spawning local ones.
	DistEndpoint string
	// Dist is a pre-connected worker pool (see internal/dist.Pool);
	// when set it takes precedence over DistWorkers/DistEndpoint and
	// its lifecycle belongs to the caller.
	Dist *dist.Pool
	// DistFullReplicas opts a DistWorkers/DistEndpoint pool out of the
	// default trimmed-replica protocol: every worker rebuilds the full
	// marking store from delta broadcasts (memory parity with the
	// coordinator) instead of holding only its owned hash shards.
	// Trimming is what lets per-worker memory scale ~1/N with the pool
	// size; the fallback trades that for local successor
	// classification and vector-free steady-state traffic. Results are
	// byte-identical either way. A pre-connected Dist pool carries its
	// own mode (dist.Pool.SetFullReplicas) and ignores this field.
	DistFullReplicas bool
	// DistNoFallback makes a distributed-pool failure (worker death
	// with recovery exhausted) fail the Synthesize call instead of
	// transparently rerunning the affected searches in-process. The
	// default (fallback on) prefers a slower correct answer over an
	// infrastructure error: determinism guarantees the local rerun is
	// byte-identical to what the pool would have produced.
	DistNoFallback bool
	// DisableCache bypasses the content-addressed synthesis cache for
	// this call. Only the textual entry points (Synthesize,
	// SynthesizeContext) consult the cache; see cache.go.
	DisableCache bool
	// MaxNodes bounds the states each schedule search may create, a
	// request-scoped budget for callers (such as the resident server)
	// that must stop one huge net from monopolizing the process without
	// importing the sched package. 0 keeps the sched default; an
	// explicit Sched.MaxNodes always wins. The value is part of the
	// cache key — different budgets can legitimately produce different
	// outcomes (ErrBudget vs a schedule).
	MaxNodes int
	// FreezeLevels makes each graph-engine search evict closed BFS
	// levels of its marking store to an on-disk delta segment
	// (sched.Options.FreezeLevels), bounding hot memory on huge nets at
	// the cost of reconstructing cold vectors on later reads. Results
	// are byte-identical either way, so like the worker knobs it is an
	// execution-strategy field, not part of the cache key. A pre-set
	// Sched options struct is copied, never mutated.
	FreezeLevels bool
}

// Result is the outcome of the full flow.
type Result struct {
	File      *flowc.File
	Procs     []*compile.CompiledProcess
	Sys       *link.System
	Schedules []*sched.Schedule
	Tasks     []*codegen.Task
	// Code maps task names to generated C source.
	Code map[string]string
	// Bounds are the per-place token bounds over all schedules; for
	// channel places this is the statically guaranteed buffer size.
	Bounds []int
	// SharedChannels lists channel place IDs used by more than one task.
	SharedChannels map[int]bool
}

// TaskByName returns a generated task, or nil.
func (r *Result) TaskByName(name string) *codegen.Task {
	for _, t := range r.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ChannelBound returns the statically guaranteed buffer size of a
// channel, by name.
func (r *Result) ChannelBound(name string) int {
	for _, ch := range r.Sys.Channels {
		if ch.Spec.Name == name {
			return r.Bounds[ch.Place.ID]
		}
	}
	return -1
}

// Synthesize runs the full flow on FlowC source text and a netlist in
// the textual system format.
func Synthesize(flowcSrc, specSrc string, opt *Options) (*Result, error) {
	return SynthesizeContext(context.Background(), flowcSrc, specSrc, opt)
}

// SynthesizeContext is Synthesize with cancellation: the schedule
// searches stop dispatching as soon as ctx is done. It is also the
// cached entry point — repeated synthesis of the same sources under the
// same options returns the memoized Result (see cache.go). Cached
// Results are shared; callers must treat them as read-only.
func SynthesizeContext(ctx context.Context, flowcSrc, specSrc string, opt *Options) (*Result, error) {
	r, _, err := SynthesizeCachedContext(ctx, flowcSrc, specSrc, opt)
	return r, err
}

// SynthesizeCachedContext is SynthesizeContext that additionally
// reports whether the Result came out of the content-addressed cache —
// the per-call signal a multiplexing caller (the resident server's hit
// counters and latency accounting) needs, which the process-global
// Stats counters cannot provide under concurrency.
func SynthesizeCachedContext(ctx context.Context, flowcSrc, specSrc string, opt *Options) (*Result, bool, error) {
	if opt == nil {
		opt = &Options{}
	}
	// A cancelled call must fail even on a cache hit, or cancellation
	// would depend on what happens to be cached.
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("core: %w", err)
	}
	key, cacheable := cacheKey(flowcSrc, specSrc, opt)
	if cacheable {
		if r, ok := synthCache.get(key); ok {
			return r, true, nil
		}
	}
	f, err := flowc.ParseFile(flowcSrc)
	if err != nil {
		return nil, false, fmt.Errorf("core: parse FlowC: %w", err)
	}
	spec, err := link.ParseSpec(strings.NewReader(specSrc))
	if err != nil {
		return nil, false, fmt.Errorf("core: parse netlist: %w", err)
	}
	res, err := SynthesizeSystemContext(ctx, f, spec, opt)
	if err != nil {
		return nil, false, err
	}
	if cacheable {
		synthCache.put(key, res)
	}
	return res, false, nil
}

// SynthesizeSystem runs the flow on parsed inputs.
func SynthesizeSystem(f *flowc.File, spec *link.Spec, opt *Options) (*Result, error) {
	return SynthesizeSystemContext(context.Background(), f, spec, opt)
}

// SystemNet parses, checks, compiles and links the sources and returns
// the linked system net without running the schedule search — the front
// half of the flow, for callers that only need the net itself (the
// corpus PNML exporter, structural analyses).
func SystemNet(flowcSrc, specSrc string) (*petri.Net, error) {
	f, err := flowc.ParseFile(flowcSrc)
	if err != nil {
		return nil, fmt.Errorf("core: parse FlowC: %w", err)
	}
	spec, err := link.ParseSpec(strings.NewReader(specSrc))
	if err != nil {
		return nil, fmt.Errorf("core: parse netlist: %w", err)
	}
	if err := flowc.CheckFile(f); err != nil {
		return nil, fmt.Errorf("core: check: %w", err)
	}
	procs := make([]*compile.CompiledProcess, 0, len(f.Processes))
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		procs = append(procs, cp)
	}
	sys, err := link.Link(procs, spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return sys.Net, nil
}

// SynthesizeSystemContext runs the flow on parsed inputs with
// cancellation. The per-source schedule searches run on a bounded
// worker pool (see Options.Workers); the first search error cancels the
// remaining work.
func SynthesizeSystemContext(ctx context.Context, f *flowc.File, spec *link.Spec, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	opt = withMaxNodes(opt)
	opt = withFreezeLevels(opt)
	if err := flowc.CheckFile(f); err != nil {
		return nil, fmt.Errorf("core: check: %w", err)
	}
	res := &Result{File: f, Code: map[string]string{}}
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		res.Procs = append(res.Procs, cp)
	}
	sys, err := link.Link(res.Procs, spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Sys = sys

	sources := sys.Net.UncontrollableSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: system %s has no uncontrollable inputs; nothing triggers a task", spec.Name)
	}
	distPool, ownPool, err := resolveDistPool(opt)
	if err != nil {
		return nil, err
	}
	if ownPool {
		defer distPool.Close()
	}
	res.Schedules, err = findSchedules(ctx, sys.Net, sources, opt, distPool)
	if err != nil {
		return nil, err
	}
	if !opt.SkipIndependence {
		if err := sched.CheckIndependence(res.Schedules); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	res.Bounds = sched.CombinedPlaceBounds(res.Schedules)
	res.SharedChannels = sharedChannels(sys, res.Schedules)

	for _, s := range res.Schedules {
		name := "task_" + sys.Net.Transitions[s.Source].Name
		task, err := codegen.Generate(s, name)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.Tasks = append(res.Tasks, task)
		res.Code[name] = codegen.Synthesize(task, &codegen.SynthOptions{
			Sys:            sys,
			SharedChannels: res.SharedChannels,
		})
	}
	return res, nil
}

// resolveDistPool materializes the distributed-exploration pool the
// options call for: the caller's pre-connected pool, a freshly spawned
// local set of worker processes, or a listener awaiting external
// workers. ownPool reports whether this call owns (and must Close) it.
func resolveDistPool(opt *Options) (p *dist.Pool, ownPool bool, err error) {
	if opt.Dist != nil {
		return opt.Dist, false, nil
	}
	if opt.DistWorkers <= 0 {
		return nil, false, nil
	}
	if opt.DistEndpoint != "" {
		p, err = dist.Listen(opt.DistEndpoint, opt.DistWorkers)
	} else {
		p, err = dist.SpawnLocal(opt.DistWorkers)
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: distributed exploration: %w", err)
	}
	if opt.DistFullReplicas {
		p.SetFullReplicas(true)
	}
	return p, true, nil
}

// findSchedules runs one schedule search per uncontrollable source on a
// bounded worker pool. Results are ordered by source index regardless of
// completion order; the first error cancels the dispatch of pending
// searches, and the lowest-index error is reported for determinism.
func findSchedules(ctx context.Context, n *petri.Net, sources []int, opt *Options, distPool *dist.Pool) ([]*sched.Schedule, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if distPool != nil {
		// The pool serializes sessions; concurrent searches would only
		// queue on it, so keep the source level serial.
		workers = 1
	}
	schedOpt := wireExploreWorkers(opt, workers)
	if distPool != nil {
		so := sched.Options{}
		if schedOpt != nil {
			so = *schedOpt
		}
		so.Dist = distPool
		so.DistFallback = !opt.DistNoFallback
		so.ExploreWorkers = 0
		schedOpt = &so
	}
	out := make([]*sched.Schedule, len(sources))
	if workers <= 1 {
		for i, src := range sources {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s, err := sched.FindSchedule(n, src, schedOpt)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			out[i] = s
		}
		return out, nil
	}
	// The net's adjacency caches are built lazily and unsynchronized;
	// build them before the read-only fan-out.
	n.Warm()
	errs := make([]error, len(sources))
	pool.Run(ctx, len(sources), workers, func(i int, cancel context.CancelFunc) {
		s, err := sched.FindSchedule(n, sources[i], schedOpt)
		if err != nil {
			errs[i] = err
			cancel() // first error: stop dispatching pending searches
			return
		}
		out[i] = s
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return out, nil
}

// withMaxNodes folds a request-scoped Options.MaxNodes budget into the
// sched options, copying rather than mutating the caller's structs. An
// explicit Sched.MaxNodes wins; 0 leaves everything untouched.
func withMaxNodes(opt *Options) *Options {
	if opt.MaxNodes <= 0 || (opt.Sched != nil && opt.Sched.MaxNodes != 0) {
		return opt
	}
	o := *opt
	so := sched.Options{}
	if opt.Sched != nil {
		so = *opt.Sched
	}
	so.MaxNodes = opt.MaxNodes
	o.Sched = &so
	return &o
}

// withFreezeLevels folds Options.FreezeLevels into the sched options,
// copying rather than mutating the caller's structs. A Sched struct
// with the flag already set is left alone.
func withFreezeLevels(opt *Options) *Options {
	if !opt.FreezeLevels || (opt.Sched != nil && opt.Sched.FreezeLevels) {
		return opt
	}
	o := *opt
	so := sched.Options{}
	if opt.Sched != nil {
		so = *opt.Sched
	}
	so.FreezeLevels = true
	o.Sched = &so
	return &o
}

// wireExploreWorkers resolves the frontier-level worker count of the
// two-level parallelism budget and returns the sched options to use:
// with srcWorkers searches running concurrently, each search gets
// GOMAXPROCS/srcWorkers exploration goroutines unless the caller chose
// explicitly (Options.ExploreWorkers, or a pre-set Sched.ExploreWorkers
// which always wins). The caller's Options are never mutated.
func wireExploreWorkers(opt *Options, srcWorkers int) *sched.Options {
	if opt.Sched != nil && opt.Sched.ExploreWorkers != 0 {
		return opt.Sched
	}
	ew := opt.ExploreWorkers
	if ew == 0 {
		if srcWorkers < 1 {
			srcWorkers = 1
		}
		ew = runtime.GOMAXPROCS(0) / srcWorkers
	}
	if ew <= 1 {
		// Serial exploration is the zero value; no copy needed.
		return opt.Sched
	}
	so := sched.Options{}
	if opt.Sched != nil {
		so = *opt.Sched
	}
	so.ExploreWorkers = ew
	return &so
}

// sharedChannels finds channel places touched (with token flow) by more
// than one schedule; those must remain real inter-task channels.
func sharedChannels(sys *link.System, set []*sched.Schedule) map[int]bool {
	out := map[int]bool{}
	if len(set) < 2 {
		return out
	}
	users := map[int]int{}
	for _, s := range set {
		seen := map[int]bool{}
		for _, tid := range s.InvolvedTransitions() {
			t := sys.Net.Transitions[tid]
			touch := func(pid int) {
				if sys.Net.Places[pid].Kind == petri.PlaceChannel && !seen[pid] {
					seen[pid] = true
					users[pid]++
				}
			}
			for _, a := range t.In {
				if t.OutWeight(a.Place) != a.Weight {
					touch(a.Place)
				}
			}
			for _, a := range t.Out {
				if t.Weight(a.Place) != a.Weight {
					touch(a.Place)
				}
			}
		}
	}
	for p, n := range users {
		if n > 1 {
			out[p] = true
		}
	}
	return out
}
