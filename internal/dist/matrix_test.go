package dist_test

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/petri"
)

// The determinism matrix: every execution strategy of the exploration —
// serial, in-process frontier goroutines, and real spawned worker
// processes — must produce byte-identical schedules, generated C and
// reachability results. These tests spawn actual OS processes
// (dist.SpawnLocal re-executes this test binary; TestMain routes the
// children into dist.MaybeWorker), so they cover the wire protocol,
// replica reconstruction and coordinator merge end to end, under -race
// when the harness runs with it.

func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// fingerprint renders everything downstream consumers depend on: task
// names, generated C, guaranteed bounds and the full schedule text.
func fingerprint(t *testing.T, r *core.Result) string {
	t.Helper()
	var sb strings.Builder
	names := make([]string, 0, len(r.Code))
	for name := range r.Code {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "== task %s ==\n%s", name, r.Code[name])
	}
	fmt.Fprintf(&sb, "bounds %v\n", r.Bounds)
	for _, s := range r.Schedules {
		if err := s.Format(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

var matrixApps = []struct {
	name  string
	flowc string
	spec  string
}{
	{"divisors", apps.Divisors, apps.DivisorsSpec},
	{"pixelpipe", apps.PixelPipe, apps.PixelPipeSpec},
	{"multirate", apps.MultiRate, apps.MultiRateSpec},
	{"falsepath_fixed", apps.FalsePathFixed, apps.FalsePathFixedSpec},
	{"pfc", apps.PFC, apps.PFCSpec},
}

// matrixConfig is one execution strategy. procs > 0 spawns that many
// worker processes (trimmed owned-shard replicas by default; full
// restores the broadcast full-replica fallback); otherwise ew is the
// in-process ExploreWorkers value (1 = plain serial). freeze turns on
// the frozen store tier — on the coordinator via
// core.Options.FreezeLevels, and in spawned workers via the
// QSS_DIST_FREEZE environment variable they inherit.
type matrixConfig struct {
	name   string
	ew     int
	procs  int
	full   bool
	freeze bool
}

var matrixConfigs = []matrixConfig{
	{name: "serial", ew: 1},
	{name: "explore-workers-1", ew: 1},
	{name: "explore-workers-4", ew: 4},
	{name: "explore-workers-8", ew: 8},
	{name: "serial-frozen", ew: 1, freeze: true},
	{name: "dist-procs-1", procs: 1},
	{name: "dist-procs-2", procs: 2},
	{name: "dist-procs-4", procs: 4},
	{name: "dist-procs-2-full-replicas", procs: 2, full: true},
	{name: "dist-procs-2-frozen", procs: 2, freeze: true},
	{name: "dist-procs-2-full-replicas-frozen", procs: 2, full: true, freeze: true},
}

// TestDeterminismMatrix: byte-identical generated C and schedules for
// every example app across {serial, ExploreWorkers in {1,4,8}, worker
// processes in {1,2,4}}.
func TestDeterminismMatrix(t *testing.T) {
	want := make(map[string]string, len(matrixApps))
	for _, app := range matrixApps {
		r, err := core.Synthesize(app.flowc, app.spec, &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true})
		if err != nil {
			t.Fatalf("serial %s: %v", app.name, err)
		}
		want[app.name] = fingerprint(t, r)
	}
	for _, cfg := range matrixConfigs[1:] {
		t.Run(cfg.name, func(t *testing.T) {
			opt := &core.Options{Workers: 1, ExploreWorkers: cfg.ew, DisableCache: true, FreezeLevels: cfg.freeze}
			if cfg.procs > 0 {
				if cfg.freeze {
					t.Setenv(dist.EnvFreeze, "1")
				}
				pool, err := dist.SpawnLocal(cfg.procs)
				if err != nil {
					t.Fatalf("spawn %d workers: %v", cfg.procs, err)
				}
				defer pool.Close()
				pool.SetFullReplicas(cfg.full)
				opt = &core.Options{Workers: 1, Dist: pool, DisableCache: true, FreezeLevels: cfg.freeze}
			}
			for _, app := range matrixApps {
				r, err := core.Synthesize(app.flowc, app.spec, opt)
				if err != nil {
					t.Fatalf("%s under %s: %v", app.name, cfg.name, err)
				}
				if got := fingerprint(t, r); got != want[app.name] {
					t.Errorf("%s under %s: output differs from serial\n%s",
						app.name, cfg.name, firstDiff(want[app.name], got))
				}
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  serial: %q\n  this:   %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(wl), len(gl))
}

// TestReachMatrix: petri-level ReachResult ordering — markings, edges,
// clip flags — is byte-identical across serial, in-process parallel
// and worker-process exploration, including under budget truncation.
func TestReachMatrix(t *testing.T) {
	nets := []struct {
		name string
		net  *petri.Net
		opt  petri.ExploreOptions
	}{
		{"product-space", productNet(3, 4), petri.ExploreOptions{MaxMarkings: 200}},
		{"pfc-capped", linkedPFCNet(t), petri.ExploreOptions{MaxMarkings: 3000, MaxTokensPerPlace: 2, FireSources: true}},
		{"pfc-truncated", linkedPFCNet(t), petri.ExploreOptions{MaxMarkings: 111, MaxTokensPerPlace: 2, FireSources: true}},
	}
	for _, tc := range nets {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.net.Explore(tc.opt)
			for _, w := range []int{1, 4, 8} {
				opt := tc.opt
				opt.Workers = w
				assertSameReach(t, fmt.Sprintf("workers=%d", w), want, tc.net.Explore(opt))
			}
			for _, procs := range []int{1, 2, 4} {
				pool, err := dist.SpawnLocal(procs)
				if err != nil {
					t.Fatalf("spawn %d workers: %v", procs, err)
				}
				got, err := tc.net.ExploreDist(pool, tc.opt)
				pool.Close()
				if err != nil {
					t.Fatalf("ExploreDist(%d procs): %v", procs, err)
				}
				assertSameReach(t, fmt.Sprintf("procs=%d", procs), want, got)
			}
		})
	}
}

func assertSameReach(t *testing.T, label string, want, got *petri.ReachResult) {
	t.Helper()
	if want.Len() != got.Len() || want.Truncated != got.Truncated {
		t.Fatalf("%s: %d states/truncated=%v, want %d/%v", label, got.Len(), got.Truncated, want.Len(), want.Truncated)
	}
	for id := 0; id < want.Len(); id++ {
		if !want.MarkingAt(petri.MarkID(id)).Equal(got.MarkingAt(petri.MarkID(id))) {
			t.Fatalf("%s: marking %d differs", label, id)
		}
		if want.Clipped[id] != got.Clipped[id] {
			t.Fatalf("%s: clipped[%d] differs", label, id)
		}
		we, ge := want.Edges[id], got.Edges[id]
		if len(we) != len(ge) {
			t.Fatalf("%s: state %d edge counts differ", label, id)
		}
		for k := range we {
			if we[k] != ge[k] {
				t.Fatalf("%s: state %d edge %d differs", label, id, k)
			}
		}
	}
}

// productNet: independent token rings whose reachable space is the
// product of ring positions.
func productNet(pipes, stages int) *petri.Net {
	n := petri.New(fmt.Sprintf("product-%dx%d", pipes, stages))
	for p := 0; p < pipes; p++ {
		var ps []*petri.Place
		for s := 0; s < stages; s++ {
			init := 0
			if s == 0 {
				init = 1
			}
			ps = append(ps, n.AddPlace(fmt.Sprintf("r%d_%d", p, s), petri.PlaceInternal, init))
		}
		for s := 0; s < stages; s++ {
			t := n.AddTransition(fmt.Sprintf("t%d_%d", p, s), petri.TransNormal)
			n.AddArc(ps[s], t, 1)
			n.AddArcTP(t, ps[(s+1)%stages], 1)
		}
	}
	return n
}

// linkedPFCNet compiles and links the PFC application, returning its
// system net — a realistic multi-process net with SELECT choice
// structure for the reachability matrix.
func linkedPFCNet(t *testing.T) *petri.Net {
	t.Helper()
	r, err := apps.SynthesizePFC()
	if err != nil {
		t.Fatalf("synthesize pfc: %v", err)
	}
	return r.Sys.Net
}

// sweepConfig keeps the 50-app corpus sweep light enough for -race on
// a small container while still covering every generator pattern.
func sweepConfig() corpus.Config {
	cfg := corpus.DefaultConfig()
	cfg.MaxPipelines = 2
	cfg.MaxStages = 2
	cfg.MaxOps = 2
	cfg.MaxWidth = 2
	return cfg
}

// TestCorpusSweepDist: a 50-app randomized corpus synthesizes to
// byte-identical code under serial and cross-process exploration (the
// acceptance sweep; the named-app matrix above covers the full config
// cross product).
func TestCorpusSweepDist(t *testing.T) {
	appsList := corpus.GenerateCorpus(1234, 50, sweepConfig())
	pool, err := dist.SpawnLocal(2)
	if err != nil {
		t.Fatalf("spawn workers: %v", err)
	}
	defer pool.Close()
	serialOpt := &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true}
	distOpt := &core.Options{Workers: 1, Dist: pool, DisableCache: true}
	for i, app := range appsList {
		want, serr := core.Synthesize(app.FlowC, app.Spec, serialOpt)
		got, derr := core.Synthesize(app.FlowC, app.Spec, distOpt)
		if (serr == nil) != (derr == nil) {
			t.Fatalf("app %d (%s): serial err %v, dist err %v", i, app.Name, serr, derr)
		}
		if serr != nil {
			// Both failed: the failure itself must be deterministic.
			if serr.Error() != derr.Error() {
				t.Fatalf("app %d (%s): divergent errors\n serial: %v\n dist:   %v", i, app.Name, serr, derr)
			}
			continue
		}
		if fw, fg := fingerprint(t, want), fingerprint(t, got); fw != fg {
			t.Errorf("app %d (%s): dist output differs from serial\n%s", i, app.Name, firstDiff(fw, fg))
		}
	}
}

// TestCorpusSweepFrozen: the freeze/thaw property sweep — the same
// 50-app corpus synthesizes to byte-identical code with the frozen
// store tier on, every level frozen to disk and thawed on demand,
// versus the all-hot serial baseline.
func TestCorpusSweepFrozen(t *testing.T) {
	appsList := corpus.GenerateCorpus(1234, 50, sweepConfig())
	serialOpt := &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true}
	frozenOpt := &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true, FreezeLevels: true}
	for i, app := range appsList {
		want, serr := core.Synthesize(app.FlowC, app.Spec, serialOpt)
		got, ferr := core.Synthesize(app.FlowC, app.Spec, frozenOpt)
		if (serr == nil) != (ferr == nil) {
			t.Fatalf("app %d (%s): all-hot err %v, frozen err %v", i, app.Name, serr, ferr)
		}
		if serr != nil {
			if serr.Error() != ferr.Error() {
				t.Fatalf("app %d (%s): divergent errors\n all-hot: %v\n frozen:  %v", i, app.Name, serr, ferr)
			}
			continue
		}
		if fw, fg := fingerprint(t, want), fingerprint(t, got); fw != fg {
			t.Errorf("app %d (%s): frozen output differs from all-hot\n%s", i, app.Name, firstDiff(fw, fg))
		}
	}
}
