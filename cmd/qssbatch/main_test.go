package main

import "testing"

// TestBatchFlagValidation: contradictory or out-of-range flag
// combinations are rejected with a descriptive error instead of being
// silently clamped.
func TestBatchFlagValidation(t *testing.T) {
	ok := func(f batchFlags) bool { return f.validate() == nil }
	valid := []batchFlags{
		{},
		{n: 50, workers: 4, exploreWorkers: 4},
		{n: 1, exploreWorkers: 0},
		{distWorkers: 2},
		{distWorkers: 2, exploreWorkers: 1},
		{distWorkers: 3, distEndpoint: "unix:/tmp/x.sock"},
		{distWorkers: 2, distFullReplicas: true},
	}
	for i, f := range valid {
		if !ok(f) {
			t.Errorf("valid combination %d rejected: %v", i, f.validate())
		}
	}
	invalid := []batchFlags{
		{n: -1},
		{workers: -2},
		{exploreWorkers: -1},
		{distWorkers: -1},
		{distEndpoint: "unix:/tmp/x.sock"},         // endpoint without workers
		{distWorkers: 2, exploreWorkers: 4},        // two exploration strategies
		{distWorkers: 1, exploreWorkers: 2, n: 10}, // ditto, with other flags set
		{n: -5, workers: 3, distWorkers: 2, exploreWorkers: 0}, // first failure still reported
		{distFullReplicas: true},                               // replica mode without a dist pool
	}
	for i, f := range invalid {
		if ok(f) {
			t.Errorf("invalid combination %d (%+v) accepted", i, f)
		}
	}
}
