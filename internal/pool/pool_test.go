package pool

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestRunAll(t *testing.T) {
	var hits [50]int32
	n := Run(context.Background(), len(hits), 8, func(i int, _ context.CancelFunc) {
		atomic.AddInt32(&hits[i], 1)
	})
	if n != len(hits) {
		t.Fatalf("dispatched = %d, want %d", n, len(hits))
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d ran %d times", i, h)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	n := Run(ctx, 10, 4, func(int, context.CancelFunc) { atomic.AddInt32(&ran, 1) })
	if n != 0 || ran != 0 {
		t.Fatalf("pre-cancelled context dispatched %d (ran %d), want 0", n, ran)
	}
}

func TestRunCancelStopsDispatch(t *testing.T) {
	var ran int32
	n := Run(context.Background(), 100, 1, func(i int, cancel context.CancelFunc) {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			cancel()
		}
	})
	// With one worker, dispatch is strictly sequential: the cancel at
	// index 3 must stop the feed shortly after.
	if n < 4 || n == 100 {
		t.Fatalf("dispatched = %d, want an early stop at >= 4", n)
	}
	if got := atomic.LoadInt32(&ran); int(got) != n {
		t.Fatalf("ran %d, dispatched %d — every dispatched index must run", got, n)
	}
}

func TestRunWorkerClamp(t *testing.T) {
	// workers > n and workers <= 0 must both behave.
	if n := Run(context.Background(), 3, 64, func(int, context.CancelFunc) {}); n != 3 {
		t.Fatalf("dispatched = %d, want 3", n)
	}
	if n := Run(context.Background(), 3, 0, func(int, context.CancelFunc) {}); n != 3 {
		t.Fatalf("dispatched = %d, want 3", n)
	}
}
