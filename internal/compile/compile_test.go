package compile

import (
	"strings"
	"testing"

	"repro/internal/flowc"
	"repro/internal/petri"
)

// divisorsSrc is the process of Figure 1 of the paper.
const divisorsSrc = `
PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
  int n, i;
  while (1) {
    READ_DATA(in, &n, 1);
    i = n / 2;
    while (n % i != 0)
      i--;
    WRITE_DATA(max, i, 1);
    WRITE_DATA(all, i, 1);
    while (i > 1) {
      i--;
      if (n % i == 0)
        WRITE_DATA(all, i, 1);
    }
  }
}
`

func parse(t *testing.T, src string) *flowc.Process {
	t.Helper()
	p, err := flowc.ParseProcess(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestLeadersFigure1(t *testing.T) {
	// The paper (Section 3.1): "The leaders are the statements at lines
	// 4 (by rules 2 and 4), 9 (by rule 3), 11 and 13 (by rule 4)" —
	// i.e. READ_DATA(in), WRITE_DATA(all) after the max write, i--, and
	// WRITE_DATA(all) inside the if.
	p := parse(t, divisorsSrc)
	leaders := Leaders(p)
	var reprs []string
	for _, s := range leaders {
		reprs = append(reprs, strings.TrimSpace(flowc.FormatStmt(s, 0)))
	}
	want := []string{
		"READ_DATA(in, n, 1);",
		"WRITE_DATA(all, i, 1);",
		"i--;",
		"WRITE_DATA(all, i, 1);",
	}
	if len(reprs) != len(want) {
		t.Fatalf("leaders = %v, want %v", reprs, want)
	}
	for i := range want {
		if reprs[i] != want[i] {
			t.Errorf("leader %d = %q, want %q", i, reprs[i], want[i])
		}
	}
}

func TestContainsPortOp(t *testing.T) {
	p := parse(t, divisorsSrc)
	outer := p.Body.Stmts[1] // while(1)
	if !ContainsPortOp(outer) {
		t.Error("while(1) contains port ops")
	}
	if ContainsPortOp(p.Body.Stmts[0]) {
		t.Error("declaration contains no port ops")
	}
}

func TestDivisorsNetStructure(t *testing.T) {
	cp, err := CompileProcess(parse(t, divisorsSrc))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	n := cp.Net
	// Port places exist.
	for _, port := range []string{"in", "max", "all"} {
		if cp.PortPlace[port] == nil {
			t.Errorf("missing port place %s", port)
		}
	}
	// Ignoring port places, exactly one internal place is marked.
	marked := 0
	for _, pl := range n.Places {
		if pl.Kind == petri.PlaceInternal && pl.Initial > 0 {
			marked++
		}
	}
	if marked != 1 {
		t.Errorf("marked internal places = %d, want 1", marked)
	}
	// The net is unique choice (Section 3.1).
	if !n.IsUniqueChoice() {
		t.Error("compiled process should be a UCPN")
	}
	// Two data choices: while(i>1) and if(n%i==0).
	dataChoices := 0
	for _, pl := range n.Places {
		if ci, ok := pl.Cond.(*ChoiceInfo); ok && ci.Kind == ChoiceData {
			dataChoices++
		}
	}
	if dataChoices != 2 {
		t.Errorf("data choice places = %d, want 2 (while i>1 and if n%%i==0)", dataChoices)
	}
	// Every internal run stays deterministic: one marked place travels.
	r := n.Explore(petri.ExploreOptions{FireSources: false, MaxTokensPerPlace: 8})
	for _, m := range r.Store.All() {
		count := 0
		for i, pl := range n.Places {
			if pl.Kind == petri.PlaceInternal && m[i] > 0 {
				count += m[i]
			}
		}
		if count != 1 {
			t.Errorf("marking %s has %d internal tokens, want 1", m.Key(), count)
		}
	}
}

func TestReadHeadsPortion(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT i, Out DPORT o) {
  int v;
  while (1) {
    READ_DATA(i, &v, 1);
    v = v + 1;
    WRITE_DATA(o, v, 1);
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	// One portion [READ, v=v+1, WRITE] plus the silent wrap back to the
	// loop head (the ε of Figure 3).
	if got := len(cp.Net.Transitions); got != 2 {
		var sb strings.Builder
		cp.Net.Format(&sb)
		t.Fatalf("transitions = %d, want 2\n%s", got, sb.String())
	}
	tr := cp.Net.Transitions[0]
	frag := tr.Code.(*Fragment)
	if len(frag.Stmts) != 3 {
		t.Errorf("fragment statements = %d, want 3", len(frag.Stmts))
	}
	if tr.Weight(cp.PortPlace["i"].ID) != 1 || tr.OutWeight(cp.PortPlace["o"].ID) != 1 {
		t.Error("port arcs missing on the portion transition")
	}
}

func TestMultiRateArcs(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT i, Out DPORT o) {
  int line[10];
  while (1) {
    READ_DATA(i, line, 10);
    WRITE_DATA(o, line, 5);
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	tr := cp.Net.Transitions[0]
	if tr.Weight(cp.PortPlace["i"].ID) != 10 {
		t.Errorf("read arc weight = %d, want 10", tr.Weight(cp.PortPlace["i"].ID))
	}
	if tr.OutWeight(cp.PortPlace["o"].ID) != 5 {
		t.Errorf("write arc weight = %d, want 5", tr.OutWeight(cp.PortPlace["o"].ID))
	}
}

func TestChoiceSuccessorsShareECS(t *testing.T) {
	// Data-choice successor transitions must form one ECS even when a
	// branch starts with a port operation (the compiler inserts ε).
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT i, Out DPORT o) {
  int v;
  while (1) {
    READ_DATA(i, &v, 1);
    if (v > 0) {
      WRITE_DATA(o, v, 1);
    } else {
      v = 0;
    }
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	n := cp.Net
	part := n.ECSPartition()
	idx := petri.ECSIndex(part, len(n.Transitions))
	var tT, fT *petri.Transition
	for _, tr := range n.Transitions {
		switch tr.Label {
		case "T":
			tT = tr
		case "F":
			fT = tr
		}
	}
	if tT == nil || fT == nil {
		t.Fatal("missing T/F transitions")
	}
	if idx[tT.ID] != idx[fT.ID] {
		t.Error("T and F branches must share an equal conflict set")
	}
	// The labeled transitions carry no port arcs.
	for _, tr := range []*petri.Transition{tT, fT} {
		for _, a := range tr.In {
			if n.Places[a.Place].Kind != petri.PlaceInternal {
				t.Errorf("%s consumes non-internal place", tr.Name)
			}
		}
	}
}

func TestSelectCompilation(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT a, In DPORT b, Out DPORT o) {
  int v, buf[2];
  while (1) {
    switch (SELECT(a, 2, b, 1)) {
    case 0:
      READ_DATA(a, buf, 2);
      v = buf[0];
      break;
    case 1:
      READ_DATA(b, &v, 1);
      break;
    }
    WRITE_DATA(o, v, 1);
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	n := cp.Net
	// SELECT arms are recorded for link fixup.
	if len(cp.SelectArms) != 2 {
		t.Fatalf("select arms = %d, want 2", len(cp.SelectArms))
	}
	// Arm entries carry availability self-loops: weight 2 on a, 1 on b.
	arm0 := n.Transitions[cp.SelectArms[0].Trans]
	if arm0.Weight(cp.PortPlace["a"].ID) != 2 || arm0.OutWeight(cp.PortPlace["a"].ID) != 2 {
		t.Errorf("arm 0 self-loop wrong: in=%d out=%d",
			arm0.Weight(cp.PortPlace["a"].ID), arm0.OutWeight(cp.PortPlace["a"].ID))
	}
	// The arms are in different ECSs (synchronization choice).
	part := n.ECSPartition()
	idx := petri.ECSIndex(part, len(n.Transitions))
	arm1 := n.Transitions[cp.SelectArms[1].Trans]
	if idx[arm0.ID] == idx[arm1.ID] {
		t.Error("select arms must be in distinct ECSs")
	}
	// The select place is marked as a select choice.
	found := false
	for _, pl := range n.Places {
		if ci, ok := pl.Cond.(*ChoiceInfo); ok && ci.Kind == ChoiceSelect {
			found = true
		}
	}
	if !found {
		t.Error("missing select choice info")
	}
}

func TestInitPrefixExtraction(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT i) {
  int c, v;
  c = 7;
  v = c * 2;
  while (1) {
    READ_DATA(i, &v, 1);
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.InitStmts) != 2 {
		t.Fatalf("init statements = %d, want 2", len(cp.InitStmts))
	}
	// The cyclic net is a single read transition looping on p0.
	if got := len(cp.Net.Transitions); got != 1 {
		t.Errorf("transitions = %d, want 1 (init code must not enter the net)", got)
	}
}

func TestConstantFolding(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (Out DPORT o) {
  int v;
  while (1) {
    if (0) {
      WRITE_DATA(o, 1, 1);
    }
    if (1) {
      WRITE_DATA(o, 2, 1);
    }
    WRITE_DATA(o, v, 1);
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	// No choice places: both ifs are constant-folded.
	for _, pl := range cp.Net.Places {
		if pl.Cond != nil {
			t.Errorf("constant condition produced a choice place %s", pl.Name)
		}
	}
}

func TestDeadCodeAfterInfiniteLoop(t *testing.T) {
	_, err := CompileProcess(parse(t, `
PROCESS p (Out DPORT o) {
  int v;
  while (1) {
    WRITE_DATA(o, v, 1);
  }
  v = 3;
}`))
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("dead code after while(1) should be rejected, got %v", err)
	}
}

func TestFragmentSource(t *testing.T) {
	cp, err := CompileProcess(parse(t, `
PROCESS p (In DPORT i) {
  int v;
  while (1) {
    READ_DATA(i, &v, 1);
    v = v + 1;
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	frag := cp.Net.Transitions[0].Code.(*Fragment)
	src := frag.Source()
	if !strings.Contains(src, "READ_DATA(i, v, 1);") || !strings.Contains(src, "v = (v + 1);") {
		t.Errorf("fragment source:\n%s", src)
	}
	if frag.IsSilent() {
		t.Error("non-empty fragment reported silent")
	}
	var nilFrag *Fragment
	if !nilFrag.IsSilent() {
		t.Error("nil fragment should be silent")
	}
}
