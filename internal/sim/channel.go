package sim

import "fmt"

// Channel is a FIFO of integers with an optional capacity, shared by the
// two executors. Capacity 0 means unbounded.
type Channel struct {
	Name     string
	Capacity int
	buf      []int64

	// Stats.
	Reads, Writes int64 // completed operations
	ItemsMoved    int64
	MaxOccupancy  int
	BlockedReads  int64 // operations that had to wait at least once
	BlockedWrites int64
}

// NewChannel creates a channel. capacity 0 = unbounded.
func NewChannel(name string, capacity int) *Channel {
	return &Channel{Name: name, Capacity: capacity}
}

// Len returns the current occupancy.
func (c *Channel) Len() int { return len(c.buf) }

// Space returns the free space, or a large number for unbounded
// channels.
func (c *Channel) Space() int {
	if c.Capacity <= 0 {
		return 1 << 30
	}
	return c.Capacity - len(c.buf)
}

// CanRead reports whether n items are available.
func (c *Channel) CanRead(n int) bool { return len(c.buf) >= n }

// CanWrite reports whether n items fit.
func (c *Channel) CanWrite(n int) bool { return c.Space() >= n }

// Read removes n items; the caller must have checked CanRead.
func (c *Channel) Read(n int) ([]int64, error) {
	if !c.CanRead(n) {
		return nil, fmt.Errorf("sim: channel %s: read %d with %d available", c.Name, n, len(c.buf))
	}
	out := make([]int64, n)
	copy(out, c.buf[:n])
	c.buf = c.buf[n:]
	c.Reads++
	c.ItemsMoved += int64(n)
	return out, nil
}

// Write appends n items; the caller must have checked CanWrite.
func (c *Channel) Write(vals []int64) error {
	if !c.CanWrite(len(vals)) {
		return fmt.Errorf("sim: channel %s: write %d with %d free", c.Name, len(vals), c.Space())
	}
	c.buf = append(c.buf, vals...)
	if len(c.buf) > c.MaxOccupancy {
		c.MaxOccupancy = len(c.buf)
	}
	c.Writes++
	c.ItemsMoved += int64(len(vals))
	return nil
}

// InputStream models an environment input port: a queue of values
// provided by the test harness or workload generator.
type InputStream struct {
	Name string
	vals []int64
	// Consumed counts values delivered to the system.
	Consumed int64
}

// NewInputStream creates a stream with the given initial values.
func NewInputStream(name string, vals ...int64) *InputStream {
	return &InputStream{Name: name, vals: append([]int64(nil), vals...)}
}

// Push appends values (the environment producing more input).
func (s *InputStream) Push(vals ...int64) { s.vals = append(s.vals, vals...) }

// Len returns the number of queued values.
func (s *InputStream) Len() int { return len(s.vals) }

// Pop removes and returns the next n values.
func (s *InputStream) Pop(n int) ([]int64, error) {
	if len(s.vals) < n {
		return nil, fmt.Errorf("sim: input %s exhausted (want %d, have %d)", s.Name, n, len(s.vals))
	}
	out := make([]int64, n)
	copy(out, s.vals[:n])
	s.vals = s.vals[n:]
	s.Consumed += int64(n)
	return out, nil
}

// OutputStream collects values delivered to an environment output port.
type OutputStream struct {
	Name string
	Vals []int64
}

// Append records delivered values.
func (s *OutputStream) Append(vals ...int64) { s.Vals = append(s.Vals, vals...) }
