package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// maxEdgeTokens caps ops*width on one tree channel: the quasi-static
// search explores the product of channel fills and stage positions, so
// unbounded per-edge bursts would make deep trees intractable whatever
// the other knobs say. The cap sat at 4 while marking identity was
// string-keyed; the hash-consed store visits states roughly 5x faster
// and ~250x leaner, which is what pays for bursts of 8 within the same
// search budget.
const maxEdgeTokens = 8

// Config bounds the random shape of generated apps; see the package
// documentation for the role of each knob. The zero value is not
// usable — start from DefaultConfig.
type Config struct {
	MinPipelines, MaxPipelines int
	MinStages, MaxStages       int
	MaxFanOut                  int
	MaxOps                     int
	MaxWidth                   int
	ChoiceDensity              float64
	SelectDensity              float64
	BoundDensity               float64
}

// DefaultConfig returns the shape distribution used by the batch driver
// and the benchmarks: multi-task apps with every pattern enabled. The
// burst ranges assume the hash-consed schedule search: 8 tokens per
// edge (MaxOps/MaxWidth up to 4) was beyond the PR-1 string-keyed
// engine's budget. Tree depth stays at 3 — the marking graph is the
// product of channel fills, and a fourth stage of 8-token edges blows
// past any practical node budget no matter how cheap a state is.
func DefaultConfig() Config {
	return Config{
		MinPipelines:  1,
		MaxPipelines:  3,
		MinStages:     1,
		MaxStages:     3,
		MaxFanOut:     2,
		MaxOps:        4,
		MaxWidth:      4,
		ChoiceDensity: 0.4,
		SelectDensity: 0.25,
		BoundDensity:  0.3,
	}
}

// App is one generated FlowC application plus its netlist and the
// oracle data the property tests check against.
type App struct {
	Name  string
	Seed  int64 // per-app seed when produced by GenerateCorpus, else 0
	FlowC string
	Spec  string
	// Triggers are the uncontrollable environment inputs, one per
	// pipeline.
	Triggers []string
	// DetOutputs maps each deterministic environment output to the
	// number of items it must deliver per trigger of its pipeline.
	// Data-dependent tap outputs are not listed.
	DetOutputs map[string]int
	// Procs counts the generated processes.
	Procs int
}

// GenerateCorpus derives n apps from one master seed. Same seed, n and
// config produce byte-identical apps. Non-positive n yields an empty
// corpus.
func GenerateCorpus(seed int64, n int, cfg Config) []*App {
	if n < 0 {
		n = 0
	}
	master := rand.New(rand.NewSource(seed))
	apps := make([]*App, n)
	for i := range apps {
		appSeed := master.Int63()
		app := Generate(rand.New(rand.NewSource(appSeed)), fmt.Sprintf("app%03d", i), cfg)
		app.Seed = appSeed
		apps[i] = app
	}
	return apps
}

// Generate produces one app, drawing all randomness from rng.
func Generate(rng *rand.Rand, name string, cfg Config) *App {
	g := &gen{rng: rng, cfg: cfg, app: &App{Name: name, DetOutputs: map[string]int{}}}
	fmt.Fprintf(&g.spec, "system %s\n", name)
	pipes := g.between(cfg.MinPipelines, cfg.MaxPipelines)
	for p := 0; p < pipes; p++ {
		if rng.Float64() < cfg.SelectDensity {
			g.selectPipeline(p)
		} else {
			g.treePipeline(p)
		}
	}
	g.app.FlowC = g.src.String()
	g.app.Spec = g.spec.String()
	return g.app
}

type gen struct {
	rng  *rand.Rand
	cfg  Config
	app  *App
	src  strings.Builder
	spec strings.Builder
}

func (g *gen) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// edge is one tree channel: ops unrolled operations of width items each
// per activation, so ops*width tokens cross per trigger.
type edge struct {
	ops, width int
	child      int
}

// stage is one process of a tree pipeline.
type stage struct {
	idx      int
	inOps    int // unrolled reads from the parent (0 for the root)
	inWidth  int
	children []edge
	choice   int // 0 none, 1 if-tap, 2 while-tap
	outOps   int // unrolled writes to the environment (leaves only)
	acks     int // ack channels collected by the root, one per leaf
}

// treePipeline emits a fan-out tree of fixed-rate stages rooted at an
// uncontrollable trigger. Every leaf acknowledges its burst back to the
// root, which collects all acknowledgements before awaiting the next
// trigger: like the paper's pixel-pipe ack, this keeps exactly one
// burst in flight, so the schedule search explores interleavings within
// a single burst instead of the product over unboundedly many.
func (g *gen) treePipeline(p int) {
	total := g.between(g.cfg.MinStages, g.cfg.MaxStages)
	stages := make([]*stage, 1, total)
	stages[0] = &stage{idx: 0}
	queue := []int{0}
	remaining := total - 1
	for remaining > 0 && len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fan := g.between(1, min(g.cfg.MaxFanOut, remaining))
		for c := 0; c < fan; c++ {
			// Cap the tokens crossing one edge per activation at
			// maxEdgeTokens: schedule-search cost grows with the product
			// of channel fills across the tree, and unbounded products
			// push realistic shapes past the search budget. Both draws
			// respect the cap, whatever MaxWidth/MaxOps are set to.
			width := g.between(1, min(g.cfg.MaxWidth, maxEdgeTokens))
			ops := g.between(1, min(g.cfg.MaxOps, max(1, maxEdgeTokens/width)))
			child := &stage{idx: len(stages), inOps: ops, inWidth: width}
			stages = append(stages, child)
			stages[cur].children = append(stages[cur].children, edge{ops: ops, width: width, child: child.idx})
			queue = append(queue, child.idx)
			remaining--
		}
	}
	var leaves []int
	for _, s := range stages {
		if g.rng.Float64() < g.cfg.ChoiceDensity {
			s.choice = g.between(1, 2)
		}
		if len(s.children) == 0 {
			s.outOps = g.between(1, g.cfg.MaxOps)
			if s.idx != 0 {
				leaves = append(leaves, s.idx)
			}
		}
	}
	stages[0].acks = len(leaves)

	proc := func(s *stage) string { return fmt.Sprintf("p%ds%d", p, s.idx) }
	trigger := fmt.Sprintf("go%d", p)
	g.app.Triggers = append(g.app.Triggers, trigger)
	fmt.Fprintf(&g.spec, "input %s -> %s.go uncontrollable\n", trigger, proc(stages[0]))

	for _, s := range stages {
		g.emitTreeStage(p, s, proc(s), s.idx != 0 && s.outOps > 0)
		for e, ch := range s.children {
			line := fmt.Sprintf("channel C%d_%de%d %s.o%d -> %s.in", p, s.idx, e, proc(s), e, proc(stages[ch.child]))
			if g.rng.Float64() < g.cfg.BoundDensity {
				line += fmt.Sprintf(" bound=%d", ch.ops*ch.width)
			}
			g.spec.WriteString(line + "\n")
		}
		if s.outOps > 0 {
			out := "res_" + proc(s)
			fmt.Fprintf(&g.spec, "output %s.out -> %s\n", proc(s), out)
			g.app.DetOutputs[out] = s.outOps
		}
		if s.choice != 0 {
			fmt.Fprintf(&g.spec, "output %s.tap -> tap_%s\n", proc(s), proc(s))
		}
	}
	for j, leaf := range leaves {
		fmt.Fprintf(&g.spec, "channel A%d_%d %s.ack -> %s.ack%d\n", p, leaf, proc(stages[leaf]), proc(stages[0]), j)
	}
	g.app.Procs += len(stages)
}

// emitTreeStage writes the FlowC text of one fixed-rate stage. Channel
// operations are unrolled straight-line code so their token counts stay
// structurally fixed; only pure compute and environment-tap writes sit
// behind data-dependent control. isLeaf stages acknowledge their burst
// back to the root.
func (g *gen) emitTreeStage(p int, s *stage, name string, isLeaf bool) {
	w := &g.src
	fmt.Fprintf(w, "\nPROCESS %s (", name)
	if s.inOps == 0 {
		fmt.Fprint(w, "In DPORT go")
	} else {
		fmt.Fprint(w, "In DPORT in")
	}
	for j := 0; j < s.acks; j++ {
		fmt.Fprintf(w, ", In DPORT ack%d", j)
	}
	for e := range s.children {
		fmt.Fprintf(w, ", Out DPORT o%d", e)
	}
	if s.choice != 0 {
		fmt.Fprint(w, ", Out DPORT tap")
	}
	if s.outOps > 0 {
		fmt.Fprint(w, ", Out DPORT out")
	}
	if isLeaf {
		fmt.Fprint(w, ", Out DPORT ack")
	}
	fmt.Fprint(w, ") {\n")

	fmt.Fprint(w, "  int v, acc, i;\n")
	if s.choice == 2 {
		fmt.Fprint(w, "  int t0;\n")
	}
	if s.inWidth > 1 {
		fmt.Fprintf(w, "  int rbuf[%d];\n", s.inWidth)
	}
	maxW := 0
	for _, ch := range s.children {
		if ch.width > maxW {
			maxW = ch.width
		}
	}
	if maxW > 1 {
		fmt.Fprintf(w, "  int wbuf[%d];\n", maxW)
	}
	fmt.Fprint(w, "  while (1) {\n")

	bias := g.between(0, 9)
	if s.inOps == 0 {
		fmt.Fprint(w, "    READ_DATA(go, &v, 1);\n")
		fmt.Fprintf(w, "    acc = v + %d;\n", bias)
	} else {
		fmt.Fprintf(w, "    acc = %d;\n", bias)
		for k := 0; k < s.inOps; k++ {
			if s.inWidth == 1 {
				fmt.Fprint(w, "    READ_DATA(in, &v, 1);\n")
				fmt.Fprint(w, "    acc = acc + v;\n")
			} else {
				fmt.Fprintf(w, "    READ_DATA(in, rbuf, %d);\n", s.inWidth)
				fmt.Fprintf(w, "    for (i = 0; i < %d; i++) {\n      acc = acc + rbuf[i];\n    }\n", s.inWidth)
			}
		}
	}

	switch s.choice {
	case 1:
		fmt.Fprint(w, "    if (acc % 2 == 0) {\n      WRITE_DATA(tap, acc, 1);\n    }\n")
	case 2:
		fmt.Fprintf(w, "    t0 = acc %% %d;\n", g.between(2, 4))
		fmt.Fprint(w, "    while (t0 > 0) {\n      WRITE_DATA(tap, t0, 1);\n      t0 = t0 - 1;\n    }\n")
	}

	for e, ch := range s.children {
		for k := 0; k < ch.ops; k++ {
			if ch.width == 1 {
				fmt.Fprintf(w, "    WRITE_DATA(o%d, acc + %d, 1);\n", e, k)
			} else {
				fmt.Fprintf(w, "    for (i = 0; i < %d; i++) {\n      wbuf[i] = acc + i + %d;\n    }\n", ch.width, k)
				fmt.Fprintf(w, "    WRITE_DATA(o%d, wbuf, %d);\n", e, ch.width)
			}
		}
	}
	for k := 0; k < s.outOps; k++ {
		fmt.Fprintf(w, "    WRITE_DATA(out, acc + %d, 1);\n", k)
	}
	if isLeaf {
		fmt.Fprint(w, "    WRITE_DATA(ack, 0, 1);\n")
	}
	for j := 0; j < s.acks; j++ {
		fmt.Fprintf(w, "    READ_DATA(ack%d, &v, 1);\n", j)
	}
	fmt.Fprint(w, "  }\n}\n")
}

// selectPipeline emits the Section 7.2 SELECT-drain pair: a producer
// with a data-dependent pixel burst, an end-of-line marker and a
// one-in-flight acknowledgement, and a consumer draining via SELECT.
func (g *gen) selectPipeline(p int) {
	prod := fmt.Sprintf("p%ds0", p)
	cons := fmt.Sprintf("p%ds1", p)
	mul := g.between(1, 5)
	add := g.between(0, 9)
	fmt.Fprintf(&g.src, `
PROCESS %s (In DPORT go, In DPORT ack, Out DPORT pix, Out DPORT eol) {
  int n, i, a;
  while (1) {
    READ_DATA(go, &n, 1);
    for (i = 0; i < n; i++) {
      WRITE_DATA(pix, i * %d + %d, 1);
    }
    WRITE_DATA(eol, n, 1);
    READ_DATA(ack, &a, 1);
  }
}

PROCESS %s (In DPORT pix, In DPORT eol, Out DPORT out, Out DPORT ack) {
  int v, e, done, sum;
  while (1) {
    done = 0;
    sum = 0;
    while (!done) {
      switch (SELECT(pix, 1, eol, 1)) {
      case 0:
        READ_DATA(pix, &v, 1);
        sum = sum + v;
        break;
      case 1:
        READ_DATA(eol, &e, 1);
        WRITE_DATA(ack, 0, 1);
        done = 1;
        break;
      }
    }
    WRITE_DATA(out, sum, 1);
  }
}
`, prod, mul, add, cons)

	trigger := fmt.Sprintf("go%d", p)
	g.app.Triggers = append(g.app.Triggers, trigger)
	fmt.Fprintf(&g.spec, "channel P%dpix %s.pix -> %s.pix\n", p, prod, cons)
	fmt.Fprintf(&g.spec, "channel P%deol %s.eol -> %s.eol\n", p, prod, cons)
	fmt.Fprintf(&g.spec, "channel P%dack %s.ack -> %s.ack\n", p, cons, prod)
	fmt.Fprintf(&g.spec, "input %s -> %s.go uncontrollable\n", trigger, prod)
	out := "res_" + cons
	fmt.Fprintf(&g.spec, "output %s.out -> %s\n", cons, out)
	g.app.DetOutputs[out] = 1
	g.app.Procs += 2
}
