package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
)

// synthesizeRequest is the POST /v1/synthesize body. FlowC and Net are
// the same two texts the CLI takes from -flowc and -net files; the
// budgets are optional and clamped by server configuration.
type synthesizeRequest struct {
	// FlowC is the FlowC source (one or more PROCESS definitions).
	FlowC string `json:"flowc"`
	// Net is the netlist in the textual system format.
	Net string `json:"net"`
	// MaxNodes bounds the states each schedule search may create;
	// 0 uses the server cap, larger values are clamped to it.
	MaxNodes int `json:"max_nodes,omitempty"`
	// TimeoutMS bounds server-side synthesis time; 0 uses the server
	// default, larger values are clamped to the server max.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// DisableCache bypasses the shared result cache for this request
	// (forces a cold run; the result is not stored either).
	DisableCache bool `json:"disable_cache,omitempty"`
}

// synthesizeResponse is the success body of POST /v1/synthesize.
type synthesizeResponse struct {
	System string `json:"system"`
	// Tasks is the manifest: one entry per generated task, in schedule
	// order, mirroring the golden-file MANIFEST contract.
	Tasks []taskInfo `json:"tasks"`
	// Code maps task name to generated C source.
	Code map[string]string `json:"code"`
	// Bounds maps channel name to its statically guaranteed buffer
	// size.
	Bounds map[string]int `json:"bounds"`
	// CacheHit reports whether this response came from the shared
	// content-addressed cache; Cache is the process-wide counter
	// snapshot after the request (core.Stats).
	CacheHit bool          `json:"cache_hit"`
	Cache    cacheSnapshot `json:"cache"`
	// MaxNodes is the state budget the request effectively ran under
	// (after server-side clamping); SynthesisUS the server-side
	// synthesis time in microseconds.
	MaxNodes    int   `json:"max_nodes"`
	SynthesisUS int64 `json:"synthesis_us"`
}

type taskInfo struct {
	Name             string `json:"name"`
	Segments         int    `json:"segments"`
	ScheduleNodes    int    `json:"schedule_nodes"`
	StatesExplored   int    `json:"states_explored"`
	DistinctMarkings int    `json:"distinct_markings"`
}

type cacheSnapshot struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBody bounds the request body (FlowC + netlist text); 8MiB
// is orders of magnitude above any real system description.
const maxRequestBody = 8 << 20

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	release, status, outcome := s.admit(r.Context())
	if release == nil {
		s.metrics.incOutcome(outcome)
		writeError(w, status, fmt.Sprintf("request not admitted (%s)", outcome))
		return
	}
	defer release()

	var req synthesizeRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err == nil && len(body) > maxRequestBody {
		err = fmt.Errorf("body exceeds %d bytes", maxRequestBody)
	}
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err == nil && (strings.TrimSpace(req.FlowC) == "" || strings.TrimSpace(req.Net) == "") {
		err = fmt.Errorf("both \"flowc\" and \"net\" must be non-empty")
	}
	if err != nil {
		s.metrics.incOutcome(outcomeBadRequest)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	opt, timeout := s.requestOptions(&req)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, hit, err := s.synthesize(ctx, &req, opt)
	elapsed := time.Since(start)
	s.metrics.observe(s.metrics.latency, elapsed.Seconds())
	s.checkPool(opt.Dist)
	s.recordCacheState()
	if err != nil {
		status, outcome := classifyError(ctx, err)
		s.metrics.incOutcome(outcome)
		writeError(w, status, err.Error())
		return
	}
	if !req.DisableCache {
		if hit {
			s.metrics.addCounter(&s.metrics.cacheHits, 1)
		} else {
			s.metrics.addCounter(&s.metrics.cacheMisses, 1)
		}
	}
	s.recordWork(res, opt)
	s.metrics.incOutcome(outcomeOK)
	writeJSON(w, http.StatusOK, buildResponse(res, opt, hit, elapsed))
}

// buildResponse renders a Result into the wire shape. The generated C
// is passed through byte-for-byte: the service contract is that a
// /v1/synthesize response is indistinguishable from the CLI's output
// files (golden-checked by the server smoke test).
func buildResponse(res *core.Result, opt *core.Options, hit bool, elapsed time.Duration) *synthesizeResponse {
	out := &synthesizeResponse{
		System:      res.Sys.Name,
		Code:        res.Code,
		Bounds:      map[string]int{},
		CacheHit:    hit,
		MaxNodes:    opt.MaxNodes,
		SynthesisUS: elapsed.Microseconds(),
	}
	for i, t := range res.Tasks {
		st := res.Schedules[i].Stats
		out.Tasks = append(out.Tasks, taskInfo{
			Name:             t.Name,
			Segments:         len(t.Segments),
			ScheduleNodes:    len(res.Schedules[i].Nodes),
			StatesExplored:   st.NodesCreated,
			DistinctMarkings: st.DistinctMarkings,
		})
	}
	for _, ch := range res.Sys.Channels {
		out.Bounds[ch.Spec.Name] = res.Bounds[ch.Place.ID]
	}
	cs := core.Stats()
	out.Cache = cacheSnapshot{Hits: cs.Hits, Misses: cs.Misses, Entries: cs.Entries}
	return out
}

// recordWork folds a successful synthesis into the work metrics:
// distinct markings explored, the hot/frozen store residency of the
// request's searches, and — when the request ran on the dist pool —
// the per-worker replica bytes of the session.
func (s *Server) recordWork(res *core.Result, opt *core.Options) {
	states := 0
	var hot, frozen int64
	for _, sc := range res.Schedules {
		states += sc.Stats.DistinctMarkings
		hot += sc.Stats.StoreHotBytes
		frozen += sc.Stats.StoreFrozenBytes
	}
	s.metrics.addCounter(&s.metrics.statesExplored, float64(states))
	s.metrics.setGauge(&s.metrics.storeHotBytes, float64(hot))
	s.metrics.setGauge(&s.metrics.storeFrozenBytes, float64(frozen))
	if opt.Dist != nil {
		for i, wm := range opt.Dist.LastSessionStats().Workers {
			s.metrics.setLabeledGauge(s.metrics.distWorkerMem, fmt.Sprintf("%d", i),
				float64(wm.StoreBytes+wm.BitsBytes+wm.CacheBytes))
		}
		restarts, _ := opt.Dist.RecoveryStats()
		s.metrics.setCounter(&s.metrics.distRestarts, float64(restarts))
	}
}

// recordCacheState refreshes the cache-entries gauge from the process
// counters.
func (s *Server) recordCacheState() {
	s.metrics.setGauge(&s.metrics.cacheEntries, float64(core.Stats().Entries))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness only: a draining server is still alive.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.recordCacheState()
	var sb strings.Builder
	s.metrics.render(&sb)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, sb.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
