package dist

import (
	"errors"
	"net"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/petri"
)

// Tests for the pool/worker lifecycle: locked NumWorkers, bounded
// concurrent teardown, and a worker that survives session-scoped
// failures.

// TestNumWorkersRace: NumWorkers must be safe against a concurrent
// Close (run under -race; the unlocked read was a data race).
func TestNumWorkersRace(t *testing.T) {
	p := pipePool(t, 2, WorkerOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.NumWorkers()
			}
		}()
	}
	p.Close()
	wg.Wait()
}

// TestPoolCloseBounded: a pool of hung workers tears down within one
// shared deadline, not one deadline per worker.
func TestPoolCloseBounded(t *testing.T) {
	old := closeTimeout
	closeTimeout = 200 * time.Millisecond
	defer func() { closeTimeout = old }()
	p := &Pool{logw: newLogWriter("coord")}
	const hung = 3
	for i := 0; i < hung; i++ {
		cmd := exec.Command("sleep", "30")
		if err := cmd.Start(); err != nil {
			t.Fatalf("start sleeper %d: %v", i, err)
		}
		p.cmds = append(p.cmds, cmd)
	}
	begin := time.Now()
	err := p.Close()
	elapsed := time.Since(begin)
	if err == nil || !strings.Contains(err.Error(), "hung at close") {
		t.Fatalf("Close() = %v, want a hung-workers report", err)
	}
	// The old sequential teardown took closeTimeout per worker; the
	// shared deadline must finish well under twice the single timeout.
	if elapsed >= 2*closeTimeout {
		t.Fatalf("Close of %d hung workers took %v, deadline is %v shared", hung, elapsed, closeTimeout)
	}
}

// TestWorkerSurvivesBadSession: a session-scoped failure (malformed
// init) reports one msgError and the worker keeps serving — the next
// session on the same connection runs to completion. A transport
// failure mid-session still hard-exits the serve loop.
func TestWorkerSurvivesBadSession(t *testing.T) {
	cs, ws := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- ServeConn(ws, newLogWriter("worker"), WorkerOptions{}) }()
	c := newConn(cs)
	payload, err := c.expect(msgHello)
	if err == nil {
		_, _, _, err = checkHello(payload)
	}
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}

	// A malformed init must fail the session, not the worker.
	if err := c.send(msgInit, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.expect(msgStats); err == nil || !strings.Contains(err.Error(), "peer error") {
		t.Fatalf("want the worker's error report, got %v", err)
	}

	// The same connection serves a full exploration afterwards.
	p := &Pool{logw: newLogWriter("coord")}
	p.workers = append(p.workers, c)
	p.wantFull = append(p.wantFull, false)
	p.vers = append(p.vers, protoVersion)
	n := ringNet(2, 4)
	opt := petri.ExploreOptions{MaxMarkings: 1000}
	want := n.Explore(opt)
	got, err := n.ExploreDist(p, opt)
	if err != nil {
		t.Fatalf("session after failure: %v", err)
	}
	requireSameReach(t, "session after failure", want, got)

	// Stray non-init frames between sessions fail-and-drain the same
	// way: exactly one error report, then the worker waits for an init.
	if err := c.send(msgAck, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.expect(msgStats); err == nil || !strings.Contains(err.Error(), "peer error") {
		t.Fatalf("want the worker's error report, got %v", err)
	}
	// A second stray frame is drained quietly — were it answered with
	// another msgError, the next session's reader would choke on it.
	if err := c.send(msgAck, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, err = n.ExploreDist(p, opt)
	if err != nil {
		t.Fatalf("session after drain: %v", err)
	}
	requireSameReach(t, "session after drain", want, got)

	// Severing the link mid-session is a transport error: the serve
	// loop must exit non-nil (the process has nothing left to serve).
	init := &initMsg{proto: 3, index: 0, workers: 1, shards: petri.NumFrontierShards(1), trim: true, net: n, spec: fullSpec(n), roots: []petri.Marking{n.InitialMarking()}}
	if err := c.send(msgInit, appendInit(nil, init, protoVersion)); err != nil {
		t.Fatal(err)
	}
	cs.Close()
	werr := <-errc
	var te *transportError
	if werr == nil || !errors.As(werr, &te) {
		t.Fatalf("worker exited %v, want a transport error", werr)
	}
}
