package sim

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// Experiment drivers regenerating the paper's evaluation (Section 8):
// Figure 20 (execution time vs. channel buffer size), Table 1 (cycles vs.
// frame count) and Table 2 (code size). Each returns structured rows and
// can print them in the paper's layout.

// Workload describes the synthetic video workload: Frames triggers, each
// carrying a frame id; the controllable coefficient input receives
// frame%8+1.
type Workload struct {
	Frames int
}

// feed pushes the workload into a baseline run.
func (w Workload) feed(b *Baseline) {
	for f := 0; f < w.Frames; f++ {
		b.Input("init").Push(int64(f))
		b.Input("cin").Push(int64(f%8 + 1))
	}
}

// RunBaselinePFC executes the 4-process implementation of the PFC system
// and returns total cycles.
func RunBaselinePFC(r *core.Result, w Workload, capacity int, cost *CostModel, inline bool) (int64, error) {
	b := NewBaseline(r.Sys, cost, capacity)
	b.Inline = inline
	w.feed(b)
	cycles, err := b.Run()
	if err != nil {
		return 0, err
	}
	want := w.Frames * 100 // FramePixels; kept local to avoid an import cycle
	if got := len(b.Output("display").Vals); got != want {
		return 0, fmt.Errorf("sim: baseline produced %d pixels, want %d", got, want)
	}
	return cycles, nil
}

// RunTaskPFC executes the synthesized single task and returns total
// cycles.
func RunTaskPFC(r *core.Result, w Workload, cost *CostModel) (int64, error) {
	te, err := NewTaskExec(r.Sys, r.Tasks[0], cost)
	if err != nil {
		return 0, err
	}
	for f := 0; f < w.Frames; f++ {
		te.Input("cin").Push(int64(f%8 + 1))
		if err := te.Trigger(int64(f)); err != nil {
			return 0, err
		}
	}
	return te.Machine.Cycles, nil
}

// Fig20Point is one point of Figure 20.
type Fig20Point struct {
	Model    string
	Capacity int
	Cycles   int64
}

// Figure20 sweeps channel buffer sizes for the 4-task implementation
// under the three cost models, plus the single-task points (capacity 0
// denotes the synthesized task with its unit buffers).
func Figure20(r *core.Result, frames int, capacities []int) ([]Fig20Point, error) {
	var out []Fig20Point
	w := Workload{Frames: frames}
	for _, cost := range Presets() {
		for _, cap := range capacities {
			cycles, err := RunBaselinePFC(r, w, cap, cost, true)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig20Point{Model: cost.Name, Capacity: cap, Cycles: cycles})
		}
		cycles, err := RunTaskPFC(r, w, cost)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig20Point{Model: cost.Name, Capacity: 0, Cycles: cycles})
	}
	return out, nil
}

// PrintFigure20 renders the sweep as aligned columns.
func PrintFigure20(w io.Writer, pts []Fig20Point) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Figure 20: execution time (cycles) vs channel buffer size, 10 frames")
	fmt.Fprintln(bw, "buffer     pfc        pfc-O      pfc-O2")
	byCap := map[int]map[string]int64{}
	var caps []int
	for _, p := range pts {
		if byCap[p.Capacity] == nil {
			byCap[p.Capacity] = map[string]int64{}
			caps = append(caps, p.Capacity)
		}
		byCap[p.Capacity][p.Model] = p.Cycles
	}
	for _, c := range caps {
		row := byCap[c]
		label := fmt.Sprintf("%-10d", c)
		if c == 0 {
			label = "task      "
		}
		fmt.Fprintf(bw, "%s %-10d %-10d %-10d\n", label, row["pfc"], row["pfc-O"], row["pfc-O2"])
	}
	return bw.Flush()
}

// Table1Row is one row of Table 1: kilocycles for a frame count under
// the three models, single task vs 4 processes.
type Table1Row struct {
	Frames int
	// Task and Procs are kilocycles per model name.
	Task  map[string]int64
	Procs map[string]int64
	Ratio map[string]float64
}

// Table1 reproduces the frame-count sweep (the 4-process system uses
// buffers of size 100, as in the paper).
func Table1(r *core.Result, frameCounts []int) ([]Table1Row, error) {
	var out []Table1Row
	for _, frames := range frameCounts {
		row := Table1Row{
			Frames: frames,
			Task:   map[string]int64{},
			Procs:  map[string]int64{},
			Ratio:  map[string]float64{},
		}
		w := Workload{Frames: frames}
		for _, cost := range Presets() {
			task, err := RunTaskPFC(r, w, cost)
			if err != nil {
				return nil, err
			}
			procs, err := RunBaselinePFC(r, w, 100, cost, true)
			if err != nil {
				return nil, err
			}
			row.Task[cost.Name] = task / 1000
			row.Procs[cost.Name] = procs / 1000
			row.Ratio[cost.Name] = float64(procs) / float64(task)
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintTable1 renders Table 1 in the paper's layout (kcycles).
func PrintTable1(w io.Writer, rows []Table1Row) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Table 1: kcycles for different numbers of frames (buffers = 100 for 4 procs)")
	fmt.Fprintln(bw, "          pfc                     pfc-O                   pfc-O2")
	fmt.Fprintln(bw, "frames    1task  4procs  ratio   1task  4procs  ratio   1task  4procs  ratio")
	for _, r := range rows {
		fmt.Fprintf(bw, "%-8d", r.Frames)
		for _, m := range []string{"pfc", "pfc-O", "pfc-O2"} {
			fmt.Fprintf(bw, "  %-6d %-7d %-5.1f", r.Task[m], r.Procs[m], r.Ratio[m])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Table2Row is one row of Table 2: code sizes in bytes.
type Table2Row struct {
	Model   string
	Task    int
	PerProc map[string]int
	Total   int
	Ratio   float64
}

// Table2 reproduces the code-size comparison (inlined communication
// primitives, as in the paper's main comparison).
func Table2(r *core.Result) []Table2Row {
	var out []Table2Row
	for _, sm := range SizeModels() {
		total, per := sm.BaselineSize(r.Sys, true)
		task := sm.TaskSize(r.Tasks[0], r.Sys)
		out = append(out, Table2Row{
			Model:   sm.Name,
			Task:    task,
			PerProc: per,
			Total:   total,
			Ratio:   float64(total) / float64(task),
		})
	}
	return out
}

// PrintTable2 renders Table 2 in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Table 2: code size (bytes), inlined communication primitives")
	fmt.Fprintln(bw, "model     1task   contr   prod    filt    cons    total   ratio")
	for _, r := range rows {
		fmt.Fprintf(bw, "%-8s  %-6d  %-6d  %-6d  %-6d  %-6d  %-6d  %.1f\n",
			r.Model, r.Task,
			r.PerProc["controller"], r.PerProc["producer"],
			r.PerProc["filter"], r.PerProc["consumer"],
			r.Total, r.Ratio)
	}
	return bw.Flush()
}
