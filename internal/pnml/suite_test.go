package pnml_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/pnml"
)

// The PNML conformance suite: every vendored interchange net must
// produce a byte-identical ReachResult — same marking order, edges,
// clip flags, truncation — under every execution strategy. This is the
// same determinism contract the dist matrix pins for FlowC-born nets,
// extended to imported ones. The dist configurations spawn real worker
// processes (dist.SpawnLocal re-executes this test binary; TestMain
// routes the children into dist.MaybeWorker).

func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// suiteOpts gives each fixture its exploration budget. Nets absent
// from the map use the default; unbounded-counter MUST carry a token
// cap or exploration never terminates.
var suiteOpts = map[string]pnml.AnalyzeOptions{
	"unbounded-counter.pnml": {MaxMarkings: 4000, MaxTokensPerPlace: 6},
	"multirate-burst.pnml":   {MaxMarkings: 50000},
}

var defaultSuiteOpts = pnml.AnalyzeOptions{MaxMarkings: 100000}

// suiteFixtures globs the vendored nets and enforces the suite floor.
func suiteFixtures(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "suite", "*.pnml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("suite has %d fixtures, want >= 5", len(files))
	}
	return files
}

// TestPNMLSuite is the conformance matrix `make pnml-suite` runs in CI:
// serial is the baseline; in-process parallel frontier, spawned worker
// processes and the frozen store tier must reproduce its fingerprint
// exactly, fixture by fixture.
func TestPNMLSuite(t *testing.T) {
	files := suiteFixtures(t)
	want := make(map[string]string, len(files))
	for _, f := range files {
		opt := suiteOpts[filepath.Base(f)]
		if opt.MaxMarkings == 0 {
			opt = defaultSuiteOpts
		}
		a, err := pnml.AnalyzeFile(f, opt)
		if err != nil {
			t.Fatalf("serial %s: %v", filepath.Base(f), err)
		}
		want[f] = a.Fingerprint
	}

	configs := []struct {
		name   string
		ew     int
		procs  int
		freeze bool
	}{
		{name: "explore-workers-4", ew: 4},
		{name: "dist-procs-2", procs: 2},
		{name: "serial-frozen", ew: 1, freeze: true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			var pool *dist.Pool
			if cfg.procs > 0 {
				if cfg.freeze {
					t.Setenv(dist.EnvFreeze, "1")
				}
				var err error
				pool, err = dist.SpawnLocal(cfg.procs)
				if err != nil {
					t.Fatalf("spawn %d workers: %v", cfg.procs, err)
				}
				defer pool.Close()
			}
			for _, f := range files {
				opt := suiteOpts[filepath.Base(f)]
				if opt.MaxMarkings == 0 {
					opt = defaultSuiteOpts
				}
				opt.Workers = cfg.ew
				opt.FreezeLevels = cfg.freeze
				if pool != nil {
					opt.Dist = pool
				}
				a, err := pnml.AnalyzeFile(f, opt)
				if err != nil {
					t.Fatalf("%s under %s: %v", filepath.Base(f), cfg.name, err)
				}
				if a.Fingerprint != want[f] {
					t.Errorf("%s under %s: fingerprint %s, serial %s — ReachResult diverged",
						filepath.Base(f), cfg.name, a.Fingerprint, want[f])
				}
			}
		})
	}
}

// TestPNMLRoundTrip: export -> import -> export is a byte-for-byte
// fixed point for every suite fixture, and the reimported net explores
// to the same fingerprint as the original import.
func TestPNMLRoundTrip(t *testing.T) {
	for _, f := range suiteFixtures(t) {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			n1, err := pnml.ParseBytes(src)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := pnml.ExportBytes(n1)
			if err != nil {
				t.Fatal(err)
			}
			n2, err := pnml.ParseBytes(b1)
			if err != nil {
				t.Fatalf("reimport of exported net failed: %v", err)
			}
			b2, err := pnml.ExportBytes(n2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("export -> import -> export is not a fixed point:\n-- first --\n%s\n-- second --\n%s", b1, b2)
			}
			opt := suiteOpts[name]
			if opt.MaxMarkings == 0 {
				opt = defaultSuiteOpts
			}
			a1, err := pnml.Analyze(n1, opt)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := pnml.Analyze(n2, opt)
			if err != nil {
				t.Fatal(err)
			}
			if a1.Fingerprint != a2.Fingerprint {
				t.Errorf("reimported net explores differently: %s vs %s", a2.Fingerprint, a1.Fingerprint)
			}
		})
	}
}
