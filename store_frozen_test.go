package repro

import (
	"testing"

	"repro/internal/petri"
)

// TestStoreFrozenGate is the CI gate for the frozen store tier on the
// full 161k-state ExploreLarge net (11^5 markings, 56 places): the
// frozen exploration must be byte-identical to the all-hot serial
// baseline, every state must end up frozen, and the hot residency must
// obey exact, machine-independent byte counts — the frozen run keeps
// only hashes, the probe table and segment offsets hot, and that total
// must come in at or below 0.35x the all-hot store.
func TestStoreFrozenGate(t *testing.T) {
	const pipes, stages = 5, 11
	want := 1
	for i := 0; i < pipes; i++ {
		want *= stages
	}
	opt := petri.ExploreOptions{MaxMarkings: want + 1}
	n := exploreLargeNet(pipes, stages)
	hot := n.Explore(opt)
	if hot.Len() != want || hot.Truncated {
		t.Fatalf("all-hot explored %d markings (truncated=%v), want %d", hot.Len(), hot.Truncated, want)
	}

	fopt := opt
	fopt.FreezeLevels = true
	frozen := n.Explore(fopt)
	if frozen.Len() != want || frozen.Truncated {
		t.Fatalf("frozen explored %d markings (truncated=%v), want %d", frozen.Len(), frozen.Truncated, want)
	}

	// Byte-identical reachability: same markings in the same dense
	// order, same edges, same clip flags.
	for id := 0; id < want; id++ {
		if !hot.MarkingAt(petri.MarkID(id)).Equal(frozen.MarkingAt(petri.MarkID(id))) {
			t.Fatalf("marking %d differs between all-hot and frozen", id)
		}
		if hot.Clipped[id] != frozen.Clipped[id] {
			t.Fatalf("clipped[%d] differs between all-hot and frozen", id)
		}
		he, fe := hot.Edges[id], frozen.Edges[id]
		if len(he) != len(fe) {
			t.Fatalf("state %d: edge counts differ (%d vs %d)", id, len(he), len(fe))
		}
		for k := range he {
			if he[k] != fe[k] {
				t.Fatalf("state %d edge %d differs", id, k)
			}
		}
	}

	// The serial explorer freezes every closed level and then the final
	// partial level, so the whole store must be frozen.
	if !frozen.Store.FreezeEnabled() {
		t.Fatal("FreezeLevels run did not enable the frozen tier")
	}
	if fl := frozen.Store.FrozenLen(); fl != want {
		t.Fatalf("frozen states = %d, want all %d", fl, want)
	}

	// Exact machine-independent hot-byte accounting. Both runs intern
	// the identical marking sequence, so they share one probe-table
	// size; the all-hot store additionally holds every token vector
	// (want x places x 8B), the frozen store instead holds one segment
	// offset per state (want x 8B) and zero hot vectors.
	hotMem := hot.Store.Mem()
	frozenMem := frozen.Store.Mem()
	if hotMem.FrozenBytes != 0 {
		t.Fatalf("all-hot run reports %d frozen bytes", hotMem.FrozenBytes)
	}
	places := len(hot.MarkingAt(0))
	tableBytes := hotMem.HotBytes - int64(want*places)*8 - int64(want)*8
	if tableBytes <= 0 {
		t.Fatalf("derived probe-table bytes %d; accounting drifted (hot=%d)", tableBytes, hotMem.HotBytes)
	}
	wantFrozenHot := int64(want)*8 + tableBytes + int64(want)*8
	if frozenMem.HotBytes != wantFrozenHot {
		t.Fatalf("frozen run hot bytes = %d, want exactly %d (hashes+table+offsets)", frozenMem.HotBytes, wantFrozenHot)
	}
	if frozenMem.FrozenBytes <= 0 {
		t.Fatalf("frozen run reports %d segment bytes", frozenMem.FrozenBytes)
	}

	// The headline gate: hot residency at or below 0.35x the all-hot
	// store (it lands far below — the vectors dominate at 56 places).
	if frozenMem.HotBytes*100 > hotMem.HotBytes*35 {
		t.Fatalf("frozen hot bytes %d > 0.35x all-hot %d", frozenMem.HotBytes, hotMem.HotBytes)
	}
	t.Logf("all-hot %dB, frozen hot %dB (%.3fx) + %dB on disk",
		hotMem.HotBytes, frozenMem.HotBytes,
		float64(frozenMem.HotBytes)/float64(hotMem.HotBytes), frozenMem.FrozenBytes)
}
