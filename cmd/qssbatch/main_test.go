package main

import "testing"

// TestBatchFlagValidation: contradictory or out-of-range flag
// combinations are rejected with a descriptive error instead of being
// silently clamped.
func TestBatchFlagValidation(t *testing.T) {
	ok := func(f batchFlags) bool { return f.validate() == nil }
	valid := []batchFlags{
		{},
		{n: 50, workers: 4, exploreWorkers: 4},
		{n: 1, exploreWorkers: 0},
		{distWorkers: 2},
		{distWorkers: 2, exploreWorkers: 1},
		{distWorkers: 3, distEndpoint: "unix:/tmp/x.sock"},
		{distWorkers: 2, distFullReplicas: true},
	}
	for i, f := range valid {
		if !ok(f) {
			t.Errorf("valid combination %d rejected: %v", i, f.validate())
		}
	}
	invalid := []batchFlags{
		{n: -1},
		{workers: -2},
		{exploreWorkers: -1},
		{distWorkers: -1},
		{distEndpoint: "unix:/tmp/x.sock"},         // endpoint without workers
		{distWorkers: 2, exploreWorkers: 4},        // two exploration strategies
		{distWorkers: 1, exploreWorkers: 2, n: 10}, // ditto, with other flags set
		{n: -5, workers: 3, distWorkers: 2, exploreWorkers: 0}, // first failure still reported
		{distFullReplicas: true},                               // replica mode without a dist pool
	}
	for i, f := range invalid {
		if ok(f) {
			t.Errorf("invalid combination %d (%+v) accepted", i, f)
		}
	}
}

// TestBatchPNMLFlagValidation: -pnml switches modes, so corpus flags
// are rejected when explicitly set, exploration flags compose, and the
// -pnml-only caps require -pnml. The explicit map mirrors what
// flag.Visit records after Parse.
func TestBatchPNMLFlagValidation(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		f       batchFlags
		wantErr bool
	}{
		{name: "pnml", f: batchFlags{pnml: multiFlag{"net.pnml"}, explicit: set("pnml")}},
		{name: "pnml-two-files", f: batchFlags{pnml: multiFlag{"a.pnml", "b.pnml"}, explicit: set("pnml")}},
		{name: "pnml-with-caps", f: batchFlags{pnml: multiFlag{"net.pnml"}, pnmlMaxMarkings: 5000, pnmlMaxTokens: 4,
			explicit: set("pnml", "pnml-max-markings", "pnml-max-tokens")}},
		{name: "pnml-with-dist", f: batchFlags{pnml: multiFlag{"net.pnml"}, distWorkers: 2,
			explicit: set("pnml", "dist-workers")}},
		{name: "pnml-with-explore-workers", f: batchFlags{pnml: multiFlag{"net.pnml"}, exploreWorkers: 4,
			explicit: set("pnml", "explore-workers")}},
		{name: "pnml-with-freeze", f: batchFlags{pnml: multiFlag{"net.pnml"},
			explicit: set("pnml", "freeze-levels")}},
		{name: "emit-pnml", f: batchFlags{n: 10, emitPNML: "/tmp/out", explicit: set("n", "emit-pnml")}},

		{name: "pnml-vs-n", f: batchFlags{pnml: multiFlag{"net.pnml"}, n: 5,
			explicit: set("pnml", "n")}, wantErr: true},
		{name: "pnml-vs-seed", f: batchFlags{pnml: multiFlag{"net.pnml"},
			explicit: set("pnml", "seed")}, wantErr: true},
		{name: "pnml-vs-shape", f: batchFlags{pnml: multiFlag{"net.pnml"},
			explicit: set("pnml", "stages")}, wantErr: true},
		{name: "pnml-vs-compare", f: batchFlags{pnml: multiFlag{"net.pnml"},
			explicit: set("pnml", "compare")}, wantErr: true},
		{name: "pnml-vs-emit-pnml", f: batchFlags{pnml: multiFlag{"net.pnml"}, emitPNML: "/tmp/out",
			explicit: set("pnml", "emit-pnml")}, wantErr: true},
		{name: "pnml-vs-workers", f: batchFlags{pnml: multiFlag{"net.pnml"}, workers: 4,
			explicit: set("pnml", "workers")}, wantErr: true},
		{name: "caps-without-pnml", f: batchFlags{pnmlMaxTokens: 4,
			explicit: set("pnml-max-tokens")}, wantErr: true},
		{name: "negative-max-markings", f: batchFlags{pnml: multiFlag{"net.pnml"}, pnmlMaxMarkings: -1,
			explicit: set("pnml", "pnml-max-markings")}, wantErr: true},
		{name: "negative-max-tokens", f: batchFlags{pnml: multiFlag{"net.pnml"}, pnmlMaxTokens: -1,
			explicit: set("pnml", "pnml-max-tokens")}, wantErr: true},
		{name: "pnml-both-strategies", f: batchFlags{pnml: multiFlag{"net.pnml"}, distWorkers: 2, exploreWorkers: 4,
			explicit: set("pnml", "dist-workers", "explore-workers")}, wantErr: true},
		{name: "emit-pnml-vs-dist", f: batchFlags{emitPNML: "/tmp/out", distWorkers: 2,
			explicit: set("emit-pnml", "dist-workers")}, wantErr: true},
		{name: "emit-pnml-vs-compare", f: batchFlags{emitPNML: "/tmp/out",
			explicit: set("emit-pnml", "compare")}, wantErr: true},
	}
	for _, c := range cases {
		err := c.f.validate()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validate() err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
