// Command pfcbench regenerates the paper's evaluation on the PFC video
// application: Figure 20 (-fig20), Table 1 (-table1) and Table 2
// (-table2); -all runs everything.
//
// Usage:
//
//	pfcbench [-fig20] [-table1] [-table2] [-all] [-frames N]
//	         [-explore-workers N] [-dist-workers N] [-dist-endpoint ep]
//	         [-dist-full-replicas] [-freeze-levels]
//	         [-cpuprofile f] [-memprofile f]
//	pfcbench -pnml net.pnml [-pnml ...] [-pnml-max-markings N]
//	         [-pnml-max-tokens N] [exploration flags]
//
// -explore-workers parallelizes the schedule search's state-space
// exploration; -dist-workers instead shards it across worker OS
// processes (spawned locally, or awaited as external cmd/qssd
// processes at -dist-endpoint), each holding only its owned hash
// shards unless -dist-full-replicas restores the full-replica
// fallback. -freeze-levels moves closed exploration levels to on-disk
// delta segments (locally and in spawned workers). Results are
// byte-identical for every value of any of them. -cpuprofile/-memprofile write pprof profiles, so
// perf regressions can be diagnosed without editing source.
// -pnml switches to interchange-net analysis: each named PNML document
// (ISO/IEC 15909-2 P/T subset, see internal/pnml and docs/PNML.md) is
// imported and explored under the same exploration flags, reporting
// reachable states, deadlocks, place bounds and a fingerprint. The
// paper-evaluation flags (-fig20, -table1, -table2, -all, -frames)
// presuppose the synthesized PFC application and are rejected with
// -pnml.
//
// Contradictory flag combinations (negative counts, -dist-endpoint
// without -dist-workers, both exploration strategies at once, -pnml
// with evaluation flags) are rejected with a usage error rather than
// silently clamped.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/pnml"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	// MaybeWorker first: children re-executed by dist.SpawnLocal must
	// become workers, not rerun the benchmark.
	dist.MaybeWorker()
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// benchFlags holds the flags that need cross-validation. explicit
// records which flags the user actually set (from flag.Visit) so mode
// conflicts distinguish "passed -frames" from "-frames at its default".
type benchFlags struct {
	frames           int
	exploreWorkers   int
	distWorkers      int
	distEndpoint     string
	distFullReplicas bool
	anyOutput        bool
	pnml             multiFlag
	pnmlMaxMarkings  int
	pnmlMaxTokens    int
	explicit         map[string]bool
}

// evalFlags presuppose the synthesized PFC application and have no
// meaning when -pnml switches the command to interchange-net analysis.
var evalFlags = []string{"fig20", "table1", "table2", "all", "frames"}

// validate rejects contradictory or out-of-range combinations with a
// descriptive error instead of silently clamping.
func (f *benchFlags) validate() error {
	switch {
	case f.exploreWorkers < 0:
		return fmt.Errorf("-explore-workers must be >= 0 (0 = auto budget), got %d", f.exploreWorkers)
	case f.distWorkers < 0:
		return fmt.Errorf("-dist-workers must be >= 0 (0 = no worker processes), got %d", f.distWorkers)
	case f.distEndpoint != "" && f.distWorkers == 0:
		return fmt.Errorf("-dist-endpoint requires -dist-workers >= 1 (how many workers to await)")
	case f.distWorkers > 0 && f.exploreWorkers > 1:
		return fmt.Errorf("-dist-workers and -explore-workers > 1 are contradictory: pick in-process or cross-process exploration")
	case f.distFullReplicas && f.distWorkers == 0:
		return fmt.Errorf("-dist-full-replicas requires -dist-workers >= 1 (it selects the worker replica mode)")
	case f.pnmlMaxMarkings < 0:
		return fmt.Errorf("-pnml-max-markings must be >= 0 (0 = the explorer's default), got %d", f.pnmlMaxMarkings)
	case f.pnmlMaxTokens < 0:
		return fmt.Errorf("-pnml-max-tokens must be >= 0 (0 = no cap), got %d", f.pnmlMaxTokens)
	}
	if len(f.pnml) > 0 {
		for _, name := range evalFlags {
			if f.explicit[name] {
				return fmt.Errorf("-pnml analyzes interchange nets, not the PFC evaluation: -%s does not apply", name)
			}
		}
		return nil
	}
	switch {
	case f.explicit["pnml-max-markings"] || f.explicit["pnml-max-tokens"]:
		return fmt.Errorf("-pnml-max-markings/-pnml-max-tokens require -pnml (they bound the interchange-net exploration)")
	case !f.anyOutput:
		return fmt.Errorf("nothing to do: pass -fig20, -table1, -table2, -all or -pnml")
	case f.frames < 1:
		return fmt.Errorf("-frames must be >= 1, got %d", f.frames)
	}
	return nil
}

func realMain() (code int) {
	var bf benchFlags
	fig20 := flag.Bool("fig20", false, "regenerate Figure 20 (buffer-size sweep)")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (frame-count sweep)")
	table2 := flag.Bool("table2", false, "regenerate Table 2 (code size)")
	all := flag.Bool("all", false, "regenerate everything")
	flag.IntVar(&bf.frames, "frames", 10, "frames for Figure 20")
	flag.IntVar(&bf.exploreWorkers, "explore-workers", 0, "goroutines for the schedule-search exploration (0 = auto budget)")
	flag.IntVar(&bf.distWorkers, "dist-workers", 0, "worker OS processes sharding the exploration (0 = none)")
	flag.StringVar(&bf.distEndpoint, "dist-endpoint", "", "await externally started qssd workers at this endpoint instead of spawning")
	flag.BoolVar(&bf.distFullReplicas, "dist-full-replicas", false, "fall back to full worker replicas instead of trimmed owned-shard ones")
	freezeLevels := flag.Bool("freeze-levels", false, "freeze closed exploration levels to on-disk delta segments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Var(&bf.pnml, "pnml", "analyze this PNML net instead of the PFC evaluation (repeatable)")
	flag.IntVar(&bf.pnmlMaxMarkings, "pnml-max-markings", 0, "marking budget for -pnml exploration (0 = the explorer's default)")
	flag.IntVar(&bf.pnmlMaxTokens, "pnml-max-tokens", 0, "per-place token cap for -pnml exploration (0 = none; required for unbounded nets)")
	flag.Parse()
	if *all {
		*fig20, *table1, *table2 = true, true, true
	}
	bf.anyOutput = *fig20 || *table1 || *table2
	bf.explicit = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { bf.explicit[f.Name] = true })
	if err := bf.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pfcbench:", err)
		flag.Usage()
		return 2
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			if c := fatal(err); code == 0 {
				code = c
			}
		}
	}()
	if *freezeLevels && bf.distWorkers > 0 {
		// Spawned workers inherit the environment; externally started
		// qssd workers take -freeze-levels themselves.
		os.Setenv(dist.EnvFreeze, "1")
	}
	if len(bf.pnml) > 0 {
		return runPNML(&bf, *freezeLevels)
	}
	res, err := apps.SynthesizePFCWith(&core.Options{
		ExploreWorkers:   bf.exploreWorkers,
		DistWorkers:      bf.distWorkers,
		DistEndpoint:     bf.distEndpoint,
		DistFullReplicas: bf.distFullReplicas,
		FreezeLevels:     *freezeLevels,
		DisableCache:     true,
	})
	if err != nil {
		return fatal(err)
	}
	fmt.Printf("synthesized pfc: schedule %d nodes, %d segments, all channel bounds = 1\n\n",
		len(res.Schedules[0].Nodes), len(res.Tasks[0].Segments))
	if *fig20 {
		pts, err := sim.Figure20(res, bf.frames, []int{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintFigure20(os.Stdout, pts); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table1 {
		rows, err := sim.Table1(res, []int{10, 50, 100, 500, 1000})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintTable1(os.Stdout, rows); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table2 {
		if err := sim.PrintTable2(os.Stdout, sim.Table2(res)); err != nil {
			return fatal(err)
		}
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "pfcbench:", err)
	return 1
}

// runPNML analyzes each named interchange net under the selected
// exploration strategy, sharing one dist pool (when requested) across
// all files.
func runPNML(bf *benchFlags, freeze bool) int {
	opt := pnml.AnalyzeOptions{
		MaxMarkings:       bf.pnmlMaxMarkings,
		MaxTokensPerPlace: bf.pnmlMaxTokens,
		Workers:           bf.exploreWorkers,
		FreezeLevels:      freeze,
	}
	if bf.distWorkers > 0 {
		var (
			pool *dist.Pool
			err  error
		)
		if bf.distEndpoint != "" {
			fmt.Printf("awaiting %d qssd worker(s) at %s\n", bf.distWorkers, bf.distEndpoint)
			pool, err = dist.Listen(bf.distEndpoint, bf.distWorkers)
		} else {
			pool, err = dist.SpawnLocal(bf.distWorkers)
		}
		if err != nil {
			return fatal(err)
		}
		defer pool.Close()
		if bf.distFullReplicas {
			pool.SetFullReplicas(true)
		}
		opt.Dist = pool
	}
	code := 0
	for i, path := range bf.pnml {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", path)
		a, err := pnml.AnalyzeFile(path, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfcbench:", err)
			code = 1
			continue
		}
		a.Report(os.Stdout, false)
	}
	return code
}
