// Divisors: the process of Figure 1 of the paper. Shows the compiled
// Petri net (Figure 3), the quasi-static schedule for the uncontrollable
// input, and the generated C; then runs the synthesized task, printing
// the divisors it computes.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	res, err := core.Synthesize(apps.Divisors, apps.DivisorsSpec, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthesis failed:", err)
		os.Exit(1)
	}

	fmt.Println("---- Petri net (cf. Figure 3) ----")
	if err := res.Sys.Net.Format(os.Stdout); err != nil {
		os.Exit(1)
	}

	fmt.Println("\n---- schedule ----")
	if err := res.Schedules[0].Format(os.Stdout); err != nil {
		os.Exit(1)
	}

	fmt.Println("\n---- generated task ----")
	fmt.Print(res.Code[res.Tasks[0].Name])

	te, err := sim.NewTaskExec(res.Sys, res.Tasks[0], sim.PFC)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\n---- execution ----")
	for _, n := range []int64{24, 36, 17} {
		before := len(te.Output("all").Vals)
		if err := te.Trigger(n); err != nil {
			fmt.Fprintln(os.Stderr, "trigger failed:", err)
			os.Exit(1)
		}
		all := te.Output("all").Vals[before:]
		max := te.Output("max").Vals[len(te.Output("max").Vals)-1]
		fmt.Printf("divisors(%d): max=%d all=%v\n", n, max, all)
	}
}
