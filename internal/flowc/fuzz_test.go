package flowc

import "testing"

// FuzzParse checks two robustness properties of the FlowC front end on
// arbitrary input:
//
//  1. the lexer and parser never panic — malformed source must come
//     back as an error;
//  2. accepted programs round-trip: printing a parsed process and
//     parsing the print yields the same program again (print is a fixed
//     point after one normalization pass).
func FuzzParse(f *testing.F) {
	f.Add(`
PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
  int n, i;
  while (1) {
    READ_DATA(in, &n, 1);
    i = n / 2;
    while (n % i != 0)
      i--;
    WRITE_DATA(max, i, 1);
    while (i > 1) {
      i--;
      if (n % i == 0)
        WRITE_DATA(all, i, 1);
    }
  }
}
`)
	f.Add(`
PROCESS sel (In DPORT a, In DPORT b, Out DPORT out) {
  int v, w[4];
  while (1) {
    switch (SELECT(a, 1, b, 2)) {
    case 0:
      READ_DATA(a, &v, 1);
      break;
    case 1:
      READ_DATA(b, w, 2);
      v = w[0] + w[1];
      break;
    }
    WRITE_DATA(out, v, 1);
  }
}
`)
	f.Add(`PROCESS p (In DPORT i, Out DPORT o) { int x = 3; for (x = 0; x < 5; x++) { WRITE_DATA(o, x, 1); } }`)
	f.Add("PROCESS broken (")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile(src) // must not panic
		if err != nil {
			return
		}
		for _, p := range file.Processes {
			text := FormatProcess(p)
			p2, err := ParseProcess(text)
			if err != nil {
				t.Fatalf("printed process no longer parses: %v\noriginal source:\n%s\nprinted:\n%s", err, src, text)
			}
			if again := FormatProcess(p2); again != text {
				t.Fatalf("print is not a fixed point after reparse:\nfirst:\n%s\nsecond:\n%s", text, again)
			}
		}
	})
}
