package sched

import (
	"fmt"

	"repro/internal/petri"
)

// Independence of single-source schedules (Definition 4.3): two SS
// schedules are mutually independent iff for every place involved in one,
// the token count is constant over all await nodes of the other. An
// independent set is executable with statically known channel bounds
// (Proposition 4.2); for FlowC-derived nets every set of SS schedules is
// independent (Proposition 4.3), and CheckIndependence verifies it.

// MutuallyIndependent reports whether the two schedules satisfy
// Definition 4.3, returning a diagnostic for the first violation.
func MutuallyIndependent(a, b *Schedule) (bool, string) {
	if ok, why := onePlaceConst(a, b); !ok {
		return false, why
	}
	return onePlaceConst(b, a)
}

// onePlaceConst checks that every place involved in `user` holds a
// constant count over the await nodes of `other`.
func onePlaceConst(user, other *Schedule) (bool, string) {
	awaits := other.AwaitNodes()
	if len(awaits) == 0 {
		return true, ""
	}
	for _, p := range user.InvolvedPlaces() {
		v0 := awaits[0].Marking[p]
		for _, w := range awaits[1:] {
			if w.Marking[p] != v0 {
				return false, fmt.Sprintf(
					"place %s involved in schedule of %s varies (%d vs %d) across await nodes of schedule of %s",
					user.Net.Places[p].Name, user.Net.Transitions[user.Source].Name,
					v0, w.Marking[p], other.Net.Transitions[other.Source].Name)
			}
		}
	}
	return true, ""
}

// CheckIndependence verifies pairwise independence of a schedule set.
func CheckIndependence(set []*Schedule) error {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if ok, why := MutuallyIndependent(set[i], set[j]); !ok {
				return fmt.Errorf("sched: schedules not independent: %s", why)
			}
		}
	}
	return nil
}

// CombinedPlaceBounds returns, per place, the maximum token count over
// the nodes of all schedules — the buffer sizes that make the whole task
// set executable (Section 4.3).
func CombinedPlaceBounds(set []*Schedule) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, len(set[0].Net.Places))
	for _, s := range set {
		for p, v := range s.PlaceBounds() {
			if v > out[p] {
				out[p] = v
			}
		}
	}
	return out
}

// Run is a run of a schedule set (Definition 4.1): the concatenated
// transition firing sequence produced by serving a sequence of
// uncontrollable source occurrences.
type Run struct {
	// Seq is the full fired transition sequence.
	Seq []int
	// Final maps each schedule's source transition to the await node
	// where its traversal stopped.
	Final map[int]*Node
}

// ChoiceResolver decides which out-edge to take at a node whose ECS has
// several transitions (a data-dependent choice). It receives the node
// and must return an index into node.Edges.
type ChoiceResolver func(s *Schedule, n *Node) int

// FirstEdge always takes edge 0 — a deterministic default resolver.
func FirstEdge(_ *Schedule, _ *Node) int { return 0 }

// BuildRun traverses the schedule set for the given sequence of
// uncontrollable source transition IDs, resolving data choices with the
// given resolver, and returns the induced run. It reproduces the game of
// Section 4.2: each occurrence is served by walking its schedule from the
// current await node to the next one.
func BuildRun(set []*Schedule, inputs []int, resolve ChoiceResolver) (*Run, error) {
	if resolve == nil {
		resolve = FirstEdge
	}
	bySource := map[int]*Schedule{}
	cur := map[int]*Node{}
	for _, s := range set {
		if _, dup := bySource[s.Source]; dup {
			return nil, fmt.Errorf("sched: duplicate schedule for source %d", s.Source)
		}
		bySource[s.Source] = s
		cur[s.Source] = s.Root
	}
	run := &Run{Final: cur}
	for pos, src := range inputs {
		s := bySource[src]
		if s == nil {
			return nil, fmt.Errorf("sched: input %d (position %d) has no schedule", src, pos)
		}
		n := cur[src]
		// The await node's single out-edge fires the source itself.
		if !s.IsAwait(n) {
			return nil, fmt.Errorf("sched: schedule of source %d resumed at non-await node %d", src, n.ID)
		}
		run.Seq = append(run.Seq, n.Edges[0].Trans)
		n = n.Edges[0].To
		// Continue until the next await node.
		for !s.IsAwait(n) {
			var k int
			if len(n.Edges) > 1 {
				k = resolve(s, n)
				if k < 0 || k >= len(n.Edges) {
					return nil, fmt.Errorf("sched: resolver returned invalid edge %d at node %d", k, n.ID)
				}
			}
			run.Seq = append(run.Seq, n.Edges[k].Trans)
			n = n.Edges[k].To
		}
		cur[src] = n
	}
	return run, nil
}

// Executable checks Definition 4.2 on one concrete input sequence: the
// transition sequence of the run must be fireable from the initial
// marking of the net. It returns the final marking.
func Executable(net *petri.Net, set []*Schedule, inputs []int, resolve ChoiceResolver) (petri.Marking, error) {
	run, err := BuildRun(set, inputs, resolve)
	if err != nil {
		return nil, err
	}
	m := net.InitialMarking()
	for i, tid := range run.Seq {
		t := net.Transitions[tid]
		if !m.Enabled(t) {
			return nil, fmt.Errorf("sched: run not fireable: transition %s disabled at position %d", t.Name, i)
		}
		m = m.Fire(t)
	}
	return m, nil
}
