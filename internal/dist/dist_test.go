package dist

import (
	"fmt"
	"net"
	"os"
	"testing"

	"repro/internal/petri"
)

// pipeWorker describes one in-process worker of a pipePoolOf pool.
type pipeWorker struct {
	ver  int                     // hello protocol version; 0 means current
	wopt WorkerOptions           // worker-side options
	wrap func(net.Conn) net.Conn // optional worker-side conn wrapper (latency injection)
}

// pipePool builds a Pool whose "workers" are goroutines on the other
// end of net.Pipe connections — the full protocol stack (framing,
// encoding, replica, merge) without process spawning, so the unit tests
// stay fast and debuggable. Process-level coverage lives in the
// determinism matrix tests (package dist_test). Workers run the
// default trimmed-replica mode; pass WorkerOptions to exercise the
// full-replica fallback or capability negotiation.
func pipePool(t *testing.T, n int, wopt WorkerOptions) *Pool {
	t.Helper()
	specs := make([]pipeWorker, n)
	for i := range specs {
		specs[i].wopt = wopt
	}
	return pipePoolOf(t, specs)
}

// pipePoolOf is pipePool with per-worker protocol versions and conn
// wrappers, for the downgrade and delayed-stream tests.
func pipePoolOf(t *testing.T, specs []pipeWorker) *Pool {
	t.Helper()
	p := &Pool{logw: newLogWriter("coord")}
	for i, spec := range specs {
		cs, ws := net.Pipe()
		wc := net.Conn(ws)
		if spec.wrap != nil {
			wc = spec.wrap(ws)
		}
		ver := spec.ver
		if ver == 0 {
			ver = protoVersion
		}
		wopt := spec.wopt
		errc := make(chan error, 1)
		go func() { errc <- serveConnVer(wc, newLogWriter("worker"), wopt, ver) }()
		c := newConn(cs)
		payload, err := c.expect(msgHello)
		var gotVer int
		var flags uint64
		if err == nil {
			gotVer, flags, _, err = checkHello(payload)
		}
		if err != nil {
			t.Fatalf("pipe worker %d handshake: %v", i, err)
		}
		p.workers = append(p.workers, c)
		p.wantFull = append(p.wantFull, flags&helloFullReplicas != 0)
		p.vers = append(p.vers, gotVer)
		t.Cleanup(func() {
			cs.Close()
			if err := <-errc; err != nil {
				t.Errorf("pipe worker exited: %v", err)
			}
		})
	}
	return p
}

// ringNet builds `pipes` independent token rings of `stages` places
// whose reachable space is the full product of ring positions — the
// same family as the exploration benchmarks.
func ringNet(pipes, stages int) *petri.Net {
	n := petri.New(fmt.Sprintf("ring-%dx%d", pipes, stages))
	for p := 0; p < pipes; p++ {
		fuel := n.AddPlace(fmt.Sprintf("fuel%d", p), petri.PlaceChannel, 1)
		var ps []*petri.Place
		for s := 0; s < stages; s++ {
			init := 0
			if s == 0 {
				init = 1
			}
			ps = append(ps, n.AddPlace(fmt.Sprintf("r%d_%d", p, s), petri.PlaceInternal, init))
		}
		for s := 0; s < stages; s++ {
			t := n.AddTransition(fmt.Sprintf("t%d_%d", p, s), petri.TransNormal)
			n.AddArc(ps[s], t, 1)
			n.AddArcTP(t, ps[(s+1)%stages], 1)
			n.AddSelfLoop(fuel, t, 1)
		}
	}
	return n
}

// sourceNet is a small net with an uncontrollable source so the
// FireSources and MaxTokensPerPlace paths get exercised.
func sourceNet() *petri.Net {
	n := petri.New("src")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, b, 2)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p2, c, 1)
	return n
}

// requireSameReach asserts two ReachResults are byte-identical:
// identical marking numbering, edges and clip flags.
func requireSameReach(t *testing.T, label string, want, got *petri.ReachResult) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d states, want %d", label, got.Len(), want.Len())
	}
	if want.Truncated != got.Truncated {
		t.Fatalf("%s: truncated %v, want %v", label, got.Truncated, want.Truncated)
	}
	for id := 0; id < want.Len(); id++ {
		if !want.MarkingAt(petri.MarkID(id)).Equal(got.MarkingAt(petri.MarkID(id))) {
			t.Fatalf("%s: marking %d differs: %v vs %v", label, id,
				got.MarkingAt(petri.MarkID(id)), want.MarkingAt(petri.MarkID(id)))
		}
		if want.Clipped[id] != got.Clipped[id] {
			t.Fatalf("%s: clipped[%d] = %v, want %v", label, id, got.Clipped[id], want.Clipped[id])
		}
		we, ge := want.Edges[id], got.Edges[id]
		if len(we) != len(ge) {
			t.Fatalf("%s: state %d has %d edges, want %d", label, id, len(ge), len(we))
		}
		for k := range we {
			if we[k] != ge[k] {
				t.Fatalf("%s: state %d edge %d = %+v, want %+v", label, id, k, ge[k], we[k])
			}
		}
	}
}

// TestExploreDistPipe: distributed exploration over 1..4 pipe workers
// reproduces the serial ReachResult byte-for-byte on a product-space
// net, with and without source firing and truncation.
func TestExploreDistPipe(t *testing.T) {
	cases := []struct {
		name string
		net  *petri.Net
		opt  petri.ExploreOptions
	}{
		{"ring-3x4", ringNet(3, 4), petri.ExploreOptions{MaxMarkings: 100}},
		{"ring-2x5-exhaustive", ringNet(2, 5), petri.ExploreOptions{MaxMarkings: 1000}},
		{"source-capped", sourceNet(), petri.ExploreOptions{MaxMarkings: 500, MaxTokensPerPlace: 4, FireSources: true}},
		{"source-budget", sourceNet(), petri.ExploreOptions{MaxMarkings: 7, MaxTokensPerPlace: 6, FireSources: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.net.Explore(tc.opt)
			for _, mode := range []struct {
				name string
				wopt WorkerOptions
			}{
				{"trimmed", WorkerOptions{}},
				{"full", WorkerOptions{FullReplicas: true}},
			} {
				for _, workers := range []int{1, 2, 4} {
					p := pipePool(t, workers, mode.wopt)
					got, err := tc.net.ExploreDist(p, tc.opt)
					if err != nil {
						t.Fatalf("ExploreDist(%d %s workers): %v", workers, mode.name, err)
					}
					requireSameReach(t, fmt.Sprintf("%d %s workers", workers, mode.name), want, got)
					st := p.LastSessionStats()
					if st.States != want.Len() || st.Levels == 0 {
						t.Fatalf("session stats %+v inconsistent with %d states", st, want.Len())
					}
					if wantTrim := !mode.wopt.FullReplicas; st.Trimmed != wantTrim {
						t.Fatalf("session ran trimmed=%v, worker capability asked %v", st.Trimmed, wantTrim)
					}
					if len(st.Workers) != workers {
						t.Fatalf("stats carry %d workers, pool has %d", len(st.Workers), workers)
					}
					held := 0
					for w, wm := range st.Workers {
						if wm.StoreBytes <= 0 {
							t.Fatalf("worker %d reported no store bytes: %+v", w, wm)
						}
						if !st.Trimmed && wm.States != want.Len() {
							t.Fatalf("full-replica worker %d holds %d states, want %d", w, wm.States, want.Len())
						}
						held += wm.States
					}
					if st.Trimmed && held != want.Len() {
						t.Fatalf("trimmed workers hold %d states in total, store has %d", held, want.Len())
					}
				}
			}
		})
	}
}

// TestPoolSessionReuse: one pool serves several explorations in
// sequence (the batch drivers synthesize many apps over one pool).
func TestPoolSessionReuse(t *testing.T) {
	p := pipePool(t, 2, WorkerOptions{})
	nets := []*petri.Net{ringNet(2, 3), sourceNet(), ringNet(1, 6)}
	for i, n := range nets {
		opt := petri.ExploreOptions{MaxMarkings: 200, MaxTokensPerPlace: 3, FireSources: true}
		want := n.Explore(opt)
		got, err := n.ExploreDist(p, opt)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		requireSameReach(t, fmt.Sprintf("session %d", i), want, got)
	}
}

// TestPoolPoisoned: an infrastructure failure (worker connection dies
// mid-session) surfaces as an error and poisons the pool for later
// sessions instead of silently mis-exploring.
func TestPoolPoisoned(t *testing.T) {
	p := &Pool{logw: newLogWriter("coord")}
	cs, ws := net.Pipe()
	go func() {
		c := newConn(ws)
		c.sendHello(protoVersion, 0, 0)
		c.recv() // init
		ws.Close()
	}()
	c := newConn(cs)
	payload, err := c.expect(msgHello)
	if err == nil {
		_, _, _, err = checkHello(payload)
	}
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	p.workers = append(p.workers, c)
	p.wantFull = append(p.wantFull, false)
	p.vers = append(p.vers, protoVersion)
	n := ringNet(2, 3)
	if _, err := n.ExploreDist(p, petri.ExploreOptions{MaxMarkings: 100}); err == nil {
		t.Fatal("want error from dying worker")
	}
	if _, err := n.ExploreDist(p, petri.ExploreOptions{MaxMarkings: 100}); err == nil {
		t.Fatal("want poisoned-pool error on reuse")
	}
}

// TestRotatingLogFile: a file-backed dist log rolls to <name>.1 at the
// size cap instead of growing without bound, keeping at most two
// generations — with the cap enforced per FILE even when several
// logWriters in one process share the path (every in-process pipe
// worker logs under the same pid).
func TestRotatingLogFile(t *testing.T) {
	path := t.TempDir() + "/worker-1.log"
	f, err := logFileFor(path)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := logFileFor(path); err != nil || again != f {
		t.Fatalf("second logFileFor(%q) = %p, %v; want the shared instance %p", path, again, err, f)
	}
	line := make([]byte, 1<<10)
	for i := range line {
		line[i] = 'x'
	}
	// Write ~2.5 caps worth: two rotations.
	for written := 0; written <= logFileCap*5/2; written += len(line) {
		if _, err := f.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > logFileCap {
		t.Fatalf("current generation is %dB, cap is %dB", st.Size(), logFileCap)
	}
	old, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rollover generation missing: %v", err)
	}
	if old.Size() > logFileCap {
		t.Fatalf("rolled generation is %dB, cap is %dB", old.Size(), logFileCap)
	}
}

// TestShardHelpers: the extracted shard functions agree with the
// ShardedStore's routing and cover every worker.
func TestShardHelpers(t *testing.T) {
	for _, shards := range []int{2, 8, 64, 256} {
		st := petri.NewShardedStore(4, shards)
		for i := 0; i < 1000; i++ {
			m := petri.Marking{i & 3, i >> 2 & 7, i >> 5, 1}
			h := petri.HashMarking(m)
			if got, want := petri.ShardOfHash(h, st.NumShards()), st.ShardOf(h); got != want {
				t.Fatalf("ShardOfHash(%d shards) = %d, ShardedStore says %d", shards, got, want)
			}
		}
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		S := petri.NumFrontierShards(workers)
		if S&(S-1) != 0 || (workers <= 64 && S < workers) {
			t.Fatalf("NumFrontierShards(%d) = %d not a usable power of two", workers, S)
		}
		covered := make([]bool, workers)
		for s := 0; s < S; s++ {
			ow := petri.ShardOwner(uint32(s), S, workers)
			if ow < 0 || ow >= workers {
				t.Fatalf("ShardOwner(%d, %d, %d) = %d out of range", s, S, workers, ow)
			}
			covered[ow] = true
		}
		for w, ok := range covered {
			if !ok {
				t.Fatalf("worker %d owns no shard of %d/%d", w, S, workers)
			}
		}
		// OwnedShardRange must be the exact inverse of ShardOwner: shard
		// s belongs to w's range iff ShardOwner says w.
		for w := 0; w < workers; w++ {
			lo, hi := petri.OwnedShardRange(w, S, workers)
			for s := 0; s < S; s++ {
				in := s >= lo && s < hi
				if owns := petri.ShardOwner(uint32(s), S, workers) == w; owns != in {
					t.Fatalf("OwnedShardRange(%d, %d, %d) = [%d,%d) disagrees with ShardOwner at shard %d",
						w, S, workers, lo, hi, s)
				}
			}
		}
	}
}
