package codegen

import "testing"

func TestFig15Threads(t *testing.T) {
	task := fig8Task(t)
	threads := task.Threads()
	// Two await nodes (markings 0 and p3) -> two threads.
	if len(threads) != 2 {
		t.Fatalf("threads = %d, want 2 (Figure 15)", len(threads))
	}
	// Identify the threads by their starting marking.
	var th1, th2 *Thread
	for i := range threads {
		if threads[i].Start.Marking.Total() == 0 {
			th1 = &threads[i]
		} else {
			th2 = &threads[i]
		}
	}
	if th1 == nil || th2 == nil {
		t.Fatalf("could not identify TH1/TH2: %+v", threads)
	}
	segLabel := func(idx int) string { return task.Segments[idx].Label }
	has := func(th *Thread, label string) bool {
		for _, s := range th.Segments {
			if segLabel(s) == label {
				return true
			}
		}
		return false
	}
	// TH1 (from the initial marking): cs1 and cs3 only — the reaction
	// either returns directly (b,d) or parks at p3 (c).
	if !has(th1, "a") || !has(th1, "bc") {
		t.Errorf("TH1 should contain segments a and bc: %+v", th1.Segments)
	}
	if has(th1, "e") {
		t.Errorf("TH1 should not reach segment e")
	}
	// TH2 (from p3): passes through cs2 (e) as in Figure 15.
	if !has(th2, "a") || !has(th2, "bc") || !has(th2, "e") {
		t.Errorf("TH2 should contain a, bc and e: %+v", th2.Segments)
	}
	// TH2 has a bc -> e edge (the goto e of Figure 16).
	var bcIdx, eIdx int
	for _, seg := range task.Segments {
		switch seg.Label {
		case "bc":
			bcIdx = seg.Index
		case "e":
			eIdx = seg.Index
		}
	}
	found := false
	for _, e := range th2.Edges {
		if e == [2]int{bcIdx, eIdx} {
			found = true
		}
	}
	if !found {
		t.Errorf("TH2 edges %v missing bc->e", th2.Edges)
	}
}
