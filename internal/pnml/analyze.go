package pnml

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"repro/internal/petri"
)

// AnalyzeOptions selects the exploration strategy for an imported net.
// The zero value explores serially with the explorer's default budget.
type AnalyzeOptions struct {
	// MaxMarkings bounds the number of distinct markings explored
	// (0 = the explorer's default).
	MaxMarkings int
	// MaxTokensPerPlace prunes markings where any place exceeds this
	// count (0 = no cap). Imported nets are under no FlowC discipline,
	// so unbounded nets need the cap to terminate; a truncated result
	// reports the place that grew as a witness of unboundedness.
	MaxTokensPerPlace int
	// Workers >= 2 explores each BFS level with the in-process parallel
	// frontier.
	Workers int
	// Dist shards the exploration across the runner's worker processes
	// (an *internal/dist.Pool satisfies petri.FrontierRunner).
	// Contradicts Workers >= 2; callers validate before reaching here.
	Dist petri.FrontierRunner
	// FreezeLevels moves closed BFS levels to on-disk delta segments.
	FreezeLevels bool
}

// Analysis is the reachability and bound report for one imported net.
// Every field is a deterministic function of the net and the options —
// independent of the execution strategy — which is what the
// pnml-conformance matrix pins.
type Analysis struct {
	Net   *petri.Net
	Reach *petri.ReachResult
	// Bounds is the per-place maximum token count over the explored
	// states (exact when Reach.Truncated is false, lower bounds
	// otherwise).
	Bounds []int
	// Deadlocks counts explored markings with no outgoing firing.
	Deadlocks int
	// Edges counts the recorded reachability edges.
	Edges int
	// Fingerprint condenses the full ReachResult — markings in MarkID
	// order, edges, clip flags, truncation — into a hex SHA-256.
	Fingerprint string
}

// Analyze explores the net from its initial marking with every
// transition fireable (imported nets carry no controllability
// information, so structural sources fire like any other transition)
// and derives the bound/deadlock report.
func Analyze(n *petri.Net, opt AnalyzeOptions) (*Analysis, error) {
	eopt := petri.ExploreOptions{
		MaxMarkings:       opt.MaxMarkings,
		MaxTokensPerPlace: opt.MaxTokensPerPlace,
		FireSources:       true,
		Workers:           opt.Workers,
		FreezeLevels:      opt.FreezeLevels,
	}
	var (
		r   *petri.ReachResult
		err error
	)
	if opt.Dist != nil {
		r, err = n.ExploreDist(opt.Dist, eopt)
		if err != nil {
			return nil, fmt.Errorf("pnml: distributed exploration: %w", err)
		}
	} else {
		r = n.Explore(eopt)
	}
	return &Analysis{
		Net:         n,
		Reach:       r,
		Bounds:      r.PlaceBounds(),
		Deadlocks:   len(r.DeadlockMarkings()),
		Edges:       countEdges(r),
		Fingerprint: Fingerprint(r),
	}, nil
}

func countEdges(r *petri.ReachResult) int {
	total := 0
	for _, es := range r.Edges {
		total += len(es)
	}
	return total
}

// Fingerprint hashes everything a ReachResult determines: the marking
// vectors in MarkID order, the edge lists (transition and successor),
// the per-state clip flags and the truncation bit. Two explorations
// agree on the fingerprint exactly when they produced byte-identical
// results — the conformance matrix compares these across serial,
// parallel-frontier, distributed and frozen runs.
func Fingerprint(r *petri.ReachResult) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeInt(r.Len())
	if r.Truncated {
		writeInt(1)
	} else {
		writeInt(0)
	}
	for id := 0; id < r.Len(); id++ {
		for _, v := range r.MarkingAt(petri.MarkID(id)) {
			writeInt(v)
		}
		if r.Clipped[id] {
			writeInt(1)
		} else {
			writeInt(0)
		}
		writeInt(len(r.Edges[id]))
		for _, e := range r.Edges[id] {
			writeInt(e.Trans)
			writeInt(int(e.To))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AnalyzeFile parses the PNML document at path and analyzes it.
func AnalyzeFile(path string, opt AnalyzeOptions) (*Analysis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pnml: %w", err)
	}
	defer f.Close()
	n, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return Analyze(n, opt)
}

// Report prints the human-readable analysis summary the -pnml command
// modes emit: net shape, state/edge counts, truncation, deadlocks, the
// bound of every place (with the imported place name), and the
// fingerprint for cross-configuration comparison.
func (a *Analysis) Report(w io.Writer, verbose bool) {
	n, r := a.Net, a.Reach
	fmt.Fprintf(w, "net %s: %d places, %d transitions\n", n.Name, len(n.Places), len(n.Transitions))
	status := "complete"
	if r.Truncated {
		status = "truncated (budget or token cap hit; bounds are lower bounds)"
	}
	fmt.Fprintf(w, "reachability: %d states, %d edges, %s\n", r.Len(), a.Edges, status)
	fmt.Fprintf(w, "deadlocks: %d\n", a.Deadlocks)
	maxBound, maxPlace := -1, -1
	for p, b := range a.Bounds {
		if b > maxBound {
			maxBound, maxPlace = b, p
		}
	}
	if maxPlace >= 0 {
		fmt.Fprintf(w, "max place bound: %d at %s\n", maxBound, n.Places[maxPlace].Name)
	}
	if verbose {
		for p, b := range a.Bounds {
			fmt.Fprintf(w, "  bound %-24s %d\n", n.Places[p].Name, b)
		}
	}
	fmt.Fprintf(w, "fingerprint: %s\n", a.Fingerprint)
}
