package petri

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
)

// Frozen-level tier of the MarkingStore. A level-synchronous BFS never
// expands a state twice: once a level is fully merged, its token
// vectors are touched only by dedup probes (hash collisions), schedule
// extraction and diagnostics. Keeping them hot forever makes the arena
// the scaling wall of large explorations. FreezeThrough evicts the
// vectors of closed levels into an append-only, delta-compressed
// segment file — one record per state, holding either the verbatim
// vector (roots, or states whose provenance the caller cannot name) or
// just (parent-id gap, transition): the child vector is the parent's
// plus the transition's net token effect, the same reconstruction
// insight the dist wire format exploits. Hot memory for a frozen state
// is its hash (8B), probe-table slot (4B) and segment offset (8B) —
// independent of the number of places.
//
// Reads go through At unchanged: a frozen id is thawed on demand by
// walking the parent chain down to a hot state, a cached vector or a
// verbatim record, then replaying the transition deltas forward. A
// small FIFO-evicted cache of thawed vectors (plus every
// thawCacheStride-th ancestor of a long walk) keeps repeated probes of
// the same cold region cheap. Thawed views are ordinary heap slices:
// like arena views they stay valid for as long as the caller holds
// them, even after cache eviction.
//
// Freezing happens strictly after dense MarkID assignment, so state
// numbering — and everything derived from it — is byte-identical with
// and without the tier.

// PlaceDelta is one entry of a transition's sparse token effect: firing
// the transition changes place Place by Delta tokens.
type PlaceDelta struct {
	Place int32
	Delta int32
}

// TokenDeltas returns, per transition, the net token effect of one
// firing as a sparse place list (postset minus preset, self-loops
// cancelled), ascending by place. child = parent + deltas[trans] for
// any firing, which is what lets a frozen segment reconstruct a state
// from (parent, transition) alone.
func (n *Net) TokenDeltas() [][]PlaceDelta {
	out := make([][]PlaceDelta, len(n.Transitions))
	acc := map[int]int{}
	for ti, t := range n.Transitions {
		clear(acc)
		for _, a := range t.In {
			acc[a.Place] -= a.Weight
		}
		for _, a := range t.Out {
			acc[a.Place] += a.Weight
		}
		var ds []PlaceDelta
		for p, d := range acc {
			if d != 0 {
				ds = append(ds, PlaceDelta{Place: int32(p), Delta: int32(d)})
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Place < ds[j].Place })
		out[ti] = ds
	}
	return out
}

// FreezeProv names the provenance of one interned state for delta
// encoding: the state's vector equals At(Parent) plus the token deltas
// of Trans. Parent == NoMark (or a parent that is not an earlier id)
// stores the vector verbatim instead — roots, and states whose
// first-discovery parent the caller no longer knows.
type FreezeProv struct {
	Parent MarkID
	Trans  int32
}

// FreezeConfig configures a store's frozen tier.
type FreezeConfig struct {
	// Deltas is the per-transition sparse token effect, as returned by
	// Net.TokenDeltas on the net whose markings the store interns.
	// Required: reconstruction applies these without consulting the net.
	Deltas [][]PlaceDelta
	// Dir is where the segment file is created ("" = os.TempDir()). On
	// platforms that allow it the file is unlinked immediately after
	// creation, so it never outlives the process.
	Dir string
	// ThawCap bounds the thawed-vector cache (0 = 256 entries).
	ThawCap int
}

// FreezeWindow buffers per-state provenance between level commits: the
// explorer appends one FreezeProv per interned state (in MarkID order)
// and drops everything below the frozen boundary after each
// FreezeThrough, so the window's footprint is the unfrozen tail, not
// the whole exploration.
type FreezeWindow struct {
	base int
	prov []FreezeProv
}

// Append records the provenance of the next interned state.
func (w *FreezeWindow) Append(p FreezeProv) { w.prov = append(w.prov, p) }

// Prov returns the provenance of state id; id must be at or above the
// last Drop boundary.
func (w *FreezeWindow) Prov(id MarkID) FreezeProv { return w.prov[int(id)-w.base] }

// Drop releases the provenance of states below end (typically the new
// frozen boundary).
func (w *FreezeWindow) Drop(end int) {
	if end <= w.base {
		return
	}
	keep := w.prov[end-w.base:]
	nw := make([]FreezeProv, len(keep))
	copy(nw, keep)
	w.prov, w.base = nw, end
}

// StoreMem is the unified store-memory accounting: exact live byte
// counts, pure functions of the interned marking sequence and the
// frozen boundary, so values compare byte-for-byte across processes
// and machines (the property CI's memory gates rely on).
type StoreMem struct {
	// HotBytes is everything resident: the hot token arena, all hashes,
	// the probe table, and the frozen tier's per-state segment offsets.
	HotBytes int64
	// FrozenBytes is the length of the on-disk delta segment.
	FrozenBytes int64
}

// Total is hot plus frozen bytes.
func (m StoreMem) Total() int64 { return m.HotBytes + m.FrozenBytes }

// Segment record tags.
const (
	frozenVerbatim = 0 // tag, then places token uvarints
	frozenDelta    = 1 // tag, then uvarint(id-parent), uvarint(trans)
)

// thawCacheStride: a long reconstruction walk caches every so-many-th
// ancestor alongside the requested vector, so later probes into the
// same cold region restart from a nearby cached state instead of the
// chain's verbatim root.
const thawCacheStride = 16

// frozenTier is the cold half of a MarkingStore (see the file comment).
type frozenTier struct {
	end    int // ids [0, end) are frozen; mirrors MarkingStore.frozenEnd
	deltas [][]PlaceDelta
	offs   []int64 // offs[id] = segment offset of id's record
	size   int64   // segment length
	f      *os.File
	path   string // retained only when the unlink-after-create failed
	data   []byte // mmap of [0, size); nil = pread fallback
	noMmap bool
	wbuf   []byte // encode buffer reused across FreezeThrough calls

	// mu guards the thaw path: At on a frozen id is safe from any
	// number of goroutines (unlike interning and FreezeThrough, which
	// remain caller-serialized mutations).
	mu      sync.Mutex
	cache   map[MarkID]Marking
	fifo    []MarkID
	head    int
	cap     int
	scratch []byte // pread buffer
}

// release closes the tier's OS resources; registered as a finalizer so
// an abandoned store (e.g. the pre-fallback store of a failed dist
// session) cleans up without explicit Close plumbing.
func (fz *frozenTier) release() {
	if fz.data != nil {
		munmapSegment(fz.data)
		fz.data = nil
	}
	fz.f.Close()
	if fz.path != "" {
		os.Remove(fz.path)
	}
}

// FreezeEnabled reports whether EnableFreeze has been called.
func (s *MarkingStore) FreezeEnabled() bool { return s.frozen != nil }

// FrozenLen returns the number of frozen states (ids [0, FrozenLen())
// live in the segment, the rest in the hot arena).
func (s *MarkingStore) FrozenLen() int { return s.frozenEnd }

// EnableFreeze attaches a frozen tier to the store. Call before
// exploration (the tier must see every FreezeThrough from id 0);
// freezing an already-populated store is supported as long as nothing
// was frozen yet. Enabling costs one temp file; no state moves until
// FreezeThrough.
func (s *MarkingStore) EnableFreeze(cfg FreezeConfig) error {
	if s.frozen != nil {
		return fmt.Errorf("petri: freeze already enabled")
	}
	f, err := os.CreateTemp(cfg.Dir, "qss-frozen-*.seg")
	if err != nil {
		return fmt.Errorf("petri: freeze segment: %w", err)
	}
	fz := &frozenTier{
		deltas: cfg.Deltas,
		f:      f,
		cache:  map[MarkID]Marking{},
		cap:    cfg.ThawCap,
	}
	if fz.cap <= 0 {
		fz.cap = 256
	}
	// Unlink immediately where the OS allows reading an unlinked open
	// file, so a killed process leaks nothing; keep the path (and let
	// the finalizer remove it) elsewhere.
	if os.Remove(f.Name()) != nil {
		fz.path = f.Name()
	}
	runtime.SetFinalizer(fz, (*frozenTier).release)
	s.frozen = fz
	return nil
}

// FreezeThrough evicts states [FrozenLen(), end) from the hot arena
// into the segment. prov names each state's provenance (see
// FreezeProv); it is consulted once per newly frozen id, in order. The
// call is a mutation like Intern: serialize it against interning AND
// against concurrent readers. end is clamped to Len(); an end at or
// below the current boundary is a no-op, so level-commit call sites
// need no idempotence bookkeeping of their own. A store without
// EnableFreeze ignores the call entirely.
//
// Callers must only freeze CLOSED states — states whose outgoing edges
// are fully recorded and that no hot loop still holds an arena view
// of. Old views stay valid (the hot arena is compacted by copy, never
// mutated in place), but every later At of a frozen id pays the
// reconstruction walk.
func (s *MarkingStore) FreezeThrough(end int, prov func(MarkID) FreezeProv) error {
	fz := s.frozen
	if fz == nil {
		return nil
	}
	if end > s.Len() {
		end = s.Len()
	}
	if end <= s.frozenEnd {
		return nil
	}
	buf := fz.wbuf[:0]
	for id := s.frozenEnd; id < end; id++ {
		fz.offs = append(fz.offs, fz.size+int64(len(buf)))
		i := (id - s.frozenEnd) * s.places
		vec := s.tokens[i : i+s.places]
		p := prov(MarkID(id))
		if p.Parent != NoMark && int(p.Parent) < id && int(p.Trans) < len(fz.deltas) {
			buf = append(buf, frozenDelta)
			buf = binary.AppendUvarint(buf, uint64(id-int(p.Parent)))
			buf = binary.AppendUvarint(buf, uint64(p.Trans))
			continue
		}
		buf = append(buf, frozenVerbatim)
		for _, v := range vec {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	if _, err := fz.f.WriteAt(buf, fz.size); err != nil {
		fz.offs = fz.offs[:s.frozenEnd]
		fz.wbuf = buf[:0]
		return fmt.Errorf("petri: freeze segment write: %w", err)
	}
	fz.size += int64(len(buf))
	fz.wbuf = buf[:0]
	// Compact the hot arena: copy the unfrozen tail into a fresh
	// backing array. Outstanding views into the old array stay valid —
	// its contents never change — and the old array is collected once
	// the last view is dropped.
	tail := s.tokens[(end-s.frozenEnd)*s.places:]
	nt := make([]int, len(tail))
	copy(nt, tail)
	s.tokens = nt
	s.frozenEnd = end
	fz.end = end
	fz.remap()
	return nil
}

// remap re-mmaps the grown segment; on the first failure (or on
// platforms without mmap) the tier falls back to pread permanently.
func (fz *frozenTier) remap() {
	if fz.noMmap {
		return
	}
	if fz.data != nil {
		munmapSegment(fz.data)
		fz.data = nil
	}
	data, err := mmapSegment(fz.f, fz.size)
	if err != nil {
		fz.noMmap = true
		return
	}
	fz.data = data
}

// record returns the raw segment record of a frozen id, from the mmap
// when available, via pread otherwise. Callers hold fz.mu (the pread
// scratch buffer is shared).
func (fz *frozenTier) record(id MarkID) []byte {
	off := fz.offs[id]
	end := fz.size
	if int(id)+1 < len(fz.offs) {
		end = fz.offs[id+1]
	}
	if fz.data != nil && end <= int64(len(fz.data)) {
		return fz.data[off:end]
	}
	n := int(end - off)
	if cap(fz.scratch) < n {
		fz.scratch = make([]byte, n)
	}
	b := fz.scratch[:n]
	if _, err := fz.f.ReadAt(b, off); err != nil {
		panic(fmt.Sprintf("petri: frozen segment read at %d: %v", off, err))
	}
	return b
}

// insert adds a thawed vector to the cache, evicting FIFO at capacity.
// Callers hold fz.mu.
func (fz *frozenTier) insert(id MarkID, v Marking) {
	if _, ok := fz.cache[id]; ok {
		return
	}
	if len(fz.cache) >= fz.cap {
		old := fz.fifo[fz.head]
		delete(fz.cache, old)
		fz.fifo[fz.head] = id
		fz.head = (fz.head + 1) % fz.cap
	} else {
		fz.fifo = append(fz.fifo, id)
	}
	fz.cache[id] = v
}

// thawLink is one delta step of a reconstruction walk.
type thawLink struct {
	id    MarkID
	trans int32
}

// thaw reconstructs a frozen state's vector: walk the provenance chain
// down until a hot state, a cached vector or a verbatim record, then
// replay the transition deltas forward, caching the result (and, on
// long walks, periodic ancestors). Corruption of the segment — which
// the process itself wrote this session — panics like any other store
// invariant violation.
func (fz *frozenTier) thaw(s *MarkingStore, id MarkID) Marking {
	fz.mu.Lock()
	defer fz.mu.Unlock()
	if v, ok := fz.cache[id]; ok {
		return v
	}
	var chain []thawLink
	var base Marking
	cur := id
	for {
		if int(cur) >= fz.end {
			i := (int(cur) - s.frozenEnd) * s.places
			base = Marking(s.tokens[i : i+s.places : i+s.places])
			break
		}
		if v, ok := fz.cache[cur]; ok {
			base = v
			break
		}
		rec := fz.record(cur)
		if len(rec) == 0 {
			panic(fmt.Sprintf("petri: empty frozen record for state %d", cur))
		}
		if rec[0] == frozenVerbatim {
			v := make(Marking, s.places)
			b := rec[1:]
			for i := range v {
				t, n := binary.Uvarint(b)
				if n <= 0 {
					panic(fmt.Sprintf("petri: corrupt verbatim record for state %d", cur))
				}
				v[i], b = int(t), b[n:]
			}
			fz.insert(cur, v)
			if cur == id {
				return v
			}
			base = v
			break
		}
		b := rec[1:]
		gap, n := binary.Uvarint(b)
		if n <= 0 || gap == 0 || uint64(cur) < gap {
			panic(fmt.Sprintf("petri: corrupt delta record for state %d", cur))
		}
		trans, n2 := binary.Uvarint(b[n:])
		if n2 <= 0 || int(trans) >= len(fz.deltas) {
			panic(fmt.Sprintf("petri: corrupt delta record for state %d", cur))
		}
		chain = append(chain, thawLink{id: cur, trans: int32(trans)})
		cur -= MarkID(gap)
	}
	buf := make(Marking, s.places)
	copy(buf, base)
	for i := len(chain) - 1; i >= 0; i-- {
		for _, d := range fz.deltas[chain[i].trans] {
			buf[d.Place] += int(d.Delta)
		}
		if depth := len(chain) - 1 - i; i == 0 || depth%thawCacheStride == thawCacheStride-1 {
			v := make(Marking, s.places)
			copy(v, buf)
			fz.insert(chain[i].id, v)
			if i == 0 {
				return v
			}
		}
	}
	return buf // unreachable: the i == 0 iteration above always returns
}
