// Falsepaths: Section 7.2 of the paper. The plain rate-matched process
// pair is functionally fine but quasi-statically unschedulable — the
// Petri net abstraction loses the loop-bound correlation and every
// schedule hits a false overflow path. Rewriting the consumer with a
// SELECT-based drain loop (and an explicit end-of-burst token) makes the
// pair schedulable; the scheduler then merges the two loops into one
// sequential task, as the paper shows.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	fmt.Println("== plain pair (counted loops on both sides) ==")
	if _, err := apps.TryFalsePathPlain(); err != nil {
		fmt.Printf("rejected, as the paper predicts:\n  %v\n\n", err)
	} else {
		fmt.Println("unexpectedly schedulable!")
		os.Exit(1)
	}

	fmt.Println("== SELECT-fixed pair (Section 7.2 transformation) ==")
	res, err := apps.SynthesizeFalsePathFixed()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixed pair failed to schedule:", err)
		os.Exit(1)
	}
	s := res.Schedules[0]
	fmt.Printf("schedulable: %d schedule nodes, %d segments, channel bounds C0=%d D0=%d\n",
		len(s.Nodes), len(res.Tasks[0].Segments),
		res.ChannelBound("C0"), res.ChannelBound("D0"))

	fmt.Println("\n---- merged-loop task (cf. the paper's synthesized copy loops) ----")
	fmt.Print(res.Code[res.Tasks[0].Name])

	// Execute: each trigger g makes A write g, g+1, ..., g+9; B sums
	// them and emits the total.
	te, err := sim.NewTaskExec(res.Sys, res.Tasks[0], sim.PFC)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, g := range []int64{0, 100} {
		if err := te.Trigger(g); err != nil {
			fmt.Fprintln(os.Stderr, "trigger failed:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nexecution: res=%v (want [45 1045])\n", te.Output("res").Vals)
}
