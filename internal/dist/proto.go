package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/petri"
)

// Length-prefixed binary framing. Every message is a 4-byte
// little-endian payload length, a 1-byte type, and the payload —
// varint-encoded via the petri wire helpers. At protocol 2 the exchange
// is strictly coordinator-driven (workers speak only when spoken to:
// hello on connect, one result per expand). Protocol 3 pipelines: the
// coordinator streams record batches and level commits while workers
// stream candidate chunks back, with a credit window (msgAck) bounding
// the chunks in flight — the coordinator's per-connection reader
// goroutine plus that window is what keeps both directions draining
// and rules out write-write deadlock.

const (
	protoMagic = "qssd"
	// Version 3: candidate streams travel as flow-controlled chunks
	// (msgChunk/msgAck) instead of one result per level, store records
	// stream during the previous level's merge (msgRecords) with an
	// explicit level commit (msgLevel), and every candNew candidate
	// carries the successor's 64-bit hash so the coordinator classifies
	// without re-firing. Workers hello with the highest version they
	// speak; the coordinator picks the pool minimum per session and
	// announces it in a leading init field (version-3 init layout only).
	//
	// Version 4: failover. Liveness is probed with msgPing/msgPong and
	// read/write deadlines, and a session survives worker death: the
	// coordinator re-inits the pool with empty roots, rebuilds each
	// replica by a msgRestore bulk load (the states at or past the
	// failed level, streamed from the authoritative store), and resumes
	// the merge at the last committed level. The session wire layout is
	// otherwise identical to version 3.
	protoVersion = 4
	// protoVersionMin is the oldest worker hello still accepted.
	// Version 2: per-level barrier (msgExpand/msgResult round trips),
	// hash-less candNew. A mixed pool downgrades every session to 2.
	protoVersionMin = 2
	// maxFrame bounds a single message payload; a protocol-2 level
	// candidate stream is the largest message and stays far below this
	// for any exploration that fits in memory.
	maxFrame = 1 << 30
)

// Message types.
const (
	msgHello  byte = 1 // worker -> coordinator, on connect
	msgInit   byte = 2 // coordinator -> worker, session start
	msgExpand byte = 3 // coordinator -> worker, one level (protocol 2)
	msgResult byte = 4 // worker -> coordinator, one level's candidates (protocol 2)
	msgDone   byte = 5 // coordinator -> worker, session end
	msgStats  byte = 7 // worker -> coordinator, reply to done
	msgError  byte = 6 // either direction, carries a message string

	// Protocol 3: the pipelined session.
	msgRecords byte = 8  // coordinator -> worker, store records of the level being built (streamed mid-merge)
	msgLevel   byte = 9  // coordinator -> worker, commits the recorded level's [start, end) id range
	msgAck     byte = 10 // coordinator -> worker, returns chunk credits consumed by the merge
	msgChunk   byte = 11 // worker -> coordinator, a slice of the candidate stream

	// Protocol 4: failover.
	msgPing    byte = 12 // coordinator -> worker, liveness probe while awaiting a frame
	msgPong    byte = 13 // worker -> coordinator, reply to ping
	msgRestore byte = 14 // coordinator -> worker, bulk replica rebuild after a re-init
)

// Protocol-3 pipelining parameters. Both sides hard-code them: the
// worker enforces the chunk target and window on its sends, the
// coordinator sizes its per-connection reader channel so a conforming
// worker's frames never block the reader.
const (
	// chunkTarget is the worker-side flush threshold for candidate
	// chunks. A worker also flushes a smaller partial chunk whenever it
	// has expanded everything it holds, so the coordinator's merge is
	// never left waiting on buffered bytes.
	chunkTarget = 16 << 10
	// chunkWindow is the credit window: a worker may have at most this
	// many unacknowledged chunks in flight and parks its expansion
	// cursor (while continuing to read) when the window is exhausted.
	chunkWindow = 8
	// recordFlush is the coordinator-side record-batch flush threshold,
	// in records: the pipelining grain at which workers may start
	// expanding their slice of level L+1 while the coordinator is still
	// merging the tail of L.
	recordFlush = 256
)

// Protocol-4 liveness parameters. Vars, not consts, so the failover
// tests can shrink them to milliseconds; production sessions run the
// defaults. Liveness means "the peer still answers", not "the peer
// makes progress": any received frame (a pong included) resets the
// coordinator's patience, so a worker legitimately grinding through a
// huge level is never declared dead as long as its serve loop drains
// pings between pumps.
var (
	// heartbeatInterval is how often the coordinator pings the one
	// worker whose frame the merge is currently awaiting.
	heartbeatInterval = 1 * time.Second
	// heartbeatTimeout declares the awaited worker dead when no frame
	// at all (chunk, pong, stats, error) arrives within it.
	heartbeatTimeout = 20 * time.Second
	// sendTimeout is the per-message write deadline on protocol-4
	// connections: a peer that stopped reading (socket buffer full)
	// fails the send instead of blocking the session forever.
	sendTimeout = 60 * time.Second
	// workerIdleTimeout is the worker-side read deadline within a
	// protocol-4 session — generous, because a coordinator merging a
	// huge level may legitimately go quiet toward a parked worker. It
	// is cleared at session end so an idle qssd worker survives
	// arbitrarily long gaps between sessions.
	workerIdleTimeout = 10 * time.Minute
)

// Hello capability flags.
const (
	// helloFullReplicas: the worker insists on full-replica sessions
	// (cmd/qssd -full-replicas); the coordinator downgrades the whole
	// pool, which changes memory and traffic but never results.
	helloFullReplicas = 1 << 0
)

// Candidate tags within a result stream.
const (
	candVeto  = 0 // successor beyond the spec caps
	candKnown = 1 // successor already interned in the replica
	candNew   = 2 // successor unknown to the replica; coordinator resolves
)

// deadliner is the subset of net.Conn the protocol-4 liveness layer
// needs; in-memory test transports without deadline support simply run
// without deadlines.
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// conn wraps a net.Conn with buffered framing and traffic accounting.
// readTimeout/writeTimeout, when non-zero, arm a per-operation deadline
// before every recv/send (protocol 4 only; a zero value leaves the
// connection deadline-free, which is the protocol <= 3 behavior).
type conn struct {
	rw           io.ReadWriteCloser
	br           *bufio.Reader
	bw           *bufio.Writer
	d            deadliner // nil when rw has no deadline support
	readTimeout  time.Duration
	writeTimeout time.Duration
	// Byte counters are atomic: the session goroutine reads them for
	// per-attempt accounting while a (possibly dying) link reader
	// goroutine is still receiving on the same conn.
	sent     atomic.Int64
	received atomic.Int64
	scratch  []byte
}

func newConn(rw io.ReadWriteCloser) *conn {
	c := &conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
	c.d, _ = rw.(deadliner)
	return c
}

func (c *conn) close() error { return c.rw.Close() }

// armRead arms (or, with timeout 0, clears) the read deadline ahead of
// a blocking read.
func (c *conn) armRead() {
	if c.d != nil && c.readTimeout != 0 {
		c.d.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
}

// clearRead drops any armed read deadline — called when a session ends
// so the next (possibly distant) session start is not cut off.
func (c *conn) clearRead() {
	c.readTimeout = 0
	if c.d != nil {
		c.d.SetReadDeadline(time.Time{})
	}
}

func (c *conn) armWrite() {
	if c.d != nil && c.writeTimeout != 0 {
		c.d.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
}

// clearWrite drops any armed write deadline at session end, so a stale
// absolute deadline cannot fail a later deadline-free session's writes.
func (c *conn) clearWrite() {
	c.writeTimeout = 0
	if c.d != nil {
		c.d.SetWriteDeadline(time.Time{})
	}
}

// send frames and flushes one message.
func (c *conn) send(typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: message type %d payload %d exceeds frame limit", typ, len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	c.armWrite()
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	c.sent.Add(int64(len(hdr)) + int64(len(payload)))
	return c.bw.Flush()
}

// recv reads one message into the connection's scratch buffer; the
// returned payload is valid until the next recv.
func (c *conn) recv() (byte, []byte, error) {
	var hdr [5]byte
	c.armRead()
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	if cap(c.scratch) < int(n) {
		c.scratch = make([]byte, n)
	}
	c.scratch = c.scratch[:n]
	if _, err := io.ReadFull(c.br, c.scratch); err != nil {
		return 0, nil, err
	}
	c.received.Add(int64(len(hdr)) + int64(n))
	return hdr[4], c.scratch, nil
}

// recvAlloc is recv into a fresh buffer — for the coordinator's
// per-connection reader goroutines, whose frames are queued and must
// outlive the next read.
func (c *conn) recvAlloc() (byte, []byte, error) {
	var hdr [5]byte
	c.armRead()
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	c.received.Add(int64(len(hdr)) + int64(n))
	return hdr[4], payload, nil
}

// expect receives one message and requires the given type; a msgError
// from the peer is surfaced as its carried error.
func (c *conn) expect(typ byte) ([]byte, error) {
	got, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	if got == msgError {
		return nil, fmt.Errorf("dist: peer error: %s", payload)
	}
	if got != typ {
		return nil, fmt.Errorf("dist: unexpected message type %d (want %d)", got, typ)
	}
	return payload, nil
}

// sendHello greets the coordinator. Version-4 hellos append the
// worker's pid, which lets a SpawnLocal pool map each accepted
// connection to the process behind it — the bookkeeping worker-kill
// fault injection and respawn recovery depend on.
func (c *conn) sendHello(version int, flags uint64, pid int) error {
	payload := binary.AppendUvarint([]byte(protoMagic), uint64(version))
	payload = binary.AppendUvarint(payload, flags)
	if version >= 4 {
		payload = binary.AppendUvarint(payload, uint64(pid))
	}
	return c.send(msgHello, payload)
}

func checkHello(payload []byte) (version int, flags uint64, pid int, err error) {
	if len(payload) < len(protoMagic) || string(payload[:len(protoMagic)]) != protoMagic {
		return 0, 0, 0, fmt.Errorf("dist: bad hello magic")
	}
	buf := payload[len(protoMagic):]
	v, n := binary.Uvarint(buf)
	if n <= 0 || v < protoVersionMin || v > protoVersion {
		return 0, 0, 0, fmt.Errorf("dist: protocol version %d (supported %d..%d)", v, protoVersionMin, protoVersion)
	}
	off := n
	var m int
	flags, m = binary.Uvarint(buf[off:])
	if m <= 0 {
		return 0, 0, 0, fmt.Errorf("dist: hello flags missing")
	}
	off += m
	if v >= 4 {
		p, m := binary.Uvarint(buf[off:])
		if m <= 0 {
			return 0, 0, 0, fmt.Errorf("dist: hello pid missing")
		}
		pid = int(p)
	}
	return int(v), flags, pid, nil
}

// initMsg is the decoded session-start payload. proto is the wire
// protocol this session speaks — a version-3 worker in a mixed pool is
// told 2 and runs the barrier session path of its older peers.
type initMsg struct {
	proto                  int
	index, workers, shards int
	trim                   bool
	net                    *petri.Net
	spec                   petri.ExpandSpec
	roots                  []petri.Marking
}

// appendInit encodes a session init in the layout the worker's hello
// version expects: version 3 adds a leading session-protocol field
// (the coordinator may pick protocol 2 for a mixed pool); a version-2
// worker gets the unchanged version-2 layout.
func appendInit(dst []byte, m *initMsg, helloVer int) []byte {
	if helloVer >= 3 {
		dst = binary.AppendUvarint(dst, uint64(m.proto))
	}
	dst = binary.AppendUvarint(dst, uint64(m.index))
	dst = binary.AppendUvarint(dst, uint64(m.workers))
	dst = binary.AppendUvarint(dst, uint64(m.shards))
	trim := uint64(0)
	if m.trim {
		trim = 1
	}
	dst = binary.AppendUvarint(dst, trim)
	dst = petri.AppendNet(dst, m.net)
	dst = binary.AppendUvarint(dst, uint64(len(m.spec.Mask)))
	for _, w := range m.spec.Mask {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.spec.Caps)))
	for _, cp := range m.spec.Caps {
		// Caps are >= -1; shift by one so "unbounded" encodes as 0.
		dst = binary.AppendUvarint(dst, uint64(cp+1))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.roots)))
	for _, r := range m.roots {
		dst = petri.AppendMarking(dst, r)
	}
	return dst
}

// decodeInit decodes a session init sent to a worker that helloed
// helloVer (see appendInit for the layout difference).
func decodeInit(buf []byte, helloVer int) (*initMsg, error) {
	m := &initMsg{proto: 2}
	var err error
	u := func() uint64 {
		var v uint64
		if err == nil {
			v, buf, err = decodeUvarint(buf)
		}
		return v
	}
	if helloVer >= 3 {
		m.proto = int(u())
		if err == nil && (m.proto < protoVersionMin || m.proto > protoVersion) {
			err = fmt.Errorf("session protocol %d out of range", m.proto)
		}
	}
	m.index, m.workers, m.shards = int(u()), int(u()), int(u())
	m.trim = u() != 0
	if err != nil {
		return nil, fmt.Errorf("dist: init header: %w", err)
	}
	if m.workers < 1 || m.index < 0 || m.index >= m.workers || m.shards < 1 {
		return nil, fmt.Errorf("dist: init header out of range (index %d, workers %d, shards %d)", m.index, m.workers, m.shards)
	}
	m.net, buf, err = petri.DecodeNet(buf)
	if err != nil {
		return nil, err
	}
	nm := u()
	if err == nil && nm*8 > uint64(len(buf)) {
		err = fmt.Errorf("mask length %d exceeds payload", nm)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init mask: %w", err)
	}
	m.spec.Mask = make([]uint64, nm)
	for i := range m.spec.Mask {
		m.spec.Mask[i] = binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
	}
	nc := u()
	if err == nil && nc > uint64(len(buf)) {
		err = fmt.Errorf("caps length %d exceeds payload", nc)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init caps: %w", err)
	}
	m.spec.Caps = make([]int, nc)
	for i := range m.spec.Caps {
		m.spec.Caps[i] = int(u()) - 1
	}
	nr := u()
	if err == nil && nr > uint64(len(buf)) {
		err = fmt.Errorf("root count %d exceeds payload", nr)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init roots: %w", err)
	}
	for i := uint64(0); i < nr; i++ {
		var r petri.Marking
		r, buf, err = petri.DecodeMarking(buf)
		if err != nil {
			return nil, fmt.Errorf("dist: init root %d: %w", i, err)
		}
		m.roots = append(m.roots, r)
	}
	return m, nil
}

// expandMsg is the decoded per-level payload: the frontier id range and
// the batch creating it (empty on the first level, whose states arrived
// as init roots). Full-replica sessions broadcast one Delta batch to
// every worker; trimmed sessions send each worker only the VecDelta
// records whose child it owns.
type expandMsg struct {
	start, end int
	deltas     []petri.Delta
	recs       []petri.VecDelta
}

func appendExpand(dst []byte, start, end int, deltas []petri.Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(start))
	dst = binary.AppendUvarint(dst, uint64(end))
	return petri.AppendDeltas(dst, deltas)
}

func appendExpandTrim(dst []byte, start, end int, recs []petri.VecDelta) []byte {
	dst = binary.AppendUvarint(dst, uint64(start))
	dst = binary.AppendUvarint(dst, uint64(end))
	return petri.AppendVecDeltas(dst, recs)
}

func decodeExpand(buf []byte, trim bool, deltas []petri.Delta, recs []petri.VecDelta) (*expandMsg, []petri.Delta, []petri.VecDelta, error) {
	s, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, deltas, recs, fmt.Errorf("dist: expand start: %w", err)
	}
	e, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, deltas, recs, fmt.Errorf("dist: expand end: %w", err)
	}
	if trim {
		recs, _, err = petri.DecodeVecDeltas(recs[:0], buf)
		if err != nil {
			return nil, deltas, recs, err
		}
		return &expandMsg{start: int(s), end: int(e), recs: recs}, deltas, recs, nil
	}
	deltas, _, err = petri.DecodeDeltas(deltas[:0], buf)
	if err != nil {
		return nil, deltas, recs, err
	}
	return &expandMsg{start: int(s), end: int(e), deltas: deltas}, deltas, recs, nil
}

// Protocol-3 payload helpers. msgRecords carries a bare record batch
// (petri.AppendVecDeltas for trimmed sessions — children named by
// global id — or petri.AppendDeltas for full replicas, children
// implicit in store order); msgChunk carries raw candidate-stream
// bytes, cut only at state-group boundaries; msgLevel commits the
// [start, end) global-id range of the level whose records finished
// streaming; msgAck returns consumed chunk credits.

func appendLevel(dst []byte, start, end int) []byte {
	dst = binary.AppendUvarint(dst, uint64(start))
	return binary.AppendUvarint(dst, uint64(end))
}

func decodeLevel(buf []byte) (start, end int, err error) {
	s, buf, err := decodeUvarint(buf)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: level start: %w", err)
	}
	e, _, err := decodeUvarint(buf)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: level end: %w", err)
	}
	return int(s), int(e), nil
}

// restoreMsg is the protocol-4 replica rebuild sent right after a
// recovery re-init (whose roots are empty): resumeFrom is the start of
// the level the merge will replay, bounds are the committed level
// starts plus the uncommitted level's start (the worker's pin table),
// and states are (global id, vector) pairs in ascending id order — a
// trimmed worker receives its owned states at or past resumeFrom, a
// full-replica worker the entire store.
type restoreMsg struct {
	resumeFrom int
	bounds     []int
	gids       []petri.MarkID
	vecs       []petri.Marking
}

func appendRestoreHeader(dst []byte, resumeFrom int, bounds []int, states int) []byte {
	dst = binary.AppendUvarint(dst, uint64(resumeFrom))
	dst = binary.AppendUvarint(dst, uint64(len(bounds)))
	for _, b := range bounds {
		dst = binary.AppendUvarint(dst, uint64(b))
	}
	return binary.AppendUvarint(dst, uint64(states))
}

func appendRestoreState(dst []byte, gid petri.MarkID, vec petri.Marking) []byte {
	dst = binary.AppendUvarint(dst, uint64(gid))
	return petri.AppendMarking(dst, vec)
}

func decodeRestore(buf []byte) (*restoreMsg, error) {
	m := &restoreMsg{}
	var err error
	u := func() uint64 {
		var v uint64
		if err == nil {
			v, buf, err = decodeUvarint(buf)
		}
		return v
	}
	m.resumeFrom = int(u())
	nb := u()
	if err == nil && nb > uint64(len(buf)) {
		err = fmt.Errorf("bound count %d exceeds payload", nb)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: restore header: %w", err)
	}
	m.bounds = make([]int, nb)
	for i := range m.bounds {
		m.bounds[i] = int(u())
	}
	ns := u()
	if err == nil && ns > uint64(len(buf)) {
		err = fmt.Errorf("state count %d exceeds payload", ns)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: restore bounds: %w", err)
	}
	for i := uint64(0); i < ns; i++ {
		g := u()
		if err != nil {
			return nil, fmt.Errorf("dist: restore state %d: %w", i, err)
		}
		var vec petri.Marking
		vec, buf, err = petri.DecodeMarking(buf)
		if err != nil {
			return nil, fmt.Errorf("dist: restore state %d: %w", i, err)
		}
		m.gids = append(m.gids, petri.MarkID(g))
		m.vecs = append(m.vecs, vec)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("dist: restore payload has %d trailing bytes", len(buf))
	}
	return m, nil
}

// WorkerMem is one worker's end-of-session replica accounting, shipped
// in the msgStats reply to done. Store, bits and cache bytes are exact
// live counts — pure functions of the interned sequence, comparable
// across processes and machines — which is what lets CI gate trimmed
// against full replicas with strict byte ratios. HeapBytes is the Go
// runtime's live-heap figure at session end: machine-dependent,
// informational only.
type WorkerMem struct {
	States     int   // markings held in the worker's store
	StoreBytes int64 // hot store bytes (MarkingStore.Mem().HotBytes) + the local->global id table (4B per held state when trimmed)
	BitsBytes  int64 // enabled-set arena (len * 8)
	CacheBytes int64 // boundary-parent vector cache payload
	HeapBytes  int64 // runtime.MemStats.HeapAlloc (informational)
	// FrozenBytes is the worker store's on-disk delta segment
	// (MarkingStore.Mem().FrozenBytes); 0 unless the worker runs with
	// WorkerOptions.FreezeLevels. Wire-optional: a worker predating the
	// frozen tier simply omits the field and decodes as 0.
	FrozenBytes int64
}

func appendStats(dst []byte, m WorkerMem) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.States))
	dst = binary.AppendUvarint(dst, uint64(m.StoreBytes))
	dst = binary.AppendUvarint(dst, uint64(m.BitsBytes))
	dst = binary.AppendUvarint(dst, uint64(m.CacheBytes))
	dst = binary.AppendUvarint(dst, uint64(m.HeapBytes))
	dst = binary.AppendUvarint(dst, uint64(m.FrozenBytes))
	return dst
}

func decodeStats(buf []byte) (WorkerMem, error) {
	var m WorkerMem
	var err error
	u := func() uint64 {
		var v uint64
		if err == nil {
			v, buf, err = decodeUvarint(buf)
		}
		return v
	}
	m.States = int(u())
	m.StoreBytes = int64(u())
	m.BitsBytes = int64(u())
	m.CacheBytes = int64(u())
	m.HeapBytes = int64(u())
	if len(buf) > 0 { // optional trailing field (older workers omit it)
		m.FrozenBytes = int64(u())
	}
	if err != nil {
		return WorkerMem{}, fmt.Errorf("dist: stats: %w", err)
	}
	return m, nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or overlong varint")
	}
	return v, buf[n:], nil
}

// logWriter is the shared, optionally file-backed logger: when
// QSS_DIST_LOGDIR is set, each process writes its own
// <role>-<pid>.log there (the CI determinism job uploads the directory
// on failure); otherwise output goes to the fallback writer — discard
// for coordinators and SpawnLocal workers (whose stderr is the
// parent's), stderr for the standalone qssd worker. File-backed logs
// are size-capped: a long test run (the determinism matrix reuses pids
// across hundreds of sessions) rotates <name>.log to <name>.log.1 at
// logFileCap bytes instead of growing without bound, keeping at most
// two generations per process.
type logWriter struct {
	l *log.Logger
}

// logFileCap is the per-generation size cap of a file-backed dist log.
const logFileCap = 4 << 20

// rotatingFile is an io.Writer appending to path until the current
// generation exceeds logFileCap, then renaming it to path+".1"
// (replacing the previous rollover) and starting fresh. One process
// may hold many logWriters on the same path (every in-process pipe
// worker and coordinator shares the pid), so instances are deduped per
// path (see logFileFor) and Write carries its own mutex: the cap and
// the rollover are per FILE, not per handle.
type rotatingFile struct {
	mu   sync.Mutex
	path string
	f    *os.File
	n    int64
}

// logFiles dedupes rotatingFile instances per path within the process.
var logFiles sync.Map // path -> *rotatingFile

func logFileFor(path string) (*rotatingFile, error) {
	if r, ok := logFiles.Load(path); ok {
		return r.(*rotatingFile), nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r := &rotatingFile{path: path, f: f}
	if st, err := f.Stat(); err == nil {
		r.n = st.Size()
	}
	if prev, loaded := logFiles.LoadOrStore(path, r); loaded {
		f.Close()
		return prev.(*rotatingFile), nil
	}
	return r, nil
}

func (r *rotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n+int64(len(p)) > logFileCap {
		r.f.Close()
		os.Rename(r.path, r.path+".1")
		f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, err
		}
		r.f, r.n = f, 0
	}
	n, err := r.f.Write(p)
	r.n += int64(n)
	return n, err
}

func newLogWriter(role string) *logWriter { return newLogWriterTo(role, io.Discard) }

func newLogWriterTo(role string, fallback io.Writer) *logWriter {
	w := fallback
	if dir := os.Getenv(EnvLogDir); dir != "" {
		f, err := logFileFor(filepath.Join(dir, fmt.Sprintf("%s-%d.log", role, os.Getpid())))
		if err == nil {
			w = f
		}
	}
	return &logWriter{l: log.New(w, fmt.Sprintf("dist %s %d: ", role, os.Getpid()), log.LstdFlags|log.Lmicroseconds)}
}

func (lw *logWriter) printf(format string, args ...any) {
	if lw != nil && lw.l != nil {
		lw.l.Printf(format, args...)
	}
}
