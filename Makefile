# CI entry points for the quasi-static synthesis repro.
#
#   make ci          — everything below, in order
#   make build       — compile all packages
#   make vet         — static analysis
#   make test        — unit, property and determinism tests under -race
#   make dist-matrix — the cross-process determinism matrix alone, with
#                      real spawned worker processes (also part of the
#                      race test suite; this target is the CI job's
#                      entry point and a focused local repro command)
#   make dist-memory — the trimmed-replica memory gate: per-worker
#                      store bytes <= 0.75x the full-replica baseline
#                      at 2 workers, plus the ~1/N scaling curve
#                      (exact live byte counts, machine-independent)
#   make store-frozen— the frozen store tier gate: the 161k-state
#                      ExploreLarge net byte-identical with closed
#                      levels frozen to on-disk delta segments, exact
#                      machine-independent hot-byte accounting with
#                      hot residency <= 0.35x the all-hot store, plus
#                      the freeze/thaw unit and determinism suite
#   make dist-chaos  — the seeded fault-injection matrix: heartbeat
#                      death detection, kill/sever/delay faults over
#                      pipe pools, and a real spawned worker SIGKILLed
#                      mid-session with respawn + msgRestore recovery —
#                      all asserting byte-identical output vs serial.
#                      QSS_CHAOS_SEED/QSS_CHAOS_ROUNDS widen the sweep
#   make server-smoke— build the real qss-server binary, start it, and
#                      exercise /healthz, /readyz, /metrics and a real
#                      /v1/synthesize whose returned C must be
#                      byte-identical to the golden files
#   make pnml-suite  — the PNML conformance matrix: every vendored
#                      interchange net under internal/pnml/testdata
#                      explored serial / parallel-frontier / spawned
#                      worker processes / frozen store, asserting
#                      byte-identical ReachResult fingerprints, plus
#                      the round-trip fixed point and the corpus
#                      export-reach property
#   make bench       — every benchmark once (shape assertions, no timing)
#   make benchgate   — benchmark-regression gate vs bench_baseline.json
#   make fuzz-smoke  — short-budget fuzz pass over all fuzz targets
#   make coverage    — race tests with a coverage profile; prints
#                      per-package totals and writes coverage.out
#   make baseline    — refresh bench_baseline.json on this machine

GO ?= go
FUZZTIME ?= 5s
BENCH_TOLERANCE ?= 0.20
BENCH_ALLOC_TOLERANCE ?= 0.20

.PHONY: ci build vet test dist-matrix dist-memory dist-chaos store-frozen server-smoke pnml-suite bench benchgate baseline fuzz-smoke coverage

ci: build vet test server-smoke pnml-suite bench benchgate fuzz-smoke

pnml-suite:
	$(GO) test -race -count=1 -v -run 'TestPNMLSuite|TestPNMLRoundTrip' ./internal/pnml
	$(GO) test -race -count=1 -v -run 'TestCorpusExportReach' ./internal/corpus

dist-matrix:
	$(GO) test -race -count=1 -v -run 'TestDeterminismMatrix|TestReachMatrix|TestCorpusSweepDist|TestCorpusSweepFrozen' ./internal/dist

dist-memory:
	$(GO) test -race -count=1 -v -run 'TestDistTrimmedMemoryGate|TestDistTrimmedMemoryScaling' ./internal/dist

store-frozen:
	$(GO) test -race -count=1 -v -run 'TestStoreFrozenGate' .
	$(GO) test -race -count=1 -v -run 'TestTokenDeltas|TestFreeze|TestExploreFreezeLevelsDeterminism' ./internal/petri

dist-chaos:
	$(GO) test -race -count=1 -v -run 'TestHelloPidRoundTrip|TestHeartbeatTimeout|TestChaosPipeMatrix|TestChaosSpawnedKill' ./internal/dist

server-smoke:
	$(GO) test -count=1 -v -run 'TestServerSmoke' ./cmd/qss-server

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

benchgate:
	$(GO) run ./cmd/benchdiff -tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

baseline:
	$(GO) run ./cmd/benchdiff -update

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/flowc
	$(GO) test -run='^$$' -fuzz=FuzzExplore -fuzztime=$(FUZZTIME) ./internal/petri
	$(GO) test -run='^$$' -fuzz=FuzzPNMLParse -fuzztime=$(FUZZTIME) ./internal/pnml

coverage:
	$(GO) test -race -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
