package apps

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestDivisorsSynthesis(t *testing.T) {
	r, err := SynthesizeDivisors()
	if err != nil {
		t.Fatalf("divisors: %v", err)
	}
	if len(r.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1", len(r.Tasks))
	}
	code := r.Code[r.Tasks[0].Name]
	if !strings.Contains(code, "divisors_n") {
		t.Errorf("generated code should use uniquified variable names:\n%s", code)
	}
}

func TestPixelPipeSynthesis(t *testing.T) {
	r, err := SynthesizePixelPipe()
	if err != nil {
		t.Fatalf("pixelpipe: %v", err)
	}
	// One task (single uncontrollable input), unit channel bounds.
	if len(r.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1", len(r.Tasks))
	}
	for _, name := range []string{"Pix", "Eol"} {
		if got := r.ChannelBound(name); got != 1 {
			t.Errorf("channel %s bound = %d, want 1 (unit-size buffers)", name, got)
		}
	}
	t.Logf("schedule nodes: %d (explored %d)", len(r.Schedules[0].Nodes), r.Schedules[0].Stats.NodesCreated)
}

func TestFalsePathPlainRejected(t *testing.T) {
	if _, err := TryFalsePathPlain(); err == nil {
		t.Fatalf("plain false-path pair should be rejected by the conservative scheduler")
	} else if !strings.Contains(err.Error(), sched.ErrNoSchedule.Error()) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestFalsePathFixedSchedulable(t *testing.T) {
	r, err := SynthesizeFalsePathFixed()
	if err != nil {
		t.Fatalf("fixed pair should schedule: %v", err)
	}
	t.Logf("schedule nodes: %d (explored %d)", len(r.Schedules[0].Nodes), r.Schedules[0].Stats.NodesCreated)
}

func TestPFCSynthesis(t *testing.T) {
	r, err := SynthesizePFC()
	if err != nil {
		t.Fatalf("pfc: %v", err)
	}
	if len(r.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1 (single uncontrollable input)", len(r.Tasks))
	}
	// The paper: "our proposed algorithm generated, in less than a
	// minute, a single task with all the channels of unit size."
	for _, ch := range r.Sys.Channels {
		if got := r.Bounds[ch.Place.ID]; got != 1 {
			t.Errorf("channel %s bound = %d, want 1", ch.Spec.Name, got)
		}
	}
	t.Logf("schedule nodes: %d (explored %d)", len(r.Schedules[0].Nodes), r.Schedules[0].Stats.NodesCreated)
	t.Logf("segments: %d", len(r.Tasks[0].Segments))
}

func TestMultiRateSynthesis(t *testing.T) {
	r, err := SynthesizeMultiRate()
	if err != nil {
		t.Fatalf("multirate: %v", err)
	}
	// The line channel must be sized for the 10-pixel burst.
	if got := r.ChannelBound("Line"); got != 10 {
		t.Errorf("Line bound = %d, want 10 (one full line)", got)
	}
	t.Logf("schedule nodes: %d", len(r.Schedules[0].Nodes))
}
