package repro

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 8), plus ablations of the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute cycle counts come from the calibrated cost models in
// internal/sim; the claims under test are the shapes: who wins, by what
// factor, and where the curves bend.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/petri"
	"repro/internal/sched"
	"repro/internal/sim"
)

var (
	pfcOnce sync.Once
	pfcRes  *core.Result
	pfcErr  error
)

func pfcSynth(b *testing.B) *core.Result {
	b.Helper()
	pfcOnce.Do(func() {
		pfcRes, pfcErr = apps.SynthesizePFC()
	})
	if pfcErr != nil {
		b.Fatalf("synthesize pfc: %v", pfcErr)
	}
	return pfcRes
}

var printOnce sync.Once

// BenchmarkFigure20 regenerates Figure 20: execution time of the 4-task
// implementation vs channel buffer size under the three compiler-option
// cost models, with the single-task points (row "task").
func BenchmarkFigure20(b *testing.B) {
	r := pfcSynth(b)
	caps := []int{1, 2, 5, 10, 20, 50, 100}
	var pts []sim.Fig20Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.Figure20(r, 10, caps)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce.Do(func() {
		sim.PrintFigure20(os.Stdout, pts)
	})
	// Shape assertions: monotone improvement with capacity; task wins.
	byModel := map[string][]sim.Fig20Point{}
	for _, p := range pts {
		byModel[p.Model] = append(byModel[p.Model], p)
	}
	for model, series := range byModel {
		var taskCycles int64
		for _, p := range series {
			if p.Capacity == 0 {
				taskCycles = p.Cycles
			}
		}
		for _, p := range series {
			if p.Capacity > 0 && p.Cycles <= taskCycles {
				b.Fatalf("%s cap %d: baseline %d should lose to task %d", model, p.Capacity, p.Cycles, taskCycles)
			}
		}
	}
}

var table1Once sync.Once

// BenchmarkTable1 regenerates Table 1: kcycles for frame counts 10..1000
// (4-process buffers = 100), expecting flat ratios around 4-5x.
func BenchmarkTable1(b *testing.B) {
	r := pfcSynth(b)
	frameCounts := []int{10, 50, 100, 500, 1000}
	var rows []sim.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Table1(r, frameCounts)
		if err != nil {
			b.Fatal(err)
		}
	}
	table1Once.Do(func() {
		sim.PrintTable1(os.Stdout, rows)
	})
	for _, row := range rows {
		for model, ratio := range row.Ratio {
			if ratio < 2.5 || ratio > 8 {
				b.Fatalf("frames %d %s: ratio %.2f out of shape", row.Frames, model, ratio)
			}
		}
	}
}

var table2Once sync.Once

// BenchmarkTable2 regenerates Table 2: code size of the single task vs
// the four separate tasks with inlined communication primitives.
func BenchmarkTable2(b *testing.B) {
	r := pfcSynth(b)
	var rows []sim.Table2Row
	for i := 0; i < b.N; i++ {
		rows = sim.Table2(r)
	}
	table2Once.Do(func() {
		sim.PrintTable2(os.Stdout, rows)
	})
	for _, row := range rows {
		if row.Ratio < 4 || row.Ratio > 12 {
			b.Fatalf("%s: size ratio %.1f out of shape", row.Model, row.Ratio)
		}
	}
}

// BenchmarkSynthesisPFC measures the full compile-link-schedule-codegen
// flow on the video application (the paper reports "less than a minute";
// the graph engine is far below that). The synthesis cache is disabled:
// this benchmark measures the flow, not the memo lookup.
func BenchmarkSynthesisPFC(b *testing.B) {
	b.ReportAllocs()
	opt := &core.Options{DisableCache: true}
	for i := 0; i < b.N; i++ {
		if _, err := core.Synthesize(apps.PFC, apps.PFCSpec, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisPFCWarm measures the cached path of the same call:
// after one priming run, every iteration is a hash plus a map lookup.
// Comparing against BenchmarkSynthesisPFC gives the cache speedup
// (expected to be far beyond the 10x acceptance floor).
func BenchmarkSynthesisPFCWarm(b *testing.B) {
	b.ReportAllocs()
	core.ResetCache()
	defer core.ResetCache()
	if _, err := core.Synthesize(apps.PFC, apps.PFCSpec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Synthesize(apps.PFC, apps.PFCSpec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// corpusBenchApps builds the fixed 24-app corpus shared by the batch
// benchmarks (same seed: identical apps in both, so the serial/parallel
// comparison is apples to apples).
func corpusBenchApps() []*corpus.App {
	return corpus.GenerateCorpus(7, 24, corpus.DefaultConfig())
}

func benchCorpus(b *testing.B, workers int) {
	b.ReportAllocs()
	apps := corpusBenchApps()
	// Per-app schedule searches stay serial: the batch scales over
	// apps, and nesting both pools would contend for the same cores.
	opt := corpus.BatchOptions{Workers: workers, Core: &core.Options{Workers: 1, DisableCache: true}}
	done, elapsed := 0, 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := corpus.RunBatch(context.Background(), apps, opt)
		if br.Failed > 0 {
			b.Fatalf("%d corpus apps failed", br.Failed)
		}
		done += len(br.Results)
		elapsed += br.Elapsed.Seconds()
	}
	b.ReportMetric(float64(done)/elapsed, "apps/s")
}

// BenchmarkCorpusSerial synthesizes the 24-app corpus one app at a
// time — the scale-out baseline.
func BenchmarkCorpusSerial(b *testing.B) { benchCorpus(b, 1) }

// BenchmarkCorpusParallel synthesizes the same corpus on a GOMAXPROCS
// worker pool. On a multi-core machine (GOMAXPROCS >= 4) this shows the
// app-level speedup curve; on a single hardware thread it degenerates
// to the serial timing.
func BenchmarkCorpusParallel(b *testing.B) { benchCorpus(b, runtime.GOMAXPROCS(0)) }

// BenchmarkBaselinePerFrame measures baseline execution cost per frame.
func BenchmarkBaselinePerFrame(b *testing.B) {
	r := pfcSynth(b)
	for _, cost := range sim.Presets() {
		b.Run(cost.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunBaselinePFC(r, sim.Workload{Frames: 10}, 100, cost, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTaskPerFrame measures synthesized-task execution per frame.
func BenchmarkTaskPerFrame(b *testing.B) {
	r := pfcSynth(b)
	for _, cost := range sim.Presets() {
		b.Run(cost.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunTaskPFC(r, sim.Workload{Frames: 10}, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// exploreLargeNet builds the single large net of the exploration
// benchmarks: `pipes` independent token rings of `stages` internal
// places each, whose reachable space is the full product of ring
// positions (stages^pipes markings) — big enough that reachability
// construction, not setup, dominates. Each ring transition also holds
// a self-loop on a per-ring fuel place, widening every preset the way
// multi-input joins do, so the full-partition scan the tracker
// replaces has a realistic per-ECS cost.
func exploreLargeNet(pipes, stages int) *petri.Net {
	n := petri.New(fmt.Sprintf("explore-%dx%d", pipes, stages))
	for p := 0; p < pipes; p++ {
		fuel := n.AddPlace(fmt.Sprintf("fuel%d", p), petri.PlaceChannel, 1)
		var ps []*petri.Place
		for s := 0; s < stages; s++ {
			init := 0
			if s == 0 {
				init = 1
			}
			ps = append(ps, n.AddPlace(fmt.Sprintf("r%d_%d", p, s), petri.PlaceInternal, init))
		}
		for s := 0; s < stages; s++ {
			t := n.AddTransition(fmt.Sprintf("t%d_%d", p, s), petri.TransNormal)
			n.AddArc(ps[s], t, 1)
			n.AddArcTP(t, ps[(s+1)%stages], 1)
			n.AddSelfLoop(fuel, t, 1)
		}
	}
	return n
}

// BenchmarkExploreLarge measures cold single-net reachability
// construction on a 11^5-state net (161051 markings, ~805k edges)
// three ways: the pre-tracker full-partition scan, the incremental
// enabled-ECS tracker (serial), and the tracker plus the
// level-synchronous parallel frontier on GOMAXPROCS workers. The three
// produce byte-identical results (pinned by TestExploreWorkersDeterminism);
// serial-tracked vs serial-fullscan isolates the incremental-enablement
// win, parallel vs serial-tracked the frontier scaling (GOMAXPROCS >= 4
// is where the >= 3x target over serial-fullscan is expected; a
// single-CPU container degenerates to the tracked timing).
func BenchmarkExploreLarge(b *testing.B) {
	const pipes, stages = 5, 11
	want := 1
	for i := 0; i < pipes; i++ {
		want *= stages
	}
	variants := []struct {
		name string
		opt  petri.ExploreOptions
	}{
		{"serial-fullscan", petri.ExploreOptions{MaxMarkings: want + 1, DisableTracker: true}},
		{"serial-tracked", petri.ExploreOptions{MaxMarkings: want + 1}},
		{"parallel", petri.ExploreOptions{MaxMarkings: want + 1, Workers: runtime.GOMAXPROCS(0)}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			n := exploreLargeNet(pipes, stages)
			for i := 0; i < b.N; i++ {
				r := n.Explore(v.opt)
				if r.Len() != want || r.Truncated {
					b.Fatalf("explored %d markings (truncated=%v), want %d", r.Len(), r.Truncated, want)
				}
			}
		})
	}
}

// BenchmarkExploreDist documents the per-level protocol overhead of
// cross-process exploration: the same reachability construction as
// BenchmarkExploreLarge (on a smaller 4^4-ring product space so the
// one-shot CI run stays quick) through internal/dist worker processes
// at 1 and 2 local workers. Each iteration is a full session — init
// broadcast, one delta/candidate round trip per BFS level, sequential
// merge — so ns/op versus the serial variant is precisely the protocol
// cost; the per-level byte traffic is reported as metrics. Workers are
// spawned once per sub-benchmark (process startup is deployment cost,
// not per-exploration cost). Results are byte-identical to serial by
// construction (pinned by the dist determinism matrix), which the loop
// re-asserts via the state count.
func BenchmarkExploreDist(b *testing.B) {
	const pipes, stages = 4, 4
	want := 1
	for i := 0; i < pipes; i++ {
		want *= stages
	}
	opt := petri.ExploreOptions{MaxMarkings: want + 1}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		n := exploreLargeNet(pipes, stages)
		for i := 0; i < b.N; i++ {
			if r := n.Explore(opt); r.Len() != want || r.Truncated {
				b.Fatalf("explored %d markings (truncated=%v), want %d", r.Len(), r.Truncated, want)
			}
		}
	})
	for _, procs := range []int{1, 2} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			pool, err := dist.SpawnLocal(procs)
			if err != nil {
				b.Fatalf("spawn %d workers: %v", procs, err)
			}
			defer pool.Close()
			n := exploreLargeNet(pipes, stages)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := n.ExploreDist(pool, opt)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != want || r.Truncated {
					b.Fatalf("explored %d markings (truncated=%v), want %d", r.Len(), r.Truncated, want)
				}
			}
			b.StopTimer()
			st := pool.LastSessionStats()
			if st.Levels > 0 {
				b.ReportMetric(float64(st.BytesSent)/float64(st.Levels), "sentB/level")
				b.ReportMetric(float64(st.BytesRecv)/float64(st.Levels), "recvB/level")
				b.ReportMetric(float64(st.Levels), "levels")
			}
		})
	}
}

// BenchmarkExploreDistTrimmed is the beyond-RAM claim measured: the
// full 161k-state ExploreLarge reachability construction through
// trimmed-replica worker processes at 1 and 2 workers. Alongside
// timing, each sub-benchmark reports the largest worker's replica
// footprint (store arena + enabled-set bits, exact live bytes) and its
// end-of-session Go heap: store bytes must scale ~1/N with the worker
// count — the memory-model property the dist-memory CI gate pins at a
// strict 0.75x ratio on a smaller net. The boundary-parent cache is
// reported too; it is bounded by construction and does not grow with
// the state space.
func BenchmarkExploreDistTrimmed(b *testing.B) {
	const pipes, stages = 5, 11
	want := 1
	for i := 0; i < pipes; i++ {
		want *= stages
	}
	opt := petri.ExploreOptions{MaxMarkings: want + 1}
	for _, procs := range []int{1, 2} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			pool, err := dist.SpawnLocal(procs)
			if err != nil {
				b.Fatalf("spawn %d workers: %v", procs, err)
			}
			defer pool.Close()
			n := exploreLargeNet(pipes, stages)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := n.ExploreDist(pool, opt)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != want || r.Truncated {
					b.Fatalf("explored %d markings (truncated=%v), want %d", r.Len(), r.Truncated, want)
				}
			}
			b.StopTimer()
			st := pool.LastSessionStats()
			if !st.Trimmed {
				b.Fatal("session did not run trimmed replicas")
			}
			var storeMax, heapMax, cacheMax int64
			held := 0
			for _, wm := range st.Workers {
				if v := wm.StoreBytes + wm.BitsBytes; v > storeMax {
					storeMax = v
				}
				if wm.HeapBytes > heapMax {
					heapMax = wm.HeapBytes
				}
				if wm.CacheBytes > cacheMax {
					cacheMax = wm.CacheBytes
				}
				held += wm.States
			}
			if held != want {
				b.Fatalf("workers hold %d states in total, want %d", held, want)
			}
			b.ReportMetric(float64(storeMax), "workerStoreB")
			b.ReportMetric(float64(cacheMax), "workerCacheB")
			b.ReportMetric(float64(heapMax), "workerHeapB")
			if st.Levels > 0 {
				b.ReportMetric(float64(st.BytesSent)/float64(st.Levels), "sentB/level")
			}
		})
	}
}

// BenchmarkExploreDistPipelined measures the protocol-3 pipelined
// session on the full 161k-state net at 1, 2 and 4 workers: the
// streaming merge consumes each worker's chunks as they arrive, record
// batches overlap the next level's expansion with the current level's
// merge tail, and candNew candidates resolve by shipped hash. Reported
// alongside timing: coordinator fires per session (must equal the
// states materialized — the no-refire property the unit tests pin),
// candNew count, chunk count and receive bytes per level.
func BenchmarkExploreDistPipelined(b *testing.B) {
	const pipes, stages = 5, 11
	want := 1
	for i := 0; i < pipes; i++ {
		want *= stages
	}
	opt := petri.ExploreOptions{MaxMarkings: want + 1}
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			pool, err := dist.SpawnLocal(procs)
			if err != nil {
				b.Fatalf("spawn %d workers: %v", procs, err)
			}
			defer pool.Close()
			n := exploreLargeNet(pipes, stages)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := n.ExploreDist(pool, opt)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != want || r.Truncated {
					b.Fatalf("explored %d markings (truncated=%v), want %d", r.Len(), r.Truncated, want)
				}
			}
			b.StopTimer()
			st := pool.LastSessionStats()
			if st.Proto < 3 {
				b.Fatalf("session ran protocol %d, want the pipelined stream (>= 3)", st.Proto)
			}
			if st.CoordFires != int64(want-1) {
				b.Fatalf("coordinator fired %d times, want one per interned state = %d", st.CoordFires, want-1)
			}
			b.ReportMetric(float64(st.CandNew), "candNew")
			b.ReportMetric(float64(st.CoordFires), "coordFires")
			b.ReportMetric(float64(st.Chunks), "chunks")
			if st.Levels > 0 {
				b.ReportMetric(float64(st.BytesRecv)/float64(st.Levels), "recvB/level")
			}
		})
	}
}

// dividerNet rebuilds the Figure 7 divider chain for the termination
// ablation.
func dividerNet(k int) *petri.Net {
	n := petri.New("fig7")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	p4 := n.AddPlace("p4", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	bt := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransNormal)
	e := n.AddTransition("e", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, bt, k)
	n.AddArcTP(bt, p2, 1)
	n.AddArc(p2, c, k)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p3, d, 1)
	n.AddArcTP(d, p4, k-1)
	n.AddArc(p4, e, 1)
	return n
}

// BenchmarkIrrelevanceVsBounds is the Figure 7 ablation: the irrelevance
// criterion schedules the k-divider chain for every k while uniform
// place bounds below k always fail.
func BenchmarkIrrelevanceVsBounds(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("irrelevance/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			n := dividerNet(k)
			for i := 0; i < b.N; i++ {
				if _, err := sched.FindSchedule(n, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bounds/k=%d", k), func(b *testing.B) {
			n := dividerNet(k)
			opt := &sched.Options{Term: sched.UniformBounds(n, k-1)}
			for i := 0; i < b.N; i++ {
				if _, err := sched.FindSchedule(n, 0, opt); err == nil {
					b.Fatal("bounded search should fail below k")
				}
			}
		})
	}
}

// BenchmarkEngines compares the three schedule-search engines on the
// Figure 8 net (the ablation for the graph-engine design choice).
func BenchmarkEngines(b *testing.B) {
	n := fig8BenchNet()
	for _, eng := range []struct {
		name string
		e    sched.Engine
	}{
		{"graph", sched.EngineGraph},
		{"tree-greedy", sched.EngineTreeGreedy},
		{"tree-exhaustive", sched.EngineTreeExhaustive},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			opt := &sched.Options{Engine: eng.e}
			for i := 0; i < b.N; i++ {
				if _, err := sched.FindSchedule(n, 0, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fig8BenchNet() *petri.Net {
	n := petri.New("fig8")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	bt := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransNormal)
	e := n.AddTransition("e", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, bt, 1)
	n.AddArcTP(bt, p2, 1)
	n.AddArc(p1, c, 1)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p2, d, 1)
	n.AddArc(p3, e, 2)
	n.AddArcTP(e, p1, 1)
	return n
}

// BenchmarkHeuristicAblation compares the T-invariant ECS ordering
// against the naive ordering in the exhaustive tree engine (Section
// 5.5.2's motivation: fewer nodes explored).
func BenchmarkHeuristicAblation(b *testing.B) {
	n := fig8BenchNet()
	b.Run("tinvariant-order", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			s, err := sched.FindSchedule(n, 0, &sched.Options{Engine: sched.EngineTreeExhaustive})
			if err != nil {
				b.Fatal(err)
			}
			nodes = s.Stats.NodesCreated
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("naive-order", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			s, err := sched.FindSchedule(n, 0, &sched.Options{Engine: sched.EngineTreeExhaustive, Order: sched.NaiveOrder{}})
			if err != nil {
				b.Fatal(err)
			}
			nodes = s.Stats.NodesCreated
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}
