//go:build !unix

package petri

import (
	"errors"
	"os"
)

// Platforms without syscall.Mmap read the segment via pread; the tier
// flips to its fallback on the first (and only) mmap attempt.
func mmapSegment(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("petri: mmap unsupported on this platform")
}

func munmapSegment(b []byte) {}
