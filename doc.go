// Package repro reproduces "Task Generation and Compile-Time Scheduling
// for Mixed Data-Control Embedded Software" (Cortadella et al., DAC
// 2000): a complete quasi-static scheduling flow from FlowC process
// networks to synthesized software tasks, plus the simulation substrate
// that regenerates the paper's evaluation.
//
// The implementation lives under internal/ (petri, flowc, compile, link,
// sched, codegen, sim, core, corpus); command-line tools under cmd/;
// runnable examples under examples/. The root holds the benchmark
// harness for the paper's tables and figures (bench_test.go) and the
// Makefile driving CI (build, vet, race tests, one-shot benchmarks, the
// cmd/benchdiff regression gate against bench_baseline.json, and a fuzz
// smoke pass replaying the corpora checked in under testdata/fuzz). The
// same pipeline runs on every push/PR via .github/workflows/ci.yml.
//
// # Marking identity
//
// Every schedule-search engine keys its visited set by marking. Marking
// identity is hash-consed: petri.MarkingStore interns each distinct
// token vector once behind a dense uint32 petri.MarkID (FNV-1a over the
// vector, open-addressing table), and the engines fire transitions into
// a reused scratch buffer (petri.Marking.FireInto), so the inner loop
// of a search performs zero allocations per fired transition —
// revisiting a known marking costs a hash and a table probe. A MarkID
// is meaningful only relative to the store that issued it and is valid
// for the store's lifetime; markings returned by MarkingStore.At are
// read-only views that survive later interning. Replacing the previous
// string-keyed maps cut cold PFC synthesis from ~249ms/1.04M allocs to
// ~49ms/4k allocs per run on the reference container (5.1x / 253x) and
// is what allows the corpus generator to double its per-edge burst cap.
//
// # Concurrency and caching
//
// The core facade is a concurrent synthesis engine: the per-source
// schedule searches of one system run on a bounded worker pool
// (core.Options.Workers) with deterministic result ordering and
// first-error cancellation via context (core.SynthesizeContext,
// core.SynthesizeSystemContext). Results are memoized in a
// content-addressed cache keyed by FlowC source, netlist and options,
// so repeated synthesis of an unchanged app costs a hash and a map
// lookup (core.Stats reports hit rates; core.ResetCache empties it).
//
// # Scenario corpus
//
// Beyond the four hand-written applications of internal/apps, the
// internal/corpus package deterministically generates randomized-but-
// valid FlowC process networks with auto-derived netlists, and
// cmd/qssbatch synthesizes whole corpora concurrently, reporting
// aggregate throughput. Property tests validate the paper's Definition
// 4.1 invariants and the guaranteed channel bounds over every generated
// app; fuzz targets (internal/flowc.FuzzParse, internal/petri.
// FuzzExplore) harden the front end and the reachability utilities.
package repro
