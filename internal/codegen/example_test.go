package codegen

import (
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/sched"
)

// fig8Net rebuilds the net of Figure 8(a) whose generated code is shown
// in Figure 16 of the paper.
func fig8Net(t *testing.T) *petri.Net {
	t.Helper()
	n := petri.New("example")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransNormal)
	e := n.AddTransition("e", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, b, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p1, c, 1)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p2, d, 1)
	n.AddArc(p3, e, 2)
	n.AddArcTP(e, p1, 1)
	return n
}

func fig8Task(t *testing.T) *Task {
	t.Helper()
	n := fig8Net(t)
	s, err := sched.FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	task, err := Generate(s, "example")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return task
}

func TestFig14CodeSegments(t *testing.T) {
	task := fig8Task(t)
	// Figure 14(c): three code segments — cs1 rooted at {a}, cs2 rooted
	// at {e}, cs3 rooted at {b,c} containing {d}.
	if got := task.SegmentCount(); got != 3 {
		t.Fatalf("segments = %d, want 3 per Figure 14(c)", got)
	}
	// cs1 (entry) is rooted at the source ECS.
	if task.Segments[0].Root.ECS.Trans[0] != task.Source {
		t.Errorf("segment 0 is not rooted at the source ECS")
	}
	// Total SegNodes: one per distinct ECS = 4 ({a},{b,c},{d},{e}).
	if got := task.NodeCount(); got != 4 {
		t.Errorf("segment nodes = %d, want 4 (one per distinct ECS)", got)
	}
	labels := map[string]bool{}
	for _, seg := range task.Segments {
		labels[seg.Label] = true
	}
	for _, want := range []string{"a", "bc", "e"} {
		if !labels[want] {
			t.Errorf("missing segment label %q (have %v)", want, labels)
		}
	}
}

func TestFig16StateVariables(t *testing.T) {
	task := fig8Task(t)
	// Figure 16: p3 is the only state variable.
	if len(task.StateVars) != 1 || task.Net.Places[task.StateVars[0]].Name != "p3" {
		names := []string{}
		for _, p := range task.StateVars {
			names = append(names, task.Net.Places[p].Name)
		}
		t.Fatalf("state vars = %v, want [p3]", names)
	}
}

func TestFig16GeneratedCode(t *testing.T) {
	task := fig8Task(t)
	code := Synthesize(task, nil)
	// Structural fidelity with Figure 16: state variable declaration and
	// initialization, the three labels, the p3 updates, the conditional
	// jump on p3, and a return at thread end.
	for _, want := range []string{
		"int p3;",
		"p3 = 0;",
		"a:",
		"e:",
		"bc:",
		"p3 = p3 - 2;",
		"p3 = p3 + 1;",
		"goto bc;",
		"goto e;",
		"return;",
		"condition(p1)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
}

func TestLeafStatesDriveJumps(t *testing.T) {
	task := fig8Task(t)
	// The c-branch leaf of segment bc must have two states: p3 == 1 ->
	// return, p3 == 2 -> goto e.
	var bc *Segment
	for _, seg := range task.Segments {
		if seg.Label == "bc" {
			bc = seg
		}
	}
	if bc == nil {
		t.Fatalf("no bc segment")
	}
	var cLeaf *Leaf
	for _, e := range bc.Root.Edges {
		if task.Net.Transitions[e.Trans].Name == "c" && e.Leaf != nil {
			cLeaf = e.Leaf
		}
	}
	if cLeaf == nil {
		t.Fatalf("c edge of bc segment is not a leaf: %+v", bc.Root.Edges)
	}
	if len(cLeaf.States) != 2 {
		t.Fatalf("c leaf states = %d, want 2", len(cLeaf.States))
	}
	seenReturn, seenE := false, false
	for _, st := range cLeaf.States {
		if st.NextECS == -1 {
			seenReturn = true
		} else {
			seenE = true
		}
	}
	if !seenReturn || !seenE {
		t.Errorf("c leaf must offer both return and goto-e continuations")
	}
	// The c path increments p3 by one.
	p3 := task.StateVars[0]
	if cLeaf.Update[p3] != 1 {
		t.Errorf("c leaf update of p3 = %d, want +1", cLeaf.Update[p3])
	}
}
