// Package server implements the resident synthesis service behind
// cmd/qss-server: one warm process multiplexing synthesis requests onto
// the shared content-addressed core cache and an optional persistent
// dist.Pool, so the ~25,000x warm-path win of repeat synthesis survives
// across requests instead of dying with each CLI invocation.
//
// The package supplies four pieces and keeps them separable:
//
//   - Handlers: POST /v1/synthesize (FlowC + netlist JSON in, generated
//     C + task/bound manifest + cache stats out), GET /healthz (process
//     liveness), GET /readyz (admission readiness; non-200 during
//     drain), GET /metrics (Prometheus text exposition).
//   - Admission: a bounded queue in front of a fixed number of
//     synthesis slots. Requests beyond the queue bound are rejected
//     immediately with 429 so one burst cannot convert the server into
//     an unbounded buffer; queued requests honor their own deadlines.
//   - Budgets: each request may name a MaxNodes state budget and a
//     timeout, both clamped to server-configured caps, so one huge net
//     degrades into one bounded failure instead of starving the pool.
//   - Lifecycle: Drain flips readiness off, refuses new synthesis work,
//     waits for in-flight requests under a deadline, and closes the
//     dist pool exactly once. cmd/qss-server wires it to SIGTERM.
//
// Synthesis outcomes are request-scoped; the only process state the
// handlers share is the core cache (by design) and the dist pool (one
// session at a time, serialized by the pool itself; a pool poisoned by
// an infrastructure failure is retired and the server degrades to
// in-process exploration rather than failing every later request).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"
)

// Config carries the operator-facing knobs of a Server. The zero value
// is usable: every field has a serving default.
type Config struct {
	// MaxConcurrent bounds simultaneously executing syntheses (slot
	// count). 0 = GOMAXPROCS. With a dist pool the slots still apply;
	// the pool additionally serializes its own sessions.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; an arrival beyond it
	// is answered 429 immediately. 0 = 4x MaxConcurrent.
	MaxQueue int
	// MaxNodes caps the per-request state budget. A request asking for
	// more (or asking for nothing) gets this cap. 0 = the sched default
	// (2,000,000).
	MaxNodes int
	// DefaultTimeout is the per-request synthesis deadline when the
	// request names none; MaxTimeout caps request-supplied values.
	// Zeros default to 30s / 2m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests.
	// 0 = 30s.
	DrainTimeout time.Duration
	// Pool is an optional pre-connected dist worker pool. The Server
	// takes ownership: requests reuse it session after session, and
	// Drain closes it exactly once.
	Pool *dist.Pool
	// FreezeLevels freezes closed exploration levels to on-disk delta
	// segments for every request (petri.ExploreOptions.FreezeLevels),
	// bounding the hot store's growth at the price of thaw reads.
	// Results are byte-identical either way.
	FreezeLevels bool
	// Log receives operational one-liners; nil uses the stdlib default
	// logger.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = defaultMaxNodes
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// defaultMaxNodes mirrors the sched package's MaxNodes default; the
// server clamps against a concrete number so the response can report
// the budget a request actually ran under.
const defaultMaxNodes = 2000000

// Server is the resident synthesis service. Create with New, serve its
// Handler, and call Drain before process exit.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics

	slots   chan struct{} // admission slots; len == executing requests
	queued  chan struct{} // queue tickets; cap bounds the waiting line
	drainCh chan struct{} // closed when drain begins; wakes parked waiters

	mu        sync.Mutex
	draining  bool
	pool      *dist.Pool // nil once retired or drained
	inflight  sync.WaitGroup
	drainOnce sync.Once

	// synthesize runs one admitted request; a Server field so the
	// lifecycle tests can substitute a controllable stub for the real
	// core pipeline.
	synthesize func(ctx context.Context, req *synthesizeRequest, opt *core.Options) (*core.Result, bool, error)
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		metrics:    newMetrics(),
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		queued:     make(chan struct{}, cfg.MaxQueue),
		drainCh:    make(chan struct{}),
		pool:       cfg.Pool,
		synthesize: defaultSynthesize,
	}
	s.metrics.setGauge(&s.metrics.ready, 1)
	if cfg.Pool != nil {
		s.metrics.setGauge(&s.metrics.distWorkers, float64(cfg.Pool.NumWorkers()))
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the http.Handler serving all endpoints, wrapped in
// the panic-recovery middleware: a panicking synthesis (or any other
// handler bug) answers 500 and bumps qss_panics_total instead of
// tearing down the connection — and, under http.Server's default
// behavior, leaving nothing in the metrics about it.
func (s *Server) Handler() http.Handler { return s.recoverPanics(s.mux) }

// recoverPanics is the outermost middleware. http.ErrAbortHandler is
// re-raised (it is the sanctioned way to abort a response, not a bug).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.metrics.addCounter(&s.metrics.panics, 1)
			s.cfg.Log.Printf("qss-server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records whether a handler already started the response,
// so the panic middleware knows if a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful-shutdown sequence: flip readiness off
// (readyz goes 503, new synthesis requests are refused), wait for
// in-flight requests to finish under the configured DrainTimeout (or
// ctx, whichever ends first), then close the dist pool exactly once.
// Safe to call multiple times; later calls wait on the same sequence.
// The caller still owns the http.Server and should Shutdown it after
// Drain returns so health probes stay answerable during the wait.
func (s *Server) Drain(ctx context.Context) error {
	// draining is flipped under s.mu, the same lock admit takes before
	// inflight.Add: once the flag is observed set here, no later request
	// can join the wait group, so the Wait below races with nothing.
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	if !already {
		s.metrics.setGauge(&s.metrics.ready, 0)
		s.cfg.Log.Printf("qss-server: draining (waiting up to %v for in-flight work)", s.cfg.DrainTimeout)
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		err = fmt.Errorf("server: drain deadline %v elapsed with requests in flight", s.cfg.DrainTimeout)
	case <-ctx.Done():
		err = fmt.Errorf("server: drain: %w", ctx.Err())
	}
	s.closePool("drain")
	return err
}

// closePool retires the dist pool (idempotent). Requests already
// holding a reference finish their session; the pool's own Close is
// safe against that because sessions hold its lock.
func (s *Server) closePool(why string) {
	s.mu.Lock()
	p := s.pool
	s.pool = nil
	s.mu.Unlock()
	if p == nil {
		return
	}
	s.metrics.setGauge(&s.metrics.distWorkers, 0)
	if err := p.Close(); err != nil {
		s.cfg.Log.Printf("qss-server: dist pool close (%s): %v", why, err)
	} else {
		s.cfg.Log.Printf("qss-server: dist pool closed (%s)", why)
	}
}

// acquirePool hands out the shared dist pool, or nil when the server
// runs in-process.
func (s *Server) acquirePool() *dist.Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// checkPool retires a pool that a failed session has poisoned: every
// later session would fail with the same infrastructure error, so the
// resident server degrades to in-process exploration instead.
func (s *Server) checkPool(p *dist.Pool) {
	if p == nil || p.Err() == nil {
		return
	}
	s.mu.Lock()
	mine := s.pool == p
	if mine {
		s.pool = nil
	}
	s.mu.Unlock()
	if mine {
		s.cfg.Log.Printf("qss-server: dist pool poisoned (%v); continuing in-process", p.Err())
		restarts, _ := p.RecoveryStats()
		s.metrics.setCounter(&s.metrics.distRestarts, float64(restarts))
		s.metrics.setGauge(&s.metrics.distDegraded, 1)
		s.metrics.setGauge(&s.metrics.distWorkers, 0)
		if err := p.Close(); err != nil {
			s.cfg.Log.Printf("qss-server: dist pool close (poisoned): %v", err)
		}
	}
}

// admit runs the bounded admission protocol: take a free synthesis slot
// immediately when one exists, otherwise join the bounded waiting line
// (full line → 429) and park until a slot frees up, the request's
// context ends, or a drain begins. On success the returned release func
// must be called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), status int, reason string) {
	if s.Draining() {
		return nil, http.StatusServiceUnavailable, outcomeDraining
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// All slots busy: queue, bounded.
		select {
		case s.queued <- struct{}{}:
		default:
			return nil, http.StatusTooManyRequests, outcomeRejected
		}
		s.metrics.addGauge(&s.metrics.queueDepth, 1)
		leaveQueue := func() {
			<-s.queued
			s.metrics.addGauge(&s.metrics.queueDepth, -1)
		}
		select {
		case s.slots <- struct{}{}:
			leaveQueue()
		case <-ctx.Done():
			leaveQueue()
			return nil, statusClientGone, outcomeCanceled
		case <-s.drainCh:
			leaveQueue()
			return nil, http.StatusServiceUnavailable, outcomeDraining
		}
	}
	// Joining the in-flight set must be ordered against Drain's flag
	// flip (see Drain); a slot won from a racing drain is handed back.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.slots
		return nil, http.StatusServiceUnavailable, outcomeDraining
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.metrics.addGauge(&s.metrics.inFlight, 1)
	return func() {
		<-s.slots
		s.metrics.addGauge(&s.metrics.inFlight, -1)
		s.inflight.Done()
	}, 0, ""
}

// statusClientGone is the status reported when the client abandoned the
// request while it was still queued (nginx's non-standard 499; nothing
// is usually left to read it, but logs and metrics keep the label).
const statusClientGone = 499

// defaultSynthesize is the production synthesis function: the core
// pipeline under the request's options.
func defaultSynthesize(ctx context.Context, req *synthesizeRequest, opt *core.Options) (*core.Result, bool, error) {
	return core.SynthesizeCachedContext(ctx, req.FlowC, req.Net, opt)
}

// requestOptions translates one request's budgets into core options,
// clamping against the server caps.
func (s *Server) requestOptions(req *synthesizeRequest) (*core.Options, time.Duration) {
	opt := &core.Options{DisableCache: req.DisableCache, FreezeLevels: s.cfg.FreezeLevels}
	opt.MaxNodes = s.cfg.MaxNodes
	if req.MaxNodes > 0 && req.MaxNodes < opt.MaxNodes {
		opt.MaxNodes = req.MaxNodes
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	if p := s.acquirePool(); p != nil {
		opt.Dist = p
	}
	return opt, timeout
}

// classifyError maps a synthesis failure to an HTTP status and an
// outcome label. Budget exhaustion and unschedulable systems are the
// request's fault (422); deadline expiry is 504; everything else is a
// server-side 500.
func classifyError(ctx context.Context, err error) (int, string) {
	switch {
	case ctx.Err() != nil:
		return http.StatusGatewayTimeout, outcomeTimeout
	case isRequestFault(err):
		return http.StatusUnprocessableEntity, outcomeFailed
	default:
		return http.StatusInternalServerError, outcomeFailed
	}
}

// isRequestFault reports whether the error is attributable to the
// submitted system rather than the server: parse/check/link failures,
// exhausted budgets, and search spaces with no schedule.
func isRequestFault(err error) bool {
	if errors.Is(err, sched.ErrNoSchedule) || errors.Is(err, sched.ErrBudget) {
		return true
	}
	msg := err.Error()
	for _, frag := range []string{"parse FlowC", "parse netlist", "core: check", "core: compile", "link:", "no uncontrollable inputs", "independence"} {
		if strings.Contains(msg, frag) {
			return true
		}
	}
	return false
}
