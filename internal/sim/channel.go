package sim

import "fmt"

// Channel is a FIFO of integers with an optional capacity, shared by the
// two executors. Capacity 0 means unbounded. Storage is a power-of-two
// ring: the previous reslice-forward implementation retained every
// consumed prefix until the next growth and reallocated proportionally
// to total throughput, which the corpus sweep's long simulations paid
// for on every run.
type Channel struct {
	Name     string
	Capacity int
	ring     []int64 // power-of-two ring storage
	head     int     // index of the oldest item
	count    int     // occupancy

	// Stats.
	Reads, Writes int64 // completed operations
	ItemsMoved    int64
	MaxOccupancy  int
	BlockedReads  int64 // operations that had to wait at least once
	BlockedWrites int64
}

// NewChannel creates a channel. capacity 0 = unbounded.
func NewChannel(name string, capacity int) *Channel {
	return &Channel{Name: name, Capacity: capacity}
}

// Len returns the current occupancy.
func (c *Channel) Len() int { return c.count }

// Space returns the free space, or a large number for unbounded
// channels.
func (c *Channel) Space() int {
	if c.Capacity <= 0 {
		return 1 << 30
	}
	return c.Capacity - c.count
}

// CanRead reports whether n items are available.
func (c *Channel) CanRead(n int) bool { return c.count >= n }

// CanWrite reports whether n items fit.
func (c *Channel) CanWrite(n int) bool { return c.Space() >= n }

// Read removes n items into a fresh slice; the caller must have checked
// CanRead. Hot paths that do not retain the values use ReadInto.
func (c *Channel) Read(n int) ([]int64, error) {
	out := make([]int64, n)
	if err := c.ReadInto(out, n); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto removes n items into dst[:n] without allocating; dst must
// hold at least n items.
func (c *Channel) ReadInto(dst []int64, n int) error {
	if !c.CanRead(n) {
		return fmt.Errorf("sim: channel %s: read %d with %d available", c.Name, n, c.count)
	}
	mask := len(c.ring) - 1
	first := n
	if wrap := len(c.ring) - c.head; first > wrap {
		first = wrap
	}
	copy(dst[:first], c.ring[c.head:c.head+first])
	copy(dst[first:n], c.ring[:n-first])
	c.head = (c.head + n) & mask
	c.count -= n
	if c.count == 0 {
		c.head = 0
	}
	c.Reads++
	c.ItemsMoved += int64(n)
	return nil
}

// Write appends n items; the caller must have checked CanWrite.
func (c *Channel) Write(vals []int64) error {
	if !c.CanWrite(len(vals)) {
		return fmt.Errorf("sim: channel %s: write %d with %d free", c.Name, len(vals), c.Space())
	}
	c.reserve(c.count + len(vals))
	mask := len(c.ring) - 1
	tail := (c.head + c.count) & mask
	first := len(vals)
	if wrap := len(c.ring) - tail; first > wrap {
		first = wrap
	}
	copy(c.ring[tail:tail+first], vals[:first])
	copy(c.ring[:len(vals)-first], vals[first:])
	c.count += len(vals)
	if c.count > c.MaxOccupancy {
		c.MaxOccupancy = c.count
	}
	c.Writes++
	c.ItemsMoved += int64(len(vals))
	return nil
}

// reserve grows the ring to the next power of two holding want items,
// unrolling the occupants to the front of the new storage.
func (c *Channel) reserve(want int) {
	if want <= len(c.ring) {
		return
	}
	size := 8
	for size < want {
		size *= 2
	}
	nr := make([]int64, size)
	if c.count > 0 {
		first := c.count
		if wrap := len(c.ring) - c.head; first > wrap {
			first = wrap
		}
		copy(nr, c.ring[c.head:c.head+first])
		copy(nr[first:], c.ring[:c.count-first])
	}
	c.ring = nr
	c.head = 0
}

// InputStream models an environment input port: a queue of values
// provided by the test harness or workload generator.
type InputStream struct {
	Name string
	vals []int64
	// Consumed counts values delivered to the system.
	Consumed int64
}

// NewInputStream creates a stream with the given initial values.
func NewInputStream(name string, vals ...int64) *InputStream {
	return &InputStream{Name: name, vals: append([]int64(nil), vals...)}
}

// Push appends values (the environment producing more input).
func (s *InputStream) Push(vals ...int64) { s.vals = append(s.vals, vals...) }

// Len returns the number of queued values.
func (s *InputStream) Len() int { return len(s.vals) }

// Pop removes and returns the next n values.
func (s *InputStream) Pop(n int) ([]int64, error) {
	if len(s.vals) < n {
		return nil, fmt.Errorf("sim: input %s exhausted (want %d, have %d)", s.Name, n, len(s.vals))
	}
	out := make([]int64, n)
	copy(out, s.vals[:n])
	s.vals = s.vals[n:]
	s.Consumed += int64(n)
	return out, nil
}

// OutputStream collects values delivered to an environment output port.
type OutputStream struct {
	Name string
	Vals []int64
}

// Append records delivered values.
func (s *OutputStream) Append(vals ...int64) { s.Vals = append(s.Vals, vals...) }
