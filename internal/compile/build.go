package compile

import (
	"fmt"

	"repro/internal/flowc"
	"repro/internal/petri"
)

// CompiledProcess is the Petri net of one process together with the
// symbol information needed by linking, scheduling, code generation and
// simulation.
type CompiledProcess struct {
	Proc *flowc.Process
	Net  *petri.Net
	// PortPlace maps port names to their (still dangling) places.
	PortPlace map[string]*petri.Place
	// InitVars are the hoisted variable declarations; initializers of
	// the top-level declaration prefix run once at startup and are not
	// part of the cyclic schedule (footnote 1 of the paper).
	InitVars []flowc.VarDecl
	// InitStmts are the port-free statements preceding the first port
	// operation of the body: startup code executed once, outside the
	// cyclic schedule (e.g. "c = 1;" before the main loop).
	InitStmts []flowc.Stmt
	// Arrays maps array variable names to their sizes.
	Arrays map[string]int
	// SelectArms lists SELECT arm entry transitions; arms on Out ports
	// need link-time fixup against the channel's complement place.
	SelectArms []SelectArmRef
}

// CompileProcess translates one checked process into a Petri net. The net
// has one internal (program-counter) place marked initially; ignoring
// port places it is a state machine; with port places it is unique choice
// (for SELECT-free processes).
func CompileProcess(p *flowc.Process) (*CompiledProcess, error) {
	if err := flowc.Check(p); err != nil {
		return nil, err
	}
	cp := &CompiledProcess{
		Proc:      p,
		Net:       petri.New(p.Name),
		PortPlace: map[string]*petri.Place{},
		Arrays:    map[string]int{},
	}
	b := &builder{cp: cp}
	for _, pd := range p.Ports {
		pl := cp.Net.AddPlace(p.Name+"."+pd.Name, petri.PlacePort, 0)
		pl.Process = p.Name
		cp.PortPlace[pd.Name] = pl
	}
	p0 := b.newPlace()
	p0.Initial = 1
	b.cur = p0

	// Split the top-level initialization prefix: declarations and
	// port-free statements before the first port operation are startup
	// code, not schedule code (the paper schedules cyclic behaviour
	// only; initialization runs once).
	stmts := p.Body.Stmts
	for len(stmts) > 0 {
		if ds, ok := stmts[0].(*flowc.DeclStmt); ok {
			for _, v := range ds.Vars {
				cp.InitVars = append(cp.InitVars, v)
				if v.ArraySize > 0 {
					cp.Arrays[v.Name] = v.ArraySize
				}
			}
			stmts = stmts[1:]
			continue
		}
		if !ContainsPortOp(stmts[0]) {
			cp.InitStmts = append(cp.InitStmts, stmts[0])
			stmts = stmts[1:]
			continue
		}
		break
	}

	b.compileSeq(stmts)
	if b.err != nil {
		return nil, b.err
	}
	// The process is cyclic: execution wraps back to the initial place.
	b.finishAt(p0)
	if b.err != nil {
		return nil, b.err
	}
	if err := cp.Net.Validate(); err != nil {
		return nil, fmt.Errorf("compile %s: internal error: %v", p.Name, err)
	}
	return cp, nil
}

// builder constructs the net by successive refinement: it keeps a current
// frontier place (the program counter) and accumulates the statements of
// the current portion until a leader boundary forces a transition.
type builder struct {
	cp       *CompiledProcess
	cur      *petri.Place
	pending  []flowc.Stmt
	pendRead *flowc.Read // READ_DATA heading the current portion
	label    string      // label for the next emitted transition
	placeSeq int
	transSeq int
	dead     bool // control cannot reach here (after while(1))
	err      error
}

func (b *builder) fail(pos flowc.Pos, format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %v: %s", b.cp.Proc.Name, pos, fmt.Sprintf(format, args...))
	}
}

func (b *builder) newPlace() *petri.Place {
	pl := b.cp.Net.AddPlace(fmt.Sprintf("%s_p%d", b.cp.Proc.Name, b.placeSeq), petri.PlaceInternal, 0)
	pl.Process = b.cp.Proc.Name
	b.placeSeq++
	return pl
}

func (b *builder) port(name string, pos flowc.Pos) *petri.Place {
	pl := b.cp.PortPlace[name]
	if pl == nil {
		b.fail(pos, "unknown port %s", name)
	}
	return pl
}

func (b *builder) hasPending() bool {
	return len(b.pending) > 0 || b.pendRead != nil || b.label != ""
}

// emit creates the transition for the current portion, consuming the
// frontier place (plus the port place of a heading READ), producing into
// to (plus the port place of a trailing WRITE), and advances the frontier.
func (b *builder) emit(to *petri.Place, write *flowc.Write) *petri.Transition {
	t := b.cp.Net.AddTransition(fmt.Sprintf("%s_t%d", b.cp.Proc.Name, b.transSeq), petri.TransNormal)
	b.transSeq++
	t.Process = b.cp.Proc.Name
	t.Label = b.label
	var stmts []flowc.Stmt
	if b.pendRead != nil {
		stmts = append(stmts, b.pendRead)
	}
	stmts = append(stmts, b.pending...)
	if write != nil {
		stmts = append(stmts, write)
	}
	t.Code = &Fragment{Process: b.cp.Proc.Name, Stmts: stmts}
	b.cp.Net.AddArc(b.cur, t, 1)
	if b.pendRead != nil {
		if pp := b.port(b.pendRead.Port, b.pendRead.Pos); pp != nil {
			b.cp.Net.AddArc(pp, t, b.pendRead.NItems)
		}
	}
	if write != nil {
		if pp := b.port(write.Port, write.Pos); pp != nil {
			b.cp.Net.AddArcTP(t, pp, write.NItems)
		}
	}
	b.cp.Net.AddArcTP(t, to, 1)
	b.pending = nil
	b.pendRead = nil
	b.label = ""
	b.cur = to
	return t
}

// flush closes the current portion into a fresh place if anything is
// pending.
func (b *builder) flush() {
	if b.hasPending() {
		b.emit(b.newPlace(), nil)
	}
}

// finishAt ends the current region at the given place, emitting a final
// (possibly silent) transition when needed.
func (b *builder) finishAt(to *petri.Place) {
	if b.dead {
		b.dead = false
		b.cur = to
		return
	}
	if b.hasPending() || b.cur != to {
		b.emit(to, nil)
	}
}

func (b *builder) compileSeq(stmts []flowc.Stmt) {
	for _, s := range stmts {
		if b.err != nil {
			return
		}
		if b.dead {
			b.fail(s.StmtPos(), "unreachable statement after infinite loop")
			return
		}
		b.compileStmt(s)
	}
}

func (b *builder) compileStmt(s flowc.Stmt) {
	if !ContainsPortOp(s) {
		// Declarations are hoisted; initializers become assignments.
		if ds, ok := s.(*flowc.DeclStmt); ok {
			b.hoistDecl(ds)
			return
		}
		b.pending = append(b.pending, s)
		return
	}
	switch x := s.(type) {
	case *flowc.Read:
		// Rule 2: READ_DATA is a leader — close the current portion.
		b.flush()
		b.pendRead = x
	case *flowc.Write:
		// A labeled (choice-successor) transition must carry no port
		// arcs, so the equal-conflict property of the T/F pair is
		// preserved even for bounded channels.
		if b.label != "" {
			b.flush()
		}
		b.emit(b.newPlace(), x)
	case *flowc.Block:
		b.compileSeq(x.Stmts)
	case *flowc.If:
		b.compileIf(x)
	case *flowc.While:
		b.compileWhile(x)
	case *flowc.For:
		b.compileFor(x)
	case *flowc.Select:
		b.compileSelect(x)
	case *flowc.DeclStmt:
		b.hoistDecl(x)
	default:
		b.fail(s.StmtPos(), "cannot compile statement %T", s)
	}
}

func (b *builder) hoistDecl(ds *flowc.DeclStmt) {
	for _, v := range ds.Vars {
		b.cp.InitVars = append(b.cp.InitVars, flowc.VarDecl{Name: v.Name, ArraySize: v.ArraySize, Pos: v.Pos})
		if v.ArraySize > 0 {
			b.cp.Arrays[v.Name] = v.ArraySize
		}
		if v.Init != nil {
			b.pending = append(b.pending, &flowc.ExprStmt{
				X:   &flowc.Assign{Op: flowc.TokAssign, LHS: &flowc.Ident{Name: v.Name, Pos: v.Pos}, RHS: v.Init, Pos: v.Pos},
				Pos: v.Pos,
			})
		}
	}
}

// constBool folds constant conditions; ok is false for non-constant ones.
func constBool(e flowc.Expr) (val, ok bool) {
	if lit, isLit := e.(*flowc.IntLit); isLit {
		return lit.Val != 0, true
	}
	return false, false
}

func (b *builder) compileIf(x *flowc.If) {
	if v, ok := constBool(x.Cond); ok {
		if v {
			b.compileSeq(toList(x.Then))
		} else {
			b.compileSeq(toList(x.Else))
		}
		return
	}
	b.flush()
	choice := b.cur
	choice.Cond = &ChoiceInfo{Kind: ChoiceData, Cond: x.Cond}
	join := b.newPlace()

	b.cur = choice
	b.label = "T"
	b.compileSeq(toList(x.Then))
	b.finishAt(join)
	if b.err != nil {
		return
	}
	b.cur = choice
	b.label = "F"
	b.compileSeq(toList(x.Else))
	b.finishAt(join)
	b.cur = join
}

func (b *builder) compileWhile(x *flowc.While) {
	if v, ok := constBool(x.Cond); ok {
		if !v {
			return
		}
		// while(1): unconditional loop; code after it is unreachable.
		b.flush()
		head := b.cur
		b.compileSeq(toList(x.Body))
		b.finishAt(head)
		b.dead = true
		return
	}
	b.flush()
	head := b.cur
	head.Cond = &ChoiceInfo{Kind: ChoiceData, Cond: x.Cond}
	b.label = "T"
	b.compileSeq(toList(x.Body))
	b.finishAt(head)
	if b.err != nil {
		return
	}
	// Continue after the loop from the same choice place: the next
	// portion becomes the F successor.
	b.cur = head
	b.label = "F"
}

func (b *builder) compileFor(x *flowc.For) {
	// Desugar: { init; while (cond) { body; post; } }
	if x.Init != nil {
		b.compileStmt(x.Init)
	}
	cond := x.Cond
	if cond == nil {
		cond = &flowc.IntLit{Val: 1, Pos: x.Pos}
	}
	var body []flowc.Stmt
	body = append(body, toList(x.Body)...)
	if x.Post != nil {
		body = append(body, &flowc.ExprStmt{X: x.Post, Pos: x.Post.ExprPos()})
	}
	b.compileWhile(&flowc.While{Cond: cond, Body: &flowc.Block{Stmts: body, Pos: x.Pos}, Pos: x.Pos})
}

func (b *builder) compileSelect(x *flowc.Select) {
	b.flush()
	choice := b.cur
	choice.Cond = &ChoiceInfo{Kind: ChoiceSelect, Sel: x}
	join := b.newPlace()
	for i := range x.Arms {
		arm := &x.Arms[i]
		t := b.cp.Net.AddTransition(fmt.Sprintf("%s_t%d", b.cp.Proc.Name, b.transSeq), petri.TransNormal)
		b.transSeq++
		t.Process = b.cp.Proc.Name
		t.Label = fmt.Sprintf("sel%d", i)
		t.Code = &Fragment{Process: b.cp.Proc.Name}
		b.cp.Net.AddArc(choice, t, 1)
		pd := b.cp.Proc.PortByName(arm.Port)
		if pd == nil {
			b.fail(arm.Pos, "unknown port %s in SELECT", arm.Port)
			return
		}
		if pd.Dir == flowc.PortIn {
			// Availability test: at least NItems tokens, not consumed.
			b.cp.Net.AddSelfLoop(b.cp.PortPlace[arm.Port], t, arm.NItems)
		}
		// Out ports need the channel's complement place: recorded for
		// link-time fixup.
		b.cp.SelectArms = append(b.cp.SelectArms, SelectArmRef{
			Trans: t.ID, Port: arm.Port, NItems: arm.NItems, Index: i,
		})
		entry := b.newPlace()
		b.cp.Net.AddArcTP(t, entry, 1)
		b.cur = entry
		b.compileSeq(arm.Body)
		b.finishAt(join)
		if b.err != nil {
			return
		}
	}
	b.cur = join
}
