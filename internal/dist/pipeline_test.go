package dist

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/petri"
)

// Tests for the protocol-3 pipelined session: streaming merge,
// candNew-by-hash classification, version downgrade and the mid-level
// abort path.

// fullSpec builds the ExpandSpec an unrestricted exploration would use:
// every ECS fireable, no token caps. For tests that drive RunFrontier
// directly with hand-rolled hooks.
func fullSpec(n *petri.Net) petri.ExpandSpec {
	part := n.ECSPartition()
	stride := petri.NewEnabledTracker(n, part).Stride()
	mask := make([]uint64, stride)
	for ei := range part {
		mask[ei/64] |= 1 << (ei % 64)
	}
	caps := make([]int, len(n.Places))
	for i := range caps {
		caps[i] = -1
	}
	return petri.ExpandSpec{Mask: mask, Caps: caps}
}

// slowConn delays every Write by a fixed latency — a worker whose
// candidate stream trickles in long after its peers'.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (s *slowConn) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.Conn.Write(p)
}

// TestExploreDistPipelinedDelayedWorker: one worker's stream arriving
// late must not change a single byte of the result — the merge order is
// ownership-determined, not arrival-determined.
func TestExploreDistPipelinedDelayedWorker(t *testing.T) {
	n := ringNet(2, 5)
	opt := petri.ExploreOptions{MaxMarkings: 1000}
	want := n.Explore(opt)
	for _, mode := range []struct {
		name string
		wopt WorkerOptions
	}{
		{"trimmed", WorkerOptions{}},
		{"full", WorkerOptions{FullReplicas: true}},
	} {
		for slow := 0; slow < 3; slow++ {
			specs := make([]pipeWorker, 3)
			for i := range specs {
				specs[i].wopt = mode.wopt
				if i == slow {
					specs[i].wrap = func(c net.Conn) net.Conn {
						return &slowConn{Conn: c, delay: time.Millisecond}
					}
				}
			}
			p := pipePoolOf(t, specs)
			got, err := n.ExploreDist(p, opt)
			if err != nil {
				t.Fatalf("%s, worker %d delayed: %v", mode.name, slow, err)
			}
			requireSameReach(t, fmt.Sprintf("%s, worker %d delayed", mode.name, slow), want, got)
			if st := p.LastSessionStats(); st.Proto != 4 {
				t.Fatalf("session ran protocol %d, want 4", st.Proto)
			}
		}
	}
}

// TestHelloDowngrade: a pool containing a protocol-2 worker downgrades
// every session to the barrier protocol, with identical results; a pure
// protocol-3 pool runs pipelined.
func TestHelloDowngrade(t *testing.T) {
	n := ringNet(2, 4)
	opt := petri.ExploreOptions{MaxMarkings: 1000}
	want := n.Explore(opt)

	mixed := pipePoolOf(t, []pipeWorker{{ver: 2}, {}})
	got, err := n.ExploreDist(mixed, opt)
	if err != nil {
		t.Fatalf("mixed pool: %v", err)
	}
	requireSameReach(t, "mixed pool", want, got)
	if st := mixed.LastSessionStats(); st.Proto != 2 {
		t.Fatalf("mixed pool ran protocol %d, want downgrade to 2", st.Proto)
	}

	pure := pipePoolOf(t, []pipeWorker{{}, {}})
	got, err = n.ExploreDist(pure, opt)
	if err != nil {
		t.Fatalf("pure pool: %v", err)
	}
	requireSameReach(t, "pure pool", want, got)
	if st := pure.LastSessionStats(); st.Proto != 4 {
		t.Fatalf("pure pool ran protocol %d, want 4", st.Proto)
	}
}

// TestCandNewNoRefire: at protocol 3 the coordinator resolves candNew
// candidates by the shipped hash and fires only the states it has to
// materialize — CoordFires equals the states interned during the
// session, not the candNew count. At protocol 2 every candNew is a
// fire. BytesRecv grows by at most one varint (<= 10 bytes) per candNew
// over the protocol-2 stream, modulo chunk framing.
func TestCandNewNoRefire(t *testing.T) {
	n := ringNet(3, 4)
	opt := petri.ExploreOptions{MaxMarkings: 1000}
	roots := 1

	p3 := pipePool(t, 2, WorkerOptions{})
	want, err := n.ExploreDist(p3, opt)
	if err != nil {
		t.Fatal(err)
	}
	st3 := p3.LastSessionStats()
	if st3.Proto != 4 {
		t.Fatalf("protocol %d, want 4", st3.Proto)
	}
	if st3.CandNew == 0 || st3.Chunks == 0 {
		t.Fatalf("no candNew or chunks recorded: %+v", st3)
	}
	if wantFires := int64(want.Len() - roots); st3.CoordFires != wantFires {
		t.Fatalf("coordinator fired %d times, want one per interned state = %d (candNew %d)",
			st3.CoordFires, wantFires, st3.CandNew)
	}
	if st3.CoordFires >= st3.CandNew {
		t.Fatalf("no refires saved: %d fires for %d candNew", st3.CoordFires, st3.CandNew)
	}

	p2 := pipePoolOf(t, []pipeWorker{{ver: 2}, {ver: 2}})
	got, err := n.ExploreDist(p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameReach(t, "v2 vs v3", want, got)
	st2 := p2.LastSessionStats()
	if st2.CoordFires != st2.CandNew {
		t.Fatalf("protocol 2 fired %d times for %d candNew, want equal", st2.CoordFires, st2.CandNew)
	}
	// Receive-side growth bound: one hash varint (<= 10B) per candNew,
	// plus the 5-byte frame header of each chunk; everything else of the
	// candidate stream is unchanged, and protocol 3 drops the per-level
	// result frames, so this bound is conservative.
	bound := st2.BytesRecv + 10*st3.CandNew + 5*st3.Chunks
	if st3.BytesRecv > bound {
		t.Fatalf("protocol 3 received %dB, bound %dB (v2 %dB, %d candNew, %d chunks)",
			st3.BytesRecv, bound, st2.BytesRecv, st3.CandNew, st3.Chunks)
	}
}

// TestRejectAbortMidLevel: a Reject hook returning false mid-level
// aborts the session cleanly — RunFrontier returns completed=false with
// no error, the store holds exactly the admitted states, and the pool
// stays usable for the next session.
func TestRejectAbortMidLevel(t *testing.T) {
	n := ringNet(2, 4)
	spec := fullSpec(n)
	for _, specs := range [][]pipeWorker{
		{{}, {}},       // protocol 3
		{{ver: 2}, {}}, // downgraded to 2
	} {
		p := pipePoolOf(t, specs)
		const admitCap = 3
		store := petri.NewMarkingStore(len(n.Places))
		store.Intern(n.InitialMarking())
		admitted := 0
		hooks := petri.MergeHooks{
			Admit: func() bool { return admitted < admitCap },
			Edge: func(parent petri.MarkID, trans int32, child petri.MarkID, isNew bool) {
				if isNew {
					admitted++
				}
			},
			Reject: func(parent petri.MarkID, trans int32, budget bool) bool {
				return !budget // abort on the first budget rejection
			},
		}
		completed, err := p.RunFrontier(n, store, spec, hooks)
		if err != nil {
			t.Fatalf("aborted session errored: %v", err)
		}
		if completed {
			t.Fatal("session completed despite Reject abort")
		}
		if store.Len() != 1+admitCap {
			t.Fatalf("store holds %d states after abort, want %d", store.Len(), 1+admitCap)
		}
		// The pool survives the abort: a fresh full exploration matches
		// the serial result.
		opt := petri.ExploreOptions{MaxMarkings: 1000}
		want := n.Explore(opt)
		got, err := n.ExploreDist(p, opt)
		if err != nil {
			t.Fatalf("session after abort: %v", err)
		}
		requireSameReach(t, "session after abort", want, got)
	}
}
