// Command pfcbench regenerates the paper's evaluation on the PFC video
// application: Figure 20 (-fig20), Table 1 (-table1) and Table 2
// (-table2); -all runs everything.
//
// Usage:
//
//	pfcbench [-fig20] [-table1] [-table2] [-all] [-frames N]
//	         [-explore-workers N] [-cpuprofile f] [-memprofile f]
//
// -explore-workers parallelizes the schedule search's state-space
// exploration (results are byte-identical for every value);
// -cpuprofile/-memprofile write pprof profiles, so perf regressions
// can be diagnosed without editing source.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

func realMain() (code int) {
	fig20 := flag.Bool("fig20", false, "regenerate Figure 20 (buffer-size sweep)")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (frame-count sweep)")
	table2 := flag.Bool("table2", false, "regenerate Table 2 (code size)")
	all := flag.Bool("all", false, "regenerate everything")
	frames := flag.Int("frames", 10, "frames for Figure 20")
	exploreWorkers := flag.Int("explore-workers", 0, "goroutines for the schedule-search exploration (0 = auto budget)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *all {
		*fig20, *table1, *table2 = true, true, true
	}
	if !*fig20 && !*table1 && !*table2 {
		flag.Usage()
		return 2
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			if c := fatal(err); code == 0 {
				code = c
			}
		}
	}()
	res, err := apps.SynthesizePFCWith(&core.Options{ExploreWorkers: *exploreWorkers, DisableCache: true})
	if err != nil {
		return fatal(err)
	}
	fmt.Printf("synthesized pfc: schedule %d nodes, %d segments, all channel bounds = 1\n\n",
		len(res.Schedules[0].Nodes), len(res.Tasks[0].Segments))
	if *fig20 {
		pts, err := sim.Figure20(res, *frames, []int{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintFigure20(os.Stdout, pts); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table1 {
		rows, err := sim.Table1(res, []int{10, 50, 100, 500, 1000})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintTable1(os.Stdout, rows); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table2 {
		if err := sim.PrintTable2(os.Stdout, sim.Table2(res)); err != nil {
			return fatal(err)
		}
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "pfcbench:", err)
	return 1
}
