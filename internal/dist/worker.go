package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"repro/internal/petri"
)

// Worker side: a replica of the exploration state plus the serve loop.
//
// A worker holds the full store and enabled-set arena, rebuilt from the
// per-level delta broadcasts, so every worker agrees with the
// coordinator about dense MarkIDs without ever being told them
// explicitly. It expands exactly the frontier states whose shard it
// owns and classifies each successor as veto / known / new; ordering
// decisions stay with the coordinator.

// replica is one session's worker-side state.
type replica struct {
	net     *petri.Net
	part    []*petri.ECS
	tracker *petri.EnabledTracker
	stride  int
	spec    petri.ExpandSpec
	store   *petri.MarkingStore
	bits    []uint64
	scratch petri.Marking

	index, workers, shards int
}

func newReplica(m *initMsg) (*replica, error) {
	r := &replica{
		net:     m.net,
		spec:    m.spec,
		index:   m.index,
		workers: m.workers,
		shards:  m.shards,
		store:   petri.NewMarkingStore(len(m.net.Places)),
	}
	r.part = r.net.ECSPartition()
	r.tracker = petri.NewEnabledTracker(r.net, r.part)
	r.stride = r.tracker.Stride()
	if len(m.spec.Mask) != r.stride {
		return nil, fmt.Errorf("dist: spec mask has %d words, partition needs %d — net round-trip mismatch", len(m.spec.Mask), r.stride)
	}
	if len(m.spec.Caps) != len(r.net.Places) {
		return nil, fmt.Errorf("dist: spec caps cover %d places, net has %d", len(m.spec.Caps), len(r.net.Places))
	}
	for i, root := range m.roots {
		if len(root) != len(r.net.Places) {
			return nil, fmt.Errorf("dist: root %d has %d places, net has %d", i, len(root), len(r.net.Places))
		}
		id, isNew := r.store.Intern(root)
		if !isNew || int(id) != i {
			return nil, fmt.Errorf("dist: duplicate root %d", i)
		}
		r.bits = append(r.bits, make([]uint64, r.stride)...)
		r.tracker.Init(r.bits[i*r.stride:(i+1)*r.stride], root)
	}
	return r, nil
}

// owns reports whether this worker's shard range contains state id.
func (r *replica) owns(id petri.MarkID) bool {
	sh := petri.ShardOfHash(r.store.HashAt(id), r.shards)
	return petri.ShardOwner(sh, r.shards, r.workers) == r.index
}

// applyDelta re-fires one (parent, trans) discovery, growing the store
// and the enabled-set arena exactly as the coordinator's merge did.
func (r *replica) applyDelta(d petri.Delta) error {
	if int(d.Parent) >= r.store.Len() {
		return fmt.Errorf("dist: delta parent %d beyond store (%d states)", d.Parent, r.store.Len())
	}
	if int(d.Trans) < 0 || int(d.Trans) >= len(r.net.Transitions) {
		return fmt.Errorf("dist: delta transition %d out of range", d.Trans)
	}
	t := r.net.Transitions[d.Trans]
	m := r.store.At(d.Parent)
	if !m.Enabled(t) {
		return fmt.Errorf("dist: delta fires disabled transition %s at state %d", t.Name, d.Parent)
	}
	r.scratch = m.FireInto(r.scratch, t)
	id, isNew := r.store.Intern(r.scratch)
	if !isNew {
		return fmt.Errorf("dist: delta (%d, %s) re-discovers state %d", d.Parent, t.Name, id)
	}
	base := len(r.bits)
	r.bits = append(r.bits, make([]uint64, r.stride)...)
	r.tracker.Update(r.bits[base:base+r.stride],
		r.bits[int(d.Parent)*r.stride:(int(d.Parent)+1)*r.stride], int(d.Trans), r.store.At(id))
	return nil
}

// expandLevel applies the level's deltas and expands the owned frontier
// states, appending the result payload to dst.
func (r *replica) expandLevel(dst []byte, msg *expandMsg) ([]byte, error) {
	// The deltas must create exactly the frontier [start, end) on top of
	// the current replica — except on the first level, whose frontier is
	// the roots that arrived with init (no deltas).
	firstLevel := len(msg.deltas) == 0 && msg.start == 0 && msg.end == r.store.Len()
	if !firstLevel && (msg.start != r.store.Len() || len(msg.deltas) != msg.end-msg.start) {
		return nil, fmt.Errorf("dist: expand range [%d,%d) with %d deltas does not extend store of %d states",
			msg.start, msg.end, len(msg.deltas), r.store.Len())
	}
	for _, d := range msg.deltas {
		if err := r.applyDelta(d); err != nil {
			return nil, err
		}
	}
	if msg.end != r.store.Len() {
		return nil, fmt.Errorf("dist: frontier end %d, store has %d states after deltas", msg.end, r.store.Len())
	}
	// Count owned states first: the payload leads with the count.
	owned := 0
	for id := msg.start; id < msg.end; id++ {
		if r.owns(petri.MarkID(id)) {
			owned++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(owned))
	for id := msg.start; id < msg.end; id++ {
		if !r.owns(petri.MarkID(id)) {
			continue
		}
		dst = r.expandState(dst, petri.MarkID(id))
	}
	return dst, nil
}

// expandState emits one owned state's candidate stream: the fireable
// enabled ECSs in partition order, members in ascending transition
// order — the serial loop's emit order, which the coordinator's merge
// depends on.
func (r *replica) expandState(dst []byte, id petri.MarkID) []byte {
	m := r.store.At(id)
	bits := r.bits[int(id)*r.stride : (int(id)+1)*r.stride]
	// First pass counts candidates (the stream is length-prefixed);
	// enabled-set iteration is two bit scans, firing happens once.
	cands := 0
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		cands += len(r.part[ei].Trans)
	})
	dst = binary.AppendUvarint(dst, uint64(id))
	dst = binary.AppendUvarint(dst, uint64(cands))
	petri.ForEachMaskedBit(bits, r.spec.Mask, func(ei int) {
		for _, tid := range r.part[ei].Trans {
			r.scratch = m.FireInto(r.scratch, r.net.Transitions[tid])
			switch gid, ok := r.classify(); {
			case !ok:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candVeto)
			case gid != petri.NoMark:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candKnown)
				dst = binary.AppendUvarint(dst, uint64(gid))
			default:
				dst = binary.AppendUvarint(dst, uint64(tid)<<2|candNew)
			}
		}
	})
	return dst
}

// classify resolves the scratch successor: ok=false for a cap veto,
// otherwise the replica-known MarkID or NoMark for a first sighting.
func (r *replica) classify() (petri.MarkID, bool) {
	if r.spec.Veto(r.scratch) {
		return petri.NoMark, false
	}
	if gid, ok := r.store.Lookup(r.scratch); ok {
		return gid, true
	}
	return petri.NoMark, true
}

// ServeConn runs the worker side of a coordinator connection: hello,
// then exploration sessions until the coordinator closes the
// connection. It is the body of both spawned workers (MaybeWorker) and
// the standalone cmd/qssd binary.
func ServeConn(nc net.Conn, logw *logWriter) error {
	c := newConn(nc)
	if err := c.sendHello(); err != nil {
		return err
	}
	for {
		typ, payload, err := c.recv()
		if err == io.EOF {
			logw.printf("coordinator closed connection; exiting")
			return nil
		}
		if err != nil {
			return err
		}
		if typ != msgInit {
			return workerFail(c, fmt.Errorf("dist: expected init, got message type %d", typ))
		}
		init, err := decodeInit(payload)
		if err != nil {
			return workerFail(c, err)
		}
		if err := serveSession(c, init, logw); err != nil {
			return workerFail(c, err)
		}
	}
}

// serveSession runs one exploration: apply each level's deltas, expand
// the owned slice of the frontier, reply, until done.
func serveSession(c *conn, init *initMsg, logw *logWriter) error {
	r, err := newReplica(init)
	if err != nil {
		return err
	}
	logw.printf("session start: net %s (%d places, %d transitions), worker %d/%d over %d shards, %d roots",
		r.net.Name, len(r.net.Places), len(r.net.Transitions), r.index, r.workers, r.shards, r.store.Len())
	levels := 0
	var deltas []petri.Delta
	var out []byte
	for {
		typ, payload, err := c.recv()
		if err != nil {
			return err
		}
		switch typ {
		case msgDone:
			logw.printf("session end: %d levels, %d states replicated", levels, r.store.Len())
			return nil
		case msgExpand:
			var msg *expandMsg
			msg, deltas, err = decodeExpand(payload, deltas)
			if err != nil {
				return err
			}
			out, err = r.expandLevel(out[:0], msg)
			if err != nil {
				return err
			}
			if err := c.send(msgResult, out); err != nil {
				return err
			}
			levels++
		case msgError:
			return fmt.Errorf("dist: coordinator error: %s", payload)
		default:
			return fmt.Errorf("dist: unexpected message type %d in session", typ)
		}
	}
}

// workerFail reports the error to the coordinator (best effort) and
// returns it.
func workerFail(c *conn, err error) error {
	_ = c.send(msgError, []byte(err.Error()))
	return err
}
