package server

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A hand-rolled Prometheus registry: the repo takes no dependencies, and
// the server needs only the three classic instrument kinds — counters
// (monotone, optionally labelled), gauges (set-to-current), and one
// cumulative histogram — rendered in the text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/).
// Everything is mutex-guarded; the write path is a handful of integer
// ops per request, far off the synthesis hot path.

// metrics is the server's instrument set. All instruments are created
// up front so /metrics always exposes the full schema (a counter that
// has never fired still reports 0, which is what lets dashboards and
// the smoke test assert on series presence rather than traffic).
type metrics struct {
	mu sync.Mutex

	// requests by terminal outcome (ok, cache_hit folded into ok;
	// rejections and failures keep their own labels).
	requests *labeledCounter
	// cache effectiveness, counted per synthesis request actually
	// consulting the cache (process-global core.Stats would double-count
	// other in-process users).
	cacheHits   counter
	cacheMisses counter
	// cacheEntries mirrors core.Stats().Entries at scrape time; set by
	// the handler after each request and on scrape.
	cacheEntries gauge

	// admission
	queueDepth gauge // requests parked waiting for a slot
	inFlight   gauge // requests holding a slot
	ready      gauge // 1 until drain begins

	// work accounting
	latency        *histogram // server-side synthesis seconds
	statesExplored counter    // distinct markings interned across searches
	// store residency of the last successful synthesis: bytes the
	// searches' marking stores kept hot in RAM vs frozen to on-disk
	// delta segments (both 0 until a request completes; frozen stays 0
	// unless Config.FreezeLevels is on).
	storeHotBytes    gauge
	storeFrozenBytes gauge

	// panics answered 500 by the recovery middleware
	panics counter

	// dist pool, when the server owns one
	distWorkers   gauge
	distWorkerMem *labeledGauge // per worker: replica bytes after the last session
	// distRestarts mirrors the pool's cumulative respawn count
	// (Pool.RecoveryStats) and keeps its last value after the pool is
	// retired; distDegraded flips to 1 when an unrecoverable failure
	// makes the server drop the pool and continue in-process.
	distRestarts counter
	distDegraded gauge
}

func newMetrics() *metrics {
	return &metrics{
		requests: newLabeledCounter("qss_requests_total",
			"Synthesis requests by terminal outcome.", "outcome"),
		latency: newHistogram("qss_synthesis_seconds",
			"Server-side synthesis latency (cache hits included).",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}),
		distWorkerMem: newLabeledGauge("qss_dist_worker_mem_bytes",
			"Per-worker replica bytes (store+bits+cache) after the last dist session.", "worker"),
	}
}

// The outcome labels of qss_requests_total. Declared as constants so
// handlers and tests cannot drift apart on spelling.
const (
	outcomeOK         = "ok"
	outcomeBadRequest = "bad_request"
	outcomeFailed     = "failed"   // synthesis error (unschedulable, budget, internal)
	outcomeTimeout    = "timeout"  // request deadline hit
	outcomeRejected   = "rejected" // admission queue full
	outcomeDraining   = "draining" // refused during drain
	outcomeCanceled   = "canceled" // client went away while queued
)

// render writes the whole registry in Prometheus text format.
func (m *metrics) render(sb *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests.render(sb)
	renderSimple(sb, "qss_cache_hits_total", "counter",
		"Synthesis requests answered from the content-addressed cache.", m.cacheHits.v)
	renderSimple(sb, "qss_cache_misses_total", "counter",
		"Synthesis requests that ran the full pipeline.", m.cacheMisses.v)
	renderSimple(sb, "qss_cache_entries", "gauge",
		"Results currently held by the content-addressed cache.", m.cacheEntries.v)
	renderSimple(sb, "qss_queue_depth", "gauge",
		"Requests parked in the admission queue.", m.queueDepth.v)
	renderSimple(sb, "qss_inflight", "gauge",
		"Requests currently holding a synthesis slot.", m.inFlight.v)
	renderSimple(sb, "qss_ready", "gauge",
		"1 while the server admits work, 0 once drain has begun.", m.ready.v)
	renderSimple(sb, "qss_states_explored_total", "counter",
		"Distinct markings interned across all schedule searches.", m.statesExplored.v)
	renderSimple(sb, "qss_store_hot_bytes", "gauge",
		"Marking-store bytes resident in RAM after the last successful synthesis.", m.storeHotBytes.v)
	renderSimple(sb, "qss_store_frozen_bytes", "gauge",
		"Marking-store bytes frozen to on-disk delta segments after the last successful synthesis.", m.storeFrozenBytes.v)
	renderSimple(sb, "qss_panics_total", "counter",
		"Requests that panicked and were answered 500 by the recovery middleware.", m.panics.v)
	renderSimple(sb, "qss_dist_workers", "gauge",
		"Connected dist worker processes (0 when the server runs in-process only).", m.distWorkers.v)
	renderSimple(sb, "qss_dist_worker_restarts_total", "counter",
		"Dist worker processes respawned after mid-session death, cumulative over the pool's life.", m.distRestarts.v)
	renderSimple(sb, "qss_dist_pool_degraded", "gauge",
		"1 once an unrecoverable pool failure made the server continue in-process.", m.distDegraded.v)
	m.distWorkerMem.render(sb)
	m.latency.render(sb)
}

// counter and gauge are plain float64 cells; the registry mutex guards
// them, so they carry no synchronization of their own.
type counter struct{ v float64 }
type gauge struct{ v float64 }

func (m *metrics) addCounter(c *counter, d float64) {
	m.mu.Lock()
	c.v += d
	m.mu.Unlock()
}

// setCounter pins a counter cell to an externally accumulated total
// (the dist pool counts its own restarts; the cell just mirrors it,
// and keeps the last value once the pool is gone).
func (m *metrics) setCounter(c *counter, v float64) {
	m.mu.Lock()
	if v > c.v {
		c.v = v
	}
	m.mu.Unlock()
}

func (m *metrics) setGauge(g *gauge, v float64) {
	m.mu.Lock()
	g.v = v
	m.mu.Unlock()
}

func (m *metrics) addGauge(g *gauge, d float64) {
	m.mu.Lock()
	g.v += d
	m.mu.Unlock()
}

// labeledCounter is a counter family over one label dimension.
type labeledCounter struct {
	name, help, label string
	vals              map[string]float64
}

func newLabeledCounter(name, help, label string) *labeledCounter {
	return &labeledCounter{name: name, help: help, label: label, vals: map[string]float64{}}
}

func (m *metrics) incOutcome(outcome string) {
	m.mu.Lock()
	m.requests.vals[outcome]++
	m.mu.Unlock()
}

func (c *labeledCounter) render(sb *strings.Builder) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	for _, k := range sortedKeys(c.vals) {
		fmt.Fprintf(sb, "%s{%s=%q} %s\n", c.name, c.label, k, formatFloat(c.vals[k]))
	}
}

// labeledGauge is a gauge family over one label dimension.
type labeledGauge struct {
	name, help, label string
	vals              map[string]float64
}

func newLabeledGauge(name, help, label string) *labeledGauge {
	return &labeledGauge{name: name, help: help, label: label, vals: map[string]float64{}}
}

func (m *metrics) setLabeledGauge(g *labeledGauge, key string, v float64) {
	m.mu.Lock()
	g.vals[key] = v
	m.mu.Unlock()
}

func (g *labeledGauge) render(sb *strings.Builder) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
	for _, k := range sortedKeys(g.vals) {
		fmt.Fprintf(sb, "%s{%s=%q} %s\n", g.name, g.label, k, formatFloat(g.vals[k]))
	}
}

// histogram is a cumulative Prometheus histogram with fixed buckets.
type histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	counts     []uint64  // counts[i] = observations <= bounds[i] (cumulative, as the text format requires)
	sum        float64
	total      uint64
}

func newHistogram(name, help string, bounds []float64) *histogram {
	return &histogram{name: name, help: help, bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (m *metrics) observe(h *histogram, v float64) {
	m.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.total++
	m.mu.Unlock()
}

func (h *histogram) render(sb *strings.Builder) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for i, b := range h.bounds {
		fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), h.counts[i])
	}
	fmt.Fprintf(sb, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.total)
	fmt.Fprintf(sb, "%s_sum %s\n", h.name, formatFloat(h.sum))
	fmt.Fprintf(sb, "%s_count %d\n", h.name, h.total)
}

func renderSimple(sb *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, formatFloat(v))
}

// formatFloat renders values the way Prometheus expects: shortest
// round-trip representation, no exponent for the common integral case.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
