package pnml

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzPNMLParse drives arbitrary bytes through the importer. The
// properties: Parse never panics; an accepted document yields a net
// that validates, exports, and reimports; and export -> import ->
// export is a fixed point even for nets the fuzzer invents. Runs in CI
// via `make fuzz-smoke` alongside the FlowC and explorer fuzzers.
func FuzzPNMLParse(f *testing.F) {
	fixtures, _ := filepath.Glob(filepath.Join("testdata", "suite", "*.pnml"))
	for _, fix := range fixtures {
		if b, err := os.ReadFile(fix); err == nil {
			f.Add(b)
		}
	}
	for _, s := range []string{
		``,
		`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"/></net></pnml>`,
		`<pnml><net id="n" type="ptnet"><place id="p"><initialMarking><text>7</text></initialMarking></place></net></pnml>`,
		`<pnml><net id="n" type="ptnet"><page><page><place id="p"/></page></page></net></pnml>`,
		`<pnml><net id="n" type="ptnet"><arc id="a" source="x" target="y"/></net></pnml>`,
		`<pnml><net id="n" type="ptnet"><place id="p"><name>bare</name></place></net></pnml>`,
		`<pnml><net id="n"`,
		`<pnml><net id="n" type="symmetricnet"></net></pnml>`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ParseBytes(data)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted net fails Validate: %v", err)
		}
		b1, err := ExportBytes(n)
		if err != nil {
			t.Fatalf("export of accepted net failed: %v", err)
		}
		n2, err := ParseBytes(b1)
		if err != nil {
			t.Fatalf("reimport of exported net failed: %v\n%s", err, b1)
		}
		b2, err := ExportBytes(n2)
		if err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("export -> import -> export not a fixed point:\n-- first --\n%s\n-- second --\n%s", b1, b2)
		}
	})
}
