package core

import (
	"testing"
	"time"
)

// TestCacheHit: synthesizing the same sources twice returns the
// memoized Result on the second call.
func TestCacheHit(t *testing.T) {
	ResetCache()
	defer ResetCache()
	flowcSrc, specSrc := manyTaskApp(2)
	r1, err := Synthesize(flowcSrc, specSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(flowcSrc, specSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second synthesis should return the cached Result")
	}
	st := Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestCacheKey: semantically different inputs and options must map to
// different entries; Workers must not be part of the key.
func TestCacheKey(t *testing.T) {
	ResetCache()
	defer ResetCache()
	flowcSrc, specSrc := manyTaskApp(2)
	r1, err := Synthesize(flowcSrc, specSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// SkipIndependence changes the key.
	r2, err := Synthesize(flowcSrc, specSrc, &Options{SkipIndependence: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("SkipIndependence must not share a cache entry with the default")
	}
	// Workers does not: the parallel path hits the serial path's entry.
	r3, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Error("Workers must not be part of the cache key")
	}
	// Different source text misses.
	other, otherSpec := manyTaskApp(3)
	r4, err := Synthesize(other, otherSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("different sources must not collide")
	}
}

// TestCacheOptOut: DisableCache bypasses both lookup and store.
func TestCacheOptOut(t *testing.T) {
	ResetCache()
	defer ResetCache()
	flowcSrc, specSrc := manyTaskApp(2)
	r1, err := Synthesize(flowcSrc, specSrc, &Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(flowcSrc, specSrc, &Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("DisableCache must not return a shared Result")
	}
	if st := Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("stats = %+v, want empty cache", st)
	}
}

// TestCacheSpeedup enforces the headline cache property: a warm repeat
// synthesis is at least 10x faster than a cold run. The real margin is
// orders of magnitude (a hash and a map lookup vs the full flow), so
// the 10x floor stays robust on loaded CI machines.
func TestCacheSpeedup(t *testing.T) {
	ResetCache()
	defer ResetCache()
	flowcSrc, specSrc := manyTaskApp(4)
	const rounds = 20
	cold := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := Synthesize(flowcSrc, specSrc, &Options{DisableCache: true}); err != nil {
			t.Fatal(err)
		}
		cold += time.Since(start)
	}
	// Prime, then measure hits.
	if _, err := Synthesize(flowcSrc, specSrc, nil); err != nil {
		t.Fatal(err)
	}
	warm := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := Synthesize(flowcSrc, specSrc, nil); err != nil {
			t.Fatal(err)
		}
		warm += time.Since(start)
	}
	if warm*10 > cold {
		t.Errorf("warm cache not >=10x faster: cold %v, warm %v over %d rounds", cold, warm, rounds)
	}
}
