package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/petri"
)

// Pool is a coordinator's set of connected worker processes. It
// implements petri.FrontierRunner: each RunFrontier call is one
// exploration session sharded across the pool. A Pool serializes
// sessions internally, so it may be shared by sequential (or
// mutex-ordered) callers; Close tears the workers down.
type Pool struct {
	mu       sync.Mutex
	workers  []*conn
	wantFull []bool      // per worker: demanded full replicas in hello
	cmds     []*exec.Cmd // spawned locally; empty for Listen pools
	dir      string      // socket tempdir of a SpawnLocal pool
	full     bool        // coordinator-side full-replica fallback
	broken   error       // first infrastructure failure; poisons the pool
	closed   bool
	logw     *logWriter
	stats    SessionStats
}

// SessionStats describes the last completed exploration session —
// the protocol cost and per-worker replica memory the benchmarks and
// the CI memory gate report.
type SessionStats struct {
	Levels    int
	States    int
	Trimmed   bool  // replica mode the session actually ran in
	BytesSent int64 // coordinator -> workers (init, deltas)
	BytesRecv int64 // workers -> coordinator (candidate streams)
	// Workers holds each worker's end-of-session replica accounting,
	// in worker-index order.
	Workers []WorkerMem
}

// spawnHandshakeTimeout bounds how long SpawnLocal waits for each
// spawned worker to connect and greet. Its main job is failing fast
// when the re-executed binary does not call MaybeWorker.
const spawnHandshakeTimeout = 30 * time.Second

// listenHandshakeTimeout is the per-worker accept deadline for
// externally started workers (cmd/qssd): humans start those by hand,
// possibly compiling first, so the window is generous.
const listenHandshakeTimeout = 5 * time.Minute

// SpawnLocal starts n worker processes by re-executing the current
// binary (which must call MaybeWorker early; see its doc) connected
// over a unix socket in a private temp directory, and returns the
// ready pool. The workers inherit the parent's environment, so
// QSS_DIST_LOGDIR propagates.
func SpawnLocal(n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: SpawnLocal needs >= 1 worker, got %d", n)
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: resolve executable: %w", err)
	}
	dir, err := os.MkdirTemp("", "qssdist-")
	if err != nil {
		return nil, err
	}
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	defer ln.Close()
	p := &Pool{dir: dir, logw: newLogWriter("coord")}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			EnvWorker+"=1",
			EnvEndpoint+"=unix:"+sock,
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		p.cmds = append(p.cmds, cmd)
	}
	if err := p.accept(ln, n, spawnHandshakeTimeout); err != nil {
		p.Close()
		return nil, err
	}
	p.logw.printf("spawned %d local workers over %s", n, sock)
	return p, nil
}

// Listen awaits n externally started workers (cmd/qssd -connect) at the
// endpoint ("unix:/path", "tcp:host:port", or a bare unix path) and
// returns the ready pool. The workers' lifecycle belongs to whoever
// started them; Close only drops the connections.
func Listen(endpoint string, n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Listen needs >= 1 worker, got %d", n)
	}
	network, addr, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	p := &Pool{logw: newLogWriter("coord")}
	if err := p.accept(ln, n, listenHandshakeTimeout); err != nil {
		p.Close()
		return nil, err
	}
	p.logw.printf("accepted %d workers at %s", n, endpoint)
	return p, nil
}

// accept gathers n hello-ing workers from the listener. The deadline
// applies per worker (reset before each Accept), so a slowly assembled
// external pool is not cut off by the earlier arrivals' wait.
func (p *Pool) accept(ln net.Listener, n int, timeout time.Duration) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	d, hasDeadline := ln.(deadliner)
	for len(p.workers) < n {
		if hasDeadline {
			d.SetDeadline(time.Now().Add(timeout))
		}
		nc, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: waiting for worker %d/%d: %w", len(p.workers)+1, n, err)
		}
		c := newConn(nc)
		nc.SetDeadline(time.Now().Add(timeout))
		payload, err := c.expect(msgHello)
		var flags uint64
		if err == nil {
			flags, err = checkHello(payload)
		}
		if err != nil {
			nc.Close()
			return fmt.Errorf("dist: worker handshake: %w", err)
		}
		nc.SetDeadline(time.Time{})
		p.workers = append(p.workers, c)
		p.wantFull = append(p.wantFull, flags&helloFullReplicas != 0)
	}
	return nil
}

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// SetFullReplicas switches the pool's later sessions to the
// full-replica fallback: every worker rebuilds the whole store from
// broadcast delta batches (memory parity with the coordinator) instead
// of holding only its owned shards. Results are byte-identical either
// way; full replicas trade worker memory for local successor
// classification. A worker that demanded full replicas in its hello
// (cmd/qssd -full-replicas) forces the fallback regardless.
func (p *Pool) SetFullReplicas(full bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.full = full
}

// trimmed reports the replica mode the next session will use. Callers
// hold p.mu.
func (p *Pool) trimmed() bool {
	if p.full {
		return false
	}
	for _, wf := range p.wantFull {
		if wf {
			return false
		}
	}
	return true
}

// LastSessionStats returns the protocol accounting of the most recently
// completed RunFrontier session.
func (p *Pool) LastSessionStats() SessionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close ends every worker connection (workers exit on EOF), reaps
// locally spawned processes and removes the socket directory.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.workers {
		c.close()
	}
	var firstErr error
	for _, cmd := range p.cmds {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("dist: worker %d exited: %w", cmd.Process.Pid, err)
			}
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: worker %d hung at close; killed", cmd.Process.Pid)
			}
		}
	}
	if p.dir != "" {
		os.RemoveAll(p.dir)
	}
	return firstErr
}

// RunFrontier implements petri.FrontierRunner: one exploration session
// over the pool. The coordinator broadcasts the net, spec and roots,
// then per level ships the delta batch, gathers every worker's
// candidate stream, and performs the sequential first-discovery merge —
// walking frontier states in MarkID order and each state's candidates
// in the serial emit order — so the hooks observe exactly the serial
// loop's sequence and the numbering is byte-identical for every worker
// count. Returns false when a Reject hook aborted; a non-nil error is
// an infrastructure failure and poisons the pool.
func (p *Pool) RunFrontier(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (completed bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errors.New("dist: pool is closed")
	}
	if p.broken != nil {
		return false, fmt.Errorf("dist: pool failed earlier: %w", p.broken)
	}
	completed, err = p.runSession(n, store, spec, hooks)
	if err != nil {
		p.broken = err
		p.logw.printf("session failed: %v", err)
	}
	return completed, err
}

func (p *Pool) runSession(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (bool, error) {
	W := len(p.workers)
	S := petri.NumFrontierShards(W)
	trim := p.trimmed()
	roots := make([]petri.Marking, store.Len())
	for i := range roots {
		roots[i] = store.At(petri.MarkID(i))
	}
	start0 := startBytes(p.workers)
	for i, c := range p.workers {
		init := &initMsg{index: i, workers: W, shards: S, trim: trim, net: n, spec: spec, roots: roots}
		if err := c.send(msgInit, appendInit(nil, init)); err != nil {
			return false, fmt.Errorf("dist: init worker %d: %w", i, err)
		}
	}
	p.stats = SessionStats{Trimmed: trim}
	// owner maps an interned state to the worker owning its shard — the
	// shared pure-function partitioning every side agrees on.
	owner := func(id petri.MarkID) int {
		return petri.ShardOwner(petri.ShardOfHash(store.HashAt(id), S), S, W)
	}
	var (
		deltas  []petri.Delta      // full-replica mode: broadcast batch
		pending [][]petri.VecDelta // trimmed mode: per-worker batches
		vcaches []*vecCache        // trimmed mode: per-worker cache models
		scratch petri.Marking
		payload = make([]byte, 0, 1<<12)
		streams = make([]resultStream, W)
	)
	if trim {
		pending = make([][]petri.VecDelta, W)
		vcaches = make([]*vecCache, W)
		for i := range vcaches {
			vcaches[i] = newVecCache()
		}
	}
	finish := func(completed bool) (bool, error) {
		for i, c := range p.workers {
			if err := c.send(msgDone, nil); err != nil {
				return false, fmt.Errorf("dist: finish worker %d: %w", i, err)
			}
		}
		p.stats.Workers = make([]WorkerMem, W)
		for i, c := range p.workers {
			buf, err := c.expect(msgStats)
			if err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
			if p.stats.Workers[i], err = decodeStats(buf); err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
		}
		p.stats.States = store.Len()
		p.stats.BytesSent, p.stats.BytesRecv = sentRecvSince(p.workers, start0)
		p.logw.printf("session %s: %d levels, %d states, %dB sent, %dB received (trimmed=%v, completed=%v)",
			n.Name, p.stats.Levels, p.stats.States, p.stats.BytesSent, p.stats.BytesRecv, trim, completed)
		return completed, nil
	}
	for levelStart := 0; ; {
		levelEnd := store.Len()
		if levelStart == levelEnd {
			return finish(true)
		}
		if trim {
			// Per-worker batches: each worker receives only the records
			// whose child it owns. Vector attachment mirrors the
			// worker's cache in lockstep (see vcache.go): owned parents
			// never ship, boundary parents ship on cache miss.
			for i, c := range p.workers {
				recs := pending[i]
				for k := range recs {
					if owner(recs[k].Parent) == i {
						continue
					}
					if !vcaches[i].hit(recs[k].Parent) {
						recs[k].ParentVec = store.At(recs[k].Parent)
					}
				}
				payload = appendExpandTrim(payload[:0], levelStart, levelEnd, recs)
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
				pending[i] = recs[:0]
			}
		} else {
			payload = appendExpand(payload[:0], levelStart, levelEnd, deltas)
			for i, c := range p.workers {
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
			}
		}
		// Gather every stream before merging: the merge interleaves them
		// by state ownership. Reads are sequential — the workers compute
		// concurrently regardless, since the broadcast already happened.
		for i, c := range p.workers {
			buf, err := c.expect(msgResult)
			if err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
			if err := streams[i].reset(buf); err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
		}
		// Sequential first-discovery merge, exactly phase C of
		// petri.RunFrontier.
		deltas = deltas[:0]
		for id := levelStart; id < levelEnd; id++ {
			ow := owner(petri.MarkID(id))
			cands, err := streams[ow].nextState(id)
			if err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
			}
			if hooks.BeginState != nil {
				hooks.BeginState(petri.MarkID(id))
			}
			for k := 0; k < cands; k++ {
				tag, trans, known, err := streams[ow].nextCand()
				if err != nil {
					return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
				}
				if trans < 0 || trans >= len(n.Transitions) {
					return false, fmt.Errorf("dist: worker %d: candidate transition %d out of range", ow, trans)
				}
				switch tag {
				case candVeto:
					if !hooks.Reject(petri.MarkID(id), int32(trans), false) {
						return finish(false)
					}
				case candKnown:
					if int(known) >= levelEnd {
						return false, fmt.Errorf("dist: worker %d: known state %d beyond frontier %d", ow, known, levelEnd)
					}
					hooks.Edge(petri.MarkID(id), int32(trans), known, false)
				case candNew:
					t := n.Transitions[trans]
					m := store.At(petri.MarkID(id))
					if !m.Enabled(t) {
						return false, fmt.Errorf("dist: worker %d: candidate fires disabled %s at state %d", ow, t.Name, id)
					}
					scratch = m.FireInto(scratch, t)
					if spec.Veto(scratch) {
						return false, fmt.Errorf("dist: worker %d: new candidate of state %d via %s exceeds the place caps — worker/coordinator spec mismatch", ow, id, t.Name)
					}
					h := petri.HashMarking(scratch)
					if g, ok := store.LookupHashed(scratch, h); ok {
						hooks.Edge(petri.MarkID(id), int32(trans), g, false)
						continue
					}
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(petri.MarkID(id), int32(trans), true) {
							return finish(false)
						}
						continue
					}
					g, _ := store.InternHashed(scratch, h)
					if trim {
						cw := petri.ShardOwner(petri.ShardOfHash(h, S), S, W)
						pending[cw] = append(pending[cw], petri.VecDelta{
							Child: g, Parent: petri.MarkID(id), Trans: int32(trans),
						})
					} else {
						deltas = append(deltas, petri.Delta{Parent: petri.MarkID(id), Trans: int32(trans)})
					}
					hooks.Edge(petri.MarkID(id), int32(trans), g, true)
				default:
					return false, fmt.Errorf("dist: worker %d: unknown candidate tag %d", ow, tag)
				}
			}
		}
		for i := range streams {
			if err := streams[i].done(); err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", i, err)
			}
		}
		p.stats.Levels++
		levelStart = levelEnd
	}
}

func startBytes(ws []*conn) (totals [2]int64) {
	for _, c := range ws {
		totals[0] += c.sent
		totals[1] += c.received
	}
	return totals
}

func sentRecvSince(ws []*conn, start [2]int64) (sent, recv int64) {
	now := startBytes(ws)
	return now[0] - start[0], now[1] - start[1]
}

// resultStream is a cursor over one worker's per-level candidate
// payload.
type resultStream struct {
	buf       []byte
	remaining int // owned states left
	cands     int // candidates left within the current state
}

func (s *resultStream) reset(buf []byte) error {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return fmt.Errorf("state count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, int(n), 0
	return nil
}

// nextState positions the stream at the given owned state and returns
// its candidate count.
func (s *resultStream) nextState(want int) (int, error) {
	if s.cands != 0 {
		return 0, fmt.Errorf("previous state has %d unread candidates", s.cands)
	}
	if s.remaining == 0 {
		return 0, fmt.Errorf("stream exhausted before state %d", want)
	}
	id, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, fmt.Errorf("state id: %w", err)
	}
	if int(id) != want {
		return 0, fmt.Errorf("stream has state %d, merge expects %d", id, want)
	}
	n, rest, err := decodeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("candidate count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, s.remaining-1, int(n)
	return int(n), nil
}

func (s *resultStream) nextCand() (tag int, trans int, known petri.MarkID, err error) {
	if s.cands == 0 {
		return 0, 0, 0, fmt.Errorf("no candidates left in state")
	}
	v, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("candidate: %w", err)
	}
	tag, trans = int(v&3), int(v>>2)
	if tag == candKnown {
		var g uint64
		g, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("known id: %w", err)
		}
		known = petri.MarkID(g)
	}
	s.buf, s.cands = rest, s.cands-1
	return tag, trans, known, nil
}

// done verifies the level's stream was fully consumed.
func (s *resultStream) done() error {
	if s.remaining != 0 || s.cands != 0 || len(s.buf) != 0 {
		return fmt.Errorf("stream not fully consumed (%d states, %d candidates, %d bytes left)", s.remaining, s.cands, len(s.buf))
	}
	return nil
}
