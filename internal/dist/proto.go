package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/petri"
)

// Length-prefixed binary framing. Every message is a 4-byte
// little-endian payload length, a 1-byte type, and the payload —
// varint-encoded via the petri wire helpers. The protocol is strictly
// coordinator-driven: workers speak only when spoken to (hello on
// connect, one result per expand), so neither side ever needs to
// multiplex.

const (
	protoMagic   = "qssd"
	protoVersion = 1
	// maxFrame bounds a single message payload; a level's candidate
	// stream is the largest message and stays far below this for any
	// exploration that fits in memory.
	maxFrame = 1 << 30
)

// Message types.
const (
	msgHello  byte = 1 // worker -> coordinator, on connect
	msgInit   byte = 2 // coordinator -> worker, session start
	msgExpand byte = 3 // coordinator -> worker, one level
	msgResult byte = 4 // worker -> coordinator, one level's candidates
	msgDone   byte = 5 // coordinator -> worker, session end
	msgError  byte = 6 // either direction, carries a message string
)

// Candidate tags within a result stream.
const (
	candVeto  = 0 // successor beyond the spec caps
	candKnown = 1 // successor already interned in the replica
	candNew   = 2 // successor unknown to the replica; coordinator resolves
)

// conn wraps a net.Conn with buffered framing and traffic accounting.
type conn struct {
	rw       io.ReadWriteCloser
	br       *bufio.Reader
	bw       *bufio.Writer
	sent     int64
	received int64
	scratch  []byte
}

func newConn(rw io.ReadWriteCloser) *conn {
	return &conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16), bw: bufio.NewWriterSize(rw, 1<<16)}
}

func (c *conn) close() error { return c.rw.Close() }

// send frames and flushes one message.
func (c *conn) send(typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: message type %d payload %d exceeds frame limit", typ, len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	c.sent += int64(len(hdr)) + int64(len(payload))
	return c.bw.Flush()
}

// recv reads one message into the connection's scratch buffer; the
// returned payload is valid until the next recv.
func (c *conn) recv() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	if cap(c.scratch) < int(n) {
		c.scratch = make([]byte, n)
	}
	c.scratch = c.scratch[:n]
	if _, err := io.ReadFull(c.br, c.scratch); err != nil {
		return 0, nil, err
	}
	c.received += int64(len(hdr)) + int64(n)
	return hdr[4], c.scratch, nil
}

// expect receives one message and requires the given type; a msgError
// from the peer is surfaced as its carried error.
func (c *conn) expect(typ byte) ([]byte, error) {
	got, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	if got == msgError {
		return nil, fmt.Errorf("dist: peer error: %s", payload)
	}
	if got != typ {
		return nil, fmt.Errorf("dist: unexpected message type %d (want %d)", got, typ)
	}
	return payload, nil
}

func (c *conn) sendHello() error {
	return c.send(msgHello, binary.AppendUvarint([]byte(protoMagic), protoVersion))
}

func checkHello(payload []byte) error {
	if len(payload) < len(protoMagic) || string(payload[:len(protoMagic)]) != protoMagic {
		return fmt.Errorf("dist: bad hello magic")
	}
	v, n := binary.Uvarint(payload[len(protoMagic):])
	if n <= 0 || v != protoVersion {
		return fmt.Errorf("dist: protocol version %d (want %d)", v, protoVersion)
	}
	return nil
}

// initMsg is the decoded session-start payload.
type initMsg struct {
	index, workers, shards int
	net                    *petri.Net
	spec                   petri.ExpandSpec
	roots                  []petri.Marking
}

func appendInit(dst []byte, m *initMsg) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.index))
	dst = binary.AppendUvarint(dst, uint64(m.workers))
	dst = binary.AppendUvarint(dst, uint64(m.shards))
	dst = petri.AppendNet(dst, m.net)
	dst = binary.AppendUvarint(dst, uint64(len(m.spec.Mask)))
	for _, w := range m.spec.Mask {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.spec.Caps)))
	for _, cp := range m.spec.Caps {
		// Caps are >= -1; shift by one so "unbounded" encodes as 0.
		dst = binary.AppendUvarint(dst, uint64(cp+1))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.roots)))
	for _, r := range m.roots {
		dst = petri.AppendMarking(dst, r)
	}
	return dst
}

func decodeInit(buf []byte) (*initMsg, error) {
	m := &initMsg{}
	var err error
	u := func() uint64 {
		var v uint64
		if err == nil {
			v, buf, err = decodeUvarint(buf)
		}
		return v
	}
	m.index, m.workers, m.shards = int(u()), int(u()), int(u())
	if err != nil {
		return nil, fmt.Errorf("dist: init header: %w", err)
	}
	if m.workers < 1 || m.index < 0 || m.index >= m.workers || m.shards < 1 {
		return nil, fmt.Errorf("dist: init header out of range (index %d, workers %d, shards %d)", m.index, m.workers, m.shards)
	}
	m.net, buf, err = petri.DecodeNet(buf)
	if err != nil {
		return nil, err
	}
	nm := u()
	if err == nil && nm*8 > uint64(len(buf)) {
		err = fmt.Errorf("mask length %d exceeds payload", nm)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init mask: %w", err)
	}
	m.spec.Mask = make([]uint64, nm)
	for i := range m.spec.Mask {
		m.spec.Mask[i] = binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
	}
	nc := u()
	if err == nil && nc > uint64(len(buf)) {
		err = fmt.Errorf("caps length %d exceeds payload", nc)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init caps: %w", err)
	}
	m.spec.Caps = make([]int, nc)
	for i := range m.spec.Caps {
		m.spec.Caps[i] = int(u()) - 1
	}
	nr := u()
	if err == nil && nr > uint64(len(buf)) {
		err = fmt.Errorf("root count %d exceeds payload", nr)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: init roots: %w", err)
	}
	for i := uint64(0); i < nr; i++ {
		var r petri.Marking
		r, buf, err = petri.DecodeMarking(buf)
		if err != nil {
			return nil, fmt.Errorf("dist: init root %d: %w", i, err)
		}
		m.roots = append(m.roots, r)
	}
	return m, nil
}

// expandMsg is the decoded per-level payload: the frontier id range and
// the delta batch creating it (empty on the first level, whose states
// arrived as init roots).
type expandMsg struct {
	start, end int
	deltas     []petri.Delta
}

func appendExpand(dst []byte, start, end int, deltas []petri.Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(start))
	dst = binary.AppendUvarint(dst, uint64(end))
	return petri.AppendDeltas(dst, deltas)
}

func decodeExpand(buf []byte, deltas []petri.Delta) (*expandMsg, []petri.Delta, error) {
	s, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, deltas, fmt.Errorf("dist: expand start: %w", err)
	}
	e, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, deltas, fmt.Errorf("dist: expand end: %w", err)
	}
	deltas, _, err = petri.DecodeDeltas(deltas[:0], buf)
	if err != nil {
		return nil, deltas, err
	}
	return &expandMsg{start: int(s), end: int(e), deltas: deltas}, deltas, nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or overlong varint")
	}
	return v, buf[n:], nil
}

// logWriter is the shared, optionally file-backed logger: when
// QSS_DIST_LOGDIR is set, each process writes its own
// <role>-<pid>.log there (the CI determinism job uploads the directory
// on failure); otherwise output goes to the fallback writer — discard
// for coordinators and SpawnLocal workers (whose stderr is the
// parent's), stderr for the standalone qssd worker.
type logWriter struct {
	l *log.Logger
}

func newLogWriter(role string) *logWriter { return newLogWriterTo(role, io.Discard) }

func newLogWriterTo(role string, fallback io.Writer) *logWriter {
	w := fallback
	if dir := os.Getenv(EnvLogDir); dir != "" {
		f, err := os.OpenFile(
			filepath.Join(dir, fmt.Sprintf("%s-%d.log", role, os.Getpid())),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			w = f
		}
	}
	return &logWriter{l: log.New(w, fmt.Sprintf("dist %s %d: ", role, os.Getpid()), log.LstdFlags|log.Lmicroseconds)}
}

func (lw *logWriter) printf(format string, args ...any) {
	if lw != nil && lw.l != nil {
		lw.l.Printf(format, args...)
	}
}
