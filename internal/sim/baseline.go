package sim

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
)

// Baseline executes the linked system the traditional way (Section 8.2's
// comparison point): every process is a separate task under a simple
// round-robin scheduler, communicating through FIFO channels of
// configurable capacity. A task runs until it blocks on a channel; the
// scheduler then charges a context switch and hands control to the next
// runnable task.
type Baseline struct {
	Sys  *link.System
	Cost *CostModel
	// Inline uses inlined communication primitives (the paper reports
	// ~30% faster, larger code).
	Inline bool
	// Capacity is the uniform channel capacity (the x axis of Figure
	// 20); individual channels can be overridden via CapacityOf.
	Capacity int
	// CapacityOf overrides capacities per channel name.
	CapacityOf map[string]int

	Machine  *Machine
	Channels map[string]*Channel
	Inputs   map[string]*InputStream
	Outputs  map[string]*OutputStream

	// Switches counts context switches performed.
	Switches int64

	runners []*runner
}

type blockCond func() bool

type runner struct {
	name   string
	scope  *Scope
	resume chan struct{}
	yield  chan struct{}
	cond   blockCond // nil when runnable unconditionally
	dead   bool      // permanently blocked (input exhausted) or crashed
	err    error
	// rbuf is the runner's channel-read scratch: READ_DATA copies the
	// received values straight into the destination cell, so the
	// intermediate slice never escapes a step and is reused.
	rbuf []int64
}

type quitPanic struct{}

// NewBaseline prepares a baseline execution of the system.
func NewBaseline(sys *link.System, cost *CostModel, capacity int) *Baseline {
	b := &Baseline{
		Sys:      sys,
		Cost:     cost,
		Capacity: capacity,
		Machine:  NewMachine(cost),
		Channels: map[string]*Channel{},
		Inputs:   map[string]*InputStream{},
		Outputs:  map[string]*OutputStream{},
	}
	for _, ch := range sys.Channels {
		cap := capacity
		if ch.Spec.Bound > 0 && (cap <= 0 || ch.Spec.Bound < cap) {
			cap = ch.Spec.Bound
		}
		b.Channels[ch.Spec.Name] = NewChannel(ch.Spec.Name, cap)
	}
	for _, in := range sys.Inputs {
		b.Inputs[in.Spec.Name] = NewInputStream(in.Spec.Name)
	}
	for _, out := range sys.Outputs {
		b.Outputs[out.Spec.Name] = &OutputStream{Name: out.Spec.Name}
	}
	return b
}

// Input returns the stream of the named environment input.
func (b *Baseline) Input(name string) *InputStream { return b.Inputs[name] }

// Output returns the stream of the named environment output.
func (b *Baseline) Output(name string) *OutputStream { return b.Outputs[name] }

// Run executes the system until no process can make progress (typically
// because the environment input streams are exhausted). It returns the
// total cycle count.
func (b *Baseline) Run() (int64, error) {
	if b.CapacityOf != nil {
		for name, cap := range b.CapacityOf {
			if ch := b.Channels[name]; ch != nil {
				ch.Capacity = cap
			}
		}
	}
	for _, cp := range b.Sys.Procs {
		r := &runner{
			name:   cp.Proc.Name,
			scope:  NewScope(),
			resume: make(chan struct{}),
			yield:  make(chan struct{}),
		}
		// Hoisted declarations; startup initializers run once.
		for _, v := range cp.InitVars {
			r.scope.Declare(v.Name, v.ArraySize)
		}
		b.runners = append(b.runners, r)
	}
	for i, cp := range b.Sys.Procs {
		r := b.runners[i]
		proc := cp.Proc
		go func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(quitPanic); !ok {
						r.err = fmt.Errorf("sim: process %s panicked: %v", r.name, p)
					}
				}
				r.dead = true
				r.yield <- struct{}{}
			}()
			<-r.resume
			// Startup initializers.
			cpi := b.Sys.ProcByName(r.name)
			for _, v := range cpi.InitVars {
				if v.Init != nil {
					iv, err := b.Machine.Eval(r.scope, v.Init)
					if err != nil {
						r.err = err
						panic(quitPanic{})
					}
					r.scope.Cell(v.Name)[0] = iv
				}
			}
			for _, st := range cpi.InitStmts {
				if err := b.Machine.ExecPlain(r.scope, st); err != nil {
					r.err = err
					panic(quitPanic{})
				}
			}
			// Cyclic process semantics: the body repeats forever.
			for {
				for _, s := range bodyAfterInit(proc) {
					if err := b.exec(r, s); err != nil {
						r.err = err
						panic(quitPanic{})
					}
				}
			}
		}()
	}
	// Round-robin: run each runnable process until it blocks.
	last := -1
	for {
		ran := false
		for off := 0; off < len(b.runners); off++ {
			i := (last + 1 + off) % len(b.runners)
			r := b.runners[i]
			if r.dead {
				continue
			}
			if r.cond != nil && !r.cond() {
				continue
			}
			r.cond = nil
			if last != i {
				if last >= 0 {
					b.Machine.Charge(b.Cost.CtxSwitch)
					b.Switches++
				}
				last = i
			}
			r.resume <- struct{}{}
			<-r.yield
			ran = true
			if r.err != nil {
				b.stopAll()
				return b.Machine.Cycles, fmt.Errorf("sim: baseline: %v", r.err)
			}
			break
		}
		if !ran {
			break
		}
	}
	b.stopAll()
	return b.Machine.Cycles, nil
}

func (b *Baseline) stopAll() {
	for _, r := range b.runners {
		if r.dead {
			continue
		}
		r.dead = true
		// Wake the goroutine so it can unwind via quitPanic.
		go func(rr *runner) {
			defer func() { recover() }()
			close(rr.resume)
		}(r)
	}
}

// bodyAfterInit returns the process body minus the top-level
// initialization prefix (declarations and port-free statements, handled
// at startup).
func bodyAfterInit(p *flowc.Process) []flowc.Stmt {
	stmts := p.Body.Stmts
	for len(stmts) > 0 {
		if _, ok := stmts[0].(*flowc.DeclStmt); ok {
			stmts = stmts[1:]
			continue
		}
		if !compile.ContainsPortOp(stmts[0]) {
			stmts = stmts[1:]
			continue
		}
		break
	}
	return stmts
}

// park blocks the runner until cond holds; panics with quitPanic when the
// simulation is being torn down.
func (b *Baseline) park(r *runner, cond blockCond) {
	r.cond = cond
	r.yield <- struct{}{}
	if _, ok := <-r.resume; !ok {
		panic(quitPanic{})
	}
}

// exec interprets one statement with full port semantics.
func (b *Baseline) exec(r *runner, s flowc.Stmt) error {
	m := b.Machine
	switch x := s.(type) {
	case nil:
		return nil
	case *flowc.Read:
		return b.execRead(r, x)
	case *flowc.Write:
		return b.execWrite(r, x)
	case *flowc.Select:
		return b.execSelect(r, x)
	case *flowc.Block:
		for _, st := range x.Stmts {
			if err := b.exec(r, st); err != nil {
				return err
			}
		}
		return nil
	case *flowc.If:
		m.Charge(m.Cost.Branch)
		c, err := m.EvalBool(r.scope, x.Cond)
		if err != nil {
			return err
		}
		if c {
			return b.exec(r, x.Then)
		}
		return b.exec(r, x.Else)
	case *flowc.While:
		for {
			m.Charge(m.Cost.Branch)
			c, err := m.EvalBool(r.scope, x.Cond)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := b.exec(r, x.Body); err != nil {
				return err
			}
		}
	case *flowc.For:
		if x.Init != nil {
			if err := b.exec(r, x.Init); err != nil {
				return err
			}
		}
		for {
			if x.Cond != nil {
				m.Charge(m.Cost.Branch)
				c, err := m.EvalBool(r.scope, x.Cond)
				if err != nil {
					return err
				}
				if !c {
					return nil
				}
			}
			if err := b.exec(r, x.Body); err != nil {
				return err
			}
			if x.Post != nil {
				if _, err := m.Eval(r.scope, x.Post); err != nil {
					return err
				}
			}
		}
	default:
		// Plain statements (declarations, expressions) share the
		// machine's executor.
		return m.ExecPlain(r.scope, s)
	}
}

func (b *Baseline) binding(proc, port string) *link.Binding {
	return b.Sys.PortBinding(proc, port)
}

func (b *Baseline) execRead(r *runner, x *flowc.Read) error {
	bd := b.binding(r.name, x.Port)
	if bd == nil {
		return fmt.Errorf("sim: %s.%s unbound", r.name, x.Port)
	}
	m := b.Machine
	var vals []int64
	switch bd.Kind {
	case link.BindChannel:
		ch := b.Channels[bd.Channel.Spec.Name]
		if !ch.CanRead(x.NItems) {
			ch.BlockedReads++
			b.park(r, func() bool { return ch.CanRead(x.NItems) })
		}
		if cap(r.rbuf) < x.NItems {
			r.rbuf = make([]int64, x.NItems)
		}
		vals = r.rbuf[:x.NItems]
		if err := ch.ReadInto(vals, x.NItems); err != nil {
			return err
		}
	case link.BindEnvIn:
		in := b.Inputs[bd.Input.Spec.Name]
		if in.Len() < x.NItems {
			b.park(r, func() bool { return in.Len() >= x.NItems })
		}
		var err error
		vals, err = in.Pop(x.NItems)
		if err != nil {
			return err
		}
		m.Charge(m.Cost.EnvCall + m.Cost.EnvItem*int64(x.NItems))
		return storeRead(r.scope, x, vals)
	default:
		return fmt.Errorf("sim: READ_DATA on non-input binding %s.%s", r.name, x.Port)
	}
	m.Charge(m.Cost.commCall(b.Inline) + m.Cost.CommItem*int64(x.NItems))
	return storeRead(r.scope, x, vals)
}

// storeRead writes received values into the destination variable.
func storeRead(sc *Scope, x *flowc.Read, vals []int64) error {
	id, ok := x.Dest.(*flowc.Ident)
	if !ok {
		return fmt.Errorf("sim: READ_DATA destination must be a variable")
	}
	cell := sc.Cell(id.Name)
	if len(cell) < len(vals) {
		return fmt.Errorf("sim: destination %s too small for %d items", id.Name, len(vals))
	}
	copy(cell, vals)
	return nil
}

// loadWrite gathers the values to send.
func (b *Baseline) loadWrite(sc *Scope, x *flowc.Write) ([]int64, error) {
	if id, ok := x.Src.(*flowc.Ident); ok {
		cell := sc.Cell(id.Name)
		if len(cell) >= x.NItems {
			out := make([]int64, x.NItems)
			copy(out, cell)
			return out, nil
		}
	}
	if x.NItems != 1 {
		return nil, fmt.Errorf("sim: WRITE_DATA of %d items requires an array source", x.NItems)
	}
	v, err := b.Machine.Eval(sc, x.Src)
	if err != nil {
		return nil, err
	}
	return []int64{v}, nil
}

func (b *Baseline) execWrite(r *runner, x *flowc.Write) error {
	bd := b.binding(r.name, x.Port)
	if bd == nil {
		return fmt.Errorf("sim: %s.%s unbound", r.name, x.Port)
	}
	vals, err := b.loadWrite(r.scope, x)
	if err != nil {
		return err
	}
	m := b.Machine
	switch bd.Kind {
	case link.BindChannel:
		ch := b.Channels[bd.Channel.Spec.Name]
		if !ch.CanWrite(len(vals)) {
			ch.BlockedWrites++
			b.park(r, func() bool { return ch.CanWrite(len(vals)) })
		}
		if err := ch.Write(vals); err != nil {
			return err
		}
	case link.BindEnvOut:
		b.Outputs[bd.Output.Spec.Name].Append(vals...)
		m.Charge(m.Cost.EnvCall + m.Cost.EnvItem*int64(len(vals)))
		return nil
	default:
		return fmt.Errorf("sim: WRITE_DATA on non-output binding %s.%s", r.name, x.Port)
	}
	m.Charge(m.Cost.commCall(b.Inline) + m.Cost.CommItem*int64(len(vals)))
	return nil
}

// armReady reports whether a SELECT arm can proceed without blocking.
func (b *Baseline) armReady(proc string, a *flowc.SelectArm) bool {
	bd := b.binding(proc, a.Port)
	if bd == nil {
		return false
	}
	switch bd.Kind {
	case link.BindChannel:
		ch := b.Channels[bd.Channel.Spec.Name]
		// Direction decides: readers need items, writers need space.
		if pd := b.Sys.ProcByName(proc).Proc.PortByName(a.Port); pd != nil && pd.Dir == flowc.PortOut {
			return ch.CanWrite(a.NItems)
		}
		return ch.CanRead(a.NItems)
	case link.BindEnvIn:
		return b.Inputs[bd.Input.Spec.Name].Len() >= a.NItems
	case link.BindEnvOut:
		return true
	}
	return false
}

func (b *Baseline) execSelect(r *runner, x *flowc.Select) error {
	b.Machine.Charge(b.Machine.Cost.Branch)
	pick := -1
	for i := range x.Arms {
		if b.armReady(r.name, &x.Arms[i]) {
			pick = i
			break
		}
	}
	if pick < 0 {
		b.park(r, func() bool {
			for i := range x.Arms {
				if b.armReady(r.name, &x.Arms[i]) {
					return true
				}
			}
			return false
		})
		for i := range x.Arms {
			if b.armReady(r.name, &x.Arms[i]) {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return fmt.Errorf("sim: SELECT woke with no ready arm in %s", r.name)
	}
	for _, st := range x.Arms[pick].Body {
		if err := b.exec(r, st); err != nil {
			return err
		}
	}
	return nil
}
