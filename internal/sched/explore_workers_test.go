package sched

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/petri"
)

// renderSchedule flattens a schedule to a canonical byte form: node
// order, markings, chosen ECSs and edge targets all included, so two
// renders are equal iff the schedules are structurally identical.
func renderSchedule(t *testing.T, s *Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Format(&buf); err != nil {
		t.Fatalf("format: %v", err)
	}
	for _, n := range s.Nodes {
		fmt.Fprintf(&buf, "node %d marking %v", n.ID, []int(n.Marking))
		if n.ECS != nil {
			fmt.Fprintf(&buf, " ecs %d %v", n.ECS.Index, n.ECS.Trans)
		}
		for _, e := range n.Edges {
			fmt.Fprintf(&buf, " [%d->%d]", e.Trans, e.To.ID)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGraphEngineExploreWorkersDeterminism: the parallel frontier of
// the graph engine must produce byte-identical schedules and search
// statistics for every ExploreWorkers value, on every paper net and on
// state spaces large enough to span many BFS levels. Runs under -race
// via the Makefile.
func TestGraphEngineExploreWorkersDeterminism(t *testing.T) {
	nets := []struct {
		name string
		net  *petri.Net
	}{
		{"fig4a", fig4aNet(t)},
		{"fig5", fig5Net(t)},
		{"fig6", fig6Net(t)},
		{"fig8", fig8Net(t)},
		{"divider-k6", dividerNet(6)},
		{"divider-k12", dividerNet(12)},
	}
	for _, tc := range nets {
		tc.net.Warm()
		serial, err := FindSchedule(tc.net, 0, &Options{Engine: EngineGraph})
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		want := renderSchedule(t, serial)
		for _, w := range []int{1, 4, 8} {
			s, err := FindSchedule(tc.net, 0, &Options{Engine: EngineGraph, ExploreWorkers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if got := renderSchedule(t, s); !bytes.Equal(got, want) {
				t.Fatalf("%s workers=%d: schedule differs from serial\nserial:\n%s\nparallel:\n%s",
					tc.name, w, want, got)
			}
			if s.Stats.NodesCreated != serial.Stats.NodesCreated ||
				s.Stats.DistinctMarkings != serial.Stats.DistinctMarkings {
				t.Fatalf("%s workers=%d: stats differ: %+v vs %+v", tc.name, w, s.Stats, serial.Stats)
			}
		}
	}
}

// TestGraphEngineExploreWorkersBudget: the parallel path must respect
// MaxNodes like the serial one — an over-budget exploration fails with
// ErrBudget rather than returning a partial schedule.
func TestGraphEngineExploreWorkersBudget(t *testing.T) {
	n := dividerNet(8)
	for _, w := range []int{1, 4} {
		_, err := FindSchedule(n, 0, &Options{Engine: EngineGraph, ExploreWorkers: w, MaxNodes: 10})
		if err == nil {
			t.Fatalf("workers=%d: tiny budget should fail", w)
		}
	}
}

// TestTreeEngineAllocsPerNode pins the allocation behaviour of the EP
// tree engines the way the graph search is pinned: expansion must not
// allocate per (node, ECS) pair. Each created node inherently costs a
// handful of allocations (the treeNode, its kids map entries, the
// ordering heuristic's scratch); what this test rules out is the old
// per-node enabled-slice + pass-split behaviour growing with the
// partition size on top of that.
func TestTreeEngineAllocsPerNode(t *testing.T) {
	n := dividerNet(6)
	n.Warm()
	for _, eng := range []struct {
		name string
		e    Engine
	}{
		{"greedy", EngineTreeGreedy},
		{"exhaustive", EngineTreeExhaustive},
	} {
		opt := &Options{Engine: eng.e, NoFallback: true}
		s, err := FindSchedule(n, 0, opt)
		if err != nil {
			t.Fatalf("%s warmup: %v", eng.name, err)
		}
		nodes := s.Stats.NodesCreated
		if nodes < 50 {
			t.Fatalf("%s: only %d nodes; net too small to be meaningful", eng.name, nodes)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := FindSchedule(n, 0, opt); err != nil {
				t.Fatal(err)
			}
		})
		perNode := allocs / float64(nodes)
		// With the T-invariant heuristic active, each expanded node pays
		// for its treeNode, kids map and the heuristic's promising-vector
		// math; 40 per node is far below the old additional
		// O(|partition|) slice churn yet leaves headroom for map resizes.
		if perNode > 40 {
			t.Fatalf("%s: %.0f allocs for %d nodes (%.1f/node) — expansion is allocating per (node, ECS)",
				eng.name, allocs, nodes, perNode)
		}
	}
}
