package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// postSynth sends one synthesis request and decodes the response.
func postSynth(t *testing.T, url string, req *synthesizeRequest) (int, *synthesizeResponse, *errorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out synthesizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode success body: %v", err)
		}
		return resp.StatusCode, &out, nil
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode error body (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &out
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSynthesizeSharedCache proves the tentpole property: sequential
// and concurrent requests against one server share one warm cache. The
// second request of identical sources reports a cache hit, returns
// byte-identical code, and is orders of magnitude faster; a concurrent
// fan-in of the same sources after warmup is all hits.
func TestSynthesizeSharedCache(t *testing.T) {
	core.ResetCache()
	srv := New(Config{MaxConcurrent: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec}
	status, cold, _ := postSynth(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold request: status %d", status)
	}
	if cold.CacheHit {
		t.Fatal("cold request reported a cache hit")
	}
	if len(cold.Code) == 0 || cold.System != "divisors" {
		t.Fatalf("cold response malformed: system=%q tasks=%d", cold.System, len(cold.Tasks))
	}

	status, warm, _ := postSynth(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm request: status %d", status)
	}
	if !warm.CacheHit {
		t.Fatal("second identical request did not hit the shared cache")
	}
	for name, code := range cold.Code {
		if warm.Code[name] != code {
			t.Fatalf("cache hit returned different code for %s", name)
		}
	}
	// The warm path is a hash plus a map lookup (~10µs); 1ms of
	// server-side synthesis time is two orders of magnitude of headroom.
	if warm.SynthesisUS > 1000 {
		t.Errorf("warm synthesis took %dµs, want < 1000µs", warm.SynthesisUS)
	}

	// Concurrent fan-in after warmup: every request is a hit, proving
	// the handlers consult one shared cache rather than per-request
	// state.
	const fan = 8
	var wg sync.WaitGroup
	hits := make([]bool, fan)
	for i := 0; i < fan; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var out synthesizeResponse
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&out) == nil {
				hits[i] = out.CacheHit
			}
		}(i)
	}
	wg.Wait()
	for i, h := range hits {
		if !h {
			t.Fatalf("concurrent request %d missed the warm cache", i)
		}
	}

	// The hit counters prove it too: 1 miss (cold), >= 9 hits.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	assertMetricMin(t, metricsBody, "qss_cache_hits_total", 9)
	assertMetricMin(t, metricsBody, "qss_cache_misses_total", 1)
}

// assertMetricMin finds an unlabelled sample line and asserts its value
// is at least min.
func assertMetricMin(t *testing.T, body, name string, min float64) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			if v < min {
				t.Errorf("%s = %g, want >= %g", name, v, min)
			}
			return
		}
	}
	t.Errorf("metric %s not exposed", name)
}

// blockingServer builds a server whose synthesize function parks until
// release is called, then serves a precomputed real result — the
// controllable stand-in for a long synthesis. release is idempotent and
// registered as a cleanup, so a failing test never wedges the
// httptest.Server teardown behind a parked handler.
func blockingServer(t *testing.T, cfg Config) (srv *Server, started chan struct{}, release func()) {
	t.Helper()
	res, err := core.Synthesize(apps.Divisors, apps.DivisorsSpec, &core.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	started = make(chan struct{}, 16)
	releaseCh := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(releaseCh) }) }
	t.Cleanup(release)
	srv = New(cfg)
	srv.synthesize = func(ctx context.Context, req *synthesizeRequest, opt *core.Options) (*core.Result, bool, error) {
		started <- struct{}{}
		select {
		case <-releaseCh:
			return res, false, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("core: %w", ctx.Err())
		}
	}
	return srv, started, release
}

// TestQueueOverflow429 pins the bounded admission queue: with one slot
// and a one-deep queue, the third simultaneous request is rejected
// immediately with 429 rather than parked.
func TestQueueOverflow429(t *testing.T) {
	srv, started, release := blockingServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer release()

	req := &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec}
	body, _ := json.Marshal(req)

	results := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			results <- -1
			return
		}
		resp.Body.Close()
		results <- resp.StatusCode
	}
	go post() // A: takes the slot
	<-started
	go post() // B: parks in the queue
	// B is queued once the queue-depth gauge reads 1.
	waitGauge(t, srv, func(m *metrics) float64 { return m.queueDepth.v }, 1)

	status, _, _ := postSynth(t, ts.URL, req) // C: queue full
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", status)
	}

	release()
	for i := 0; i < 2; i++ {
		if got := <-results; got != http.StatusOK {
			t.Fatalf("admitted request finished with status %d", got)
		}
	}
}

// waitGauge polls a registry gauge until it reaches want (the tests'
// only ordering dependency on handler goroutines).
func waitGauge(t *testing.T, srv *Server, read func(*metrics) float64, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.metrics.mu.Lock()
		v := read(srv.metrics)
		srv.metrics.mu.Unlock()
		if v == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge never reached %g", want)
}

// TestDrainLifecycle pins the graceful-drain contract: /readyz flips
// non-200 the moment drain begins while an admitted request is still
// running, new synthesis requests are refused with 503, the in-flight
// request completes successfully, and Drain returns once it has.
func TestDrainLifecycle(t *testing.T) {
	srv, started, release := blockingServer(t, Config{MaxConcurrent: 2, DrainTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer release()

	if status, _ := getBody(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz before drain: %d", status)
	}

	req := &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec}
	body, _ := json.Marshal(req)
	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-started

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()

	// Readiness flips off while the request is still in flight.
	waitReadyz(t, ts.URL, http.StatusServiceUnavailable)
	select {
	case <-inflightDone:
		t.Fatal("in-flight request finished before it was released; test is vacuous")
	default:
	}

	// Liveness stays green; new synthesis work is refused.
	if status, _ := getBody(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during drain: %d", status)
	}
	if status, _, errResp := postSynth(t, ts.URL, req); status != http.StatusServiceUnavailable {
		t.Fatalf("synthesize during drain: status %d (%v)", status, errResp)
	}

	// The in-flight request finishes, and only then does Drain return.
	release()
	if status := <-inflightDone; status != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d, want 200", status)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Drain is idempotent.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func waitReadyz(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		status, _ := getBody(t, url+"/readyz")
		if status == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("readyz never reached %d", want)
}

// TestDrainDeadline: a request that never finishes makes Drain report
// the deadline instead of hanging forever.
func TestDrainDeadline(t *testing.T) {
	srv, started, release := blockingServer(t, Config{MaxConcurrent: 1, DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer release()

	req := &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec}
	body, _ := json.Marshal(req)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	if err := srv.Drain(context.Background()); err == nil {
		t.Fatal("drain with a hung request returned nil, want deadline error")
	}
}

// TestRequestBudgets pins the per-request budget clamps: a tiny
// MaxNodes budget turns a schedulable system into a bounded 422, and a
// tiny timeout into a 504 — either way the server survives to serve the
// next request.
func TestRequestBudgets(t *testing.T) {
	core.ResetCache()
	srv := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// State budget: 2 nodes cannot hold the divisors marking graph.
	status, _, errResp := postSynth(t, ts.URL, &synthesizeRequest{
		FlowC: apps.Divisors, Net: apps.DivisorsSpec, MaxNodes: 2,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budget-starved request: status %d (%v), want 422", status, errResp)
	}

	// Deadline: park the synthesis via the stub until the context ends.
	srv.synthesize = func(ctx context.Context, req *synthesizeRequest, opt *core.Options) (*core.Result, bool, error) {
		<-ctx.Done()
		return nil, false, fmt.Errorf("core: %w", ctx.Err())
	}
	status, _, _ = postSynth(t, ts.URL, &synthesizeRequest{
		FlowC: apps.Divisors, Net: apps.DivisorsSpec, TimeoutMS: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: status %d, want 504", status)
	}

	// The server still works afterwards.
	srv.synthesize = defaultSynthesize
	status, res, _ := postSynth(t, ts.URL, &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec})
	if status != http.StatusOK || len(res.Code) == 0 {
		t.Fatalf("request after failures: status %d", status)
	}
}

// TestPanicRecovery: a panicking synthesis is a bug, not an outage —
// the middleware answers 500, counts it, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	core.ResetCache()
	srv := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.synthesize = func(ctx context.Context, req *synthesizeRequest, opt *core.Options) (*core.Result, bool, error) {
		panic("synthesis exploded")
	}
	status, _, errResp := postSynth(t, ts.URL, &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking synthesis: status %d (%+v), want 500", status, errResp)
	}

	// The next request — on the same process, same pool of slots —
	// succeeds, and the panic shows up in the metrics.
	srv.synthesize = defaultSynthesize
	status, res, _ := postSynth(t, ts.URL, &synthesizeRequest{FlowC: apps.Divisors, Net: apps.DivisorsSpec})
	if status != http.StatusOK || len(res.Code) == 0 {
		t.Fatalf("request after panic: status %d", status)
	}
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	assertMetricMin(t, metricsBody, "qss_panics_total", 1)
}

// TestBadRequests pins the 400/422 classification.
func TestBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{`, http.StatusBadRequest},
		{"missing net", `{"flowc":"PROCESS p (In DPORT a) { int x; while (1) { READ_DATA(a, &x, 1); } }"}`, http.StatusBadRequest},
		{"unparsable flowc", `{"flowc":"not flowc","net":"system x\ninput a -> p.a uncontrollable"}`, http.StatusUnprocessableEntity},
	} {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// An unschedulable but well-formed system is the request's fault.
	status, _, errResp := postSynth(t, ts.URL, &synthesizeRequest{
		FlowC: apps.FalsePathPlain, Net: apps.FalsePathPlainSpec,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unschedulable system: status %d (%v), want 422", status, errResp)
	}
}

// TestResponseMatchesCLI pins the service contract the smoke test
// checks end to end: the code map of a /v1/synthesize response is
// byte-identical to what the library path produces.
func TestResponseMatchesCLI(t *testing.T) {
	core.ResetCache()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want, err := core.Synthesize(apps.MultiRate, apps.MultiRateSpec, &core.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	status, got, _ := postSynth(t, ts.URL, &synthesizeRequest{FlowC: apps.MultiRate, Net: apps.MultiRateSpec})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(got.Code) != len(want.Code) {
		t.Fatalf("task count: got %d, want %d", len(got.Code), len(want.Code))
	}
	for name, code := range want.Code {
		if got.Code[name] != code {
			t.Errorf("task %s differs from the library path", name)
		}
	}
	for _, ch := range want.Sys.Channels {
		if got.Bounds[ch.Spec.Name] != want.Bounds[ch.Place.ID] {
			t.Errorf("bound %s: got %d, want %d", ch.Spec.Name, got.Bounds[ch.Spec.Name], want.Bounds[ch.Place.ID])
		}
	}
}

// TestFreezeLevelsServer: a server configured with FreezeLevels
// produces code byte-identical to an all-hot run and exports the
// store-residency gauges — frozen bytes nonzero, hot bytes nonzero —
// after a successful synthesis.
func TestFreezeLevelsServer(t *testing.T) {
	core.ResetCache()
	want, err := core.Synthesize(apps.MultiRate, apps.MultiRateSpec, &core.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{FreezeLevels: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, got, _ := postSynth(t, ts.URL, &synthesizeRequest{FlowC: apps.MultiRate, Net: apps.MultiRateSpec, DisableCache: true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	for name, code := range want.Code {
		if got.Code[name] != code {
			t.Errorf("task %s differs from the all-hot library path", name)
		}
	}

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, g := range []string{"qss_store_hot_bytes", "qss_store_frozen_bytes"} {
		v, ok := scrapeGauge(body, g)
		if !ok {
			t.Fatalf("metrics missing %s:\n%s", g, body)
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0 with FreezeLevels on", g, v)
		}
	}
}

// scrapeGauge pulls one unlabelled sample value out of a rendered
// /metrics body.
func scrapeGauge(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v, true
		}
	}
	return 0, false
}
