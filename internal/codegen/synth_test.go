package codegen

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
	"repro/internal/sched"
)

// synthesizePipe builds a small FlowC system and generates its task.
func synthesizePipe(t *testing.T, flowcSrc string, spec *link.Spec) (*Task, *link.System, string) {
	t.Helper()
	f, err := flowc.ParseFile(flowcSrc)
	if err != nil {
		t.Fatal(err)
	}
	var procs []*compile.CompiledProcess
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cp)
	}
	sys, err := link.Link(procs, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.FindSchedule(sys.Net, sys.Net.UncontrollableSources()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	task, err := Generate(s, "task_go")
	if err != nil {
		t.Fatal(err)
	}
	code := Synthesize(task, &SynthOptions{Sys: sys})
	return task, sys, code
}

const pipeSrc = `
PROCESS w (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v * 2, 1);
  }
}

PROCESS r (In DPORT in, Out DPORT res) {
  int v;
  while (1) {
    READ_DATA(in, &v, 1);
    WRITE_DATA(res, v + 1, 1);
  }
}
`

func pipeSpec() *link.Spec {
	return &link.Spec{
		Name:     "pipe",
		Channels: []link.ChannelSpec{{Name: "C", From: "w.out", To: "r.in"}},
		Inputs:   []link.InputSpec{{Name: "go", To: "w.go"}},
		Outputs:  []link.OutputSpec{{Name: "res", From: "r.res"}},
	}
}

func TestSynthesizeFlowCTask(t *testing.T) {
	task, sys, code := synthesizePipe(t, pipeSrc, pipeSpec())
	// The intra-task channel collapses into a plain variable (size 1).
	intra := task.IntraChannels(&SynthOptions{Sys: sys})
	if len(intra) != 1 {
		t.Fatalf("intra channels = %v, want 1", intra)
	}
	for _, sz := range intra {
		if sz != 1 {
			t.Errorf("intra buffer size = %d, want 1", sz)
		}
	}
	for _, want := range []string{
		"int BUF_C;",             // unit buffer becomes a variable
		"BUF_C = ",               // write side
		"r_v = BUF_C;",           // read side, uniquified name
		"READ_DATA(go, &w_v, 1)", // environment port keeps the primitive
		"WRITE_DATA(res, ",       // environment output keeps the primitive
		"task_go_init",
		"task_go_ISR",
		"return;",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
	if strings.Contains(code, "goto") {
		// Straight-line pipeline: a single thread, no state jumps.
		t.Logf("note: pipeline generated gotos:\n%s", code)
	}
}

func TestSynthesizeDataChoiceCode(t *testing.T) {
	src := `
PROCESS w (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    if (v > 0) {
      WRITE_DATA(out, v, 1);
    } else {
      WRITE_DATA(out, 0 - v, 1);
    }
  }
}
`
	spec := &link.Spec{
		Name:    "abs",
		Inputs:  []link.InputSpec{{Name: "go", To: "w.go"}},
		Outputs: []link.OutputSpec{{Name: "res", From: "w.out"}},
	}
	_, _, code := synthesizePipe(t, src, spec)
	// The data choice becomes an if/else on the real condition with
	// uniquified variables.
	if !strings.Contains(code, "if ((w_v > 0))") {
		t.Errorf("missing data-choice condition:\n%s", code)
	}
	if !strings.Contains(code, "} else {") && !strings.Contains(code, "else {") {
		t.Errorf("missing else branch:\n%s", code)
	}
}

func TestSynthesizeSharedChannelStaysPrimitive(t *testing.T) {
	// When the channel is declared shared, the task must keep the
	// communication primitive instead of collapsing it.
	f, err := flowc.ParseFile(pipeSrc)
	if err != nil {
		t.Fatal(err)
	}
	var procs []*compile.CompiledProcess
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cp)
	}
	sys, err := link.Link(procs, pipeSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.FindSchedule(sys.Net, sys.Net.UncontrollableSources()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	task, err := Generate(s, "task_go")
	if err != nil {
		t.Fatal(err)
	}
	var chPlace int
	for _, ch := range sys.Channels {
		chPlace = ch.Place.ID
	}
	code := Synthesize(task, &SynthOptions{Sys: sys, SharedChannels: map[int]bool{chPlace: true}})
	if strings.Contains(code, "BUF_C") {
		t.Errorf("shared channel collapsed:\n%s", code)
	}
	if !strings.Contains(code, "READ_DATA(C,") {
		t.Errorf("shared channel should keep the primitive:\n%s", code)
	}
}
