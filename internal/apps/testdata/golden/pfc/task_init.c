/* Task task_init: quasi-statically scheduled for source init. */
#include "pfc.data.h"

int controller_p0;
int producer_p3;
int filter_p1;
int consumer_p0;
int BUF_Coeff;
int BUF_Req;
int BUF_Pix;
int BUF_Eof;
int BUF_FPix;
int BUF_FEof;
int BUF_Ack;
int controller_cmd;
int controller_c;
int controller_a;
int producer_r;
int producer_i;
int producer_j;
int filter_c;
int filter_v;
int filter_d;
int consumer_v;
int consumer_d;

void task_init_init(void)
{
  controller_p0 = 1;
  producer_p3 = 0;
  filter_p1 = 0;
  consumer_p0 = 1;
  BUF_Coeff = 0;
  BUF_Req = 0;
  BUF_Pix = 0;
  BUF_Eof = 0;
  BUF_FPix = 0;
  BUF_FEof = 0;
  BUF_Ack = 0;
  filter_c = 1;
}

void task_init_ISR(void)
{
  init:
  init();
  READ_DATA(init, &controller_cmd, 1);
  cin();
  READ_DATA(cin, &controller_c, 1);
  BUF_Coeff = controller_c;
  filter_c = BUF_Coeff;
  BUF_Req = controller_cmd;
  producer_r = BUF_Req;
  producer_i = 0;
  controller_p0 = controller_p0 - 1;
  filter_p1 = filter_p1 + 1;
  goto producer_t1producer_t6;
  producer_t2producer_t5:
  if ((producer_j < 10)) {
    producer_p3 = producer_p3 + 1;
    if (controller_p0 == 0 && producer_p3 == 1 && filter_p1 == 0 && consumer_p0 == 0) {
      goto filter_t4;
    }
    else {
      goto filter_t8;
    }
  } else {
    producer_i++;
    goto producer_t1producer_t6;
  }
  producer_t3:
  BUF_Pix = (((producer_i * 10) + producer_j) + producer_r);
  filter_v = BUF_Pix;
  filter_v = (filter_v * filter_c);
  BUF_FPix = filter_v;
  consumer_v = BUF_FPix;
  WRITE_DATA(display, consumer_v, 1);
  /* deliver display to the environment */
  producer_j++;
  producer_p3 = producer_p3 - 1;
  consumer_p0 = consumer_p0 - 1;
  goto producer_t2producer_t5;
  producer_t7:
  BUF_Eof = 0;
  filter_d = BUF_Eof;
  BUF_FEof = 0;
  consumer_d = BUF_FEof;
  BUF_Ack = 0;
  controller_a = BUF_Ack;
  controller_p0 = controller_p0 + 1;
  filter_p1 = filter_p1 + 1;
  consumer_p0 = consumer_p0 - 1;
  goto filter_t8;
  filter_t4:
  filter_p1 = filter_p1 + 1;
  goto filter_t8;
  filter_t8:
  filter_p1 = filter_p1 - 1;
  if (controller_p0 == 0 && producer_p3 == 1 && filter_p1 == 0 && consumer_p0 == 1) {
    goto producer_t3;
  }
  else if (controller_p0 == 0 && producer_p3 == 0 && filter_p1 == 0 && consumer_p0 == 1) {
    goto producer_t7;
  }
  else if ((controller_p0 == 0 && producer_p3 == 0 && filter_p1 == 0 && consumer_p0 == 0) || (controller_p0 == 0 && producer_p3 == 1 && filter_p1 == 0 && consumer_p0 == 0)) {
    goto consumer_t2;
  }
  else {
    goto consumer_t5;
  }
  consumer_t2:
  goto consumer_t6;
  consumer_t5:
  goto consumer_t6;
  consumer_t6:
  consumer_p0 = consumer_p0 + 1;
  if (controller_p0 == 1 && producer_p3 == 0 && filter_p1 == 0 && consumer_p0 == 1) {
    return;
  }
  else if (controller_p0 == 0 && producer_p3 == 1 && filter_p1 == 0 && consumer_p0 == 1) {
    goto producer_t3;
  }
  else {
    goto producer_t7;
  }
  producer_t1producer_t6:
  if ((producer_i < 10)) {
    producer_j = 0;
    goto producer_t2producer_t5;
  } else {
    if (controller_p0 == 0 && producer_p3 == 0 && filter_p1 == 0 && consumer_p0 == 0) {
      goto filter_t4;
    }
    else {
      goto filter_t8;
    }
  }
}
