// Package dist shards the level-synchronous frontier exploration
// across OS processes: a deterministic coordinator in the synthesizing
// process drives a pool of worker processes, each owning a contiguous
// range of marking-hash shards (the same top-FNV-bits shard function as
// petri.ShardedStore), over a length-prefixed binary protocol on unix
// sockets or TCP.
//
// # Determinism contract
//
// The coordinator performs the exact sequential first-discovery merge
// of petri.RunFrontier's phase C: frontier states are walked in dense
// MarkID order and each state's candidate edges in the emit order of
// the serial loop, so dense MarkID assignment — and with it state
// numbering, schedules and generated C — is byte-identical for every
// worker-process count, including the in-process parallel and plain
// serial paths. Workers only ever move the phase-A work (firing,
// hashing, known-state resolution) out of the coordinator; they never
// influence ordering.
//
// # Protocol
//
// Per session (one exploration), the coordinator sends the net, the
// petri.ExpandSpec (fireable-ECS mask + place caps) and the root
// markings once. Protocol versions are negotiated per connection at
// hello time and the pool runs every session at the minimum version
// across its workers.
//
// At protocol 2 each level is one barriered round trip: the
// coordinator ships the level's newly discovered states, every worker
// expands the frontier states whose shard it owns and answers with
// one result frame classifying each successor as veto, known (dense
// global MarkID) or new, and the coordinator merges.
//
// Protocol 3 replaces the barrier with a pipelined stream in both
// directions. Workers push their candidate bytes as they expand, cut
// into chunks at state-group boundaries (msgChunk, ~16KiB target);
// the coordinator acknowledges each chunk it consumes (msgAck) and a
// worker keeps at most chunkWindow chunks unacknowledged, so a slow
// merge applies backpressure instead of buffering without bound. The
// coordinator merges worker W's slice of a level the moment W's bytes
// arrive — per-connection reader goroutines feed bounded channels —
// while other workers' slices are still in flight. Toward the
// workers, newly admitted states stream mid-merge in small record
// batches (msgRecords) and an explicit level commit (msgLevel,
// carrying the level's [start,end) MarkID range) tells workers the
// records of that level are complete; a worker therefore starts
// expanding its slice of level L+1 while the coordinator is still
// merging the tail of L. Because a worker may expand a state before
// the coordinator has numbered its successors, a protocol-3 candNew
// additionally carries the successor's 64-bit marking hash: the
// coordinator resolves already-interned states by a hash-only probe
// (exact until the store observes a hash alias, then it falls back to
// vector-exact lookups) and fires a transition only for each state it
// actually materializes. A worker classifies against its last
// committed level ("pin"): successors at or past the pin are reported
// new even if locally known, which keeps the candidate stream a pure
// function of ownership and committed levels — byte-identical
// regardless of message timing.
//
// In the default trimmed-replica mode each worker holds vectors,
// hashes and enabled bitsets only for its owned shards — per-worker
// memory is ~1/N of the state space, which is what takes explorations
// beyond one machine's RAM. The coordinator sends each worker just the
// petri.VecDelta records whose child it owns; a record whose parent
// belongs to another worker carries the parent's token vector (the
// worker cannot re-fire it locally), deduplicated through a bounded
// LRU the coordinator and worker run in lockstep, so a hot boundary
// parent ships once per residency rather than once per child.
// Successors routing to foreign shards are reported as new and
// resolved by the coordinator's merge against the authoritative store.
//
// The full-replica fallback (Pool.SetFullReplicas, cmd/qssd
// -full-replicas, core.Options.DistFullReplicas) broadcasts compact
// petri.Delta batches instead — every worker re-fires to reconstruct
// all vectors, so steady-state traffic carries no vectors at all and
// every successor is classified locally, at the price of memory parity
// with the coordinator in every worker. Results are byte-identical in
// both modes.
//
// Orthogonally, WorkerOptions.FreezeLevels (cmd/qssd -freeze-levels,
// or QSS_DIST_FREEZE=1 for spawned workers) moves the vectors of
// committed levels out of each replica's hot store into an on-disk
// delta segment (the petri.MarkingStore frozen tier): once msgLevel
// commits a level, states below it can never again be record parents
// or expansion sources, so only hashes, the probe table and segment
// offsets stay resident — the remaining per-state hot cost no longer
// scales with the marking width. Dedup probes against old states thaw
// vectors on demand. The coordinator freezes its authoritative store
// the same way when the caller sets FreezeLevels in its explore
// options; a full replica asked to restore a mostly-frozen store pays
// a thaw per shipped state (slow but correct). Results stay
// byte-identical in every combination.
//
// # Process management
//
// SpawnLocal re-executes the current binary as worker processes; any
// binary (or test binary) that may act as a coordinator must call
// MaybeWorker first thing in main (or TestMain), which hijacks the
// process when the QSS_DIST_WORKER environment variable is set.
// Externally managed workers (other machines, containers) run the
// cmd/qssd binary and dial the endpoint the coordinator listens on via
// Listen. Set QSS_DIST_LOGDIR to make coordinator and workers write
// per-process log files (CI uploads them when the determinism matrix
// fails).
//
// # Failure model
//
// Protocol 4 makes a session survive the loss of workers. Liveness is
// monitored from both directions: every protocol-4 connection runs
// per-message write deadlines (sendTimeout) plus a generous worker-side
// read deadline, and while the coordinator's merge awaits a frame it
// pings the awaited worker every heartbeatInterval — a worker from
// which no frame at all arrives within heartbeatTimeout is declared
// dead even if its TCP connection looks healthy. Any frame (a pong
// included) counts as life; a worker grinding through a huge level is
// never misdeclared as long as it keeps draining pings.
//
// On a death the coordinator pauses at the last committed level,
// quiesces the survivors, and rebuilds the pool: a SpawnLocal pool
// re-execs a replacement process (bounded retries, exponential backoff
// with jitter) and reloads its trimmed replica by streaming the owned
// post-level store slice over msgRestore; a pool that cannot respawn
// (external workers) redistributes the dead worker's shards across the
// survivors instead. The session then replays the interrupted level
// against the authoritative store — replayed candidates are discarded
// by count, so ReachResult, schedules and generated C stay
// byte-identical to a fault-free run. Recovery is bounded
// (maxSessionRestarts rounds per session); when it is exhausted, or no
// worker survives, the session error poisons the pool
// (Pool.Err) and callers fall back: petri.ExploreOptions.DistFallback
// and sched.Options.DistFallback rerun the exploration in-process
// (core sets them unless core.Options.DistNoFallback), so synthesis
// degrades to local execution rather than failing. SessionStats
// (Restarts, Redistributed, Degraded) and Pool.RecoveryStats surface
// what happened; the qss-server exports them as metrics.
package dist

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"
)

// Environment variables wiring spawned worker processes to their
// coordinator (see MaybeWorker) and the optional log directory.
// EnvFreeze (any non-empty value) arms WorkerOptions.FreezeLevels in
// spawned workers, which have no command line of their own.
const (
	EnvWorker   = "QSS_DIST_WORKER"
	EnvEndpoint = "QSS_DIST_ENDPOINT"
	EnvLogDir   = "QSS_DIST_LOGDIR"
	EnvFreeze   = "QSS_DIST_FREEZE"
)

// ParseEndpoint splits an endpoint of the form "unix:/path/to.sock",
// "tcp:host:port" or a bare filesystem path (treated as a unix socket)
// into a (network, address) pair for package net.
func ParseEndpoint(ep string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(ep, "unix:"):
		return "unix", ep[len("unix:"):], nil
	case strings.HasPrefix(ep, "tcp:"):
		return "tcp", ep[len("tcp:"):], nil
	case ep == "":
		return "", "", fmt.Errorf("dist: empty endpoint")
	default:
		return "unix", ep, nil
	}
}

// dialRetry dials the endpoint with exponential backoff and jitter: a
// spawned worker may race the coordinator's listener setup by
// milliseconds, while an externally started qssd may come up long
// before its coordinator — short retries first, then progressively
// patient ones that do not stampede a coordinator accepting a whole
// pool at once. maxAttempts > 0 additionally caps the number of dials
// (cmd/qssd -dial-attempts); 0 retries until the budget expires.
func dialRetry(ep string, budget time.Duration, maxAttempts int) (net.Conn, error) {
	network, addr, err := ParseEndpoint(ep)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(budget)
	backoff := 25 * time.Millisecond
	for attempt := 1; ; attempt++ {
		c, err := net.Dial(network, addr)
		if err == nil {
			return c, nil
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return nil, fmt.Errorf("dist: dial %s: %w (after %d attempts)", ep, err, attempt)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: dial %s: %w", ep, err)
		}
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// Serve dials the coordinator at the endpoint (retrying for up to
// dialBudget) and serves exploration sessions until the coordinator
// closes the connection — the body of the cmd/qssd worker binary.
func Serve(endpoint string, dialBudget time.Duration, opt WorkerOptions) error {
	logw := newLogWriterTo("worker", os.Stderr)
	conn, err := dialRetry(endpoint, dialBudget, opt.DialAttempts)
	if err != nil {
		return err
	}
	defer conn.Close()
	return ServeConn(conn, logw, opt)
}

// MaybeWorker turns the current process into a dist worker when the
// QSS_DIST_WORKER environment variable is set, never returning in that
// case: it dials the coordinator at QSS_DIST_ENDPOINT, serves
// exploration sessions until the connection closes, and exits. Every
// binary that can act as a coordinator via SpawnLocal — the cmd tools,
// and test binaries through TestMain — must call it before doing
// anything else, so the re-executed children become workers instead of
// re-running the caller's main logic.
func MaybeWorker() {
	if os.Getenv(EnvWorker) == "" {
		return
	}
	logw := newLogWriter("worker")
	ep := os.Getenv(EnvEndpoint)
	conn, err := dialRetry(ep, 10*time.Second, 0)
	if err != nil {
		logw.printf("%v", err)
		os.Exit(1)
	}
	opt := WorkerOptions{FreezeLevels: os.Getenv(EnvFreeze) != ""}
	if err := ServeConn(conn, logw, opt); err != nil {
		logw.printf("serve: %v", err)
		conn.Close()
		os.Exit(1)
	}
	conn.Close()
	os.Exit(0)
}
