package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/petri"
)

// Pool is a coordinator's set of connected worker processes. It
// implements petri.FrontierRunner: each RunFrontier call is one
// exploration session sharded across the pool. A Pool serializes
// sessions internally, so it may be shared by sequential (or
// mutex-ordered) callers; Close tears the workers down.
type Pool struct {
	mu       sync.Mutex
	workers  []*conn
	wantFull []bool             // per worker: demanded full replicas in hello
	vers     []int              // per worker: protocol version from hello
	cmds     []*exec.Cmd        // every process ever spawned (reaped at Close); empty for Listen pools
	procs    []*exec.Cmd        // per worker: the process behind the connection (nil entries for external workers)
	deadCmds map[*exec.Cmd]bool // processes retired mid-session; their exit status is not an error
	dir      string             // socket tempdir of a SpawnLocal pool
	ln       net.Listener       // retained SpawnLocal listener, for respawning replacements
	self     string             // executable respawned as a replacement worker
	sock     string             // endpoint replacement workers dial
	full     bool               // coordinator-side full-replica fallback
	broken   error              // first infrastructure failure; poisons the pool
	closed   bool
	logw     *logWriter
	stats    SessionStats

	// Cumulative failover accounting across the pool's lifetime (the
	// per-session view lives in SessionStats).
	restartsTotal      int64
	redistributedTotal int64

	// levelHook, when set, is invoked at the start of each level's
	// merge — the fault-injection point the chaos tests use to kill
	// workers at deterministic-but-arbitrary session positions.
	hookMu    sync.Mutex
	levelHook func(level int)
}

// SessionStats describes the last completed exploration session —
// the protocol cost and per-worker replica memory the benchmarks and
// the CI memory gate report.
type SessionStats struct {
	Levels    int
	States    int
	Proto     int   // wire protocol the session spoke (2 for a mixed pool)
	Trimmed   bool  // replica mode the session actually ran in
	BytesSent int64 // coordinator -> workers (init, records, commits, acks)
	BytesRecv int64 // workers -> coordinator (candidate streams)
	// CandNew counts candNew candidates across the session's merge. At
	// protocol 3 each contributes one extra varint (the successor hash)
	// to BytesRecv and the coordinator resolves it by hash probe;
	// CoordFires counts the transitions the coordinator actually
	// re-fired — at protocol 3 only the genuinely new states it has to
	// materialize (plus the rare hash-alias fallback), at protocol 2
	// every candNew. Chunks counts protocol-3 candidate chunks received.
	CandNew    int64
	CoordFires int64
	Chunks     int64
	// Failover accounting (protocol 4). Restarts counts recovery rounds
	// the session needed, Redistributed the shards moved from dead
	// workers onto survivors when no replacement could be spawned, and
	// Degraded reports that the session ultimately failed — recovery
	// exhausted — and the caller should fall back to in-process
	// exploration.
	Restarts      int
	Redistributed int
	Degraded      bool
	// Workers holds each worker's end-of-session replica accounting,
	// in worker-index order.
	Workers []WorkerMem
}

// spawnHandshakeTimeout bounds how long SpawnLocal waits for each
// spawned worker to connect and greet. Its main job is failing fast
// when the re-executed binary does not call MaybeWorker.
const spawnHandshakeTimeout = 30 * time.Second

// listenHandshakeTimeout is the per-worker accept deadline for
// externally started workers (cmd/qssd): humans start those by hand,
// possibly compiling first, so the window is generous.
const listenHandshakeTimeout = 5 * time.Minute

// SpawnLocal starts n worker processes by re-executing the current
// binary (which must call MaybeWorker early; see its doc) connected
// over a unix socket in a private temp directory, and returns the
// ready pool. The workers inherit the parent's environment, so
// QSS_DIST_LOGDIR propagates.
func SpawnLocal(n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: SpawnLocal needs >= 1 worker, got %d", n)
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: resolve executable: %w", err)
	}
	dir, err := os.MkdirTemp("", "qssdist-")
	if err != nil {
		return nil, err
	}
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	// The listener outlives the spawn: it is how the pool accepts
	// replacement workers when one dies mid-session. Close releases it.
	p := &Pool{dir: dir, ln: ln, self: self, sock: "unix:" + sock, logw: newLogWriter("coord")}
	for i := 0; i < n; i++ {
		if _, err := p.spawnProc(); err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
	}
	pids, err := p.accept(ln, n, spawnHandshakeTimeout)
	if err != nil {
		p.Close()
		return nil, err
	}
	// Map each accepted connection to the process behind it (the hello
	// carries the pid): worker-kill fault injection and respawn recovery
	// need to know which process backs which worker index.
	byPid := make(map[int]*exec.Cmd, len(p.cmds))
	for _, cmd := range p.cmds {
		byPid[cmd.Process.Pid] = cmd
	}
	p.procs = make([]*exec.Cmd, n)
	for i, pid := range pids {
		p.procs[i] = byPid[pid]
	}
	p.logw.printf("spawned %d local workers over %s", n, sock)
	return p, nil
}

// spawnProc starts one worker process dialing the pool's socket and
// adds it to the reap list.
func (p *Pool) spawnProc() (*exec.Cmd, error) {
	cmd := exec.Command(p.self)
	cmd.Env = append(os.Environ(),
		EnvWorker+"=1",
		EnvEndpoint+"="+p.sock,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p.cmds = append(p.cmds, cmd)
	return cmd, nil
}

// Listen awaits n externally started workers (cmd/qssd -connect) at the
// endpoint ("unix:/path", "tcp:host:port", or a bare unix path) and
// returns the ready pool. The workers' lifecycle belongs to whoever
// started them; Close only drops the connections.
func Listen(endpoint string, n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Listen needs >= 1 worker, got %d", n)
	}
	network, addr, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	p := &Pool{logw: newLogWriter("coord")}
	if _, err := p.accept(ln, n, listenHandshakeTimeout); err != nil {
		p.Close()
		return nil, err
	}
	p.logw.printf("accepted %d workers at %s", n, endpoint)
	return p, nil
}

// acceptOne accepts a single worker from the listener and runs the
// hello handshake under the given deadline.
func acceptOne(ln net.Listener, timeout time.Duration) (c *conn, ver int, flags uint64, pid int, err error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		if err := d.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("dist: arm accept deadline: %w", err)
		}
	}
	nc, err := ln.Accept()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	c = newConn(nc)
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		nc.Close()
		return nil, 0, 0, 0, fmt.Errorf("dist: arm handshake deadline: %w", err)
	}
	payload, err := c.expect(msgHello)
	if err == nil {
		ver, flags, pid, err = checkHello(payload)
	}
	if err == nil {
		err = nc.SetDeadline(time.Time{})
	}
	if err != nil {
		nc.Close()
		return nil, 0, 0, 0, fmt.Errorf("dist: worker handshake: %w", err)
	}
	return c, ver, flags, pid, nil
}

// accept gathers n hello-ing workers from the listener and returns
// their self-reported pids (zero for pre-version-4 workers). The
// deadline applies per worker (reset before each Accept), so a slowly
// assembled external pool is not cut off by the earlier arrivals' wait.
func (p *Pool) accept(ln net.Listener, n int, timeout time.Duration) ([]int, error) {
	var pids []int
	for len(p.workers) < n {
		c, ver, flags, pid, err := acceptOne(ln, timeout)
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for worker %d/%d: %w", len(p.workers)+1, n, err)
		}
		p.workers = append(p.workers, c)
		p.wantFull = append(p.wantFull, flags&helloFullReplicas != 0)
		p.vers = append(p.vers, ver)
		pids = append(pids, pid)
	}
	return pids, nil
}

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// SetFullReplicas switches the pool's later sessions to the
// full-replica fallback: every worker rebuilds the whole store from
// broadcast delta batches (memory parity with the coordinator) instead
// of holding only its owned shards. Results are byte-identical either
// way; full replicas trade worker memory for local successor
// classification. A worker that demanded full replicas in its hello
// (cmd/qssd -full-replicas) forces the fallback regardless.
func (p *Pool) SetFullReplicas(full bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.full = full
}

// trimmed reports the replica mode the next session will use. Callers
// hold p.mu.
func (p *Pool) trimmed() bool {
	if p.full {
		return false
	}
	for _, wf := range p.wantFull {
		if wf {
			return false
		}
	}
	return true
}

// Err reports the infrastructure failure that poisoned the pool, or
// nil while the pool is healthy. A session error is fatal to the pool
// (every later RunFrontier fails fast with the same cause), so
// long-lived owners amortizing one pool across many sessions — the
// resident server — probe Err after a failed synthesis to decide
// between retiring the pool and blaming the request.
func (p *Pool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// LastSessionStats returns the protocol accounting of the most recently
// completed RunFrontier session.
func (p *Pool) LastSessionStats() SessionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// closeTimeout bounds the teardown of locally spawned workers — one
// shared deadline for the whole pool, not per worker. A var so the
// lifecycle tests can shrink it.
var closeTimeout = 5 * time.Second

// Close ends every worker connection (workers exit on EOF), reaps
// locally spawned processes and removes the socket directory.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	for _, c := range p.workers {
		c.close()
	}
	firstErr := p.reapSpawned()
	if p.dir != "" {
		os.RemoveAll(p.dir)
	}
	return firstErr
}

// reapSpawned waits on every spawned worker concurrently under one
// shared deadline, so a hung pool tears down in closeTimeout total
// rather than closeTimeout per worker. Workers still running at the
// deadline are killed and then reaped; the kill itself is reported but
// a killed worker's Wait error is not (the kill was deliberate).
func (p *Pool) reapSpawned() error {
	if len(p.cmds) == 0 {
		return nil
	}
	type reap struct {
		i   int
		err error
	}
	done := make(chan reap, len(p.cmds))
	for i, cmd := range p.cmds {
		go func(i int, cmd *exec.Cmd) { done <- reap{i, cmd.Wait()} }(i, cmd)
	}
	var firstErr error
	reaped := make([]bool, len(p.cmds))
	killed := make([]bool, len(p.cmds))
	deadline := time.After(closeTimeout)
	for n := 0; n < len(p.cmds); {
		select {
		case r := <-done:
			n++
			reaped[r.i] = true
			if r.err != nil && !killed[r.i] && !p.deadCmds[p.cmds[r.i]] && firstErr == nil {
				firstErr = fmt.Errorf("dist: worker %d exited: %w", p.cmds[r.i].Process.Pid, r.err)
			}
		case <-deadline:
			deadline = nil // fire once; the kills below unblock the reaps
			hung := 0
			for i, cmd := range p.cmds {
				if !reaped[i] {
					killed[i] = true
					hung++
					cmd.Process.Kill()
				}
			}
			if hung > 0 && firstErr == nil {
				firstErr = fmt.Errorf("dist: %d workers hung at close; killed", hung)
			}
		}
	}
	return firstErr
}

// RunFrontier implements petri.FrontierRunner: one exploration session
// over the pool. The coordinator broadcasts the net, spec and roots,
// then streams each level's record batch to the owning workers while
// merging their candidate streams as the bytes arrive — the sequential
// first-discovery merge walks frontier states in MarkID order and each
// state's candidates in the serial emit order, so the hooks observe
// exactly the serial loop's sequence and the numbering is
// byte-identical for every worker count. Returns false when a Reject
// hook aborted; a non-nil error is an infrastructure failure and
// poisons the pool.
func (p *Pool) RunFrontier(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (completed bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, errors.New("dist: pool is closed")
	}
	if p.broken != nil {
		return false, fmt.Errorf("dist: pool failed earlier: %w", p.broken)
	}
	if p.sessionProto() >= 3 {
		completed, err = p.runSessionV3(n, store, spec, hooks)
	} else {
		completed, err = p.runSessionV2(n, store, spec, hooks)
	}
	if err != nil {
		p.broken = err
		p.logw.printf("session failed: %v", err)
	}
	return completed, err
}

// sessionProto picks the wire protocol for the next session: the
// minimum hello version across the pool, so one old worker downgrades
// every session to the barrier protocol it speaks. Callers hold p.mu.
func (p *Pool) sessionProto() int {
	v := protoVersion
	for _, wv := range p.vers {
		if wv < v {
			v = wv
		}
	}
	return v
}

// runSessionV2 is the protocol-2 session: per level, ship the record
// batch, gather every worker's complete candidate stream, merge. Kept
// for pools containing a version-2 worker.
func (p *Pool) runSessionV2(n *petri.Net, store *petri.MarkingStore, spec petri.ExpandSpec, hooks petri.MergeHooks) (bool, error) {
	W := len(p.workers)
	S := petri.NumFrontierShards(W)
	trim := p.trimmed()
	roots := make([]petri.Marking, store.Len())
	for i := range roots {
		roots[i] = store.At(petri.MarkID(i))
	}
	start0 := startBytes(p.workers)
	for i, c := range p.workers {
		init := &initMsg{proto: 2, index: i, workers: W, shards: S, trim: trim, net: n, spec: spec, roots: roots}
		if err := c.send(msgInit, appendInit(nil, init, p.vers[i])); err != nil {
			return false, fmt.Errorf("dist: init worker %d: %w", i, err)
		}
	}
	p.stats = SessionStats{Trimmed: trim, Proto: 2}
	// owner maps an interned state to the worker owning its shard — the
	// shared pure-function partitioning every side agrees on.
	owner := func(id petri.MarkID) int {
		return petri.ShardOwner(petri.ShardOfHash(store.HashAt(id), S), S, W)
	}
	var (
		deltas  []petri.Delta      // full-replica mode: broadcast batch
		pending [][]petri.VecDelta // trimmed mode: per-worker batches
		vcaches []*vecCache        // trimmed mode: per-worker cache models
		scratch petri.Marking
		payload = make([]byte, 0, 1<<12)
		streams = make([]resultStream, W)
	)
	if trim {
		pending = make([][]petri.VecDelta, W)
		vcaches = make([]*vecCache, W)
		for i := range vcaches {
			vcaches[i] = newVecCache()
		}
	}
	finish := func(completed bool) (bool, error) {
		for i, c := range p.workers {
			if err := c.send(msgDone, nil); err != nil {
				return false, fmt.Errorf("dist: finish worker %d: %w", i, err)
			}
		}
		p.stats.Workers = make([]WorkerMem, W)
		for i, c := range p.workers {
			buf, err := c.expect(msgStats)
			if err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
			if p.stats.Workers[i], err = decodeStats(buf); err != nil {
				return false, fmt.Errorf("dist: stats from worker %d: %w", i, err)
			}
		}
		p.stats.States = store.Len()
		p.stats.BytesSent, p.stats.BytesRecv = sentRecvSince(p.workers, start0)
		p.logw.printf("session %s: %d levels, %d states, %dB sent, %dB received (trimmed=%v, completed=%v)",
			n.Name, p.stats.Levels, p.stats.States, p.stats.BytesSent, p.stats.BytesRecv, trim, completed)
		return completed, nil
	}
	for levelStart := 0; ; {
		levelEnd := store.Len()
		if levelStart == levelEnd {
			return finish(true)
		}
		if trim {
			// Per-worker batches: each worker receives only the records
			// whose child it owns. Vector attachment mirrors the
			// worker's cache in lockstep (see vcache.go): owned parents
			// never ship, boundary parents ship on cache miss.
			for i, c := range p.workers {
				recs := pending[i]
				for k := range recs {
					if owner(recs[k].Parent) == i {
						continue
					}
					if !vcaches[i].hit(recs[k].Parent) {
						recs[k].ParentVec = store.At(recs[k].Parent)
					}
				}
				payload = appendExpandTrim(payload[:0], levelStart, levelEnd, recs)
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
				pending[i] = recs[:0]
			}
		} else {
			payload = appendExpand(payload[:0], levelStart, levelEnd, deltas)
			for i, c := range p.workers {
				if err := c.send(msgExpand, payload); err != nil {
					return false, fmt.Errorf("dist: expand to worker %d: %w", i, err)
				}
			}
		}
		// Gather every stream before merging: the merge interleaves them
		// by state ownership. Reads are sequential — the workers compute
		// concurrently regardless, since the broadcast already happened.
		for i, c := range p.workers {
			buf, err := c.expect(msgResult)
			if err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
			if err := streams[i].reset(buf); err != nil {
				return false, fmt.Errorf("dist: result from worker %d: %w", i, err)
			}
		}
		// Sequential first-discovery merge, exactly phase C of
		// petri.RunFrontier.
		deltas = deltas[:0]
		for id := levelStart; id < levelEnd; id++ {
			ow := owner(petri.MarkID(id))
			cands, err := streams[ow].nextState(id)
			if err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
			}
			if hooks.BeginState != nil {
				hooks.BeginState(petri.MarkID(id))
			}
			for k := 0; k < cands; k++ {
				tag, trans, known, err := streams[ow].nextCand()
				if err != nil {
					return false, fmt.Errorf("dist: worker %d stream: %w", ow, err)
				}
				if trans < 0 || trans >= len(n.Transitions) {
					return false, fmt.Errorf("dist: worker %d: candidate transition %d out of range", ow, trans)
				}
				switch tag {
				case candVeto:
					if !hooks.Reject(petri.MarkID(id), int32(trans), false) {
						return finish(false)
					}
				case candKnown:
					if int(known) >= levelEnd {
						return false, fmt.Errorf("dist: worker %d: known state %d beyond frontier %d", ow, known, levelEnd)
					}
					hooks.Edge(petri.MarkID(id), int32(trans), known, false)
				case candNew:
					p.stats.CandNew++
					p.stats.CoordFires++
					t := n.Transitions[trans]
					m := store.At(petri.MarkID(id))
					if !m.Enabled(t) {
						return false, fmt.Errorf("dist: worker %d: candidate fires disabled %s at state %d", ow, t.Name, id)
					}
					scratch = m.FireInto(scratch, t)
					if spec.Veto(scratch) {
						return false, fmt.Errorf("dist: worker %d: new candidate of state %d via %s exceeds the place caps — worker/coordinator spec mismatch", ow, id, t.Name)
					}
					h := petri.HashMarking(scratch)
					if g, ok := store.LookupHashed(scratch, h); ok {
						hooks.Edge(petri.MarkID(id), int32(trans), g, false)
						continue
					}
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(petri.MarkID(id), int32(trans), true) {
							return finish(false)
						}
						continue
					}
					g, _ := store.InternHashed(scratch, h)
					if trim {
						cw := petri.ShardOwner(petri.ShardOfHash(h, S), S, W)
						pending[cw] = append(pending[cw], petri.VecDelta{
							Child: g, Parent: petri.MarkID(id), Trans: int32(trans),
						})
					} else {
						deltas = append(deltas, petri.Delta{Parent: petri.MarkID(id), Trans: int32(trans)})
					}
					hooks.Edge(petri.MarkID(id), int32(trans), g, true)
				default:
					return false, fmt.Errorf("dist: worker %d: unknown candidate tag %d", ow, tag)
				}
			}
		}
		for i := range streams {
			if err := streams[i].done(); err != nil {
				return false, fmt.Errorf("dist: worker %d stream: %w", i, err)
			}
		}
		p.stats.Levels++
		levelStart = levelEnd
	}
}

// frame is one message forwarded by a per-connection reader goroutine.
type frame struct {
	typ     byte
	payload []byte
	err     error
}

// workerLink is a connection with its reader goroutine's frame channel.
// The channel holds a full credit window plus a terminal frame and a
// little slack for protocol-4 pong replies — the most a conforming
// worker ever has in flight — so the reader never blocks on a slow
// merge and worker-side sends always drain.
type workerLink struct {
	c  *conn
	ch chan frame
}

// startLink spawns the reader for one session on c. The reader exits —
// closing the channel — after forwarding a terminal frame: the
// session's stats reply, a worker error, or a transport failure.
func startLink(c *conn) *workerLink {
	l := &workerLink{c: c, ch: make(chan frame, chunkWindow+4)}
	go func() {
		defer close(l.ch)
		for {
			typ, payload, err := c.recvAlloc()
			if err != nil {
				l.ch <- frame{err: err}
				return
			}
			l.ch <- frame{typ: typ, payload: payload}
			if typ == msgStats || typ == msgError {
				return
			}
		}
	}()
	return l
}

// chunkStream is the merge-side cursor over one worker's protocol-3
// candidate stream. Chunks are cut at state-group boundaries, so a
// refill happens only between states; each chunk pulled off the reader
// channel is acknowledged immediately, returning the credit that lets
// the worker keep expanding ahead of the merge.
type chunkStream struct {
	link   *workerLink
	await  func() (frame, error) // session-supplied receive (heartbeats at protocol 4)
	buf    []byte
	cands  int // candidates left within the current state group
	chunks int
}

func (s *chunkStream) refill() error {
	f, err := s.await()
	if err != nil {
		return err
	}
	switch f.typ {
	case msgChunk:
		s.buf = f.payload
		s.chunks++
		var ack [1]byte
		ack[0] = 1
		return s.link.c.send(msgAck, ack[:])
	case msgError:
		return &aliveError{msg: string(f.payload)}
	default:
		return fmt.Errorf("unexpected message type %d mid-session", f.typ)
	}
}

// nextState positions the stream at the given owned state and returns
// its candidate count, blocking on the worker's next chunk if the
// stream is dry.
func (s *chunkStream) nextState(want int) (int, error) {
	if s.cands != 0 {
		return 0, fmt.Errorf("previous state has %d unread candidates", s.cands)
	}
	for len(s.buf) == 0 {
		if err := s.refill(); err != nil {
			return 0, err
		}
	}
	id, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, fmt.Errorf("state id: %w", err)
	}
	if int(id) != want {
		return 0, fmt.Errorf("stream has state %d, merge expects %d", id, want)
	}
	n, rest, err := decodeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("candidate count: %w", err)
	}
	s.buf, s.cands = rest, int(n)
	return int(n), nil
}

// nextCand decodes one candidate; candNew candidates carry the
// successor's 64-bit hash at protocol 3.
func (s *chunkStream) nextCand() (tag int, trans int, known petri.MarkID, h uint64, err error) {
	if s.cands == 0 {
		return 0, 0, 0, 0, fmt.Errorf("no candidates left in state")
	}
	v, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("candidate: %w", err)
	}
	tag, trans = int(v&3), int(v>>2)
	switch tag {
	case candKnown:
		var g uint64
		g, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("known id: %w", err)
		}
		known = petri.MarkID(g)
	case candNew:
		h, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("candidate hash: %w", err)
		}
	}
	s.buf, s.cands = rest, s.cands-1
	return tag, trans, known, h, nil
}

func startBytes(ws []*conn) (totals [2]int64) {
	for _, c := range ws {
		totals[0] += c.sent.Load()
		totals[1] += c.received.Load()
	}
	return totals
}

func sentRecvSince(ws []*conn, start [2]int64) (sent, recv int64) {
	now := startBytes(ws)
	return now[0] - start[0], now[1] - start[1]
}

// resultStream is a cursor over one worker's per-level candidate
// payload.
type resultStream struct {
	buf       []byte
	remaining int // owned states left
	cands     int // candidates left within the current state
}

func (s *resultStream) reset(buf []byte) error {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return fmt.Errorf("state count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, int(n), 0
	return nil
}

// nextState positions the stream at the given owned state and returns
// its candidate count.
func (s *resultStream) nextState(want int) (int, error) {
	if s.cands != 0 {
		return 0, fmt.Errorf("previous state has %d unread candidates", s.cands)
	}
	if s.remaining == 0 {
		return 0, fmt.Errorf("stream exhausted before state %d", want)
	}
	id, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, fmt.Errorf("state id: %w", err)
	}
	if int(id) != want {
		return 0, fmt.Errorf("stream has state %d, merge expects %d", id, want)
	}
	n, rest, err := decodeUvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("candidate count: %w", err)
	}
	s.buf, s.remaining, s.cands = rest, s.remaining-1, int(n)
	return int(n), nil
}

func (s *resultStream) nextCand() (tag int, trans int, known petri.MarkID, err error) {
	if s.cands == 0 {
		return 0, 0, 0, fmt.Errorf("no candidates left in state")
	}
	v, rest, err := decodeUvarint(s.buf)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("candidate: %w", err)
	}
	tag, trans = int(v&3), int(v>>2)
	if tag == candKnown {
		var g uint64
		g, rest, err = decodeUvarint(rest)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("known id: %w", err)
		}
		known = petri.MarkID(g)
	}
	s.buf, s.cands = rest, s.cands-1
	return tag, trans, known, nil
}

// done verifies the level's stream was fully consumed.
func (s *resultStream) done() error {
	if s.remaining != 0 || s.cands != 0 || len(s.buf) != 0 {
		return fmt.Errorf("stream not fully consumed (%d states, %d candidates, %d bytes left)", s.remaining, s.cands, len(s.buf))
	}
	return nil
}
