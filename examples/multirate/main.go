// Multirate: the paper's Section 3 communication model — "the producer
// of an image may transfer a line of pixels in one port operation ...
// the consumer may read the line in a pixel-by-pixel basis". The source
// writes ten pixels in a single WRITE_DATA (a weight-10 arc in the Petri
// net); the sink drains one pixel at a time with a SELECT loop. The
// schedule sizes the line channel to exactly one burst.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	res, err := apps.SynthesizeMultiRate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthesis failed:", err)
		os.Exit(1)
	}
	fmt.Printf("schedule: %d nodes; channel bounds: Line=%d (one burst), Eol=%d, Ack=%d\n",
		len(res.Schedules[0].Nodes),
		res.ChannelBound("Line"), res.ChannelBound("Eol"), res.ChannelBound("Ack"))

	te, err := sim.NewTaskExec(res.Sys, res.Tasks[0], sim.PFC)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, g := range []int64{1, 5} {
		before := len(te.Output("out").Vals)
		if err := te.Trigger(g); err != nil {
			fmt.Fprintln(os.Stderr, "trigger failed:", err)
			os.Exit(1)
		}
		fmt.Printf("burst g=%d -> squares %v\n", g, te.Output("out").Vals[before:])
	}
	fmt.Printf("total cycles: %d\n", te.Machine.Cycles)
}
