package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Marking is a token count per place, indexed by place ID. Markings are
// value-like: mutating methods operate in place, functional ones return
// fresh slices.
type Marking []int

// Clone returns a copy of m.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether m and o assign the same count to every place.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Covers reports whether m(p) >= o(p) for every place p.
func (m Marking) Covers(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] < o[i] {
			return false
		}
	}
	return true
}

// Total returns the total number of tokens.
func (m Marking) Total() int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Key returns a canonical string usable as a map key. It allocates and
// formats; hot paths intern markings in a MarkingStore and compare
// MarkIDs instead — Key survives for formatting and tests.
func (m Marking) Key() string {
	var sb strings.Builder
	for i, v := range m {
		if v != 0 {
			fmt.Fprintf(&sb, "%d:%d,", i, v)
		}
	}
	return sb.String()
}

// Format renders the marking as the multiset of marked place names, in
// the "p1 p2 p2" style of the paper's figures. The empty marking renders
// as "0".
func (m Marking) Format(n *Net) string {
	var names []string
	for i, v := range m {
		for k := 0; k < v; k++ {
			names = append(names, n.Places[i].Name)
		}
	}
	if len(names) == 0 {
		return "0"
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// Enabled reports whether transition t is enabled at m: m(p) >= F(p,t)
// for every place p. Source transitions are always enabled.
func (m Marking) Enabled(t *Transition) bool {
	for _, a := range t.In {
		if m[a.Place] < a.Weight {
			return false
		}
	}
	return true
}

// Fire returns the marking obtained by firing t at m. It panics if t is
// not enabled; callers are expected to have checked Enabled.
func (m Marking) Fire(t *Transition) Marking {
	if !m.Enabled(t) {
		panic(fmt.Sprintf("petri: firing disabled transition %s at %v", t.Name, []int(m)))
	}
	r := m.Clone()
	for _, a := range t.In {
		r[a.Place] -= a.Weight
	}
	for _, a := range t.Out {
		r[a.Place] += a.Weight
	}
	return r
}

// FireInto writes the result of firing t at m into dst, growing dst as
// needed, and returns it. Unlike Fire it does not allocate when dst has
// capacity, which is what keeps the schedule-search inner loops
// allocation-free: callers thread one scratch buffer through the whole
// search. The caller must have checked Enabled; FireInto does not.
func (m Marking) FireInto(dst Marking, t *Transition) Marking {
	if cap(dst) < len(m) {
		dst = make(Marking, len(m))
	}
	dst = dst[:len(m)]
	copy(dst, m)
	for _, a := range t.In {
		dst[a.Place] -= a.Weight
	}
	for _, a := range t.Out {
		dst[a.Place] += a.Weight
	}
	return dst
}

// Compare orders markings lexicographically by token vector (shorter
// vectors first). It is an allocation-free total order for sorting and
// deduplication; unrelated to the covering partial order.
func (m Marking) Compare(o Marking) int {
	if len(m) != len(o) {
		if len(m) < len(o) {
			return -1
		}
		return 1
	}
	for i := range m {
		if m[i] != o[i] {
			if m[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// FireSeq fires a sequence of transitions from m, returning the final
// marking, or an error naming the first disabled transition.
func (m Marking) FireSeq(seq []*Transition) (Marking, error) {
	cur := m
	for i, t := range seq {
		if !cur.Enabled(t) {
			return nil, fmt.Errorf("petri: transition %s (position %d) not enabled", t.Name, i)
		}
		cur = cur.Fire(t)
	}
	return cur, nil
}

// Fireable reports whether the sequence is fireable from m.
func (m Marking) Fireable(seq []*Transition) bool {
	_, err := m.FireSeq(seq)
	return err == nil
}

// EnabledTransitions returns the IDs of all transitions of n enabled at
// m, in ascending order. Source transitions are included.
func (n *Net) EnabledTransitions(m Marking) []int {
	var out []int
	for _, t := range n.Transitions {
		if m.Enabled(t) {
			out = append(out, t.ID)
		}
	}
	return out
}

// RespectsBounds reports whether the marking respects every
// user-specified place bound (Bound == 0 means unbounded).
func (n *Net) RespectsBounds(m Marking) bool {
	for i, p := range n.Places {
		if p.Bound > 0 && m[i] > p.Bound {
			return false
		}
	}
	return true
}
