package petri

import (
	"encoding/binary"
	"fmt"
)

// Wire (de)serialization for cross-process exploration. A distributed
// frontier ships three kinds of payload between coordinator and worker
// processes: the net itself (once per session), full token vectors (the
// root states seeding a session), and per-level delta batches — compact
// (parent, transition) pairs from which a replica derives each newly
// discovered marking by re-firing. Full-replica sessions broadcast
// plain Delta batches and ship no vectors in steady state; trimmed
// sessions (workers holding only their owned hash shards) ship VecDelta
// batches, which additionally name the discovered child's global id and
// optionally carry the parent's token vector when the receiving worker
// does not own the parent and so cannot re-fire from local state.
// Everything is length-checked varint encoding: deterministic,
// endian-free, and append-only so encoders can reuse buffers.
//
// The net encoding carries exactly the structure exploration needs —
// names, kinds, initial markings, bounds, labels and the weighted arc
// lists in declaration order — and deliberately drops the compiler
// payloads (Place.Cond, Transition.Code, process attribution): those
// drive code generation in the coordinator, never firing rules. A
// decoded net therefore produces the identical ECSPartition,
// EnabledTracker and firing semantics, which is all the determinism
// contract requires of a worker.

// Delta is one state-discovery record of a level-synchronous
// exploration: the new state is the marking obtained by firing Trans at
// the already-known state Parent. A level's new states, transmitted as
// deltas in discovery order, let a replica reconstruct vectors, dense
// MarkIDs and incremental enabled sets without receiving any of them
// explicitly.
type Delta struct {
	Parent MarkID
	Trans  int32
}

// AppendMarking appends m's varint encoding (length prefix + token
// counts) to dst.
func AppendMarking(dst []byte, m Marking) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	for _, v := range m {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// DecodeMarking decodes a marking encoded by AppendMarking from the
// front of buf, returning the marking and the remaining bytes.
func DecodeMarking(buf []byte) (Marking, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: marking length: %w", err)
	}
	if n > uint64(len(buf)) { // every token needs >= 1 byte
		return nil, nil, fmt.Errorf("petri: marking length %d exceeds payload", n)
	}
	m := make(Marking, n)
	for i := range m {
		var v uint64
		v, buf, err = decodeUvarint(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("petri: marking token %d: %w", i, err)
		}
		m[i] = int(v)
	}
	return m, buf, nil
}

// AppendDeltas appends a delta batch (count prefix + pairs) to dst.
func AppendDeltas(dst []byte, ds []Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for _, d := range ds {
		dst = binary.AppendUvarint(dst, uint64(d.Parent))
		dst = binary.AppendUvarint(dst, uint64(d.Trans))
	}
	return dst
}

// DecodeDeltas decodes a batch encoded by AppendDeltas from the front
// of buf, appending to ds, and returns the batch and remaining bytes.
func DecodeDeltas(ds []Delta, buf []byte) ([]Delta, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: delta count: %w", err)
	}
	if n > uint64(len(buf)) { // every delta needs >= 2 bytes
		return nil, nil, fmt.Errorf("petri: delta count %d exceeds payload", n)
	}
	for i := uint64(0); i < n; i++ {
		var p, t uint64
		p, buf, err = decodeUvarint(buf)
		if err == nil {
			t, buf, err = decodeUvarint(buf)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("petri: delta %d: %w", i, err)
		}
		ds = append(ds, Delta{Parent: MarkID(p), Trans: int32(t)})
	}
	return ds, buf, nil
}

// VecDelta is one state-discovery record of a trimmed-replica
// exploration: worker processes holding only their owned hash shards
// receive exactly the records whose Child they own, so the record names
// the child's global id explicitly (the dense numbering is no longer
// implied by batch position) and, when the receiver does not hold
// Parent either, carries the parent's token vector so the child can
// still be derived by re-firing. ParentVec == nil means the receiver
// already has the parent — in its owned store, or in its
// boundary-parent cache from an earlier record.
type VecDelta struct {
	Child     MarkID
	Parent    MarkID
	Trans     int32
	ParentVec Marking
}

// AppendVecDeltas appends a trimmed-replica delta batch to dst. Child
// ids must be strictly ascending (they are discovery-ordered global
// ids); they are gap-encoded against the previous record so a level's
// batch costs about one byte per record over the (parent, transition)
// pair, plus the vectors actually attached.
func AppendVecDeltas(dst []byte, ds []VecDelta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	prev := uint64(0)
	for _, d := range ds {
		dst = binary.AppendUvarint(dst, uint64(d.Child)-prev)
		prev = uint64(d.Child)
		hasVec := uint64(0)
		if d.ParentVec != nil {
			hasVec = 1
		}
		dst = binary.AppendUvarint(dst, uint64(d.Parent)<<1|hasVec)
		dst = binary.AppendUvarint(dst, uint64(d.Trans))
		if d.ParentVec != nil {
			dst = AppendMarking(dst, d.ParentVec)
		}
	}
	return dst
}

// DecodeVecDeltas decodes a batch encoded by AppendVecDeltas from the
// front of buf, appending to ds, and returns the batch and remaining
// bytes. Attached vectors are freshly allocated (a receiver caches
// boundary-parent vectors beyond the life of the read buffer).
func DecodeVecDeltas(ds []VecDelta, buf []byte) ([]VecDelta, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: vec-delta count: %w", err)
	}
	if n > uint64(len(buf)) { // every record needs >= 3 bytes
		return nil, nil, fmt.Errorf("petri: vec-delta count %d exceeds payload", n)
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var gap, pv, t uint64
		gap, buf, err = decodeUvarint(buf)
		if err == nil {
			pv, buf, err = decodeUvarint(buf)
		}
		if err == nil {
			t, buf, err = decodeUvarint(buf)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("petri: vec-delta %d: %w", i, err)
		}
		d := VecDelta{Child: MarkID(prev + gap), Parent: MarkID(pv >> 1), Trans: int32(t)}
		prev += gap
		if pv&1 != 0 {
			d.ParentVec, buf, err = DecodeMarking(buf)
			if err != nil {
				return nil, nil, fmt.Errorf("petri: vec-delta %d vector: %w", i, err)
			}
		}
		ds = append(ds, d)
	}
	return ds, buf, nil
}

// AppendNet appends the net's wire encoding to dst. See the package
// comment above for what is (and deliberately is not) carried.
func AppendNet(dst []byte, n *Net) []byte {
	dst = appendString(dst, n.Name)
	dst = binary.AppendUvarint(dst, uint64(len(n.Places)))
	for _, p := range n.Places {
		dst = appendString(dst, p.Name)
		dst = binary.AppendUvarint(dst, uint64(p.Kind))
		dst = binary.AppendUvarint(dst, uint64(p.Initial))
		dst = binary.AppendUvarint(dst, uint64(p.Bound))
	}
	dst = binary.AppendUvarint(dst, uint64(len(n.Transitions)))
	for _, t := range n.Transitions {
		dst = appendString(dst, t.Name)
		dst = appendString(dst, t.Label)
		dst = binary.AppendUvarint(dst, uint64(t.Kind))
		dst = appendArcs(dst, t.In)
		dst = appendArcs(dst, t.Out)
	}
	return dst
}

// DecodeNet decodes a net encoded by AppendNet from the front of buf,
// returning the net and the remaining bytes. The decoded net validates
// and reproduces the original's ECS partition, enabled-tracker indexes
// and firing behaviour exactly.
func DecodeNet(buf []byte) (*Net, []byte, error) {
	name, buf, err := decodeString(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: net name: %w", err)
	}
	n := New(name)
	np, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: place count: %w", err)
	}
	if np > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("petri: place count %d exceeds payload", np)
	}
	for i := uint64(0); i < np; i++ {
		var pname string
		var kind, initial, bound uint64
		pname, buf, err = decodeString(buf)
		if err == nil {
			kind, buf, err = decodeUvarint(buf)
		}
		if err == nil {
			initial, buf, err = decodeUvarint(buf)
		}
		if err == nil {
			bound, buf, err = decodeUvarint(buf)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("petri: place %d: %w", i, err)
		}
		p := n.AddPlace(pname, PlaceKind(kind), int(initial))
		p.Bound = int(bound)
	}
	nt, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("petri: transition count: %w", err)
	}
	if nt > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("petri: transition count %d exceeds payload", nt)
	}
	for i := uint64(0); i < nt; i++ {
		var tname, label string
		var kind uint64
		tname, buf, err = decodeString(buf)
		if err == nil {
			label, buf, err = decodeString(buf)
		}
		if err == nil {
			kind, buf, err = decodeUvarint(buf)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("petri: transition %d: %w", i, err)
		}
		t := n.AddTransition(tname, TransKind(kind))
		t.Label = label
		t.In, buf, err = decodeArcs(buf, len(n.Places))
		if err == nil {
			t.Out, buf, err = decodeArcs(buf, len(n.Places))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("petri: transition %s arcs: %w", tname, err)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, nil, fmt.Errorf("petri: decoded net invalid: %w", err)
	}
	return n, buf, nil
}

func appendArcs(dst []byte, arcs []Arc) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(arcs)))
	for _, a := range arcs {
		dst = binary.AppendUvarint(dst, uint64(a.Place))
		dst = binary.AppendUvarint(dst, uint64(a.Weight))
	}
	return dst
}

func decodeArcs(buf []byte, places int) ([]Arc, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("arc count %d exceeds payload", n)
	}
	var arcs []Arc
	for i := uint64(0); i < n; i++ {
		var p, w uint64
		p, buf, err = decodeUvarint(buf)
		if err == nil {
			w, buf, err = decodeUvarint(buf)
		}
		if err != nil {
			return nil, nil, err
		}
		if p >= uint64(places) {
			return nil, nil, fmt.Errorf("arc place %d out of range (%d places)", p, places)
		}
		arcs = append(arcs, Arc{Place: int(p), Weight: int(w)})
	}
	return arcs, buf, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, buf, err := decodeUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(buf)) {
		return "", nil, fmt.Errorf("string length %d exceeds payload", n)
	}
	return string(buf[:n]), buf[n:], nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or overlong varint")
	}
	return v, buf[n:], nil
}
