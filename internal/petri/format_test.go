package petri

import (
	"strings"
	"testing"
)

const sampleNet = `net demo
place p0 init=1
place buf kind=channel bound=4
trans a kind=source-unc
trans work process=P label=T
trans out kind=sink
arc a -> buf w=2
arc buf -> work w=2
arc p0 -> work
arc work -> p0
arc buf -> out
`

func TestParseFormatRoundTrip(t *testing.T) {
	n, err := Parse(strings.NewReader(sampleNet))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Name != "demo" {
		t.Errorf("name = %q", n.Name)
	}
	if p := n.PlaceByName("buf"); p == nil || p.Bound != 4 || p.Kind != PlaceChannel {
		t.Errorf("buf parsed wrong: %+v", p)
	}
	if tr := n.TransitionByName("work"); tr == nil || tr.Process != "P" || tr.Label != "T" {
		t.Errorf("work parsed wrong: %+v", tr)
	}
	var out strings.Builder
	if err := n.Format(&out); err != nil {
		t.Fatalf("Format: %v", err)
	}
	// Round trip: parse the formatted text and format again; fixed point.
	n2, err := Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%s", err, out.String())
	}
	var out2 strings.Builder
	if err := n2.Format(&out2); err != nil {
		t.Fatal(err)
	}
	if out.String() != out2.String() {
		t.Errorf("format not a fixed point:\n%s\nvs\n%s", out.String(), out2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"place",                  // missing name
		"arc a -> b",             // unknown endpoints
		"place p init=x",         // bad integer
		"trans t kind=bogus",     // bad kind
		"wibble",                 // unknown directive
		"place p\narc p -> p",    // place-to-place
		"place p kind=nope",      // bad place kind
		"place p init=1 extra=1", // unknown attribute
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "# a comment\nnet c # trailing\nplace p init=1 # note\n"
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Name != "c" || len(n.Places) != 1 || n.Places[0].Initial != 1 {
		t.Errorf("comment handling broken: %+v", n)
	}
}

func TestDotOutput(t *testing.T) {
	n, err := Parse(strings.NewReader(sampleNet))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.Dot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "shape=circle", "shape=cds", `label="2"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}
