package link

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/petri"
)

const pairSrc = `
PROCESS w (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v, 1);
  }
}

PROCESS r (In DPORT in, Out DPORT res) {
  int v;
  while (1) {
    READ_DATA(in, &v, 1);
    WRITE_DATA(res, v + 1, 1);
  }
}
`

func compilePair(t *testing.T) []*compile.CompiledProcess {
	t.Helper()
	f, err := flowc.ParseFile(pairSrc)
	if err != nil {
		t.Fatal(err)
	}
	var procs []*compile.CompiledProcess
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cp)
	}
	return procs
}

func pairSpec(bound int) *Spec {
	return &Spec{
		Name: "pair",
		Channels: []ChannelSpec{
			{Name: "C", From: "w.out", To: "r.in", Bound: bound},
		},
		Inputs:  []InputSpec{{Name: "go", To: "w.go", Rate: 1}},
		Outputs: []OutputSpec{{Name: "res", From: "r.res", Rate: 1}},
	}
}

func TestLinkMergesPorts(t *testing.T) {
	sys, err := Link(compilePair(t), pairSpec(0))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	ch := sys.Net.PlaceByName("C")
	if ch == nil || ch.Kind != petri.PlaceChannel {
		t.Fatalf("channel place missing or wrong kind: %+v", ch)
	}
	// The writer produces into C and the reader consumes from it.
	producers := sys.Net.Predecessors(ch.ID)
	consumers := sys.Net.Successors(ch.ID)
	if len(producers) != 1 || len(consumers) != 1 {
		t.Fatalf("producers %v consumers %v", producers, consumers)
	}
	if sys.Net.Transitions[producers[0]].Process != "w" {
		t.Error("producer should be in process w")
	}
	if sys.Net.Transitions[consumers[0]].Process != "r" {
		t.Error("consumer should be in process r")
	}
	// Bindings resolve both endpoints to the same channel.
	bw := sys.PortBinding("w", "out")
	br := sys.PortBinding("r", "in")
	if bw == nil || br == nil || bw.Channel != br.Channel {
		t.Error("bindings do not share the channel")
	}
	if b := sys.PortBinding("w", "go"); b == nil || b.Kind != BindEnvIn {
		t.Error("go should bind to an environment input")
	}
	if b := sys.PortBinding("r", "res"); b == nil || b.Kind != BindEnvOut {
		t.Error("res should bind to an environment output")
	}
}

func TestLinkBoundedChannelComplement(t *testing.T) {
	sys, err := Link(compilePair(t), pairSpec(3))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	comp := sys.Net.PlaceByName("C~space")
	if comp == nil || comp.Kind != petri.PlaceComplement || comp.Initial != 3 {
		t.Fatalf("complement place wrong: %+v", comp)
	}
	// Writer consumes space; reader releases it.
	ch := sys.Net.PlaceByName("C")
	writer := sys.Net.Transitions[sys.Net.Predecessors(ch.ID)[0]]
	if writer.Weight(comp.ID) != 1 {
		t.Error("writer should consume one space token")
	}
	reader := sys.Net.Transitions[sys.Net.Successors(ch.ID)[0]]
	if reader.OutWeight(comp.ID) != 1 {
		t.Error("reader should release one space token")
	}
	// Invariant: C + C~space == 3 in every reachable marking.
	r := sys.Net.Explore(petri.ExploreOptions{FireSources: true, MaxTokensPerPlace: 5, MaxMarkings: 500})
	for _, m := range r.Store.All() {
		if m[ch.ID]+m[comp.ID] != 3 {
			t.Errorf("marking %s violates the complement invariant", m.Key())
		}
	}
}

func TestLinkBoundSmallerThanBurst(t *testing.T) {
	f, err := flowc.ParseFile(`
PROCESS w (In DPORT go, Out DPORT out) {
  int line[4];
  while (1) {
    READ_DATA(go, line, 1);
    WRITE_DATA(out, line, 4);
  }
}
PROCESS r (In DPORT in) {
  int line[4];
  while (1) {
    READ_DATA(in, line, 4);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	var procs []*compile.CompiledProcess
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cp)
	}
	_, err = Link(procs, &Spec{
		Name:     "burst",
		Channels: []ChannelSpec{{Name: "C", From: "w.out", To: "r.in", Bound: 2}},
		Inputs:   []InputSpec{{Name: "go", To: "w.go"}},
	})
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("bound smaller than burst should fail, got %v", err)
	}
}

func TestLinkErrors(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
	}{
		{"unconnected port", &Spec{Name: "s",
			Channels: []ChannelSpec{{Name: "C", From: "w.out", To: "r.in"}},
			Inputs:   []InputSpec{{Name: "go", To: "w.go"}},
			// r.res left unconnected
		}},
		{"double connection", &Spec{Name: "s",
			Channels: []ChannelSpec{{Name: "C", From: "w.out", To: "r.in"}},
			Inputs:   []InputSpec{{Name: "go", To: "w.go"}, {Name: "go2", To: "w.go"}},
			Outputs:  []OutputSpec{{Name: "res", From: "r.res"}},
		}},
		{"wrong direction", &Spec{Name: "s",
			Channels: []ChannelSpec{{Name: "C", From: "r.in", To: "w.out"}},
		}},
		{"unknown process", &Spec{Name: "s",
			Channels: []ChannelSpec{{Name: "C", From: "zz.out", To: "r.in"}},
		}},
		{"malformed ref", &Spec{Name: "s",
			Channels: []ChannelSpec{{Name: "C", From: "wout", To: "r.in"}},
		}},
	}
	for _, c := range cases {
		if _, err := Link(compilePair(t), c.spec); err == nil {
			t.Errorf("%s: Link should fail", c.name)
		}
	}
}

func TestSpecParseFormatRoundTrip(t *testing.T) {
	text := `system pair
channel C w.out -> r.in bound=3
input go -> w.go uncontrollable
input poll -> x.p controllable rate=2
output r.res -> res rate=2
`
	spec, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Channels[0].Bound != 3 || spec.Inputs[1].Rate != 2 || !spec.Inputs[1].Controllable {
		t.Errorf("parsed spec wrong: %+v", spec)
	}
	var sb strings.Builder
	if err := FormatSpec(spec, &sb); err != nil {
		t.Fatal(err)
	}
	spec2, err := ParseSpec(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	var sb2 strings.Builder
	FormatSpec(spec2, &sb2)
	if sb.String() != sb2.String() {
		t.Errorf("spec format not a fixed point:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

func TestSpecParseErrors(t *testing.T) {
	cases := []string{
		"channel C a.b -> c.d",        // missing system line
		"system s\nchannel C a.b c.d", // missing arrow
		"system s\ninput x y z",       // malformed input
		"system s\nchannel C a.b -> c.d bound=-1",
		"system s\nbogus",
		"system s\ninput x -> a.b rate=0",
	}
	for _, src := range cases {
		if _, err := ParseSpec(strings.NewReader(src)); err == nil {
			t.Errorf("ParseSpec(%q) should fail", src)
		}
	}
}
