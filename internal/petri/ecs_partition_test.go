package petri

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// legacyECSPartition is the original string-keyed implementation, kept
// verbatim as the reference the sorted-arc grouping must reproduce.
func legacyECSPartition(n *Net) []*ECS {
	presetKey := func(t *Transition) string {
		arcs := make([]Arc, len(t.In))
		copy(arcs, t.In)
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].Place < arcs[j].Place })
		var sb strings.Builder
		for _, a := range arcs {
			fmt.Fprintf(&sb, "%d:%d;", a.Place, a.Weight)
		}
		return sb.String()
	}
	byKey := map[string][]int{}
	var classes [][]int
	for _, t := range n.Transitions {
		if t.IsSource() {
			classes = append(classes, []int{t.ID})
			continue
		}
		k := presetKey(t)
		byKey[k] = append(byKey[k], t.ID)
	}
	for _, ts := range byKey {
		sort.Ints(ts)
		classes = append(classes, ts)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	out := make([]*ECS, len(classes))
	for i, ts := range classes {
		out[i] = &ECS{Index: i, Trans: ts}
	}
	return out
}

func assertSamePartition(t *testing.T, name string, n *Net) {
	t.Helper()
	got, want := n.ECSPartition(), legacyECSPartition(n)
	if len(got) != len(want) {
		t.Fatalf("%s: %d classes, legacy %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || !reflect.DeepEqual(got[i].Trans, want[i].Trans) {
			t.Fatalf("%s class %d: got %v (index %d), legacy %v (index %d)",
				name, i, got[i].Trans, got[i].Index, want[i].Trans, want[i].Index)
		}
	}
}

// paperChoiceNet rebuilds the free-choice shape of the paper's figures:
// an uncontrollable source feeding a data choice (two transitions with
// the identical preset — one ECS), distinct-preset SELECT-style arms,
// weighted multirate arcs and arcs registered out of place order.
func paperChoiceNet() *Net {
	n := New("paper")
	pin := n.AddPlace("pin", PlaceChannel, 0)
	pc := n.AddPlace("pc", PlaceInternal, 1)
	pa := n.AddPlace("pa", PlaceChannel, 0)
	pb := n.AddPlace("pb", PlaceChannel, 0)
	src := n.AddTransition("src", TransSourceUnc)
	n.AddArcTP(src, pin, 1)
	tt := n.AddTransition("tT", TransNormal)
	tf := n.AddTransition("tF", TransNormal)
	// Same preset, arcs added in opposite order: one ECS.
	n.AddArc(pin, tt, 1)
	n.AddArc(pc, tt, 1)
	n.AddArc(pc, tf, 1)
	n.AddArc(pin, tf, 1)
	n.AddArcTP(tt, pa, 2)
	n.AddArcTP(tf, pb, 1)
	// Distinct presets (different weights on the same place): two ECSs.
	ra := n.AddTransition("ra", TransNormal)
	rb := n.AddTransition("rb", TransNormal)
	n.AddArc(pa, ra, 1)
	n.AddArc(pa, rb, 2)
	// Accumulated duplicate arcs must compare equal to a single arc of
	// the summed weight.
	rc := n.AddTransition("rc", TransNormal)
	n.AddArc(pb, rc, 1)
	n.AddArc(pb, rc, 1)
	rd := n.AddTransition("rd", TransNormal)
	n.AddArc(pb, rd, 2)
	return n
}

// TestECSPartitionMatchesLegacy pins the sorted-arc partition against
// the original string-keyed implementation on hand shapes and a sweep
// of seeded random nets.
func TestECSPartitionMatchesLegacy(t *testing.T) {
	assertSamePartition(t, "paper-choice", paperChoiceNet())

	divider := New("divider")
	p1 := divider.AddPlace("p1", PlaceChannel, 0)
	p2 := divider.AddPlace("p2", PlaceChannel, 0)
	a := divider.AddTransition("a", TransSourceUnc)
	b := divider.AddTransition("b", TransNormal)
	c := divider.AddTransition("c", TransNormal)
	divider.AddArcTP(a, p1, 1)
	divider.AddArc(p1, b, 3)
	divider.AddArcTP(b, p2, 1)
	divider.AddArc(p2, c, 1)
	assertSamePartition(t, "divider", divider)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		assertSamePartition(t, fmt.Sprintf("random-%d", i), randomNet(rng))
	}
}

// TestEnabledECSInto: the scratch-slice variant matches EnabledECS and
// reuses the caller's buffer without allocating.
func TestEnabledECSInto(t *testing.T) {
	n := paperChoiceNet()
	part := n.ECSPartition()
	m := n.InitialMarking()
	want := EnabledECS(n, part, m)
	scratch := make([]*ECS, 0, len(part))
	got := EnabledECSInto(scratch[:0], n, part, m)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EnabledECSInto = %v, want %v", got, want)
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = EnabledECSInto(scratch[:0], n, part, m)
	})
	if allocs != 0 {
		t.Fatalf("EnabledECSInto allocated %.1f times per run with a warm scratch slice", allocs)
	}
}

// TestECSPartitionAllocs: partition construction must not allocate per
// transition beyond the handful of result slices — the old
// implementation built one key string per non-source transition plus a
// map to group them.
func TestECSPartitionAllocs(t *testing.T) {
	n := paperChoiceNet()
	n.ECSPartition()
	allocs := testing.AllocsPerRun(100, func() { n.ECSPartition() })
	// Arena, offsets, id list, class growth, two sort.Slice calls and
	// the ECS arena + pointer slice: a constant-ish set of result
	// buffers (~18 observed), with no per-transition key strings and no
	// grouping map. The legacy implementation paid 2+ allocations per
	// non-source transition on top of this.
	if allocs > 24 {
		t.Fatalf("ECSPartition allocated %.0f times per run", allocs)
	}
}
