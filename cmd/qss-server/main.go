// Command qss-server is the resident synthesis service: one warm
// process serving POST /v1/synthesize over HTTP, with the shared
// content-addressed result cache and an optional persistent
// distributed-exploration pool surviving across requests — the warm
// path of repeat synthesis (~10µs vs ~46ms cold on the PFC example)
// only pays off if the process does.
//
// Usage:
//
//	qss-server [-listen :9090] [-max-concurrent N] [-max-queue N]
//	           [-max-nodes N] [-default-timeout 30s] [-max-timeout 2m]
//	           [-drain-timeout 30s] [-dist-workers N]
//	           [-dist-endpoint EP] [-dist-full-replicas] [-freeze-levels]
//
// Endpoints: POST /v1/synthesize (JSON in/out), GET /healthz
// (liveness), GET /readyz (admission readiness; 503 while draining),
// GET /metrics (Prometheus text). SIGTERM or SIGINT begins a graceful
// drain: readiness flips off, new synthesis requests are refused,
// in-flight requests finish under -drain-timeout, the dist pool closes
// once, and the process exits. See docs/SERVER.md for the operations
// guide and JSON schemas.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/server"
)

func main() {
	// A -dist-workers pool re-executes this binary for its local worker
	// processes; they must become workers before flag parsing or main
	// logic runs.
	dist.MaybeWorker()
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen         = flag.String("listen", "127.0.0.1:9090", "address to serve HTTP on (host:port; port 0 picks a free port)")
		maxConcurrent  = flag.Int("max-concurrent", 0, "simultaneous syntheses (0 = GOMAXPROCS)")
		maxQueue       = flag.Int("max-queue", 0, "admission queue length beyond the concurrent slots; overflow is answered 429 (0 = 4x max-concurrent)")
		maxNodes       = flag.Int("max-nodes", 0, "cap on the per-request state budget (0 = the search default, 2000000)")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "synthesis deadline for requests naming none")
		maxTimeout     = flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied timeouts")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests")
		distWorkers    = flag.Int("dist-workers", 0, "spawn this many persistent local dist worker processes shared by all requests (0 = in-process exploration)")
		distEndpoint   = flag.String("dist-endpoint", "", "await externally started qssd workers at this endpoint instead of spawning (requires -dist-workers)")
		distFull       = flag.Bool("dist-full-replicas", false, "run the dist pool with full worker replicas instead of trimmed owned-shard ones")
		freezeLevels   = flag.Bool("freeze-levels", false, "freeze closed exploration levels to on-disk delta segments (locally and in spawned workers)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "qss-server: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		return 2
	}
	if *distWorkers < 0 {
		fmt.Fprintln(os.Stderr, "qss-server: -dist-workers must be >= 0")
		return 2
	}
	if *distEndpoint != "" && *distWorkers == 0 {
		fmt.Fprintln(os.Stderr, "qss-server: -dist-endpoint requires -dist-workers")
		return 2
	}

	cfg := server.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		MaxNodes:       *maxNodes,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		FreezeLevels:   *freezeLevels,
		Log:            logger,
	}
	if *distWorkers > 0 {
		if *freezeLevels {
			// Spawned workers inherit the environment; externally
			// started qssd workers take -freeze-levels themselves.
			os.Setenv(dist.EnvFreeze, "1")
		}
		var pool *dist.Pool
		var err error
		if *distEndpoint != "" {
			logger.Printf("qss-server: awaiting %d external workers at %s", *distWorkers, *distEndpoint)
			pool, err = dist.Listen(*distEndpoint, *distWorkers)
		} else {
			pool, err = dist.SpawnLocal(*distWorkers)
		}
		if err != nil {
			logger.Printf("qss-server: dist pool: %v", err)
			return 1
		}
		if *distFull {
			pool.SetFullReplicas(true)
		}
		logger.Printf("qss-server: dist pool ready (%d workers, full-replicas=%v)", pool.NumWorkers(), *distFull)
		cfg.Pool = pool
	}

	srv := server.New(cfg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Printf("qss-server: listen: %v", err)
		return 1
	}
	// The resolved address line is a contract: port 0 callers (tests,
	// scripts) parse it to find the server.
	logger.Printf("qss-server: listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	code := 0
	select {
	case got := <-sig:
		logger.Printf("qss-server: %v received, draining", got)
		if err := srv.Drain(context.Background()); err != nil {
			logger.Printf("qss-server: %v", err)
			code = 1
		}
		// Health probes stayed answerable through the drain; now stop
		// the listener and let idle keep-alives go.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("qss-server: shutdown: %v", err)
			code = 1
		}
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("qss-server: serve: %v", err)
			// Serve failed underneath us; still drain so the pool closes.
			srv.Drain(context.Background())
			return 1
		}
	}
	logger.Printf("qss-server: exit")
	return code
}
