package petri

import "sort"

// ECS is an equal conflict set: a maximal set of non-source transitions
// with identical presets (F(p,t_i) == F(p,t_j) for all p), or a singleton
// source transition. If one member is enabled at a marking, all are.
//
// ECSs are the alphabet of the scheduler: a data-dependent control
// construct compiles to one ECS with several transitions (the scheduler
// must survive every resolution), while SELECT alternatives have distinct
// presets and therefore land in distinct ECSs (the scheduler may pick).
type ECS struct {
	Index int   // position in the net's ECS partition
	Trans []int // member transition IDs, ascending
}

// IsSourceECS reports whether the ECS is the singleton of a source
// transition.
func (e *ECS) IsSourceECS(n *Net) bool {
	return len(e.Trans) == 1 && n.Transitions[e.Trans[0]].IsSource()
}

// IsUncontrollable reports whether the ECS is the singleton of an
// uncontrollable source transition.
func (e *ECS) IsUncontrollable(n *Net) bool {
	return len(e.Trans) == 1 && n.Transitions[e.Trans[0]].Kind == TransSourceUnc
}

// Enabled reports whether the ECS is enabled at m. By the equal-conflict
// property it suffices to test one member.
func (e *ECS) Enabled(n *Net, m Marking) bool {
	return m.Enabled(n.Transitions[e.Trans[0]])
}

// ECSPartition computes the equal-conflict partition of the net's
// transitions. The result is deterministic: classes are ordered by their
// smallest member ID, members ascending.
//
// Grouping compares canonically sorted preset arc lists directly (one
// shared arena, a sort, and a linear grouping pass) instead of building
// a per-transition key string — partition construction is on the
// once-per-search setup path of every engine and used to dominate its
// allocation bill.
func (n *Net) ECSPartition() []*ECS {
	numT := len(n.Transitions)
	totalIn := 0
	for _, t := range n.Transitions {
		totalIn += len(t.In)
	}
	// arcs[off[t]:off[t+1]] is transition t's preset sorted by place.
	arcs := make([]Arc, 0, totalIn)
	off := make([]int32, numT+1)
	var nonSrc []int
	for _, t := range n.Transitions {
		off[t.ID] = int32(len(arcs))
		arcs = append(arcs, t.In...)
		// Presets are a handful of arcs: insertion-sort the segment in
		// place rather than paying a reflective sort.Slice per
		// transition.
		seg := arcs[off[t.ID]:]
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && seg[j].Place < seg[j-1].Place; j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
		if !t.IsSource() {
			nonSrc = append(nonSrc, t.ID)
		}
	}
	off[numT] = int32(len(arcs))
	preset := func(id int) []Arc { return arcs[off[id]:off[id+1]] }
	cmpPreset := func(a, b []Arc) int {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i].Place != b[i].Place {
				if a[i].Place < b[i].Place {
					return -1
				}
				return 1
			}
			if a[i].Weight != b[i].Weight {
				if a[i].Weight < b[i].Weight {
					return -1
				}
				return 1
			}
		}
		return len(a) - len(b)
	}
	// Sort non-source transitions by preset (ties by ID): equal presets
	// become adjacent runs with ascending members.
	sort.Slice(nonSrc, func(i, j int) bool {
		if c := cmpPreset(preset(nonSrc[i]), preset(nonSrc[j])); c != 0 {
			return c < 0
		}
		return nonSrc[i] < nonSrc[j]
	})
	var classes [][]int
	for i := 0; i < len(nonSrc); {
		j := i + 1
		for j < len(nonSrc) && cmpPreset(preset(nonSrc[i]), preset(nonSrc[j])) == 0 {
			j++
		}
		classes = append(classes, nonSrc[i:j:j])
		i = j
	}
	// Each source transition is its own ECS by definition.
	for _, t := range n.Transitions {
		if t.IsSource() {
			classes = append(classes, []int{t.ID})
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	arena := make([]ECS, len(classes))
	out := make([]*ECS, len(classes))
	for i, ts := range classes {
		arena[i] = ECS{Index: i, Trans: ts}
		out[i] = &arena[i]
	}
	return out
}

// ECSIndex maps every transition ID to the index of its ECS within the
// given partition.
func ECSIndex(part []*ECS, numTrans int) []int {
	idx := make([]int, numTrans)
	for i := range idx {
		idx[i] = -1
	}
	for _, e := range part {
		for _, t := range e.Trans {
			idx[t] = e.Index
		}
	}
	return idx
}

// EnabledECSInto appends the ECSs of the partition enabled at m to dst
// (typically dst[:0] of a caller-owned scratch slice, keeping per-state
// enabled-set computation allocation-free) and returns the extended
// slice, in partition order.
func EnabledECSInto(dst []*ECS, n *Net, part []*ECS, m Marking) []*ECS {
	for _, e := range part {
		if e.Enabled(n, m) {
			dst = append(dst, e)
		}
	}
	return dst
}

// EnabledECS returns the ECSs of the partition enabled at m, in
// partition order. Hot loops use EnabledECSInto with a scratch slice,
// or an EnabledTracker to skip the full scan entirely.
func EnabledECS(n *Net, part []*ECS, m Marking) []*ECS {
	return EnabledECSInto(nil, n, part, m)
}
