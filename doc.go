// Package repro reproduces "Task Generation and Compile-Time Scheduling
// for Mixed Data-Control Embedded Software" (Cortadella et al., DAC
// 2000): a complete quasi-static scheduling flow from FlowC process
// networks to synthesized software tasks, plus the simulation substrate
// that regenerates the paper's evaluation.
//
// The implementation lives under internal/ (petri, flowc, compile, link,
// sched, codegen, sim, core); command-line tools under cmd/; runnable
// examples under examples/. The root holds the benchmark harness for the
// paper's tables and figures (bench_test.go).
package repro
