package sim

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// pfcResult synthesizes the PFC system once per test binary.
var pfcCache *core.Result

func pfcResult(t testing.TB) *core.Result {
	t.Helper()
	if pfcCache == nil {
		r, err := apps.SynthesizePFC()
		if err != nil {
			t.Fatalf("synthesize pfc: %v", err)
		}
		pfcCache = r
	}
	return pfcCache
}

// runPFCBaseline executes the 4-process implementation for the given
// number of frames and returns (cycles, display stream, switches).
func runPFCBaseline(t testing.TB, frames int, capacity int, cost *CostModel, inline bool) (int64, []int64, int64) {
	t.Helper()
	r := pfcResult(t)
	b := NewBaseline(r.Sys, cost, capacity)
	b.Inline = inline
	for f := 0; f < frames; f++ {
		b.Input("init").Push(int64(f))
		b.Input("cin").Push(int64(f%8 + 1))
	}
	cycles, err := b.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return cycles, b.Output("display").Vals, b.Switches
}

// runPFCTask executes the synthesized single task for the given frames.
func runPFCTask(t testing.TB, frames int, cost *CostModel) (int64, []int64) {
	t.Helper()
	r := pfcResult(t)
	te, err := NewTaskExec(r.Sys, r.Tasks[0], cost)
	if err != nil {
		t.Fatalf("new task exec: %v", err)
	}
	for f := 0; f < frames; f++ {
		te.Input("cin").Push(int64(f%8 + 1))
		if err := te.Trigger(int64(f)); err != nil {
			t.Fatalf("trigger %d: %v", f, err)
		}
	}
	return te.Machine.Cycles, te.Output("display").Vals
}

func TestPFCFunctionalEquivalence(t *testing.T) {
	// The paper: "the output was exactly the same" between the four
	// process system and the synthesized task.
	const frames = 5
	_, base, _ := runPFCBaseline(t, frames, 10, PFC, false)
	_, task := runPFCTask(t, frames, PFC)
	if len(base) != len(task) {
		t.Fatalf("output lengths differ: baseline %d, task %d", len(base), len(task))
	}
	if len(base) != frames*apps.FramePixels {
		t.Fatalf("baseline produced %d pixels, want %d", len(base), frames*apps.FramePixels)
	}
	for i := range base {
		if base[i] != task[i] {
			t.Fatalf("output diverges at pixel %d: baseline %d, task %d", i, base[i], task[i])
		}
	}
}

func TestPFCEquivalenceAcrossBufferSizes(t *testing.T) {
	const frames = 3
	_, want := runPFCTask(t, frames, PFC)
	for _, cap := range []int{1, 2, 7, 100} {
		_, got, _ := runPFCBaseline(t, frames, cap, PFC, true)
		if len(got) != len(want) {
			t.Fatalf("cap %d: output length %d, want %d", cap, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cap %d: output diverges at %d", cap, i)
			}
		}
	}
}

func TestPFCPixelValues(t *testing.T) {
	// Frame f with base value f and coefficient c = f%8+1: pixel (i,j)
	// is (i*10 + j + f) * c.
	const frames = 2
	_, task := runPFCTask(t, frames, PFC)
	idx := 0
	for f := 0; f < frames; f++ {
		c := int64(f%8 + 1)
		for i := 0; i < apps.FrameLines; i++ {
			for j := 0; j < apps.LinePixels; j++ {
				want := (int64(i*10+j) + int64(f)) * c
				if task[idx] != want {
					t.Fatalf("frame %d pixel (%d,%d): got %d, want %d", f, i, j, task[idx], want)
				}
				idx++
			}
		}
	}
}

func TestPFCSpeedupShape(t *testing.T) {
	// Table 1 shape: the single task beats the 4-process implementation
	// by roughly 4-5x, and the ratio grows with optimization level.
	const frames = 10
	var ratios []float64
	for _, cost := range Presets() {
		base, _, _ := runPFCBaseline(t, frames, 100, cost, true)
		task, _ := runPFCTask(t, frames, cost)
		if task <= 0 || base <= 0 {
			t.Fatalf("%s: non-positive cycles (base %d, task %d)", cost.Name, base, task)
		}
		ratio := float64(base) / float64(task)
		ratios = append(ratios, ratio)
		t.Logf("%s: baseline %d cycles, task %d cycles, ratio %.2f", cost.Name, base, task, ratio)
		if ratio < 2.5 || ratio > 8 {
			t.Errorf("%s: ratio %.2f outside the paper's 3.9-5.2 neighbourhood", cost.Name, ratio)
		}
	}
	if ratios[1] <= ratios[0] {
		t.Errorf("optimization should increase the speedup ratio (pfc %.2f, pfc-O %.2f)", ratios[0], ratios[1])
	}
}

func TestPFCBaselineBufferSweepShape(t *testing.T) {
	// Figure 20 shape: the 4-task version improves monotonically (mostly)
	// with channel capacity and the single task beats all of them.
	const frames = 10
	task, _ := runPFCTask(t, frames, PFC)
	var prev int64 = 1 << 62
	for _, cap := range []int{1, 2, 5, 10, 20, 50, 100} {
		cycles, _, switches := runPFCBaseline(t, frames, cap, PFC, true)
		t.Logf("cap %3d: %d cycles (%d switches)", cap, cycles, switches)
		if cycles > prev+prev/10 {
			t.Errorf("cap %d: cycles %d noticeably worse than smaller buffer (%d)", cap, cycles, prev)
		}
		if cycles <= task {
			t.Errorf("cap %d: baseline (%d) should not beat the synthesized task (%d)", cap, cycles, task)
		}
		prev = cycles
	}
}

func TestPFCCodeSizeShape(t *testing.T) {
	// Table 2 shape: the single task is several times smaller than the
	// 4-process implementation with inlined communication.
	r := pfcResult(t)
	for _, sm := range SizeModels() {
		total, per := sm.BaselineSize(r.Sys, true)
		task := sm.TaskSize(r.Tasks[0], r.Sys)
		ratio := float64(total) / float64(task)
		t.Logf("%s: task %d bytes, 4 procs %d bytes %v, ratio %.1f", sm.Name, task, total, per, ratio)
		if ratio < 3 || ratio > 15 {
			t.Errorf("%s: size ratio %.1f outside the paper's ~7-9 neighbourhood", sm.Name, ratio)
		}
		// Call-based communication shrinks the baseline: still bigger
		// than the task but by less (paper: ~3x).
		callTotal, _ := sm.BaselineSize(r.Sys, false)
		if callTotal >= total {
			t.Errorf("%s: call-based size %d should be below inlined %d", sm.Name, callTotal, total)
		}
	}
}

func TestTaskIntraBuffersAreUnit(t *testing.T) {
	r := pfcResult(t)
	te, err := NewTaskExec(r.Sys, r.Tasks[0], PFC)
	if err != nil {
		t.Fatal(err)
	}
	bounds := te.IntraBounds()
	if len(bounds) != len(r.Sys.Channels) {
		t.Fatalf("intra channels = %d, want %d (single task absorbs all)", len(bounds), len(r.Sys.Channels))
	}
	for pid, b := range bounds {
		if b != 1 {
			t.Errorf("channel %s buffer = %d, want 1", r.Sys.Net.Places[pid].Name, b)
		}
	}
}

func TestMultiRateEquivalence(t *testing.T) {
	// Line-based (10 items per WRITE_DATA) pipeline: baseline and task
	// must agree, and the task's Line buffer must hold one full line.
	r, err := apps.SynthesizeMultiRate()
	if err != nil {
		t.Fatalf("synthesize multirate: %v", err)
	}
	triggers := []int64{3, 0, 11}

	b := NewBaseline(r.Sys, PFC, 10)
	b.Input("go").Push(triggers...)
	if _, err := b.Run(); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	te, err := NewTaskExec(r.Sys, r.Tasks[0], PFC)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range triggers {
		if err := te.Trigger(g); err != nil {
			t.Fatalf("trigger %d: %v", g, err)
		}
	}
	want := b.Output("out").Vals
	got := te.Output("out").Vals
	if len(want) != len(triggers)*10 {
		t.Fatalf("baseline produced %d values, want %d", len(want), len(triggers)*10)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("outputs diverge at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// Spot-check values: trigger g -> (g+j)^2.
	if got[0] != 9 || got[1] != 16 {
		t.Errorf("first line wrong: %v", got[:10])
	}
	// The Line buffer carries a full burst.
	for pid, sz := range te.IntraBounds() {
		if r.Sys.Net.Places[pid].Name == "Line" && sz != 10 {
			t.Errorf("Line buffer = %d, want 10", sz)
		}
	}
}
