package codegen

import (
	"fmt"

	"strings"

	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
	"repro/internal/petri"
)

// Synthesis of the sequential C task (Section 6.4). The output has three
// parts: declarations (state variables, intra-task channel buffers),
// initialization, and the Run function (named ISR after the paper) with
// one labeled section per code segment, chained by gotos.
//
// When the schedule was derived from a linked FlowC system, transition
// fragments are pasted with process-prefixed variable names, and
// READ_DATA/WRITE_DATA on intra-task channels are rewritten onto local
// buffers. For hand-built nets (no fragments) transitions are emitted as
// function calls, matching Figure 16 of the paper.

// SynthOptions controls synthesis.
type SynthOptions struct {
	// Sys is the linked system; nil for hand-built nets.
	Sys *link.System
	// SharedChannels lists channel place IDs that other tasks also use
	// and that therefore must stay real channels. Channels not listed
	// and fully covered by this task become intra-task buffers.
	SharedChannels map[int]bool
}

// IntraChannels returns the channel places of the system that collapse
// into this task: all their readers and writers are involved in the
// task's schedule and no other task shares them. The value is the buffer
// size guaranteed by the schedule.
func (t *Task) IntraChannels(opt *SynthOptions) map[int]int {
	out := map[int]int{}
	if opt == nil || opt.Sys == nil {
		return out
	}
	involved := map[int]bool{}
	for _, tr := range t.Schedule.InvolvedTransitions() {
		involved[tr] = true
	}
	bounds := t.Schedule.PlaceBounds()
	for _, ch := range opt.Sys.Channels {
		if opt.SharedChannels[ch.Place.ID] {
			continue
		}
		all := true
		used := false
		for _, tr := range t.Net.Transitions {
			w := tr.Weight(ch.Place.ID)
			ow := tr.OutWeight(ch.Place.ID)
			if w == 0 && ow == 0 {
				continue
			}
			if w == ow {
				continue // SELECT availability self-loop
			}
			used = true
			if !involved[tr.ID] {
				all = false
			}
		}
		if used && all {
			sz := bounds[ch.Place.ID]
			if sz < 1 {
				sz = 1
			}
			out[ch.Place.ID] = sz
		}
	}
	return out
}

// Synthesize renders the task as C source.
func Synthesize(t *Task, opt *SynthOptions) string {
	var sb strings.Builder
	em := &emitter{task: t, opt: opt, out: &sb}
	if opt != nil {
		em.intra = t.IntraChannels(opt)
	}
	em.emitHeader()
	em.emitInit()
	em.emitISR()
	return sb.String()
}

type emitter struct {
	task  *Task
	opt   *SynthOptions
	out   *strings.Builder
	intra map[int]int // channel place -> buffer size
	depth int
}

func (em *emitter) p(format string, args ...any) {
	for i := 0; i < em.depth; i++ {
		em.out.WriteString("  ")
	}
	fmt.Fprintf(em.out, format, args...)
	em.out.WriteByte('\n')
}

func (em *emitter) sysName() string {
	if em.opt != nil && em.opt.Sys != nil {
		return em.opt.Sys.Name
	}
	return em.task.Net.Name
}

func (em *emitter) emitHeader() {
	em.p("/* Task %s: quasi-statically scheduled for source %s. */",
		em.task.Name, em.task.Net.Transitions[em.task.Source].Name)
	em.p("#include \"%s.data.h\"", em.sysName())
	em.p("")
	for _, pid := range em.task.StateVars {
		em.p("int %s;", em.stateVarName(pid))
	}
	// Intra-task channel buffers (size-1 buffers become plain variables).
	for _, pid := range sortedIntKeys(em.intra) {
		sz := em.intra[pid]
		name := em.bufName(pid)
		if sz == 1 {
			em.p("int %s;", name)
		} else {
			em.p("int %s[%d]; int %s_r, %s_w;", name, sz, name, name)
		}
	}
	// Process variables become globals with uniquified names.
	if em.opt != nil && em.opt.Sys != nil {
		for _, cp := range em.opt.Sys.Procs {
			for _, v := range cp.InitVars {
				if v.ArraySize > 0 {
					em.p("int %s_%s[%d];", cp.Proc.Name, v.Name, v.ArraySize)
				} else {
					em.p("int %s_%s;", cp.Proc.Name, v.Name)
				}
			}
		}
	}
	em.p("")
}

func (em *emitter) stateVarName(pid int) string {
	return sanitizeLabel(em.task.Net.Places[pid].Name)
}

func (em *emitter) bufName(pid int) string {
	return "BUF_" + sanitizeLabel(em.task.Net.Places[pid].Name)
}

func (em *emitter) emitInit() {
	em.p("void %s_init(void)", em.task.Name)
	em.p("{")
	em.depth++
	m0 := em.task.Net.InitialMarking()
	for _, pid := range em.task.StateVars {
		em.p("%s = %d;", em.stateVarName(pid), m0[pid])
	}
	for _, pid := range sortedIntKeys(em.intra) {
		name := em.bufName(pid)
		if em.intra[pid] == 1 {
			em.p("%s = 0;", name)
		} else {
			em.p("%s_r = 0; %s_w = 0;", name, name)
		}
	}
	// Startup initializers of the top-level declaration prefix, then the
	// port-free initialization statements.
	if em.opt != nil && em.opt.Sys != nil {
		for _, cp := range em.opt.Sys.Procs {
			for _, v := range cp.InitVars {
				if v.Init != nil {
					em.p("%s_%s = %s;", cp.Proc.Name, v.Name, em.exprC(v.Init, cp.Proc.Name))
				}
			}
			for _, st := range cp.InitStmts {
				em.emitStmt(st, cp.Proc.Name)
			}
		}
	}
	em.depth--
	em.p("}")
	em.p("")
}

func (em *emitter) emitISR() {
	em.p("void %s_ISR(void)", em.task.Name)
	em.p("{")
	em.depth++
	for _, seg := range em.task.Segments {
		em.p("%s:", seg.Label)
		em.emitSegNode(seg.Root)
	}
	em.depth--
	em.p("}")
}

func (em *emitter) emitSegNode(n *SegNode) {
	if len(n.Edges) == 1 {
		e := n.Edges[0]
		em.emitTransition(e.Trans)
		if e.Child != nil {
			em.emitSegNode(e.Child)
		} else {
			em.emitLeaf(e.Leaf)
		}
		return
	}
	// Data-dependent choice: a two-way ECS with T/F labels, or a choice
	// over a hand net without conditions.
	cond := em.choiceCond(n)
	for i, e := range n.Edges {
		t := em.task.Net.Transitions[e.Trans]
		switch {
		case i == 0:
			em.p("if (%s) {", em.branchCond(cond, t, true))
		case i == len(n.Edges)-1:
			em.p("} else {")
		default:
			em.p("} else if (%s) {", em.branchCond(cond, t, false))
		}
		em.depth++
		em.emitTransition(e.Trans)
		if e.Child != nil {
			em.emitSegNode(e.Child)
		} else {
			em.emitLeaf(e.Leaf)
		}
		em.depth--
	}
	em.p("}")
}

// choiceCond finds the data condition of the ECS's choice place, if any.
func (em *emitter) choiceCond(n *SegNode) string {
	t0 := em.task.Net.Transitions[n.ECS.Trans[0]]
	for _, a := range t0.In {
		p := em.task.Net.Places[a.Place]
		if ci, ok := p.Cond.(*compile.ChoiceInfo); ok && ci.Kind == compile.ChoiceData {
			return em.exprC(ci.Cond, t0.Process)
		}
	}
	// Hand-built net: Figure 16 style.
	for _, a := range t0.In {
		if len(em.task.Net.Successors(a.Place)) > 1 {
			return fmt.Sprintf("condition(%s)", em.task.Net.Places[a.Place].Name)
		}
	}
	return "condition()"
}

// branchCond orients the condition by the transition's T/F label.
func (em *emitter) branchCond(cond string, t *petri.Transition, first bool) string {
	switch t.Label {
	case "T":
		return cond
	case "F":
		return fmt.Sprintf("!(%s)", cond)
	}
	if first {
		return fmt.Sprintf("%s == TRUE", cond)
	}
	return fmt.Sprintf("%s == FALSE", cond)
}

// emitTransition pastes the code fragment of a transition (or a function
// call for fragment-less nets).
func (em *emitter) emitTransition(tid int) {
	t := em.task.Net.Transitions[tid]
	frag, ok := t.Code.(*compile.Fragment)
	if !ok {
		if t.Kind == petri.TransSink {
			em.p("/* deliver %s to the environment */", t.Name)
			return
		}
		em.p("%s();", sanitizeLabel(t.Name))
		return
	}
	if frag.IsSilent() {
		return
	}
	for _, s := range frag.Stmts {
		em.emitStmt(s, frag.Process)
	}
}

func (em *emitter) emitStmt(s flowc.Stmt, proc string) {
	switch x := s.(type) {
	case *flowc.Read:
		em.emitRead(x, proc)
	case *flowc.Write:
		em.emitWrite(x, proc)
	default:
		text := flowc.FormatStmt(renameStmt(s, prefixer(proc)), 0)
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			em.p("%s", strings.TrimRight(line, " "))
		}
	}
}

// channelPlace resolves the channel place a process port is bound to, or
// -1 for environment ports.
func (em *emitter) channelPlace(proc, port string) int {
	if em.opt == nil || em.opt.Sys == nil {
		return -1
	}
	b := em.opt.Sys.PortBinding(proc, port)
	if b != nil && b.Kind == link.BindChannel {
		return b.Channel.Place.ID
	}
	return -1
}

func (em *emitter) emitRead(r *flowc.Read, proc string) {
	dest := em.exprC(r.Dest, proc)
	pid := em.channelPlace(proc, r.Port)
	if pid < 0 {
		// Environment port: keep the communication primitive.
		em.p("READ_DATA(%s, &%s, %d);", r.Port, dest, r.NItems)
		return
	}
	sz, intra := em.intra[pid]
	if !intra {
		em.p("READ_DATA(%s, &%s, %d);", em.task.Net.Places[pid].Name, dest, r.NItems)
		return
	}
	name := em.bufName(pid)
	if sz == 1 {
		em.p("%s = %s;", dest, name)
		return
	}
	em.p("{ int k_; for (k_ = 0; k_ < %d; k_++) { %s[k_] = %s[%s_r]; %s_r = (%s_r + 1) %% %d; } }",
		r.NItems, dest, name, name, name, name, sz)
}

func (em *emitter) emitWrite(w *flowc.Write, proc string) {
	src := em.exprC(w.Src, proc)
	pid := em.channelPlace(proc, w.Port)
	if pid < 0 {
		em.p("WRITE_DATA(%s, %s, %d);", w.Port, src, w.NItems)
		return
	}
	sz, intra := em.intra[pid]
	if !intra {
		em.p("WRITE_DATA(%s, %s, %d);", em.task.Net.Places[pid].Name, src, w.NItems)
		return
	}
	name := em.bufName(pid)
	if sz == 1 {
		em.p("%s = %s;", name, src)
		return
	}
	em.p("{ int k_; for (k_ = 0; k_ < %d; k_++) { %s[%s_w] = %s[k_]; %s_w = (%s_w + 1) %% %d; } }",
		w.NItems, name, name, src, name, name, sz)
}

// emitLeaf writes the update and jump sections of a code segment leaf.
func (em *emitter) emitLeaf(l *Leaf) {
	// Update section.
	for _, pid := range sortedIntKeys(l.Update) {
		d := l.Update[pid]
		name := em.stateVarName(pid)
		if d > 0 {
			em.p("%s = %s + %d;", name, name, d)
		} else {
			em.p("%s = %s - %d;", name, name, -d)
		}
	}
	// Jump section.
	targets := map[int]bool{}
	for _, st := range l.States {
		targets[st.NextECS] = true
	}
	if len(targets) == 1 {
		em.emitJump(l.States[0].NextECS)
		return
	}
	// Switch on the state variables (emitted as an if/else chain, as in
	// Figure 16).
	groups := map[int][]LeafState{}
	for _, st := range l.States {
		groups[st.NextECS] = append(groups[st.NextECS], st)
	}
	keys := sortedBoolKeys(targets)
	for i, next := range keys {
		cond := em.stateCond(groups[next])
		if i == len(keys)-1 {
			em.p("else {")
		} else if i == 0 {
			em.p("if (%s) {", cond)
		} else {
			em.p("else if (%s) {", cond)
		}
		em.depth++
		em.emitJump(next)
		em.depth--
		em.p("}")
	}
}

// stateCond renders a condition over state variables matching any of the
// given states.
func (em *emitter) stateCond(states []LeafState) string {
	var alts []string
	for _, st := range states {
		var conj []string
		for _, pid := range em.task.StateVars {
			conj = append(conj, fmt.Sprintf("%s == %d", em.stateVarName(pid), st.Marking[pid]))
		}
		if len(conj) == 0 {
			conj = []string{"1"}
		}
		alts = append(alts, strings.Join(conj, " && "))
	}
	if len(alts) == 1 {
		return alts[0]
	}
	return "(" + strings.Join(alts, ") || (") + ")"
}

func (em *emitter) emitJump(nextECS int) {
	if nextECS < 0 {
		em.p("return;")
		return
	}
	seg := em.task.SegByECS[nextECS]
	if seg == nil {
		em.p("/* internal error: no segment for ECS %d */", nextECS)
		return
	}
	em.p("goto %s;", seg.Label)
}

// exprC renders an expression with process-prefixed variable names.
func (em *emitter) exprC(e flowc.Expr, proc string) string {
	return flowc.FormatExpr(renameExpr(e, prefixer(proc)))
}

func prefixer(proc string) func(string) string {
	return func(name string) string {
		if proc == "" {
			return name
		}
		return proc + "_" + name
	}
}

// renameExpr returns a copy of the expression with identifiers renamed.
func renameExpr(e flowc.Expr, f func(string) string) flowc.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *flowc.Ident:
		return &flowc.Ident{Name: f(x.Name), Pos: x.Pos}
	case *flowc.IntLit:
		return x
	case *flowc.Binary:
		return &flowc.Binary{Op: x.Op, L: renameExpr(x.L, f), R: renameExpr(x.R, f), Pos: x.Pos}
	case *flowc.Unary:
		return &flowc.Unary{Op: x.Op, X: renameExpr(x.X, f), Pos: x.Pos}
	case *flowc.Assign:
		return &flowc.Assign{Op: x.Op, LHS: renameExpr(x.LHS, f), RHS: renameExpr(x.RHS, f), Pos: x.Pos}
	case *flowc.IncDec:
		return &flowc.IncDec{Op: x.Op, X: renameExpr(x.X, f), Post: x.Post, Pos: x.Pos}
	case *flowc.Index:
		return &flowc.Index{Arr: renameExpr(x.Arr, f), Idx: renameExpr(x.Idx, f), Pos: x.Pos}
	}
	return e
}

// renameStmt returns a copy of the statement with identifiers renamed.
// Port names in Read/Write/Select are left untouched.
func renameStmt(s flowc.Stmt, f func(string) string) flowc.Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *flowc.DeclStmt:
		vars := make([]flowc.VarDecl, len(x.Vars))
		for i, v := range x.Vars {
			vars[i] = flowc.VarDecl{Name: f(v.Name), ArraySize: v.ArraySize, Init: renameExpr(v.Init, f), Pos: v.Pos}
		}
		return &flowc.DeclStmt{Vars: vars, Pos: x.Pos}
	case *flowc.ExprStmt:
		return &flowc.ExprStmt{X: renameExpr(x.X, f), Pos: x.Pos}
	case *flowc.Block:
		stmts := make([]flowc.Stmt, len(x.Stmts))
		for i, st := range x.Stmts {
			stmts[i] = renameStmt(st, f)
		}
		return &flowc.Block{Stmts: stmts, Pos: x.Pos}
	case *flowc.If:
		return &flowc.If{Cond: renameExpr(x.Cond, f), Then: renameStmt(x.Then, f), Else: renameStmt(x.Else, f), Pos: x.Pos}
	case *flowc.While:
		return &flowc.While{Cond: renameExpr(x.Cond, f), Body: renameStmt(x.Body, f), Pos: x.Pos}
	case *flowc.For:
		return &flowc.For{Init: renameStmt(x.Init, f), Cond: renameExpr(x.Cond, f), Post: renameExpr(x.Post, f), Body: renameStmt(x.Body, f), Pos: x.Pos}
	case *flowc.Read:
		return &flowc.Read{Port: x.Port, Dest: renameExpr(x.Dest, f), NItems: x.NItems, Pos: x.Pos}
	case *flowc.Write:
		return &flowc.Write{Port: x.Port, Src: renameExpr(x.Src, f), NItems: x.NItems, Pos: x.Pos}
	case *flowc.Select:
		arms := make([]flowc.SelectArm, len(x.Arms))
		for i, a := range x.Arms {
			body := make([]flowc.Stmt, len(a.Body))
			for j, st := range a.Body {
				body[j] = renameStmt(st, f)
			}
			arms[i] = flowc.SelectArm{Port: a.Port, NItems: a.NItems, Body: body, Pos: a.Pos}
		}
		return &flowc.Select{Arms: arms, Pos: x.Pos}
	}
	return s
}
