// Package core is the end-to-end facade of the synthesis flow: FlowC
// sources + netlist → compiled Petri nets → linked system net →
// quasi-static schedules (one per uncontrollable input) → software tasks
// with generated C code and statically guaranteed channel bounds.
package core

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
	"repro/internal/petri"
	"repro/internal/sched"
)

// Options configures the pipeline.
type Options struct {
	// Sched configures the schedule search (termination condition,
	// heuristics); nil uses the paper's defaults (irrelevance criterion
	// + T-invariant ordering).
	Sched *sched.Options
	// SkipIndependence disables the independence verification of the
	// schedule set (Prop. 4.3 makes it redundant for FlowC-derived
	// UCPNs, but SELECT voids the guarantee, so the default is to check).
	SkipIndependence bool
}

// Result is the outcome of the full flow.
type Result struct {
	File      *flowc.File
	Procs     []*compile.CompiledProcess
	Sys       *link.System
	Schedules []*sched.Schedule
	Tasks     []*codegen.Task
	// Code maps task names to generated C source.
	Code map[string]string
	// Bounds are the per-place token bounds over all schedules; for
	// channel places this is the statically guaranteed buffer size.
	Bounds []int
	// SharedChannels lists channel place IDs used by more than one task.
	SharedChannels map[int]bool
}

// TaskByName returns a generated task, or nil.
func (r *Result) TaskByName(name string) *codegen.Task {
	for _, t := range r.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ChannelBound returns the statically guaranteed buffer size of a
// channel, by name.
func (r *Result) ChannelBound(name string) int {
	for _, ch := range r.Sys.Channels {
		if ch.Spec.Name == name {
			return r.Bounds[ch.Place.ID]
		}
	}
	return -1
}

// Synthesize runs the full flow on FlowC source text and a netlist in
// the textual system format.
func Synthesize(flowcSrc, specSrc string, opt *Options) (*Result, error) {
	f, err := flowc.ParseFile(flowcSrc)
	if err != nil {
		return nil, fmt.Errorf("core: parse FlowC: %w", err)
	}
	spec, err := link.ParseSpec(strings.NewReader(specSrc))
	if err != nil {
		return nil, fmt.Errorf("core: parse netlist: %w", err)
	}
	return SynthesizeSystem(f, spec, opt)
}

// SynthesizeSystem runs the flow on parsed inputs.
func SynthesizeSystem(f *flowc.File, spec *link.Spec, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	if err := flowc.CheckFile(f); err != nil {
		return nil, fmt.Errorf("core: check: %w", err)
	}
	res := &Result{File: f, Code: map[string]string{}}
	for _, p := range f.Processes {
		cp, err := compile.CompileProcess(p)
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		res.Procs = append(res.Procs, cp)
	}
	sys, err := link.Link(res.Procs, spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Sys = sys

	sources := sys.Net.UncontrollableSources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: system %s has no uncontrollable inputs; nothing triggers a task", spec.Name)
	}
	for _, src := range sources {
		s, err := sched.FindSchedule(sys.Net, src, opt.Sched)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.Schedules = append(res.Schedules, s)
	}
	if !opt.SkipIndependence {
		if err := sched.CheckIndependence(res.Schedules); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	res.Bounds = sched.CombinedPlaceBounds(res.Schedules)
	res.SharedChannels = sharedChannels(sys, res.Schedules)

	for _, s := range res.Schedules {
		name := "task_" + sys.Net.Transitions[s.Source].Name
		task, err := codegen.Generate(s, name)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.Tasks = append(res.Tasks, task)
		res.Code[name] = codegen.Synthesize(task, &codegen.SynthOptions{
			Sys:            sys,
			SharedChannels: res.SharedChannels,
		})
	}
	return res, nil
}

// sharedChannels finds channel places touched (with token flow) by more
// than one schedule; those must remain real inter-task channels.
func sharedChannels(sys *link.System, set []*sched.Schedule) map[int]bool {
	out := map[int]bool{}
	if len(set) < 2 {
		return out
	}
	users := map[int]int{}
	for _, s := range set {
		seen := map[int]bool{}
		for _, tid := range s.InvolvedTransitions() {
			t := sys.Net.Transitions[tid]
			touch := func(pid int) {
				if sys.Net.Places[pid].Kind == petri.PlaceChannel && !seen[pid] {
					seen[pid] = true
					users[pid]++
				}
			}
			for _, a := range t.In {
				if t.OutWeight(a.Place) != a.Weight {
					touch(a.Place)
				}
			}
			for _, a := range t.Out {
				if t.Weight(a.Place) != a.Weight {
					touch(a.Place)
				}
			}
		}
	}
	for p, n := range users {
		if n > 1 {
			out[p] = true
		}
	}
	return out
}
