package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{2, -4, 6}
	if v.IsZero() {
		t.Error("non-zero vector reported zero")
	}
	if !(Vector{0, 0}).IsZero() {
		t.Error("zero vector not reported zero")
	}
	if got := v.Add(Vector{1, 1, 1}); got[0] != 3 || got[1] != -3 || got[2] != 7 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Scale(2); got[2] != 12 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vector{1, 0, 1}); got != 8 {
		t.Errorf("Dot = %d, want 8", got)
	}
	if got := v.Clone().Normalize(); got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("Normalize = %v", got)
	}
	if got := v.Support(); len(got) != 3 {
		t.Errorf("Support = %v", got)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 18, 6}, {-12, 18, 6}, {0, 5, 5}, {7, 0, 7}, {1, 1, 1}, {0, 0, 0}}
	for _, c := range cases {
		if got := GCD(c[0], c[1]); got != c[2] {
			t.Errorf("GCD(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// fig8Incidence is the incidence matrix of the Figure 8 net:
// places p1,p2,p3; transitions a,b,c,d,e.
func fig8Incidence() [][]int {
	return [][]int{
		// a   b   c   d   e
		{1, -1, -1, 0, 1}, // p1
		{0, 1, 0, -1, 0},  // p2
		{0, 0, 1, 0, -2},  // p3
	}
}

func TestTInvariantBasisFig8(t *testing.T) {
	c := fig8Incidence()
	basis := TInvariantBasis(c)
	if len(basis) == 0 {
		t.Fatal("no invariants found")
	}
	for _, b := range basis {
		if !MulMatVec(c, b).IsZero() {
			t.Errorf("C·%v != 0", b)
		}
		nonneg := true
		for _, x := range b {
			if x < 0 {
				nonneg = false
			}
		}
		if !nonneg {
			t.Errorf("invariant %v has negative entries", b)
		}
	}
	// The cycle a,b,d must be generated (a=1,b=1,d=1), and the cycle
	// a,c,c,e (a=1, c=2, e=1 — e returns one token to p1).
	foundABD, foundACE := false, false
	for _, b := range basis {
		if b[0] == 1 && b[1] == 1 && b[3] == 1 && b[2] == 0 && b[4] == 0 {
			foundABD = true
		}
		if b[0] == 1 && b[2] == 2 && b[4] == 1 && b[1] == 0 && b[3] == 0 {
			foundACE = true
		}
	}
	if !foundABD || !foundACE {
		t.Errorf("expected minimal invariants missing from basis %v", basis)
	}
}

func TestTInvariantBasisNoInvariant(t *testing.T) {
	// A pure producer: t adds a token to p, never removed. No invariant.
	c := [][]int{{1}}
	if basis := TInvariantBasis(c); len(basis) != 0 {
		t.Errorf("expected empty basis, got %v", basis)
	}
}

func TestTInvariantBasisEmpty(t *testing.T) {
	if basis := TInvariantBasis(nil); basis != nil {
		t.Errorf("nil matrix should give nil basis, got %v", basis)
	}
}

// TestTInvariantProperty: on random small incidence matrices, every
// returned vector is a non-negative non-zero solution of C·x = 0.
func TestTInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		places := 1 + rng.Intn(4)
		trans := 1 + rng.Intn(5)
		c := make([][]int, places)
		for i := range c {
			c[i] = make([]int, trans)
			for j := range c[i] {
				c[i][j] = rng.Intn(5) - 2
			}
		}
		for _, b := range TInvariantBasis(c) {
			if b.IsZero() || !MulMatVec(c, b).IsZero() {
				return false
			}
			for _, x := range b {
				if x < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBinateCoverSimple(t *testing.T) {
	// Row: selecting column 0 requires selecting column 1.
	rows := []BinateRow{{Neg: []int{0}, Pos: []int{1}}}
	sel, ok := BinateCover(2, rows, []int{0})
	if !ok {
		t.Fatal("cover should exist")
	}
	has := map[int]bool{}
	for _, c := range sel {
		has[c] = true
	}
	if !has[0] || !has[1] {
		t.Errorf("cover = %v, want both columns", sel)
	}
}

func TestBinateCoverConflict(t *testing.T) {
	// Column 0 requires column 1; column 1 requires column 0 being
	// absent — impossible with seed {0,1}? Construct: selecting 1 is
	// forbidden outright (Neg only, no Pos).
	rows := []BinateRow{
		{Neg: []int{0}, Pos: []int{1}},
		{Neg: []int{1}, Pos: nil},
	}
	sel, ok := BinateCover(2, rows, []int{0})
	// The only feasible solutions drop both columns; the solver may
	// return the empty set after banning the offenders.
	if ok {
		for _, c := range sel {
			if c == 1 {
				t.Errorf("solution %v selects forbidden column 1", sel)
			}
			if c == 0 {
				t.Errorf("solution %v selects column 0 whose requirement is unsatisfiable", sel)
			}
		}
	}
}

func TestBinateCoverNoRows(t *testing.T) {
	sel, ok := BinateCover(3, nil, []int{2})
	if !ok || len(sel) != 1 || sel[0] != 2 {
		t.Errorf("trivial cover = %v %v", sel, ok)
	}
}

// TestBinateCoverProperty: returned solutions always satisfy every row.
func TestBinateCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 2 + rng.Intn(5)
		var rows []BinateRow
		for i := 0; i < rng.Intn(6); i++ {
			var r BinateRow
			r.Neg = append(r.Neg, rng.Intn(cols))
			for j := 0; j < rng.Intn(3); j++ {
				r.Pos = append(r.Pos, rng.Intn(cols))
			}
			rows = append(rows, r)
		}
		seed0 := []int{rng.Intn(cols)}
		sel, ok := BinateCover(cols, rows, seed0)
		if !ok {
			return true // failure is allowed; feasibility isn't guaranteed
		}
		has := map[int]bool{}
		for _, c := range sel {
			has[c] = true
		}
		for _, r := range rows {
			neg := false
			for _, c := range r.Neg {
				if has[c] {
					neg = true
				}
			}
			if !neg {
				continue
			}
			pos := false
			for _, c := range r.Pos {
				if has[c] {
					pos = true
				}
			}
			if !pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
