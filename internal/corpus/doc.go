// Package corpus deterministically generates randomized-but-valid FlowC
// process networks, each paired with an auto-derived link spec, for
// fuzzing, property testing and throughput benchmarking of the
// synthesis flow far beyond the four hand-written seed applications.
//
// # Validity by construction
//
// The compiler abstracts data: a non-constant loop or branch becomes a
// free data-dependent choice in the Petri net, so its iteration count
// is unknown to the scheduler. A generated network is therefore kept
// quasi-statically schedulable by composing only patterns whose channel
// token counts are structurally fixed:
//
//   - inter-process channels carry straight-line bursts — K unrolled
//     WRITE_DATA operations of width W per activation, matched by K
//     unrolled READ_DATA operations of the same width downstream
//     (multi-rate when W > 1, Section 3 of the paper);
//   - data-dependent loops and branches either stay port-free (pure
//     compute, invisible to the net) or write exclusively to
//     environment outputs, which the scheduler drains via controllable
//     sink transitions (the Figure 1 divisors pattern);
//   - data-dependent burst lengths across a channel use the Section 7.2
//     SELECT-drain idiom: a producer emits a variable pixel burst plus
//     an end-of-line marker, the consumer drains with SELECT, and an
//     acknowledgement keeps one burst in flight.
//
// # Topology and knobs
//
// An app is a set of independent pipelines, each triggered by its own
// uncontrollable environment input (so synthesis produces one task per
// pipeline and the per-source searches parallelize). A pipeline is
// either a fan-out tree of fixed-rate stages or a SELECT-drain pair.
// Config controls the shape distribution:
//
//   - MinPipelines/MaxPipelines — independent pipelines (= tasks) per app;
//   - MinStages/MaxStages — processes per tree pipeline;
//   - MaxFanOut — downstream consumers per stage;
//   - MaxOps — unrolled channel operations per edge (burst length);
//   - MaxWidth — items per single READ_DATA/WRITE_DATA (multi-rate);
//
// Whatever MaxOps and MaxWidth request, the tokens crossing one tree
// edge per activation (ops x width) are clamped to maxEdgeTokens,
// currently 8: the schedule search explores the product of channel
// fills across the tree, so the per-edge burst is the knob that decides
// tractability. The cap was 4 under the string-keyed search engines;
// the hash-consed marking store (petri.MarkingStore) visits states
// roughly 5x faster and ~250x leaner, which is what funds the deeper
// burst shapes within the same node budget — and the Definition 4.1
// property sweep (corpus_test.go) is pinned at these shapes.
//   - ChoiceDensity — probability that a stage gains a data-dependent
//     tap block (an if- or while-guarded write to an environment output);
//   - SelectDensity — probability that a pipeline is a SELECT-drain pair
//     instead of a fixed-rate tree;
//   - BoundDensity — probability that a tree channel declares an
//     explicit bound=N, exercising complement places and blocking
//     writes at link time.
//
// All randomness comes from the *rand.Rand passed in (no global state):
// the same seed and Config always produce byte-identical FlowC and spec
// text, and — synthesis being deterministic — identical schedules.
//
// Every App records its expected behaviour: Triggers lists the
// uncontrollable inputs to feed, and DetOutputs maps each
// deterministic environment output to its item count per trigger, so a
// simulation run can verify end-to-end delivery and channel bounds.
package corpus
