package dist

import "repro/internal/petri"

// Boundary-parent vector cache for trimmed-replica sessions.
//
// A trimmed worker cannot re-fire a delta whose parent lives in another
// worker's shards, so the coordinator attaches the parent's token
// vector to such records — but a hot boundary parent often parents
// several children owned by the same worker within one level, and
// shipping its vector once is enough. Coordinator and worker therefore
// run the SAME bounded LRU over the SAME record sequence: the
// coordinator's instance (values unused) predicts exactly which parent
// vectors the worker still holds and omits those from the wire; the
// worker's instance stores the vectors it was shipped. Because both
// sides apply identical operations in identical order — insert on
// shipped vector, recency bump on omitted one, owned parents never
// touch the cache — eviction is lockstep and an omitted vector is
// always present on the worker. Capacity bounds worker memory at
// vecCacheCap vectors regardless of exploration size.

// vecCacheCap is the shared capacity; both sides must agree or the
// lockstep-eviction argument above breaks. It is a var only so tests
// can shrink it to force evictions cheaply.
var vecCacheCap = 1024

// vecCache is a doubly-linked LRU keyed by global MarkID.
type vecCache struct {
	cap     int
	entries map[petri.MarkID]*vecEntry
	head    *vecEntry // most recently used
	tail    *vecEntry // least recently used
}

type vecEntry struct {
	id         petri.MarkID
	vec        petri.Marking
	prev, next *vecEntry
}

func newVecCache() *vecCache {
	return &vecCache{cap: vecCacheCap, entries: make(map[petri.MarkID]*vecEntry)}
}

func (c *vecCache) len() int { return len(c.entries) }

// bytes reports the cached vector payload (worker-side memory
// accounting; the coordinator's instance stores no vectors).
func (c *vecCache) bytes() int {
	n := 0
	for _, e := range c.entries {
		n += len(e.vec) * 8
	}
	return n
}

func (c *vecCache) unlink(e *vecEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *vecCache) pushFront(e *vecEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// hit is the coordinator-side operation, applied once per boundary
// record in record order: a present id is bumped to most-recent and the
// vector is omitted from the wire; an absent one is inserted (evicting
// the least-recent entry at capacity) and the vector is shipped.
func (c *vecCache) hit(id petri.MarkID) bool {
	if e, ok := c.entries[id]; ok {
		c.unlink(e)
		c.pushFront(e)
		return true
	}
	c.insert(id, nil)
	return false
}

// insert is the worker-side operation for a record that arrived with a
// vector (and the insertion half of the coordinator's hit): store it as
// most-recent, evicting at capacity.
func (c *vecCache) insert(id petri.MarkID, vec petri.Marking) {
	if e, ok := c.entries[id]; ok {
		// A re-shipped vector (evicted coordinator-side but somehow
		// still held here) cannot happen in lockstep, but stay sane.
		e.vec = vec
		c.unlink(e)
		c.pushFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.id)
	}
	e := &vecEntry{id: id, vec: vec}
	c.entries[id] = e
	c.pushFront(e)
}

// get is the worker-side operation for a record that arrived without a
// vector for a parent this worker does not own: the lockstep argument
// guarantees presence, so a miss is a protocol error the caller turns
// into a session failure. The hit is bumped to most-recent, mirroring
// the coordinator's hit().
func (c *vecCache) get(id petri.MarkID) (petri.Marking, bool) {
	e, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.vec, true
}
