package petri

import (
	"strings"
	"testing"
)

// equalChoiceNet: place c feeds t1 and t2 with the same weight (equal
// choice); place u feeds r1 and r2 which also consume distinct internal
// places of one process (unique choice).
func choiceNet(t *testing.T) *Net {
	t.Helper()
	n := New("choice")
	c := n.AddPlace("c", PlaceInternal, 1)
	u := n.AddPlace("u", PlacePort, 1)
	pc1 := n.AddPlace("pc1", PlaceInternal, 1)
	pc2 := n.AddPlace("pc2", PlaceInternal, 0)
	pc1.Process, pc2.Process = "P", "P"
	t1 := n.AddTransition("t1", TransNormal)
	t2 := n.AddTransition("t2", TransNormal)
	n.AddArc(c, t1, 1)
	n.AddArc(c, t2, 1)
	r1 := n.AddTransition("r1", TransNormal)
	r2 := n.AddTransition("r2", TransNormal)
	n.AddArc(u, r1, 1)
	n.AddArc(pc1, r1, 1)
	n.AddArc(u, r2, 1)
	n.AddArc(pc2, r2, 1)
	return n
}

func TestECSPartition(t *testing.T) {
	n := choiceNet(t)
	part := n.ECSPartition()
	// {t1,t2} is one ECS; r1 and r2 have distinct presets; 3 classes.
	if len(part) != 3 {
		t.Fatalf("ECS classes = %d, want 3", len(part))
	}
	idx := ECSIndex(part, len(n.Transitions))
	if idx[0] != idx[1] {
		t.Error("t1 and t2 should share an ECS")
	}
	if idx[2] == idx[3] {
		t.Error("r1 and r2 should not share an ECS")
	}
}

func TestECSEnabledTogether(t *testing.T) {
	n := choiceNet(t)
	part := n.ECSPartition()
	m := n.InitialMarking()
	for _, e := range part {
		if e.Enabled(n, m) {
			for _, tid := range e.Trans {
				if !m.Enabled(n.Transitions[tid]) {
					t.Errorf("ECS enabled but member %s is not", n.Transitions[tid].Name)
				}
			}
		}
	}
}

func TestSourceECSSingleton(t *testing.T) {
	n := New("src")
	n.AddPlace("p", PlaceChannel, 0)
	a := n.AddTransition("a", TransSourceUnc)
	b := n.AddTransition("b", TransSourceCtl)
	n.AddArcTP(a, n.Places[0], 1)
	n.AddArcTP(b, n.Places[0], 1)
	part := n.ECSPartition()
	// Two source transitions with identical (empty) presets must stay
	// in separate singleton ECSs.
	if len(part) != 2 {
		t.Fatalf("source ECSs = %d, want 2", len(part))
	}
	for _, e := range part {
		if !e.IsSourceECS(n) {
			t.Error("expected source ECS")
		}
	}
	if !part[0].IsUncontrollable(n) && !part[1].IsUncontrollable(n) {
		t.Error("one ECS should be uncontrollable")
	}
}

func TestClassifyChoice(t *testing.T) {
	n := choiceNet(t)
	if got := n.ClassifyChoice(n.Places[0]); got != ChoiceEqual {
		t.Errorf("c classified %v, want equal", got)
	}
	if got := n.ClassifyChoice(n.Places[1]); got != ChoiceUnique {
		t.Errorf("u classified %v, want unique", got)
	}
	if got := n.ClassifyChoice(n.Places[2]); got != ChoiceNone {
		t.Errorf("pc1 classified %v, want none", got)
	}
	if !n.IsUniqueChoice() {
		t.Error("net should be UCPN")
	}
}

func TestClassifyChoiceOther(t *testing.T) {
	// Two successors with different presets not separated by internal
	// places of one process: ChoiceOther (the SELECT situation).
	n := New("other")
	p := n.AddPlace("p", PlaceChannel, 0)
	q := n.AddPlace("q", PlaceChannel, 0)
	t1 := n.AddTransition("t1", TransNormal)
	t2 := n.AddTransition("t2", TransNormal)
	n.AddArc(p, t1, 1)
	n.AddArc(p, t2, 1)
	n.AddArc(q, t2, 1)
	if got := n.ClassifyChoice(p); got != ChoiceOther {
		t.Errorf("classified %v, want other", got)
	}
	if n.IsUniqueChoice() {
		t.Error("net should not be UCPN")
	}
}

func TestIncidenceMatrix(t *testing.T) {
	n := simpleNet(t)
	c := n.IncidenceMatrix()
	// a: +2 on p1; b: +1 on p0, -2 on p1, -1 on p0 consumed -> net 0 on p0.
	if c[1][0] != 2 {
		t.Errorf("C[p1][a] = %d, want 2", c[1][0])
	}
	if c[0][1] != 0 {
		t.Errorf("C[p0][b] = %d, want 0 (consume 1, produce 1)", c[0][1])
	}
	if c[1][1] != -2 {
		t.Errorf("C[p1][b] = %d, want -2", c[1][1])
	}
}

func TestBackwardReachableTransitions(t *testing.T) {
	n := simpleNet(t)
	b := n.TransitionByName("b")
	got := n.BackwardReachableTransitions([]int{b.ID})
	// a produces into p1 which b consumes; b produces into p0 which b
	// consumes (cycle) — both transitions reachable.
	if !got[0] || !got[1] {
		t.Errorf("backward reachable = %v, want both", got)
	}
}

func TestUncontrollableSources(t *testing.T) {
	n := simpleNet(t)
	got := n.UncontrollableSources()
	if len(got) != 1 || n.Transitions[got[0]].Name != "a" {
		t.Errorf("UncontrollableSources = %v", got)
	}
}

func TestChoiceClassString(t *testing.T) {
	for _, c := range []ChoiceClass{ChoiceNone, ChoiceEqual, ChoiceUnique, ChoiceOther} {
		if strings.Contains(c.String(), "ChoiceClass(") {
			t.Errorf("missing String for %d", int(c))
		}
	}
}
