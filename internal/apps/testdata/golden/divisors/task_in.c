/* Task task_in: quasi-statically scheduled for source in. */
#include "divisors.data.h"

int divisors_p2;
int divisors_n;
int divisors_i;

void task_in_init(void)
{
  divisors_p2 = 0;
}

void task_in_ISR(void)
{
  in:
  in();
  READ_DATA(in, &divisors_n, 1);
  divisors_i = (divisors_n / 2);
  while (((divisors_n % divisors_i) != 0))
    divisors_i--;
  WRITE_DATA(max, divisors_i, 1);
  /* deliver max to the environment */
  WRITE_DATA(all, divisors_i, 1);
  divisors_p2 = divisors_p2 + 1;
  goto all;
  divisors_t5:
  goto divisors_t7;
  divisors_t7:
  divisors_p2 = divisors_p2 + 1;
  goto divisors_t2divisors_t8;
  divisors_t2divisors_t8:
  if ((divisors_i > 1)) {
    divisors_i--;
    if (((divisors_n % divisors_i) == 0)) {
      WRITE_DATA(all, divisors_i, 1);
      divisors_p2 = divisors_p2 - 1;
      goto all;
    } else {
      divisors_p2 = divisors_p2 - 1;
      goto divisors_t7;
    }
  } else {
    divisors_p2 = divisors_p2 - 1;
    return;
  }
  all:
  /* deliver all to the environment */
  if (divisors_p2 == 1) {
    goto divisors_t2divisors_t8;
  }
  else {
    goto divisors_t5;
  }
}
