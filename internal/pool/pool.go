// Package pool provides the bounded, order-preserving worker pool
// shared by the concurrent synthesis engine (per-source schedule
// searches) and the corpus batch runner (per-app syntheses).
package pool

import (
	"context"
	"sync"
)

// Run dispatches the indexes 0..n-1, in order, to fn running on up to
// workers goroutines. fn receives a cancel function that stops the
// dispatch of pending indexes (first-error cancellation); cancelling
// the parent ctx has the same effect. In-flight calls always run to
// completion, and Run returns only after every dispatched fn has
// returned.
//
// The return value is the count of dispatched indexes: the dispatched
// set is always the prefix [0, dispatched), so callers can tell
// exactly which items never ran.
func Run(ctx context.Context, n, workers int, fn func(i int, cancel context.CancelFunc)) (dispatched int) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i, cancel)
			}
		}()
	}
	dispatched = n
feed:
	for i := 0; i < n; i++ {
		// The explicit Err check makes an already-cancelled context
		// dispatch nothing: a select with both channels ready would
		// pick one at random.
		if ctx.Err() != nil {
			dispatched = i
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			dispatched = i
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return dispatched
}
