package sim

// CostModel assigns cycle costs to the operations of both executors. The
// three presets stand in for the paper's compiler optimization levels
// (Section 8.2): optimization shrinks computation cost faster than
// communication overhead, which is dominated by calls, buffer management
// and the RTOS context switch.
type CostModel struct {
	Name string

	// Computation.
	AluOp  int64 // one arithmetic/comparison operator
	Assign int64 // one store
	Branch int64 // one condition evaluation / branch

	// Communication through a real channel (FIFO managed by the RTOS or
	// communication library).
	CommCall   int64 // fixed per READ_DATA/WRITE_DATA call (function call + checks)
	CommInline int64 // same, when communication primitives are inlined
	CommItem   int64 // per item copied through a channel

	// Intra-task communication after task synthesis: a local array (or
	// plain variable) access.
	LocalItem int64 // per item through a collapsed channel

	// Environment ports (memory-mapped I/O / latched values): paid
	// identically by both implementations.
	EnvCall int64 // fixed per environment port operation
	EnvItem int64 // per item moved to/from the environment

	// Control overhead.
	CtxSwitch int64 // round-robin context switch (baseline)
	Dispatch  int64 // ISR dispatch per environment trigger (task)
	Goto      int64 // inter-segment jump inside the ISR
}

// Preset cost models. Calibration targets the shape of the paper's
// results, not its absolute numbers: communication overhead dominates
// the 4-task version, computation dominates the single task, and higher
// optimization compresses computation more than communication, pushing
// the speedup ratio from ~3.9 (pfc) to ~5.2 (pfc-O/-O2) as in Table 1.
var (
	// PFC models unoptimized compilation.
	PFC = &CostModel{
		Name:   "pfc",
		AluOp:  4,
		Assign: 4,
		Branch: 5,

		CommCall:   48,
		CommInline: 36,
		CommItem:   14,
		LocalItem:  2,
		EnvCall:    4,
		EnvItem:    4,

		CtxSwitch: 90,
		Dispatch:  20,
		Goto:      2,
	}
	// PFCO models -O.
	PFCO = &CostModel{
		Name:   "pfc-O",
		AluOp:  1,
		Assign: 1,
		Branch: 2,

		CommCall:   26,
		CommInline: 17,
		CommItem:   8,
		LocalItem:  1,
		EnvCall:    2,
		EnvItem:    2,

		CtxSwitch: 80,
		Dispatch:  12,
		Goto:      1,
	}
	// PFCO2 models -O2.
	PFCO2 = &CostModel{
		Name:   "pfc-O2",
		AluOp:  1,
		Assign: 1,
		Branch: 1,

		CommCall:   25,
		CommInline: 16,
		CommItem:   8,
		LocalItem:  1,
		EnvCall:    2,
		EnvItem:    2,

		CtxSwitch: 78,
		Dispatch:  10,
		Goto:      1,
	}
)

// Presets lists the three models in the paper's order.
func Presets() []*CostModel { return []*CostModel{PFC, PFCO, PFCO2} }

// commCall returns the per-call cost honoring the inlining flag.
func (c *CostModel) commCall(inline bool) int64 {
	if inline {
		return c.CommInline
	}
	return c.CommCall
}
