package petri

import "sync"

// Level-synchronous parallel frontier. Both bounded reachability
// (Net.Explore) and the scheduler's marking-graph engine are BFS loops
// whose serial form interleaves three jobs per edge: fire the
// transition, deduplicate the successor marking, and record the edge
// under a deterministic state numbering. RunFrontier splits one BFS
// level into three phases so the first two scale with cores while the
// numbering stays byte-identical to the serial loop:
//
//	A (parallel over frontier chunks): fire + prune + hash each
//	  successor into per-worker candidate buffers, bucketed by the
//	  shard its hash routes to;
//	B (parallel over shards): deduplicate each shard's candidates by
//	  interning into a ShardedStore — each shard is touched by exactly
//	  one goroutine, so no locks are taken;
//	C (sequential, cheap): walk the candidates in (parent, emit) order
//	  — which IS the serial discovery order, because chunks are
//	  contiguous — and assign dense global MarkIDs on first use of a
//	  shard ref. Per edge this is a few array reads; the O(|marking|)
//	  hashing and probing already happened in A and B.
//
// Because phase C numbers states in first-discovery order regardless of
// how phases A and B were chunked, the resulting MarkIDs, edges and
// everything derived from them are identical for every worker count,
// including the plain serial loop.

// MergeHooks are the sequential hooks of a frontier exploration: they
// run in the deterministic phase-C merge order regardless of how the
// expansion was parallelized (goroutines in RunFrontier, or worker
// processes behind a FrontierRunner), which is what makes state
// numbering byte-identical across every execution strategy.
type MergeHooks struct {
	// BeginState is called for every frontier state in MarkID order,
	// before any of its Edge/Reject calls. May be nil.
	BeginState func(id MarkID)
	// Admit is consulted before a newly discovered marking is assigned
	// a global MarkID; returning false rejects it (surfacing as a
	// Reject with budget=true). May be nil (admit everything).
	Admit func() bool
	// Edge is called for each recorded edge, in the serial discovery
	// order. isNew is true when child was interned by this call, in
	// which case child == store.Len()-1.
	Edge func(parent MarkID, trans int32, child MarkID, isNew bool)
	// Reject is called for emitted-nil successors (budget=false) and
	// Admit-refused ones (budget=true). Returning false aborts the
	// whole exploration; RunFrontier then returns false.
	Reject func(parent MarkID, trans int32, budget bool) bool
	// LevelClosed is called after each level commits — every state
	// below end has had all its edges recorded and will never be
	// expanded again — and runs sequentially, between levels. The
	// frozen-tier explorers use it to FreezeThrough(end); the final
	// call has end == store.Len(). May be nil.
	LevelClosed func(end int)
}

// FrontierHooks supplies the exploration-specific behaviour of a
// RunFrontier run. Expand is called concurrently; the embedded
// MergeHooks are called sequentially from phase C in deterministic
// order.
type FrontierHooks struct {
	// Expand generates the successors of one frontier state. It is
	// called once per state, concurrently across states, with a worker
	// index for scratch-buffer affinity. emit must be called once per
	// outgoing edge attempt, in a deterministic per-state order; the
	// child marking is copied during the call, so a reused scratch
	// buffer may be passed. Emit a nil child for a successor vetoed by
	// the caller (e.g. beyond a token cap): it surfaces as a Reject
	// with budget=false.
	Expand func(worker int, id MarkID, m Marking, emit func(trans int32, child Marking))
	MergeHooks
}

// ExpandSpec is a self-contained, serializable description of how to
// expand one frontier state: which ECSs of the net's partition may
// fire, and the per-place token caps that veto successors. It captures
// everything the in-process explorers' Expand closures know, so a
// worker process holding only the net and the spec reproduces the
// exact emit sequence (ECSs in partition order, members in ascending
// transition order, out-of-cap successors vetoed).
type ExpandSpec struct {
	// Mask is the fireable-ECS bitset over the net's ECSPartition:
	// enabled ECSs outside the mask are not fired (source exclusion,
	// single-source filtering).
	Mask []uint64
	// Caps holds the per-place token cap; a successor marking any
	// place beyond its cap is vetoed. A negative cap means unbounded.
	Caps []int
}

// Veto reports whether the marking exceeds the spec's place caps.
func (s *ExpandSpec) Veto(m Marking) bool {
	for i, v := range m {
		if c := s.Caps[i]; c >= 0 && v > c {
			return true
		}
	}
	return false
}

// FrontierRunner abstracts who performs the phase-A expansion of a
// level-synchronous frontier exploration. The in-process RunFrontier
// fans expansion out over goroutines; a distributed runner (package
// internal/dist) ships the net and spec to worker processes owning
// hash ranges of the marking space — holding either a full replica
// rebuilt from Delta batches or, by default, only their owned shards
// fed by VecDelta batches — and feeds their candidate streams
// through the same sequential merge, pipelined so workers expand one
// level ahead of the merge and new candidates resolve by shipped
// marking hash (LookupHash) instead of a coordinator re-fire.
// Implementations must invoke the
// MergeHooks in exactly the serial discovery order (states ascending,
// emit order within a state), so results are byte-identical to the
// serial loop. The returned bool is false when a Reject hook aborted
// the run; a non-nil error reports an infrastructure failure (a worker
// died, the protocol broke) rather than an exploration outcome.
type FrontierRunner interface {
	RunFrontier(n *Net, store *MarkingStore, spec ExpandSpec, hooks MergeHooks) (bool, error)
}

// frontierCand is one edge attempt buffered between phases.
type frontierCand struct {
	parent uint32
	trans  int32
	shard  int32 // -1: vetoed by Expand (nil child)
	local  MarkID
	off    int32 // child vector offset in the worker's arena
	hash   uint64
}

type frontierWorker struct {
	cands   []frontierCand
	vecs    []int
	byShard [][]int32 // shard -> indexes into cands
}

// RunFrontier explores breadth-first from the states already interned
// in store (the first frontier is [0, store.Len())), appending every
// admitted successor to store under the deterministic numbering
// described above. It returns false if a Reject hook aborted the run.
// workers <= 1 still runs the phased pipeline on the calling goroutine,
// with identical results.
func RunFrontier(store *MarkingStore, workers int, hooks FrontierHooks) bool {
	if workers < 1 {
		workers = 1
	}
	nshards := NumFrontierShards(workers)
	places := store.Places()
	sh := NewShardedStore(places, nshards)
	nshards = sh.NumShards()
	// refGlobal[shard][local] is the global MarkID assigned to a shard
	// entry, or NoMark while it has none (not yet reached phase C, or
	// refused by Admit).
	refGlobal := make([][]MarkID, nshards)
	ws := make([]*frontierWorker, workers)
	for i := range ws {
		ws[i] = &frontierWorker{byShard: make([][]int32, nshards)}
	}
	// Seed the dedup store with the states already interned globally
	// (the roots), so a cycle back to one is recognized rather than
	// assigned a second MarkID.
	for id := 0; id < store.Len(); id++ {
		m := store.At(MarkID(id))
		h := HashMarking(m)
		sd := sh.ShardOf(h)
		local, _ := sh.InternShard(sd, m, h)
		for len(refGlobal[sd]) <= int(local) {
			refGlobal[sd] = append(refGlobal[sd], NoMark)
		}
		refGlobal[sd][local] = MarkID(id)
	}

	for levelStart := 0; levelStart < store.Len(); {
		levelEnd := store.Len()
		n := levelEnd - levelStart
		act := workers
		if act > n {
			act = n
		}

		// Phase A: expand frontier chunks in parallel.
		var wg sync.WaitGroup
		for w := 0; w < act; w++ {
			fw := ws[w]
			fw.cands = fw.cands[:0]
			fw.vecs = fw.vecs[:0]
			for s := range fw.byShard {
				fw.byShard[s] = fw.byShard[s][:0]
			}
			lo := levelStart + w*n/act
			hi := levelStart + (w+1)*n/act
			wg.Add(1)
			go func(w, lo, hi int, fw *frontierWorker) {
				defer wg.Done()
				parent := uint32(0)
				emit := func(trans int32, child Marking) {
					if child == nil {
						fw.cands = append(fw.cands, frontierCand{parent: parent, trans: trans, shard: -1})
						return
					}
					h := HashMarking(child)
					sd := sh.ShardOf(h)
					fw.byShard[sd] = append(fw.byShard[sd], int32(len(fw.cands)))
					fw.cands = append(fw.cands, frontierCand{
						parent: parent, trans: trans, shard: int32(sd),
						off: int32(len(fw.vecs)), hash: h,
					})
					fw.vecs = append(fw.vecs, child...)
				}
				for id := lo; id < hi; id++ {
					parent = uint32(id)
					hooks.Expand(w, MarkID(id), store.At(MarkID(id)), emit)
				}
			}(w, lo, hi, fw)
		}
		wg.Wait()

		// Phase B: deduplicate per shard in parallel; shard s is owned
		// by goroutine s%act, so InternShard needs no lock. Chunks are
		// walked in worker order so shard-local insertion order is
		// deterministic for a fixed worker count (the global numbering
		// below is deterministic for ANY worker count).
		for w := 0; w < act; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := uint32(w); int(s) < nshards; s += uint32(act) {
					for _, fw := range ws[:act] {
						for _, ci := range fw.byShard[s] {
							c := &fw.cands[ci]
							v := Marking(fw.vecs[c.off : int(c.off)+places])
							c.local, _ = sh.InternShard(s, v, c.hash)
						}
					}
					if grown := sh.ShardLen(s); grown > len(refGlobal[s]) {
						for len(refGlobal[s]) < grown {
							refGlobal[s] = append(refGlobal[s], NoMark)
						}
					}
				}
			}(w)
		}
		wg.Wait()

		// Phase C: sequential merge in serial discovery order.
		next := MarkID(levelStart)
		begin := func(through MarkID) {
			if hooks.BeginState == nil {
				next = through + 1
				return
			}
			for ; next <= through; next++ {
				hooks.BeginState(next)
			}
		}
		for _, fw := range ws[:act] {
			for i := range fw.cands {
				c := &fw.cands[i]
				begin(MarkID(c.parent))
				if c.shard < 0 {
					if !hooks.Reject(MarkID(c.parent), c.trans, false) {
						return false
					}
					continue
				}
				g := refGlobal[c.shard][c.local]
				if g == NoMark {
					if hooks.Admit != nil && !hooks.Admit() {
						if !hooks.Reject(MarkID(c.parent), c.trans, true) {
							return false
						}
						continue
					}
					g, _ = store.InternHashed(fw.vecs[c.off:int(c.off)+places], c.hash)
					refGlobal[c.shard][c.local] = g
					hooks.Edge(MarkID(c.parent), c.trans, g, true)
					continue
				}
				hooks.Edge(MarkID(c.parent), c.trans, g, false)
			}
		}
		begin(MarkID(levelEnd - 1))
		if hooks.LevelClosed != nil {
			hooks.LevelClosed(levelEnd)
		}
		levelStart = levelEnd
	}
	return true
}
