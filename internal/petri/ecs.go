package petri

import "sort"

// ECS is an equal conflict set: a maximal set of non-source transitions
// with identical presets (F(p,t_i) == F(p,t_j) for all p), or a singleton
// source transition. If one member is enabled at a marking, all are.
//
// ECSs are the alphabet of the scheduler: a data-dependent control
// construct compiles to one ECS with several transitions (the scheduler
// must survive every resolution), while SELECT alternatives have distinct
// presets and therefore land in distinct ECSs (the scheduler may pick).
type ECS struct {
	Index int   // position in the net's ECS partition
	Trans []int // member transition IDs, ascending
}

// IsSourceECS reports whether the ECS is the singleton of a source
// transition.
func (e *ECS) IsSourceECS(n *Net) bool {
	return len(e.Trans) == 1 && n.Transitions[e.Trans[0]].IsSource()
}

// IsUncontrollable reports whether the ECS is the singleton of an
// uncontrollable source transition.
func (e *ECS) IsUncontrollable(n *Net) bool {
	return len(e.Trans) == 1 && n.Transitions[e.Trans[0]].Kind == TransSourceUnc
}

// Enabled reports whether the ECS is enabled at m. By the equal-conflict
// property it suffices to test one member.
func (e *ECS) Enabled(n *Net, m Marking) bool {
	return m.Enabled(n.Transitions[e.Trans[0]])
}

// ECSPartition computes the equal-conflict partition of the net's
// transitions. The result is deterministic: classes are ordered by their
// smallest member ID, members ascending.
func (n *Net) ECSPartition() []*ECS {
	byKey := map[string][]int{}
	var classes [][]int
	for _, t := range n.Transitions {
		if t.IsSource() {
			// Each source transition is its own ECS by definition.
			classes = append(classes, []int{t.ID})
			continue
		}
		k := t.presetKey()
		byKey[k] = append(byKey[k], t.ID)
	}
	for _, ts := range byKey {
		sort.Ints(ts)
		classes = append(classes, ts)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	out := make([]*ECS, len(classes))
	for i, ts := range classes {
		out[i] = &ECS{Index: i, Trans: ts}
	}
	return out
}

// ECSIndex maps every transition ID to the index of its ECS within the
// given partition.
func ECSIndex(part []*ECS, numTrans int) []int {
	idx := make([]int, numTrans)
	for i := range idx {
		idx[i] = -1
	}
	for _, e := range part {
		for _, t := range e.Trans {
			idx[t] = e.Index
		}
	}
	return idx
}

// EnabledECS returns the ECSs of the partition enabled at m, in partition
// order.
func EnabledECS(n *Net, part []*ECS, m Marking) []*ECS {
	var out []*ECS
	for _, e := range part {
		if e.Enabled(n, m) {
			out = append(out, e)
		}
	}
	return out
}
