package dist_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dist"
)

// Process-level chaos: kill a real spawned worker at a randomized
// level commit and require the coordinator to respawn it, rebuild its
// replica over msgRestore, and finish with generated C byte-identical
// to the serial run. The pipe-pool matrix (package dist) covers the
// redistribution path; this test is the respawn path end to end —
// SIGKILL, re-exec, handshake, restore, resume.

// spawnChaosSeed/spawnChaosRounds parameterize the kill points. CI
// runs the pinned defaults; the nightly sweep randomizes the seed
// (QSS_CHAOS_SEED) and deepens the rounds (QSS_CHAOS_ROUNDS).
func spawnChaosSeed() int64 {
	if s := os.Getenv("QSS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

func spawnChaosRounds() int {
	if s := os.Getenv("QSS_CHAOS_ROUNDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

func TestChaosSpawnedKill(t *testing.T) {
	seed, rounds := spawnChaosSeed(), spawnChaosRounds()
	serial, err := core.Synthesize(apps.PFC, apps.PFCSpec, &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true})
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	want := fingerprint(t, serial)

	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(seed + int64(round)))
		for _, procs := range []int{1, 2, 4} {
			victim, killAt := rng.Intn(procs), 1+rng.Intn(4)
			t.Run(fmt.Sprintf("round%d-procs%d", round, procs), func(t *testing.T) {
				pool, err := dist.SpawnLocal(procs)
				if err != nil {
					t.Fatalf("spawn %d workers: %v", procs, err)
				}
				defer pool.Close()
				// SIGKILL the victim at the killAt-th level commit of
				// the synthesis — mid-session, with the next frontier
				// already streaming.
				var fired int
				var once sync.Once
				pool.SetLevelHook(func(level int) {
					fired++
					if fired == killAt {
						once.Do(func() {
							if kerr := pool.KillWorker(victim); kerr != nil {
								t.Errorf("kill worker %d: %v", victim, kerr)
							}
						})
					}
				})
				r, err := core.Synthesize(apps.PFC, apps.PFCSpec, &core.Options{Workers: 1, Dist: pool, DisableCache: true})
				if err != nil {
					t.Fatalf("synthesize with worker %d killed at level commit %d: %v", victim, killAt, err)
				}
				if got := fingerprint(t, r); got != want {
					t.Errorf("kill worker %d at commit %d: output differs from serial\n%s",
						victim, killAt, firstDiff(want, got))
				}
				restarts, _ := pool.RecoveryStats()
				if restarts < 1 {
					t.Fatalf("killed worker %d at commit %d but the pool reports no restarts", victim, killAt)
				}
			})
		}
	}
}
