package petri

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Textual exchange format for nets, used by the command-line tools and
// the test suite. The format is line oriented:
//
//	net <name>
//	place <name> [init=N] [bound=N] [kind=internal|port|channel|complement] [process=NAME]
//	trans <name> [kind=normal|source-unc|source-ctl|sink] [process=NAME] [label=L]
//	arc <place> -> <trans> [w=N]
//	arc <trans> -> <place> [w=N]
//
// '#' starts a comment; blank lines are ignored.

// Format renders the net in the textual exchange format.
func (n *Net) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "net %s\n", n.Name)
	for _, p := range n.Places {
		fmt.Fprintf(bw, "place %s", p.Name)
		if p.Initial != 0 {
			fmt.Fprintf(bw, " init=%d", p.Initial)
		}
		if p.Bound != 0 {
			fmt.Fprintf(bw, " bound=%d", p.Bound)
		}
		if p.Kind != PlaceInternal {
			fmt.Fprintf(bw, " kind=%s", p.Kind)
		}
		if p.Process != "" {
			fmt.Fprintf(bw, " process=%s", p.Process)
		}
		fmt.Fprintln(bw)
	}
	for _, t := range n.Transitions {
		fmt.Fprintf(bw, "trans %s", t.Name)
		if t.Kind != TransNormal {
			fmt.Fprintf(bw, " kind=%s", t.Kind)
		}
		if t.Process != "" {
			fmt.Fprintf(bw, " process=%s", t.Process)
		}
		if t.Label != "" {
			fmt.Fprintf(bw, " label=%s", t.Label)
		}
		fmt.Fprintln(bw)
	}
	for _, t := range n.Transitions {
		in := append([]Arc(nil), t.In...)
		sort.Slice(in, func(i, j int) bool { return in[i].Place < in[j].Place })
		for _, a := range in {
			fmt.Fprintf(bw, "arc %s -> %s", n.Places[a.Place].Name, t.Name)
			if a.Weight != 1 {
				fmt.Fprintf(bw, " w=%d", a.Weight)
			}
			fmt.Fprintln(bw)
		}
		out := append([]Arc(nil), t.Out...)
		sort.Slice(out, func(i, j int) bool { return out[i].Place < out[j].Place })
		for _, a := range out {
			fmt.Fprintf(bw, "arc %s -> %s", t.Name, n.Places[a.Place].Name)
			if a.Weight != 1 {
				fmt.Fprintf(bw, " w=%d", a.Weight)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// Parse reads a net in the textual exchange format.
func Parse(r io.Reader) (*Net, error) {
	sc := bufio.NewScanner(r)
	n := New("")
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "net":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: net requires a name", lineno)
			}
			n.Name = fields[1]
		case "place":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: place requires a name", lineno)
			}
			p := n.AddPlace(fields[1], PlaceInternal, 0)
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: malformed attribute %q", lineno, kv)
				}
				switch k {
				case "init":
					iv, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: init: %v", lineno, err)
					}
					p.Initial = iv
				case "bound":
					iv, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: bound: %v", lineno, err)
					}
					p.Bound = iv
				case "kind":
					pk, err := parsePlaceKind(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: %v", lineno, err)
					}
					p.Kind = pk
				case "process":
					p.Process = v
				default:
					return nil, fmt.Errorf("line %d: unknown place attribute %q", lineno, k)
				}
			}
		case "trans":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: trans requires a name", lineno)
			}
			t := n.AddTransition(fields[1], TransNormal)
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: malformed attribute %q", lineno, kv)
				}
				switch k {
				case "kind":
					tk, err := parseTransKind(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: %v", lineno, err)
					}
					t.Kind = tk
				case "process":
					t.Process = v
				case "label":
					t.Label = v
				default:
					return nil, fmt.Errorf("line %d: unknown trans attribute %q", lineno, k)
				}
			}
		case "arc":
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fmt.Errorf("line %d: arc syntax is 'arc A -> B [w=N]'", lineno)
			}
			w := 1
			for _, kv := range fields[4:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || k != "w" {
					return nil, fmt.Errorf("line %d: unknown arc attribute %q", lineno, kv)
				}
				iv, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("line %d: w: %v", lineno, err)
				}
				w = iv
			}
			from, to := fields[1], fields[3]
			if p := n.PlaceByName(from); p != nil {
				t := n.TransitionByName(to)
				if t == nil {
					return nil, fmt.Errorf("line %d: unknown transition %q", lineno, to)
				}
				n.AddArc(p, t, w)
			} else if t := n.TransitionByName(from); t != nil {
				p := n.PlaceByName(to)
				if p == nil {
					return nil, fmt.Errorf("line %d: unknown place %q", lineno, to)
				}
				n.AddArcTP(t, p, w)
			} else {
				return nil, fmt.Errorf("line %d: unknown arc source %q", lineno, from)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func parsePlaceKind(s string) (PlaceKind, error) {
	switch s {
	case "internal":
		return PlaceInternal, nil
	case "port":
		return PlacePort, nil
	case "channel":
		return PlaceChannel, nil
	case "complement":
		return PlaceComplement, nil
	}
	return 0, fmt.Errorf("unknown place kind %q", s)
}

func parseTransKind(s string) (TransKind, error) {
	switch s {
	case "normal":
		return TransNormal, nil
	case "source-unc":
		return TransSourceUnc, nil
	case "source-ctl":
		return TransSourceCtl, nil
	case "sink":
		return TransSink, nil
	}
	return 0, fmt.Errorf("unknown transition kind %q", s)
}

// Dot renders the net in Graphviz DOT format: places as circles (token
// count in the label), transitions as boxes, arc weights on edges.
func (n *Net) Dot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n", n.Name)
	for _, p := range n.Places {
		label := p.Name
		if p.Initial > 0 {
			label = fmt.Sprintf("%s\\n%d", p.Name, p.Initial)
		}
		fmt.Fprintf(bw, "  p%d [shape=circle label=\"%s\"];\n", p.ID, label)
	}
	for _, t := range n.Transitions {
		shape := "box"
		if t.IsSource() {
			shape = "cds"
		}
		fmt.Fprintf(bw, "  t%d [shape=%s label=\"%s\"];\n", t.ID, shape, t.Name)
	}
	for _, t := range n.Transitions {
		for _, a := range t.In {
			fmt.Fprintf(bw, "  p%d -> t%d", a.Place, t.ID)
			if a.Weight != 1 {
				fmt.Fprintf(bw, " [label=\"%d\"]", a.Weight)
			}
			fmt.Fprintln(bw, ";")
		}
		for _, a := range t.Out {
			fmt.Fprintf(bw, "  t%d -> p%d", t.ID, a.Place)
			if a.Weight != 1 {
				fmt.Fprintf(bw, " [label=\"%d\"]", a.Weight)
			}
			fmt.Fprintln(bw, ";")
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
