package petri

import (
	"strings"
	"testing"
)

func simpleNet(t *testing.T) *Net {
	t.Helper()
	n := New("simple")
	p0 := n.AddPlace("p0", PlaceInternal, 1)
	p1 := n.AddPlace("p1", PlaceChannel, 0)
	a := n.AddTransition("a", TransSourceUnc)
	b := n.AddTransition("b", TransNormal)
	n.AddArcTP(a, p1, 2)
	n.AddArc(p0, b, 1)
	n.AddArc(p1, b, 2)
	n.AddArcTP(b, p0, 1)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return n
}

func TestNetConstruction(t *testing.T) {
	n := simpleNet(t)
	if got := n.String(); !strings.Contains(got, "2 places, 2 transitions") {
		t.Errorf("String() = %q", got)
	}
	b := n.TransitionByName("b")
	if b == nil {
		t.Fatal("TransitionByName(b) = nil")
	}
	if w := b.Weight(1); w != 2 {
		t.Errorf("F(p1,b) = %d, want 2", w)
	}
	if w := b.OutWeight(0); w != 1 {
		t.Errorf("F(b,p0) = %d, want 1", w)
	}
	if n.PlaceByName("nope") != nil {
		t.Error("PlaceByName(nope) should be nil")
	}
}

func TestArcAccumulation(t *testing.T) {
	n := New("acc")
	p := n.AddPlace("p", PlaceChannel, 0)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 1)
	n.AddArc(p, tr, 2)
	if got := tr.Weight(p.ID); got != 3 {
		t.Errorf("accumulated weight = %d, want 3", got)
	}
	if got := len(tr.In); got != 1 {
		t.Errorf("arc count = %d, want 1 (merged)", got)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	n := simpleNet(t)
	if got := n.Successors(1); len(got) != 1 || n.Transitions[got[0]].Name != "b" {
		t.Errorf("Successors(p1) = %v", got)
	}
	if got := n.Predecessors(1); len(got) != 1 || n.Transitions[got[0]].Name != "a" {
		t.Errorf("Predecessors(p1) = %v", got)
	}
	// Cache invalidation on mutation.
	c := n.AddTransition("c", TransNormal)
	n.AddArc(n.Places[1], c, 1)
	if got := n.Successors(1); len(got) != 2 {
		t.Errorf("Successors(p1) after mutation = %v, want 2 entries", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	n := New("bad")
	p := n.AddPlace("p", PlaceInternal, 0)
	tr := n.AddTransition("t", TransSourceUnc)
	n.AddArc(p, tr, 1) // source with preset
	if err := n.Validate(); err == nil {
		t.Error("source with non-empty preset should fail validation")
	}

	n2 := New("bad2")
	n2.AddPlace("p", PlaceInternal, -1)
	if err := n2.Validate(); err == nil {
		t.Error("negative initial marking should fail validation")
	}
}

func TestAddArcPanicsOnBadWeight(t *testing.T) {
	n := New("w")
	p := n.AddPlace("p", PlaceInternal, 0)
	tr := n.AddTransition("t", TransNormal)
	defer func() {
		if recover() == nil {
			t.Error("AddArc with weight 0 should panic")
		}
	}()
	n.AddArc(p, tr, 0)
}

func TestSelfLoopPreservesMarking(t *testing.T) {
	n := New("loop")
	p := n.AddPlace("p", PlaceChannel, 3)
	tr := n.AddTransition("t", TransNormal)
	n.AddSelfLoop(p, tr, 2)
	m := n.InitialMarking()
	if !m.Enabled(tr) {
		t.Fatal("self-loop transition should be enabled with 3 >= 2 tokens")
	}
	after := m.Fire(tr)
	if after[p.ID] != 3 {
		t.Errorf("self-loop changed marking: %d, want 3", after[p.ID])
	}
	// Below threshold: disabled.
	m2 := Marking{1}
	if m2.Enabled(tr) {
		t.Error("self-loop should require 2 tokens")
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[string]string{
		TransNormal.String():     "normal",
		TransSourceUnc.String():  "source-unc",
		TransSourceCtl.String():  "source-ctl",
		TransSink.String():       "sink",
		PlaceInternal.String():   "internal",
		PlacePort.String():       "port",
		PlaceChannel.String():    "channel",
		PlaceComplement.String(): "complement",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
