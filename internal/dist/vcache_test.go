package dist

import (
	"testing"

	"repro/internal/petri"
)

// TestVecCacheLockstep drives a coordinator-side instance (hit) and a
// worker-side instance (insert on miss, get on hit) through the same
// id sequence with a capacity small enough to force evictions, and
// asserts the invariant the trimmed protocol rests on: whenever the
// coordinator omits a vector, the worker still holds it.
func TestVecCacheLockstep(t *testing.T) {
	coord := &vecCache{cap: 3, entries: map[petri.MarkID]*vecEntry{}}
	work := &vecCache{cap: 3, entries: map[petri.MarkID]*vecEntry{}}
	vec := func(id petri.MarkID) petri.Marking { return petri.Marking{int(id), 1} }
	// Repeats, interleavings and more distinct ids than capacity.
	seq := []petri.MarkID{1, 2, 1, 3, 4, 2, 4, 5, 6, 1, 6, 5, 5, 7, 8, 9, 7}
	for i, id := range seq {
		if coord.hit(id) {
			got, ok := work.get(id)
			if !ok {
				t.Fatalf("step %d: coordinator omitted vector for %d, worker does not hold it", i, id)
			}
			if !got.Equal(vec(id)) {
				t.Fatalf("step %d: worker holds %v for %d, want %v", i, got, id, vec(id))
			}
		} else {
			work.insert(id, vec(id))
		}
		if coord.len() != work.len() {
			t.Fatalf("step %d: cache sizes diverged (%d vs %d)", i, coord.len(), work.len())
		}
		if coord.len() > coord.cap {
			t.Fatalf("step %d: coordinator cache over capacity (%d > %d)", i, coord.len(), coord.cap)
		}
	}
}

// TestVecCacheEvictionOrder pins plain LRU semantics: at capacity the
// least recently touched id leaves first, and a recency bump protects
// an old entry.
func TestVecCacheEvictionOrder(t *testing.T) {
	c := &vecCache{cap: 2, entries: map[petri.MarkID]*vecEntry{}}
	c.hit(1) // miss, insert
	c.hit(2) // miss, insert
	c.hit(1) // hit, bump 1 over 2
	c.hit(3) // miss: evicts 2, the least recent
	if !c.hit(1) {
		t.Fatal("1 was bumped and must survive the eviction")
	}
	if c.hit(2) {
		t.Fatal("2 was least recent and must have been evicted")
	}
}

// TestExploreDistPipeTinyCache re-runs a boundary-heavy exploration
// with the shared cache capacity shrunk to 2, forcing constant
// eviction and re-shipping: results must stay byte-identical and no
// session may fail on a cache miss — the lockstep argument under
// adversarial pressure.
func TestExploreDistPipeTinyCache(t *testing.T) {
	old := vecCacheCap
	vecCacheCap = 2
	defer func() { vecCacheCap = old }()
	n := ringNet(3, 4)
	opt := petri.ExploreOptions{MaxMarkings: 1000}
	want := n.Explore(opt)
	for _, workers := range []int{2, 4} {
		p := pipePool(t, workers, WorkerOptions{})
		got, err := n.ExploreDist(p, opt)
		if err != nil {
			t.Fatalf("ExploreDist(%d workers, cap 2): %v", workers, err)
		}
		requireSameReach(t, "tiny cache", want, got)
	}
}
