/* Task task_go: quasi-statically scheduled for source go. */
#include "pixelpipe.data.h"

int producer_p0;
int producer_p2;
int consumer_p0;
int consumer_p2;
int BUF_Pix;
int BUF_Eol;
int BUF_Ack;
int producer_n;
int producer_i;
int producer_a;
int consumer_v;
int consumer_e;
int consumer_done;
int consumer_sum;

void task_go_init(void)
{
  producer_p0 = 1;
  producer_p2 = 0;
  consumer_p0 = 1;
  consumer_p2 = 0;
  BUF_Pix = 0;
  BUF_Eol = 0;
  BUF_Ack = 0;
}

void task_go_ISR(void)
{
  go:
  go();
  READ_DATA(go, &producer_n, 1);
  producer_i = 0;
  producer_p0 = producer_p0 - 1;
  goto producer_t1producer_t4;
  producer_t2:
  BUF_Pix = ((producer_i * 3) + 1);
  consumer_v = BUF_Pix;
  consumer_sum = (consumer_sum + consumer_v);
  producer_i++;
  producer_p2 = producer_p2 - 1;
  consumer_p2 = consumer_p2 - 1;
  goto producer_t1producer_t4;
  producer_t5:
  BUF_Eol = producer_n;
  consumer_e = BUF_Eol;
  BUF_Ack = 0;
  producer_a = BUF_Ack;
  consumer_done = 1;
  producer_p0 = producer_p0 + 1;
  consumer_p2 = consumer_p2 - 1;
  goto consumer_t7;
  consumer_t0:
  consumer_done = 0;
  consumer_sum = 0;
  consumer_p0 = consumer_p0 - 1;
  goto consumer_t1consumer_t8;
  consumer_t1consumer_t8:
  if (!consumer_done) {
    consumer_p2 = consumer_p2 + 1;
    if (producer_p0 == 1 && producer_p2 == 0 && consumer_p0 == 0 && consumer_p2 == 1) {
      return;
    }
    else if (producer_p0 == 0 && producer_p2 == 1 && consumer_p0 == 0 && consumer_p2 == 1) {
      goto producer_t2;
    }
    else {
      goto producer_t5;
    }
  } else {
    WRITE_DATA(out, consumer_sum, 1);
    /* deliver sums to the environment */
    consumer_p0 = consumer_p0 + 1;
    if (producer_p0 == 1 && producer_p2 == 0 && consumer_p0 == 1 && consumer_p2 == 0) {
      return;
    }
    else {
      goto consumer_t0;
    }
  }
  consumer_t7:
  goto consumer_t1consumer_t8;
  producer_t1producer_t4:
  if ((producer_i < producer_n)) {
    producer_p2 = producer_p2 + 1;
    if (producer_p0 == 0 && producer_p2 == 1 && consumer_p0 == 0 && consumer_p2 == 1) {
      goto producer_t2;
    }
    else if (producer_p0 == 0 && producer_p2 == 1 && consumer_p0 == 1 && consumer_p2 == 0) {
      goto consumer_t0;
    }
    else {
      goto consumer_t7;
    }
  } else {
    if (producer_p0 == 0 && producer_p2 == 0 && consumer_p0 == 0 && consumer_p2 == 1) {
      goto producer_t5;
    }
    else if (producer_p0 == 0 && producer_p2 == 0 && consumer_p0 == 1 && consumer_p2 == 0) {
      goto consumer_t0;
    }
    else {
      goto consumer_t7;
    }
  }
}
