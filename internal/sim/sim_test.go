package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/flowc"
)

func evalStr(t *testing.T, sc *Scope, expr string) int64 {
	t.Helper()
	p, err := flowc.ParseProcess("PROCESS p () { int tmp_; tmp_ = " + expr + "; }")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	as := p.Body.Stmts[1].(*flowc.ExprStmt).X.(*flowc.Assign)
	m := NewMachine(PFC)
	v, err := m.Eval(sc, as.RHS)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	sc := NewScope()
	sc.Set("x", 7)
	sc.Set("y", -3)
	cases := map[string]int64{
		"1 + 2 * 3":        7,
		"(1 + 2) * 3":      9,
		"x % 4":            3,
		"x / 2":            3,
		"-y":               3,
		"!0":               1,
		"!5":               0,
		"x > y":            1,
		"x <= 7 && y != 0": 1,
		"0 || y < 0":       1,
		"x == 7":           1,
		"x >= 8":           0,
	}
	for expr, want := range cases {
		if got := evalStr(t, sc, expr); got != want {
			t.Errorf("%s = %d, want %d", expr, got, want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// 0 && (1/0) must not divide by zero.
	sc := NewScope()
	if got := evalStr(t, sc, "0 && 1 / 0"); got != 0 {
		t.Errorf("short circuit && = %d", got)
	}
	if got := evalStr(t, sc, "1 || 1 / 0"); got != 1 {
		t.Errorf("short circuit || = %d", got)
	}
}

func TestEvalErrors(t *testing.T) {
	sc := NewScope()
	sc.Declare("arr", 3)
	m := NewMachine(PFC)
	for _, src := range []string{"1 / 0", "1 % 0", "arr[5]", "arr[0 - 1]"} {
		p, err := flowc.ParseProcess("PROCESS p () { int t_; t_ = " + src + "; }")
		if err != nil {
			t.Fatal(err)
		}
		as := p.Body.Stmts[1].(*flowc.ExprStmt).X.(*flowc.Assign)
		if _, err := m.Eval(sc, as.RHS); err == nil {
			t.Errorf("%s should fail", src)
		}
	}
}

func TestExecPlainControlFlow(t *testing.T) {
	src := `PROCESS p () {
  int i, sum, arr[5];
  for (i = 0; i < 5; i++)
    arr[i] = i * i;
  sum = 0;
  i = 0;
  while (i < 5) {
    if (arr[i] % 2 == 0)
      sum += arr[i];
    else
      sum -= arr[i];
    i++;
  }
}`
	p, err := flowc.ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScope()
	m := NewMachine(PFC)
	for _, s := range p.Body.Stmts {
		if err := m.ExecPlain(sc, s); err != nil {
			t.Fatal(err)
		}
	}
	// 0 +? arr = [0 1 4 9 16]: evens 0,4,16 add; odds 1,9 subtract = 10.
	if got := sc.Get("sum"); got != 10 {
		t.Errorf("sum = %d, want 10", got)
	}
	if m.Cycles <= 0 {
		t.Error("execution should charge cycles")
	}
}

func TestIncDecSemantics(t *testing.T) {
	src := `PROCESS p () { int a, b, c; a = 5; b = a++; c = ++a; }`
	p, err := flowc.ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScope()
	m := NewMachine(PFC)
	for _, s := range p.Body.Stmts {
		if err := m.ExecPlain(sc, s); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Get("b") != 5 || sc.Get("c") != 7 || sc.Get("a") != 7 {
		t.Errorf("a=%d b=%d c=%d, want 7 5 7", sc.Get("a"), sc.Get("b"), sc.Get("c"))
	}
}

func TestStepBudget(t *testing.T) {
	p, err := flowc.ParseProcess(`PROCESS p () { int i; while (1) i++; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(PFC)
	m.MaxSteps = 1000
	err = m.ExecPlain(NewScope(), p.Body.Stmts[1])
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("infinite loop should exhaust the budget, got %v", err)
	}
}

// TestEvalMatchesGo (property): the interpreter agrees with Go on random
// arithmetic over +, -, *.
func TestEvalMatchesGo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := int64(rng.Intn(100)-50), int64(rng.Intn(100)-50), int64(rng.Intn(50)+1)
		sc := NewScope()
		sc.Set("a", a)
		sc.Set("b", b)
		sc.Set("c", c)
		got := evalStr(t, sc, "a * b + a - b % c")
		return got == a*b+a-b%c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChannelFIFO(t *testing.T) {
	ch := NewChannel("c", 3)
	if !ch.CanWrite(3) || ch.CanWrite(4) {
		t.Error("capacity accounting wrong")
	}
	if err := ch.Write([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write([]int64{3}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write([]int64{4}); err == nil {
		t.Error("overfull write should fail")
	}
	got, err := ch.Read(2)
	if err != nil || got[0] != 1 || got[1] != 2 {
		t.Errorf("Read = %v (%v)", got, err)
	}
	if _, err := ch.Read(2); err == nil {
		t.Error("underfull read should fail")
	}
	if ch.MaxOccupancy != 3 || ch.ItemsMoved != 5 {
		t.Errorf("stats: max=%d moved=%d", ch.MaxOccupancy, ch.ItemsMoved)
	}
	unbounded := NewChannel("u", 0)
	if !unbounded.CanWrite(1 << 20) {
		t.Error("unbounded channel should always accept")
	}
}

func TestInputOutputStreams(t *testing.T) {
	in := NewInputStream("i", 1, 2, 3)
	got, err := in.Pop(2)
	if err != nil || got[0] != 1 || got[1] != 2 {
		t.Errorf("Pop = %v (%v)", got, err)
	}
	in.Push(4)
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
	if _, err := in.Pop(3); err == nil {
		t.Error("over-pop should fail")
	}
	var out OutputStream
	out.Append(9, 8)
	if len(out.Vals) != 2 {
		t.Errorf("output = %v", out.Vals)
	}
}

func TestBaselineBlockedStats(t *testing.T) {
	// With capacity 1 the producer must block repeatedly.
	r := pfcResult(t)
	b := NewBaseline(r.Sys, PFC, 1)
	b.Input("init").Push(0)
	b.Input("cin").Push(1)
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	pix := b.Channels["Pix"]
	if pix.BlockedWrites == 0 {
		t.Error("capacity-1 run should record blocked writes")
	}
	if pix.MaxOccupancy > 1 {
		t.Errorf("capacity 1 exceeded: %d", pix.MaxOccupancy)
	}
	if b.Switches == 0 {
		t.Error("round-robin should context switch")
	}
}

func TestBaselineHonorsDeclaredBound(t *testing.T) {
	// A channel with a declared bound is capped even when the sweep
	// capacity is larger.
	r := pfcResult(t)
	b := NewBaseline(r.Sys, PFC, 100)
	b.CapacityOf = map[string]int{"Pix": 2}
	b.Input("init").Push(0)
	b.Input("cin").Push(1)
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Channels["Pix"].MaxOccupancy; got > 2 {
		t.Errorf("Pix occupancy %d exceeds override 2", got)
	}
}

func TestTaskTriggerAtNonAwaitFails(t *testing.T) {
	r := pfcResult(t)
	te, err := NewTaskExec(r.Sys, r.Tasks[0], PFC)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: move the cursor off an await node is not directly
	// possible from outside; instead check the error path for a trigger
	// without the controllable coefficient available.
	if err := te.Trigger(0); err == nil {
		t.Error("trigger without a queued coefficient should fail (controllable read)")
	}
}

func TestCostPresetsOrdered(t *testing.T) {
	// Optimization shrinks every cost component (weakly).
	for _, pair := range [][2]*CostModel{{PFC, PFCO}, {PFCO, PFCO2}} {
		hi, lo := pair[0], pair[1]
		if lo.AluOp > hi.AluOp || lo.CommCall > hi.CommCall || lo.CtxSwitch > hi.CtxSwitch {
			t.Errorf("%s should not cost more than %s", lo.Name, hi.Name)
		}
	}
	if got := PFC.commCall(true); got != PFC.CommInline {
		t.Errorf("commCall(inline) = %d", got)
	}
	if got := PFC.commCall(false); got != PFC.CommCall {
		t.Errorf("commCall(call) = %d", got)
	}
}
