package main

import "testing"

// TestPFCBenchFlagValidation: contradictory or out-of-range flag
// combinations are rejected with a descriptive error instead of being
// silently clamped.
func TestPFCBenchFlagValidation(t *testing.T) {
	type tc struct {
		name                                string
		frames, exploreWorkers, distWorkers int
		distEndpoint                        string
		distFullReplicas                    bool
		anyOutput, wantErr                  bool
	}
	cases := []tc{
		{name: "defaults", frames: 10, anyOutput: true},
		{name: "explore-workers", frames: 10, exploreWorkers: 8, anyOutput: true},
		{name: "dist", frames: 10, distWorkers: 2, anyOutput: true},
		{name: "dist-endpoint", frames: 1, distWorkers: 1, distEndpoint: "tcp:127.0.0.1:9000", anyOutput: true},
		{name: "dist-full-replicas", frames: 10, distWorkers: 2, distFullReplicas: true, anyOutput: true},
		{name: "no-output", frames: 10, wantErr: true},
		{name: "zero-frames", frames: 0, anyOutput: true, wantErr: true},
		{name: "negative-explore", frames: 10, exploreWorkers: -1, anyOutput: true, wantErr: true},
		{name: "negative-dist", frames: 10, distWorkers: -3, anyOutput: true, wantErr: true},
		{name: "endpoint-without-workers", frames: 10, distEndpoint: "unix:/tmp/q.sock", anyOutput: true, wantErr: true},
		{name: "both-strategies", frames: 10, distWorkers: 2, exploreWorkers: 4, anyOutput: true, wantErr: true},
		{name: "full-replicas-without-dist", frames: 10, distFullReplicas: true, anyOutput: true, wantErr: true},
	}
	for _, c := range cases {
		err := validateFlags(c.frames, c.exploreWorkers, c.distWorkers, c.distEndpoint, c.distFullReplicas, c.anyOutput)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
