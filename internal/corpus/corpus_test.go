package corpus

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/sim"
)

// nocache disables the synthesis cache so every test run exercises the
// full flow (corpus apps are distinct anyway, but explicit is safer).
func nocache() *core.Options { return &core.Options{DisableCache: true} }

// TestGenerateDeterministic: same seed, n and config produce
// byte-identical apps.
func TestGenerateDeterministic(t *testing.T) {
	a := GenerateCorpus(42, 12, DefaultConfig())
	b := GenerateCorpus(42, 12, DefaultConfig())
	for i := range a {
		if a[i].FlowC != b[i].FlowC {
			t.Fatalf("app %d: FlowC differs between identical seeds", i)
		}
		if a[i].Spec != b[i].Spec {
			t.Fatalf("app %d: spec differs between identical seeds", i)
		}
	}
	c := GenerateCorpus(43, 12, DefaultConfig())
	same := 0
	for i := range a {
		if a[i].FlowC == c[i].FlowC {
			same++
		}
	}
	if same == len(a) {
		t.Error("different master seeds generated an identical corpus")
	}
}

// TestCorpusProperties is the paper-invariant sweep (Definition 4.1)
// over 50 generated apps: every app must synthesize, every schedule
// must validate, sources must fire only at await nodes, and a
// simulation run with each channel capped at its ChannelBound must
// deliver the expected items without deadlock.
func TestCorpusProperties(t *testing.T) {
	const nApps = 50
	const triggers = 3
	apps := GenerateCorpus(1, nApps, DefaultConfig())
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			res, err := core.Synthesize(app.FlowC, app.Spec, nocache())
			if err != nil {
				t.Fatalf("corpus app must be schedulable: %v\n--- FlowC:\n%s\n--- spec:\n%s", err, app.FlowC, app.Spec)
			}
			if len(res.Schedules) != len(app.Triggers) {
				t.Fatalf("schedules = %d, want one per trigger (%d)", len(res.Schedules), len(app.Triggers))
			}
			for _, s := range res.Schedules {
				// The five defining properties (root = initial marking,
				// single ECS per node, marking transformer edges, every
				// node on a cycle through the root).
				if err := s.Validate(); err != nil {
					t.Errorf("schedule %s: %v", res.Sys.Net.Transitions[s.Source].Name, err)
				}
				if !s.Root.Marking.Equal(res.Sys.Net.InitialMarking()) {
					t.Errorf("schedule %s: root marking is not the initial marking", res.Sys.Net.Transitions[s.Source].Name)
				}
				// Sources fire only at await nodes.
				for _, n := range s.Nodes {
					for _, e := range n.Edges {
						if res.Sys.Net.Transitions[e.Trans].Kind == petri.TransSourceUnc && !s.IsAwait(n) {
							t.Errorf("schedule %s: node %d fires a source outside an await node",
								res.Sys.Net.Transitions[s.Source].Name, n.ID)
						}
					}
				}
			}
			simCheck(t, app, res, triggers)
		})
	}
}

// simCheck runs the free-running baseline with every channel capped at
// its statically guaranteed bound: the workload must complete (inputs
// drained, deterministic outputs delivered) and no channel may ever
// hold more items than its ChannelBound.
func simCheck(t *testing.T, app *App, res *core.Result, triggers int) {
	t.Helper()
	b := sim.NewBaseline(res.Sys, sim.PFC, 0)
	caps := map[string]int{}
	for _, ch := range res.Sys.Channels {
		bound := res.Bounds[ch.Place.ID]
		if bound <= 0 {
			t.Errorf("channel %s: non-positive guaranteed bound %d", ch.Spec.Name, bound)
			bound = 1
		}
		caps[ch.Spec.Name] = bound
	}
	b.CapacityOf = caps
	for _, trig := range app.Triggers {
		for k := 0; k < triggers; k++ {
			b.Input(trig).Push(int64(k%4 + 1))
		}
	}
	if _, err := b.Run(); err != nil {
		t.Fatalf("sim run under guaranteed bounds failed: %v", err)
	}
	for _, trig := range app.Triggers {
		if n := b.Input(trig).Len(); n != 0 {
			t.Errorf("trigger %s: %d inputs left unconsumed (deadlock under guaranteed bounds?)", trig, n)
		}
	}
	for out, perTrigger := range app.DetOutputs {
		got := len(b.Output(out).Vals)
		if want := perTrigger * triggers; got != want {
			t.Errorf("output %s: delivered %d items, want %d", out, got, want)
		}
	}
	for name, ch := range b.Channels {
		if ch.MaxOccupancy > caps[name] {
			t.Errorf("channel %s: occupancy %d exceeded guaranteed bound %d", name, ch.MaxOccupancy, caps[name])
		}
	}
}

// TestParallelSerialDeterminism is the race/determinism check of the
// concurrent engine: synthesizing the same multi-task corpus app on the
// serial and parallel paths must yield byte-identical generated C and
// identical search statistics. Running under -race (the Makefile does)
// also exercises the pool for data races.
func TestParallelSerialDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinPipelines, cfg.MaxPipelines = 3, 5
	apps := GenerateCorpus(7, 6, cfg)
	for _, app := range apps {
		serial, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{Workers: 1, DisableCache: true})
		if err != nil {
			t.Fatalf("%s serial: %v", app.Name, err)
		}
		parallel, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{Workers: 8, DisableCache: true})
		if err != nil {
			t.Fatalf("%s parallel: %v", app.Name, err)
		}
		if len(serial.Schedules) != len(parallel.Schedules) {
			t.Fatalf("%s: schedule counts differ", app.Name)
		}
		for i := range serial.Schedules {
			if serial.Schedules[i].Stats.NodesKept != parallel.Schedules[i].Stats.NodesKept {
				t.Errorf("%s schedule %d: NodesKept %d vs %d", app.Name, i,
					serial.Schedules[i].Stats.NodesKept, parallel.Schedules[i].Stats.NodesKept)
			}
		}
		for name, code := range serial.Code {
			if parallel.Code[name] != code {
				t.Errorf("%s task %s: generated C differs between serial and parallel synthesis", app.Name, name)
			}
		}
	}
}

// TestRunBatch: results stay aligned with input order, failures are
// recorded per app, and the aggregate counters add up.
func TestRunBatch(t *testing.T) {
	apps := GenerateCorpus(11, 10, DefaultConfig())
	br := RunBatch(context.Background(), apps, BatchOptions{Workers: 4, Core: nocache()})
	if br.Failed != 0 {
		for _, r := range br.Results {
			if r.Err != nil {
				t.Errorf("%s: %v", r.App.Name, r.Err)
			}
		}
		t.Fatalf("%d corpus apps failed to synthesize", br.Failed)
	}
	wantScheds := 0
	for i, r := range br.Results {
		if r.App != apps[i] {
			t.Fatalf("result %d out of order", i)
		}
		wantScheds += len(apps[i].Triggers)
	}
	if br.Schedules != wantScheds {
		t.Errorf("aggregate schedules = %d, want %d", br.Schedules, wantScheds)
	}
	if br.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
}

// TestRunBatchCancelled: a cancelled context marks undispatched apps
// with the context error instead of hanging.
func TestRunBatchCancelled(t *testing.T) {
	apps := GenerateCorpus(13, 8, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br := RunBatch(ctx, apps, BatchOptions{Workers: 2, Core: nocache()})
	if br.Failed != len(apps) {
		t.Errorf("failed = %d, want all %d (pre-cancelled context)", br.Failed, len(apps))
	}
}

// TestGenerateShapeKnobs: degenerate configs stay valid.
func TestGenerateShapeKnobs(t *testing.T) {
	cfg := Config{
		MinPipelines: 1, MaxPipelines: 1,
		MinStages: 1, MaxStages: 1,
		MaxFanOut: 1, MaxOps: 1, MaxWidth: 1,
	}
	app := Generate(rand.New(rand.NewSource(3)), "tiny", cfg)
	if app.Procs != 1 {
		t.Fatalf("procs = %d, want 1", app.Procs)
	}
	if _, err := core.Synthesize(app.FlowC, app.Spec, nocache()); err != nil {
		t.Fatalf("tiny app: %v", err)
	}
}
