package petri

import "testing"

func TestExploreBounded(t *testing.T) {
	n := simpleNet(t)
	// Without sources: nothing fires from the initial marking.
	r := n.Explore(ExploreOptions{FireSources: false})
	if len(r.Markings) != 1 {
		t.Errorf("markings without sources = %d, want 1", len(r.Markings))
	}
	// With sources and a token cap, the space closes.
	r = n.Explore(ExploreOptions{FireSources: true, MaxTokensPerPlace: 4})
	if len(r.Markings) < 3 {
		t.Errorf("markings with sources = %d, want several", len(r.Markings))
	}
	if !r.Truncated {
		t.Error("cap should truncate the infinite source-driven space")
	}
}

func TestExploreMaxMarkings(t *testing.T) {
	n := simpleNet(t)
	r := n.Explore(ExploreOptions{FireSources: true, MaxMarkings: 2, MaxTokensPerPlace: 10})
	if len(r.Markings) > 2 {
		t.Errorf("markings = %d, exceeds limit 2", len(r.Markings))
	}
	if !r.Truncated {
		t.Error("limit should mark the result truncated")
	}
}

func TestDeadlockMarkings(t *testing.T) {
	n := New("dead")
	p := n.AddPlace("p", PlaceInternal, 1)
	q := n.AddPlace("q", PlaceInternal, 0)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 1)
	n.AddArcTP(tr, q, 1)
	r := n.Explore(ExploreOptions{})
	dead := r.DeadlockMarkings()
	if len(dead) != 1 {
		t.Fatalf("deadlocks = %v, want exactly the final marking", dead)
	}
}

func TestCoEnabled(t *testing.T) {
	n := choiceNet(t)
	r := n.Explore(ExploreOptions{})
	// t1 and t2 share the equal-choice place: co-enabled.
	co, err := n.CoEnabled(r, 0, 1)
	if err != nil || !co {
		t.Errorf("t1/t2 co-enabled = %v (%v), want true", co, err)
	}
	// r1 and r2 consume distinct internal places (only pc1 marked).
	co, err = n.CoEnabled(r, 2, 3)
	if err != nil || co {
		t.Errorf("r1/r2 co-enabled = %v (%v), want false", co, err)
	}
	if _, err := n.CoEnabled(r, 0, 99); err == nil {
		t.Error("out-of-range index should error")
	}
}
