// Package repro reproduces "Task Generation and Compile-Time Scheduling
// for Mixed Data-Control Embedded Software" (Cortadella et al., DAC
// 2000): a complete quasi-static scheduling flow from FlowC process
// networks to synthesized software tasks, plus the simulation substrate
// that regenerates the paper's evaluation.
//
// The implementation lives under internal/ (petri, flowc, compile, link,
// sched, codegen, sim, core, corpus); command-line tools under cmd/;
// runnable examples under examples/. The root holds the benchmark
// harness for the paper's tables and figures (bench_test.go) and the
// Makefile driving CI (build, vet, race tests, one-shot benchmarks, the
// cmd/benchdiff regression gate against bench_baseline.json, and a fuzz
// smoke pass replaying the corpora checked in under testdata/fuzz). The
// same pipeline runs on every push/PR via .github/workflows/ci.yml.
//
// # Marking identity
//
// Every schedule-search engine keys its visited set by marking. Marking
// identity is hash-consed: petri.MarkingStore interns each distinct
// token vector once behind a dense uint32 petri.MarkID (FNV-1a over the
// vector, open-addressing table), and the engines fire transitions into
// a reused scratch buffer (petri.Marking.FireInto), so the inner loop
// of a search performs zero allocations per fired transition —
// revisiting a known marking costs a hash and a table probe. A MarkID
// is meaningful only relative to the store that issued it and is valid
// for the store's lifetime; markings returned by MarkingStore.At are
// read-only views that survive later interning. Replacing the previous
// string-keyed maps cut cold PFC synthesis from ~249ms/1.04M allocs to
// ~49ms/4k allocs per run on the reference container (5.1x / 253x) and
// is what allows the corpus generator to double its per-edge burst cap.
//
// # Incremental enablement
//
// Exploration loops used to re-test the entire equal-conflict
// partition at every visited marking. petri.EnabledTracker replaces
// that with incremental maintenance: a once-per-net place->ECS reverse
// index identifies the few ECSs whose presets intersect the places a
// firing actually changes, and per-state enabled sets are bitsets
// derived from the parent state's. The reachability explorer
// (petri.Explore), the scheduler's marking-graph engine and the EP/
// EP_ECS tree engines all expand states by iterating their enabled-set
// bits instead of scanning the partition.
//
// # Concurrency and caching
//
// Parallelism is two-level: sources x frontier. At the source level,
// the per-source schedule searches of one system run on a bounded
// worker pool (core.Options.Workers) with deterministic result
// ordering and first-error cancellation via context
// (core.SynthesizeContext, core.SynthesizeSystemContext). At the
// frontier level, each search's own state-space exploration fans out
// across cores (core.Options.ExploreWorkers / sched.Options.
// ExploreWorkers): petri.RunFrontier explores one BFS level at a time
// — parallel fire+hash over frontier chunks, parallel per-shard
// deduplication through the striped petri.ShardedStore, then a cheap
// sequential merge that assigns dense MarkIDs in first-discovery
// order — so state numbering, schedules and generated code are
// byte-identical for every worker count. core wires the two levels
// into one GOMAXPROCS budget: many sources keep the frontier serial, a
// single-source system gets every core at the frontier. Results are
// memoized in a content-addressed cache keyed by FlowC source, netlist
// and options (worker counts excluded — they cannot change the
// result), so repeated synthesis of an unchanged app costs a hash and
// a map lookup (core.Stats reports hit rates; core.ResetCache empties
// it).
//
// # Distributed exploration
//
// The third execution strategy takes the frontier across process
// boundaries (internal/dist): a deterministic coordinator in the
// synthesizing process drives worker OS processes — spawned locally by
// re-executing the current binary (dist.SpawnLocal + dist.MaybeWorker)
// or started anywhere as cmd/qssd and dialed in over unix sockets or
// TCP (dist.Listen, core.Options.DistEndpoint) — through a
// length-prefixed binary protocol. Workers own contiguous ranges of
// marking-hash shards (petri.ShardOfHash/ShardOwner, the same
// top-FNV-bits function the in-process petri.ShardedStore stripes by,
// so shard ownership maps one-to-one onto the ShardedStore's routing).
// By default replicas are TRIMMED: a worker holds vectors, hashes and
// enabled bitsets only for its owned shards — per-worker memory scales
// ~1/N with the pool, which is what takes state spaces beyond one
// machine's RAM — and the coordinator sends it just the per-level
// petri.VecDelta records whose child it owns, attaching the parent's
// token vector when the parent lives in another worker's shards
// (deduplicated by a bounded LRU both sides run in lockstep, so a hot
// boundary parent ships once per residency). Successors routing to
// foreign shards are reported as new and resolved by the coordinator.
// The full-replica fallback (core.Options.DistFullReplicas,
// dist.Pool.SetFullReplicas, cmd/qssd -full-replicas) instead
// broadcasts compact petri.Delta batches (parent MarkID + fired
// transition — the steady state ships no token vectors) from which
// every worker rebuilds the whole store, trading memory parity with
// the coordinator for fully local successor classification. In either
// mode workers answer with candidate streams classifying each
// successor as vetoed, known (dense global MarkID) or new — at
// protocol 3 a new candidate also carries the successor's 64-bit
// marking hash, which lets the coordinator resolve duplicates by a
// hash-only store probe instead of re-firing the transition itself
// (it fires exactly once per state it actually materializes). The
// session is pipelined rather than barriered: workers push their
// candidate streams in bounded ack'd chunks as they expand, the
// coordinator merges each worker's slice of a level while later
// slices are still in flight, and intra-level record batches plus an
// explicit level-commit message let workers start expanding level L+1
// while the coordinator is still merging the tail of L. None of this
// moves the determinism contract: the coordinator's merge
// is petri.RunFrontier's sequential phase C verbatim (one shared
// petri.MergeHooks definition), walking states in MarkID order and
// candidates in the serial emit order, so dense MarkID assignment —
// and therefore ReachResult ordering, schedules and generated C — is
// byte-identical for every process count, every in-process worker
// count, and the plain serial loop, no matter how late any worker's
// stream arrives. Exploration semantics travel as a
// self-contained petri.ExpandSpec (fireable-ECS mask + place caps) and
// the net itself crosses the wire through petri.AppendNet/DecodeNet,
// which round-trips exactly the structure firing, ECS partitioning and
// the enabled tracker depend on. The matrix test
// (internal/dist, `make dist-matrix`, its own CI job) pins generated C
// across {serial, ExploreWorkers 1/4/8, trimmed worker processes
// 1/2/4, full-replica processes} plus a 50-app corpus sweep with real
// spawned processes under -race; `make dist-memory` gates per-worker
// store bytes at <= 0.75x the full-replica baseline for 2 workers
// (exact live counts, machine-independent); BenchmarkExploreDist
// documents the per-level protocol overhead,
// BenchmarkExploreDistTrimmed the ~1/N per-worker memory curve and
// BenchmarkExploreDistPipelined the streaming session (coordinator
// fire counts, chunk counts, received bytes per level) on the
// 161k-state net.
//
// # Frozen store tier (beyond-RAM exploration)
//
// Level-synchronous exploration gives marking lifetimes a shape the
// store can exploit: once a BFS level has been merged, its states can
// be rediscovered (a dedup probe) but never re-expanded, so their
// token vectors are cold from that moment on. With
// petri.ExploreOptions.FreezeLevels (core.Options.FreezeLevels,
// sched.Options.FreezeLevels, -freeze-levels on the cmd tools) the
// store freezes each closed level out of the hot arena into an
// append-only on-disk segment of delta records — parent MarkID +
// fired transition reconstructs a vector from its parent, the same
// insight the dist wire format exploits; roots and states whose
// parent cannot serve as a delta base are stored verbatim. The
// segment lives in an unlinked temp file and is read back by mmap
// (with a pread fallback where mmap is unavailable); only the hashes,
// the open-addressing probe table and one segment offset per state
// stay resident, so the hot store no longer scales with the marking
// width. MarkingStore.At is unchanged for callers: an id below the
// frozen boundary thaws transparently — the parent chain is walked
// back to a hot, cached or verbatim base and the deltas are replayed
// forward, with a bounded FIFO cache memoizing thawed vectors and
// every 16th chain ancestor so probe-heavy workloads do not replay
// long chains repeatedly. Hash-alias handling is unaffected: the
// vector-exact fallback reads frozen vectors through the same thawing
// path. MarkingStore.Mem reports the split (StoreMem.HotBytes /
// FrozenBytes — exact, machine-independent counts; the single source
// for sched.SearchStats.StoreHotBytes/StoreFrozenBytes,
// dist.WorkerMem and the server's qss_store_hot_bytes /
// qss_store_frozen_bytes gauges). The serial explorer, the graph
// engine and RunFrontier freeze at each level commit
// (petri.MergeHooks.LevelClosed); dist workers freeze their replicas
// below each committed level, and the whole thing composes with
// trimmed replicas — per-worker hot memory scales ~1/N AND sheds its
// vectors. Freezing never changes results: `make store-frozen` (its
// own CI step) pins byte-identical reachability on the 161k-state
// ExploreLarge net with hot residency gated at <= 0.35x the all-hot
// store by exact byte accounting, the determinism matrix and a 50-app
// corpus sweep run frozen configurations, and a nightly beyond-RAM
// sweep freezes the heavy corpus end to end. Failures (temp-file or
// write errors) silently revert to all-hot — identical results,
// larger residency. Tree engines (EP/EP_ECS) are not
// level-synchronous and ignore the option.
//
// # Failure model
//
// Determinism is also what makes worker failure survivable: any
// correct re-execution produces the same bytes, so the coordinator may
// freely restart, replace or abandon workers mid-session (dist
// protocol 4). Liveness is heartbeat-probed (msgPing/msgPong plus
// read/write deadlines), so a silently dead or wedged worker is
// unmasked within a bounded interval even while its TCP connection
// looks healthy. On a death the coordinator pauses at the last
// committed BFS level, quiesces the survivors, respawns a replacement
// process when it can (SpawnLocal pools; bounded retries with
// exponential backoff and jitter) — rebuilding its trimmed replica by
// streaming the owned store slice over msgRestore — or redistributes
// the dead worker's shards across the survivors, then replays the
// interrupted level discarding already-merged candidates by count.
// ReachResult, schedules and generated C stay byte-identical to a
// fault-free run. When recovery is exhausted the failure degrades
// rather than propagates: petri.ExploreOptions.DistFallback and
// sched.Options.DistFallback rerun the exploration in-process (core
// enables them unless core.Options.DistNoFallback), and
// dist.SessionStats/Pool.RecoveryStats report restarts, redistributed
// shards and degradation — surfaced by the server as
// qss_dist_worker_restarts_total and qss_dist_pool_degraded. The
// fault-injection matrix (`make dist-chaos`, its own CI job, a
// randomized-seed nightly sweep) drives kill/sever/delay faults
// through a seeded chaos conn shim and real SIGKILLed workers,
// asserting byte-identical output against serial for every fault
// point.
//
// # Resident service
//
// The warm path of the content-addressed cache (~10µs versus ~46ms
// cold on the PFC example) only pays off if the process holding it
// survives the request, so cmd/qss-server keeps one warm:
// internal/server multiplexes HTTP synthesis requests onto a single
// resident process where all requests share the one cache and,
// optionally, one persistent dist.Pool of worker processes reused
// session after session. Admission is bounded — a fixed number of
// concurrent synthesis slots plus a fixed-length waiting queue, with
// overflow answered 429 immediately — and every request runs under its
// own budgets (state-count cap and deadline, clamped to server
// configuration). POST /v1/synthesize returns the generated C
// byte-for-byte as the CLI would write it (golden-checked by the
// server smoke test, `make server-smoke`); GET /metrics exposes the
// cache, admission, latency and per-worker dist memory series in
// Prometheus text format; SIGTERM begins a graceful drain — readiness
// (GET /readyz) flips off, new work is refused, in-flight requests
// finish under a deadline, the pool closes once. docs/SERVER.md is the
// operations guide.
//
// # Scenario corpus
//
// Beyond the four hand-written applications of internal/apps, the
// internal/corpus package deterministically generates randomized-but-
// valid FlowC process networks with auto-derived netlists, and
// cmd/qssbatch synthesizes whole corpora concurrently, reporting
// aggregate throughput. Property tests validate the paper's Definition
// 4.1 invariants and the guaranteed channel bounds over every generated
// app; fuzz targets (internal/flowc.FuzzParse, internal/petri.
// FuzzExplore) harden the front end and the reachability utilities.
package repro
