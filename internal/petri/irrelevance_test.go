package petri

import "testing"

func TestDegreeDefinition(t *testing.T) {
	n := New("deg")
	p := n.AddPlace("p", PlaceChannel, 0)
	q := n.AddPlace("q", PlaceChannel, 5) // initial marking dominates
	prod := n.AddTransition("prod", TransNormal)
	cons := n.AddTransition("cons", TransNormal)
	n.AddArcTP(prod, p, 3) // max input weight 3
	n.AddArc(p, cons, 2)   // max output weight 2
	n.AddArc(q, cons, 1)
	// degree(p) = 3 + 2 - 1 = 4.
	if got := n.Degree(p); got != 4 {
		t.Errorf("degree(p) = %d, want 4", got)
	}
	// degree(q) = max(0+1-1, 5) = 5.
	if got := n.Degree(q); got != 5 {
		t.Errorf("degree(q) = %d, want 5", got)
	}
	degs := n.Degrees()
	if degs[p.ID] != 4 || degs[q.ID] != 5 {
		t.Errorf("Degrees() = %v", degs)
	}
}

func TestDegreeIsolatedPlace(t *testing.T) {
	n := New("iso")
	p := n.AddPlace("p", PlaceChannel, 0)
	if got := n.Degree(p); got != 0 {
		t.Errorf("degree of isolated place = %d, want 0", got)
	}
}

func TestIrrelevantAgainst(t *testing.T) {
	degrees := []int{1, 2}
	cases := []struct {
		name   string
		m, anc Marking
		want   bool
	}{
		{"equal marking is not irrelevant", Marking{1, 1}, Marking{1, 1}, false},
		{"not covering", Marking{0, 3}, Marking{1, 1}, false},
		{"covering, ancestor saturated", Marking{2, 1}, Marking{1, 1}, true},
		{"covering, ancestor below degree", Marking{1, 2}, Marking{1, 1}, false},
		{"covering, ancestor at degree on grown place", Marking{1, 3}, Marking{1, 2}, true},
		{"strictly bigger everywhere, one unsaturated", Marking{2, 2}, Marking{1, 1}, false},
	}
	for _, c := range cases {
		if got := IrrelevantAgainst(c.m, c.anc, degrees); got != c.want {
			t.Errorf("%s: IrrelevantAgainst(%v, %v) = %v, want %v", c.name, c.m, c.anc, got, c.want)
		}
	}
}

func TestIrrelevantOverAncestorChain(t *testing.T) {
	degrees := []int{1}
	ancestors := []Marking{{0}, {1}}
	if !Irrelevant(Marking{2}, ancestors, degrees) {
		t.Error("2 tokens covering saturated ancestor 1 should be irrelevant")
	}
	if Irrelevant(Marking{1}, []Marking{{0}}, degrees) {
		t.Error("1 token covering unsaturated 0 should not be irrelevant")
	}
}

// TestFig7Narrative reproduces the irrelevance discussion of Figure 7:
// accumulating beyond a saturated place is pruned, but markings that
// exceed a degree without a saturated covering ancestor are kept.
func TestFig7Narrative(t *testing.T) {
	// One place of degree 2; path 0 -> 1 -> 2 -> 3.
	degrees := []int{2}
	chain := []Marking{{0}, {1}, {2}}
	// 3 covers 2 (saturated: 2 >= 2): irrelevant.
	if !Irrelevant(Marking{3}, chain, degrees) {
		t.Error("3 over saturated 2 should be irrelevant")
	}
	// 2 covers 1 (unsaturated: 1 < 2): kept, even though 2 == degree.
	if Irrelevant(Marking{2}, chain[:2], degrees) {
		t.Error("2 over unsaturated 1 should be kept")
	}
}
