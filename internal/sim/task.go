package sim

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
	"repro/internal/petri"
	"repro/internal/sched"
)

// TaskExec executes a synthesized task: it walks the schedule from await
// node to await node, pasting fragment execution for every fired
// transition. Intra-task channels are local buffers (the schedule
// guarantees they never overflow — the executor asserts it); only
// data-dependent choices are resolved at run time, by evaluating the
// choice conditions on live data, exactly as in the generated C.
type TaskExec struct {
	Sys  *link.System
	Task *codegen.Task
	Cost *CostModel

	Machine *Machine
	Inputs  map[string]*InputStream
	Outputs map[string]*OutputStream
	// Shared holds inter-task channels (keyed by channel name) when
	// several tasks coexist; intra-task channels are internal.
	Shared map[string]*Channel

	// Resolve handles data choices for nets without compiler fragments
	// (hand-built nets in tests); FlowC systems never need it.
	Resolve sched.ChoiceResolver

	// Triggers counts environment triggers served.
	Triggers int64

	scopes map[string]*Scope
	intra  map[int]*Channel // channel place ID -> local buffer
	cur    *sched.Node
	curSeg *codegen.Segment
	segOf  map[int]*codegen.Segment // ECS index -> segment containing it
	// rbuf is the channel-read scratch; see runner.rbuf in baseline.go.
	rbuf []int64
}

// NewTaskExec prepares execution of a generated task within its system.
func NewTaskExec(sys *link.System, task *codegen.Task, cost *CostModel) (*TaskExec, error) {
	te := &TaskExec{
		Sys:     sys,
		Task:    task,
		Cost:    cost,
		Machine: NewMachine(cost),
		Inputs:  map[string]*InputStream{},
		Outputs: map[string]*OutputStream{},
		Shared:  map[string]*Channel{},
		scopes:  map[string]*Scope{},
		intra:   map[int]*Channel{},
		segOf:   map[int]*codegen.Segment{},
	}
	for _, in := range sys.Inputs {
		te.Inputs[in.Spec.Name] = NewInputStream(in.Spec.Name)
	}
	for _, out := range sys.Outputs {
		te.Outputs[out.Spec.Name] = &OutputStream{Name: out.Spec.Name}
	}
	// Per-process scopes with hoisted declarations and startup inits.
	for _, cp := range sys.Procs {
		sc := NewScope()
		for _, v := range cp.InitVars {
			sc.Declare(v.Name, v.ArraySize)
			if v.Init != nil {
				iv, err := te.Machine.Eval(sc, v.Init)
				if err != nil {
					return nil, err
				}
				sc.Cell(v.Name)[0] = iv
			}
		}
		for _, st := range cp.InitStmts {
			if err := te.Machine.ExecPlain(sc, st); err != nil {
				return nil, err
			}
		}
		te.scopes[cp.Proc.Name] = sc
	}
	// Intra-task buffers sized by the schedule's place bounds; the
	// capacity doubles as an assertion of the static bound.
	bounds := task.Schedule.PlaceBounds()
	for pid := range task.IntraChannels(&codegen.SynthOptions{Sys: sys}) {
		sz := bounds[pid]
		if sz < 1 {
			sz = 1
		}
		te.intra[pid] = NewChannel(task.Net.Places[pid].Name, sz)
	}
	// Map every ECS to its segment for Goto accounting.
	for _, seg := range task.Segments {
		var walk func(n *codegen.SegNode)
		walk = func(n *codegen.SegNode) {
			te.segOf[n.ECS.Index] = seg
			for _, e := range n.Edges {
				if e.Child != nil {
					walk(e.Child)
				}
			}
		}
		walk(seg.Root)
	}
	te.cur = task.Schedule.Root
	te.curSeg = task.Segments[0]
	return te, nil
}

// Input returns the stream of the named environment input.
func (te *TaskExec) Input(name string) *InputStream { return te.Inputs[name] }

// Output returns the stream of the named environment output.
func (te *TaskExec) Output(name string) *OutputStream { return te.Outputs[name] }

// Scope exposes the variable scope of a process (for tests).
func (te *TaskExec) Scope(proc string) *Scope { return te.scopes[proc] }

// IntraBounds returns the local buffer sizes keyed by channel place ID.
func (te *TaskExec) IntraBounds() map[int]int {
	out := map[int]int{}
	for pid, ch := range te.intra {
		out[pid] = ch.Capacity
	}
	return out
}

// sourceInputName returns the environment input bound to the task's
// uncontrollable source transition.
func (te *TaskExec) sourceInputName() string {
	for _, in := range te.Sys.Inputs {
		if in.Trans.ID == te.Task.Source {
			return in.Spec.Name
		}
	}
	return ""
}

// Trigger serves one environment occurrence of the task's source,
// walking the schedule to the next await node. vals are the data items
// produced by the environment at the triggering port.
func (te *TaskExec) Trigger(vals ...int64) error {
	if name := te.sourceInputName(); name != "" {
		te.Inputs[name].Push(vals...)
	}
	te.Triggers++
	m := te.Machine
	m.Charge(m.Cost.Dispatch)
	s := te.Task.Schedule
	n := te.cur
	if !s.IsAwait(n) {
		return fmt.Errorf("sim: task %s resumed at non-await node %d", te.Task.Name, n.ID)
	}
	// Fire the source edge itself.
	n = n.Edges[0].To
	for !s.IsAwait(n) {
		k, err := te.pickEdge(n)
		if err != nil {
			return err
		}
		e := n.Edges[k]
		if err := te.fire(e.Trans); err != nil {
			return err
		}
		n = e.To
	}
	te.cur = n
	return nil
}

// pickEdge resolves the out-edge to follow at a schedule node.
func (te *TaskExec) pickEdge(n *sched.Node) (int, error) {
	if len(n.Edges) == 1 {
		return 0, nil
	}
	// Data-dependent choice: evaluate the condition of the choice place.
	t0 := te.Task.Net.Transitions[n.Edges[0].Trans]
	for _, a := range t0.In {
		p := te.Task.Net.Places[a.Place]
		ci, ok := p.Cond.(*compile.ChoiceInfo)
		if !ok || ci.Kind != compile.ChoiceData {
			continue
		}
		te.Machine.Charge(te.Machine.Cost.Branch)
		v, err := te.Machine.EvalBool(te.scopes[t0.Process], ci.Cond)
		if err != nil {
			return 0, err
		}
		want := "F"
		if v {
			want = "T"
		}
		for i, e := range n.Edges {
			if te.Task.Net.Transitions[e.Trans].Label == want {
				return i, nil
			}
		}
		return 0, fmt.Errorf("sim: node %d has no %s branch", n.ID, want)
	}
	if te.Resolve != nil {
		return te.Resolve(te.Task.Schedule, n), nil
	}
	return 0, fmt.Errorf("sim: node %d: unresolvable %d-way choice", n.ID, len(n.Edges))
}

// fire executes the fragment of one transition, charging jump overhead
// when control crosses into another code segment.
func (te *TaskExec) fire(tid int) error {
	m := te.Machine
	// Inter-segment jump accounting (the goto + state switch of the
	// generated ISR).
	if seg := te.segOf[te.Task.ECSIdx[tid]]; seg != nil && seg != te.curSeg {
		m.Charge(m.Cost.Goto)
		te.curSeg = seg
	}
	t := te.Task.Net.Transitions[tid]
	switch t.Kind {
	case petri.TransSourceUnc, petri.TransSourceCtl, petri.TransSink:
		// Environment transitions move tokens, not data; the data moves
		// in the READ/WRITE fragments.
		return nil
	}
	frag, ok := t.Code.(*compile.Fragment)
	if !ok {
		return nil // hand-built nets carry no code
	}
	sc := te.scopes[frag.Process]
	for _, st := range frag.Stmts {
		switch x := st.(type) {
		case *flowc.Read:
			if err := te.execRead(sc, frag.Process, x); err != nil {
				return err
			}
		case *flowc.Write:
			if err := te.execWrite(sc, frag.Process, x); err != nil {
				return err
			}
		default:
			if err := m.ExecPlain(sc, st); err != nil {
				return err
			}
		}
	}
	return nil
}

func (te *TaskExec) execRead(sc *Scope, proc string, x *flowc.Read) error {
	bd := te.Sys.PortBinding(proc, x.Port)
	if bd == nil {
		return fmt.Errorf("sim: %s.%s unbound", proc, x.Port)
	}
	m := te.Machine
	var vals []int64
	var err error
	switch bd.Kind {
	case link.BindChannel:
		pid := bd.Channel.Place.ID
		if cap(te.rbuf) < x.NItems {
			te.rbuf = make([]int64, x.NItems)
		}
		if ch := te.intra[pid]; ch != nil {
			vals = te.rbuf[:x.NItems]
			err = ch.ReadInto(vals, x.NItems)
			m.Charge(m.Cost.LocalItem * int64(x.NItems))
		} else if ch := te.Shared[bd.Channel.Spec.Name]; ch != nil {
			vals = te.rbuf[:x.NItems]
			err = ch.ReadInto(vals, x.NItems)
			m.Charge(m.Cost.commCall(true) + m.Cost.CommItem*int64(x.NItems))
		} else {
			err = fmt.Errorf("sim: channel %s is neither intra-task nor shared", bd.Channel.Spec.Name)
		}
	case link.BindEnvIn:
		in := te.Inputs[bd.Input.Spec.Name]
		vals, err = in.Pop(x.NItems)
		m.Charge(m.Cost.EnvCall + m.Cost.EnvItem*int64(x.NItems))
	default:
		err = fmt.Errorf("sim: READ_DATA on non-input binding %s.%s", proc, x.Port)
	}
	if err != nil {
		return fmt.Errorf("sim: task %s: %v (schedule bound violated?)", te.Task.Name, err)
	}
	return storeRead(sc, x, vals)
}

func (te *TaskExec) execWrite(sc *Scope, proc string, x *flowc.Write) error {
	bd := te.Sys.PortBinding(proc, x.Port)
	if bd == nil {
		return fmt.Errorf("sim: %s.%s unbound", proc, x.Port)
	}
	m := te.Machine
	vals, err := te.loadWrite(sc, x)
	if err != nil {
		return err
	}
	switch bd.Kind {
	case link.BindChannel:
		pid := bd.Channel.Place.ID
		if ch := te.intra[pid]; ch != nil {
			if err := ch.Write(vals); err != nil {
				return fmt.Errorf("sim: task %s: %v (schedule bound violated?)", te.Task.Name, err)
			}
			m.Charge(m.Cost.LocalItem * int64(len(vals)))
		} else if ch := te.Shared[bd.Channel.Spec.Name]; ch != nil {
			if err := ch.Write(vals); err != nil {
				return err
			}
			m.Charge(m.Cost.commCall(true) + m.Cost.CommItem*int64(len(vals)))
		} else {
			return fmt.Errorf("sim: channel %s is neither intra-task nor shared", bd.Channel.Spec.Name)
		}
	case link.BindEnvOut:
		te.Outputs[bd.Output.Spec.Name].Append(vals...)
		m.Charge(m.Cost.EnvCall + m.Cost.EnvItem*int64(len(vals)))
	default:
		return fmt.Errorf("sim: WRITE_DATA on non-output binding %s.%s", proc, x.Port)
	}
	return nil
}

func (te *TaskExec) loadWrite(sc *Scope, x *flowc.Write) ([]int64, error) {
	if id, ok := x.Src.(*flowc.Ident); ok {
		cell := sc.Cell(id.Name)
		if len(cell) >= x.NItems {
			out := make([]int64, x.NItems)
			copy(out, cell)
			return out, nil
		}
	}
	if x.NItems != 1 {
		return nil, fmt.Errorf("sim: WRITE_DATA of %d items requires an array source", x.NItems)
	}
	v, err := te.Machine.Eval(sc, x.Src)
	if err != nil {
		return nil, err
	}
	return []int64{v}, nil
}
