// Package compile translates FlowC processes into Petri nets following
// Section 3 of the paper: leader analysis partitions the sequential code
// into portions, each portion becomes a transition, data-dependent
// control becomes Equal-Choice places, ports become places, and SELECT
// becomes synchronization-dependent choice realized with read arcs.
//
// CompileProcess is the entry point: one flowc.Process in, one
// CompiledProcess out — the process's Petri net plus the code fragment
// attached to each transition, which is what link stitches into a
// system net and codegen later emits as C. Leader selection
// (leaders.go) follows the Section 3.1 rules; fragment extraction
// (fragment.go) keeps the source text of each portion so the generated
// task reproduces the user's computations verbatim.
package compile

import (
	"strings"

	"repro/internal/flowc"
)

// Fragment is the payload attached to a transition: the portion of
// sequential code executed when the transition fires. READ_DATA and
// WRITE_DATA statements inside the fragment correspond one-to-one to the
// transition's port arcs.
type Fragment struct {
	Process string
	Stmts   []flowc.Stmt
}

// IsSilent reports whether the fragment carries no code (an ε transition).
func (f *Fragment) IsSilent() bool { return f == nil || len(f.Stmts) == 0 }

// Source renders the fragment as C-like source.
func (f *Fragment) Source() string {
	if f == nil {
		return ""
	}
	var sb strings.Builder
	for _, s := range f.Stmts {
		sb.WriteString(flowc.FormatStmt(s, 0))
	}
	return sb.String()
}

// ChoiceKind distinguishes the two kinds of choice place the compiler
// introduces.
type ChoiceKind int

const (
	// ChoiceData is a data-dependent control (if / while / for): the
	// successor transitions form one ECS and carry T/F labels; the
	// schedule must survive either resolution.
	ChoiceData ChoiceKind = iota
	// ChoiceSelect is a SELECT: successors have distinct presets
	// (availability tests) and the scheduler may commit to one.
	ChoiceSelect
)

// ChoiceInfo is the payload attached to a choice place.
type ChoiceInfo struct {
	Kind ChoiceKind
	// Cond is the boolean condition for ChoiceData.
	Cond flowc.Expr
	// Sel is the originating construct for ChoiceSelect; arm order is
	// the run-time priority order.
	Sel *flowc.Select
}

// SelectArmRef records that a transition is the entry of SELECT arm Index
// on the given port requiring NItems (tokens for In ports, free slots for
// Out ports). Out-port arms are fixed up by the linker, which owns the
// complement places of bounded channels.
type SelectArmRef struct {
	Trans  int
	Port   string
	NItems int
	Index  int
}
