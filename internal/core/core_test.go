package core

import (
	"strings"
	"testing"
)

// twoTaskSrc wires two independent trigger/worker pipelines in one
// system: linking produces two uncontrollable sources, so the flow must
// generate two independent tasks.
const twoTaskSrc = `
PROCESS w1 (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v * 2, 1);
  }
}

PROCESS w2 (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v + 100, 1);
  }
}
`

const twoTaskSpec = `
system twotask
input go1 -> w1.go uncontrollable
input go2 -> w2.go uncontrollable
output w1.out -> o1
output w2.out -> o2
`

func TestTwoIndependentTasks(t *testing.T) {
	r, err := Synthesize(twoTaskSrc, twoTaskSpec, nil)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(r.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(r.Tasks))
	}
	// Independence holds and no channels are shared.
	if len(r.SharedChannels) != 0 {
		t.Errorf("shared channels = %v, want none", r.SharedChannels)
	}
	names := map[string]bool{}
	for _, task := range r.Tasks {
		names[task.Name] = true
		if code := r.Code[task.Name]; !strings.Contains(code, "_ISR") {
			t.Errorf("%s: generated code missing ISR", task.Name)
		}
	}
	if !names["task_go1"] || !names["task_go2"] {
		t.Errorf("task names = %v", names)
	}
}

// pipelinedTasksSrc: two uncontrollable triggers drive two processes
// that share a channel — the schedules both touch it, so it must be
// reported shared and kept a real channel.
const sharedChanSrc = `
PROCESS w (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v, 1);
  }
}

PROCESS r (In DPORT tick, In DPORT in, Out DPORT res) {
  int v, u;
  while (1) {
    READ_DATA(tick, &u, 1);
    READ_DATA(in, &v, 1);
    WRITE_DATA(res, v + u, 1);
  }
}
`

const sharedChanSpec = `
system sharedchan
channel C w.out -> r.in
input go -> w.go uncontrollable
input tick -> r.tick uncontrollable
output r.res -> res
`

func TestCrossTaskChannelRejected(t *testing.T) {
	// A channel written by one task and drained by another cannot appear
	// in a set of single-source schedules: the writer's schedule would
	// terminate with a token it cannot remove (it may not fire the other
	// task's trigger), so it can never return to the initial marking.
	// The flow must reject the system rather than synthesize tasks with
	// unsound buffer bounds.
	_, err := Synthesize(sharedChanSrc, sharedChanSpec, nil)
	if err == nil {
		t.Fatalf("cross-task channel system should be rejected")
	}
	if !strings.Contains(err.Error(), "no schedule") && !strings.Contains(err.Error(), "independent") {
		t.Errorf("unexpected rejection reason: %v", err)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	// Parse error in FlowC.
	if _, err := Synthesize("PROCESS broken {", twoTaskSpec, nil); err == nil {
		t.Error("broken FlowC should fail")
	}
	// Parse error in the netlist.
	if _, err := Synthesize(twoTaskSrc, "junk directive", nil); err == nil {
		t.Error("broken netlist should fail")
	}
	// No uncontrollable inputs.
	spec := `
system s
input go1 -> w1.go controllable
input go2 -> w2.go controllable
output w1.out -> o1
output w2.out -> o2
`
	if _, err := Synthesize(twoTaskSrc, spec, nil); err == nil ||
		!strings.Contains(err.Error(), "uncontrollable") {
		t.Errorf("system without triggers should fail, got %v", err)
	}
}

func TestResultAccessors(t *testing.T) {
	r, err := Synthesize(twoTaskSrc, twoTaskSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.TaskByName("task_go1") == nil {
		t.Error("TaskByName(task_go1) = nil")
	}
	if r.TaskByName("nope") != nil {
		t.Error("TaskByName(nope) should be nil")
	}
	if got := r.ChannelBound("nope"); got != -1 {
		t.Errorf("ChannelBound(nope) = %d, want -1", got)
	}
}

func TestGeneratedCodeCompilesStructurally(t *testing.T) {
	// Light structural sanity of generated C: balanced braces, one init
	// and one ISR per task, no unresolved placeholders.
	r, err := Synthesize(twoTaskSrc, twoTaskSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, code := range r.Code {
		if strings.Count(code, "{") != strings.Count(code, "}") {
			t.Errorf("%s: unbalanced braces", name)
		}
		if !strings.Contains(code, name+"_init") || !strings.Contains(code, name+"_ISR") {
			t.Errorf("%s: missing init or ISR", name)
		}
		if strings.Contains(code, "internal error") || strings.Contains(code, "/*?") {
			t.Errorf("%s: generated code contains placeholders:\n%s", name, code)
		}
	}
}
