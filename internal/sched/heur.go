package sched

import (
	"sort"

	"repro/internal/compile"
	"repro/internal/linalg"
	"repro/internal/petri"
)

// OrderContext is the information available to an ECS ordering heuristic
// at one search node. Engines reuse one context across nodes: Fired and
// Path alias engine-owned buffers and are only valid for the duration of
// the Sort call.
type OrderContext struct {
	Net     *petri.Net
	Marking petri.Marking
	Fired   []int // per-transition fire counts on the path from root
	Source  int
	// Path holds the markings on the search path from the root to the
	// current node inclusive (root first); order is what termination
	// lookaheads need, membership is what matters.
	Path []petri.Marking
	// Scratch is a firing buffer orderings may reuse (via FireInto) for
	// lookahead, keeping Sort allocation-free across calls.
	Scratch petri.Marking
}

// ECSOrder sorts the enabled ECSs at a node; the search explores them in
// the returned order, so good orderings find entering points sooner and
// keep schedules small (Section 5.5).
type ECSOrder interface {
	Sort(ctx *OrderContext, enabled []*petri.ECS) []*petri.ECS
}

// NaiveOrder explores ECSs in partition order — the baseline for the
// heuristic ablation benchmarks.
type NaiveOrder struct{}

// Sort implements ECSOrder.
func (NaiveOrder) Sort(_ *OrderContext, enabled []*petri.ECS) []*petri.ECS { return enabled }

// TInvariantOrder implements the heuristic of Section 5.5.2: a promising
// vector derived from the T-invariant base (selected by binate covering
// against the pseudo-enabled-ECS necessary condition of Theorem 5.3)
// steers the search toward short return paths. Ties are broken by the
// three rules of Section 5.5.2: avoid children that trigger the
// termination condition, avoid source transitions, and prefer
// single-transition ECSs.
type TInvariantOrder struct {
	net    *petri.Net
	source int
	term   Termination
	base   []linalg.Vector
	// part caches the net's ECS partition: coverRows needs it at every
	// node and recomputing it rebuilt preset-key strings per transition
	// per node.
	part []*petri.ECS
	// procOf maps transition ID to its process name ("" for environment
	// transitions).
	procOf []string
	// HasBase reports whether the net admits any T-invariant containing
	// the source; when false the paper's necessary condition already
	// rules out a schedule.
	HasBase bool
}

// NewTInvariantOrder computes the T-invariant base of the net and
// prepares the heuristic for the given source transition.
func NewTInvariantOrder(n *petri.Net, source int, term Termination) *TInvariantOrder {
	o := &TInvariantOrder{net: n, source: source, term: term, part: n.ECSPartition()}
	o.base = linalg.TInvariantBasis(n.IncidenceMatrix())
	for _, b := range o.base {
		if b[source] > 0 {
			o.HasBase = true
			break
		}
	}
	o.procOf = make([]string, len(n.Transitions))
	for i, t := range n.Transitions {
		o.procOf[i] = t.Process
	}
	return o
}

// promisingVector selects a candidate invariant (a subset of the base
// summed together) satisfying the necessary condition of Theorem 5.3 at
// the given marking, and returns its transition-count vector. A nil
// result means no guidance is available.
func (o *TInvariantOrder) promisingVector(ctx *OrderContext) linalg.Vector {
	if len(o.base) == 0 {
		return nil
	}
	// Seed: invariants that fire the schedule's source.
	var seed []int
	for i, b := range o.base {
		if b[o.source] > 0 {
			seed = append(seed, i)
		}
	}
	rows := o.coverRows(ctx.Marking)
	sel, ok := linalg.BinateCover(len(o.base), rows, seed)
	if !ok || len(sel) == 0 {
		sel = seed
	}
	if len(sel) == 0 {
		return nil
	}
	pv := make(linalg.Vector, len(o.net.Transitions))
	for _, i := range sel {
		pv = pv.Add(o.base[i])
	}
	// Subtract what already fired on the path: transitions whose quota
	// in the invariant is exhausted stop being promising.
	for t := range pv {
		pv[t] -= ctx.Fired[t]
		if pv[t] < 0 {
			pv[t] = 0
		}
	}
	if pv.IsZero() {
		// The invariant has been fully fired; restart guidance from the
		// plain candidate.
		pv = make(linalg.Vector, len(o.net.Transitions))
		for _, i := range sel {
			pv = pv.Add(o.base[i])
		}
	}
	return pv
}

// coverRows builds the binate covering rows for Theorem 5.3: for every
// pseudo-enabled ECS E at m and every base invariant b such that the
// process of E appears in b but no transition of E does, selecting b
// requires selecting some invariant that does fire E.
func (o *TInvariantOrder) coverRows(m petri.Marking) []linalg.BinateRow {
	var rows []linalg.BinateRow
	for _, E := range o.part {
		if E.IsSourceECS(o.net) {
			continue
		}
		if !o.pseudoEnabled(E, m) {
			continue
		}
		proc := o.procOf[E.Trans[0]]
		if proc == "" {
			continue
		}
		// Invariants that fire some transition of E.
		var pos []int
		for i, b := range o.base {
			for _, t := range E.Trans {
				if b[t] > 0 {
					pos = append(pos, i)
					break
				}
			}
		}
		for i, b := range o.base {
			if containsInt(pos, i) {
				continue
			}
			if o.processAppears(b, proc) {
				rows = append(rows, linalg.BinateRow{Pos: pos, Neg: []int{i}})
			}
		}
	}
	return rows
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// pseudoEnabled reports whether the ECS is pseudo-enabled at m: some
// non-channel predecessor place of its transitions is marked.
func (o *TInvariantOrder) pseudoEnabled(E *petri.ECS, m petri.Marking) bool {
	for _, a := range o.net.Transitions[E.Trans[0]].In {
		p := o.net.Places[a.Place]
		if p.Kind == petri.PlaceInternal && m[a.Place] > 0 {
			return true
		}
	}
	return false
}

func (o *TInvariantOrder) processAppears(b linalg.Vector, proc string) bool {
	for t, v := range b {
		if v > 0 && o.procOf[t] == proc {
			return true
		}
	}
	return false
}

// Sort implements ECSOrder.
func (o *TInvariantOrder) Sort(ctx *OrderContext, enabled []*petri.ECS) []*petri.ECS {
	if len(enabled) <= 1 {
		return enabled
	}
	pv := o.promisingVector(ctx)
	type scored struct {
		e   *petri.ECS
		key [5]int
	}
	items := make([]scored, 0, len(enabled))
	for _, E := range enabled {
		var k [5]int
		// 0: promising-vector miss (0 = some transition promising).
		k[0] = 1
		if pv != nil {
			for _, t := range E.Trans {
				if pv[t] > 0 {
					k[0] = 0
					break
				}
			}
		}
		// 1: one-step lookahead — does any child trigger termination?
		// ctx.Path already includes the current marking, and Scratch
		// keeps the fired child off the heap.
		for _, t := range E.Trans {
			tr := o.net.Transitions[t]
			if !ctx.Marking.Enabled(tr) {
				continue
			}
			ctx.Scratch = ctx.Marking.FireInto(ctx.Scratch, tr)
			if o.term.Prune(ctx.Scratch, ctx.Path) {
				k[1] = 1
				break
			}
		}
		// 2: source transitions last (fire a source only when nothing
		// else helps).
		if E.IsUncontrollable(o.net) {
			k[2] = 2
		} else if E.IsSourceECS(o.net) {
			k[2] = 1
		}
		// 3: prefer single-transition ECSs.
		if len(E.Trans) > 1 {
			k[3] = 1
		}
		// 4: determinism.
		k[4] = E.Index
		items = append(items, scored{e: E, key: k})
	}
	sort.SliceStable(items, func(i, j int) bool {
		for x := 0; x < len(items[i].key); x++ {
			if items[i].key[x] != items[j].key[x] {
				return items[i].key[x] < items[j].key[x]
			}
		}
		return false
	})
	out := make([]*petri.ECS, len(items))
	for i, it := range items {
		out[i] = it.e
	}
	return out
}

// SelectPriorityOrder wraps another order and, among SELECT alternatives
// of the same choice place, prefers the arm with the highest declared
// priority (lowest arm index) — matching the run-time resolution rule of
// Section 7.1.
type SelectPriorityOrder struct {
	Inner ECSOrder
	Net   *petri.Net
}

// Sort implements ECSOrder.
func (s *SelectPriorityOrder) Sort(ctx *OrderContext, enabled []*petri.ECS) []*petri.ECS {
	out := s.Inner.Sort(ctx, enabled)
	// Stable-reorder consecutive SELECT arms of the same choice place by
	// arm index (transition label "selK" ordering equals ID ordering per
	// construction, so sorting by first transition ID suffices).
	sort.SliceStable(out, func(i, j int) bool {
		pi, ai := s.selArm(out[i])
		pj, aj := s.selArm(out[j])
		if pi >= 0 && pi == pj {
			return ai < aj
		}
		return false
	})
	return out
}

// selArm returns (choice place ID, arm index) when the ECS is a SELECT
// arm entry, else (-1, -1).
func (s *SelectPriorityOrder) selArm(E *petri.ECS) (int, int) {
	if len(E.Trans) != 1 {
		return -1, -1
	}
	t := s.Net.Transitions[E.Trans[0]]
	for _, a := range t.In {
		p := s.Net.Places[a.Place]
		if ci, ok := p.Cond.(*compile.ChoiceInfo); ok && ci.Kind == compile.ChoiceSelect {
			// Arm index from the label "selK".
			idx := -1
			if len(t.Label) > 3 && t.Label[:3] == "sel" {
				idx = 0
				for _, c := range t.Label[3:] {
					if c < '0' || c > '9' {
						idx = -1
						break
					}
					idx = idx*10 + int(c-'0')
				}
			}
			return p.ID, idx
		}
	}
	return -1, -1
}
