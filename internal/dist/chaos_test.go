package dist

import (
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/petri"
)

// Fault-injection tests over net.Pipe pools: heartbeat-based death
// detection, and the in-process chaos matrix asserting byte-identical
// results across {kill mid-level, sever mid-frame, delay/fragment}
// faults. Pipe pools cannot respawn (no listener, no binary), so every
// recovery here exercises the shard-redistribution path; process
// respawn is covered by the spawned chaos test in package dist_test.

// chaosSeed parameterizes the fault points; CI pins the default, the
// nightly sweep randomizes it via QSS_CHAOS_SEED.
func chaosSeed() int64 {
	if s := os.Getenv("QSS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// chaosPool is pipePoolOf without the clean-exit assertion: chaos
// workers are expected to die with transport errors. wrap, when set,
// interposes on worker i's conn (the shim sees the worker's writes).
// The worker-side pipe ends are retained so kill-style faults can
// sever a live link from the "worker died" direction.
type chaosPool struct {
	*Pool
	wconns []net.Conn
}

func newChaosPool(t *testing.T, n int, wrap func(i int, c net.Conn) net.Conn) *chaosPool {
	t.Helper()
	p := &Pool{logw: newLogWriter("coord")}
	cp := &chaosPool{Pool: p}
	for i := 0; i < n; i++ {
		cs, ws := net.Pipe()
		wc := net.Conn(ws)
		if wrap != nil {
			if w := wrap(i, ws); w != nil {
				wc = w
			}
		}
		errc := make(chan error, 1)
		go func() { errc <- serveConnVer(wc, newLogWriter("worker"), WorkerOptions{}, protoVersion) }()
		c := newConn(cs)
		payload, err := c.expect(msgHello)
		var ver int
		var flags uint64
		if err == nil {
			ver, flags, _, err = checkHello(payload)
		}
		if err != nil {
			t.Fatalf("chaos worker %d handshake: %v", i, err)
		}
		p.workers = append(p.workers, c)
		p.wantFull = append(p.wantFull, flags&helloFullReplicas != 0)
		p.vers = append(p.vers, ver)
		cp.wconns = append(cp.wconns, ws)
		t.Cleanup(func() {
			cs.Close()
			ws.Close()
			<-errc // exit error (if any) is the fault under test
		})
	}
	return cp
}

// TestHelloPidRoundTrip: the version-4 hello's trailing pid — the
// SpawnLocal conn-to-process mapping that kill/respawn depends on —
// survives the wire, and pre-version-4 hellos parse with pid 0.
// (Regression: the pid was once decoded at the flags offset and came
// back 0, making every respawn pool think its workers were external.)
func TestHelloPidRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		ver, pid, want int
	}{{2, 0, 0}, {3, 0, 0}, {4, 12345, 12345}, {4, 1, 1}} {
		cs, ws := net.Pipe()
		go func() {
			newConn(ws).sendHello(tc.ver, helloFullReplicas, tc.pid)
		}()
		c := newConn(cs)
		payload, err := c.expect(msgHello)
		if err != nil {
			t.Fatalf("v%d: %v", tc.ver, err)
		}
		ver, flags, pid, err := checkHello(payload)
		cs.Close()
		ws.Close()
		if err != nil {
			t.Fatalf("v%d: checkHello: %v", tc.ver, err)
		}
		if ver != tc.ver || flags != helloFullReplicas || pid != tc.want {
			t.Fatalf("v%d pid %d: got ver=%d flags=%d pid=%d", tc.ver, tc.pid, ver, flags, pid)
		}
	}
}

// TestHeartbeatTimeout: a worker that stops reading its results but
// keeps the connection open — the classic silent hang — must be
// declared dead within the configured heartbeat interval, not block
// the session forever. The stand-in worker completes the handshake,
// then reads and discards every frame (so coordinator writes succeed)
// without ever replying; only the heartbeat timer can unmask it.
func TestHeartbeatTimeout(t *testing.T) {
	oldInt, oldTO := heartbeatInterval, heartbeatTimeout
	heartbeatInterval, heartbeatTimeout = 20*time.Millisecond, 200*time.Millisecond
	defer func() { heartbeatInterval, heartbeatTimeout = oldInt, oldTO }()

	cs, ws := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := newConn(ws)
		if err := c.sendHello(protoVersion, 0, os.Getpid()); err != nil {
			return
		}
		for {
			if _, _, err := c.recv(); err != nil {
				return
			}
		}
	}()
	p := &Pool{logw: newLogWriter("coord")}
	c := newConn(cs)
	payload, err := c.expect(msgHello)
	if err == nil {
		_, _, _, err = checkHello(payload)
	}
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	p.workers = append(p.workers, c)
	p.wantFull = append(p.wantFull, false)
	p.vers = append(p.vers, protoVersion)
	t.Cleanup(func() { cs.Close(); ws.Close(); <-done })

	n := ringNet(2, 4)
	begin := time.Now()
	_, err = n.ExploreDist(p, petri.ExploreOptions{MaxMarkings: 1000})
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("session against a silent worker succeeded")
	}
	if !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("error does not name the heartbeat timeout: %v", err)
	}
	// Detection plus the (futile, single-worker) recovery round must
	// land within a small multiple of the timeout, not a scheduler-
	// dependent eternity.
	if limit := 10 * heartbeatTimeout; elapsed > limit {
		t.Fatalf("silent worker unmasked after %v, want under %v", elapsed, limit)
	}
	if !p.LastSessionStats().Degraded {
		t.Fatal("stats do not report the degraded session")
	}
}

// TestChaosPipeMatrix: the chaos determinism matrix over pipe pools.
// For worker counts {1, 2, 4} and faults {kill a worker mid-level,
// sever its conn mid-frame, delay+fragment every write}, exploration
// through the pool — falling back in-process when recovery is
// impossible — yields results byte-identical to the serial run.
func TestChaosPipeMatrix(t *testing.T) {
	seed := chaosSeed()
	n := ringNet(3, 5)
	base := petri.ExploreOptions{MaxMarkings: 2000}
	want := n.Explore(base)
	opt := base
	opt.DistFallback = true

	for _, W := range []int{1, 2, 4} {
		for _, mode := range []string{"kill", "sever", "delay"} {
			t.Run(mode+"-"+strconv.Itoa(W), func(t *testing.T) {
				var cp *chaosPool
				switch mode {
				case "kill":
					cp = newChaosPool(t, W, nil)
					// Close the victim's transport from the worker side
					// at the first level commit — a worker crash while
					// the next frontier is in flight.
					victim := int(seed) % W
					if victim < 0 {
						victim = -victim
					}
					var once sync.Once
					cp.SetLevelHook(func(level int) {
						once.Do(func() { cp.wconns[victim].Close() })
					})
				case "sever":
					// Cut one worker's write stream a seeded few hundred
					// bytes in — mid-frame with near certainty — so the
					// coordinator sees a truncated frame then EOF.
					cp = newChaosPool(t, W, func(i int, c net.Conn) net.Conn {
						if i != 0 {
							return nil
						}
						return newChaosConn(c, chaosOpts{seed: seed, severAt: 64 + seed%128 + int64(W)})
					})
				case "delay":
					// Latency and fragmentation on every link, no fault:
					// the session must absorb it without false deaths.
					cp = newChaosPool(t, W, func(i int, c net.Conn) net.Conn {
						return newChaosConn(c, chaosOpts{seed: seed + int64(i), delay: 2 * time.Millisecond})
					})
				}
				got, err := n.ExploreDist(cp.Pool, opt)
				if err != nil {
					t.Fatalf("ExploreDist under %s: %v", mode, err)
				}
				requireSameReach(t, mode, want, got)
				st := cp.LastSessionStats()
				switch {
				case mode == "delay":
					if st.Restarts != 0 || st.Degraded {
						t.Fatalf("delay-only session reported recovery: %+v", st)
					}
				case W == 1:
					// The only worker died and pipes cannot respawn:
					// the pool must degrade and the fallback answer.
					if !st.Degraded {
						t.Fatalf("single-worker %s did not degrade: %+v", mode, st)
					}
				default:
					if st.Restarts < 1 {
						t.Fatalf("%s with %d workers recovered without a restart round: %+v", mode, W, st)
					}
					if st.Redistributed < 1 {
						t.Fatalf("%s with %d workers redistributed no shards: %+v", mode, W, st)
					}
					if st.Degraded {
						t.Fatalf("%s with %d workers should recover, not degrade: %+v", mode, W, st)
					}
				}
			})
		}
	}
}
