package corpus

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestExploreWorkersDeterminism pins the frontier level of the
// parallelism model end to end: synthesizing corpus apps with parallel
// state-space exploration must produce generated C byte-identical to
// the serial path for ExploreWorkers in {1, 4, 8}. Runs under -race
// via the Makefile, which also exercises the frontier pipeline's
// goroutines for data races.
func TestExploreWorkersDeterminism(t *testing.T) {
	apps := GenerateCorpus(11, 6, DefaultConfig())
	for _, app := range apps {
		serial, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{
			Workers: 1, ExploreWorkers: 1, DisableCache: true,
		})
		if err != nil {
			t.Fatalf("%s serial: %v", app.Name, err)
		}
		for _, ew := range []int{4, 8} {
			par, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{
				Workers: 1, ExploreWorkers: ew, DisableCache: true,
			})
			if err != nil {
				t.Fatalf("%s explore-workers=%d: %v", app.Name, ew, err)
			}
			if len(par.Code) != len(serial.Code) {
				t.Fatalf("%s explore-workers=%d: %d tasks vs %d", app.Name, ew, len(par.Code), len(serial.Code))
			}
			for name, code := range serial.Code {
				if par.Code[name] != code {
					t.Fatalf("%s explore-workers=%d: task %s generated C differs from serial", app.Name, ew, name)
				}
			}
			for i := range serial.Schedules {
				ss, ps := serial.Schedules[i], par.Schedules[i]
				if ss.Stats != ps.Stats {
					t.Fatalf("%s explore-workers=%d: schedule %d stats %+v vs %+v",
						app.Name, ew, i, ps.Stats, ss.Stats)
				}
			}
			for i, b := range serial.Bounds {
				if par.Bounds[i] != b {
					t.Fatalf("%s explore-workers=%d: bound[%d] %d vs %d", app.Name, ew, i, par.Bounds[i], b)
				}
			}
		}
	}
}

// TestExploreWorkersAutoBudget: the default wiring must hand a
// single-source system a parallel frontier without the caller setting
// anything, and still produce the serial result.
func TestExploreWorkersAutoBudget(t *testing.T) {
	app := GenerateCorpus(13, 3, DefaultConfig())[1]
	serial, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	auto, err := core.Synthesize(app.FlowC, app.Spec, &core.Options{DisableCache: true})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if fmt.Sprint(serial.Bounds) != fmt.Sprint(auto.Bounds) || len(serial.Code) != len(auto.Code) {
		t.Fatal("auto-budget synthesis differs from serial")
	}
	for name, code := range serial.Code {
		if auto.Code[name] != code {
			t.Fatalf("auto-budget task %s differs from serial", name)
		}
	}
}
