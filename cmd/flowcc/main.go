// Command flowcc is the FlowC compiler driver: it parses a FlowC source
// file and emits the Petri net of each process in the textual exchange
// format (default) or Graphviz DOT (-dot), optionally listing the leader
// statements computed by the Section 3.1 rules (-leaders).
//
// Usage:
//
//	flowcc [-dot] [-leaders] file.flc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compile"
	"repro/internal/flowc"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the textual net format")
	leaders := flag.Bool("leaders", false, "list leader statements per process")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flowcc [-dot] [-leaders] file.flc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := flowc.ParseFile(string(src))
	if err != nil {
		fatal(err)
	}
	if err := flowc.CheckFile(file); err != nil {
		fatal(err)
	}
	for _, p := range file.Processes {
		if *leaders {
			fmt.Printf("# leaders of %s:\n", p.Name)
			for _, s := range compile.Leaders(p) {
				fmt.Printf("#   %v: %s", s.StmtPos(), flowc.FormatStmt(s, 0))
			}
		}
		cp, err := compile.CompileProcess(p)
		if err != nil {
			fatal(err)
		}
		if *dot {
			if err := cp.Net.Dot(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := cp.Net.Format(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowcc:", err)
	os.Exit(1)
}
