// Command qssbatch generates a randomized corpus of FlowC applications
// and synthesizes them concurrently, reporting aggregate throughput —
// the scale-out driver for the quasi-static synthesis flow.
//
// Usage:
//
//	qssbatch [-n apps] [-seed N] [-workers N] [-explore-workers N]
//	         [-compare] [-cpuprofile f] [-memprofile f] [shape flags] [-v]
//
// -workers bounds the number of concurrent app syntheses (0 =
// GOMAXPROCS); -explore-workers additionally parallelizes each
// schedule search's state-space exploration (the second level of the
// parallelism model). -compare additionally runs the serial baseline
// and prints the speedup. -cpuprofile/-memprofile write pprof
// profiles, so perf regressions can be diagnosed without editing
// source. Shape flags mirror corpus.Config; see internal/corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/profiling"
)

func main() {
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

func realMain() (code int) {
	n := flag.Int("n", 20, "number of corpus apps to generate")
	seed := flag.Int64("seed", 1, "master corpus seed")
	workers := flag.Int("workers", 0, "concurrent app syntheses (0 = GOMAXPROCS)")
	exploreWorkers := flag.Int("explore-workers", 1, "goroutines per schedule-search exploration (0 = auto budget)")
	compare := flag.Bool("compare", false, "also run the serial baseline and report the speedup")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := flag.Bool("v", false, "print one line per app")

	cfg := corpus.DefaultConfig()
	flag.IntVar(&cfg.MaxPipelines, "pipelines", cfg.MaxPipelines, "max pipelines (tasks) per app")
	flag.IntVar(&cfg.MaxStages, "stages", cfg.MaxStages, "max stages per tree pipeline")
	flag.IntVar(&cfg.MaxFanOut, "fanout", cfg.MaxFanOut, "max fan-out per stage")
	flag.IntVar(&cfg.MaxOps, "ops", cfg.MaxOps, "max unrolled channel ops per edge")
	flag.IntVar(&cfg.MaxWidth, "width", cfg.MaxWidth, "max multi-rate width per op")
	flag.Float64Var(&cfg.ChoiceDensity, "choice", cfg.ChoiceDensity, "data-dependent tap probability per stage")
	flag.Float64Var(&cfg.SelectDensity, "select", cfg.SelectDensity, "SELECT-drain pipeline probability")
	flag.Float64Var(&cfg.BoundDensity, "bounds", cfg.BoundDensity, "explicit channel bound probability")
	flag.Parse()

	if *n < 0 {
		fmt.Fprintln(os.Stderr, "qssbatch: -n must be >= 0")
		return 2
	}
	apps := corpus.GenerateCorpus(*seed, *n, cfg)
	procs := 0
	for _, a := range apps {
		procs += a.Procs
	}
	fmt.Printf("corpus: %d apps, %d processes (seed %d)\n", len(apps), procs, *seed)

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			if code == 0 {
				code = 2
			}
		}
	}()

	// The batch scales out over apps; the per-app source pool stays
	// serial so the app level and the frontier level are the only two
	// pools contending for cores.
	copt := &core.Options{Workers: 1, ExploreWorkers: *exploreWorkers, DisableCache: true}

	run := func(w int) *corpus.BatchResult {
		return corpus.RunBatch(context.Background(), apps, corpus.BatchOptions{Workers: w, Core: copt})
	}

	var serial *corpus.BatchResult
	if *compare {
		serial = run(1)
		report("serial", serial, *verbose)
	}
	br := run(*workers)
	name := fmt.Sprintf("workers=%d", effectiveWorkers(*workers))
	report(name, br, *verbose)
	if serial != nil && br.Elapsed > 0 {
		fmt.Printf("speedup: %.2fx\n", serial.Elapsed.Seconds()/br.Elapsed.Seconds())
	}
	if br.Failed > 0 {
		return 1
	}
	return 0
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func report(name string, br *corpus.BatchResult, verbose bool) {
	if verbose {
		for _, r := range br.Results {
			if r.Err != nil {
				fmt.Printf("  %-8s FAIL %v\n", r.App.Name, r.Err)
				continue
			}
			fmt.Printf("  %-8s %2d task(s) %6d nodes  %8s\n",
				r.App.Name, len(r.Res.Tasks), sumNodes(r.Res), r.Elapsed.Round(1000).String())
		}
	}
	fmt.Printf("%s: %d apps in %v — %.1f apps/s, %d schedules, %d tasks, %d search nodes, %d failed\n",
		name, len(br.Results), br.Elapsed.Round(1000000), br.Throughput(), br.Schedules, br.Tasks, br.NodesCreated, br.Failed)
}

func sumNodes(r *core.Result) int {
	n := 0
	for _, s := range r.Schedules {
		n += s.Stats.NodesCreated
	}
	return n
}
