package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// manyTaskApp builds n independent trigger/worker pipelines in one
// system, giving the flow n uncontrollable sources to schedule.
func manyTaskApp(n int) (flowcSrc, specSrc string) {
	var src, spec strings.Builder
	spec.WriteString("system many\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, `
PROCESS w%d (In DPORT go, Out DPORT out) {
  int v;
  while (1) {
    READ_DATA(go, &v, 1);
    WRITE_DATA(out, v * %d + 1, 1);
  }
}
`, i, i+2)
		fmt.Fprintf(&spec, "input go%d -> w%d.go uncontrollable\n", i, i)
		fmt.Fprintf(&spec, "output w%d.out -> o%d\n", i, i)
	}
	return src.String(), spec.String()
}

// TestParallelMatchesSerial checks the determinism contract of
// Options.Workers: the parallel and serial paths must produce
// byte-identical generated code and identical search statistics.
func TestParallelMatchesSerial(t *testing.T) {
	flowcSrc, specSrc := manyTaskApp(6)
	serial, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 6, DisableCache: true})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(serial.Schedules) != len(parallel.Schedules) {
		t.Fatalf("schedule count: serial %d, parallel %d", len(serial.Schedules), len(parallel.Schedules))
	}
	for i := range serial.Schedules {
		ss, ps := serial.Schedules[i], parallel.Schedules[i]
		if ss.Source != ps.Source {
			t.Errorf("schedule %d: source %d vs %d", i, ss.Source, ps.Source)
		}
		if ss.Stats.NodesKept != ps.Stats.NodesKept {
			t.Errorf("schedule %d: NodesKept %d vs %d", i, ss.Stats.NodesKept, ps.Stats.NodesKept)
		}
	}
	if len(serial.Code) != len(parallel.Code) {
		t.Fatalf("code map size: %d vs %d", len(serial.Code), len(parallel.Code))
	}
	for name, code := range serial.Code {
		if parallel.Code[name] != code {
			t.Errorf("task %s: generated C differs between serial and parallel paths", name)
		}
	}
}

// TestWorkersExceedSources: a worker count far above the source count
// must behave like a saturated pool, not break.
func TestWorkersExceedSources(t *testing.T) {
	flowcSrc, specSrc := manyTaskApp(2)
	r, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 64, DisableCache: true})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(r.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(r.Tasks))
	}
}

// TestSynthesizeContextCancelled: a cancelled context aborts synthesis
// before (or during) the schedule searches.
func TestSynthesizeContextCancelled(t *testing.T) {
	flowcSrc, specSrc := manyTaskApp(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, flowcSrc, specSrc, &Options{DisableCache: true})
	if err == nil {
		t.Fatal("cancelled context should fail synthesis")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("unexpected error: %v", err)
	}
	// Parallel path as well.
	_, err = SynthesizeContext(ctx, flowcSrc, specSrc, &Options{Workers: 4, DisableCache: true})
	if err == nil {
		t.Fatal("cancelled context should fail parallel synthesis")
	}
}

// TestParallelFirstErrorCancels: an unschedulable source must surface
// its error from the pool, and the error must match the serial one.
func TestParallelFirstErrorCancels(t *testing.T) {
	// The cross-task shared channel from core_test.go is unschedulable;
	// embed it among healthy pipelines so the pool sees both outcomes.
	flowcSrc, specSrc := manyTaskApp(3)
	flowcSrc += sharedChanSrc
	specSrc += `
channel C w.out -> r.in
input go -> w.go uncontrollable
input tick -> r.tick uncontrollable
output r.res -> res
`
	serialErr := func() error {
		_, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 1, DisableCache: true})
		return err
	}()
	parallelErr := func() error {
		_, err := Synthesize(flowcSrc, specSrc, &Options{Workers: 5, DisableCache: true})
		return err
	}()
	if serialErr == nil || parallelErr == nil {
		t.Fatalf("unschedulable system must fail: serial=%v parallel=%v", serialErr, parallelErr)
	}
}
