package sched

import (
	"errors"
	"fmt"

	"repro/internal/petri"
)

// ErrNoSchedule is wrapped by FindSchedule failures that mean "searched
// the whole space RT_θ and found nothing" rather than an internal error.
var ErrNoSchedule = errors.New("no schedule in the search space")

// ErrBudget is wrapped when the node budget was exhausted before the
// search space was covered; the result is then inconclusive.
var ErrBudget = errors.New("search budget exhausted")

// Options configures the schedule search.
type Options struct {
	// Term is the termination condition defining the search space.
	// Defaults to the irrelevance criterion.
	Term Termination
	// Order sorts enabled ECSs at each node. Defaults to the T-invariant
	// heuristic of Section 5.5.2 with the paper's tie-breaks.
	Order ECSOrder
	// MultiSource permits firing other uncontrollable sources inside the
	// schedule (yielding MS schedules, Section 4.1). The default (false)
	// generates only single-source schedules, which are guaranteed
	// independent for FlowC-derived nets (Prop. 4.3).
	MultiSource bool
	// MaxNodes bounds the number of tree nodes / graph states created
	// (default 500000).
	MaxNodes int
	// Engine selects the search engine (default EngineGraph).
	Engine Engine
	// NoFallback disables the automatic exhaustive-tree retry after a
	// greedy-tree failure (EngineTreeGreedy only).
	NoFallback bool
}

// Engine selects how the schedule search explores the reachability
// space.
type Engine int

const (
	// EngineGraph (default) searches the marking graph with an
	// alternating closure/reachability fixpoint — polynomial in the
	// number of reachable markings under the termination caps, and
	// complete with respect to tree schedules within that space.
	EngineGraph Engine = iota
	// EngineTreeGreedy is the paper's EP/EP_ECS tree search with two
	// refinements: the first ECS yielding a valid entering point wins,
	// and environment sources fire only when nothing else can (the
	// paper's own heuristic applied as a hard gate). Falls back to
	// EngineTreeExhaustive on failure unless NoFallback is set.
	EngineTreeGreedy
	// EngineTreeExhaustive is the EP/EP_ECS procedure exactly as in
	// Figure 9 of the paper: every enabled ECS is explored in heuristic
	// order looking for the minimum entering point.
	EngineTreeExhaustive
)

func (o *Options) withDefaults(n *petri.Net, source int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.Term == nil {
		out.Term = NewIrrelevance(n)
	}
	if out.Order == nil {
		out.Order = NewTInvariantOrder(n, source, out.Term)
	}
	if out.MaxNodes == 0 {
		out.MaxNodes = 500000
	}
	return out
}

// treeNode is a node of the EP search tree.
type treeNode struct {
	id      int
	parent  *treeNode
	depth   int
	inTrans int // transition fired on the edge from parent; -1 at root
	marking petri.Marking

	chosenECS *petri.ECS          // ECS(v) chosen by EP; nil for leaves
	kids      map[int][]*treeNode // ECS index -> children created
	entry     *treeNode           // loop target for marking-match leaves
}

type engine struct {
	net    *petri.Net
	source int
	opt    Options
	part   []*petri.ECS
	stats  SearchStats
	nodes  int
	over   bool // budget exhausted
}

// FindSchedule computes a single-source schedule for the given
// uncontrollable source transition, or reports why none was found.
func FindSchedule(n *petri.Net, source int, opt *Options) (*Schedule, error) {
	if source < 0 || source >= len(n.Transitions) {
		return nil, fmt.Errorf("sched: source transition %d out of range", source)
	}
	st := n.Transitions[source]
	if st.Kind != petri.TransSourceUnc {
		return nil, fmt.Errorf("sched: transition %s is %v, want an uncontrollable source", st.Name, st.Kind)
	}
	eff := opt.withDefaults(n, source)
	if eff.Engine == EngineGraph {
		return findScheduleGraph(n, source, eff)
	}
	e := &engine{
		net:    n,
		source: source,
		opt:    eff,
		part:   n.ECSPartition(),
	}
	if _, ok := e.opt.Order.(*TInvariantOrder); ok {
		e.stats.UsedTInv = true
	}
	root := e.newNode(nil, -1, n.InitialMarking())
	child := e.newNode(root, source, root.marking.Fire(st))
	root.chosenECS = e.ecsOf(source)
	root.kids = map[int][]*treeNode{root.chosenECS.Index: {child}}
	got := e.ep(child, root)
	if e.over {
		return nil, fmt.Errorf("sched: source %s: %w (created %d nodes)", st.Name, ErrBudget, e.nodes)
	}
	if got != root {
		if e.opt.Engine == EngineTreeGreedy && !e.opt.NoFallback {
			retry := e.opt
			retry.Engine = EngineTreeExhaustive
			return FindSchedule(n, source, &retry)
		}
		return nil, fmt.Errorf("sched: source %s under %s: %w (explored %d nodes, pruned %d)",
			st.Name, e.opt.Term.Name(), ErrNoSchedule, e.nodes, e.stats.Pruned)
	}
	s := e.buildSchedule(root)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: internal error: produced invalid schedule: %v", err)
	}
	return s, nil
}

// FindAll computes one schedule per uncontrollable source transition.
func FindAll(n *petri.Net, opt *Options) ([]*Schedule, error) {
	var out []*Schedule
	for _, src := range n.UncontrollableSources() {
		s, err := FindSchedule(n, src, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sched: net %s has no uncontrollable source transitions", n.Name)
	}
	return out, nil
}

func (e *engine) ecsOf(trans int) *petri.ECS {
	for _, E := range e.part {
		for _, t := range E.Trans {
			if t == trans {
				return E
			}
		}
	}
	return nil
}

func (e *engine) newNode(parent *treeNode, inTrans int, m petri.Marking) *treeNode {
	e.nodes++
	if e.nodes > e.opt.MaxNodes {
		e.over = true
	}
	n := &treeNode{id: e.nodes, parent: parent, inTrans: inTrans, marking: m}
	if parent != nil {
		n.depth = parent.depth + 1
	}
	if n.depth > e.stats.MaxDepth {
		e.stats.MaxDepth = n.depth
	}
	e.stats.NodesCreated++
	return n
}

// isAncEq reports whether u is an ancestor of x or x itself.
func isAncEq(u, x *treeNode) bool {
	for x != nil && x.depth >= u.depth {
		if x == u {
			return true
		}
		x = x.parent
	}
	return false
}

func (e *engine) ancestorMarkings(v *treeNode) []petri.Marking {
	var out []petri.Marking
	for u := v.parent; u != nil; u = u.parent {
		out = append(out, u.marking)
	}
	return out
}

// ep implements function EP(v, target) of Figure 9(a): find an entering
// point of v that is an ancestor of target if one exists, else the
// minimum entering point found, else nil (UNDEF).
func (e *engine) ep(v, target *treeNode) *treeNode {
	if e.over {
		return nil
	}
	anc := e.ancestorMarkings(v)
	if e.opt.Term.Prune(v.marking, anc) {
		e.stats.Pruned++
		return nil
	}
	// Marking match against a proper ancestor: v is a leaf looping back.
	for u := v.parent; u != nil; u = u.parent {
		if u.marking.Equal(v.marking) {
			v.entry = u
			return u
		}
	}
	enabled := e.enabledECS(v.marking)
	enabled = e.opt.Order.Sort(&OrderContext{
		Net:       e.net,
		Marking:   v.marking,
		Fired:     e.firedCounts(v),
		Source:    e.source,
		Ancestors: anc,
	}, enabled)
	// Environment sources are a second-class pass: "fire a source
	// transition only when the system cannot fire anything else"
	// (Section 4.4). In greedy mode this is a hard gate; in exhaustive
	// mode sources are merely ordered last by the heuristic.
	var passes [][]*petri.ECS
	if e.opt.Engine == EngineTreeExhaustive {
		passes = [][]*petri.ECS{enabled}
	} else {
		var nonSrc, src []*petri.ECS
		for _, E := range enabled {
			if E.IsSourceECS(e.net) {
				src = append(src, E)
			} else {
				nonSrc = append(nonSrc, E)
			}
		}
		passes = [][]*petri.ECS{nonSrc, src}
	}
	var best *treeNode
	for _, pass := range passes {
		for _, E := range pass {
			got := e.epECS(E, v, target)
			if e.over {
				return nil
			}
			if got == nil {
				continue
			}
			if isAncEq(got, target) {
				v.chosenECS = E
				return got
			}
			if e.opt.Engine != EngineTreeExhaustive {
				// Greedy: the first valid entering point wins.
				v.chosenECS = E
				return got
			}
			if best == nil || got.depth < best.depth {
				v.chosenECS = E
				best = got
			}
		}
		if best != nil {
			break
		}
	}
	if best == nil {
		v.chosenECS = nil
	}
	return best
}

// epECS implements function EP_ECS(E, v, target) of Figure 9(b): create a
// child of v per transition of E and find the minimum entering point,
// provided each child yields one that is an ancestor of v.
func (e *engine) epECS(E *petri.ECS, v, target *treeNode) *treeNode {
	var min *treeNode
	curTarget := target
	var kids []*treeNode
	for _, tid := range E.Trans {
		t := e.net.Transitions[tid]
		w := e.newNode(v, tid, v.marking.Fire(t))
		if e.over {
			return nil
		}
		kids = append(kids, w)
		got := e.ep(w, curTarget)
		if got == nil || !isAncEq(got, v) {
			return nil
		}
		if min == nil || got.depth < min.depth {
			min = got
		}
		if isAncEq(min, target) {
			curTarget = v
		}
	}
	if v.kids == nil {
		v.kids = map[int][]*treeNode{}
	}
	v.kids[E.Index] = kids
	return min
}

// enabledECS lists the ECSs enabled at m, excluding — in single-source
// mode — uncontrollable sources other than the schedule's own.
func (e *engine) enabledECS(m petri.Marking) []*petri.ECS {
	var out []*petri.ECS
	for _, E := range e.part {
		if !e.opt.MultiSource && E.IsUncontrollable(e.net) && E.Trans[0] != e.source {
			continue
		}
		if E.Enabled(e.net, m) {
			out = append(out, E)
		}
	}
	return out
}

// firedCounts returns how many times each transition fired on the path
// from the root to v.
func (e *engine) firedCounts(v *treeNode) []int {
	counts := make([]int, len(e.net.Transitions))
	for u := v; u != nil && u.inTrans >= 0; u = u.parent {
		counts[u.inTrans]++
	}
	return counts
}

// buildSchedule performs the post-processing of Section 5.2: retain only
// the subtree selected by the chosen ECSs, and close a cycle at each
// retained leaf by merging it with the ancestor carrying its marking.
func (e *engine) buildSchedule(root *treeNode) *Schedule {
	sched := &Schedule{Net: e.net, Source: e.source, Stats: e.stats}
	nodeOf := map[*treeNode]*Node{}
	var mk func(t *treeNode) *Node
	mk = func(t *treeNode) *Node {
		if n, ok := nodeOf[t]; ok {
			return n
		}
		n := &Node{ID: len(sched.Nodes), Marking: t.marking, ECS: t.chosenECS}
		nodeOf[t] = n
		sched.Nodes = append(sched.Nodes, n)
		if t.chosenECS == nil {
			// Defensive: leaves are supposed to be redirected by their
			// parents and never materialized.
			return n
		}
		for _, kid := range t.kids[t.chosenECS.Index] {
			dest := kid
			if kid.entry != nil {
				dest = kid.entry
			}
			n.Edges = append(n.Edges, Edge{Trans: kid.inTrans, To: mk(dest)})
		}
		return n
	}
	sched.Root = mk(root)
	sched.Stats.NodesKept = len(sched.Nodes)
	return sched
}
