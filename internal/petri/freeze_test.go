package petri

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestTokenDeltas: the sparse per-transition effect must match what
// FireInto does to a vector, with self-loops cancelled.
func TestTokenDeltas(t *testing.T) {
	n := New("deltas")
	p := n.AddPlace("p", PlaceChannel, 3)
	q := n.AddPlace("q", PlaceChannel, 0)
	r := n.AddPlace("r", PlaceChannel, 1)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 2)
	n.AddArcTP(tr, q, 3)
	n.AddArc(r, tr, 1) // self-loop on r:
	n.AddArcTP(tr, r, 1)
	ds := n.TokenDeltas()
	if len(ds) != 1 {
		t.Fatalf("TokenDeltas returned %d transitions, want 1", len(ds))
	}
	m := n.InitialMarking()
	want := m.Fire(tr)
	got := m.Clone()
	for _, d := range ds[0] {
		got[d.Place] += int(d.Delta)
	}
	if !got.Equal(want) {
		t.Fatalf("delta application = %v, want %v", got, want)
	}
	for _, d := range ds[0] {
		if d.Delta == 0 {
			t.Fatalf("zero delta retained for place %d (self-loop not cancelled)", d.Place)
		}
	}
}

// freezeChainStore builds a store holding a root plus a delta chain of
// markings (alternating two synthetic transitions), returning the
// store, the expected vectors, and the provenance function the chain
// implies. Token values exceed one uvarint byte to exercise multi-byte
// verbatim encoding.
func freezeChainStore(t *testing.T, states int) (*MarkingStore, []Marking, func(MarkID) FreezeProv) {
	t.Helper()
	deltas := [][]PlaceDelta{
		{{Place: 0, Delta: 1}, {Place: 2, Delta: -1}},
		{{Place: 1, Delta: 3}, {Place: 2, Delta: 2}},
	}
	s := NewMarkingStore(3)
	if err := s.EnableFreeze(FreezeConfig{Deltas: deltas, ThawCap: 8}); err != nil {
		t.Fatalf("EnableFreeze: %v", err)
	}
	vecs := []Marking{{200, 0, 500}}
	for i := 1; i < states; i++ {
		prev := vecs[i-1]
		next := prev.Clone()
		for _, d := range deltas[i%2] {
			next[d.Place] += int(d.Delta)
		}
		vecs = append(vecs, next)
	}
	for i, v := range vecs {
		if id, isNew := s.Intern(v); !isNew || int(id) != i {
			t.Fatalf("intern %d = (%d, %v)", i, id, isNew)
		}
	}
	prov := func(id MarkID) FreezeProv {
		if id == 0 {
			return FreezeProv{Parent: NoMark}
		}
		return FreezeProv{Parent: id - 1, Trans: int32(id % 2)}
	}
	return s, vecs, prov
}

// TestFreezeThawRoundTrip: freeze in waves, read everything back —
// frozen ids reconstruct byte-identically, hot ids stay direct, lookups
// (vector-exact and hash-only) resolve across the boundary, and views
// taken before a freeze stay valid after it.
func TestFreezeThawRoundTrip(t *testing.T) {
	const states = 100
	s, vecs, prov := freezeChainStore(t, states)
	earlyView := s.At(3)
	for _, end := range []int{1, 7, 7, 5, 40, states} { // repeats and regressions are no-ops
		if err := s.FreezeThrough(end, prov); err != nil {
			t.Fatalf("FreezeThrough(%d): %v", end, err)
		}
	}
	if s.FrozenLen() != states {
		t.Fatalf("FrozenLen = %d, want %d", s.FrozenLen(), states)
	}
	if !earlyView.Equal(vecs[3]) {
		t.Fatalf("pre-freeze view corrupted: %v", earlyView)
	}
	for i, v := range vecs {
		if got := s.At(MarkID(i)); !got.Equal(v) {
			t.Fatalf("At(%d) = %v, want %v", i, got, v)
		}
		if id, ok := s.Lookup(v); !ok || int(id) != i {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", v, id, ok, i)
		}
		if id, ok := s.LookupHash(HashMarking(v)); !ok || int(id) != i {
			t.Fatalf("LookupHash of state %d = (%d, %v)", i, id, ok)
		}
	}
	// Random access pattern: thaw-cache eviction (cap 8, chain 100)
	// must never change what At returns.
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 400; r++ {
		i := rng.Intn(states)
		if got := s.At(MarkID(i)); !got.Equal(vecs[i]) {
			t.Fatalf("random At(%d) = %v, want %v", i, got, vecs[i])
		}
	}
	// Interning continues on top of a fully frozen store.
	fresh := Marking{9, 9, 9}
	id, isNew := s.Intern(fresh)
	if !isNew || int(id) != states {
		t.Fatalf("post-freeze intern = (%d, %v), want (%d, true)", id, isNew, states)
	}
	if !s.At(id).Equal(fresh) {
		t.Fatalf("post-freeze At(%d) = %v", id, s.At(id))
	}
}

// TestFreezeVerbatimFallback: provenance the encoder cannot use — no
// parent, a non-earlier parent, an out-of-range transition — stores the
// vector verbatim and still round-trips.
func TestFreezeVerbatimFallback(t *testing.T) {
	s := NewMarkingStore(2)
	if err := s.EnableFreeze(FreezeConfig{Deltas: [][]PlaceDelta{{{Place: 0, Delta: 1}}}}); err != nil {
		t.Fatalf("EnableFreeze: %v", err)
	}
	vecs := []Marking{{1000, 0}, {3, 128}, {0, 0}}
	for _, v := range vecs {
		s.Intern(v)
	}
	provs := []FreezeProv{
		{Parent: NoMark},           // no parent
		{Parent: 5, Trans: 0},      // parent not earlier than id
		{Parent: 0, Trans: 999999}, // transition out of range
	}
	if err := s.FreezeThrough(3, func(id MarkID) FreezeProv { return provs[id] }); err != nil {
		t.Fatalf("FreezeThrough: %v", err)
	}
	for i, v := range vecs {
		if got := s.At(MarkID(i)); !got.Equal(v) {
			t.Fatalf("At(%d) = %v, want %v", i, got, v)
		}
	}
}

// TestFreezeMemAccounting: Mem() is exact and machine-independent —
// hot bytes are a closed-form function of lengths, frozen bytes equal
// the encoded segment; MemBytes/ArenaBytes stay consistent with it.
func TestFreezeMemAccounting(t *testing.T) {
	const states = 64
	s, _, prov := freezeChainStore(t, states)
	allHot := s.Mem()
	if allHot.FrozenBytes != 0 {
		t.Fatalf("unfrozen store reports FrozenBytes = %d", allHot.FrozenBytes)
	}
	wantHot := int64(len(s.tokens))*8 + int64(len(s.hashes))*8 + int64(len(s.table))*4
	if allHot.HotBytes != wantHot {
		t.Fatalf("HotBytes = %d, want %d", allHot.HotBytes, wantHot)
	}
	if s.ArenaBytes() != int(wantHot) {
		t.Fatalf("ArenaBytes = %d, want %d (all-hot compatibility)", s.ArenaBytes(), wantHot)
	}
	if err := s.FreezeThrough(states, prov); err != nil {
		t.Fatalf("FreezeThrough: %v", err)
	}
	frozen := s.Mem()
	// Chain of deltas: 63 records of 1+1+1 bytes; the multi-byte-token
	// verbatim root. Segment size is exact, not approximate.
	wantFrozen := int64(63*3) + 1 + 2 + 1 + 2 // tag + uvarint(200),uvarint(0),uvarint(500)
	if frozen.FrozenBytes != wantFrozen {
		t.Fatalf("FrozenBytes = %d, want %d", frozen.FrozenBytes, wantFrozen)
	}
	wantHot = int64(len(s.hashes))*8 + int64(len(s.table))*4 + int64(states)*8 // tokens empty, offs resident
	if frozen.HotBytes != wantHot {
		t.Fatalf("frozen HotBytes = %d, want %d", frozen.HotBytes, wantHot)
	}
	if frozen.HotBytes >= allHot.HotBytes {
		t.Fatalf("freezing did not shrink hot bytes: %d -> %d", allHot.HotBytes, frozen.HotBytes)
	}
	if frozen.Total() != frozen.HotBytes+frozen.FrozenBytes {
		t.Fatalf("Total = %d", frozen.Total())
	}
	if s.MemBytes() < int(frozen.HotBytes) {
		t.Fatalf("MemBytes (%d) below live hot bytes (%d)", s.MemBytes(), frozen.HotBytes)
	}
}

// TestFreezeAliasAfterFreeze is the regression for the HashAliased
// vector-exact fallback over frozen levels: aliasing first appears
// AFTER the level holding the colliding marking froze, so both the
// InternHashed probe that detects the collision and every later
// vector-exact LookupHashed must reconstruct the frozen vector instead
// of reading a hot-arena view.
func TestFreezeAliasAfterFreeze(t *testing.T) {
	s := newMarkingStoreCap(3, 2) // tiny table: forces probe runs through the alias
	if err := s.EnableFreeze(FreezeConfig{Deltas: nil}); err != nil {
		t.Fatalf("EnableFreeze: %v", err)
	}
	var ms []Marking
	for i := 0; i < 40; i++ {
		m := Marking{i, i % 4, i / 7}
		ms = append(ms, m)
		s.Intern(m)
	}
	// Freeze the whole "level" holding every interned marking (nil
	// deltas: everything verbatim).
	if err := s.FreezeThrough(s.Len(), func(MarkID) FreezeProv { return FreezeProv{Parent: NoMark} }); err != nil {
		t.Fatalf("FreezeThrough: %v", err)
	}
	if s.HashAliased() {
		t.Fatal("store reports aliasing before the colliding intern")
	}
	// Aliasing appears now — the colliding marking (id 0) is frozen.
	h0 := HashMarking(ms[0])
	alias := Marking{77, 0, 0}
	id, isNew := s.InternHashed(alias, h0)
	if !isNew || int(id) != len(ms) {
		t.Fatalf("aliased intern = (%d, %v), want (%d, true)", id, isNew, len(ms))
	}
	if !s.HashAliased() {
		t.Fatal("aliasing across the frozen boundary not detected")
	}
	if again, isNew := s.InternHashed(alias, h0); isNew || again != id {
		t.Fatalf("re-intern of alias = (%d, %v), want (%d, false)", again, isNew, id)
	}
	// The vector-exact fallback the dist coordinator uses once
	// HashAliased flips: both sides must resolve, one frozen, one hot.
	if got, ok := s.LookupHashed(ms[0], h0); !ok || got != 0 {
		t.Fatalf("exact lookup of frozen original = (%d, %v), want (0, true)", got, ok)
	}
	if got, ok := s.LookupHashed(alias, h0); !ok || got != id {
		t.Fatalf("exact lookup of hot alias = (%d, %v), want (%d, true)", got, ok, id)
	}
	// And again with the alias frozen too.
	if err := s.FreezeThrough(s.Len(), func(MarkID) FreezeProv { return FreezeProv{Parent: NoMark} }); err != nil {
		t.Fatalf("second FreezeThrough: %v", err)
	}
	if got, ok := s.LookupHashed(alias, h0); !ok || got != id {
		t.Fatalf("exact lookup of frozen alias = (%d, %v), want (%d, true)", got, ok, id)
	}
}

// TestFreezeConcurrentThaw: At on frozen ids is safe from many
// goroutines once mutations stop (run under -race via the Makefile);
// cache eviction churn must not corrupt returned vectors.
func TestFreezeConcurrentThaw(t *testing.T) {
	const states = 80
	s, vecs, prov := freezeChainStore(t, states)
	if err := s.FreezeThrough(states, prov); err != nil {
		t.Fatalf("FreezeThrough: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				i := (w*31 + r*17) % states
				if got := s.At(MarkID(i)); !got.Equal(vecs[i]) {
					t.Errorf("concurrent At(%d) = %v, want %v", i, got, vecs[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestExploreFreezeLevelsDeterminism: FreezeLevels must not change a
// single byte of the ReachResult — state numbering, edges, clip flags —
// for the serial loop, every worker count, and budget/cap-clipped
// explorations; and the frozen run must actually have frozen everything.
func TestExploreFreezeLevelsDeterminism(t *testing.T) {
	cases := []struct {
		name string
		net  *Net
		opt  ExploreOptions
	}{
		{"rings-full", ringsNet(3, 4), ExploreOptions{MaxMarkings: 1000}},
		{"rings-budget", ringsNet(3, 5), ExploreOptions{MaxMarkings: 60}},
		{"simple-capped", simpleNet(t), ExploreOptions{FireSources: true, MaxTokensPerPlace: 4}},
		{"choice", choiceNet(t), ExploreOptions{FireSources: true, MaxTokensPerPlace: 3}},
	}
	for _, c := range cases {
		baseline := c.net.Explore(c.opt)
		for _, w := range []int{0, 1, 4, 8} {
			opt := c.opt
			opt.Workers = w
			opt.FreezeLevels = true
			got := c.net.Explore(opt)
			assertSameReach(t, fmt.Sprintf("%s/frozen-workers=%d", c.name, w), baseline, got)
			if w <= 1 {
				if !got.Store.FreezeEnabled() {
					t.Fatalf("%s: freezing not enabled", c.name)
				}
				if got.Store.FrozenLen() != got.Store.Len() {
					t.Fatalf("%s: FrozenLen = %d of %d after serial frozen explore",
						c.name, got.Store.FrozenLen(), got.Store.Len())
				}
				if m := got.Store.Mem(); m.FrozenBytes == 0 && got.Store.Len() > 0 {
					t.Fatalf("%s: no frozen bytes after full freeze", c.name)
				}
			}
		}
	}
}
