package sched

import (
	"strings"
	"testing"

	"repro/internal/petri"
)

// fig8Net builds the Petri net of Figure 8(a):
//
//	a: source -> p1
//	b: p1 -> p2        (b and c form an equal conflict set on p1)
//	c: p1 -> p3
//	d: p2 -> (sink)
//	e: 2*p3 -> p1
func fig8Net(t *testing.T) *petri.Net {
	t.Helper()
	n := petri.New("fig8")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransNormal)
	e := n.AddTransition("e", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, b, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p1, c, 1)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p2, d, 1)
	n.AddArc(p3, e, 2)
	n.AddArcTP(e, p1, 1)
	if err := n.Validate(); err != nil {
		t.Fatalf("fig8 net invalid: %v", err)
	}
	return n
}

func TestFig8ScheduleMatchesPaper(t *testing.T) {
	n := fig8Net(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Figure 10(d): the schedule has exactly 7 nodes (r, v1, v2, v3, v5,
	// v6, v7) and two await nodes (r and v3).
	if got := len(s.Nodes); got != 7 {
		var sb strings.Builder
		s.Format(&sb)
		t.Fatalf("schedule has %d nodes, want 7 per Figure 10(d)\n%s", got, sb.String())
	}
	if got := len(s.AwaitNodes()); got != 2 {
		t.Fatalf("schedule has %d await nodes, want 2", got)
	}
	// The involved transitions are all five.
	if got := len(s.InvolvedTransitions()); got != 5 {
		t.Fatalf("involved transitions = %d, want 5", got)
	}
}

func TestFig8ScheduleBounds(t *testing.T) {
	n := fig8Net(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	bounds := s.PlaceBounds()
	// Per Figure 10(d) markings: p1 <= 1, p2 <= 1, p3 <= 2.
	want := []int{1, 1, 2}
	for i, w := range want {
		if bounds[i] != w {
			t.Errorf("bound of %s = %d, want %d", n.Places[i].Name, bounds[i], w)
		}
	}
}

// fig4aNet: a single source with a divide-by-two consumer. SSS(a) must
// contain two await nodes (0 and p1).
func fig4aNet(t *testing.T) *petri.Net {
	t.Helper()
	n := petri.New("fig4a")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	c := n.AddTransition("c", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, c, 2)
	return n
}

func TestFig4aSingleSourceSchedule(t *testing.T) {
	n := fig4aNet(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	if got := len(s.AwaitNodes()); got != 2 {
		t.Fatalf("await nodes = %d, want 2 (0 and p1)", got)
	}
	if got := len(s.Nodes); got != 3 {
		t.Fatalf("nodes = %d, want 3 (0, p1, p1p1)", got)
	}
}

// fig4bNet: a and b are sources feeding p1 and p2; c consumes one of
// each. If both are uncontrollable there is no single-source schedule
// (the schedule for a would need to fire b).
func fig4bNet(bKind petri.TransKind) *petri.Net {
	n := petri.New("fig4b")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", bKind)
	c := n.AddTransition("c", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p1, c, 1)
	n.AddArc(p2, c, 1)
	return n
}

func TestFig4bNoSSScheduleWhenBothUncontrollable(t *testing.T) {
	n := fig4bNet(petri.TransSourceUnc)
	if _, err := FindSchedule(n, 0, nil); err == nil {
		t.Fatalf("expected no SS schedule for a when b is uncontrollable")
	}
}

func TestFig4bScheduleWhenBControllable(t *testing.T) {
	// The paper (footnote 2): the same PN has SS schedules if b is
	// specified as controllable.
	n := fig4bNet(petri.TransSourceCtl)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	// The schedule fires a, then b (controllable), then c, back to 0.
	if got := len(s.InvolvedTransitions()); got != 3 {
		t.Fatalf("involved = %d, want 3 (a, b, c)", got)
	}
}

func TestFig4bMultiSourceSchedule(t *testing.T) {
	// With MultiSource enabled, a schedule for a may fire b.
	n := fig4bNet(petri.TransSourceUnc)
	s, err := FindSchedule(n, 0, &Options{MultiSource: true})
	if err != nil {
		t.Fatalf("FindSchedule (multi-source): %v", err)
	}
	found := false
	for _, tr := range s.InvolvedTransitions() {
		if n.Transitions[tr].Name == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("multi-source schedule should involve b")
	}
}

// fig5Net builds Figure 5(a): two independent request/response loops
// sharing the resource place p0.
func fig5Net(t *testing.T) *petri.Net {
	t.Helper()
	n := petri.New("fig5")
	p0 := n.AddPlace("p0", petri.PlaceInternal, 1)
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	p4 := n.AddPlace("p4", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransSourceUnc)
	e := n.AddTransition("e", petri.TransNormal)
	f := n.AddTransition("f", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p0, b, 1)
	n.AddArc(p1, b, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p2, c, 1)
	n.AddArcTP(c, p0, 1)
	n.AddArcTP(d, p3, 1)
	n.AddArc(p0, e, 1)
	n.AddArc(p3, e, 1)
	n.AddArcTP(e, p4, 1)
	n.AddArc(p4, f, 1)
	n.AddArcTP(f, p0, 1)
	return n
}

func TestFig5NonInterferingSchedules(t *testing.T) {
	n := fig5Net(t)
	set, err := FindAll(n, nil)
	if err != nil {
		t.Fatalf("FindAll: %v", err)
	}
	if len(set) != 2 {
		t.Fatalf("schedules = %d, want 2", len(set))
	}
	for _, s := range set {
		// Each schedule returns to the initial marking after a single
		// trigger: exactly one await node (the root).
		if got := len(s.AwaitNodes()); got != 1 {
			t.Errorf("schedule %s: await nodes = %d, want 1",
				n.Transitions[s.Source].Name, got)
		}
	}
	if err := CheckIndependence(set); err != nil {
		t.Fatalf("schedules should be independent: %v", err)
	}
	// Any interleaving of triggers is executable (Definition 4.2).
	inputs := []int{0, 3, 0, 0, 3, 3, 0}
	final, err := Executable(n, set, inputs, nil)
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	if !final.Equal(n.InitialMarking()) {
		t.Fatalf("final marking %v, want initial", final)
	}
}

// fig6Net builds Figure 6(a): the weights of c and f are 2 and the
// resource place p0 holds two tokens, creating interfering schedules.
func fig6Net(t *testing.T) *petri.Net {
	t.Helper()
	n := petri.New("fig6")
	p0 := n.AddPlace("p0", petri.PlaceInternal, 2)
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	p4 := n.AddPlace("p4", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransSourceUnc)
	e := n.AddTransition("e", petri.TransNormal)
	f := n.AddTransition("f", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p0, b, 1)
	n.AddArc(p1, b, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p2, c, 2)
	n.AddArcTP(c, p0, 2)
	n.AddArcTP(d, p3, 1)
	n.AddArc(p0, e, 1)
	n.AddArc(p3, e, 1)
	n.AddArcTP(e, p4, 1)
	n.AddArc(p4, f, 2)
	n.AddArcTP(f, p0, 2)
	return n
}

func TestFig6InterferingSchedulesDetected(t *testing.T) {
	n := fig6Net(t)
	set, err := FindAll(n, nil)
	if err != nil {
		t.Fatalf("FindAll: %v", err)
	}
	if len(set) != 2 {
		t.Fatalf("schedules = %d, want 2", len(set))
	}
	// Each SS schedule has more than one await node (cannot return to
	// the initial marking after every firing).
	for _, s := range set {
		if got := len(s.AwaitNodes()); got < 2 {
			t.Errorf("schedule %s: await nodes = %d, want >= 2",
				n.Transitions[s.Source].Name, got)
		}
	}
	// The independence check must reject the pair (the place p0 is
	// shared and varies over await nodes).
	if err := CheckIndependence(set); err == nil {
		t.Fatalf("interfering schedules should fail the independence check")
	}
	// And indeed the run for the sequence "a d" is not fireable further
	// for "a a" — reproduce the paper's stuck scenario "a d a".
	if _, err := Executable(n, set, []int{0, 3, 0}, nil); err == nil {
		t.Fatalf("run for sequence a,d,a should not be fireable (interference)")
	}
}

// dividerNet builds a Figure 7-style divider/multiplier chain:
//
//	a: source -> p1
//	b: k*p1 -> p2
//	c: k*p2 -> p3
//	d: p3 -> (k-1)*p4
//	e: p4 -> (sink)
//
// A schedule needs k tokens in p1 and p2, so any uniform place bound
// below k defeats the bounded search, while the irrelevance criterion
// finds the schedule for every k.
func dividerNet(k int) *petri.Net {
	n := petri.New("fig7")
	p1 := n.AddPlace("p1", petri.PlaceChannel, 0)
	p2 := n.AddPlace("p2", petri.PlaceChannel, 0)
	p3 := n.AddPlace("p3", petri.PlaceChannel, 0)
	p4 := n.AddPlace("p4", petri.PlaceChannel, 0)
	a := n.AddTransition("a", petri.TransSourceUnc)
	b := n.AddTransition("b", petri.TransNormal)
	c := n.AddTransition("c", petri.TransNormal)
	d := n.AddTransition("d", petri.TransNormal)
	e := n.AddTransition("e", petri.TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, b, k)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p2, c, k)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p3, d, 1)
	n.AddArcTP(d, p4, k-1)
	n.AddArc(p4, e, 1)
	return n
}

func TestFig7IrrelevanceBeatsPlaceBounds(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		n := dividerNet(k)
		// Irrelevance criterion: schedule found.
		s, err := FindSchedule(n, 0, nil)
		if err != nil {
			t.Fatalf("k=%d: irrelevance criterion failed: %v", k, err)
		}
		// The schedule fires a exactly k*k times: count await nodes.
		// (a fires once per await node traversal; the total number of a
		// edges equals k*k.)
		aEdges := 0
		for _, nd := range s.Nodes {
			for _, e := range nd.Edges {
				if e.Trans == 0 {
					aEdges++
				}
			}
		}
		if aEdges != k*k {
			t.Errorf("k=%d: schedule fires a at %d nodes, want %d", k, aEdges, k*k)
		}
		// Uniform bounds below k: search must fail.
		_, err = FindSchedule(n, 0, &Options{Term: UniformBounds(n, k-1)})
		if err == nil {
			t.Errorf("k=%d: place bounds %d should defeat the search", k, k-1)
		}
	}
}

func TestScheduleFormatAndDot(t *testing.T) {
	n := fig8Net(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	var txt, dot strings.Builder
	if err := s.Format(&txt); err != nil {
		t.Fatalf("Format: %v", err)
	}
	if !strings.Contains(txt.String(), "(root)") || !strings.Contains(txt.String(), "(await)") {
		t.Errorf("Format output missing root/await annotations:\n%s", txt.String())
	}
	if err := s.Dot(&dot); err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Errorf("Dot output malformed")
	}
}

func TestNaiveOrderAlsoFindsFig8(t *testing.T) {
	n := fig8Net(t)
	s, err := FindSchedule(n, 0, &Options{Order: NaiveOrder{}})
	if err != nil {
		t.Fatalf("FindSchedule (naive order): %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildRunAcrossAwaitNodes(t *testing.T) {
	n := fig8Net(t)
	s, err := FindSchedule(n, 0, nil)
	if err != nil {
		t.Fatalf("FindSchedule: %v", err)
	}
	set := []*Schedule{s}
	// Resolver that always picks the edge labeled c when offered (to
	// drive through the p3 path), otherwise edge 0.
	resolve := func(sc *Schedule, nd *Node) int {
		for i, e := range nd.Edges {
			if n.Transitions[e.Trans].Name == "c" {
				return i
			}
		}
		return 0
	}
	final, err := Executable(n, set, []int{0, 0}, resolve)
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	// a c (to await at p3), a: ... c path again joins e firing, ending
	// back at a consistent marking; just require fireability and bounded
	// tokens.
	for i, v := range final {
		if v > 2 {
			t.Errorf("place %s accumulated %d tokens", n.Places[i].Name, v)
		}
	}
}
