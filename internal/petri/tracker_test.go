package petri

import (
	"math/rand"
	"testing"
)

// randomNet builds a seeded random net: a mix of internal and channel
// places, transitions of all kinds, duplicate arc additions (weight
// accumulation) and self loops — the shapes the tracker's changed-place
// analysis must survive.
func randomNet(rng *rand.Rand) *Net {
	n := New("rand")
	nPlaces := rng.Intn(8) + 2
	for i := 0; i < nPlaces; i++ {
		kind := PlaceInternal
		if rng.Intn(2) == 0 {
			kind = PlaceChannel
		}
		n.AddPlace("", kind, rng.Intn(3))
	}
	nTrans := rng.Intn(10) + 2
	for i := 0; i < nTrans; i++ {
		kind := TransNormal
		switch rng.Intn(6) {
		case 0:
			kind = TransSourceUnc
		case 1:
			kind = TransSink
		}
		t := n.AddTransition("", kind)
		if kind != TransSourceUnc {
			for a := rng.Intn(3) + 1; a > 0; a-- {
				n.AddArc(n.Places[rng.Intn(nPlaces)], t, rng.Intn(2)+1)
			}
			if rng.Intn(4) == 0 {
				n.AddSelfLoop(n.Places[rng.Intn(nPlaces)], t, 1)
			}
		}
		for a := rng.Intn(3); a > 0; a-- {
			n.AddArcTP(t, n.Places[rng.Intn(nPlaces)], rng.Intn(2)+1)
		}
	}
	return n
}

// bitsOf collects the set ECS indexes of a bitset.
func bitsOf(set []uint64, num int) []int {
	var out []int
	for i := 0; i < num; i++ {
		if HasBit(set, i) {
			out = append(out, i)
		}
	}
	return out
}

// enabledIdx is the brute-force reference: full-partition scan.
func enabledIdx(n *Net, part []*ECS, m Marking) []int {
	var out []int
	for _, e := range part {
		if e.Enabled(n, m) {
			out = append(out, e.Index)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnabledTrackerRandomWalks: along random firing walks of random
// nets, the incrementally maintained enabled set must equal the full
// partition scan at every step.
func TestEnabledTrackerRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := randomNet(rng)
		part := n.ECSPartition()
		tr := NewEnabledTracker(n, part)
		if tr.NumECS() != len(part) {
			t.Fatalf("trial %d: NumECS %d != partition %d", trial, tr.NumECS(), len(part))
		}
		m := n.InitialMarking()
		cur := make([]uint64, tr.Stride())
		next := make([]uint64, tr.Stride())
		tr.Init(cur, m)
		if got, want := bitsOf(cur, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
			t.Fatalf("trial %d: Init %v, want %v", trial, got, want)
		}
		for step := 0; step < 60; step++ {
			// Fire a random enabled transition, capping token counts so
			// source-driven nets stay small.
			var enabled []int
			for _, tt := range n.Transitions {
				if m.Enabled(tt) {
					enabled = append(enabled, tt.ID)
				}
			}
			if len(enabled) == 0 {
				break
			}
			tid := enabled[rng.Intn(len(enabled))]
			fired := m.Fire(n.Transitions[tid])
			over := false
			for _, v := range fired {
				if v > 12 {
					over = true
				}
			}
			if over {
				break
			}
			m = fired
			tr.Update(next, cur, tid, m)
			if got, want := bitsOf(next, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
				t.Fatalf("trial %d step %d after t%d: tracker %v, want %v (touched %v)",
					trial, step, tid, got, want, tr.Touched(tid))
			}
			cur, next = next, cur
		}
		// ECSOf covers the whole partition.
		for _, e := range part {
			for _, tid := range e.Trans {
				if tr.ECSOf(tid) != e.Index {
					t.Fatalf("trial %d: ECSOf(%d) = %d, want %d", trial, tid, tr.ECSOf(tid), e.Index)
				}
			}
		}
	}
}

// TestEnabledTrackerSelfLoopUntouched: a pure self loop changes no
// token count, so firing it must touch no ECS keyed on that place.
func TestEnabledTrackerSelfLoopUntouched(t *testing.T) {
	n := New("selfloop")
	p := n.AddPlace("p", PlaceChannel, 1)
	q := n.AddPlace("q", PlaceChannel, 1)
	tl := n.AddTransition("loop", TransNormal)
	n.AddSelfLoop(p, tl, 1)
	n.AddArc(q, tl, 1)
	n.AddArcTP(tl, q, 2)
	reader := n.AddTransition("reader", TransNormal)
	n.AddArc(p, reader, 1)
	part := n.ECSPartition()
	tr := NewEnabledTracker(n, part)
	readerECS := tr.ECSOf(reader.ID)
	for _, e := range tr.Touched(tl.ID) {
		if int(e) == readerECS {
			t.Fatalf("self-loop firing should not touch the reader's ECS (touched %v)", tr.Touched(tl.ID))
		}
	}
	// q's count changes (consume 1, produce 2): the loop's own ECS is
	// keyed on q and must be touched.
	found := false
	for _, e := range tr.Touched(tl.ID) {
		if int(e) == tr.ECSOf(tl.ID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("q-delta should touch the loop ECS (touched %v)", tr.Touched(tl.ID))
	}
}

// TestEnabledTrackerZeroNetDelta: a transition whose every arc is a
// self loop (zero net token delta) touches nothing, and Update after
// firing it is a pure copy of the parent's set — the degenerate case
// the incremental analysis exists to shortcut.
func TestEnabledTrackerZeroNetDelta(t *testing.T) {
	n := New("zerodelta")
	p := n.AddPlace("p", PlaceChannel, 2)
	q := n.AddPlace("q", PlaceChannel, 2)
	spin := n.AddTransition("spin", TransNormal)
	n.AddSelfLoop(p, spin, 1)
	n.AddSelfLoop(q, spin, 1)
	take := n.AddTransition("take", TransNormal)
	n.AddArc(p, take, 1)
	put := n.AddTransition("put", TransNormal)
	n.AddArc(q, put, 1)
	n.AddArcTP(put, p, 1)
	part := n.ECSPartition()
	tr := NewEnabledTracker(n, part)
	if got := tr.Touched(spin.ID); len(got) != 0 {
		t.Fatalf("zero-net-delta firing should touch no ECS, touched %v", got)
	}
	m := n.InitialMarking()
	cur := make([]uint64, tr.Stride())
	tr.Init(cur, m)
	next := make([]uint64, tr.Stride())
	m2 := m.Fire(spin)
	if !m2.Equal(m) {
		t.Fatalf("zero-net-delta firing changed the marking: %v -> %v", m, m2)
	}
	tr.Update(next, cur, spin.ID, m2)
	if got, want := bitsOf(next, len(part)), bitsOf(cur, len(part)); !equalInts(got, want) {
		t.Fatalf("Update after zero-delta firing changed the set: %v -> %v", want, got)
	}
	// The walk invariant holds through interleaved zero-delta firings.
	seq := []int{spin.ID, take.ID, spin.ID, put.ID, spin.ID}
	for step, tid := range seq {
		if !m.Enabled(n.Transitions[tid]) {
			t.Fatalf("step %d: %s unexpectedly disabled at %v", step, n.Transitions[tid].Name, m)
		}
		m = m.Fire(n.Transitions[tid])
		tr.Update(next, cur, tid, m)
		if got, want := bitsOf(next, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
			t.Fatalf("step %d (%s): tracker %v, want %v", step, n.Transitions[tid].Name, got, want)
		}
		cur, next = next, cur
	}
}

// TestEnabledTrackerSharedPresetECSs: several distinct ECSs keyed on
// exactly the same places (same preset places, different weights —
// equal-conflict grouping is by weighted preset, so they stay
// separate). Any firing that changes those places must re-evaluate all
// of them, and the maintained sets must flip independently as the
// shared places drain.
func TestEnabledTrackerSharedPresetECSs(t *testing.T) {
	n := New("sharedpreset")
	a := n.AddPlace("a", PlaceChannel, 6)
	b := n.AddPlace("b", PlaceChannel, 6)
	// Three ECSs over preset {a, b} with weights (1,1), (2,2), (3,5);
	// the first has two members (a genuine multi-transition ECS).
	t11a := n.AddTransition("w11a", TransNormal)
	n.AddArc(a, t11a, 1)
	n.AddArc(b, t11a, 1)
	t11b := n.AddTransition("w11b", TransNormal)
	n.AddArc(a, t11b, 1)
	n.AddArc(b, t11b, 1)
	t22 := n.AddTransition("w22", TransNormal)
	n.AddArc(a, t22, 2)
	n.AddArc(b, t22, 2)
	t35 := n.AddTransition("w35", TransNormal)
	n.AddArc(a, t35, 3)
	n.AddArc(b, t35, 5)
	part := n.ECSPartition()
	tr := NewEnabledTracker(n, part)
	if len(part) != 3 {
		t.Fatalf("want 3 ECSs over the shared preset, got %d", len(part))
	}
	if tr.ECSOf(t11a.ID) != tr.ECSOf(t11b.ID) {
		t.Fatal("equal-weight transitions should share an ECS")
	}
	// Every transition's firing changes both shared places, so every
	// ECS must appear in every touched list.
	for _, tt := range n.Transitions {
		touched := tr.Touched(tt.ID)
		if len(touched) != len(part) {
			t.Fatalf("firing %s must touch all %d ECSs, touched %v", tt.Name, len(part), touched)
		}
	}
	// Drain the shared places: (6,6) -w35-> (3,1) -w11-> (2,0); the
	// three ECSs disable at different points, all tracked.
	m := n.InitialMarking()
	cur := make([]uint64, tr.Stride())
	next := make([]uint64, tr.Stride())
	tr.Init(cur, m)
	if got := bitsOf(cur, len(part)); len(got) != 3 {
		t.Fatalf("all ECSs enabled at start, got %v", got)
	}
	for step, tid := range []int{t35.ID, t11a.ID} {
		m = m.Fire(n.Transitions[tid])
		tr.Update(next, cur, tid, m)
		if got, want := bitsOf(next, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
			t.Fatalf("step %d: tracker %v, want %v", step, got, want)
		}
		cur, next = next, cur
	}
	if got := bitsOf(cur, len(part)); len(got) != 0 {
		t.Fatalf("after draining b, no ECS should be enabled, got %v", got)
	}
}
