package sched

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/petri"
)

// Marking-graph engine.
//
// The paper's EP/EP_ECS procedure explores the reachability *tree*;
// equal markings reached along different interleavings are re-explored,
// which is exponential for multi-process systems. This engine searches
// the reachability *graph* instead: schedules are positional objects
// ("which ECS do I fire at this marking"), and a tree schedule whose
// markings lie inside the explored space always induces a positional
// one, so nothing is lost (see DESIGN.md for the argument; the paper
// itself leaves the exactness of its pruning open).
//
// The engine:
//  1. enumerates the markings reachable under per-place caps derived
//     from the termination condition (the irrelevance criterion caps a
//     place at degree + max input weight — the most a single firing can
//     overshoot a saturated place; user place bounds cap directly);
//  2. computes the largest set X of markings such that every marking in
//     X has at least one allowed ECS whose successors all stay in X and
//     every marking in X can still reach the initial marking inside X
//     (an alternating closure/reachability fixpoint);
//  3. picks per marking the best surviving ECS (prefer internal
//     transitions over awaits, honor SELECT priorities, then walk down
//     the distance-to-root ranking) and emits the induced sub-graph as
//     the schedule.

// CapProvider is implemented by termination conditions that can bound
// the token count of each place for the graph engine.
type CapProvider interface {
	Caps(n *petri.Net) []int
}

// Caps implements CapProvider: the graph engine bounds every place at
// its structural degree (Def. 4.4) — "the best one can extract from the
// PN structure about place bounds" in the paper's words. Accumulating
// tokens beyond the degree cannot enable new behaviour at the place
// itself, and bounding there keeps the marking graph small; nets whose
// schedules genuinely need deeper buffers can supply explicit
// PlaceBounds.
func (ir *Irrelevance) Caps(n *petri.Net) []int {
	caps := make([]int, len(n.Places))
	for i, p := range n.Places {
		caps[i] = ir.degrees[i]
		if caps[i] < p.Initial {
			caps[i] = p.Initial
		}
	}
	return caps
}

// Caps implements CapProvider: explicit bounds cap directly; unbounded
// places fall back to the irrelevance cap.
func (pb *PlaceBounds) Caps(n *petri.Net) []int {
	fallback := NewIrrelevance(n).Caps(n)
	caps := make([]int, len(n.Places))
	for i := range caps {
		if pb.Bounds[i] > 0 {
			caps[i] = pb.Bounds[i]
		} else {
			caps[i] = fallback[i]
		}
	}
	return caps
}

// Caps implements CapProvider: the elementwise minimum over members
// that provide caps.
func (a Any) Caps(n *petri.Net) []int {
	var out []int
	for _, t := range a {
		cp, ok := t.(CapProvider)
		if !ok {
			continue
		}
		c := cp.Caps(n)
		if out == nil {
			out = c
			continue
		}
		for i := range out {
			if c[i] < out[i] {
				out[i] = c[i]
			}
		}
	}
	return out
}

type gstate struct {
	id int
	m  petri.Marking
	// ecs lists the allowed enabled ECSs; succ[i][j] is the state of
	// firing transition j of ecs[i], or -1 when the successor exceeds
	// the caps (making the ECS unusable).
	ecs  []*petri.ECS
	succ [][]int

	inX    bool
	rank   int // lfp stage of the reachability pass; -1 = unreached
	choice int // chosen ECS index; -1 = none
}

type graphEngine struct {
	net    *petri.Net
	source int
	opt    Options
	part   []*petri.ECS
	caps   []int

	states []*gstate
	index  map[string]int
	over   bool
}

func findScheduleGraph(n *petri.Net, source int, opt Options) (*Schedule, error) {
	ge := &graphEngine{
		net:    n,
		source: source,
		opt:    opt,
		part:   n.ECSPartition(),
		index:  map[string]int{},
	}
	if cp, ok := opt.Term.(CapProvider); ok {
		ge.caps = cp.Caps(n)
	} else {
		ge.caps = NewIrrelevance(n).Caps(n)
	}
	st := n.Transitions[source]
	m0 := n.InitialMarking()
	rootID := ge.intern(m0)
	ge.explore()
	if ge.over {
		return nil, fmt.Errorf("sched: source %s: %w (graph engine, %d states)", st.Name, ErrBudget, len(ge.states))
	}
	if !ge.solve(rootID) {
		return nil, fmt.Errorf("sched: source %s under %s: %w (graph engine, %d states)",
			st.Name, ge.opt.Term.Name(), ErrNoSchedule, len(ge.states))
	}
	s := ge.build(rootID)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: internal error: graph engine produced invalid schedule: %v", err)
	}
	return s, nil
}

func (ge *graphEngine) intern(m petri.Marking) int {
	key := m.Key()
	if id, ok := ge.index[key]; ok {
		return id
	}
	id := len(ge.states)
	if id >= ge.opt.MaxNodes {
		ge.over = true
		return -1
	}
	ge.states = append(ge.states, &gstate{id: id, m: m, choice: -1, rank: -1})
	ge.index[key] = id
	return id
}

// allowed reports whether the ECS may appear in this schedule.
func (ge *graphEngine) allowed(E *petri.ECS) bool {
	if !ge.opt.MultiSource && E.IsUncontrollable(ge.net) && E.Trans[0] != ge.source {
		return false
	}
	return true
}

func (ge *graphEngine) withinCaps(m petri.Marking) bool {
	for i, v := range m {
		if v > ge.caps[i] {
			return false
		}
	}
	return true
}

// explore runs the bounded forward BFS.
func (ge *graphEngine) explore() {
	for qi := 0; qi < len(ge.states) && !ge.over; qi++ {
		s := ge.states[qi]
		for _, E := range ge.part {
			if !ge.allowed(E) || !E.Enabled(ge.net, s.m) {
				continue
			}
			succ := make([]int, len(E.Trans))
			for j, tid := range E.Trans {
				next := s.m.Fire(ge.net.Transitions[tid])
				if !ge.withinCaps(next) {
					succ[j] = -1
					continue
				}
				succ[j] = ge.intern(next)
				if ge.over {
					return
				}
			}
			s.ecs = append(s.ecs, E)
			s.succ = append(s.succ, succ)
		}
	}
}

// ecsUsable reports whether ECS i of state s keeps all successors inside
// the current X set.
func (ge *graphEngine) ecsUsable(s *gstate, i int) bool {
	for _, t := range s.succ[i] {
		if t < 0 || !ge.states[t].inX {
			return false
		}
	}
	return true
}

// solve runs the alternating fixpoint; it returns true when the initial
// marking admits a schedule (the root's source successor stays in X).
func (ge *graphEngine) solve(rootID int) bool {
	for _, s := range ge.states {
		s.inX = true
	}
	for {
		changed := false
		// Closure: a state needs at least one usable ECS; removals
		// cascade across outer rounds.
		for _, s := range ge.states {
			if !s.inX {
				continue
			}
			ok := false
			for i := range s.ecs {
				if ge.ecsUsable(s, i) {
					ok = true
					break
				}
			}
			if !ok {
				s.inX = false
				changed = true
			}
		}
		if !ge.states[rootID].inX {
			return false
		}
		ge.computeRanks(rootID)
		for _, s := range ge.states {
			if s.inX && s.rank < 0 {
				s.inX = false
				changed = true
			}
		}
		if !ge.states[rootID].inX {
			return false
		}
		if !changed {
			break
		}
	}
	// The root must be able to fire the source and stay in X.
	root := ge.states[rootID]
	for i, E := range root.ecs {
		if len(E.Trans) == 1 && E.Trans[0] == ge.source && ge.ecsUsable(root, i) {
			return true
		}
	}
	return false
}

// occupancyWeight is the rank penalty per buffered token: paths through
// low-occupancy markings are strongly preferred, which is what makes the
// synthesized channel bounds minimal (unit buffers for the PFC app).
const occupancyWeight = 64

// computeRanks runs a reverse Dijkstra from the root within X: rank(s) =
// min over usable ECSs and successors t of w(s) + rank(t), with
// w(s) = 1 + occupancyWeight * occupancy(s). A state with a finite rank
// can reach the root inside X; following any rank-decreasing choice
// yields property 5 of the schedule definition.
func (ge *graphEngine) computeRanks(rootID int) {
	for _, s := range ge.states {
		s.rank = -1
	}
	// Reverse adjacency restricted to usable ECS edges.
	rev := make([][]int32, len(ge.states)) // target -> sources
	for _, s := range ge.states {
		if !s.inX {
			continue
		}
		for i := range s.ecs {
			if !ge.ecsUsable(s, i) {
				continue
			}
			for _, t := range s.succ[i] {
				rev[t] = append(rev[t], int32(s.id))
			}
		}
	}
	weight := func(s *gstate) int {
		return 1 + occupancyWeight*ge.occupancy(s.m)
	}
	dist := make([]int, len(ge.states))
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[rootID] = 0
	h := &rankHeap{items: []rankItem{{id: rootID, d: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.id] {
			continue
		}
		for _, sid := range rev[it.id] {
			s := ge.states[sid]
			cand := it.d + weight(s)
			if cand < dist[sid] {
				dist[sid] = cand
				h.push(rankItem{id: int(sid), d: cand})
			}
		}
	}
	for _, s := range ge.states {
		if s.inX && dist[s.id] < 1<<30 {
			s.rank = dist[s.id]
		}
	}
}

type rankItem struct {
	id int
	d  int
}

// rankHeap is a minimal binary min-heap on d.
type rankHeap struct {
	items []rankItem
}

func (h *rankHeap) Len() int { return len(h.items) }

func (h *rankHeap) push(it rankItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *rankHeap) pop() rankItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// selArmIndex returns the SELECT arm priority of a singleton ECS, or a
// large value for non-arms.
func (ge *graphEngine) selArmIndex(E *petri.ECS) int {
	if len(E.Trans) != 1 {
		return 1 << 20
	}
	t := ge.net.Transitions[E.Trans[0]]
	for _, a := range t.In {
		p := ge.net.Places[a.Place]
		if ci, ok := p.Cond.(*compile.ChoiceInfo); ok && ci.Kind == compile.ChoiceSelect {
			if len(t.Label) > 3 && t.Label[:3] == "sel" {
				idx := 0
				for _, c := range t.Label[3:] {
					if c < '0' || c > '9' {
						return 1 << 20
					}
					idx = idx*10 + int(c-'0')
				}
				return idx
			}
		}
	}
	return 1 << 20
}

// occupancy returns the total channel/port token count of a marking —
// the buffer memory the marking pins down.
func (ge *graphEngine) occupancy(m petri.Marking) int {
	total := 0
	for i, v := range m {
		switch ge.net.Places[i].Kind {
		case petri.PlaceChannel, petri.PlacePort:
			total += v
		}
	}
	return total
}

// choose picks σ(s): a usable ECS that makes progress toward the root
// (some successor with smaller rank — this alone guarantees property 5),
// preferring internal activity over awaits, honoring SELECT arm
// priorities, and keeping channel occupancy low so synthesized buffers
// stay minimal (the paper's PFC result: all channels of unit size).
func (ge *graphEngine) choose(s *gstate) int {
	type cand struct {
		i   int
		key [5]int
	}
	var cands []cand
	for i, E := range s.ecs {
		if !ge.ecsUsable(s, i) {
			continue
		}
		minSucc := 1 << 30
		for _, t := range s.succ[i] {
			if r := ge.states[t].rank; r >= 0 && r < minSucc {
				minSucc = r
			}
		}
		if minSucc >= s.rank {
			continue // no progress toward the root via this ECS
		}
		var key [5]int
		if E.IsSourceECS(ge.net) {
			key[0] = 1
		}
		key[1] = ge.selArmIndex(E)
		key[2] = minSucc
		key[3] = E.Index
		cands = append(cands, cand{i: i, key: key})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		for k := 0; k < len(cands[a].key); k++ {
			if cands[a].key[k] != cands[b].key[k] {
				return cands[a].key[k] < cands[b].key[k]
			}
		}
		return false
	})
	return cands[0].i
}

// build emits the schedule induced by σ from the root.
func (ge *graphEngine) build(rootID int) *Schedule {
	s := &Schedule{Net: ge.net, Source: ge.source}
	s.Stats = SearchStats{NodesCreated: len(ge.states)}
	nodeOf := map[int]*Node{}
	var mk func(id int) *Node
	mk = func(id int) *Node {
		if n, ok := nodeOf[id]; ok {
			return n
		}
		st := ge.states[id]
		n := &Node{ID: len(s.Nodes), Marking: st.m}
		nodeOf[id] = n
		s.Nodes = append(s.Nodes, n)
		var ecsIdx int
		if id == rootID {
			// The root fires the source.
			ecsIdx = -1
			for i, E := range st.ecs {
				if len(E.Trans) == 1 && E.Trans[0] == ge.source {
					ecsIdx = i
					break
				}
			}
		} else {
			ecsIdx = ge.choose(st)
		}
		if ecsIdx < 0 {
			return n // defensive; solve() guarantees a choice
		}
		n.ECS = st.ecs[ecsIdx]
		for j, tid := range st.ecs[ecsIdx].Trans {
			n.Edges = append(n.Edges, Edge{Trans: tid, To: mk(st.succ[ecsIdx][j])})
		}
		return n
	}
	s.Root = mk(rootID)
	s.Stats.NodesKept = len(s.Nodes)
	return s
}

// GraphDiagnosis reports why the graph engine rejected a net — which
// markings deadlock (no allowed ECS enabled) or are cap-dead (every
// enabled ECS has a successor beyond the place caps), and which states
// survived the fixpoint. It is a debugging aid for specification
// authors chasing false paths (Section 7.2).
type GraphDiagnosis struct {
	States    int
	Deadlocks []petri.Marking // no allowed ECS enabled at all
	CapDead   []petri.Marking // every ECS escapes the caps
	RootInX   bool
	Solved    bool
	// FirstRemoved lists sample markings removed by the fixpoint's
	// first closure round excluding the plain dead ones — the frontier
	// of the poisoning cascade.
	FirstRemoved []petri.Marking
}

// Diagnose runs the graph engine's exploration and fixpoint and reports
// the failure structure. The sample lists are truncated to 16 entries.
func Diagnose(n *petri.Net, source int, opt *Options) *GraphDiagnosis {
	eff := opt.withDefaults(n, source)
	ge := &graphEngine{
		net:    n,
		source: source,
		opt:    eff,
		part:   n.ECSPartition(),
		index:  map[string]int{},
	}
	if cp, ok := eff.Term.(CapProvider); ok {
		ge.caps = cp.Caps(n)
	} else {
		ge.caps = NewIrrelevance(n).Caps(n)
	}
	rootID := ge.intern(n.InitialMarking())
	ge.explore()
	d := &GraphDiagnosis{States: len(ge.states)}
	const maxSample = 16
	plainDead := map[int]bool{}
	for _, s := range ge.states {
		if len(s.ecs) == 0 {
			plainDead[s.id] = true
			if len(d.Deadlocks) < maxSample {
				d.Deadlocks = append(d.Deadlocks, s.m)
			}
			continue
		}
		usable := false
		for i := range s.succ {
			ok := true
			for _, t := range s.succ[i] {
				if t < 0 {
					ok = false
					break
				}
			}
			if ok {
				usable = true
				break
			}
		}
		if !usable {
			plainDead[s.id] = true
			if len(d.CapDead) < maxSample {
				d.CapDead = append(d.CapDead, s.m)
			}
		}
	}
	d.Solved = ge.solve(rootID)
	d.RootInX = ge.states[rootID].inX
	for _, s := range ge.states {
		if !s.inX && !plainDead[s.id] && len(d.FirstRemoved) < maxSample {
			d.FirstRemoved = append(d.FirstRemoved, s.m)
		}
	}
	return d
}
