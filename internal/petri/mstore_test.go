package petri

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMarkingStoreRoundTrip: intern assigns dense IDs in order, lookup
// finds them again, and At returns the exact vector.
func TestMarkingStoreRoundTrip(t *testing.T) {
	const places = 7
	s := NewMarkingStore(places)
	rng := rand.New(rand.NewSource(1))
	var markings []Marking
	seen := map[string]MarkID{}
	for i := 0; i < 500; i++ {
		m := make(Marking, places)
		for j := range m {
			m[j] = rng.Intn(4)
		}
		id, isNew := s.Intern(m)
		if prev, ok := seen[m.Key()]; ok {
			if isNew {
				t.Fatalf("marking %q re-interned as new", m.Key())
			}
			if id != prev {
				t.Fatalf("marking %q changed ID %d -> %d", m.Key(), prev, id)
			}
		} else {
			if !isNew {
				t.Fatalf("fresh marking %q not reported new", m.Key())
			}
			if int(id) != len(seen) {
				t.Fatalf("IDs not dense: got %d for insertion %d", id, len(seen))
			}
			seen[m.Key()] = id
			markings = append(markings, m.Clone())
		}
	}
	if s.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d distinct", s.Len(), len(seen))
	}
	for _, m := range markings {
		id, ok := s.Lookup(m)
		if !ok || id != seen[m.Key()] {
			t.Fatalf("lookup %q = (%v, %v), want (%v, true)", m.Key(), id, ok, seen[m.Key()])
		}
		if !s.At(id).Equal(m) {
			t.Fatalf("At(%d) = %v, want %v", id, s.At(id), m)
		}
	}
	if _, ok := s.Lookup(Marking{9, 9, 9, 9, 9, 9, 9}); ok {
		t.Fatal("lookup of never-interned marking succeeded")
	}
}

// TestMarkingStoreCollisions forces probe collisions: a 2-slot table
// puts every second marking in an occupied bucket, exercising linear
// probing, and the growth path rehashes everything. All round-trips
// must survive.
func TestMarkingStoreCollisions(t *testing.T) {
	const places = 3
	s := newMarkingStoreCap(places, 2)
	var ms []Marking
	for i := 0; i < 64; i++ {
		m := Marking{i, i % 5, i / 3}
		ms = append(ms, m)
		if id, isNew := s.Intern(m); !isNew || int(id) != i {
			t.Fatalf("intern %v = (%d, %v), want (%d, true)", m, id, isNew, i)
		}
	}
	// Re-intern everything: same IDs, nothing new.
	for i, m := range ms {
		if id, isNew := s.Intern(m); isNew || int(id) != i {
			t.Fatalf("re-intern %v = (%d, %v), want (%d, false)", m, id, isNew, i)
		}
	}
	for i, m := range ms {
		if id, ok := s.Lookup(m); !ok || int(id) != i {
			t.Fatalf("lookup %v = (%d, %v), want (%d, true)", m, id, ok, i)
		}
		if !s.At(MarkID(i)).Equal(m) {
			t.Fatalf("At(%d) = %v, want %v", i, s.At(MarkID(i)), m)
		}
	}
}

// TestMarkingStoreViewStability: views taken before arena growth stay
// readable and equal to the interned vector afterwards.
func TestMarkingStoreViewStability(t *testing.T) {
	s := NewMarkingStore(4)
	first := Marking{1, 2, 3, 4}
	id, _ := s.Intern(first)
	view := s.At(id)
	for i := 0; i < 10000; i++ {
		s.Intern(Marking{i, i + 1, i + 2, i + 3})
	}
	if !view.Equal(first) {
		t.Fatalf("early view corrupted after growth: %v", view)
	}
	if !s.At(id).Equal(first) {
		t.Fatalf("At(%d) corrupted after growth: %v", id, s.At(id))
	}
}

// TestMarkingStoreConcurrentReads: once interning stops, At/Lookup/All
// are safe from many goroutines — the contract the PR-1 worker pool
// relies on. Run under -race (the Makefile does).
func TestMarkingStoreConcurrentReads(t *testing.T) {
	const places = 5
	s := NewMarkingStore(places)
	var ms []Marking
	for i := 0; i < 200; i++ {
		m := Marking{i, i % 7, i % 3, i % 11, i % 2}
		ms = append(ms, m)
		s.Intern(m)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				i := (w*53 + r*17) % len(ms)
				id, ok := s.Lookup(ms[i])
				if !ok || int(id) != i {
					t.Errorf("concurrent lookup %d = (%d, %v)", i, id, ok)
					return
				}
				if !s.At(id).Equal(ms[i]) {
					t.Errorf("concurrent At(%d) mismatch", id)
					return
				}
				n := 0
				for range s.All() {
					n++
				}
				if n != s.Len() {
					t.Errorf("concurrent All yielded %d of %d", n, s.Len())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLookupHashAliased: the hash-only probe backing the dist
// protocol-3 candNew fast path resolves interned markings by bare hash,
// and interning two distinct vectors under one hash flips HashAliased —
// the signal that callers must fall back to vector-exact lookups.
func TestLookupHashAliased(t *testing.T) {
	s := newMarkingStoreCap(3, 2) // tiny table: forces probe runs and growth
	var ms []Marking
	for i := 0; i < 40; i++ {
		m := Marking{i, i % 4, i / 7}
		ms = append(ms, m)
		s.Intern(m)
	}
	if s.HashAliased() {
		t.Fatal("store reports aliasing without a colliding pair")
	}
	for i, m := range ms {
		id, ok := s.LookupHash(HashMarking(m))
		if !ok || int(id) != i {
			t.Fatalf("LookupHash(%v) = (%d, %v), want (%d, true)", m, id, ok, i)
		}
	}
	if _, ok := s.LookupHash(HashMarking(Marking{99, 99, 99})); ok {
		t.Fatal("LookupHash resolved a never-interned hash")
	}
	// Force an alias: a second vector interned under the first one's
	// hash (InternHashed trusts the caller's hash).
	h0 := HashMarking(ms[0])
	alias := Marking{77, 0, 0}
	id, isNew := s.InternHashed(alias, h0)
	if !isNew || int(id) != len(ms) {
		t.Fatalf("aliased intern = (%d, %v), want (%d, true)", id, isNew, len(ms))
	}
	if !s.HashAliased() {
		t.Fatal("aliasing pair not detected at intern")
	}
	if again, isNew := s.InternHashed(alias, h0); isNew || again != id {
		t.Fatalf("re-intern of aliased vector = (%d, %v), want (%d, false)", again, isNew, id)
	}
	// Exact lookups still resolve both sides of the alias.
	if got, ok := s.LookupHashed(ms[0], h0); !ok || got != 0 {
		t.Fatalf("exact lookup of original = (%d, %v), want (0, true)", got, ok)
	}
	if got, ok := s.LookupHashed(alias, h0); !ok || got != id {
		t.Fatalf("exact lookup of alias = (%d, %v), want (%d, true)", got, ok, id)
	}
}

// TestFireInto: matches Fire, reuses the destination buffer, and a
// self-loop round-trips.
func TestFireInto(t *testing.T) {
	n := New("fire")
	p := n.AddPlace("p", PlaceChannel, 2)
	q := n.AddPlace("q", PlaceChannel, 0)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 2)
	n.AddArcTP(tr, q, 3)
	m := n.InitialMarking()
	want := m.Fire(tr)
	var scratch Marking
	scratch = m.FireInto(scratch, tr)
	if !scratch.Equal(want) {
		t.Fatalf("FireInto = %v, want %v", scratch, want)
	}
	// Second call must reuse the same backing array.
	prev := &scratch[0]
	scratch = want.FireInto(scratch, tr)
	if &scratch[0] != prev {
		t.Fatal("FireInto reallocated a buffer with sufficient capacity")
	}
	if m[p.ID] != 2 || m[q.ID] != 0 {
		t.Fatalf("FireInto mutated the source marking: %v", m)
	}
}

// TestZeroAllocFiringAndIntern pins the hot pair of the schedule-search
// inner loop: firing into a scratch buffer and interning an
// already-seen marking must not allocate at all.
func TestZeroAllocFiringAndIntern(t *testing.T) {
	n := New("hot")
	p := n.AddPlace("p", PlaceChannel, 1)
	q := n.AddPlace("q", PlaceChannel, 0)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 1)
	n.AddArcTP(tr, q, 1)
	m := n.InitialMarking()
	s := NewMarkingStore(len(n.Places))
	scratch := make(Marking, len(n.Places))
	scratch = m.FireInto(scratch, tr)
	s.Intern(m)
	s.Intern(scratch)
	allocs := testing.AllocsPerRun(200, func() {
		scratch = m.FireInto(scratch, tr)
		if _, isNew := s.Intern(scratch); isNew {
			t.Fatal("marking should already be interned")
		}
		if _, ok := s.Lookup(m); !ok {
			t.Fatal("lookup lost the initial marking")
		}
	})
	if allocs != 0 {
		t.Fatalf("fire+intern of a seen marking allocated %.1f times per run, want 0", allocs)
	}
}
