package flowc

// AST node definitions for FlowC.

// PortDir is the direction of a process port.
type PortDir int

const (
	// PortIn receives data.
	PortIn PortDir = iota
	// PortOut sends data.
	PortOut
)

// String implements fmt.Stringer.
func (d PortDir) String() string {
	if d == PortIn {
		return "In"
	}
	return "Out"
}

// PortDecl is a port in a process header: `In DPORT name`.
type PortDecl struct {
	Name string
	Dir  PortDir
	Pos  Pos
}

// Process is one FlowC process declaration.
type Process struct {
	Name  string
	Ports []PortDecl
	Body  *Block
	Pos   Pos
}

// PortByName returns the declared port or nil.
func (p *Process) PortByName(name string) *PortDecl {
	for i := range p.Ports {
		if p.Ports[i].Name == name {
			return &p.Ports[i]
		}
	}
	return nil
}

// File is a parsed FlowC source file: a list of processes.
type File struct {
	Processes []*Process
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// VarDecl is one declarator of a declaration statement.
type VarDecl struct {
	Name      string
	ArraySize int  // 0 for scalars
	Init      Expr // optional
	Pos       Pos
}

// DeclStmt declares one or more int variables: `int n, i = 0, buf[10];`.
type DeclStmt struct {
	Vars []VarDecl
	Pos  Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// If is an if / if-else statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// For is a C-style for loop. Init may be an ExprStmt or DeclStmt; Cond
// and Post may be nil.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// Read is `READ_DATA(port, dest, nitems)`. Dest is either `&scalar` or an
// array identifier; NItems must be a positive integer constant (the paper
// requires communication rates to be constants).
type Read struct {
	Port   string
	Dest   Expr // Ident (array) — the & of scalars is absorbed by the parser
	NItems int
	Pos    Pos
}

// Write is `WRITE_DATA(port, src, nitems)`.
type Write struct {
	Port   string
	Src    Expr
	NItems int
	Pos    Pos
}

// SelectArm is one `case k:` arm of a SELECT switch, bound to the k-th
// (port, nitems) pair of the SELECT argument list.
type SelectArm struct {
	Port   string
	NItems int
	Body   []Stmt
	Pos    Pos
}

// Select is the synchronization-dependent choice construct of Section
// 7.1: `switch (SELECT(p0, n0, p1, n1, ...)) { case 0: ...; case 1: ... }`.
// Arms are listed in SELECT argument order; earlier arms have higher
// priority at run time.
type Select struct {
	Arms []SelectArm
	Pos  Pos
}

func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Read) stmtNode()     {}
func (*Write) stmtNode()    {}
func (*Select) stmtNode()   {}

// StmtPos returns the statement position.
func (s *DeclStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *Block) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *If) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *While) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *For) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *Read) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *Write) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement position.
func (s *Select) StmtPos() Pos { return s.Pos }

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// Binary is a binary operation; Op is the token kind of the operator.
type Binary struct {
	Op   TokKind
	L, R Expr
	Pos  Pos
}

// Unary is `!x` or `-x`.
type Unary struct {
	Op  TokKind
	X   Expr
	Pos Pos
}

// Assign is `lhs = rhs`, `lhs += rhs` or `lhs -= rhs`.
type Assign struct {
	Op  TokKind // TokAssign, TokPlusEq, TokMinusEq
	LHS Expr    // Ident or Index
	RHS Expr
	Pos Pos
}

// IncDec is `x++`, `x--`, `++x` or `--x`.
type IncDec struct {
	Op   TokKind // TokInc or TokDec
	X    Expr    // Ident or Index
	Post bool
	Pos  Pos
}

// Index is `arr[i]`.
type Index struct {
	Arr Expr // Ident
	Idx Expr
	Pos Pos
}

func (*Ident) exprNode()  {}
func (*IntLit) exprNode() {}
func (*Binary) exprNode() {}
func (*Unary) exprNode()  {}
func (*Assign) exprNode() {}
func (*IncDec) exprNode() {}
func (*Index) exprNode()  {}

// ExprPos returns the expression position.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *IntLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *Assign) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *IncDec) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression position.
func (e *Index) ExprPos() Pos { return e.Pos }
