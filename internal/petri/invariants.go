package petri

import "repro/internal/linalg"

// Structural invariants. T-invariants (firing-count vectors that return
// a marking to itself) drive the scheduling heuristics; P-invariants
// (weighted token conservation laws) certify structural properties such
// as the single-program-counter discipline of compiled processes and
// the channel/complement pairing of bounded channels.

// TInvariants returns the minimal-support non-negative T-invariant basis
// of the net: vectors x with C·x = 0, one entry per transition.
func (n *Net) TInvariants() []linalg.Vector {
	return linalg.TInvariantBasis(n.IncidenceMatrix())
}

// PInvariants returns the minimal-support non-negative P-invariant basis
// of the net: vectors y with yᵀ·C = 0, one entry per place. For every
// P-invariant y, the weighted token sum Σ y(p)·M(p) is constant over all
// reachable markings.
func (n *Net) PInvariants() []linalg.Vector {
	c := n.IncidenceMatrix()
	// Transpose: places become columns.
	ct := make([][]int, len(n.Transitions))
	for j := range ct {
		ct[j] = make([]int, len(n.Places))
		for i := range c {
			ct[j][i] = c[i][j]
		}
	}
	return linalg.TInvariantBasis(ct)
}

// InvariantValue returns the weighted token sum Σ y(p)·m(p) of a
// P-invariant at a marking.
func InvariantValue(y linalg.Vector, m Marking) int {
	s := 0
	for i, w := range y {
		s += w * m[i]
	}
	return s
}
