// Command qssbatch generates a randomized corpus of FlowC applications
// and synthesizes them concurrently, reporting aggregate throughput —
// the scale-out driver for the quasi-static synthesis flow.
//
// Usage:
//
//	qssbatch [-n apps] [-seed N] [-workers N] [-explore-workers N]
//	         [-dist-workers N] [-dist-endpoint ep] [-freeze-levels]
//	         [-compare] [-cpuprofile f] [-memprofile f] [shape flags] [-v]
//
// -workers bounds the number of concurrent app syntheses (0 =
// GOMAXPROCS); -explore-workers additionally parallelizes each
// schedule search's state-space exploration (the second level of the
// parallelism model). -dist-workers instead shards each exploration
// across that many worker OS processes — spawned locally, or awaited
// as external cmd/qssd processes at -dist-endpoint — over one shared
// pool for the whole batch; results are byte-identical either way.
// Workers hold only their owned hash shards by default (per-worker
// memory ~1/N of the state space); -dist-full-replicas falls back to
// full worker replicas rebuilt from delta broadcasts.
// -freeze-levels moves closed exploration levels to on-disk delta
// segments (and, with -dist-workers, arms the same tier in spawned
// workers via QSS_DIST_FREEZE), trading thaw reads for a hot store
// that no longer scales with marking width — results are
// byte-identical. -compare additionally runs the serial baseline and
// prints the speedup. -cpuprofile/-memprofile write pprof profiles, so perf
// regressions can be diagnosed without editing source. Shape flags
// mirror corpus.Config; see internal/corpus.
//
// Contradictory flag combinations (negative counts, -dist-endpoint
// without -dist-workers, -dist-workers together with -explore-workers
// parallelism) are rejected with a usage error rather than silently
// clamped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/profiling"
)

func main() {
	// MaybeWorker first: children re-executed by dist.SpawnLocal must
	// become workers, not run another batch.
	dist.MaybeWorker()
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

// batchFlags holds the scalar flags that need cross-validation.
type batchFlags struct {
	n                int
	workers          int
	exploreWorkers   int
	distWorkers      int
	distEndpoint     string
	distFullReplicas bool
}

// validate rejects contradictory or out-of-range combinations with a
// descriptive error instead of silently clamping.
func (f *batchFlags) validate() error {
	switch {
	case f.n < 0:
		return fmt.Errorf("-n must be >= 0, got %d", f.n)
	case f.workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", f.workers)
	case f.exploreWorkers < 0:
		return fmt.Errorf("-explore-workers must be >= 0 (0 = auto budget), got %d", f.exploreWorkers)
	case f.distWorkers < 0:
		return fmt.Errorf("-dist-workers must be >= 0 (0 = no worker processes), got %d", f.distWorkers)
	case f.distEndpoint != "" && f.distWorkers == 0:
		return fmt.Errorf("-dist-endpoint requires -dist-workers >= 1 (how many workers to await)")
	case f.distWorkers > 0 && f.exploreWorkers > 1:
		return fmt.Errorf("-dist-workers and -explore-workers > 1 are contradictory: pick in-process or cross-process exploration")
	case f.distFullReplicas && f.distWorkers == 0:
		return fmt.Errorf("-dist-full-replicas requires -dist-workers >= 1 (it selects the worker replica mode)")
	}
	return nil
}

func realMain() (code int) {
	var bf batchFlags
	flag.IntVar(&bf.n, "n", 20, "number of corpus apps to generate")
	seed := flag.Int64("seed", 1, "master corpus seed")
	flag.IntVar(&bf.workers, "workers", 0, "concurrent app syntheses (0 = GOMAXPROCS)")
	flag.IntVar(&bf.exploreWorkers, "explore-workers", 1, "goroutines per schedule-search exploration (0 = auto budget)")
	flag.IntVar(&bf.distWorkers, "dist-workers", 0, "worker OS processes sharding each exploration (0 = none)")
	flag.StringVar(&bf.distEndpoint, "dist-endpoint", "", "await externally started qssd workers at this endpoint instead of spawning")
	flag.BoolVar(&bf.distFullReplicas, "dist-full-replicas", false, "fall back to full worker replicas instead of trimmed owned-shard ones")
	freezeLevels := flag.Bool("freeze-levels", false, "freeze closed exploration levels to on-disk delta segments")
	compare := flag.Bool("compare", false, "also run the serial baseline and report the speedup")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := flag.Bool("v", false, "print one line per app")

	cfg := corpus.DefaultConfig()
	flag.IntVar(&cfg.MaxPipelines, "pipelines", cfg.MaxPipelines, "max pipelines (tasks) per app")
	flag.IntVar(&cfg.MaxStages, "stages", cfg.MaxStages, "max stages per tree pipeline")
	flag.IntVar(&cfg.MaxFanOut, "fanout", cfg.MaxFanOut, "max fan-out per stage")
	flag.IntVar(&cfg.MaxOps, "ops", cfg.MaxOps, "max unrolled channel ops per edge")
	flag.IntVar(&cfg.MaxWidth, "width", cfg.MaxWidth, "max multi-rate width per op")
	flag.Float64Var(&cfg.ChoiceDensity, "choice", cfg.ChoiceDensity, "data-dependent tap probability per stage")
	flag.Float64Var(&cfg.SelectDensity, "select", cfg.SelectDensity, "SELECT-drain pipeline probability")
	flag.Float64Var(&cfg.BoundDensity, "bounds", cfg.BoundDensity, "explicit channel bound probability")
	flag.Parse()

	if err := bf.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		flag.Usage()
		return 2
	}
	apps := corpus.GenerateCorpus(*seed, bf.n, cfg)
	procs := 0
	for _, a := range apps {
		procs += a.Procs
	}
	fmt.Printf("corpus: %d apps, %d processes (seed %d)\n", len(apps), procs, *seed)

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			if code == 0 {
				code = 2
			}
		}
	}()

	// The batch scales out over apps; the per-app source pool stays
	// serial so the app level and the frontier level are the only two
	// pools contending for cores.
	copt := &core.Options{Workers: 1, ExploreWorkers: bf.exploreWorkers, DisableCache: true, FreezeLevels: *freezeLevels}
	if bf.distWorkers > 0 {
		if *freezeLevels {
			// Spawned workers inherit the environment; externally
			// started qssd workers take -freeze-levels themselves.
			os.Setenv(dist.EnvFreeze, "1")
		}
		// One pool amortized over the whole batch (a dist pool is a
		// sequential resource, so the batch itself stays serial too).
		var (
			pool *dist.Pool
			err  error
		)
		if bf.distEndpoint != "" {
			fmt.Printf("awaiting %d qssd worker(s) at %s\n", bf.distWorkers, bf.distEndpoint)
			pool, err = dist.Listen(bf.distEndpoint, bf.distWorkers)
		} else {
			pool, err = dist.SpawnLocal(bf.distWorkers)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			return 1
		}
		defer pool.Close()
		if bf.distFullReplicas {
			pool.SetFullReplicas(true)
		}
		copt.Dist = pool
		bf.workers = 1
	}

	run := func(w int, o *core.Options) *corpus.BatchResult {
		return corpus.RunBatch(context.Background(), apps, corpus.BatchOptions{Workers: w, Core: o})
	}

	var serial *corpus.BatchResult
	if *compare {
		// The -compare baseline is fully serial: no app pool, no
		// in-process frontier workers, no dist pool.
		serial = run(1, &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true})
		report("serial", serial, *verbose)
	}
	br := run(bf.workers, copt)
	name := fmt.Sprintf("workers=%d", effectiveWorkers(bf.workers))
	if bf.distWorkers > 0 {
		name = fmt.Sprintf("dist-workers=%d", bf.distWorkers)
	}
	report(name, br, *verbose)
	if serial != nil && br.Elapsed > 0 {
		fmt.Printf("speedup: %.2fx\n", serial.Elapsed.Seconds()/br.Elapsed.Seconds())
	}
	if br.Failed > 0 {
		return 1
	}
	return 0
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func report(name string, br *corpus.BatchResult, verbose bool) {
	if verbose {
		for _, r := range br.Results {
			if r.Err != nil {
				fmt.Printf("  %-8s FAIL %v\n", r.App.Name, r.Err)
				continue
			}
			fmt.Printf("  %-8s %2d task(s) %6d nodes  %8s\n",
				r.App.Name, len(r.Res.Tasks), sumNodes(r.Res), r.Elapsed.Round(1000).String())
		}
	}
	fmt.Printf("%s: %d apps in %v — %.1f apps/s, %d schedules, %d tasks, %d search nodes, %d failed\n",
		name, len(br.Results), br.Elapsed.Round(1000000), br.Throughput(), br.Schedules, br.Tasks, br.NodesCreated, br.Failed)
}

func sumNodes(r *core.Result) int {
	n := 0
	for _, s := range r.Schedules {
		n += s.Stats.NodesCreated
	}
	return n
}
