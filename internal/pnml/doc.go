// Package pnml imports and exports Petri nets in PNML, the XML
// interchange format of ISO/IEC 15909-2, restricted to the
// place/transition (P/T) subset the exploration engines model: places
// with non-negative integer initial markings, transitions, and weighted
// ordinary arcs. Everything beyond that subset — inhibitor / reset /
// read arc types, colored (high-level) token annotations, reference
// nodes, modules — is rejected at parse time with a position-bearing
// error, never silently dropped: an imported net either means exactly
// what the engines will explore, or it does not load.
//
// The package is the bridge between external Petri-net suites (Model
// Checking Contest models and the like) and the quasi-static scheduling
// engine's native petri.Net: Parse adapts a PNML document onto the
// existing arena/ECS machinery (places and transitions numbered in
// document order, arc weights accumulated per (place, transition)
// pair), and Export renders any petri.Net as deterministic canonical
// PNML, with the round-trip property that export → import → export is a
// byte-for-byte fixed point. Analyze runs the reachability and
// place-bound analysis the qssbatch/pfcbench -pnml modes expose,
// through the same serial / parallel-frontier / distributed / frozen
// exploration paths as the FlowC flow, and Fingerprint condenses a
// ReachResult into the hash the pnml-conformance CI job compares across
// execution strategies.
package pnml
