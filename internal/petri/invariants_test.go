package petri

import "testing"

func TestTInvariantsOnNet(t *testing.T) {
	// fig8-style net has T-invariants (cycles) but no P-invariants
	// (a source pumps tokens, so no conservation law involves p1).
	n := New("fig8")
	p1 := n.AddPlace("p1", PlaceChannel, 0)
	p2 := n.AddPlace("p2", PlaceChannel, 0)
	p3 := n.AddPlace("p3", PlaceChannel, 0)
	a := n.AddTransition("a", TransSourceUnc)
	b := n.AddTransition("b", TransNormal)
	c := n.AddTransition("c", TransNormal)
	d := n.AddTransition("d", TransNormal)
	e := n.AddTransition("e", TransNormal)
	n.AddArcTP(a, p1, 1)
	n.AddArc(p1, b, 1)
	n.AddArcTP(b, p2, 1)
	n.AddArc(p1, c, 1)
	n.AddArcTP(c, p3, 1)
	n.AddArc(p2, d, 1)
	n.AddArc(p3, e, 2)
	n.AddArcTP(e, p1, 1)
	if got := len(n.TInvariants()); got == 0 {
		t.Error("fig8 net should have T-invariants")
	}
	if got := n.PInvariants(); len(got) != 0 {
		t.Errorf("fig8 net should have no P-invariants, got %v", got)
	}
}

func TestPInvariantConservation(t *testing.T) {
	// A bounded-channel pair: ch + space is conserved (the complement
	// construction of linking); verified against random firing runs.
	n := New("bounded")
	ch := n.AddPlace("ch", PlaceChannel, 0)
	space := n.AddPlace("space", PlaceComplement, 3)
	pc1 := n.AddPlace("pc1", PlaceInternal, 1)
	pc2 := n.AddPlace("pc2", PlaceInternal, 1)
	w := n.AddTransition("w", TransNormal)
	r := n.AddTransition("r", TransNormal)
	n.AddArc(pc1, w, 1)
	n.AddArcTP(w, pc1, 1)
	n.AddArc(space, w, 1)
	n.AddArcTP(w, ch, 1)
	n.AddArc(pc2, r, 1)
	n.AddArcTP(r, pc2, 1)
	n.AddArc(ch, r, 1)
	n.AddArcTP(r, space, 1)
	inv := n.PInvariants()
	if len(inv) == 0 {
		t.Fatal("bounded pair should have P-invariants")
	}
	// Find the invariant covering ch+space.
	var cons []int
	for _, y := range inv {
		if y[ch.ID] > 0 && y[space.ID] > 0 {
			cons = y
		}
	}
	if cons == nil {
		t.Fatalf("no conservation law over ch+space in %v", inv)
	}
	// Check constancy over the reachable markings.
	m0 := n.InitialMarking()
	want := InvariantValue(cons, m0)
	res := n.Explore(ExploreOptions{FireSources: true, MaxMarkings: 200})
	for _, m := range res.Store.All() {
		if InvariantValue(cons, m) != want {
			t.Errorf("marking %s violates the invariant", m.Key())
		}
	}
}
