package link

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseSpec reads a netlist in the textual system format:
//
//	system <name>
//	channel <name> <proc.port> -> <proc.port> [bound=N]
//	input <name> -> <proc.port> [controllable|uncontrollable] [rate=N]
//	output <proc.port> -> <name> [rate=N]
//
// '#' starts a comment. Inputs default to uncontrollable (they trigger
// tasks); rates default to 1.
func ParseSpec(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	spec := &Spec{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "system":
			if len(f) < 2 {
				return nil, fmt.Errorf("line %d: system requires a name", lineno)
			}
			spec.Name = f[1]
		case "channel":
			if len(f) < 5 || f[3] != "->" {
				return nil, fmt.Errorf("line %d: channel syntax: channel NAME FROM -> TO [bound=N]", lineno)
			}
			ch := ChannelSpec{Name: f[1], From: f[2], To: f[4]}
			for _, kv := range f[5:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || k != "bound" {
					return nil, fmt.Errorf("line %d: unknown channel attribute %q", lineno, kv)
				}
				b, err := strconv.Atoi(v)
				if err != nil || b < 0 {
					return nil, fmt.Errorf("line %d: bad bound %q", lineno, v)
				}
				ch.Bound = b
			}
			spec.Channels = append(spec.Channels, ch)
		case "input":
			if len(f) < 4 || f[2] != "->" {
				return nil, fmt.Errorf("line %d: input syntax: input NAME -> PROC.PORT [controllable|uncontrollable] [rate=N]", lineno)
			}
			in := InputSpec{Name: f[1], To: f[3], Rate: 1}
			for _, attr := range f[4:] {
				switch {
				case attr == "controllable":
					in.Controllable = true
				case attr == "uncontrollable":
					in.Controllable = false
				case strings.HasPrefix(attr, "rate="):
					rv, err := strconv.Atoi(strings.TrimPrefix(attr, "rate="))
					if err != nil || rv <= 0 {
						return nil, fmt.Errorf("line %d: bad rate %q", lineno, attr)
					}
					in.Rate = rv
				default:
					return nil, fmt.Errorf("line %d: unknown input attribute %q", lineno, attr)
				}
			}
			spec.Inputs = append(spec.Inputs, in)
		case "output":
			if len(f) < 4 || f[2] != "->" {
				return nil, fmt.Errorf("line %d: output syntax: output PROC.PORT -> NAME [rate=N]", lineno)
			}
			out := OutputSpec{From: f[1], Name: f[3], Rate: 1}
			for _, attr := range f[4:] {
				if strings.HasPrefix(attr, "rate=") {
					rv, err := strconv.Atoi(strings.TrimPrefix(attr, "rate="))
					if err != nil || rv <= 0 {
						return nil, fmt.Errorf("line %d: bad rate %q", lineno, attr)
					}
					out.Rate = rv
					continue
				}
				return nil, fmt.Errorf("line %d: unknown output attribute %q", lineno, attr)
			}
			spec.Outputs = append(spec.Outputs, out)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineno, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("link: spec is missing a 'system' line")
	}
	return spec, nil
}

// FormatSpec renders the spec back in the textual system format.
func FormatSpec(spec *Spec, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "system %s\n", spec.Name)
	for _, ch := range spec.Channels {
		fmt.Fprintf(bw, "channel %s %s -> %s", ch.Name, ch.From, ch.To)
		if ch.Bound > 0 {
			fmt.Fprintf(bw, " bound=%d", ch.Bound)
		}
		fmt.Fprintln(bw)
	}
	for _, in := range spec.Inputs {
		fmt.Fprintf(bw, "input %s -> %s", in.Name, in.To)
		if in.Controllable {
			fmt.Fprint(bw, " controllable")
		} else {
			fmt.Fprint(bw, " uncontrollable")
		}
		if in.Rate > 1 {
			fmt.Fprintf(bw, " rate=%d", in.Rate)
		}
		fmt.Fprintln(bw)
	}
	for _, out := range spec.Outputs {
		fmt.Fprintf(bw, "output %s -> %s", out.From, out.Name)
		if out.Rate > 1 {
			fmt.Fprintf(bw, " rate=%d", out.Rate)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
