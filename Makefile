# CI entry points for the quasi-static synthesis repro.
#
#   make ci          — everything below, in order
#   make build       — compile all packages
#   make vet         — static analysis
#   make test        — unit, property and determinism tests under -race
#   make bench       — every benchmark once (shape assertions, no timing)
#   make fuzz-smoke  — short-budget fuzz pass over both fuzz targets

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci build vet test bench fuzz-smoke

ci: build vet test bench fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/flowc
	$(GO) test -run='^$$' -fuzz=FuzzExplore -fuzztime=$(FUZZTIME) ./internal/petri
