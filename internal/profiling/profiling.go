// Package profiling is the shared -cpuprofile/-memprofile plumbing of
// the command-line tools: one Start call wires both profiles, and the
// returned stop function flushes them and surfaces write errors so
// callers can fold them into the process exit code.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and schedules a heap profile
// to memPath; either may be empty to skip that profile. The returned
// stop function (never nil) stops the CPU profile, forces a GC and
// writes the heap profile, returning the first error encountered —
// callers should run it before exiting and treat its error as a
// failure, or the profile files may be silently empty or missing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
