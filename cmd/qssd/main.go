// Command qssd is a standalone distributed-exploration worker: it
// dials a coordinator (a synthesis run started with -dist-workers and
// -dist-endpoint on cmd/qssbatch or cmd/pfcbench, or any caller of
// core.Options.DistEndpoint), then serves exploration sessions —
// holding the marking vectors and enabled sets of the hash shards it
// owns (or, with -full-replicas, a full replica rebuilt from delta
// batches) and expanding the frontier states in those shards — until
// the coordinator closes the connection.
//
// Usage:
//
//	qssd -connect unix:/path/to.sock
//	qssd -connect tcp:host:port [-timeout 30s] [-dial-attempts N]
//	     [-full-replicas] [-freeze-levels]
//
// One qssd process is one worker; start as many as the coordinator was
// told to await. -full-replicas advertises that this worker refuses
// trimmed sessions: the coordinator falls back to full-replica mode
// for the whole pool, trading this worker's memory for local successor
// classification. -freeze-levels moves the vectors of committed levels
// into an on-disk delta segment, so this worker's resident store cost
// stops scaling with the marking width (protocol 3+ sessions only).
// Determinism is the coordinator's job: any number of workers, in
// either replica mode, frozen or all-hot, on any machines, produces
// byte-identical results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dist"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	connect := flag.String("connect", "", "coordinator endpoint (unix:/path, tcp:host:port, or a bare unix-socket path)")
	timeout := flag.Duration("timeout", 30*time.Second, "how long to keep retrying the initial dial")
	dialAttempts := flag.Int("dial-attempts", 0, "cap the initial-dial retries (exponential backoff with jitter); 0 retries until -timeout expires")
	fullReplicas := flag.Bool("full-replicas", false, "refuse trimmed sessions; the coordinator falls back to full-replica mode")
	freezeLevels := flag.Bool("freeze-levels", false, "freeze committed levels to an on-disk delta segment (protocol 3+ sessions)")
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "qssd: -connect is required")
		flag.Usage()
		return 2
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "qssd: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		return 2
	}
	if err := dist.Serve(*connect, *timeout, dist.WorkerOptions{FullReplicas: *fullReplicas, DialAttempts: *dialAttempts, FreezeLevels: *freezeLevels}); err != nil {
		fmt.Fprintln(os.Stderr, "qssd:", err)
		return 1
	}
	return 0
}
