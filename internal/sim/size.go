package sim

import (
	"repro/internal/codegen"
	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/link"
)

// Code-size estimation (Table 2 of the paper). The model counts object
// bytes per language construct; communication sites dominate: an inlined
// communication primitive expands to buffer management, wrap-around and
// blocking checks, while a collapsed intra-task channel is a plain
// variable access. RTOS and static data are excluded, as in the paper.
type SizeModel struct {
	Name        string
	OpB         int // per arithmetic/comparison operator
	AssignB     int // per store
	BranchB     int // per condition/branch construct
	CommInlineB int // per inlined READ_DATA/WRITE_DATA site
	CommCallB   int // per call-based communication site
	LocalB      int // per intra-task buffer access site
	EnvB        int // per environment port site (latch/post)
	GotoB       int // per goto
	LabelB      int // per label / switch head
	CaseB       int // per switch case of a state jump
	ProcGlueB   int // per-process task glue (entry, latching, RTOS hooks)
	TaskGlueB   int // fixed glue of the synthesized single task
}

// Size models matching the cost presets.
var (
	SizePFC   = &SizeModel{Name: "pfc", OpB: 8, AssignB: 10, BranchB: 14, CommInlineB: 370, CommCallB: 36, LocalB: 10, EnvB: 36, GotoB: 4, LabelB: 4, CaseB: 12, ProcGlueB: 170, TaskGlueB: 120}
	SizePFCO  = &SizeModel{Name: "pfc-O", OpB: 4, AssignB: 5, BranchB: 8, CommInlineB: 238, CommCallB: 22, LocalB: 5, EnvB: 18, GotoB: 4, LabelB: 4, CaseB: 8, ProcGlueB: 96, TaskGlueB: 64}
	SizePFCO2 = &SizeModel{Name: "pfc-O2", OpB: 4, AssignB: 5, BranchB: 7, CommInlineB: 232, CommCallB: 21, LocalB: 5, EnvB: 18, GotoB: 4, LabelB: 4, CaseB: 8, ProcGlueB: 94, TaskGlueB: 62}
)

// SizeModels lists the models in the paper's order.
func SizeModels() []*SizeModel { return []*SizeModel{SizePFC, SizePFCO, SizePFCO2} }

// exprBytes estimates the object size of an expression.
func (sm *SizeModel) exprBytes(e flowc.Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *flowc.Ident, *flowc.IntLit:
		return 0
	case *flowc.Binary:
		return sm.OpB + sm.exprBytes(x.L) + sm.exprBytes(x.R)
	case *flowc.Unary:
		return sm.OpB + sm.exprBytes(x.X)
	case *flowc.Assign:
		return sm.AssignB + sm.exprBytes(x.LHS) + sm.exprBytes(x.RHS)
	case *flowc.IncDec:
		return sm.AssignB
	case *flowc.Index:
		return sm.OpB + sm.exprBytes(x.Arr) + sm.exprBytes(x.Idx)
	}
	return sm.OpB
}

// commMode selects the per-site cost of a communication statement.
type commMode int

const (
	commInlined commMode = iota
	commCalled
	commLocal
	commEnv
)

func (sm *SizeModel) commBytes(mode commMode) int {
	switch mode {
	case commInlined:
		return sm.CommInlineB
	case commCalled:
		return sm.CommCallB
	case commEnv:
		return sm.EnvB
	default:
		return sm.LocalB
	}
}

// stmtBytes estimates a statement, with comm giving the cost of port
// operations (which may vary per port via the resolve callback).
func (sm *SizeModel) stmtBytes(s flowc.Stmt, resolve func(port string) commMode) int {
	switch x := s.(type) {
	case nil:
		return 0
	case *flowc.DeclStmt:
		n := 0
		for _, v := range x.Vars {
			if v.Init != nil {
				n += sm.AssignB + sm.exprBytes(v.Init)
			}
		}
		return n
	case *flowc.ExprStmt:
		return sm.exprBytes(x.X)
	case *flowc.Block:
		n := 0
		for _, st := range x.Stmts {
			n += sm.stmtBytes(st, resolve)
		}
		return n
	case *flowc.If:
		return sm.BranchB + sm.exprBytes(x.Cond) + sm.stmtBytes(x.Then, resolve) + sm.stmtBytes(x.Else, resolve)
	case *flowc.While:
		return sm.BranchB + sm.exprBytes(x.Cond) + sm.stmtBytes(x.Body, resolve)
	case *flowc.For:
		return sm.BranchB + sm.stmtBytes(x.Init, resolve) + sm.exprBytes(x.Cond) + sm.exprBytes(x.Post) + sm.stmtBytes(x.Body, resolve)
	case *flowc.Read:
		return sm.commBytes(resolve(x.Port))
	case *flowc.Write:
		return sm.commBytes(resolve(x.Port))
	case *flowc.Select:
		n := sm.BranchB
		for _, a := range x.Arms {
			n += sm.BranchB // availability test
			for _, st := range a.Body {
				n += sm.stmtBytes(st, resolve)
			}
		}
		return n
	}
	return 0
}

// ProcessSize estimates the object size of one process implemented as a
// separate task (baseline). inline selects inlined communication;
// environment ports always use the cheap latch/post glue.
func (sm *SizeModel) ProcessSize(sys *link.System, p *flowc.Process, inline bool) int {
	mode := commCalled
	if inline {
		mode = commInlined
	}
	resolve := func(port string) commMode {
		if sys != nil {
			if b := sys.PortBinding(p.Name, port); b != nil && b.Kind != link.BindChannel {
				return commEnv
			}
		}
		return mode
	}
	n := sm.ProcGlueB
	for _, s := range p.Body.Stmts {
		n += sm.stmtBytes(s, resolve)
	}
	return n
}

// BaselineSize estimates the total size of the N-task implementation.
func (sm *SizeModel) BaselineSize(sys *link.System, inline bool) (total int, perProc map[string]int) {
	perProc = map[string]int{}
	for _, cp := range sys.Procs {
		sz := sm.ProcessSize(sys, cp.Proc, inline)
		perProc[cp.Proc.Name] = sz
		total += sz
	}
	return total, perProc
}

// TaskSize estimates the object size of a synthesized task. Fragments
// appear once per code-segment node (the traversal's sharing), intra-task
// channel accesses are local, environment ports keep primitives.
func (sm *SizeModel) TaskSize(task *codegen.Task, sys *link.System) int {
	intra := task.IntraChannels(&codegen.SynthOptions{Sys: sys})
	resolveFor := func(proc string) func(port string) commMode {
		return func(port string) commMode {
			if sys == nil {
				return commLocal
			}
			b := sys.PortBinding(proc, port)
			if b != nil && b.Kind == link.BindChannel {
				if _, ok := intra[b.Channel.Place.ID]; ok {
					return commLocal
				}
				return commInlined
			}
			return commEnv // environment ports use the latch/post glue
		}
	}
	total := sm.TaskGlueB
	// State variable declarations + init.
	total += len(task.StateVars) * sm.AssignB
	for _, seg := range task.Segments {
		total += sm.LabelB
		var walk func(n *codegen.SegNode)
		walk = func(n *codegen.SegNode) {
			if len(n.Edges) > 1 {
				total += sm.BranchB
			}
			for _, e := range n.Edges {
				t := task.Net.Transitions[e.Trans]
				if frag, ok := t.Code.(*compile.Fragment); ok {
					for _, st := range frag.Stmts {
						total += sm.stmtBytes(st, resolveFor(frag.Process))
					}
				}
				if e.Child != nil {
					walk(e.Child)
					continue
				}
				// Leaf: update assignments + jump.
				total += len(e.Leaf.Update) * sm.AssignB
				targets := map[int]bool{}
				for _, st := range e.Leaf.States {
					targets[st.NextECS] = true
				}
				if len(targets) <= 1 {
					total += sm.GotoB
				} else {
					total += sm.LabelB + len(e.Leaf.States)*sm.CaseB
				}
			}
		}
		walk(seg.Root)
	}
	return total
}
