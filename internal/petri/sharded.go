package petri

import (
	"math/bits"
	"sync"
)

// ShardedStore is a striped MarkingStore safe for concurrent interning:
// markings are routed to one of a power-of-two number of shards by the
// top bits of their FNV-1a hash (each shard's open-addressed table is
// probed by the low bits, so the two selections are independent), and
// each shard is an ordinary MarkingStore behind its own mutex.
//
// A ShardRef (shard, local id) is stable for the store's lifetime, like
// a MarkID is for a plain store, but refs are not dense across shards —
// pipelines that need dense global numbering (the level-synchronous
// explorers) use the sharded store for concurrent dedup and compact
// refs into globally-ordered MarkIDs themselves.
//
// The batched exploration pipeline bypasses the mutexes entirely: each
// shard is owned by exactly one goroutine per phase, which calls
// InternShard directly. The locked Intern/Lookup entry points serve
// callers without such a partitioning.
type ShardedStore struct {
	places int
	shift  uint // shard = hash >> shift
	shards []storeShard
}

type storeShard struct {
	mu sync.Mutex
	st *MarkingStore
	// Pad to a cache line so concurrent interning on neighbouring
	// shards does not false-share the mutexes.
	_ [64 - 16]byte
}

// Shard ownership is a pure function of the marking hash, shared by
// every consumer that partitions the marking space: the ShardedStore's
// striped tables, the in-process frontier pipeline, and the
// cross-process runtime (internal/dist), where each worker process
// owns a contiguous range of shards. Keeping the three on one function
// is what lets a distributed exploration agree with the in-process one
// about who owns which marking without any negotiation.

// ShardOfHash returns the shard a marking with HashMarking value h
// lands in, out of a power-of-two shard count: the top bits of the
// hash (the open-addressing tables probe by the low bits, so the two
// selections stay independent).
func ShardOfHash(h uint64, shards int) uint32 {
	return uint32(h >> uint(64-bits.TrailingZeros(uint(shards))))
}

// ShardOwner maps a shard to the worker owning it when `shards` shards
// are split across `workers` workers as contiguous ranges. Shard
// counts at least as large as the worker count give every worker a
// non-empty range.
func ShardOwner(shard uint32, shards, workers int) int {
	return int(uint64(shard) * uint64(workers) / uint64(shards))
}

// OwnedShardRange returns the contiguous shard range [lo, hi) that
// ShardOwner assigns to one worker — the inverse view of the same
// mapping, used for logging and for sizing trimmed worker replicas.
func OwnedShardRange(worker, shards, workers int) (lo, hi int) {
	lo = (worker*shards + workers - 1) / workers
	hi = ((worker+1)*shards + workers - 1) / workers
	return lo, hi
}

// NumFrontierShards returns the shard count the frontier pipelines use
// for a given worker count: a power of two at least 4x the workers (so
// ranges stay balanced) capped at 256.
func NumFrontierShards(workers int) int {
	if workers < 1 {
		workers = 1
	}
	n := 2
	for n < 4*workers {
		n <<= 1
	}
	if n > 256 {
		n = 256
	}
	return n
}

// ShardRef identifies an interned marking within a ShardedStore.
type ShardRef struct {
	Shard uint32
	Local MarkID
}

// NoShardRef is the sentinel for "no marking".
var NoShardRef = ShardRef{Shard: ^uint32(0), Local: NoMark}

// NewShardedStore returns an empty sharded store for markings over the
// given number of places. shards is rounded up to a power of two (and
// to at least 2).
func NewShardedStore(places, shards int) *ShardedStore {
	return newShardedStoreCap(places, shards, 1<<8)
}

// newShardedStoreCap builds a sharded store with an explicit per-shard
// initial table size. Tests use tiny tables to force probe collisions
// inside a shard on top of shard collisions.
func newShardedStoreCap(places, shards, tableSize int) *ShardedStore {
	if shards < 2 {
		shards = 2
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	s := &ShardedStore{
		places: places,
		shift:  uint(64 - bits.TrailingZeros(uint(shards))),
		shards: make([]storeShard, shards),
	}
	for i := range s.shards {
		s.shards[i].st = newMarkingStoreCap(places, tableSize)
	}
	return s
}

// NumShards returns the shard count (a power of two).
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Places returns the token-vector length the store was built for.
func (s *ShardedStore) Places() int { return s.places }

// ShardOf returns the shard a marking with HashMarking value h lands in.
func (s *ShardedStore) ShardOf(h uint64) uint32 { return uint32(h >> s.shift) }

// Intern returns the ShardRef of m, interning a copy if absent. Safe
// for concurrent use: only m's shard is locked.
func (s *ShardedStore) Intern(m Marking) (ShardRef, bool) {
	h := HashMarking(m)
	sd := &s.shards[s.ShardOf(h)]
	sd.mu.Lock()
	local, isNew := sd.st.InternHashed(m, h)
	sd.mu.Unlock()
	return ShardRef{Shard: s.ShardOf(h), Local: local}, isNew
}

// InternShard interns m (with precomputed hash h, which must route to
// shard) WITHOUT locking: the caller must be the shard's sole user, as
// the frontier pipeline's per-shard dedup phase is.
func (s *ShardedStore) InternShard(shard uint32, m Marking, h uint64) (MarkID, bool) {
	return s.shards[shard].st.InternHashed(m, h)
}

// Lookup returns the ShardRef of m if it is interned. Safe for
// concurrent use with Intern.
func (s *ShardedStore) Lookup(m Marking) (ShardRef, bool) {
	h := HashMarking(m)
	sd := &s.shards[s.ShardOf(h)]
	sd.mu.Lock()
	local, ok := sd.st.LookupHashed(m, h)
	sd.mu.Unlock()
	if !ok {
		return NoShardRef, false
	}
	return ShardRef{Shard: s.ShardOf(h), Local: local}, true
}

// At returns the interned marking behind ref as a read-only view. Views
// stay valid across later interning (see MarkingStore.At). At does not
// lock: it is safe concurrently with interning on OTHER shards, or on
// any shard once interning has stopped.
func (s *ShardedStore) At(ref ShardRef) Marking {
	return s.shards[ref.Shard].st.At(ref.Local)
}

// ShardLen returns the number of markings interned in one shard
// (unlocked; see At for when that is safe).
func (s *ShardedStore) ShardLen(shard uint32) int { return s.shards[shard].st.Len() }

// Len returns the total number of distinct markings interned, locking
// each shard in turn.
func (s *ShardedStore) Len() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		total += s.shards[i].st.Len()
		s.shards[i].mu.Unlock()
	}
	return total
}

// MemBytes estimates the store's footprint across shards.
func (s *ShardedStore) MemBytes() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].st.MemBytes()
	}
	return total
}
