package compile

import "repro/internal/flowc"

// Leader analysis (Section 3.1 of the paper). A statement is a leader if:
//
//  1. it is the first statement of the process;
//  2. it is a READ_DATA statement;
//  3. it immediately follows a WRITE_DATA statement;
//  4. it is the first statement of a control-flow statement that
//     contains a leader;
//  5. it immediately follows a control-flow statement that contains a
//     leader.
//
// Every portion of code consists of a leader and all statements up to the
// next leader; each portion compiles to one transition.

// ContainsPortOp reports whether the statement (recursively) performs any
// port operation — the condition under which control flow must be
// represented explicitly in the Petri net.
func ContainsPortOp(s flowc.Stmt) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *flowc.Read, *flowc.Write, *flowc.Select:
		return true
	case *flowc.Block:
		for _, st := range x.Stmts {
			if ContainsPortOp(st) {
				return true
			}
		}
	case *flowc.If:
		return ContainsPortOp(x.Then) || ContainsPortOp(x.Else)
	case *flowc.While:
		return ContainsPortOp(x.Body)
	case *flowc.For:
		return ContainsPortOp(x.Body) || ContainsPortOp(x.Init)
	}
	return false
}

// Leaders computes the set of leader statements of a process body,
// returned in source order. It mirrors the builder's implicit
// partitioning and exists so tests can check the paper's example
// (Figure 1: lines 4, 9, 11 and 13 are the leaders).
func Leaders(p *flowc.Process) []flowc.Stmt {
	var out []flowc.Stmt
	mark := map[flowc.Stmt]bool{}
	var walk func(stmts []flowc.Stmt, firstIsLeader bool)
	walk = func(stmts []flowc.Stmt, firstIsLeader bool) {
		prevForcesLeader := firstIsLeader
		for _, s := range stmts {
			isLeader := prevForcesLeader
			if _, ok := s.(*flowc.Read); ok {
				isLeader = true // rule 2
			}
			// Control statements containing port operations dissolve
			// into net structure; the leaders are the first statements
			// of their branches (rule 4), not the headers themselves.
			// This matches the paper's enumeration for Figure 1.
			if isControl(s) && ContainsPortOp(s) {
				isLeader = false
			}
			if isLeader && !mark[s] {
				mark[s] = true
				out = append(out, s)
			}
			prevForcesLeader = false
			switch x := s.(type) {
			case *flowc.Write:
				prevForcesLeader = true // rule 3
			case *flowc.If:
				if ContainsPortOp(s) {
					walk(toList(x.Then), true) // rule 4
					walk(toList(x.Else), true)
					prevForcesLeader = true // rule 5
				}
			case *flowc.While:
				if ContainsPortOp(s) {
					walk(toList(x.Body), true) // rule 4
					prevForcesLeader = true    // rule 5
				}
			case *flowc.For:
				if ContainsPortOp(s) {
					walk(toList(x.Body), true) // rule 4
					prevForcesLeader = true    // rule 5
				}
			case *flowc.Select:
				for _, arm := range x.Arms {
					walk(arm.Body, true)
				}
				prevForcesLeader = true
			case *flowc.Block:
				walk(x.Stmts, isLeader)
			}
		}
	}
	// The initialization prefix (declarations and port-free statements
	// before the first port operation) runs once at startup and is not
	// part of the cyclic code, so rule 1 applies to the first scheduled
	// statement.
	stmts := p.Body.Stmts
	for len(stmts) > 0 {
		if _, ok := stmts[0].(*flowc.DeclStmt); ok {
			stmts = stmts[1:]
			continue
		}
		if !ContainsPortOp(stmts[0]) {
			stmts = stmts[1:]
			continue
		}
		break
	}
	walk(stmts, true) // rule 1
	return out
}

func toList(s flowc.Stmt) []flowc.Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *flowc.Block:
		return x.Stmts
	default:
		return []flowc.Stmt{s}
	}
}

// isControl reports whether the statement is a control-flow construct.
func isControl(s flowc.Stmt) bool {
	switch s.(type) {
	case *flowc.If, *flowc.While, *flowc.For, *flowc.Select, *flowc.Block:
		return true
	}
	return false
}
