package petri

import (
	"fmt"
	"sort"
)

// ChoiceClass classifies a choice place (a place with more than one
// successor transition).
type ChoiceClass int

const (
	// ChoiceNone means the place has at most one successor.
	ChoiceNone ChoiceClass = iota
	// ChoiceEqual means all successors belong to the same ECS (a
	// generalization of free choice): a data-dependent control.
	ChoiceEqual
	// ChoiceUnique means no two successors can be simultaneously enabled
	// in any reachable marking (e.g. a port read from several program
	// points of one sequential process).
	ChoiceUnique
	// ChoiceOther is a choice place that is neither equal nor provably
	// unique; its presence makes the net non-UCPN (e.g. SELECT).
	ChoiceOther
)

// String implements fmt.Stringer.
func (c ChoiceClass) String() string {
	switch c {
	case ChoiceNone:
		return "none"
	case ChoiceEqual:
		return "equal"
	case ChoiceUnique:
		return "unique"
	case ChoiceOther:
		return "other"
	}
	return fmt.Sprintf("ChoiceClass(%d)", int(c))
}

// ClassifyChoice classifies place p. The uniqueness test is structural
// and conservative: the successors are pairwise non-co-enableable if each
// pair consumes from two distinct internal (program-counter) places of
// the same sequential process — a process has exactly one marked internal
// place at any reachable marking by construction of the FlowC compiler.
func (n *Net) ClassifyChoice(p *Place) ChoiceClass {
	succ := n.Successors(p.ID)
	if len(succ) <= 1 {
		return ChoiceNone
	}
	part := n.ECSPartition()
	idx := ECSIndex(part, len(n.Transitions))
	same := true
	for _, t := range succ[1:] {
		if idx[t] != idx[succ[0]] {
			same = false
			break
		}
	}
	if same {
		return ChoiceEqual
	}
	if n.pairwiseExclusive(succ) {
		return ChoiceUnique
	}
	return ChoiceOther
}

// pairwiseExclusive reports whether every pair of the given transitions
// consumes from distinct internal places of one common sequential
// process, which makes simultaneous enabling impossible.
func (n *Net) pairwiseExclusive(trans []int) bool {
	for i := 0; i < len(trans); i++ {
		for j := i + 1; j < len(trans); j++ {
			if !n.exclusivePair(n.Transitions[trans[i]], n.Transitions[trans[j]]) {
				return false
			}
		}
	}
	return true
}

func (n *Net) exclusivePair(a, b *Transition) bool {
	for _, aa := range a.In {
		pa := n.Places[aa.Place]
		if pa.Kind != PlaceInternal {
			continue
		}
		for _, ba := range b.In {
			pb := n.Places[ba.Place]
			if pb.Kind != PlaceInternal {
				continue
			}
			if pa.Process != "" && pa.Process == pb.Process && pa.ID != pb.ID {
				return true
			}
		}
	}
	return false
}

// ChoicePlaces returns the IDs of all places with more than one successor
// transition, ascending.
func (n *Net) ChoicePlaces() []int {
	var out []int
	for _, p := range n.Places {
		if len(n.Successors(p.ID)) > 1 {
			out = append(out, p.ID)
		}
	}
	return out
}

// IsUniqueChoice reports whether the net is a unique-choice Petri net
// (UCPN): every choice place is either equal choice or unique choice.
// FlowC specifications without SELECT compile to UCPNs.
func (n *Net) IsUniqueChoice() bool {
	for _, id := range n.ChoicePlaces() {
		switch n.ClassifyChoice(n.Places[id]) {
		case ChoiceEqual, ChoiceUnique:
		default:
			return false
		}
	}
	return true
}

// IncidenceMatrix returns C with C[i][j] = F(t_j, p_i) - F(p_i, t_j),
// rows indexed by place, columns by transition.
func (n *Net) IncidenceMatrix() [][]int {
	c := make([][]int, len(n.Places))
	for i := range c {
		c[i] = make([]int, len(n.Transitions))
	}
	for j, t := range n.Transitions {
		for _, a := range t.In {
			c[a.Place][j] -= a.Weight
		}
		for _, a := range t.Out {
			c[a.Place][j] += a.Weight
		}
	}
	return c
}

// BackwardReachableTransitions returns the set of transition IDs that
// have a directed path (alternating transitions and places) to any of
// the seed transitions, including the seeds themselves. Used to reason
// about schedule involvement (Property 4.1).
func (n *Net) BackwardReachableTransitions(seeds []int) map[int]bool {
	seen := map[int]bool{}
	stack := append([]int(nil), seeds...)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[t] {
			continue
		}
		seen[t] = true
		for _, a := range n.Transitions[t].In {
			for _, pred := range n.Predecessors(a.Place) {
				if !seen[pred] {
					stack = append(stack, pred)
				}
			}
		}
	}
	return seen
}

// PlaceBounds returns, per place, the maximum token count observed over
// every marking retained by the exploration. When the exploration ran
// to completion (r.Truncated false) these are the exact bounds of the
// explored fragment — for a net explored from its initial marking with
// all transitions fireable, the guaranteed place bounds; when it was
// truncated they are lower bounds only. Frozen markings are thawed
// transparently through the store.
func (r *ReachResult) PlaceBounds() []int {
	bounds := make([]int, r.Store.Places())
	for _, m := range r.Store.All() {
		for p, v := range m {
			if v > bounds[p] {
				bounds[p] = v
			}
		}
	}
	return bounds
}

// UncontrollableSources returns the IDs of all uncontrollable source
// transitions, ascending. One schedule (task) is generated per entry.
func (n *Net) UncontrollableSources() []int {
	var out []int
	for _, t := range n.Transitions {
		if t.Kind == TransSourceUnc {
			out = append(out, t.ID)
		}
	}
	sort.Ints(out)
	return out
}
