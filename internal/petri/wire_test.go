package petri

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// wireTestNet builds a net exercising every encoded feature: kinds,
// bounds, labels, multi-arc weights, self loops.
func wireTestNet() *Net {
	n := New("wire")
	p1 := n.AddPlace("p1", PlaceChannel, 2)
	p2 := n.AddPlace("p2", PlaceInternal, 0)
	p3 := n.AddPlace("p3", PlaceComplement, 5)
	p3.Bound = 5
	src := n.AddTransition("go", TransSourceUnc)
	t := n.AddTransition("t", TransNormal)
	t.Label = "T"
	u := n.AddTransition("u", TransNormal)
	u.Label = "F"
	snk := n.AddTransition("out", TransSink)
	n.AddArcTP(src, p1, 1)
	n.AddArc(p1, t, 2)
	n.AddArcTP(t, p2, 3)
	n.AddArc(p1, u, 2)
	n.AddSelfLoop(p3, u, 1)
	n.AddArc(p2, snk, 1)
	return n
}

// TestNetWireRoundTrip: the decoded net reproduces structure, firing
// semantics, the ECS partition and the tracker's touched sets — the
// full determinism contract a worker process depends on.
func TestNetWireRoundTrip(t *testing.T) {
	orig := wireTestNet()
	buf := AppendNet(nil, orig)
	dec, rest, err := DecodeNet(buf)
	if err != nil {
		t.Fatalf("DecodeNet: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeNet left %d bytes", len(rest))
	}
	if dec.Name != orig.Name || len(dec.Places) != len(orig.Places) || len(dec.Transitions) != len(orig.Transitions) {
		t.Fatalf("decoded shape %s differs from %s", dec, orig)
	}
	for i, p := range orig.Places {
		q := dec.Places[i]
		if q.Name != p.Name || q.Kind != p.Kind || q.Initial != p.Initial || q.Bound != p.Bound {
			t.Fatalf("place %d: %+v != %+v", i, q, p)
		}
	}
	for i, tr := range orig.Transitions {
		dr := dec.Transitions[i]
		if dr.Name != tr.Name || dr.Kind != tr.Kind || dr.Label != tr.Label {
			t.Fatalf("transition %d header differs", i)
		}
		if len(dr.In) != len(tr.In) || len(dr.Out) != len(tr.Out) {
			t.Fatalf("transition %d arc counts differ", i)
		}
		for k := range tr.In {
			if dr.In[k] != tr.In[k] {
				t.Fatalf("transition %d In[%d] differs", i, k)
			}
		}
		for k := range tr.Out {
			if dr.Out[k] != tr.Out[k] {
				t.Fatalf("transition %d Out[%d] differs", i, k)
			}
		}
	}
	if !dec.InitialMarking().Equal(orig.InitialMarking()) {
		t.Fatal("initial markings differ")
	}
	op, dp := orig.ECSPartition(), dec.ECSPartition()
	if len(op) != len(dp) {
		t.Fatalf("partition sizes differ: %d vs %d", len(dp), len(op))
	}
	for i := range op {
		if len(op[i].Trans) != len(dp[i].Trans) {
			t.Fatalf("ECS %d sizes differ", i)
		}
		for k := range op[i].Trans {
			if op[i].Trans[k] != dp[i].Trans[k] {
				t.Fatalf("ECS %d member %d differs", i, k)
			}
		}
	}
	otr, dtr := NewEnabledTracker(orig, op), NewEnabledTracker(dec, dp)
	for _, tr := range orig.Transitions {
		ot, dt := otr.Touched(tr.ID), dtr.Touched(tr.ID)
		if len(ot) != len(dt) {
			t.Fatalf("touched(%s) sizes differ", tr.Name)
		}
		for k := range ot {
			if ot[k] != dt[k] {
				t.Fatalf("touched(%s)[%d] differs", tr.Name, k)
			}
		}
	}
	// Exploration of both nets must agree state for state.
	ro := orig.Explore(ExploreOptions{MaxMarkings: 200, MaxTokensPerPlace: 6, FireSources: true})
	rd := dec.Explore(ExploreOptions{MaxMarkings: 200, MaxTokensPerPlace: 6, FireSources: true})
	if ro.Len() != rd.Len() || ro.Truncated != rd.Truncated {
		t.Fatalf("explorations differ: %d/%v vs %d/%v", ro.Len(), ro.Truncated, rd.Len(), rd.Truncated)
	}
	for id := 0; id < ro.Len(); id++ {
		if !ro.MarkingAt(MarkID(id)).Equal(rd.MarkingAt(MarkID(id))) {
			t.Fatalf("marking %d differs", id)
		}
	}
}

// TestMarkingWireRoundTrip: markings and delta batches survive the
// varint encoding, including batched concatenation.
func TestMarkingWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	var want []Marking
	for i := 0; i < 50; i++ {
		m := make(Marking, rng.Intn(12))
		for j := range m {
			m[j] = rng.Intn(1 << rng.Intn(20))
		}
		want = append(want, m)
		buf = AppendMarking(buf, m)
	}
	rest := buf
	for i, w := range want {
		var got Marking
		var err error
		got, rest, err = DecodeMarking(rest)
		if err != nil {
			t.Fatalf("marking %d: %v", i, err)
		}
		if !got.Equal(w) {
			t.Fatalf("marking %d: %v != %v", i, got, w)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}

	ds := []Delta{{0, 3}, {7, 0}, {1 << 20, 255}}
	enc := AppendDeltas(nil, ds)
	got, rest, err := DecodeDeltas(nil, enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeDeltas: %v (%d left)", err, len(rest))
	}
	for i := range ds {
		if got[i] != ds[i] {
			t.Fatalf("delta %d: %+v != %+v", i, got[i], ds[i])
		}
	}
}

// TestVecDeltaWireRoundTrip: the trimmed-replica wire shape — child
// gap encoding, the parent has-vector flag, attached vectors — over
// batches mixing vector-bearing and bare records.
func TestVecDeltaWireRoundTrip(t *testing.T) {
	cases := [][]VecDelta{
		nil,
		{{Child: 0, Parent: 0, Trans: 0}},
		{{Child: 5, Parent: 2, Trans: 1, ParentVec: Marking{1, 0, 3}}},
		{
			{Child: 10, Parent: 3, Trans: 2},
			{Child: 11, Parent: 3, Trans: 7, ParentVec: Marking{0, 0, 0, 4}},
			{Child: 13, Parent: 9, Trans: 0, ParentVec: Marking{}},
			{Child: 1 << 21, Parent: 1 << 20, Trans: 255},
		},
	}
	for ci, ds := range cases {
		enc := AppendVecDeltas(nil, ds)
		got, rest, err := DecodeVecDeltas(nil, enc)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d bytes left over", ci, len(rest))
		}
		if len(got) != len(ds) {
			t.Fatalf("case %d: %d records, want %d", ci, len(got), len(ds))
		}
		for i := range ds {
			w, g := ds[i], got[i]
			if g.Child != w.Child || g.Parent != w.Parent || g.Trans != w.Trans {
				t.Fatalf("case %d record %d: %+v != %+v", ci, i, g, w)
			}
			if (g.ParentVec == nil) != (w.ParentVec == nil) {
				t.Fatalf("case %d record %d: vector presence differs", ci, i)
			}
			if w.ParentVec != nil && !g.ParentVec.Equal(w.ParentVec) {
				t.Fatalf("case %d record %d: vector %v != %v", ci, i, g.ParentVec, w.ParentVec)
			}
		}
	}
}

// TestWireErrorPaths: table-driven corrupt inputs for every decoder —
// truncated varint streams, oversized length/count prefixes that would
// over-read or over-allocate, and malformed vector-bearing deltas —
// must all fail with an error, never panic or succeed.
func TestWireErrorPaths(t *testing.T) {
	// A varint whose continuation bits never terminate.
	overlong := bytes.Repeat([]byte{0x80}, 11)
	validNet := AppendNet(nil, wireTestNet())
	validVec := AppendVecDeltas(nil, []VecDelta{
		{Child: 4, Parent: 1, Trans: 2, ParentVec: Marking{1, 2}},
		{Child: 6, Parent: 4, Trans: 0},
	})
	cases := []struct {
		name   string
		decode func([]byte) error
		buf    []byte
	}{
		{"marking/empty", decodeMarkingErr, nil},
		{"marking/overlong-length", decodeMarkingErr, overlong},
		{"marking/length-exceeds-payload", decodeMarkingErr, binary.AppendUvarint(nil, 1000)},
		{"marking/truncated-tokens", decodeMarkingErr, binary.AppendUvarint(nil, 3)[:1]},
		{"marking/token-overlong", decodeMarkingErr, append(binary.AppendUvarint(nil, 2), overlong...)},
		{"deltas/empty", decodeDeltasErr, nil},
		{"deltas/count-exceeds-payload", decodeDeltasErr, binary.AppendUvarint(nil, 1<<40)},
		{"deltas/truncated-pair", decodeDeltasErr, binary.AppendUvarint(nil, 2)},
		{"vecdeltas/empty", decodeVecDeltasErr, nil},
		{"vecdeltas/count-exceeds-payload", decodeVecDeltasErr, binary.AppendUvarint(nil, 1<<40)},
		{"vecdeltas/truncated-record", decodeVecDeltasErr, binary.AppendUvarint(nil, 1)},
		{"vecdeltas/missing-vector", decodeVecDeltasErr,
			// One record claiming an attached vector, then nothing.
			func() []byte {
				b := binary.AppendUvarint(nil, 1)
				b = binary.AppendUvarint(b, 4)      // child gap
				b = binary.AppendUvarint(b, 2<<1|1) // parent 2, hasVec
				return binary.AppendUvarint(b, 0)   // trans; vector absent
			}(),
		},
		{"vecdeltas/vector-length-exceeds-payload", decodeVecDeltasErr,
			func() []byte {
				b := binary.AppendUvarint(nil, 1)
				b = binary.AppendUvarint(b, 4)
				b = binary.AppendUvarint(b, 2<<1|1)
				b = binary.AppendUvarint(b, 0)
				return binary.AppendUvarint(b, 1<<30) // vector length prefix
			}(),
		},
		{"vecdeltas/truncated-mid-batch", decodeVecDeltasErr, validVec[:len(validVec)-1]},
		{"net/empty", decodeNetErr, nil},
		{"net/overlong-name", decodeNetErr, overlong},
		{"net/name-exceeds-payload", decodeNetErr, binary.AppendUvarint(nil, 1<<25)},
		{"net/place-count-exceeds-payload", decodeNetErr,
			append(appendString(nil, "x"), binary.AppendUvarint(nil, 1<<40)...)},
		{"net/truncated-mid-places", decodeNetErr, validNet[:len(validNet)/3]},
		{"net/truncated-mid-transitions", decodeNetErr, validNet[:len(validNet)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.buf); err == nil {
				t.Fatalf("decode of %d corrupt bytes succeeded", len(tc.buf))
			}
		})
	}
}

func decodeMarkingErr(b []byte) error   { _, _, err := DecodeMarking(b); return err }
func decodeDeltasErr(b []byte) error    { _, _, err := DecodeDeltas(nil, b); return err }
func decodeVecDeltasErr(b []byte) error { _, _, err := DecodeVecDeltas(nil, b); return err }
func decodeNetErr(b []byte) error       { _, _, err := DecodeNet(b); return err }

// TestWireDecodeCorrupt: truncations and bit flips of a valid net
// encoding must fail cleanly (error), never panic or decode junk that
// passes validation with a different structure.
func TestWireDecodeCorrupt(t *testing.T) {
	valid := AppendNet(nil, wireTestNet())
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := DecodeNet(valid[:cut]); err == nil {
			// A clean prefix decode is only acceptable if it reproduces
			// the original bytes (cannot happen for strict prefixes of a
			// self-delimiting encoding, but keep the check honest).
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mut := bytes.Clone(valid)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		dec, rest, err := DecodeNet(mut)
		if err != nil || len(rest) != 0 {
			continue // rejected: fine
		}
		// Accepted: the mutation must decode to a net that still
		// validates; spot-check it did not silently keep the original
		// byte identity claim.
		if err := dec.Validate(); err != nil {
			t.Fatalf("mutation %d decoded an invalid net: %v", i, err)
		}
	}
}
