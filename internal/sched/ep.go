package sched

import (
	"errors"
	"fmt"
	mathbits "math/bits"

	"repro/internal/petri"
)

// ErrNoSchedule is wrapped by FindSchedule failures that mean "searched
// the whole space RT_θ and found nothing" rather than an internal error.
var ErrNoSchedule = errors.New("no schedule in the search space")

// ErrBudget is wrapped when the node budget was exhausted before the
// search space was covered; the result is then inconclusive.
var ErrBudget = errors.New("search budget exhausted")

// Options configures the schedule search.
type Options struct {
	// Term is the termination condition defining the search space.
	// Defaults to the irrelevance criterion.
	Term Termination
	// Order sorts enabled ECSs at each node. Defaults to the T-invariant
	// heuristic of Section 5.5.2 with the paper's tie-breaks.
	Order ECSOrder
	// MultiSource permits firing other uncontrollable sources inside the
	// schedule (yielding MS schedules, Section 4.1). The default (false)
	// generates only single-source schedules, which are guaranteed
	// independent for FlowC-derived nets (Prop. 4.3).
	MultiSource bool
	// MaxNodes bounds the number of tree nodes / graph states created
	// (default 2000000; hash-consed states are compact enough that the
	// budget is search time, not memory).
	MaxNodes int
	// ExploreWorkers >= 2 lets the graph engine explore each BFS level
	// of the marking graph on that many goroutines (the frontier level
	// of the two-level parallelism model; core.Options.Workers is the
	// source level). Exploration order, state numbering and the
	// resulting schedule are byte-identical for every value. 0 or 1
	// keeps the exploration serial; tree engines ignore it.
	ExploreWorkers int
	// Dist delegates the graph engine's frontier expansion to an
	// external runner — a coordinator over worker processes owning hash
	// ranges of the marking space (internal/dist). It takes precedence
	// over ExploreWorkers; results stay byte-identical to the serial
	// path for every process count. Runners serialize explorations
	// internally, so a shared runner is safe (if sequential) across the
	// concurrent searches of core's source-level pool. Tree engines
	// ignore it.
	Dist petri.FrontierRunner
	// DistFallback reruns a search in-process (ExploreWorkers-governed)
	// when the Dist runner fails — worker death with recovery
	// exhausted, protocol corruption. Determinism makes the fallback
	// transparent: the schedule and generated code are byte-identical
	// to what the pool would have produced. Off by default so tests and
	// health probes observe the infrastructure error.
	DistFallback bool
	// FreezeLevels makes the graph engine evict the token vectors of
	// closed BFS levels from its marking store's hot arena into an
	// on-disk delta segment (petri.MarkingStore freeze tier), so the hot
	// footprint of huge explorations stops growing with the vectors.
	// Schedules and generated code are byte-identical either way; the
	// cost is reconstruction on later reads (schedule extraction,
	// diagnostics). Tree engines ignore it — their DFS is not
	// level-synchronous, so no level ever closes.
	FreezeLevels bool
	// Engine selects the search engine (default EngineGraph).
	Engine Engine
	// NoFallback disables the automatic exhaustive-tree retry after a
	// greedy-tree failure (EngineTreeGreedy only).
	NoFallback bool
}

// Engine selects how the schedule search explores the reachability
// space.
type Engine int

const (
	// EngineGraph (default) searches the marking graph with an
	// alternating closure/reachability fixpoint — polynomial in the
	// number of reachable markings under the termination caps, and
	// complete with respect to tree schedules within that space.
	EngineGraph Engine = iota
	// EngineTreeGreedy is the paper's EP/EP_ECS tree search with two
	// refinements: the first ECS yielding a valid entering point wins,
	// and environment sources fire only when nothing else can (the
	// paper's own heuristic applied as a hard gate). Falls back to
	// EngineTreeExhaustive on failure unless NoFallback is set.
	EngineTreeGreedy
	// EngineTreeExhaustive is the EP/EP_ECS procedure exactly as in
	// Figure 9 of the paper: every enabled ECS is explored in heuristic
	// order looking for the minimum entering point.
	EngineTreeExhaustive
)

func (o *Options) withDefaults(n *petri.Net, source int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.Term == nil {
		out.Term = NewIrrelevance(n)
	}
	// The graph engine never consults an ECS order; skip the T-invariant
	// basis computation (it is not free) unless a tree engine will run.
	if out.Order == nil && out.Engine != EngineGraph {
		out.Order = NewTInvariantOrder(n, source, out.Term)
	}
	if out.MaxNodes == 0 {
		out.MaxNodes = 2000000
	}
	return out
}

// treeNode is a node of the EP search tree. Markings are hash-consed in
// the engine's store: mid is the interned ID, and marking is a read-only
// view into the store's arena, so marking-match tests are integer
// compares and equal markings share one vector however many tree nodes
// carry them.
type treeNode struct {
	id      int
	parent  *treeNode
	depth   int
	inTrans int // transition fired on the edge from parent; -1 at root
	mid     petri.MarkID
	marking petri.Marking

	chosenECS *petri.ECS          // ECS(v) chosen by EP; nil for leaves
	kids      map[int][]*treeNode // ECS index -> children created
	entry     *treeNode           // loop target for marking-match leaves
}

type engine struct {
	net    *petri.Net
	source int
	opt    Options
	part   []*petri.ECS
	stats  SearchStats
	nodes  int
	over   bool // budget exhausted

	store   *petri.MarkingStore
	scratch petri.Marking // firing buffer reused across the search
	// ancStack holds the markings on the DFS path from the root to the
	// node currently being expanded (root first), maintained push/pop by
	// ep instead of re-walking parent pointers per node.
	ancStack []petri.Marking
	// fired holds per-transition fire counts along the same path.
	fired []int
	// octx is the reusable ordering context handed to ECSOrder.Sort.
	octx OrderContext

	// Incremental enablement along the DFS path: bitsStack holds one
	// enabled-ECS bitset (stride words) per node on the path, pushed by
	// ep from the parent's set via the tracker, so enabledECS reads the
	// top of the stack instead of scanning the partition. allowedMask
	// filters out uncontrollable sources other than the schedule's own
	// (single-source mode). ecsStack is a stack arena for the enabled
	// slices handed to the ordering heuristic — frames are pushed by
	// epExpand and popped on return, so expansion allocates no per-node
	// slice.
	tracker     *petri.EnabledTracker
	stride      int
	allowedMask []uint64
	bitsStack   []uint64
	ecsStack    []*petri.ECS
}

// FindSchedule computes a single-source schedule for the given
// uncontrollable source transition, or reports why none was found.
func FindSchedule(n *petri.Net, source int, opt *Options) (*Schedule, error) {
	if source < 0 || source >= len(n.Transitions) {
		return nil, fmt.Errorf("sched: source transition %d out of range", source)
	}
	st := n.Transitions[source]
	if st.Kind != petri.TransSourceUnc {
		return nil, fmt.Errorf("sched: transition %s is %v, want an uncontrollable source", st.Name, st.Kind)
	}
	eff := opt.withDefaults(n, source)
	if eff.Engine == EngineGraph {
		return findScheduleGraph(n, source, eff)
	}
	e := &engine{
		net:    n,
		source: source,
		opt:    eff,
		part:   n.ECSPartition(),
		store:  petri.NewMarkingStore(len(n.Places)),
		fired:  make([]int, len(n.Transitions)),
	}
	e.tracker = petri.NewEnabledTracker(n, e.part)
	e.stride = e.tracker.Stride()
	e.allowedMask = make([]uint64, e.stride)
	for _, E := range e.part {
		if e.opt.MultiSource || !E.IsUncontrollable(n) || E.Trans[0] == source {
			e.allowedMask[E.Index>>6] |= 1 << (uint(E.Index) & 63)
		}
	}
	if _, ok := e.opt.Order.(*TInvariantOrder); ok {
		e.stats.UsedTInv = true
	}
	root := e.newNode(nil, -1, n.InitialMarking())
	child := e.newNode(root, source, root.marking.Fire(st))
	// The root is on the path of every node below it: account for its
	// marking, enabled set and the source firing before descending into
	// EP (ep derives the child's set from the stack top, so the root's
	// full-scan seed must already be there).
	e.ancStack = append(e.ancStack, root.marking)
	e.pushBits(root)
	e.fired[source]++
	root.chosenECS = e.ecsOf(source)
	root.kids = map[int][]*treeNode{root.chosenECS.Index: {child}}
	got := e.ep(child, root)
	if e.over {
		return nil, fmt.Errorf("sched: source %s: %w (created %d nodes)", st.Name, ErrBudget, e.nodes)
	}
	if got != root {
		if e.opt.Engine == EngineTreeGreedy && !e.opt.NoFallback {
			retry := e.opt
			retry.Engine = EngineTreeExhaustive
			return FindSchedule(n, source, &retry)
		}
		return nil, fmt.Errorf("sched: source %s under %s: %w (explored %d nodes, pruned %d)",
			st.Name, e.opt.Term.Name(), ErrNoSchedule, e.nodes, e.stats.Pruned)
	}
	s := e.buildSchedule(root)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: internal error: produced invalid schedule: %v", err)
	}
	return s, nil
}

// FindAll computes one schedule per uncontrollable source transition.
func FindAll(n *petri.Net, opt *Options) ([]*Schedule, error) {
	var out []*Schedule
	for _, src := range n.UncontrollableSources() {
		s, err := FindSchedule(n, src, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sched: net %s has no uncontrollable source transitions", n.Name)
	}
	return out, nil
}

func (e *engine) ecsOf(trans int) *petri.ECS {
	for _, E := range e.part {
		for _, t := range E.Trans {
			if t == trans {
				return E
			}
		}
	}
	return nil
}

// newNode creates a tree node for marking m, hash-consing the vector:
// m may be (and in the hot path is) the engine's scratch buffer — the
// store copies it only if the marking is new.
func (e *engine) newNode(parent *treeNode, inTrans int, m petri.Marking) *treeNode {
	e.nodes++
	if e.nodes > e.opt.MaxNodes {
		e.over = true
	}
	mid, _ := e.store.Intern(m)
	n := &treeNode{id: e.nodes, parent: parent, inTrans: inTrans, mid: mid, marking: e.store.At(mid)}
	if parent != nil {
		n.depth = parent.depth + 1
	}
	if n.depth > e.stats.MaxDepth {
		e.stats.MaxDepth = n.depth
	}
	e.stats.NodesCreated++
	return n
}

// isAncEq reports whether u is an ancestor of x or x itself.
func isAncEq(u, x *treeNode) bool {
	for x != nil && x.depth >= u.depth {
		if x == u {
			return true
		}
		x = x.parent
	}
	return false
}

// pushBits computes the enabled-ECS set of node v — from its parent's
// set (the current stack top) via the tracker, or by a full scan at the
// root — and pushes it onto the bits stack.
func (e *engine) pushBits(v *treeNode) {
	base := len(e.bitsStack)
	for i := 0; i < e.stride; i++ {
		e.bitsStack = append(e.bitsStack, 0)
	}
	slot := e.bitsStack[base : base+e.stride]
	if v.parent == nil {
		e.tracker.Init(slot, v.marking)
		return
	}
	e.tracker.Update(slot, e.bitsStack[base-e.stride:base], v.inTrans, v.marking)
}

func (e *engine) popBits() {
	e.bitsStack = e.bitsStack[:len(e.bitsStack)-e.stride]
}

// ep implements function EP(v, target) of Figure 9(a): find an entering
// point of v that is an ancestor of target if one exists, else the
// minimum entering point found, else nil (UNDEF).
//
// Invariant: on entry, e.ancStack holds the markings of v's proper
// ancestors (root first), e.bitsStack their enabled sets (so the top is
// v's parent's set), and e.fired the per-transition fire counts of the
// path from the root to v inclusive; all are maintained push/pop around
// the recursion instead of being rebuilt per node.
func (e *engine) ep(v, target *treeNode) *treeNode {
	if e.over {
		return nil
	}
	if e.opt.Term.Prune(v.marking, e.ancStack) {
		e.stats.Pruned++
		return nil
	}
	// Marking match against a proper ancestor: v is a leaf looping back.
	// Hash-consing reduces the test to a MarkID compare.
	for u := v.parent; u != nil; u = u.parent {
		if u.mid == v.mid {
			v.entry = u
			return u
		}
	}
	e.ancStack = append(e.ancStack, v.marking)
	e.pushBits(v)
	best := e.epExpand(v, target)
	e.popBits()
	e.ancStack = e.ancStack[:len(e.ancStack)-1]
	return best
}

// epExpand explores the enabled ECSs of v; e.ancStack already includes
// v's marking and e.bitsStack its enabled set (the path root..v
// inclusive).
func (e *engine) epExpand(v, target *treeNode) (best *treeNode) {
	base := len(e.ecsStack)
	defer func() { e.ecsStack = e.ecsStack[:base] }()
	enabled := e.enabledECS()
	e.octx.Net = e.net
	e.octx.Marking = v.marking
	e.octx.Fired = e.fired
	e.octx.Source = e.source
	e.octx.Path = e.ancStack
	enabled = e.opt.Order.Sort(&e.octx, enabled)
	// Environment sources are a second-class pass: "fire a source
	// transition only when the system cannot fire anything else"
	// (Section 4.4). In greedy mode this is a hard gate, realized as
	// two filtered passes over the sorted slice (no per-node split
	// buffers); in exhaustive mode sources are merely ordered last by
	// the heuristic and a single unfiltered pass suffices.
	exhaustive := e.opt.Engine == EngineTreeExhaustive
	for pass := 0; pass < 2; pass++ {
		for _, E := range enabled {
			if !exhaustive && E.IsSourceECS(e.net) != (pass == 1) {
				continue
			}
			got := e.epECS(E, v, target)
			if e.over {
				return nil
			}
			if got == nil {
				continue
			}
			if isAncEq(got, target) {
				v.chosenECS = E
				return got
			}
			if !exhaustive {
				// Greedy: the first valid entering point wins.
				v.chosenECS = E
				return got
			}
			if best == nil || got.depth < best.depth {
				v.chosenECS = E
				best = got
			}
		}
		if exhaustive || best != nil {
			break
		}
	}
	if best == nil {
		v.chosenECS = nil
	}
	return best
}

// epECS implements function EP_ECS(E, v, target) of Figure 9(b): create a
// child of v per transition of E and find the minimum entering point,
// provided each child yields one that is an ancestor of v.
func (e *engine) epECS(E *petri.ECS, v, target *treeNode) *treeNode {
	var min *treeNode
	curTarget := target
	var kids []*treeNode
	for _, tid := range E.Trans {
		t := e.net.Transitions[tid]
		e.scratch = v.marking.FireInto(e.scratch, t)
		w := e.newNode(v, tid, e.scratch)
		if e.over {
			return nil
		}
		kids = append(kids, w)
		e.fired[tid]++
		got := e.ep(w, curTarget)
		e.fired[tid]--
		if got == nil || !isAncEq(got, v) {
			return nil
		}
		if min == nil || got.depth < min.depth {
			min = got
		}
		if isAncEq(min, target) {
			curTarget = v
		}
	}
	if v.kids == nil {
		v.kids = map[int][]*treeNode{}
	}
	v.kids[E.Index] = kids
	return min
}

// enabledECS lists the ECSs enabled at the node whose bitset is on top
// of the bits stack, excluding — in single-source mode — uncontrollable
// sources other than the schedule's own. The result is a frame of the
// engine's stack arena (popped by epExpand), so listing allocates
// nothing beyond amortized arena growth; the caller must not retain it
// past the expansion.
func (e *engine) enabledECS() []*petri.ECS {
	base := len(e.ecsStack)
	top := e.bitsStack[len(e.bitsStack)-e.stride:]
	for w := 0; w < e.stride; w++ {
		x := top[w] & e.allowedMask[w]
		for x != 0 {
			b := mathbits.TrailingZeros64(x)
			x &= x - 1
			e.ecsStack = append(e.ecsStack, e.part[w*64+b])
		}
	}
	return e.ecsStack[base:len(e.ecsStack):len(e.ecsStack)]
}

// buildSchedule performs the post-processing of Section 5.2: retain only
// the subtree selected by the chosen ECSs, and close a cycle at each
// retained leaf by merging it with the ancestor carrying its marking.
func (e *engine) buildSchedule(root *treeNode) *Schedule {
	e.stats.DistinctMarkings = e.store.Len()
	e.stats.StoreHotBytes = e.store.Mem().HotBytes // tree stores never freeze
	sched := &Schedule{Net: e.net, Source: e.source, Stats: e.stats}
	nodeOf := map[*treeNode]*Node{}
	var mk func(t *treeNode) *Node
	mk = func(t *treeNode) *Node {
		if n, ok := nodeOf[t]; ok {
			return n
		}
		// Kept nodes are few; clone so the schedule does not pin the
		// search store's arena.
		n := &Node{ID: len(sched.Nodes), Marking: t.marking.Clone(), ECS: t.chosenECS}
		nodeOf[t] = n
		sched.Nodes = append(sched.Nodes, n)
		if t.chosenECS == nil {
			// Defensive: leaves are supposed to be redirected by their
			// parents and never materialized.
			return n
		}
		for _, kid := range t.kids[t.chosenECS.Index] {
			dest := kid
			if kid.entry != nil {
				dest = kid.entry
			}
			n.Edges = append(n.Edges, Edge{Trans: kid.inTrans, To: mk(dest)})
		}
		return n
	}
	sched.Root = mk(root)
	sched.Stats.NodesKept = len(sched.Nodes)
	return sched
}
