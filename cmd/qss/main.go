// Command qss runs the complete quasi-static software synthesis flow:
// FlowC processes + netlist → linked Petri net → one schedule per
// uncontrollable input → generated C tasks with statically guaranteed
// channel bounds.
//
// Usage:
//
//	qss -flowc processes.flc -net system.net [-out dir] [-schedule] [-dot] [-bounds]
//
// Generated C goes to <out>/<task>.c (default: stdout). -schedule prints
// the schedules, -dot writes <out>/<task>.dot, -bounds lists the channel
// buffer sizes the schedules guarantee.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

func main() {
	flowcPath := flag.String("flowc", "", "FlowC source file (required)")
	netPath := flag.String("net", "", "netlist file in the system format (required)")
	outDir := flag.String("out", "", "output directory for generated files (default: stdout)")
	showSched := flag.Bool("schedule", false, "print the computed schedules")
	emitDot := flag.Bool("dot", false, "write schedule DOT files (requires -out)")
	showBounds := flag.Bool("bounds", true, "print the guaranteed channel bounds")
	flag.Parse()
	if *flowcPath == "" || *netPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	flowcSrc, err := os.ReadFile(*flowcPath)
	if err != nil {
		fatal(err)
	}
	netSrc, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	res, err := core.Synthesize(string(flowcSrc), string(netSrc), nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system %s: %d processes, %d places, %d transitions, %d task(s)\n",
		res.Sys.Name, len(res.Procs), len(res.Sys.Net.Places), len(res.Sys.Net.Transitions), len(res.Tasks))
	for i, s := range res.Schedules {
		fmt.Printf("task %s: schedule %d nodes (%d await), %d segments, %d explored states (%d distinct markings)\n",
			res.Tasks[i].Name, len(s.Nodes), len(s.AwaitNodes()),
			len(res.Tasks[i].Segments), s.Stats.NodesCreated, s.Stats.DistinctMarkings)
		if *showSched {
			if err := s.Format(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *showBounds {
		fmt.Println("guaranteed channel bounds:")
		for _, ch := range res.Sys.Channels {
			fmt.Printf("  %-12s %d\n", ch.Spec.Name, res.Bounds[ch.Place.ID])
		}
	}
	for name, code := range res.Code {
		if *outDir == "" {
			fmt.Printf("\n/* ==== %s.c ==== */\n%s", name, code)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".c"), []byte(code), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(*outDir, name+".c"))
	}
	if *emitDot && *outDir != "" {
		for i, s := range res.Schedules {
			path := filepath.Join(*outDir, res.Tasks[i].Name+".dot")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := s.Dot(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qss:", err)
	os.Exit(1)
}
