// Package link combines the Petri nets of compiled FlowC processes into
// one system net (Section 3.2 of the paper): port places connected by a
// channel are merged, environment ports get source/sink transitions, and
// bounded channels receive complement places so that blocking writes and
// SELECT space tests become ordinary enabling conditions.
package link

import (
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/flowc"
	"repro/internal/petri"
)

// ChannelSpec declares a point-to-point channel between an output port
// and an input port, each written "process.port".
type ChannelSpec struct {
	Name  string
	From  string // producer "proc.port" (an Out port)
	To    string // consumer "proc.port" (an In port)
	Bound int    // 0 = unbounded
}

// InputSpec declares an environment input connected to a process In port.
type InputSpec struct {
	Name         string
	To           string // "proc.port"
	Controllable bool
	Rate         int // tokens produced per firing (default 1)
}

// OutputSpec declares an environment output fed by a process Out port.
type OutputSpec struct {
	Name string
	From string // "proc.port"
	Rate int    // tokens consumed per firing (default 1)
}

// Spec is the netlist of a system.
type Spec struct {
	Name     string
	Channels []ChannelSpec
	Inputs   []InputSpec
	Outputs  []OutputSpec
}

// ChannelInfo is a linked channel.
type ChannelInfo struct {
	Spec  ChannelSpec
	Place *petri.Place
	Comp  *petri.Place // complement place; nil for unbounded channels
}

// InputInfo is a linked environment input.
type InputInfo struct {
	Spec  InputSpec
	Trans *petri.Transition
	Place *petri.Place
}

// OutputInfo is a linked environment output.
type OutputInfo struct {
	Spec  OutputSpec
	Trans *petri.Transition
	Place *petri.Place
}

// BindingKind says what a process port is connected to after linking.
type BindingKind int

const (
	// BindChannel connects to an inter-process channel.
	BindChannel BindingKind = iota
	// BindEnvIn connects to an environment input.
	BindEnvIn
	// BindEnvOut connects to an environment output.
	BindEnvOut
)

// Binding resolves one process port.
type Binding struct {
	Kind    BindingKind
	Channel *ChannelInfo
	Input   *InputInfo
	Output  *OutputInfo
}

// System is the linked design: one Petri net plus symbol tables.
type System struct {
	Name     string
	Net      *petri.Net
	Procs    []*compile.CompiledProcess
	Channels []*ChannelInfo
	Inputs   []*InputInfo
	Outputs  []*OutputInfo

	bindings map[string]*Binding // "proc.port" -> binding
}

// PortBinding resolves the connection of the given process port, or nil.
func (s *System) PortBinding(proc, port string) *Binding {
	return s.bindings[proc+"."+port]
}

// ProcByName returns the compiled process or nil.
func (s *System) ProcByName(name string) *compile.CompiledProcess {
	for _, cp := range s.Procs {
		if cp.Proc.Name == name {
			return cp
		}
	}
	return nil
}

func splitRef(ref string) (proc, port string, err error) {
	proc, port, ok := strings.Cut(ref, ".")
	if !ok || proc == "" || port == "" {
		return "", "", fmt.Errorf("link: malformed port reference %q (want proc.port)", ref)
	}
	return proc, port, nil
}

// Link merges the compiled processes according to the spec. Every process
// port must end up connected exactly once: by a channel, an input or an
// output declaration.
func Link(procs []*compile.CompiledProcess, spec *Spec) (*System, error) {
	sys := &System{
		Name:     spec.Name,
		Net:      petri.New(spec.Name),
		Procs:    procs,
		bindings: map[string]*Binding{},
	}
	n := sys.Net

	procByName := map[string]*compile.CompiledProcess{}
	for _, cp := range procs {
		if procByName[cp.Proc.Name] != nil {
			return nil, fmt.Errorf("link: duplicate process %s", cp.Proc.Name)
		}
		procByName[cp.Proc.Name] = cp
	}

	// Copy places and transitions of each process net into the system
	// net, keeping per-process ID remap tables.
	placeMap := map[string][]int{} // proc name -> local place ID -> global ID
	transMap := map[string][]int{}
	for _, cp := range procs {
		pm := make([]int, len(cp.Net.Places))
		for i, p := range cp.Net.Places {
			np := n.AddPlace(p.Name, p.Kind, p.Initial)
			np.Bound = p.Bound
			np.Process = p.Process
			np.Cond = p.Cond
			pm[i] = np.ID
		}
		placeMap[cp.Proc.Name] = pm
		tm := make([]int, len(cp.Net.Transitions))
		for i, t := range cp.Net.Transitions {
			nt := n.AddTransition(t.Name, t.Kind)
			nt.Process = t.Process
			nt.Label = t.Label
			nt.Code = t.Code
			for _, a := range t.In {
				n.AddArc(n.Places[pm[a.Place]], nt, a.Weight)
			}
			for _, a := range t.Out {
				n.AddArcTP(nt, n.Places[pm[a.Place]], a.Weight)
			}
			tm[i] = nt.ID
		}
		transMap[cp.Proc.Name] = tm
	}

	globalPort := func(ref string, wantDir flowc.PortDir) (*petri.Place, *compile.CompiledProcess, error) {
		proc, port, err := splitRef(ref)
		if err != nil {
			return nil, nil, err
		}
		cp := procByName[proc]
		if cp == nil {
			return nil, nil, fmt.Errorf("link: unknown process %q in %q", proc, ref)
		}
		pd := cp.Proc.PortByName(port)
		if pd == nil {
			return nil, nil, fmt.Errorf("link: process %s has no port %q", proc, port)
		}
		if pd.Dir != wantDir {
			return nil, nil, fmt.Errorf("link: port %s is %v, expected %v", ref, pd.Dir, wantDir)
		}
		local := cp.PortPlace[port]
		return n.Places[placeMap[proc][local.ID]], cp, nil
	}

	bound := map[string]bool{} // "proc.port" already connected

	claim := func(ref string) error {
		if bound[ref] {
			return fmt.Errorf("link: port %s connected more than once", ref)
		}
		bound[ref] = true
		return nil
	}

	// redirect moves every arc touching place from onto place to.
	redirect := func(from, to *petri.Place) {
		for _, t := range n.Transitions {
			for i := range t.In {
				if t.In[i].Place == from.ID {
					t.In[i].Place = to.ID
				}
			}
			for i := range t.Out {
				if t.Out[i].Place == from.ID {
					t.Out[i].Place = to.ID
				}
			}
		}
	}

	// Channels: merge the two port places into one channel place.
	usedNames := map[string]bool{}
	for i := range spec.Channels {
		ch := spec.Channels[i]
		if ch.Name == "" {
			ch.Name = fmt.Sprintf("ch%d", i)
		}
		if usedNames[ch.Name] {
			return nil, fmt.Errorf("link: duplicate channel name %q", ch.Name)
		}
		usedNames[ch.Name] = true
		if err := claim(ch.From); err != nil {
			return nil, err
		}
		if err := claim(ch.To); err != nil {
			return nil, err
		}
		fromPl, fromCP, err := globalPort(ch.From, flowc.PortOut)
		if err != nil {
			return nil, err
		}
		toPl, toCP, err := globalPort(ch.To, flowc.PortIn)
		if err != nil {
			return nil, err
		}
		// Merge: keep fromPl as the channel place, retarget toPl users.
		redirect(toPl, fromPl)
		fromPl.Name = ch.Name
		fromPl.Kind = petri.PlaceChannel
		fromPl.Process = ""
		fromPl.Bound = ch.Bound
		// toPl remains as an orphan; mark it clearly.
		toPl.Name = ch.Name + "~merged"
		toPl.Kind = petri.PlaceChannel
		toPl.Process = ""

		info := &ChannelInfo{Spec: ch, Place: fromPl}
		if ch.Bound > 0 {
			comp := n.AddPlace(ch.Name+"~space", petri.PlaceComplement, ch.Bound)
			info.Comp = comp
			// Writers consume space; readers release it. Pure
			// self-loops (SELECT availability tests) touch neither.
			for _, t := range n.Transitions {
				w := t.OutWeight(fromPl.ID)
				if w > 0 && t.Weight(fromPl.ID) != w {
					if w > ch.Bound {
						return nil, fmt.Errorf("link: channel %s bound %d smaller than write burst %d by %s",
							ch.Name, ch.Bound, w, t.Name)
					}
					n.AddArc(comp, t, w)
				}
			}
			for _, t := range n.Transitions {
				w := t.Weight(fromPl.ID)
				if w > 0 && t.OutWeight(fromPl.ID) != w {
					n.AddArcTP(t, comp, w)
				}
			}
		}
		sys.Channels = append(sys.Channels, info)
		b := &Binding{Kind: BindChannel, Channel: info}
		sys.bindings[ch.From] = b
		sys.bindings[ch.To] = b
		_ = fromCP
		_ = toCP
	}

	// SELECT arms on Out ports: availability means free space, i.e. a
	// self-loop on the complement place.
	for _, cp := range procs {
		for _, ref := range cp.SelectArms {
			pd := cp.Proc.PortByName(ref.Port)
			if pd == nil || pd.Dir != flowc.PortOut {
				continue
			}
			b := sys.bindings[cp.Proc.Name+"."+ref.Port]
			gt := n.Transitions[transMap[cp.Proc.Name][ref.Trans]]
			if b != nil && b.Kind == BindChannel && b.Channel.Comp != nil {
				n.AddSelfLoop(b.Channel.Comp, gt, ref.NItems)
			}
			// Unbounded channels and environment outputs always have
			// space: the arm is unconditionally enabled.
		}
	}

	// Environment inputs.
	for i := range spec.Inputs {
		in := spec.Inputs[i]
		if in.Rate == 0 {
			in.Rate = 1
		}
		if in.Name == "" {
			in.Name = "in_" + strings.ReplaceAll(in.To, ".", "_")
		}
		if err := claim(in.To); err != nil {
			return nil, err
		}
		pl, _, err := globalPort(in.To, flowc.PortIn)
		if err != nil {
			return nil, err
		}
		kind := petri.TransSourceUnc
		if in.Controllable {
			kind = petri.TransSourceCtl
		}
		t := n.AddTransition(in.Name, kind)
		n.AddArcTP(t, pl, in.Rate)
		info := &InputInfo{Spec: in, Trans: t, Place: pl}
		sys.Inputs = append(sys.Inputs, info)
		sys.bindings[in.To] = &Binding{Kind: BindEnvIn, Input: info}
	}

	// Environment outputs.
	for i := range spec.Outputs {
		out := spec.Outputs[i]
		if out.Rate == 0 {
			out.Rate = 1
		}
		if out.Name == "" {
			out.Name = "out_" + strings.ReplaceAll(out.From, ".", "_")
		}
		if err := claim(out.From); err != nil {
			return nil, err
		}
		pl, _, err := globalPort(out.From, flowc.PortOut)
		if err != nil {
			return nil, err
		}
		t := n.AddTransition(out.Name, petri.TransSink)
		n.AddArc(pl, t, out.Rate)
		info := &OutputInfo{Spec: out, Trans: t, Place: pl}
		sys.Outputs = append(sys.Outputs, info)
		sys.bindings[out.From] = &Binding{Kind: BindEnvOut, Output: info}
	}

	// Every port must be connected.
	for _, cp := range procs {
		for _, pd := range cp.Proc.Ports {
			ref := cp.Proc.Name + "." + pd.Name
			if !bound[ref] {
				return nil, fmt.Errorf("link: port %s is not connected; declare a channel, input or output for it", ref)
			}
		}
	}

	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("link: internal error: %v", err)
	}
	return sys, nil
}
