package flowc

import (
	"strings"
	"testing"
)

func TestLexerTokens(t *testing.T) {
	src := `PROCESS p (In DPORT a) { int x; x += 1; if (x <= 2 && x != 3) x--; }`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{TokProcess, TokIdent, TokLParen, TokIn, TokDPort, TokIdent, TokRParen,
		TokLBrace, TokIntType, TokIdent, TokSemi, TokIdent, TokPlusEq, TokInt, TokSemi,
		TokIf, TokLParen, TokIdent, TokLe, TokInt, TokAndAnd, TokIdent, TokNeq, TokInt,
		TokRParen, TokIdent, TokDec, TokSemi, TokRBrace, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerComments(t *testing.T) {
	src := "PROCESS p () { // line comment\n /* block\ncomment */ }"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if len(toks) != 7 { // PROCESS p ( ) { } EOF
		t.Errorf("tokens = %d, want 7", len(toks))
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"unterminated`, "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions wrong: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

const roundTripSrc = `PROCESS demo (In DPORT in, Out DPORT out)
{
  int n, i, buf[4];
  while (1)
  {
    READ_DATA(in, n, 1);
    for (i = 0; (i < n); i++)
    {
      if (((n % 2) == 0))
        WRITE_DATA(out, (i * 2), 1);
      else
        WRITE_DATA(out, i, 1);
    }
    while (((n > 0) || (i > 10)))
      n--;
    switch (SELECT(in, 1, out, 2)) {
    case 0:
      READ_DATA(in, n, 1);
      break;
    case 1:
      WRITE_DATA(out, n, 1);
      break;
    }
  }
}
`

func TestParsePrintFixedPoint(t *testing.T) {
	p1, err := ParseProcess(roundTripSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := FormatProcess(p1)
	p2, err := ParseProcess(out1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out1)
	}
	out2 := FormatProcess(p2)
	if out1 != out2 {
		t.Errorf("print/parse not a fixed point:\n%s\n----\n%s", out1, out2)
	}
}

func TestParsePrecedence(t *testing.T) {
	p, err := ParseProcess(`PROCESS p () { int a, b, c; a = b + c * 2 - -b % 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	es := p.Body.Stmts[1].(*ExprStmt)
	got := FormatExpr(es.X)
	want := "a = ((b + (c * 2)) - (-b % 3))"
	if got != want {
		t.Errorf("precedence: %s, want %s", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                      // no process
		`PROCESS p (`,                           // unterminated
		`PROCESS p () { READ_DATA(x, &v, 0); }`, // nitems 0
		`PROCESS p () { 1 = 2; }`,               // bad lvalue
		`PROCESS p () { ++3; }`,                 // bad inc operand
		`PROCESS p () { int a[0]; }`,            // zero array
		`PROCESS p (In DPORT a) { switch (SELECT(a, 1)) { case 4: break; } }`,                // case out of range
		`PROCESS p (In DPORT a) { switch (SELECT(a, 1)) { case 0: break; case 0: break; } }`, // dup case
		`PROCESS p (Bogus DPORT a) {}`, // bad direction
	}
	for _, src := range cases {
		if _, err := ParseProcess(src); err == nil {
			t.Errorf("ParseProcess(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undeclared var", `PROCESS p () { x = 1; }`},
		{"redeclared var", `PROCESS p () { int x; int x; }`},
		{"unknown port", `PROCESS p () { READ_DATA(in, &v, 1); }`},
		{"wrong direction", `PROCESS p (Out DPORT o) { int v; READ_DATA(o, &v, 1); }`},
		{"scalar multi-read", `PROCESS p (In DPORT i) { int v; READ_DATA(i, v, 3); }`},
		{"small array", `PROCESS p (In DPORT i) { int b[2]; READ_DATA(i, b, 3); }`},
		{"scalar multi-write", `PROCESS p (Out DPORT o) { int v; WRITE_DATA(o, v, 2); }`},
		{"expr multi-write", `PROCESS p (Out DPORT o) { int v; WRITE_DATA(o, v+1, 2); }`},
		{"select unknown port", `PROCESS p (In DPORT i) { switch (SELECT(zz, 1)) { case 0: break; } }`},
		{"port shadow", `PROCESS p (In DPORT i) { int i; }`},
	}
	for _, c := range cases {
		p, err := ParseProcess(c.src)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", c.name, err)
		}
		if err := Check(p); err == nil {
			t.Errorf("%s: Check should fail", c.name)
		}
	}
}

func TestCheckFileDuplicateProcess(t *testing.T) {
	f, err := ParseFile(`PROCESS a () { int x; } PROCESS a () { int y; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFile(f); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate process should fail, got %v", err)
	}
}

func TestCheckValid(t *testing.T) {
	p, err := ParseProcess(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Errorf("valid process rejected: %v", err)
	}
}

func TestPortByName(t *testing.T) {
	p, err := ParseProcess(`PROCESS p (In DPORT a, Out DPORT b) { int x; }`)
	if err != nil {
		t.Fatal(err)
	}
	if pd := p.PortByName("b"); pd == nil || pd.Dir != PortOut {
		t.Errorf("PortByName(b) = %+v", pd)
	}
	if p.PortByName("zz") != nil {
		t.Error("PortByName(zz) should be nil")
	}
}
