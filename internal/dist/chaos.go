package dist

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault injection for the failover tests. chaosConn wraps a net.Conn
// with seeded, reproducible faults on the write path: per-write jitter
// delays, fragmented writes, and a hard sever after a configured byte
// budget. Severing truncates the in-flight frame and then closes the
// transport — the framing layer has no checksum, so "corrupt/drop a
// frame" and "sever mid-frame" are the same observable fault: the peer
// sees a short or impossible frame followed by EOF and declares the
// link dead. Read-side behaviour (deadlines, blocking) passes through
// the embedded Conn untouched so the heartbeat machinery under test
// sees real transport semantics.
//
// The shim lives in the package proper rather than a _test file so the
// spawned-process chaos tests (package dist_test) and any future CLI
// fault harness can reuse it; it has no non-test callers.
type chaosConn struct {
	net.Conn // deadlines, reads and addrs pass through

	mu      sync.Mutex
	rng     *rand.Rand
	delay   time.Duration // max extra latency injected per write
	severAt int64         // byte budget; <= 0 means never sever
	written int64
	severed bool
}

// chaosOpts configures one chaosConn. The zero value injects nothing.
type chaosOpts struct {
	seed    int64         // rng seed; faults are deterministic per seed
	delay   time.Duration // up to this much extra latency per write
	severAt int64         // sever the conn after this many bytes written
}

func newChaosConn(c net.Conn, o chaosOpts) *chaosConn {
	return &chaosConn{Conn: c, rng: rand.New(rand.NewSource(o.seed)), delay: o.delay, severAt: o.severAt}
}

// Write delivers b through the wrapped conn in randomly sized
// fragments with seeded delays, stopping — truncating mid-frame — and
// closing the transport once the sever budget is spent.
func (c *chaosConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return 0, fmt.Errorf("chaos: conn severed after %d bytes", c.written)
	}
	done := 0
	for done < len(b) {
		if c.delay > 0 {
			time.Sleep(time.Duration(c.rng.Int63n(int64(c.delay))))
		}
		frag := b[done:]
		// Fragment roughly half the writes so frames routinely arrive
		// split across multiple reads on the far side.
		if len(frag) > 1 && c.rng.Intn(2) == 0 {
			frag = frag[:1+c.rng.Intn(len(frag))]
		}
		if c.severAt > 0 && c.written+int64(len(frag)) > c.severAt {
			frag = frag[:c.severAt-c.written]
			n, _ := c.Conn.Write(frag)
			c.written += int64(n)
			c.severed = true
			c.Conn.Close()
			return done + n, fmt.Errorf("chaos: conn severed after %d bytes", c.written)
		}
		n, err := c.Conn.Write(frag)
		done += n
		c.written += int64(n)
		if err != nil {
			return done, err
		}
	}
	return done, nil
}
