package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// The synthesis cache memoizes full pipeline runs, content-addressed by
// a hash of the FlowC source, the netlist source and the semantically
// relevant options. Synthesis is a pure function of those inputs (every
// search is deterministic), so a hit can return the stored Result
// directly; repeated synthesis of the same app becomes a hash plus a
// map lookup. Cached Results are shared between callers and must be
// treated as read-only.
//
// Only options whose effect on the output can be fingerprinted are
// cacheable: a custom sched.Termination or sched.ECSOrder is an opaque
// interface value (its Name alone does not capture its parameters), so
// calls carrying one bypass the cache entirely. Options.Workers,
// Options.ExploreWorkers, Sched.ExploreWorkers and the distributed-
// exploration knobs (DistWorkers, DistEndpoint, Dist, DistFullReplicas,
// Sched.Dist) are deliberately not part of the key — every execution
// strategy of the parallelism model, in-process or cross-process,
// trimmed or full replicas, produces Results byte-identical to the
// serial paths. Options.FreezeLevels is in the same class: a frozen
// store changes where vectors live, never what is computed.

// cacheLimit bounds the number of retained entries; eviction is FIFO in
// insertion order, which is enough for the repeat-synthesis workloads
// the cache targets.
const cacheLimit = 1024

type resultCache struct {
	mu    sync.Mutex
	m     map[[32]byte]*Result
	order [][32]byte
	hits  int64
	miss  int64
}

var synthCache = &resultCache{m: map[[32]byte]*Result{}}

func (c *resultCache) get(key [32]byte) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return r, ok
}

func (c *resultCache) put(key [32]byte, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= cacheLimit {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
	}
	c.m[key] = r
	c.order = append(c.order, key)
}

// CacheStats reports synthesis-cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Stats returns a snapshot of the synthesis cache counters.
func Stats() CacheStats {
	synthCache.mu.Lock()
	defer synthCache.mu.Unlock()
	return CacheStats{Hits: synthCache.hits, Misses: synthCache.miss, Entries: len(synthCache.m)}
}

// ResetCache drops every cached Result and zeroes the counters. Intended
// for tests and benchmarks that need cold-cache behaviour.
func ResetCache() {
	synthCache.mu.Lock()
	defer synthCache.mu.Unlock()
	synthCache.m = map[[32]byte]*Result{}
	synthCache.order = nil
	synthCache.hits = 0
	synthCache.miss = 0
}

// cacheKey fingerprints one synthesis call. cacheable is false when the
// options carry state the key cannot capture (custom Term/Order
// implementations) or when the caller opted out.
func cacheKey(flowcSrc, specSrc string, opt *Options) (key [32]byte, cacheable bool) {
	if opt.DisableCache {
		return key, false
	}
	if opt.Sched != nil && (opt.Sched.Term != nil || opt.Sched.Order != nil) {
		return key, false
	}
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeInt := func(v int64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(v))
		h.Write(n[:])
	}
	writeBool := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	writeStr(flowcSrc)
	writeStr(specSrc)
	writeBool(opt.SkipIndependence)
	// The request-scoped state budget changes what a search can return
	// (ErrBudget vs a schedule), so it must discriminate entries. Two
	// calls expressing the same effective budget through different
	// fields (Options.MaxNodes vs Sched.MaxNodes) hash apart — a missed
	// share, never a wrong hit.
	writeInt(int64(opt.MaxNodes))
	if opt.Sched != nil {
		writeBool(opt.Sched.MultiSource)
		writeInt(int64(opt.Sched.MaxNodes))
		writeInt(int64(opt.Sched.Engine))
		writeBool(opt.Sched.NoFallback)
	}
	copy(key[:], h.Sum(nil))
	return key, true
}
