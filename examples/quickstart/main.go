// Quickstart: synthesize a two-process pixel pipeline into a single
// software task, inspect the schedule and the generated C, and execute
// both the traditional 4-tasks-style implementation and the synthesized
// task on the same workload to confirm identical outputs.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// 1. Full flow: parse FlowC, compile to Petri nets, link, schedule,
	// generate the task.
	res, err := core.Synthesize(apps.PixelPipe, apps.PixelPipeSpec, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthesis failed:", err)
		os.Exit(1)
	}
	sched := res.Schedules[0]
	task := res.Tasks[0]
	fmt.Printf("schedule: %d nodes, %d await nodes; task: %d code segments\n",
		len(sched.Nodes), len(sched.AwaitNodes()), len(task.Segments))
	fmt.Printf("channel bounds: Pix=%d Eol=%d (statically guaranteed)\n\n",
		res.ChannelBound("Pix"), res.ChannelBound("Eol"))

	// 2. The generated sequential C task.
	fmt.Println("---- generated task ----")
	fmt.Print(res.Code[task.Name])

	// 3. Execute both implementations: the producer emits n pixels per
	// trigger, the consumer sums them.
	triggers := []int64{4, 0, 7, 2}

	base := sim.NewBaseline(res.Sys, sim.PFC, 8)
	base.Input("go").Push(triggers...)
	baseCycles, err := base.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline failed:", err)
		os.Exit(1)
	}

	te, err := sim.NewTaskExec(res.Sys, task, sim.PFC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "task exec failed:", err)
		os.Exit(1)
	}
	for _, v := range triggers {
		if err := te.Trigger(v); err != nil {
			fmt.Fprintln(os.Stderr, "trigger failed:", err)
			os.Exit(1)
		}
	}

	fmt.Println("\n---- execution ----")
	fmt.Printf("baseline (2 tasks, round-robin): sums=%v in %d cycles\n",
		base.Output("sums").Vals, baseCycles)
	fmt.Printf("synthesized single task:         sums=%v in %d cycles\n",
		te.Output("sums").Vals, te.Machine.Cycles)
	equal := fmt.Sprint(base.Output("sums").Vals) == fmt.Sprint(te.Output("sums").Vals)
	fmt.Printf("outputs identical: %v; speedup: %.1fx\n",
		equal, float64(baseCycles)/float64(te.Machine.Cycles))
}
