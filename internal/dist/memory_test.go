package dist_test

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/petri"
)

// The distributed memory gate: trimmed replicas exist to make
// per-worker memory scale ~1/N with the pool size, so CI asserts the
// ratio, not just the mechanism. All figures are exact live byte
// counts (petri.MarkingStore.ArenaBytes plus the enabled-set arena) —
// pure functions of the interned marking sequence, identical on every
// machine and Go toolchain that runs the same exploration — which is
// what allows a strict numeric gate instead of a noisy RSS heuristic.

// gateRatio is the CI bound: at 2 workers, each trimmed worker must
// hold at most 0.75x the replica bytes of a full-replica worker. The
// ideal split is ~0.5x; the slack covers hash imbalance and the
// fixed per-store probe-table floor.
const gateRatio = 0.75

// replicaBytes is the per-worker figure the gate compares: the marking
// store and the enabled-set arena — the two structures that grow with
// held states. The boundary-parent cache is bounded by construction
// and reported separately.
func replicaBytes(m dist.WorkerMem) int64 { return m.StoreBytes + m.BitsBytes }

// exploreWithPool runs one exploration over freshly spawned worker
// processes and returns the session stats.
func exploreWithPool(t *testing.T, n *petri.Net, procs int, full bool, opt petri.ExploreOptions) (*petri.ReachResult, dist.SessionStats) {
	t.Helper()
	pool, err := dist.SpawnLocal(procs)
	if err != nil {
		t.Fatalf("spawn %d workers: %v", procs, err)
	}
	defer pool.Close()
	pool.SetFullReplicas(full)
	r, err := n.ExploreDist(pool, opt)
	if err != nil {
		t.Fatalf("ExploreDist(%d procs, full=%v): %v", procs, full, err)
	}
	return r, pool.LastSessionStats()
}

// TestDistTrimmedMemoryGate is the CI `dist-memory` step: on a
// product-space net big enough to dwarf fixed overheads (4^6 = 4096
// states), per-worker replica bytes under the default trimmed protocol
// must be <= gateRatio x the full-replica baseline at 2 workers, and
// the trimmed workers' stores must partition the state space instead
// of duplicating it.
func TestDistTrimmedMemoryGate(t *testing.T) {
	net := productNet(6, 4)
	opt := petri.ExploreOptions{MaxMarkings: 5000}

	want, fullStats := exploreWithPool(t, net, 2, true, opt)
	got, trimStats := exploreWithPool(t, net, 2, false, opt)
	assertSameReach(t, "trimmed vs full", want, got)
	if fullStats.Trimmed || !trimStats.Trimmed {
		t.Fatalf("replica modes inverted: full session trimmed=%v, trimmed session trimmed=%v",
			fullStats.Trimmed, trimStats.Trimmed)
	}

	var fullMax, trimMax int64
	held := 0
	for w := range fullStats.Workers {
		fb, tb := replicaBytes(fullStats.Workers[w]), replicaBytes(trimStats.Workers[w])
		t.Logf("worker %d: full %dB (%d states), trimmed %dB (%d states, %dB boundary cache)",
			w, fb, fullStats.Workers[w].States, tb, trimStats.Workers[w].States, trimStats.Workers[w].CacheBytes)
		if fb > fullMax {
			fullMax = fb
		}
		if tb > trimMax {
			trimMax = tb
		}
		if fullStats.Workers[w].States != want.Len() {
			t.Errorf("full-replica worker %d holds %d states, want the whole space (%d)",
				w, fullStats.Workers[w].States, want.Len())
		}
		held += trimStats.Workers[w].States
	}
	if held != want.Len() {
		t.Errorf("trimmed workers hold %d states in total, space has %d", held, want.Len())
	}
	if limit := int64(float64(fullMax) * gateRatio); trimMax > limit {
		t.Errorf("trimmed per-worker replica %dB exceeds %.2fx full-replica baseline (%dB of %dB)",
			trimMax, gateRatio, limit, fullMax)
	}
	t.Logf("gate: trimmed max %dB vs full max %dB (%.2fx, bound %.2fx) over %d states",
		trimMax, fullMax, float64(trimMax)/float64(fullMax), gateRatio, want.Len())
}

// TestDistTrimmedMemoryScaling documents the ~1/N curve the tentpole
// claims: per-worker replica bytes at 1, 2 and 4 trimmed workers
// shrink with the pool, each step keeping the byte-identical result.
func TestDistTrimmedMemoryScaling(t *testing.T) {
	net := productNet(6, 4)
	opt := petri.ExploreOptions{MaxMarkings: 5000}
	want := net.Explore(opt)
	prevMax := int64(0)
	for _, procs := range []int{1, 2, 4} {
		got, st := exploreWithPool(t, net, procs, false, opt)
		assertSameReach(t, fmt.Sprintf("procs=%d", procs), want, got)
		var max int64
		for _, wm := range st.Workers {
			if b := replicaBytes(wm); b > max {
				max = b
			}
		}
		t.Logf("procs=%d: max per-worker replica %dB", procs, max)
		// Doubling the pool must shrink the biggest replica by a real
		// margin; 0.75 is loose against hash imbalance on 4096 states.
		if prevMax > 0 && float64(max) > 0.75*float64(prevMax) {
			t.Errorf("max replica %dB at %d workers is not <= 0.75x the previous pool's %dB", max, procs, prevMax)
		}
		prevMax = max
	}
}
